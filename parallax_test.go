package parallax

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// The facade tests exercise the public API exactly as the README and
// examples do.

func TestFacadeQuickstart(t *testing.T) {
	w := NewWorld()
	w.AddStatic(Plane{Normal: V(0, 1, 0)}, V(0, 0, 0), QIdent)
	ball, _ := w.AddBody(Sphere{R: 0.5}, 1.0, V(0, 5, 0), QIdent, 0, 0)
	for i := 0; i < 300; i++ {
		w.Step()
	}
	if y := w.Bodies[ball].Pos.Y; math.Abs(y-0.5) > 0.05 {
		t.Errorf("ball rest height = %v, want ~0.5", y)
	}
}

func TestFacadeJointAndRay(t *testing.T) {
	w := NewWorld()
	bob, _ := w.AddBody(Sphere{R: 0.2}, 1, V(1, 0, 0), QIdent, 0, 0)
	w.AddJoint(NewBall(w.Bodies, bob, -1, V(0, 0, 0)))
	for i := 0; i < 60; i++ {
		w.Step()
	}
	if r := w.Bodies[bob].Pos.Len(); math.Abs(r-1) > 0.05 {
		t.Errorf("pendulum radius drifted: %v", r)
	}
	hit, ok := w.RayCast(w.Bodies[bob].Pos.Add(V(0, 3, 0)), V(0, -1, 0), 10)
	if !ok {
		t.Fatal("ray should find the bob")
	}
	if hit.Geom != 0 {
		t.Errorf("ray hit geom %d", hit.Geom)
	}
}

func TestFacadeCloth(t *testing.T) {
	w := NewWorld()
	w.AddStatic(Plane{Normal: V(0, 1, 0)}, V(0, 0, 0), QIdent)
	c := NewClothGrid(6, 6, 0.1, V(0, 1, 0), 0.5)
	w.AddCloth(c)
	for i := 0; i < 150; i++ {
		w.Step()
	}
	for i := range c.Particles {
		if c.Particles[i].Pos.Y < 0 {
			t.Fatalf("cloth particle %d sank through the ground", i)
		}
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 8 {
		t.Fatalf("benchmarks = %d, want 8", len(bs))
	}
	w, err := BuildBenchmark("Periodic", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	w.Step()
	if w.Profile.Pairs == 0 {
		t.Error("benchmark produced no pairs")
	}
	if _, err := BuildBenchmark("Bogus", 1); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestFacadeCaptureAndEvaluate(t *testing.T) {
	w, _ := BuildBenchmark("Ragdoll", 0.15)
	wl := Capture("Ragdoll", w, 1, 1)
	sys := ReferenceSystem()
	b := wl.Evaluate(sys)
	if b.Total() <= 0 || b.AreaMM2 <= 0 {
		t.Errorf("evaluation empty: %+v", b)
	}
	if !b.MeetsRealTime() {
		t.Log("small ragdoll scene misses 30 FPS on the reference system (unexpected but not fatal)")
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 23 {
		t.Fatalf("experiment registry too small: %d", len(ids))
	}
	s := NewSuite(0.1)
	var buf bytes.Buffer
	if err := RunExperiment(s, "fig11", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Mix") {
		t.Error("fig11 output missing Mix row")
	}
	if err := RunExperiment(s, "not-an-experiment", &buf); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestFacadeCoreConfigs(t *testing.T) {
	for _, c := range []CoreConfig{Desktop, Console, Shader, Limit} {
		if c.Width <= 0 || c.ClockGHz != 2 {
			t.Errorf("core %s misconfigured: %+v", c.Name, c)
		}
	}
	if OnChip == HTX || HTX == PCIe {
		t.Error("interconnect kinds must be distinct")
	}
}
