module github.com/parallax-arch/parallax

go 1.22
