// Package parallax is the public API of the ParallAX reproduction: a
// complete real-time physics engine (rigid bodies, joints, breakables,
// prefracture, explosions, cloth) in the style of the Open Dynamics
// Engine, the paper's eight forward-looking benchmarks, and the
// trace-driven architecture models (caches, branch prediction,
// out-of-order core timing, mesh and off-chip interconnects) that
// reproduce the paper's design-space study.
//
// Quick start:
//
//	w := parallax.NewWorld()
//	w.AddStatic(parallax.Plane{Normal: parallax.V(0, 1, 0)}, parallax.V(0, 0, 0), parallax.QIdent)
//	ball, _ := w.AddBody(parallax.Sphere{R: 0.5}, 1.0, parallax.V(0, 5, 0), parallax.QIdent, 0, 0)
//	for i := 0; i < 300; i++ {
//	    w.Step()
//	}
//	fmt.Println(w.Bodies[ball].Pos)
//
// To run the paper's experiments:
//
//	suite := parallax.NewSuite(1.0)
//	parallax.RunExperiment(suite, "fig10b", os.Stdout)
package parallax

import (
	"fmt"
	"io"
	"net/http"

	"github.com/parallax-arch/parallax/internal/arch/cpu"
	"github.com/parallax-arch/parallax/internal/arch/link"
	archpx "github.com/parallax-arch/parallax/internal/arch/parallax"
	"github.com/parallax-arch/parallax/internal/exp"
	"github.com/parallax-arch/parallax/internal/obs"
	"github.com/parallax-arch/parallax/internal/phys/cloth"
	"github.com/parallax-arch/parallax/internal/phys/export"
	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/joint"
	"github.com/parallax-arch/parallax/internal/phys/m3"
	"github.com/parallax-arch/parallax/internal/phys/narrowphase"
	"github.com/parallax-arch/parallax/internal/phys/workload"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// ---- math re-exports ----

// Vec is a 3-vector.
type Vec = m3.Vec

// Quat is a rotation quaternion.
type Quat = m3.Quat

// V builds a vector.
func V(x, y, z float64) Vec { return m3.V(x, y, z) }

// QIdent is the identity rotation.
var QIdent = m3.QIdent

// QFromAxisAngle builds a rotation of angle radians about axis.
func QFromAxisAngle(axis Vec, angle float64) Quat { return m3.QFromAxisAngle(axis, angle) }

// ---- shape re-exports ----

// Shape is the collision-shape interface all shapes implement.
type Shape = geom.Shape

// Sphere, Box, Capsule and Plane are the convex collision shapes;
// heightfields and triangle meshes are built with NewHeightField and
// NewTriMesh.
type (
	Sphere  = geom.Sphere
	Box     = geom.Box
	Capsule = geom.Capsule
	Plane   = geom.Plane
	Tri     = geom.Tri
)

// NewHeightField builds terrain from a row-major height grid.
func NewHeightField(nx, nz int, cellX, cellZ float64, heights []float64) *geom.HeightField {
	return geom.NewHeightField(nx, nz, cellX, cellZ, heights)
}

// NewTriMesh builds a static triangle-mesh shape.
func NewTriMesh(verts []Vec, tris []Tri) *geom.TriMesh {
	return geom.NewTriMesh(verts, tris)
}

// NewHull builds a convex-hull shape from vertices and a triangulated
// surface; hulls collide via GJK/EPA and get exact mass properties from
// the surface integrals.
func NewHull(verts []Vec, faces []Tri) *geom.Hull {
	return geom.NewHull(verts, faces)
}

// BoxHull builds the convex hull of a box (handy for debris and tests).
func BoxHull(half Vec) *geom.Hull { return geom.BoxHull(half) }

// ExportOBJ writes the world's current geometry to out as a Wavefront
// OBJ file for inspection in any 3D viewer.
func ExportOBJ(out io.Writer, w *World) error {
	return export.OBJ(out, w, export.Options{})
}

// ---- engine re-exports ----

// World is the simulation container; see NewWorld.
type World = world.World

// ExplosiveSpec configures an explosive geom.
type ExplosiveSpec = world.ExplosiveSpec

// StepProfile is the per-step instrumentation record. Its Islands and
// ClothVerts slices are backed by World-owned scratch storage that the
// next Step overwrites: copy them — or aggregate through
// FrameProfile.Add, which deep-copies — before stepping again if the
// record must outlive the step. This aliasing is what lets steady-state
// stepping run allocation-free.
type StepProfile = world.StepProfile

// FrameProfile aggregates the StepProfiles of one rendered frame;
// FrameProfile.Add deep-copies the scratch-backed slices so frame
// records are safe to retain indefinitely.
type FrameProfile = world.FrameProfile

// NewWorld returns an empty world with the paper's defaults (0.01 s
// steps, 20 solver iterations, sweep-and-prune broad phase).
func NewWorld() *World { return world.New() }

// RayHit is a ray-query result.
type RayHit = narrowphase.RayHit

// Cloth is a position-based soft body.
type Cloth = cloth.Cloth

// NewClothGrid builds an nx-by-nz cloth with the given spacing, origin
// and total mass.
func NewClothGrid(nx, nz int, spacing float64, origin Vec, mass float64) *Cloth {
	return cloth.NewGrid(nx, nz, spacing, origin, mass)
}

// Joint constructors. Bodies are world body indices; -1 attaches to the
// static world.
var (
	NewBall   = joint.NewBall
	NewHinge  = joint.NewHinge
	NewSlider = joint.NewSlider
	NewFixed  = joint.NewFixed
)

// NewBreakable wraps a joint with break thresholds.
func NewBreakable(j joint.Joint, threshold, fatigueLimit float64) *joint.Breakable {
	return joint.NewBreakable(j, threshold, fatigueLimit)
}

// ---- benchmark suite ----

// Benchmark is one scene of the paper's suite.
type Benchmark = workload.Benchmark

// Benchmarks returns the eight benchmarks in the paper's order.
func Benchmarks() []Benchmark { return workload.All }

// BuildBenchmark constructs a named benchmark at the given scale
// (1.0 = the paper's scene sizes).
func BuildBenchmark(name string, scale float64) (*World, error) {
	b, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("parallax: unknown benchmark %q", name)
	}
	return b.Build(scale), nil
}

// ---- architecture models ----

// Workload is a captured benchmark ready for architecture evaluation.
type Workload = archpx.Workload

// System is a full ParallAX machine configuration.
type System = archpx.System

// CoreConfig is a core timing configuration (Desktop, Console, Shader,
// Limit, CGCore).
type CoreConfig = cpu.Config

// The fine-grain core design points (paper Table 6).
var (
	Desktop = cpu.Desktop
	Console = cpu.Console
	Shader  = cpu.Shader
	Limit   = cpu.Limit
)

// Interconnect kinds for the FG pool.
const (
	OnChip = link.OnChip
	HTX    = link.HTX
	PCIe   = link.PCIe
)

// Capture runs a world and captures its worst measured frame for the
// architecture models.
func Capture(name string, w *World, warmFrames, measureFrames int) *Workload {
	return archpx.Capture(name, w, warmFrames, measureFrames)
}

// ReferenceSystem returns the paper's proposed configuration: 4 CG
// cores, 12MB partitioned L2, 150 shader-class FG cores on-chip.
func ReferenceSystem() System { return archpx.Reference() }

// ---- observability ----

// Tracer is the zero-allocation span tracer (see DESIGN.md
// "Observability"): attach one to a World with World.SetObs and export
// the spans as Chrome trace-event JSON with Tracer.WriteTrace — the
// file loads directly in Perfetto (ui.perfetto.dev).
type Tracer = obs.Tracer

// Metrics is the typed metrics registry paired with the tracer; its
// Snapshot output is sorted and deterministic across thread counts.
type Metrics = obs.Registry

// NewTracer returns an enabled span tracer. A nil *Tracer disables
// tracing at zero cost.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// Series is the per-step telemetry ring (kinetic energy, solver
// residual, per-phase durations, ...): attach one to a World with
// World.SetSeries. Recording is allocation-free; export the resident
// window with Series.WriteJSON or serve it live via ObsHandler.
type Series = obs.Series

// Health is the deterministic per-step anomaly detector (NaN state,
// energy spike, residual blowup, rebuild storm): attach with
// World.SetHealth, poll with Health.Tripped/Status.
type Health = obs.Health

// NewSeries returns a series ring holding at least capacity steps
// (rounded up to a power of two, minimum 64).
func NewSeries(capacity int) *Series { return obs.NewSeries(capacity) }

// NewHealth returns an anomaly detector with default thresholds.
func NewHealth() *Health { return obs.NewHealth() }

// ObsHandler returns the live-telemetry HTTP handler: /metrics
// (Prometheus text exposition), /health, /trace, /series.json. Any
// argument may be nil.
func ObsHandler(tr *Tracer, reg *Metrics, s *Series, h *Health) http.Handler {
	return obs.Handler(tr, reg, s, h)
}

// ---- experiments ----

// Suite is the captured eight-benchmark suite for experiments.
type Suite = exp.Suite

// NewSuite captures all eight benchmarks at the given scale.
func NewSuite(scale float64) *Suite { return exp.NewSuite(scale) }

// ExperimentIDs lists every reproducible table/figure id.
func ExperimentIDs() []string { return exp.IDs() }

// RunExperiment reproduces one table or figure, writing its rows to w.
func RunExperiment(s *Suite, id string, w io.Writer) error {
	e, ok := exp.ByID(id)
	if !ok {
		return fmt.Errorf("parallax: unknown experiment %q (have %v)", id, exp.IDs())
	}
	e.Run(s, w)
	return nil
}

// RunAllExperiments reproduces every table and figure in order.
func RunAllExperiments(s *Suite, w io.Writer) { s.RunAll(w) }
