// Clothdrape: drape a 625-vertex cloth (the paper's "large cloth") over
// a sphere and a box, then report drape quality: constraint strain and
// the lowest/highest vertices. Demonstrates the cloth API and the cloth
// contact lists maintained by the engine.
package main

import (
	"fmt"

	"github.com/parallax-arch/parallax"
)

func main() {
	w := parallax.NewWorld()
	w.AddStatic(parallax.Plane{Normal: parallax.V(0, 1, 0)}, parallax.V(0, 0, 0), parallax.QIdent)

	// Furniture to drape over: a ball and a table-like box.
	w.AddBody(parallax.Sphere{R: 0.45}, 0, parallax.V(-0.6, 0.45, 0), parallax.QIdent, 0, 0)
	w.AddBody(parallax.Box{Half: parallax.V(0.4, 0.3, 0.4)}, 0,
		parallax.V(0.7, 0.3, 0), parallax.QIdent, 0, 0)

	// The paper's large cloth: 25x25 = 625 vertices.
	c := parallax.NewClothGrid(25, 25, 0.08, parallax.V(-1.0, 1.4, -1.0), 2.0)
	w.AddCloth(c)

	for frame := 0; frame < 150; frame++ {
		w.StepFrame()
		if frame%50 == 49 {
			lo, hi := 1e18, -1e18
			for i := range c.Particles {
				y := c.Particles[i].Pos.Y
				if y < lo {
					lo = y
				}
				if y > hi {
					hi = y
				}
			}
			fmt.Printf("t=%.1fs  cloth spans y=[%.2f, %.2f], max strain %.1f%%, "+
				"%d vertex updates/step\n",
				w.Time, lo, hi, c.MaxStretch()*100, w.Profile.Cloth.VertexUpdates)
		}
	}

	// Verify nothing tunneled into the sphere.
	center := parallax.V(-0.6, 0.45, 0)
	inside := 0
	for i := range c.Particles {
		if c.Particles[i].Pos.Dist(center) < 0.45-1e-6 {
			inside++
		}
	}
	fmt.Printf("vertices inside the sphere: %d (want 0)\n", inside)
}
