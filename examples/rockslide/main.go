// Rockslide: irregular convex-hull boulders (GJK/EPA collision)
// tumbling down heightfield terrain, with an OBJ snapshot written at
// the end for inspection in any 3D viewer.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"

	"github.com/parallax-arch/parallax"
)

// boulder builds an irregular convex rock: a jittered octahedron.
func boulder(r *rand.Rand, size float64) parallax.Shape {
	jitter := func(v parallax.Vec) parallax.Vec {
		return v.Add(parallax.V(
			(r.Float64()-0.5)*size*0.4,
			(r.Float64()-0.5)*size*0.4,
			(r.Float64()-0.5)*size*0.4,
		))
	}
	verts := []parallax.Vec{
		jitter(parallax.V(size, 0, 0)), jitter(parallax.V(-size, 0, 0)),
		jitter(parallax.V(0, size, 0)), jitter(parallax.V(0, -size, 0)),
		jitter(parallax.V(0, 0, size)), jitter(parallax.V(0, 0, -size)),
	}
	faces := []parallax.Tri{
		{0, 2, 4}, {2, 1, 4}, {1, 3, 4}, {3, 0, 4},
		{2, 0, 5}, {1, 2, 5}, {3, 1, 5}, {0, 3, 5},
	}
	return parallax.NewHull(verts, faces)
}

func main() {
	r := rand.New(rand.NewSource(7))
	w := parallax.NewWorld()

	// A hillside: heights fall away along +z.
	const n = 36
	heights := make([]float64, n*n)
	for z := 0; z < n; z++ {
		for x := 0; x < n; x++ {
			heights[z*n+x] = float64(n-z)*0.35 + 0.3*math.Sin(float64(x)*0.7)
		}
	}
	hf := parallax.NewHeightField(n, n, 1, 1, heights)
	w.AddStatic(hf, parallax.V(0, 0, 0), parallax.QIdent)

	// A dozen boulders released near the crest.
	var rocks []int32
	for i := 0; i < 12; i++ {
		hull := boulder(r, 0.35+r.Float64()*0.3)
		x := 6 + r.Float64()*22
		z := 2 + r.Float64()*3
		y := hf.HeightAt(x, z) + 1.5
		bi, _ := w.AddBody(hull, 4+r.Float64()*8,
			parallax.V(x, y, z), parallax.QIdent, 0, 0)
		w.Bodies[bi].LinVel = parallax.V(0, 0, 2+r.Float64()*2)
		rocks = append(rocks, bi)
	}

	for frame := 0; frame < 240; frame++ {
		w.StepFrame()
	}

	// Report how far each boulder slid.
	far := 0.0
	for _, bi := range rocks {
		if z := w.Bodies[bi].Pos.Z; z > far {
			far = z
		}
	}
	fmt.Printf("after %.0f s the furthest boulder reached z = %.1f m\n", w.Time, far)

	// Snapshot for external viewing.
	f, err := os.Create("rockslide.obj")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	if err := parallax.ExportOBJ(f, w); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	fmt.Println("wrote rockslide.obj (open in any 3D viewer)")
}
