// Ragdoll: build an articulated figure out of capsules, boxes and
// sphere joints, knock it over with a projectile, and report how the
// joints load up — the first-person-shooter scenario of the paper's
// Ragdoll benchmark.
package main

import (
	"fmt"

	"github.com/parallax-arch/parallax"
)

// buildFigure assembles a simple five-segment ragdoll standing at base:
// two legs, a torso, an arm and a head, linked with ball and hinge
// joints that never self-collide (shared collision group).
func buildFigure(w *parallax.World, base parallax.Vec, group int32) []int32 {
	up := func(y float64) parallax.Vec { return base.Add(parallax.V(0, y, 0)) }
	legRot := parallax.QFromAxisAngle(parallax.V(1, 0, 0), 1.5707963)

	var ids []int32
	lleg, _ := w.AddBody(parallax.Capsule{R: 0.07, HalfLen: 0.35},
		5, base.Add(parallax.V(-0.12, 0.45, 0)), legRot, 0, group)
	rleg, _ := w.AddBody(parallax.Capsule{R: 0.07, HalfLen: 0.35},
		5, base.Add(parallax.V(0.12, 0.45, 0)), legRot, 0, group)
	torso, _ := w.AddBody(parallax.Box{Half: parallax.V(0.18, 0.3, 0.12)},
		16, up(1.2), parallax.QIdent, 0, group)
	arm, _ := w.AddBody(parallax.Capsule{R: 0.05, HalfLen: 0.3},
		3, base.Add(parallax.V(0.3, 1.35, 0)), legRot, 0, group)
	head, _ := w.AddBody(parallax.Sphere{R: 0.12},
		4, up(1.65), parallax.QIdent, 0, group)
	ids = append(ids, lleg, rleg, torso, arm, head)

	w.AddJoint(parallax.NewBall(w.Bodies, lleg, torso, base.Add(parallax.V(-0.12, 0.9, 0))))
	w.AddJoint(parallax.NewBall(w.Bodies, rleg, torso, base.Add(parallax.V(0.12, 0.9, 0))))
	w.AddJoint(parallax.NewBall(w.Bodies, torso, arm, base.Add(parallax.V(0.25, 1.45, 0))))
	// The neck is breakable: a hard enough hit decapitates the ragdoll.
	neck := parallax.NewBall(w.Bodies, torso, head, up(1.52))
	w.AddJoint(parallax.NewBreakable(neck, 2500, 0))
	return ids
}

func main() {
	w := parallax.NewWorld()
	w.AddStatic(parallax.Plane{Normal: parallax.V(0, 1, 0)}, parallax.V(0, 0, 0), parallax.QIdent)

	var figures [][]int32
	for i := 0; i < 5; i++ {
		figures = append(figures, buildFigure(w, parallax.V(float64(i)*1.5, 0, 0), int32(i+1)))
	}

	// A cannonball aimed at the middle figure's torso.
	shot, _ := w.AddBody(parallax.Sphere{R: 0.15}, 10,
		parallax.V(3, 1.3, -8), parallax.QIdent, 0, 0)
	w.Bodies[shot].LinVel = parallax.V(0, 0.5, 24)

	broken := 0
	for frame := 0; frame < 120; frame++ {
		fp := w.StepFrame()
		for i := range fp.Steps {
			broken += fp.Steps[i].JointBreaks
		}
	}

	fmt.Printf("after %.1fs: %d joint(s) broke\n", w.Time, broken)
	for fi, ids := range figures {
		torso := w.Bodies[ids[2]]
		state := "standing"
		if torso.Pos.Y < 0.8 {
			state = "down"
		}
		fmt.Printf("  figure %d: torso at y=%.2f (%s)\n", fi, torso.Pos.Y, state)
	}
}
