// Destruction: a prefractured brick wall, a time-bomb projectile, and
// breakable bridge joints — the game-physics extensions the paper's
// Breakable and Explosions benchmarks exercise. Shows explosive
// registration, fracture groups, and reading event counters back from
// the step profile.
package main

import (
	"fmt"

	"github.com/parallax-arch/parallax"
)

func main() {
	w := parallax.NewWorld()
	w.AddStatic(parallax.Plane{Normal: parallax.V(0, 1, 0)}, parallax.V(0, 0, 0), parallax.QIdent)

	// A 6x4 brick wall; every brick carries four debris pieces that are
	// disabled until a blast touches the brick.
	half := parallax.V(0.4, 0.2, 0.2)
	for y := 0; y < 4; y++ {
		for x := 0; x < 6; x++ {
			pos := parallax.V(float64(x)*0.81-2.4, float64(y)*0.41+0.2, 0)
			_, brick := w.AddBody(parallax.Box{Half: half}, 5, pos, parallax.QIdent, 0, 0)
			var debris []int32
			for d := 0; d < 4; d++ {
				off := parallax.V(float64(d%2)*0.4-0.2, float64(d/2)*0.2-0.1, 0)
				_, dg := w.AddBody(parallax.Box{Half: parallax.V(0.2, 0.1, 0.2)},
					1.2, pos.Add(off), parallax.QIdent, 0, 0)
				w.DisableBodyGeom(dg)
				debris = append(debris, dg)
			}
			w.RegisterFracture(brick, debris)
		}
	}

	// A rope bridge of planks on breakable hinges next to the wall.
	var prev int32 = -1
	for i := 0; i < 6; i++ {
		pos := parallax.V(float64(i)*0.85-2.1, 2.5, 3)
		bi, _ := w.AddBody(parallax.Box{Half: parallax.V(0.4, 0.05, 0.5)}, 6,
			pos, parallax.QIdent, 0, 0)
		anchor := pos.Add(parallax.V(-0.42, 0, 0))
		h := parallax.NewHinge(w.Bodies, prev, bi, anchor, parallax.V(0, 0, 1))
		w.AddJoint(parallax.NewBreakable(h, 4000, 0))
		prev = bi
	}

	// The bomb: flies at the wall and detonates on contact.
	_, bomb := w.AddBody(parallax.Sphere{R: 0.2}, 6,
		parallax.V(0, 1.2, -9), parallax.QIdent, 0, 0)
	w.MarkExplosive(bomb, parallax.ExplosiveSpec{Radius: 3.5, Duration: 0.06, Impulse: 80})
	w.Bodies[w.Geoms[bomb].Body].LinVel = parallax.V(0, 0.5, 18)

	explosions, fractures, breaks := 0, 0, 0
	for frame := 0; frame < 90; frame++ {
		fp := w.StepFrame()
		for i := range fp.Steps {
			explosions += fp.Steps[i].Explosions
			fractures += fp.Steps[i].FractureHit
			breaks += fp.Steps[i].JointBreaks
		}
	}

	flying := 0
	for _, b := range w.Bodies {
		if b.Enabled && b.LinVel.Len() > 1 {
			flying++
		}
	}
	fmt.Printf("after %.1fs: %d explosion(s), %d brick(s) shattered, %d joint(s) broke\n",
		w.Time, explosions, fractures, breaks)
	fmt.Printf("%d bodies still in motion; %d debris pieces active\n",
		flying, countDebris(w))
}

func countDebris(w *parallax.World) int {
	n := 0
	for _, fr := range w.Fractures {
		if fr.Broken {
			n += len(fr.Debris)
		}
	}
	return n
}
