// Rally: cars with suspension driving over procedural heightfield
// terrain, with a chase "camera" using world ray casts for line of
// sight — the racing scenario of the paper's Continuous benchmark.
package main

import (
	"fmt"
	"math"

	"github.com/parallax-arch/parallax"
)

// car assembles a chassis with four softly-suspended wheels.
type car struct {
	chassis int32
	wheels  [4]int32
}

func buildCar(w *parallax.World, pos parallax.Vec, group int32) car {
	var c car
	c.chassis, _ = w.AddBody(parallax.Box{Half: parallax.V(0.9, 0.3, 0.5)},
		350, pos.Add(parallax.V(0, 0.55, 0)), parallax.QIdent, 0, group)
	i := 0
	for _, dx := range [2]float64{-0.7, 0.7} {
		for _, dz := range [2]float64{-0.55, 0.55} {
			wp := pos.Add(parallax.V(dx, 0.3, dz))
			wb, _ := w.AddBody(parallax.Sphere{R: 0.3}, 12, wp, parallax.QIdent, 0, group)
			c.wheels[i] = wb
			h := parallax.NewHinge(w.Bodies, c.chassis, wb, wp, parallax.V(0, 0, 1))
			h.SoftAnchor = 2e-4 // suspension compliance
			w.AddJoint(h)
			i++
		}
	}
	return c
}

func main() {
	w := parallax.NewWorld()

	// Rolling terrain: 40x40 samples, 1.5 m pitch.
	const n = 40
	heights := make([]float64, n*n)
	for z := 0; z < n; z++ {
		for x := 0; x < n; x++ {
			fx, fz := float64(x)*1.5, float64(z)*1.5
			heights[z*n+x] = 0.5*math.Sin(fx*0.3) + 0.4*math.Cos(fz*0.25)
		}
	}
	hf := parallax.NewHeightField(n, n, 1.5, 1.5, heights)
	w.AddStatic(hf, parallax.V(0, 0, 0), parallax.QIdent)

	// Three cars launched down the course.
	var cars []car
	for k := 0; k < 3; k++ {
		x := 8 + float64(k)*6
		ground := hf.HeightAt(x, 5)
		c := buildCar(w, parallax.V(x, ground+0.05, 5), int32(k+1))
		cars = append(cars, c)
		w.Bodies[c.chassis].LinVel = parallax.V(0, 0, 9)
		for _, wh := range c.wheels {
			w.Bodies[wh].LinVel = parallax.V(0, 0, 9)
		}
	}

	for frame := 0; frame < 150; frame++ {
		w.StepFrame()
		if frame%50 == 49 {
			fmt.Printf("t=%.1fs\n", w.Time)
			for i, c := range cars {
				p := w.Bodies[c.chassis].Pos
				v := w.Bodies[c.chassis].LinVel.Len()
				// Chase-camera line of sight: ray from above/behind the car.
				eye := p.Add(parallax.V(0, 4, -7))
				dir := p.Sub(eye).Norm()
				vis := "visible"
				if hit, ok := w.RayCast(eye, dir, 20); ok {
					if hit.Pos.Dist(p) > 1.6 {
						vis = "occluded by terrain"
					}
				}
				fmt.Printf("  car %d at (%.1f, %.1f, %.1f), %.1f m/s, %s\n",
					i, p.X, p.Y, p.Z, v, vis)
			}
		}
	}

	// Every car should still be upright-ish and on the terrain.
	for i, c := range cars {
		b := w.Bodies[c.chassis]
		up := b.Rot.Rotate(parallax.V(0, 1, 0))
		state := "upright"
		if up.Y < 0.5 {
			state = "rolled"
		}
		fmt.Printf("car %d finished %s at z=%.1f\n", i, state, b.Pos.Z)
	}
}
