// Quickstart: drop a small stack of boxes and a ball onto the ground
// and watch them settle. Demonstrates world construction, stepping, and
// reading back body state through the public API.
package main

import (
	"fmt"

	"github.com/parallax-arch/parallax"
)

func main() {
	w := parallax.NewWorld()

	// Static ground plane at y = 0.
	w.AddStatic(parallax.Plane{Normal: parallax.V(0, 1, 0)}, parallax.V(0, 0, 0), parallax.QIdent)

	// A three-box stack.
	var stack []int32
	for i := 0; i < 3; i++ {
		bi, _ := w.AddBody(
			parallax.Box{Half: parallax.V(0.5, 0.5, 0.5)},
			2.0,
			parallax.V(0, 0.55+float64(i)*1.01, 0),
			parallax.QIdent, 0, 0)
		stack = append(stack, bi)
	}

	// A heavy ball lobbed at the stack.
	ball, _ := w.AddBody(parallax.Sphere{R: 0.4}, 8.0,
		parallax.V(-6, 1.5, 0), parallax.QIdent, 0, 0)
	w.Bodies[ball].LinVel = parallax.V(9, 2, 0)

	// Simulate 3 seconds (the engine steps at 0.01 s, 3 steps/frame).
	for frame := 0; frame < 90; frame++ {
		w.StepFrame()
		if frame%30 == 29 {
			fmt.Printf("t=%.1fs  ball at (%.2f, %.2f, %.2f), %d contacts this step\n",
				w.Time, w.Bodies[ball].Pos.X, w.Bodies[ball].Pos.Y,
				w.Bodies[ball].Pos.Z, w.Profile.Contacts)
		}
	}

	fmt.Println("\nfinal stack positions:")
	for i, bi := range stack {
		p := w.Bodies[bi].Pos
		fmt.Printf("  box %d: (%.2f, %.2f, %.2f)\n", i, p.X, p.Y, p.Z)
	}
}
