package parallax

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"github.com/parallax-arch/parallax/internal/exp"
	"github.com/parallax-arch/parallax/internal/phys/workload"
	"github.com/parallax-arch/parallax/internal/serve"
)

// benchScale sets the workload scale for the testing.B harness. The
// paper-scale suite (1.0) is used so the printed series correspond to
// EXPERIMENTS.md; each bench iteration re-runs one experiment's models
// over the shared captured workloads.
const benchScale = 1.0

var (
	suiteOnce sync.Once
	suite     *exp.Suite
)

func sharedSuite(b *testing.B) *exp.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite = exp.NewSuite(benchScale)
	})
	return suite
}

// benchExperiment runs one table/figure reproduction per iteration.
func benchExperiment(b *testing.B, id string) {
	s := sharedSuite(b)
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Run(s, io.Discard)
	}
}

// One bench per table and figure of the paper's evaluation.

func BenchmarkTable3(b *testing.B)      { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)      { benchExperiment(b, "table4") }
func BenchmarkFig2a(b *testing.B)       { benchExperiment(b, "fig2a") }
func BenchmarkFig2b(b *testing.B)       { benchExperiment(b, "fig2b") }
func BenchmarkFig3a(b *testing.B)       { benchExperiment(b, "fig3a") }
func BenchmarkFig3b(b *testing.B)       { benchExperiment(b, "fig3b") }
func BenchmarkFig4a(b *testing.B)       { benchExperiment(b, "fig4a") }
func BenchmarkFig4b(b *testing.B)       { benchExperiment(b, "fig4b") }
func BenchmarkFig5a(b *testing.B)       { benchExperiment(b, "fig5a") }
func BenchmarkFig5b(b *testing.B)       { benchExperiment(b, "fig5b") }
func BenchmarkFig6a(b *testing.B)       { benchExperiment(b, "fig6a") }
func BenchmarkFig6b(b *testing.B)       { benchExperiment(b, "fig6b") }
func BenchmarkFig7a(b *testing.B)       { benchExperiment(b, "fig7a") }
func BenchmarkFig7b(b *testing.B)       { benchExperiment(b, "fig7b") }
func BenchmarkFig9a(b *testing.B)       { benchExperiment(b, "fig9a") }
func BenchmarkFig9b(b *testing.B)       { benchExperiment(b, "fig9b") }
func BenchmarkFig10a(b *testing.B)      { benchExperiment(b, "fig10a") }
func BenchmarkFig10b(b *testing.B)      { benchExperiment(b, "fig10b") }
func BenchmarkTable7(b *testing.B)      { benchExperiment(b, "table7") }
func BenchmarkFig11(b *testing.B)       { benchExperiment(b, "fig11") }
func BenchmarkArbitration(b *testing.B) { benchExperiment(b, "sec721") }
func BenchmarkFilter(b *testing.B)      { benchExperiment(b, "sec822") }
func BenchmarkModel2(b *testing.B)      { benchExperiment(b, "sec83") }

// Extensions and ablations.

func BenchmarkExtPrefetch(b *testing.B)   { benchExperiment(b, "ext-prefetch") }
func BenchmarkExtSharedMem(b *testing.B)  { benchExperiment(b, "ext-sharedmem") }
func BenchmarkAblPartition(b *testing.B)  { benchExperiment(b, "abl-partition") }
func BenchmarkAblBroadphase(b *testing.B) { benchExperiment(b, "abl-broadphase") }
func BenchmarkAblIterations(b *testing.B) { benchExperiment(b, "abl-iterations") }
func BenchmarkAblWarmstart(b *testing.B)  { benchExperiment(b, "abl-warmstart") }
func BenchmarkRefSystem(b *testing.B)     { benchExperiment(b, "ref-system") }

// BenchmarkSuiteCapture measures the harness's capture stage: building
// and simulating the full 8-benchmark suite (1 warm + 3 measured frames
// each) at a reduced scale. The suite is rebuilt every iteration —
// Workloads() forces all captures through the concurrent per-benchmark
// path, so this tracks both engine speed and capture parallelism.
func BenchmarkSuiteCapture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := exp.NewSuite(0.25)
		if got := len(s.Workloads()); got != len(workload.All) {
			b.Fatalf("captured %d workloads, want %d", got, len(workload.All))
		}
	}
}

// BenchmarkCGOnly measures one uncached CG-machine evaluation (cache
// simulation + timing model) on the Mix workload — the unit of work the
// experiment worker pool fans out.
func BenchmarkCGOnly(b *testing.B) {
	s := sharedSuite(b)
	var wl *Workload
	for _, w := range s.Workloads() {
		if w.Name == "Mix" {
			wl = w
		}
	}
	if wl == nil {
		b.Fatal("Mix workload missing")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := wl.CGOnly(4, 12, true)
		if r.Total() <= 0 {
			b.Fatal("degenerate CG result")
		}
	}
}

// wallRubbleWorld builds the mid-size wall/rubble scene used to measure
// steady-state stepping (workload.BuildWallRubble, shared with
// paraxsim's -stepbench mode): at steady state every step exercises
// broad phase, narrow phase, island creation and island processing with
// a stable contact topology.
func wallRubbleWorld(threads int, warmStart bool) *World {
	w := workload.BuildWallRubble()
	w.SetThreads(threads)
	w.WarmStart = warmStart
	return w
}

// BenchmarkStep measures one steady-state Step on the wall/rubble
// scene; ReportAllocs makes allocs/op the tracked regression metric
// (the hot loop must not churn the GC — the engine is both the workload
// and the profiler feeding the architecture model). The traced variants
// run with the span tracer and metrics registry attached: the
// observability layer's contract is that recording costs ring-buffer
// writes and atomic adds only, so allocs/op must stay 0 there too.
func BenchmarkStep(b *testing.B) {
	for _, cfg := range []struct {
		name     string
		threads  int
		warm     bool
		traced   bool
		recorded bool
	}{
		{"threads=1", 1, false, false, false},
		{"threads=4", 4, false, false, false},
		{"threads=1/warmstart", 1, true, false, false},
		{"threads=1/traced", 1, false, true, false},
		{"threads=4/traced", 4, false, true, false},
		{"threads=1/recorded", 1, false, true, true},
		{"threads=4/recorded", 4, false, true, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			w := wallRubbleWorld(cfg.threads, cfg.warm)
			if cfg.traced {
				w.SetObs(NewTracer(), NewMetrics(), "bench")
			}
			if cfg.recorded {
				// The full flight-recorder stack: series rings staged and
				// committed every step, plus the anomaly detector's
				// windowed checks. Same contract as tracing: 0 allocs/op.
				w.SetSeries(NewSeries(512))
				w.SetHealth(NewHealth())
			}
			for i := 0; i < 120; i++ { // settle into steady state
				w.Step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Step()
			}
		})
	}
}

// BenchmarkStepServe measures one shard tick of the serving layer: the
// scheduler walking its resident sessions and stepping each world, plus
// the metric publication the shard goroutine performs per tick. The
// name shares BenchmarkStep's prefix deliberately — the CI allocs gate
// matches ^BenchmarkStep, so the serving hot path inherits the same
// 0 allocs/op contract as the engine step. The budget=1ns variant
// forces a deadline miss on every session each tick (evictions held
// off) so the miss accounting and degrade state machine are measured
// too, not just the happy path.
func BenchmarkStepServe(b *testing.B) {
	for _, cfg := range []struct {
		name   string
		budget time.Duration
	}{
		{"sessions=8", 0},
		{"sessions=8/deadline-miss", time.Nanosecond},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			worlds := make([]*World, 8)
			for i := range worlds {
				worlds[i] = wallRubbleWorld(1, false)
				for s := 0; s < 120; s++ { // settle into steady state
					worlds[i].Step()
				}
			}
			sb := serve.NewShardBench(NewMetrics(), cfg.budget, false, worlds...)
			sb.Tick() // warm the scheduler
			if got := sb.Sessions(); got != len(worlds) {
				b.Fatalf("%d resident sessions, want %d", got, len(worlds))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sb.Tick()
			}
		})
	}
}

// BenchmarkEngine measures the raw physics engine: one full frame
// (3 steps) of each benchmark at paper scale, single-threaded and with
// 4 worker threads.
func BenchmarkEngine(b *testing.B) {
	for _, bench := range workload.All {
		for _, threads := range []int{1, 4} {
			bench, threads := bench, threads
			b.Run(fmt.Sprintf("%s/threads=%d", bench.Name, threads), func(b *testing.B) {
				w := bench.Build(benchScale)
				w.Threads = threads
				w.StepFrame() // warm
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					w.StepFrame()
				}
			})
		}
	}
}

// TestPrintExperiments regenerates every table and figure at paper
// scale when run with -run TestPrintExperiments -v; its output is the
// source of EXPERIMENTS.md's "measured" columns.
func TestPrintExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: full-suite reproduction skipped")
	}
	s := exp.NewSuite(benchScale)
	s.RunAll(testWriter{t})
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Log(string(p))
	return len(p), nil
}
