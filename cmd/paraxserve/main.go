// Command paraxserve runs the sharded multi-world simulation server: a
// fixed pool of shard workers stepping independent World sessions at a
// fixed tick rate, with deadline-aware scheduling, admission control
// and graceful drain to a spill directory on SIGTERM (restorable on the
// next start). See DESIGN.md "Serving architecture".
//
//	paraxserve -addr 127.0.0.1:9800 -shards 4 -hz 60 -spill spill/
//
// Session API (JSON unless noted):
//
//	POST   /sessions                {"scene":"Wall","scale":1.0}, or a
//	                                raw PAXW snapshot with Content-Type
//	                                application/octet-stream → 201, or
//	                                429 when saturated
//	GET    /sessions                list resident sessions
//	GET    /sessions/{id}           session info
//	DELETE /sessions/{id}           detach and release
//	GET    /sessions/{id}/snapshot  PAXW bytes (octet-stream)
//	POST   /sessions/{id}/step      {"ticks":N} — manual stepping (-hz 0)
//	POST   /sessions/{id}/query     {"min":[x,y,z],"max":[x,y,z]} body query
//	POST   /sessions/{id}/migrate   {"shard":K} snapshot/restore rebalance
//	GET    /health                  200 "ok", 503 "draining"
//	GET    /metrics                 Prometheus text exposition
//	GET    /trace                   Chrome trace-event JSON (per-shard lanes)
//
// Exit codes: 0 clean shutdown (including SIGTERM drain), 1 runtime or
// I/O error, 2 usage.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/parallax-arch/parallax/internal/obs"
	"github.com/parallax-arch/parallax/internal/serve"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		addr        = flag.String("addr", "127.0.0.1:9800", "listen address")
		shards      = flag.Int("shards", 4, "shard worker count")
		threads     = flag.Int("threads", 1, "engine worker threads per resident world")
		hz          = flag.Float64("hz", 60, "tick rate per shard; 0 = manual stepping via /step only")
		budget      = flag.Duration("budget", 0, "per-session step budget per tick (0 disables deadline scheduling)")
		maxSessions = flag.Int("max-sessions", 1024, "fleet-wide resident session cap")
		queue       = flag.Int("queue", 64, "per-shard control queue depth (admission backpressure bound)")
		spill       = flag.String("spill", "", "drain spill directory; an existing manifest there is restored at startup")
		validate    = flag.String("validate", "", "validate a Prometheus exposition file and exit (CI helper)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "paraxserve: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		return 2
	}

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paraxserve: %v\n", err)
			return 1
		}
		if err := obs.ValidateExposition(data); err != nil {
			fmt.Fprintf(os.Stderr, "paraxserve: invalid exposition: %v\n", err)
			return 1
		}
		fmt.Println("ok")
		return 0
	}

	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	srv, err := serve.New(serve.Config{
		Shards:      *shards,
		Threads:     *threads,
		Hz:          *hz,
		Budget:      *budget,
		MaxSessions: *maxSessions,
		Queue:       *queue,
		SpillDir:    *spill,
	}, tr, reg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paraxserve: %v\n", err)
		return 1
	}
	if n := srv.Sessions(); n > 0 {
		fmt.Fprintf(os.Stderr, "paraxserve: restored %d sessions from %s\n", n, *spill)
	}
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paraxserve: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "paraxserve: listening on %s (shards=%d threads=%d hz=%g budget=%s max-sessions=%d)\n",
		ln.Addr(), *shards, *threads, *hz, *budget, *maxSessions)

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)

	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "paraxserve: %v\n", err)
		return 1
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "paraxserve: %v: draining\n", got)
	}

	// Stop accepting and finish in-flight requests first — shard
	// goroutines must stay alive while handlers hold ops in flight —
	// then detach, spill and stop the fleet.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "paraxserve: http shutdown: %v\n", err)
	}
	if err := srv.Drain(); err != nil {
		fmt.Fprintf(os.Stderr, "paraxserve: drain: %v\n", err)
		return 1
	}
	if *spill != "" {
		fmt.Fprintf(os.Stderr, "paraxserve: drained to %s\n", *spill)
	}
	return 0
}
