// Command paraxlint runs the repository's static-invariant analyzers
// (noalloc, determinism, floatcmp, chunkown per package, plus the
// module-spanning parsafe call-graph analysis — see internal/lint)
// over a set of package patterns and exits non-zero if any finding
// survives its //paraxlint:allow escape hatches.
//
// Findings are printed sorted by (file, line, column, analyzer), so the
// output is byte-stable across runs and diffable as a CI artifact; -o
// writes the same lines to a file as well.
//
// Usage:
//
//	go run ./cmd/paraxlint ./...
//	go run ./cmd/paraxlint -only noalloc ./internal/phys/...
//	go run ./cmd/paraxlint -o findings.txt ./...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/parallax-arch/parallax/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	outFile := flag.String("o", "", "also write the sorted findings to this file (written even when empty)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: paraxlint [-only name,...] [-o file] packages...\n\nanalyzers:\n")
		for _, a := range lint.All {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		for _, a := range lint.AllModule {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := lint.All
	modAnalyzers := lint.AllModule
	if *only != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		analyzers = nil
		for _, a := range lint.All {
			if want[a.Name] {
				analyzers = append(analyzers, a)
			}
		}
		modAnalyzers = nil
		for _, a := range lint.AllModule {
			if want[a.Name] {
				modAnalyzers = append(modAnalyzers, a)
			}
		}
		if len(analyzers)+len(modAnalyzers) == 0 {
			fmt.Fprintf(os.Stderr, "paraxlint: no analyzers match -only=%s\n", *only)
			os.Exit(2)
		}
	}

	// LoadModule (not Load) so parsafe sees the full in-module closure
	// even for subset patterns; per-package analyzers skip the DepOnly
	// extras.
	pkgs, err := lint.LoadModule(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paraxlint: %v\n", err)
		os.Exit(2)
	}

	var all []lint.Diagnostic
	for _, pkg := range pkgs {
		if pkg.DepOnly {
			continue
		}
		for _, a := range analyzers {
			diags, err := lint.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paraxlint: %v\n", err)
				os.Exit(2)
			}
			all = append(all, diags...)
		}
	}
	for _, a := range modAnalyzers {
		diags, err := lint.RunModule(a, pkgs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paraxlint: %v\n", err)
			os.Exit(2)
		}
		all = append(all, diags...)
	}

	lint.SortDiagnostics(all)
	var out strings.Builder
	for _, d := range all {
		fmt.Fprintf(&out, "%s: %s (%s)\n", d.Position, d.Message, d.Analyzer)
	}
	fmt.Print(out.String())
	if *outFile != "" {
		if err := os.WriteFile(*outFile, []byte(out.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "paraxlint: writing %s: %v\n", *outFile, err)
			os.Exit(2)
		}
	}
	if len(all) > 0 {
		os.Exit(1)
	}
}
