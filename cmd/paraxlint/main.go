// Command paraxlint runs the repository's static-invariant analyzers
// (noalloc, determinism, floatcmp — see internal/lint) over a set of
// package patterns and exits non-zero if any finding survives its
// //paraxlint:allow escape hatches.
//
// Usage:
//
//	go run ./cmd/paraxlint ./...
//	go run ./cmd/paraxlint -only noalloc ./internal/phys/...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/parallax-arch/parallax/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: paraxlint [-only name,...] packages...\n\nanalyzers:\n")
		for _, a := range lint.All {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := lint.All
	if *only != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		analyzers = nil
		for _, a := range lint.All {
			if want[a.Name] {
				analyzers = append(analyzers, a)
			}
		}
		if len(analyzers) == 0 {
			fmt.Fprintf(os.Stderr, "paraxlint: no analyzers match -only=%s\n", *only)
			os.Exit(2)
		}
	}

	pkgs, err := lint.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paraxlint: %v\n", err)
		os.Exit(2)
	}

	exit := 0
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags, err := lint.RunAnalyzer(a, pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paraxlint: %v\n", err)
				os.Exit(2)
			}
			for _, d := range diags {
				fmt.Printf("%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
				exit = 1
			}
		}
	}
	os.Exit(exit)
}
