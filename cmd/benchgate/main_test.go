package main

import (
	"strings"
	"testing"
)

func rep(runs ...run) report { return report{Scene: "WallRubble", Runs: runs} }

func findRow(t *testing.T, rows []row, threads int, metric string) row {
	t.Helper()
	for _, r := range rows {
		if r.Threads == threads && r.Metric == metric {
			return r
		}
	}
	t.Fatalf("no row for threads=%d metric=%s", threads, metric)
	return row{}
}

func TestWithinToleranceOK(t *testing.T) {
	base := rep(run{Threads: 1, NsPerStep: 1000, SerialFraction: 0.04})
	cur := rep(run{Threads: 1, NsPerStep: 1200, SerialFraction: 0.045})
	rows, regressed := compare(base, cur, 0.25, 0.01)
	if regressed {
		t.Fatalf("within-tolerance drift flagged as regression: %+v", rows)
	}
	if r := findRow(t, rows, 1, "ns_per_step"); r.Status != "ok" {
		t.Fatalf("ns_per_step status = %s, want ok", r.Status)
	}
}

func TestNsPerStepRegressionFails(t *testing.T) {
	base := rep(run{Threads: 1, NsPerStep: 1000, SerialFraction: 0.04},
		run{Threads: 4, NsPerStep: 400, SerialFraction: 0.04})
	cur := rep(run{Threads: 1, NsPerStep: 1300, SerialFraction: 0.04},
		run{Threads: 4, NsPerStep: 401, SerialFraction: 0.04})
	rows, regressed := compare(base, cur, 0.25, 0.01)
	if !regressed {
		t.Fatal("30% ns_per_step regression not flagged")
	}
	if r := findRow(t, rows, 1, "ns_per_step"); r.Status != "REGRESSION" {
		t.Fatalf("threads=1 ns_per_step status = %s, want REGRESSION", r.Status)
	}
	if r := findRow(t, rows, 4, "ns_per_step"); r.Status != "ok" {
		t.Fatalf("threads=4 ns_per_step status = %s, want ok", r.Status)
	}
}

func TestSerialFractionRegressionFails(t *testing.T) {
	base := rep(run{Threads: 4, NsPerStep: 400, SerialFraction: 0.04})
	cur := rep(run{Threads: 4, NsPerStep: 400, SerialFraction: 0.08})
	_, regressed := compare(base, cur, 0.25, 0.01)
	if !regressed {
		t.Fatal("doubled serial_fraction not flagged")
	}
}

func TestSerialFractionFloorAbsorbsNoise(t *testing.T) {
	// Relative change is huge (+100%) but the absolute increase (0.004)
	// sits under the floor: runner noise on a near-zero fraction.
	base := rep(run{Threads: 4, NsPerStep: 400, SerialFraction: 0.004})
	cur := rep(run{Threads: 4, NsPerStep: 400, SerialFraction: 0.008})
	rows, regressed := compare(base, cur, 0.25, 0.01)
	if regressed {
		t.Fatalf("sub-floor serial_fraction wobble flagged: %+v", rows)
	}
}

func TestImprovementNeverFails(t *testing.T) {
	base := rep(run{Threads: 1, NsPerStep: 1000, SerialFraction: 0.04})
	cur := rep(run{Threads: 1, NsPerStep: 500, SerialFraction: 0.01})
	rows, regressed := compare(base, cur, 0.25, 0.01)
	if regressed {
		t.Fatalf("improvement flagged as regression: %+v", rows)
	}
	if r := findRow(t, rows, 1, "ns_per_step"); r.Status != "improved" {
		t.Fatalf("halved ns_per_step status = %s, want improved", r.Status)
	}
}

func TestMissingThreadCountFails(t *testing.T) {
	base := rep(run{Threads: 1, NsPerStep: 1000}, run{Threads: 8, NsPerStep: 200})
	cur := rep(run{Threads: 1, NsPerStep: 1000})
	rows, regressed := compare(base, cur, 0.25, 0.01)
	if !regressed {
		t.Fatal("missing threads=8 run not flagged")
	}
	if r := findRow(t, rows, 8, "ns_per_step"); r.Status != "MISSING" {
		t.Fatalf("threads=8 status = %s, want MISSING", r.Status)
	}
}

func TestTableRendersMarkdown(t *testing.T) {
	base := rep(run{Threads: 1, NsPerStep: 1000, SerialFraction: 0.04})
	cur := rep(run{Threads: 1, NsPerStep: 1100, SerialFraction: 0.04})
	rows, _ := compare(base, cur, 0.25, 0.01)
	md := table("WallRubble", rows, 0.25)
	for _, want := range []string{"| threads | metric |", "ns_per_step", "serial_fraction", "+10.0%", "WallRubble"} {
		if !strings.Contains(md, want) {
			t.Fatalf("table missing %q:\n%s", want, md)
		}
	}
}
