// Command benchgate is the CI perf-regression gate: it compares a
// freshly generated step-benchmark report (paraxsim -stepjson) against
// the committed baseline and fails on regression, not just on allocs.
//
//	benchgate -baseline BENCH_step_baseline.json -current BENCH_step.json \
//	    -tolerance 0.25 -summary "$GITHUB_STEP_SUMMARY"
//
// Gated metrics, matched per thread count:
//
//   - ns_per_step: relative regression beyond -tolerance fails.
//   - serial_fraction: relative regression beyond -tolerance fails,
//     but only when the absolute increase also exceeds -serial-floor —
//     a 0.04 → 0.05 wobble is runner noise, not a lost Amdahl budget.
//
// Improvements never fail. A thread count present in the baseline but
// missing from the current report fails (the gate must not pass by
// measuring less). The before/after table is printed to stdout and,
// with -summary, appended as GitHub-flavored markdown to that file.
//
// Exit codes: 0 within tolerance, 1 regression or I/O error, 2 usage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// report mirrors the fields of paraxsim's -stepjson output that the
// gate reads; unknown fields are ignored.
type report struct {
	Scene string `json:"scene"`
	Runs  []run  `json:"runs"`
}

type run struct {
	Threads        int     `json:"threads"`
	NsPerStep      float64 `json:"ns_per_step"`
	AllocsPerStep  float64 `json:"allocs_per_step"`
	SerialFraction float64 `json:"serial_fraction"`
}

// row is one gated comparison.
type row struct {
	Threads  int
	Metric   string
	Baseline float64
	Current  float64
	// Delta is the relative change, current/baseline - 1 (0 when the
	// baseline is 0).
	Delta  float64
	Status string // "ok", "improved", "REGRESSION", "MISSING"
}

// compare matches baseline runs to current runs by thread count and
// gates ns_per_step and serial_fraction. It returns the table rows and
// whether any row regressed.
func compare(baseline, current report, tolerance, serialFloor float64) ([]row, bool) {
	cur := make(map[int]run, len(current.Runs))
	for _, r := range current.Runs {
		cur[r.Threads] = r
	}
	var rows []row
	regressed := false
	for _, b := range baseline.Runs {
		c, ok := cur[b.Threads]
		if !ok {
			rows = append(rows, row{Threads: b.Threads, Metric: "ns_per_step", Baseline: b.NsPerStep, Status: "MISSING"})
			regressed = true
			continue
		}
		r := gateRow(b.Threads, "ns_per_step", b.NsPerStep, c.NsPerStep, tolerance, 0)
		regressed = regressed || r.Status == "REGRESSION"
		rows = append(rows, r)
		r = gateRow(b.Threads, "serial_fraction", b.SerialFraction, c.SerialFraction, tolerance, serialFloor)
		regressed = regressed || r.Status == "REGRESSION"
		rows = append(rows, r)
	}
	return rows, regressed
}

// gateRow gates one metric: a regression needs the relative increase to
// exceed tolerance AND the absolute increase to exceed absFloor.
func gateRow(threads int, metric string, base, curv, tolerance, absFloor float64) row {
	r := row{Threads: threads, Metric: metric, Baseline: base, Current: curv, Status: "ok"}
	if base > 0 {
		r.Delta = curv/base - 1
	}
	switch {
	case curv > base && r.Delta > tolerance && curv-base > absFloor:
		r.Status = "REGRESSION"
	case base > 0 && r.Delta < -tolerance:
		r.Status = "improved"
	}
	return r
}

// table renders the rows as GitHub-flavored markdown.
func table(scene string, rows []row, tolerance float64) string {
	out := fmt.Sprintf("### Step benchmark gate (%s, ±%.0f%% tolerance)\n\n", scene, tolerance*100)
	out += "| threads | metric | baseline | current | Δ | status |\n"
	out += "|---:|---|---:|---:|---:|---|\n"
	for _, r := range rows {
		if r.Status == "MISSING" {
			out += fmt.Sprintf("| %d | %s | %.4g | — | — | %s |\n", r.Threads, r.Metric, r.Baseline, r.Status)
			continue
		}
		out += fmt.Sprintf("| %d | %s | %.4g | %.4g | %+.1f%% | %s |\n",
			r.Threads, r.Metric, r.Baseline, r.Current, r.Delta*100, r.Status)
	}
	return out
}

func readReport(path string) (report, error) {
	var rep report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Runs) == 0 {
		return rep, fmt.Errorf("%s: no runs", path)
	}
	return rep, nil
}

func main() { os.Exit(gate()) }

func gate() int {
	var (
		baselinePath = flag.String("baseline", "", "committed baseline report (paraxsim -stepjson)")
		currentPath  = flag.String("current", "", "freshly generated report to gate")
		tolerance    = flag.Float64("tolerance", 0.25, "relative regression tolerance")
		serialFloor  = flag.Float64("serial-floor", 0.01, "absolute serial_fraction increase below which the relative gate stays quiet")
		summaryPath  = flag.String("summary", "", "append the markdown table to this file (GITHUB_STEP_SUMMARY)")
	)
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" || flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are required")
		flag.Usage()
		return 2
	}
	baseline, err := readReport(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 1
	}
	current, err := readReport(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 1
	}
	rows, regressed := compare(baseline, current, *tolerance, *serialFloor)
	md := table(current.Scene, rows, *tolerance)
	fmt.Print(md)
	if *summaryPath != "" {
		f, err := os.OpenFile(*summaryPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			return 1
		}
		if _, err := f.WriteString(md + "\n"); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			return 1
		}
		f.Close()
	}
	if regressed {
		fmt.Fprintln(os.Stderr, "benchgate: regression beyond tolerance")
		return 1
	}
	return 0
}
