// Command paraxsim runs one benchmark of the physics suite and reports
// per-phase workload statistics: pairs, contacts, islands, fine-grain
// task counts, and the modeled per-frame instruction totals.
//
// Observability: -trace exports the run's engine phase/worker spans
// (and, with -eval, the architecture-model spans) as Chrome trace-event
// JSON for Perfetto (ui.perfetto.dev); -metrics writes the text
// snapshot of the run's counters. -cpuprofile, -memprofile and -pprof
// expose the standard Go profilers.
//
// Determinism: -save records the run's end state plus the profile
// digests of the following -frames worth of steps to a replay file;
// -load starts the run from a saved world state instead of building the
// benchmark; -replay re-steps a recording and exits non-zero on the
// first divergent step (-inject N corrupts digest N first, to prove the
// gate trips).
//
// Usage:
//
//	paraxsim -bench Mix -frames 5 -scale 1.0 -threads 4
//	paraxsim -bench Explosions -trace trace.json -metrics metrics.txt
//	paraxsim -bench Mix -cpuprofile cpu.pprof -pprof localhost:6060
//	paraxsim -bench Breakable -frames 10 -save run.paxr
//	paraxsim -replay run.paxr -threads 8
//	paraxsim -list
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"text/tabwriter"
	"time"

	"github.com/parallax-arch/parallax/internal/arch/kernels"
	archpx "github.com/parallax-arch/parallax/internal/arch/parallax"
	"github.com/parallax-arch/parallax/internal/obs"
	"github.com/parallax-arch/parallax/internal/phys/replay"
	"github.com/parallax-arch/parallax/internal/phys/workload"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

func main() {
	var (
		bench   = flag.String("bench", "Mix", "benchmark name")
		frames  = flag.Int("frames", 5, "frames to simulate (3 steps each)")
		scale   = flag.Float64("scale", 1.0, "workload scale (1.0 = paper)")
		threads = flag.Int("threads", 1, "worker threads for parallel phases")
		list    = flag.Bool("list", false, "list benchmarks and exit")
		eval    = flag.Bool("eval", false, "also evaluate the ParallAX reference system on this benchmark")

		saveFile   = flag.String("save", "", "after the run, record a replay (snapshot + digests) to `file`")
		loadFile   = flag.String("load", "", "start from the world snapshot in replay `file` instead of building")
		replayFile = flag.String("replay", "", "verify replay `file` step by step and exit (non-zero on divergence)")
		injectStep = flag.Int("inject", -1, "with -replay: corrupt the recorded digest of step `N` first")

		traceFile  = flag.String("trace", "", "write Chrome trace-event JSON (Perfetto) to `file`")
		metricsOut = flag.String("metrics", "", "write the metrics snapshot to `file`")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to `file`")
		memProfile = flag.String("memprofile", "", "write a heap profile to `file` at exit")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on `addr` (e.g. localhost:6060)")
	)
	flag.Parse()

	if *list {
		for _, b := range workload.All {
			fmt.Printf("%-12s %-22s %s\n", b.Name, "("+b.Genre+")", b.Desc)
		}
		return
	}

	if *replayFile != "" {
		rec, err := replay.Load(*replayFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *injectStep >= 0 {
			if *injectStep >= len(rec.Digests) {
				fmt.Fprintf(os.Stderr, "-inject %d out of range (%d recorded steps)\n",
					*injectStep, len(rec.Digests))
				os.Exit(1)
			}
			rec.Digests[*injectStep] ^= 0x1
			fmt.Printf("injected divergence into step %d\n", *injectStep)
		}
		fmt.Printf("replaying %q: %d steps at %d threads...\n",
			rec.Label, len(rec.Digests), *threads)
		if _, err := replay.Verify(rec, *threads); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("replay ok: %d steps bit-identical\n", len(rec.Digests))
		return
	}

	b, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; use -list\n", *bench)
		os.Exit(1)
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "# pprof: http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	// One tracer + registry observe the interactive run; exports are
	// written at exit when -trace/-metrics name files.
	tr := obs.NewTracer()
	reg := obs.NewRegistry()

	var w *world.World
	if *loadFile != "" {
		rec, err := replay.Load(*loadFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("loading world state from %s (%q)...\n", *loadFile, rec.Label)
		w = world.New()
		if err := w.Restore(rec.Snapshot); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("building %s at scale %.2f...\n", b.Name, *scale)
		w = b.Build(*scale)
	}
	w.Threads = *threads
	w.SetObs(tr, reg, "engine/"+b.Name)
	fmt.Printf("bodies=%d geoms=%d joints=%d cloths=%d\n",
		len(w.Bodies), len(w.Geoms), len(w.Joints), len(w.Cloths))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "frame\tpairs\tcontacts\tislands\tmaxDOF\texplosions\tfractures\tbreaks\tinstr(M)\twall")
	for f := 0; f < *frames; f++ {
		t0 := time.Now()
		fp := w.StepFrame()
		wall := time.Since(t0)
		var pairs, contacts, expl, frac, brk int
		islands, maxDOF := 0, 0
		var instr float64
		for i := range fp.Steps {
			s := &fp.Steps[i]
			pairs += s.Pairs
			contacts += s.Contacts
			expl += s.Explosions
			frac += s.FractureHit
			brk += s.JointBreaks
			if len(s.Islands) > islands {
				islands = len(s.Islands)
			}
			for _, is := range s.Islands {
				if is.DOF > maxDOF {
					maxDOF = is.DOF
				}
			}
			instr += kernels.DefaultCost.InstrCounts(s).Total()
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f\t%v\n",
			f+1, pairs, contacts, islands, maxDOF, expl, frac, brk, instr/1e6,
			wall.Round(time.Millisecond))
	}
	tw.Flush()

	// Final phase summary of the last step.
	p := w.Profile
	fmt.Printf("\nlast step: broad[geoms=%d sorts=%d] narrow[prim=%d tri=%d] "+
		"islandgen[finds=%d] solver[rows=%d updates=%d] cloth[verts=%d]\n",
		p.Broad.Geoms, p.Broad.SortOps, p.Narrow.PrimTests, p.Narrow.TriTests,
		p.FindSteps, p.Solver.Rows, p.Solver.RowUpdates, p.Cloth.VertexUpdates)

	if *saveFile != "" {
		label := fmt.Sprintf("%s scale=%.2f threads=%d", b.Name, *scale, *threads)
		steps := *frames * world.StepsPerFrame
		fmt.Printf("recording %d more steps to %s...\n", steps, *saveFile)
		rec := replay.Record(w, label, steps)
		if err := rec.Save(*saveFile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *eval {
		fmt.Println("\nevaluating the ParallAX reference system (4 CG + 12MB partitioned L2 + 150 shaders on-chip)...")
		ew := b.Build(*scale)
		ew.SetObs(tr, reg, "engine/eval/"+b.Name)
		wl := archpx.Capture(b.Name, ew, 1, 3)
		wl.SetObs(tr, reg, "arch/"+b.Name)
		bd := wl.Evaluate(archpx.Reference())
		fmt.Printf("  serial %.2f ms + CG %.2f ms + FG %.2f ms = %.2f ms (%.1f FPS, %t for 30 FPS)\n",
			bd.SerialTime*1e3, bd.CGParallelTime*1e3, bd.FGTime*1e3,
			bd.Total()*1e3, bd.FPS(), bd.MeetsRealTime())
		fmt.Printf("  estimated area: %.0f mm2 at 90nm\n", bd.AreaMM2)
	}

	if *traceFile != "" {
		writeTo(*traceFile, tr.WriteTrace)
	}
	if *metricsOut != "" {
		writeTo(*metricsOut, reg.WriteSnapshot)
	}
	if *memProfile != "" {
		runtime.GC()
		writeTo(*memProfile, pprof.WriteHeapProfile)
	}
}

// writeTo creates path and streams write into it, exiting on error.
func writeTo(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
