// Command paraxsim runs one benchmark of the physics suite and reports
// per-phase workload statistics: pairs, contacts, islands, fine-grain
// task counts, and the modeled per-frame instruction totals.
//
// Observability: -trace exports the run's engine phase/worker spans
// (and, with -eval, the architecture-model spans) as Chrome trace-event
// JSON for Perfetto (ui.perfetto.dev); -metrics writes the text
// snapshot of the run's counters. -cpuprofile, -memprofile and -pprof
// expose the standard Go profilers.
//
// Live telemetry: every run records a per-step series (kinetic energy,
// solver residual/impulse norms, max penetration, island stats,
// broad-phase churn, per-phase durations) into preallocated rings and
// feeds the anomaly detector (NaN state, energy spike, residual
// blowup, rebuild storm). -serve addr exposes /metrics (Prometheus
// text exposition, byte-identical across thread counts), /health
// (200/503), /trace and /series.json while the run executes — and
// keeps serving after it completes until the process is killed. When
// the detector trips, the run stops, a black-box flight bundle
// (snapshot + trace + metrics + series + a replayable recording) is
// written under -flightdir, and the process exits with status 3.
// -nan N corrupts one body velocity before frame N to exercise that
// path end to end.
//
// Determinism: -save records the run's end state plus the profile
// digests of the following -frames worth of steps to a replay file;
// -load starts the run from a saved world state instead of building the
// benchmark; -replay re-steps a recording and exits non-zero on the
// first divergent step (-inject N corrupts digest N first, to prove the
// gate trips).
//
// Benchmarking: -stepbench runs the steady-state wall/rubble stepping
// scene (the same scene as the repo's BenchmarkStep) at each listed
// thread count and reports per-step wall time, per-phase span totals,
// allocations per step, and the measured serial fraction; -stepjson
// writes the machine-readable report (see BENCH_step.json at the repo
// root for the committed baseline and CI's allocation gate).
//
// Usage:
//
//	paraxsim -bench Mix -frames 5 -scale 1.0 -threads 4
//	paraxsim -bench Explosions -trace trace.json -metrics metrics.txt
//	paraxsim -bench Mix -cpuprofile cpu.pprof -pprof localhost:6060
//	paraxsim -bench Breakable -frames 10 -save run.paxr
//	paraxsim -bench Mix -broad incsap -frames 5
//	paraxsim -stepbench 1,2,4,8 -stepjson BENCH_step.json
//	paraxsim -replay run.paxr -threads 8
//	paraxsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/parallax-arch/parallax/internal/arch/kernels"
	archpx "github.com/parallax-arch/parallax/internal/arch/parallax"
	"github.com/parallax-arch/parallax/internal/obs"
	"github.com/parallax-arch/parallax/internal/phys/broadphase"
	"github.com/parallax-arch/parallax/internal/phys/replay"
	"github.com/parallax-arch/parallax/internal/phys/workload"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

func main() {
	var (
		bench   = flag.String("bench", "Mix", "benchmark name")
		frames  = flag.Int("frames", 5, "frames to simulate (3 steps each)")
		scale   = flag.Float64("scale", 1.0, "workload scale (1.0 = paper)")
		threads = flag.Int("threads", 1, "worker threads for parallel phases")
		list    = flag.Bool("list", false, "list benchmarks and exit")
		eval    = flag.Bool("eval", false, "also evaluate the ParallAX reference system on this benchmark")
		broad   = flag.String("broad", "", "broad-phase algorithm: sap|incsap|grid (default: the world's own; with -load, replaces the restored broad phase and discards its saved sweep state)")

		stepBench = flag.String("stepbench", "", "comma list of thread counts (e.g. 1,2,4,8): run the steady-state step benchmark and exit")
		stepJSON  = flag.String("stepjson", "", "with -stepbench: write the machine-readable report to `file`")
		stepN     = flag.Int("stepn", 200, "with -stepbench: measured steps per thread count")

		saveFile   = flag.String("save", "", "after the run, record a replay (snapshot + digests) to `file`")
		loadFile   = flag.String("load", "", "start from the world snapshot in replay `file` instead of building")
		replayFile = flag.String("replay", "", "verify replay `file` step by step and exit (non-zero on divergence)")
		injectStep = flag.Int("inject", -1, "with -replay: corrupt the recorded digest of step `N` first")

		serveAddr = flag.String("serve", "", "serve live telemetry on `addr`: /metrics /health /trace /series.json")
		flightDir = flag.String("flightdir", "", "write black-box flight bundles under `dir` when the anomaly detector trips (or a replay diverges)")
		nanStep   = flag.Int("nan", -1, "corrupt one body velocity to NaN before frame `N` (tests the flight recorder)")

		traceFile  = flag.String("trace", "", "write Chrome trace-event JSON (Perfetto) to `file`")
		metricsOut = flag.String("metrics", "", "write the metrics snapshot to `file`")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to `file`")
		memProfile = flag.String("memprofile", "", "write a heap profile to `file` at exit")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on `addr` (e.g. localhost:6060)")
	)
	flag.Parse()

	if *list {
		for _, b := range workload.All {
			fmt.Printf("%-12s %-22s %s\n", b.Name, "("+b.Genre+")", b.Desc)
		}
		return
	}

	if *stepBench != "" {
		runStepBench(*stepBench, *stepN, *broad, *stepJSON)
		return
	}

	if *replayFile != "" {
		rec, err := replay.Load(*replayFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *injectStep >= 0 {
			if *injectStep >= len(rec.Digests) {
				fmt.Fprintf(os.Stderr, "-inject %d out of range (%d recorded steps)\n",
					*injectStep, len(rec.Digests))
				os.Exit(1)
			}
			rec.Digests[*injectStep] ^= 0x1
			fmt.Printf("injected divergence into step %d\n", *injectStep)
		}
		fmt.Printf("replaying %q: %d steps at %d threads...\n",
			rec.Label, len(rec.Digests), *threads)
		if div, err := replay.Verify(rec, *threads); err != nil {
			fmt.Fprintln(os.Stderr, err)
			if *flightDir != "" && div >= 0 {
				// Black-box the divergence: the bundle's snapshot plus the
				// digests up to (and including) the divergent step form a
				// recording that re-diverges at exactly the same step, so
				// the failure is portable and replayable on any machine.
				info := obs.FlightInfo{Cause: "replay_divergence", Step: int64(div), Label: rec.Label}
				bundle, berr := obs.WriteFlightBundle(*flightDir, info, rec.Snapshot, nil, nil, nil)
				if berr != nil {
					fmt.Fprintln(os.Stderr, berr)
					os.Exit(1)
				}
				trimmed := &replay.Recording{
					Label:    rec.Label,
					Snapshot: rec.Snapshot,
					Digests:  rec.Digests[:div+1],
				}
				if berr := trimmed.Save(filepath.Join(bundle, "replay.paxr")); berr != nil {
					fmt.Fprintln(os.Stderr, berr)
					os.Exit(1)
				}
				fmt.Fprintf(os.Stderr, "flight bundle written to %s\n", bundle)
			}
			os.Exit(1)
		}
		fmt.Printf("replay ok: %d steps bit-identical\n", len(rec.Digests))
		return
	}

	b, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; use -list\n", *bench)
		os.Exit(1)
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "# pprof: http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	// One tracer + registry observe the interactive run; exports are
	// written at exit when -trace/-metrics name files.
	tr := obs.NewTracer()
	reg := obs.NewRegistry()

	var w *world.World
	if *loadFile != "" {
		rec, err := replay.Load(*loadFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("loading world state from %s (%q)...\n", *loadFile, rec.Label)
		w = world.New()
		if err := w.Restore(rec.Snapshot); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("building %s at scale %.2f...\n", b.Name, *scale)
		w = b.Build(*scale)
	}
	if *broad != "" {
		// After a -load Restore this replaces the snapshot's broad phase
		// (and its saved sweep order / pair set): the run is then a fresh
		// start for the chosen algorithm, not a bit-exact resume.
		bp, err := broadphase.NewByName(*broad)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w.Broad = bp
	}
	w.SetThreads(*threads)
	w.SetObs(tr, reg, "engine/"+b.Name)

	// The flight recorder is always on: the series rings and the
	// detector are allocation-free per step (BenchmarkStep pins that),
	// so there is no "fast mode" without them to fall out of sync with.
	series := obs.NewSeries(flightSeriesSteps)
	health := obs.NewHealth()
	w.SetSeries(series)
	w.SetHealth(health)

	if *serveAddr != "" {
		go func() {
			if err := http.ListenAndServe(*serveAddr, obs.Handler(tr, reg, series, health)); err != nil {
				fmt.Fprintf(os.Stderr, "telemetry server: %v\n", err)
				os.Exit(1)
			}
		}()
		fmt.Fprintf(os.Stderr, "# telemetry: http://%s/metrics /health /trace /series.json\n", *serveAddr)
	}

	fmt.Printf("bodies=%d geoms=%d joints=%d cloths=%d\n",
		len(w.Bodies), len(w.Geoms), len(w.Joints), len(w.Cloths))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "frame\tpairs\tcontacts\tislands\tmaxDOF\texplosions\tfractures\tbreaks\tinstr(M)\twall")
	for f := 0; f < *frames; f++ {
		if f == *nanStep && len(w.Bodies) > 0 {
			fmt.Fprintf(os.Stderr, "corrupting body 0 velocity to NaN before frame %d\n", f+1)
			w.Bodies[0].LinVel.X = math.NaN()
		}
		t0 := time.Now()
		fp := w.StepFrame()
		wall := time.Since(t0)
		var pairs, contacts, expl, frac, brk int
		islands, maxDOF := 0, 0
		var instr float64
		for i := range fp.Steps {
			s := &fp.Steps[i]
			pairs += s.Pairs
			contacts += s.Contacts
			expl += s.Explosions
			frac += s.FractureHit
			brk += s.JointBreaks
			if len(s.Islands) > islands {
				islands = len(s.Islands)
			}
			for _, is := range s.Islands {
				if is.DOF > maxDOF {
					maxDOF = is.DOF
				}
			}
			instr += kernels.DefaultCost.InstrCounts(s).Total()
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f\t%v\n",
			f+1, pairs, contacts, islands, maxDOF, expl, frac, brk, instr/1e6,
			wall.Round(time.Millisecond))
		if health.Tripped() {
			break
		}
	}
	tw.Flush()

	if health.Tripped() {
		st := health.Status()
		fmt.Fprintf(os.Stderr, "anomaly detector tripped: %s at step %d (observed %g, baseline %g)\n",
			st.Cause, st.Step, st.Observed, st.Baseline)
		if *flightDir != "" {
			info := obs.FlightInfo{Cause: st.Cause.String(), Step: st.Step, Label: b.Name}
			bundle, err := obs.WriteFlightBundle(*flightDir, info, w.Snapshot(), tr, reg, series)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			// A recording of the tripped world: -load restores it (the
			// detector re-trips on the first step), -replay re-verifies
			// the post-divergence digests.
			rec := replay.Record(w, info.Label+" (flight)", world.StepsPerFrame)
			if err := rec.Save(filepath.Join(bundle, "replay.paxr")); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "flight bundle written to %s\n", bundle)
		}
		// Exit 3 distinguishes "the physics diverged" from usage (2) and
		// I/O (1) failures, so scripts and CI never read a poisoned run
		// as a result.
		os.Exit(3)
	}

	// Final phase summary of the last step.
	p := w.Profile
	fmt.Printf("\nlast step: broad[geoms=%d sorts=%d] narrow[prim=%d tri=%d] "+
		"islandgen[finds=%d] solver[rows=%d updates=%d] cloth[verts=%d]\n",
		p.Broad.Geoms, p.Broad.SortOps, p.Narrow.PrimTests, p.Narrow.TriTests,
		p.FindSteps, p.Solver.Rows, p.Solver.RowUpdates, p.Cloth.VertexUpdates)

	if *saveFile != "" {
		label := fmt.Sprintf("%s scale=%.2f threads=%d", b.Name, *scale, *threads)
		steps := *frames * world.StepsPerFrame
		fmt.Printf("recording %d more steps to %s...\n", steps, *saveFile)
		rec := replay.Record(w, label, steps)
		if err := rec.Save(*saveFile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *eval {
		fmt.Println("\nevaluating the ParallAX reference system (4 CG + 12MB partitioned L2 + 150 shaders on-chip)...")
		ew := b.Build(*scale)
		ew.SetObs(tr, reg, "engine/eval/"+b.Name)
		wl := archpx.Capture(b.Name, ew, 1, 3)
		wl.SetObs(tr, reg, "arch/"+b.Name)
		bd := wl.Evaluate(archpx.Reference())
		fmt.Printf("  serial %.2f ms + CG %.2f ms + FG %.2f ms = %.2f ms (%.1f FPS, %t for 30 FPS)\n",
			bd.SerialTime*1e3, bd.CGParallelTime*1e3, bd.FGTime*1e3,
			bd.Total()*1e3, bd.FPS(), bd.MeetsRealTime())
		fmt.Printf("  estimated area: %.0f mm2 at 90nm\n", bd.AreaMM2)
	}

	if *traceFile != "" {
		writeTo(*traceFile, tr.WriteTrace)
	}
	if *metricsOut != "" {
		// No Tracer.Publish here: the -metrics file is the deterministic
		// snapshot, byte-identical across -threads values. Span totals
		// and drop counters are wall-clock/schedule-dependent; they are
		// published into flight-bundle metrics.txt instead.
		writeTo(*metricsOut, reg.WriteSnapshot)
	}
	if *memProfile != "" {
		runtime.GC()
		writeTo(*memProfile, pprof.WriteHeapProfile)
	}

	if *serveAddr != "" {
		fmt.Fprintln(os.Stderr, "run complete; serving telemetry until killed")
		select {}
	}
}

// flightSeriesSteps is the resident series window: how many trailing
// steps of telemetry a flight bundle (and /series.json) carries.
const flightSeriesSteps = 512

// benchPhase is one engine phase's share of a measured stepbench run.
type benchPhase struct {
	Name      string  `json:"name"`
	NsPerStep float64 `json:"ns_per_step"`
	Fraction  float64 `json:"fraction_of_step"`
}

// benchRun is one thread count's measurement.
type benchRun struct {
	Threads        int          `json:"threads"`
	NsPerStep      float64      `json:"ns_per_step"`
	AllocsPerStep  float64      `json:"allocs_per_step"`
	SerialFraction float64      `json:"serial_fraction"`
	Phases         []benchPhase `json:"phases"`
}

// benchReport is the machine-readable -stepbench output (the committed
// baseline lives at BENCH_step.json; CI regenerates it and gates on
// allocs_per_step staying zero).
type benchReport struct {
	Scene       string     `json:"scene"`
	Broad       string     `json:"broad"`
	SettleSteps int        `json:"settle_steps"`
	Steps       int        `json:"steps"`
	GoMaxProcs  int        `json:"gomaxprocs"`
	NumCPU      int        `json:"num_cpu"`
	Runs        []benchRun `json:"runs"`
}

// stepBenchPhases are the per-step phase spans reported by -stepbench;
// broadphase and island-creation still contain the step's serial
// sections (pair emission and the union-find merge), so their combined
// share of the step span is reported as serial_fraction. The *-chunk
// entries are the worker-side task spans summed across lanes (CPU
// time, so at N threads they can exceed the enclosing phase's wall
// time): refresh-chunk and edge-chunk are the parallelizable portions
// of broadphase and island-creation, so at 1 thread
// (phase − chunk) is the residual serial budget of each.
var stepBenchPhases = []string{
	"broadphase", "narrowphase", "island-creation", "island-processing", "integrate", "cloth",
	"refresh-chunk", "narrow-chunk", "edge-chunk", "integrate-chunk", "sync-chunk",
}

// stepBenchSettle matches BenchmarkStep's settle loop: the scene
// reaches a steady contact topology before measurement starts.
const stepBenchSettle = 120

// runStepBench measures steady-state stepping of the wall/rubble scene
// at each listed thread count: wall time and heap allocations per step,
// plus each phase's cumulative span time (from the tracer's totals
// table), and writes the JSON report when jsonPath is set.
func runStepBench(threadList string, steps int, broadName, jsonPath string) {
	var counts []int
	for _, s := range strings.Split(threadList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "invalid -stepbench entry %q: want positive integers\n", s)
			os.Exit(2)
		}
		counts = append(counts, n)
	}
	if steps < 1 {
		fmt.Fprintf(os.Stderr, "invalid -stepn %d: must be >= 1\n", steps)
		os.Exit(2)
	}

	rep := benchReport{
		Scene:       "WallRubble",
		Broad:       broadName,
		SettleSteps: stepBenchSettle,
		Steps:       steps,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	}
	if rep.Broad == "" {
		rep.Broad = "default"
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "threads\tns/step\tallocs/step\tserial%\t"+strings.Join(stepBenchPhases, "\t"))
	for _, n := range counts {
		run := stepBenchOne(n, steps, broadName)
		rep.Runs = append(rep.Runs, run)
		row := fmt.Sprintf("%d\t%.0f\t%.2f\t%.1f%%", run.Threads, run.NsPerStep,
			run.AllocsPerStep, 100*run.SerialFraction)
		for _, p := range run.Phases {
			row += fmt.Sprintf("\t%.0f", p.NsPerStep)
		}
		fmt.Fprintln(tw, row)
	}
	tw.Flush()

	if jsonPath != "" {
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(jsonPath, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}

// stepBenchOne measures one thread count on a freshly built, freshly
// settled world with its own tracer (so span totals start at zero).
func stepBenchOne(threads, steps int, broadName string) benchRun {
	w := workload.BuildWallRubble()
	if broadName != "" {
		bp, err := broadphase.NewByName(broadName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w.Broad = bp
	}
	w.SetThreads(threads)
	tr := obs.NewTracer()
	w.SetObs(tr, nil, "stepbench")

	stepID := tr.Span("step")
	ids := make([]obs.SpanID, len(stepBenchPhases))
	for i, name := range stepBenchPhases {
		ids[i] = tr.Span(name)
	}

	for i := 0; i < stepBenchSettle; i++ {
		w.Step()
	}
	// The timed loop, retried: runtime background work (scheduler,
	// finalizers, GC debt from earlier thread counts' setup) can charge
	// a stray allocation to a pass, so up to five passes run and the
	// one with the fewest heap allocations wins — the
	// minimum-over-retries discipline testing.AllocsPerRun uses. The
	// loop exits on the first clean pass, so retries only cost time
	// when something actually allocated. Each pass re-reads its own
	// span-total baselines, so the winning pass's per-phase deltas
	// cover exactly its own steps.
	var wall time.Duration
	var mallocs uint64
	var stepNs float64
	phaseNs := make([]float64, len(ids))
	for attempt := 0; attempt < 5; attempt++ {
		_, stepNs0 := tr.SpanTotal(stepID)
		base := make([]int64, len(ids))
		for i, id := range ids {
			_, base[i] = tr.SpanTotal(id)
		}
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		for i := 0; i < steps; i++ {
			w.Step()
		}
		d := time.Since(t0)
		runtime.ReadMemStats(&m1)
		_, stepNs1 := tr.SpanTotal(stepID)
		alloc := m1.Mallocs - m0.Mallocs
		if attempt == 0 || alloc < mallocs {
			wall, mallocs = d, alloc
			stepNs = float64(stepNs1 - stepNs0)
			for i, id := range ids {
				_, ns1 := tr.SpanTotal(id)
				phaseNs[i] = float64(ns1 - base[i])
			}
		}
		if mallocs == 0 {
			break
		}
	}

	run := benchRun{
		Threads:       threads,
		NsPerStep:     float64(wall.Nanoseconds()) / float64(steps),
		AllocsPerStep: float64(mallocs) / float64(steps),
	}
	var serialNs float64
	for i, name := range stepBenchPhases {
		ns := phaseNs[i]
		frac := 0.0
		if stepNs > 0 {
			frac = ns / stepNs
		}
		run.Phases = append(run.Phases, benchPhase{
			Name:      name,
			NsPerStep: ns / float64(steps),
			Fraction:  frac,
		})
		if name == "broadphase" || name == "island-creation" {
			serialNs += ns
		}
	}
	if stepNs > 0 {
		run.SerialFraction = serialNs / stepNs
	}
	return run
}

// writeTo creates path and streams write into it, exiting on error.
func writeTo(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
