// Command paraxsim runs one benchmark of the physics suite and reports
// per-phase workload statistics: pairs, contacts, islands, fine-grain
// task counts, and the modeled per-frame instruction totals.
//
// Usage:
//
//	paraxsim -bench Mix -frames 5 -scale 1.0 -threads 4
//	paraxsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"github.com/parallax-arch/parallax/internal/arch/kernels"
	archpx "github.com/parallax-arch/parallax/internal/arch/parallax"
	"github.com/parallax-arch/parallax/internal/phys/workload"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

func main() {
	var (
		bench   = flag.String("bench", "Mix", "benchmark name")
		frames  = flag.Int("frames", 5, "frames to simulate (3 steps each)")
		scale   = flag.Float64("scale", 1.0, "workload scale (1.0 = paper)")
		threads = flag.Int("threads", 1, "worker threads for parallel phases")
		list    = flag.Bool("list", false, "list benchmarks and exit")
		eval    = flag.Bool("eval", false, "also evaluate the ParallAX reference system on this benchmark")
	)
	flag.Parse()

	if *list {
		for _, b := range workload.All {
			fmt.Printf("%-12s %-22s %s\n", b.Name, "("+b.Genre+")", b.Desc)
		}
		return
	}

	b, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; use -list\n", *bench)
		os.Exit(1)
	}

	fmt.Printf("building %s at scale %.2f...\n", b.Name, *scale)
	w := b.Build(*scale)
	w.Threads = *threads
	fmt.Printf("bodies=%d geoms=%d joints=%d cloths=%d\n",
		len(w.Bodies), len(w.Geoms), len(w.Joints), len(w.Cloths))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "frame\tpairs\tcontacts\tislands\tmaxDOF\texplosions\tfractures\tbreaks\tinstr(M)\twall")
	for f := 0; f < *frames; f++ {
		t0 := time.Now()
		fp := w.StepFrame()
		wall := time.Since(t0)
		var pairs, contacts, expl, frac, brk int
		islands, maxDOF := 0, 0
		var instr float64
		for i := range fp.Steps {
			s := &fp.Steps[i]
			pairs += s.Pairs
			contacts += s.Contacts
			expl += s.Explosions
			frac += s.FractureHit
			brk += s.JointBreaks
			if len(s.Islands) > islands {
				islands = len(s.Islands)
			}
			for _, is := range s.Islands {
				if is.DOF > maxDOF {
					maxDOF = is.DOF
				}
			}
			instr += kernels.DefaultCost.InstrCounts(s).Total()
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f\t%v\n",
			f+1, pairs, contacts, islands, maxDOF, expl, frac, brk, instr/1e6,
			wall.Round(time.Millisecond))
	}
	tw.Flush()

	// Final phase summary of the last step.
	p := w.Profile
	fmt.Printf("\nlast step: broad[geoms=%d sorts=%d] narrow[prim=%d tri=%d] "+
		"islandgen[finds=%d] solver[rows=%d updates=%d] cloth[verts=%d]\n",
		p.Broad.Geoms, p.Broad.SortOps, p.Narrow.PrimTests, p.Narrow.TriTests,
		p.FindSteps, p.Solver.Rows, p.Solver.RowUpdates, p.Cloth.VertexUpdates)
	_ = world.StepsPerFrame

	if *eval {
		fmt.Println("\nevaluating the ParallAX reference system (4 CG + 12MB partitioned L2 + 150 shaders on-chip)...")
		wl := archpx.Capture(b.Name, b.Build(*scale), 1, 3)
		bd := wl.Evaluate(archpx.Reference())
		fmt.Printf("  serial %.2f ms + CG %.2f ms + FG %.2f ms = %.2f ms (%.1f FPS, %t for 30 FPS)\n",
			bd.SerialTime*1e3, bd.CGParallelTime*1e3, bd.FGTime*1e3,
			bd.Total()*1e3, bd.FPS(), bd.MeetsRealTime())
		fmt.Printf("  estimated area: %.0f mm2 at 90nm\n", bd.AreaMM2)
	}
}
