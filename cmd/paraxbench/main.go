// Command paraxbench reproduces the paper's tables and figures. It
// captures the benchmark suite by running the real physics engine, then
// drives the architecture models and prints the same rows/series the
// paper reports.
//
// Usage:
//
//	paraxbench -list
//	paraxbench -exp fig10b
//	paraxbench -exp all -scale 1.0
//	paraxbench -exp fig2a,fig2b -scale 0.5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/parallax-arch/parallax/internal/exp"
)

func main() {
	var (
		id    = flag.String("exp", "all", "experiment id, comma list, or 'all'")
		scale = flag.Float64("scale", 1.0, "workload scale (1.0 = paper)")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Registry {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	t0 := time.Now()
	fmt.Printf("capturing the 8-benchmark suite at scale %.2f...\n", *scale)
	s := exp.NewSuite(*scale)
	fmt.Printf("capture complete in %v\n\n", time.Since(t0).Round(time.Millisecond))

	if *id == "all" {
		s.RunAll(os.Stdout)
		return
	}
	for _, one := range strings.Split(*id, ",") {
		one = strings.TrimSpace(one)
		e, ok := exp.ByID(one)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", one)
			os.Exit(1)
		}
		fmt.Printf("==== %s — %s ====\n", e.ID, e.Title)
		e.Run(s, os.Stdout)
		fmt.Println()
	}
}
