// Command paraxbench reproduces the paper's tables and figures. It
// captures the benchmark suite by running the real physics engine, then
// drives the architecture models and prints the same rows/series the
// paper reports.
//
// Capture is lazy (a focused experiment only pays for the benchmarks it
// reads) and the harness is parallel: captures run concurrently, model
// evaluations fan out on a -threads-wide worker pool, and experiment
// sections merge to stdout in paper order — byte-identical to a
// -threads=1 run except for the "# timing:" lines.
//
// Observability: -trace exports the run's span timeline (engine phases,
// architecture models, harness captures/experiments) as Chrome
// trace-event JSON for Perfetto (ui.perfetto.dev); -metrics writes the
// deterministic text snapshot of the run's counters. -cpuprofile,
// -memprofile and -pprof expose the standard Go profilers.
//
// Usage:
//
//	paraxbench -list
//	paraxbench -exp fig10b
//	paraxbench -exp all -scale 1.0 -threads 8
//	paraxbench -exp fig2a,fig2b -scale 0.5 -bench Explosions,Mix
//	paraxbench -exp all -scale 0.25 -trace trace.json -metrics metrics.txt
//	paraxbench -exp all -cpuprofile cpu.pprof -pprof localhost:6060
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/parallax-arch/parallax/internal/exp"
	"github.com/parallax-arch/parallax/internal/obs"
	"github.com/parallax-arch/parallax/internal/phys/broadphase"
)

func main() {
	var (
		id      = flag.String("exp", "all", "experiment id, comma list, or 'all'")
		scale   = flag.Float64("scale", 1.0, "workload scale (1.0 = paper; must be > 0)")
		threads = flag.Int("threads", runtime.GOMAXPROCS(0),
			"harness worker threads (1 = fully serial; default GOMAXPROCS)")
		bench = flag.String("bench", "",
			"comma list of benchmarks to restrict the suite to (default: all)")
		broad = flag.String("broad", "",
			"broad-phase algorithm for every captured world: sap|incsap|grid (default: each benchmark's own)")
		list       = flag.Bool("list", false, "list experiments and exit")
		serveAddr  = flag.String("serve", "", "serve live telemetry on `addr`: /metrics /health /trace /series.json")
		traceFile  = flag.String("trace", "", "write Chrome trace-event JSON (Perfetto) to `file`")
		metricsOut = flag.String("metrics", "", "write the metrics snapshot to `file`")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to `file`")
		memProfile = flag.String("memprofile", "", "write a heap profile to `file` at exit")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on `addr` (e.g. localhost:6060)")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Registry {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	if *scale <= 0 {
		fmt.Fprintf(os.Stderr, "invalid -scale %v: must be > 0 (a zero or negative scale builds degenerate scenes)\n", *scale)
		os.Exit(2)
	}
	if *threads < 1 {
		fmt.Fprintf(os.Stderr, "invalid -threads %d: must be >= 1\n", *threads)
		os.Exit(2)
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "# pprof: http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	s := exp.NewSuite(*scale)
	if *bench != "" {
		var names []string
		for _, n := range strings.Split(*bench, ",") {
			names = append(names, strings.TrimSpace(n))
		}
		var err error
		s, err = exp.NewSuiteOf(*scale, names...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	s.Threads = *threads
	if *broad != "" {
		// Validate the name once up front; captures then build a fresh
		// instance per world (sweep structures carry cross-step state).
		if _, err := broadphase.NewByName(*broad); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		name := *broad
		s.Broad = func() broadphase.Interface {
			bp, _ := broadphase.NewByName(name)
			return bp
		}
	}

	if *serveAddr != "" {
		// The harness has no single stepping world, so no series rings or
		// anomaly detector — /metrics and /trace expose the suite's
		// registry and tracer live, and /health always answers 200.
		h := obs.Handler(s.Tracer(), s.Metrics(), nil, nil)
		go func() {
			if err := http.ListenAndServe(*serveAddr, h); err != nil {
				fmt.Fprintf(os.Stderr, "telemetry server: %v\n", err)
				os.Exit(1)
			}
		}()
		fmt.Fprintf(os.Stderr, "# telemetry: http://%s/metrics /health /trace\n", *serveAddr)
	}

	ids := exp.IDs()
	if *id != "all" {
		ids = nil
		for _, one := range strings.Split(*id, ",") {
			ids = append(ids, strings.TrimSpace(one))
		}
	}

	t0 := time.Now()
	if err := s.RunIDs(os.Stdout, ids...); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	captured, captureTime := s.CaptureStats()
	fmt.Printf("# timing: capture benchmarks=%d cpu=%s\n", captured, captureTime.Round(time.Millisecond))
	fmt.Printf("# timing: total experiments=%d threads=%d wall=%s\n",
		len(ids), *threads, time.Since(t0).Round(time.Millisecond))

	if *traceFile != "" {
		writeTo(*traceFile, s.Tracer().WriteTrace)
	}
	if *metricsOut != "" {
		// No Tracer.Publish here: the -metrics file is the deterministic
		// snapshot, byte-identical across -threads values. Span totals
		// and drop counters are wall-clock/schedule-dependent; they are
		// published into flight-bundle metrics.txt instead.
		writeTo(*metricsOut, s.Metrics().WriteSnapshot)
	}
	if *memProfile != "" {
		runtime.GC()
		writeTo(*memProfile, pprof.WriteHeapProfile)
	}

	if *serveAddr != "" {
		fmt.Fprintln(os.Stderr, "run complete; serving telemetry until killed")
		select {}
	}
}

// writeTo creates path and streams write into it, exiting on error.
func writeTo(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := write(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
