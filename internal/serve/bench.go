package serve

import (
	"time"

	"github.com/parallax-arch/parallax/internal/obs"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// ShardBench exposes a standalone shard — no HTTP, no goroutine — so
// the root package's BenchmarkStepServe can drive the per-tick loop
// directly and the CI allocs gate can prove it allocation-free in
// steady state. Also used by white-box tests to pin the deadline state
// machine without a live ticker.
type ShardBench struct {
	sh *shard
}

// NewShardBench builds a shard holding the given worlds as sessions.
// budget is the per-session tick budget (0 disables deadlines); evict
// reports whether over-budget sessions may be evicted (benchmarks turn
// this off so the session population stays fixed while measuring).
func NewShardBench(reg *obs.Registry, budget time.Duration, evict bool, worlds ...*world.World) *ShardBench {
	tr := obs.NewTracer()
	sh := newShard(nil, 0, 1, 1, 0, budget, tr, reg, serveCounters{
		ticks:     reg.Counter("serve/ticks"),
		misses:    reg.Counter("serve/deadline_misses"),
		degraded:  reg.Counter("serve/degraded"),
		evictions: reg.Counter("serve/evictions"),
	})
	if !evict {
		sh.evictAfter = 1 << 60
	}
	for i, w := range worlds {
		sh.attach(newSession(benchID(i), "bench", 0, w, reg))
	}
	return &ShardBench{sh: sh}
}

// benchID formats deterministic ids without fmt (cold path, but keep it
// simple and allocation-obvious).
func benchID(i int) string {
	return "b-" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// Tick runs one shard tick followed by the metric publication run()
// would perform.
func (b *ShardBench) Tick() {
	b.sh.tick()
	b.sh.publish()
}

// States returns the per-session scheduler states in attach order.
func (b *ShardBench) States() []string {
	out := make([]string, 0, len(b.sh.sessions))
	for _, s := range b.sh.sessions {
		out = append(out, s.state.String())
	}
	return out
}

// Sessions returns the resident session count (evictions shrink it).
func (b *ShardBench) Sessions() int { return len(b.sh.sessions) }
