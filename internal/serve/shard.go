package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/parallax-arch/parallax/internal/obs"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// Deadline scheduler thresholds: consecutive budget misses before an
// active session is degraded to half rate, and further consecutive
// misses before a degraded session is evicted. Shard fields (not
// consts) so white-box tests and benchmarks can pin the state machine.
const (
	defaultDegradeAfter = 3
	defaultEvictAfter   = 8
)

// opKind enumerates the shard control operations. Everything that
// touches a resident session — stepping, snapshots, queries, removal —
// runs on the shard goroutine, serialized through one bounded channel:
// sessions need no locks, and a saturated channel is the admission
// backpressure signal.
type opKind int

const (
	opAttach opKind = iota
	opDetach
	opStep
	opSnapshot
	opQuery
	opInfo
	opList
	opDetachAll
)

type op struct {
	kind  opKind
	sess  *Session // opAttach
	id    string   // session selector for opDetach/opStep/opSnapshot/opQuery/opInfo
	ticks int      // opStep
	box   m3.AABB  // opQuery
	reply chan opReply
}

// opReply is the single response every op gets. The reply channel is
// buffered (capacity 1) so the shard never blocks on an abandoned
// caller.
type opReply struct {
	ok    bool
	err   string
	sess  *Session
	all   []*Session
	data  []byte
	ids   []int32
	info  SessionInfo
	infos []SessionInfo
}

// serveCounters are the fleet-wide counter families, registered once by
// the server and shared by all shards (counters are atomic adds, so
// cross-shard sharing is free).
type serveCounters struct {
	ticks     obs.CounterID
	misses    obs.CounterID
	degraded  obs.CounterID
	evictions obs.CounterID
}

// shard owns a dense run queue of sessions and steps them at the tick
// rate. One goroutine (run) is the sole writer of all session state.
type shard struct {
	srv     *Server // nil in standalone benchmarks
	index   int
	threads int   // worker threads per resident world
	budget  int64 // per-session tick budget in nanoseconds; 0 disables deadlines

	degradeAfter int64
	evictAfter   int64

	sessions []*Session
	control  chan op
	stop     chan struct{}
	done     chan struct{}
	ticker   *time.Ticker
	tickCh   <-chan time.Time // nil when hz == 0 (manual stepping only)

	tr       *obs.Tracer
	lane     *obs.Lane
	tickSpan obs.SpanID
	reg      *obs.Registry
	ctr      serveCounters
	gSess    obs.GaugeID

	nsess atomic.Int64 // resident sessions, readable by the placement path

	tickNum int64
	// Per-tick deltas accumulated by the allocation-free tick loop and
	// folded into the registry by run() between ticks.
	dMisses   int64
	dDegraded int64
	// evictPending counts sessions marked evicted since the last reap.
	evictPending int64
}

// newShard builds one shard. hz <= 0 disables the ticker: sessions then
// advance only through explicit step ops (the mode CI smoke tests and
// the determinism tests use, since a free-running clock would make
// drain/restart snapshots diverge by however many ticks elapsed).
func newShard(srv *Server, index, threads, queue int, hz float64, budget time.Duration,
	tr *obs.Tracer, reg *obs.Registry, ctr serveCounters) *shard {
	if queue < 1 {
		queue = 1
	}
	sh := &shard{
		srv:          srv,
		index:        index,
		threads:      threads,
		budget:       budget.Nanoseconds(),
		degradeAfter: defaultDegradeAfter,
		evictAfter:   defaultEvictAfter,
		control:      make(chan op, queue),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
		tr:           tr,
		lane:         tr.Lane(fmt.Sprintf("serve/shard%d", index), obs.DefaultLaneEvents),
		tickSpan:     tr.Span("shard-tick"),
		reg:          reg,
		ctr:          ctr,
		gSess:        reg.Gauge(fmt.Sprintf("serve/shard%d/sessions", index)),
	}
	if hz > 0 {
		sh.ticker = time.NewTicker(time.Duration(float64(time.Second) / hz))
		sh.tickCh = sh.ticker.C
	}
	return sh
}

// run is the shard goroutine: control ops and ticks interleave here, so
// every access to resident sessions is single-threaded. Metric and span
// publication happens here, between ticks, keeping the tick loop itself
// free of registry and lane calls.
func (sh *shard) run() {
	defer close(sh.done)
	for {
		select {
		case <-sh.stop:
			if sh.ticker != nil {
				sh.ticker.Stop()
			}
			return
		case o := <-sh.control:
			sh.handle(o)
		case <-sh.tickCh:
			t0 := sh.tr.Now()
			sh.tick()
			sh.lane.Complete(sh.tickSpan, t0)
			sh.publish()
		}
	}
}

// tick steps every resident session once (degraded sessions every other
// tick) and drives the deadline state machine. This is the server's
// per-tick hot loop: parsafe proves it — and everything reachable from
// it — allocation-free and shared-state-free, so steady-state serving
// never churns the GC no matter how many sessions are resident. World
// stepping goes through the per-session stepFn trampoline (bound to
// World.Step at attach, a cold path), the same graph cut the engine's
// own pool dispatch uses.
//
//paraxlint:parroot shard tick loop: the steady-state serving hot path
func (sh *shard) tick() {
	skipDegraded := sh.tickNum&1 == 1
	sh.tickNum++
	for _, s := range sh.sessions {
		if s.state == stateEvicted || (s.state == stateDegraded && skipDegraded) {
			continue
		}
		t0 := sh.tr.Now()
		//paraxlint:allow(parsafe) session step trampoline: stepFn is bound to World.Step, whose hot path is proven by its own noalloc contract and the step benchmarks
		s.stepFn()
		dur := sh.tr.Now() - t0
		s.steps++
		if s.health.Tripped() {
			s.state = stateEvicted
			s.cause = "health"
			sh.evictPending++
			continue
		}
		if sh.budget <= 0 {
			continue
		}
		if dur > sh.budget {
			s.misses++
			sh.dMisses++
			if s.state == stateActive && s.misses >= sh.degradeAfter {
				s.state = stateDegraded
				s.misses = 0
				sh.dDegraded++
			} else if s.state == stateDegraded && s.misses >= sh.evictAfter {
				s.state = stateEvicted
				s.cause = "deadline"
				sh.evictPending++
			}
		} else {
			s.misses = 0
			if s.state == stateDegraded {
				s.state = stateActive
			}
		}
	}
	if sh.evictPending > 0 {
		sh.reap()
	}
}

// reap compacts evicted sessions out of the run queue, returning their
// slots and worker pools. Runs only on ticks that actually evicted —
// the steady state never enters it.
//
//paraxlint:coldpath eviction sweep: allocates during compaction and touches the registry and server map
func (sh *shard) reap() {
	kept := sh.sessions[:0]
	for _, s := range sh.sessions {
		if s.state != stateEvicted {
			kept = append(kept, s)
			continue
		}
		sh.reg.Add(sh.ctr.evictions, 1)
		s.release()
		if sh.srv != nil {
			sh.srv.forget(s.id)
		}
	}
	// Clear the tail so evicted worlds are collectable.
	for i := len(kept); i < len(sh.sessions); i++ {
		sh.sessions[i] = nil
	}
	sh.sessions = kept
	sh.evictPending = 0
	sh.syncLoad()
}

// publish folds the tick's accumulated deltas into the shared registry.
func (sh *shard) publish() {
	sh.reg.Add(sh.ctr.ticks, 1)
	if sh.dMisses > 0 {
		sh.reg.Add(sh.ctr.misses, sh.dMisses)
		sh.dMisses = 0
	}
	if sh.dDegraded > 0 {
		sh.reg.Add(sh.ctr.degraded, sh.dDegraded)
		sh.dDegraded = 0
	}
}

// syncLoad republishes the shard's resident-session count (placement
// atomic + gauge). Cold path: attach, detach, reap.
func (sh *shard) syncLoad() {
	n := int64(len(sh.sessions))
	sh.nsess.Store(n)
	sh.reg.SetGauge(sh.gSess, float64(n))
}

// find returns the resident session with the given id, or nil.
func (sh *shard) find(id string) *Session {
	for _, s := range sh.sessions {
		if s.id == id {
			return s
		}
	}
	return nil
}

// handle executes one control op on the shard goroutine.
func (sh *shard) handle(o op) {
	switch o.kind {
	case opAttach:
		sh.attach(o.sess)
		o.reply <- opReply{ok: true}

	case opDetach:
		s := sh.find(o.id)
		if s == nil {
			o.reply <- opReply{err: "not found"}
			return
		}
		kept := sh.sessions[:0]
		for _, r := range sh.sessions {
			if r != s {
				kept = append(kept, r)
			}
		}
		sh.sessions[len(kept)] = nil
		sh.sessions = kept
		sh.syncLoad()
		o.reply <- opReply{ok: true, sess: s}

	case opStep:
		s := sh.find(o.id)
		if s == nil {
			o.reply <- opReply{err: "not found"}
			return
		}
		if s.state == stateEvicted {
			o.reply <- opReply{err: "evicted"}
			return
		}
		t0 := sh.tr.Now()
		for i := 0; i < o.ticks; i++ {
			s.stepFn()
			s.steps++
			if s.health.Tripped() {
				s.state = stateEvicted
				s.cause = "health"
				sh.evictPending++
				sh.reap()
				break
			}
		}
		sh.lane.Complete(sh.tickSpan, t0)
		o.reply <- opReply{ok: true, info: s.info(sh.index)}

	case opSnapshot:
		s := sh.find(o.id)
		if s == nil {
			o.reply <- opReply{err: "not found"}
			return
		}
		o.reply <- opReply{ok: true, data: s.w.Snapshot()}

	case opQuery:
		s := sh.find(o.id)
		if s == nil {
			o.reply <- opReply{err: "not found"}
			return
		}
		o.reply <- opReply{ok: true, ids: s.w.BodiesIn(o.box, nil)}

	case opInfo:
		s := sh.find(o.id)
		if s == nil {
			o.reply <- opReply{err: "not found"}
			return
		}
		o.reply <- opReply{ok: true, info: s.info(sh.index)}

	case opList:
		infos := make([]SessionInfo, 0, len(sh.sessions))
		for _, s := range sh.sessions {
			infos = append(infos, s.info(sh.index))
		}
		o.reply <- opReply{ok: true, infos: infos}

	case opDetachAll:
		all := append([]*Session(nil), sh.sessions...)
		for i := range sh.sessions {
			sh.sessions[i] = nil
		}
		sh.sessions = sh.sessions[:0]
		sh.syncLoad()
		o.reply <- opReply{ok: true, all: all}
	}
}

// attach adds a session to the run queue. Also used directly (before
// the shard goroutine starts) when restoring a spill directory.
func (sh *shard) attach(s *Session) {
	s.w.SetThreads(sh.threads)
	sh.sessions = append(sh.sessions, s)
	sh.syncLoad()
}

// submit enqueues an op and waits for its reply. Blocking: callers that
// need backpressure semantics (session creation) use trySubmit instead.
// A shard that stops before replying yields ok=false.
func (sh *shard) submit(o op) (opReply, bool) {
	o.reply = make(chan opReply, 1)
	select {
	case sh.control <- o:
	case <-sh.done:
		return opReply{}, false
	}
	select {
	case r := <-o.reply:
		return r, true
	case <-sh.done:
		return opReply{}, false
	}
}

// trySubmit is submit with a non-blocking enqueue: a full control queue
// returns immediately with queued=false — the admission-control signal.
func (sh *shard) trySubmit(o op) (r opReply, queued, ok bool) {
	o.reply = make(chan opReply, 1)
	select {
	case sh.control <- o:
	default:
		return opReply{}, false, false
	}
	select {
	case r := <-o.reply:
		return r, true, true
	case <-sh.done:
		return opReply{}, true, false
	}
}
