package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/parallax-arch/parallax/internal/obs"
	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
	"github.com/parallax-arch/parallax/internal/phys/workload"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// tinyWorld is the cheapest interesting session: one sphere falling
// onto a plane — a few hundred nanoseconds per step, so churn and
// fleet-scale tests stay fast.
func tinyWorld() *world.World {
	w := world.New()
	w.AddStatic(geom.Plane{Normal: m3.V(0, 1, 0)}, m3.V(0, 0, 0), m3.QIdent)
	w.AddBody(geom.Sphere{R: 0.5}, 1, m3.V(0, 2, 0), m3.QIdent, 0, 0)
	return w
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	srv, err := New(cfg, tr, reg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Drain(); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return srv, ts
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

func createScene(t *testing.T, base, scene string, scale float64) SessionInfo {
	t.Helper()
	resp, data := doJSON(t, "POST", base+"/sessions", createRequest{Scene: scene, Scale: scale})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create %s: status %d: %s", scene, resp.StatusCode, data)
	}
	var info SessionInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatalf("create reply: %v", err)
	}
	return info
}

func uploadWorld(t *testing.T, base string, w *world.World) SessionInfo {
	t.Helper()
	resp, err := http.Post(base+"/sessions", "application/octet-stream", bytes.NewReader(w.Snapshot()))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d: %s", resp.StatusCode, data)
	}
	var info SessionInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatalf("upload reply: %v", err)
	}
	return info
}

func getSnapshot(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/sessions/" + id + "/snapshot")
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d: %s", resp.StatusCode, data)
	}
	return data
}

func stepSession(t *testing.T, base, id string, ticks int) SessionInfo {
	t.Helper()
	resp, data := doJSON(t, "POST", base+"/sessions/"+id+"/step", stepRequest{Ticks: ticks})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("step %s: status %d: %s", id, resp.StatusCode, data)
	}
	var info SessionInfo
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatalf("step reply: %v", err)
	}
	return info
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, Hz: 0})

	info := createScene(t, ts.URL, "Ragdoll", 0.2)
	if info.ID == "" {
		t.Fatal("created session has empty id")
	}

	resp, data := doJSON(t, "GET", ts.URL+"/sessions/"+info.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("info: status %d: %s", resp.StatusCode, data)
	}
	var got SessionInfo
	json.Unmarshal(data, &got)
	if got.Scene != "Ragdoll" || got.State != "active" || got.Bodies == 0 {
		t.Fatalf("info = %+v", got)
	}

	stepped := stepSession(t, ts.URL, info.ID, 5)
	if stepped.Steps != 5 {
		t.Fatalf("steps = %d, want 5", stepped.Steps)
	}

	snap := getSnapshot(t, ts.URL, info.ID)
	if !bytes.HasPrefix(snap, []byte("PAXW")) {
		t.Fatalf("snapshot does not start with PAXW magic: %q", snap[:8])
	}

	resp, data = doJSON(t, "POST", ts.URL+"/sessions/"+info.ID+"/query",
		queryRequest{Min: [3]float64{-100, -100, -100}, Max: [3]float64{100, 100, 100}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d: %s", resp.StatusCode, data)
	}
	var q struct {
		Count int `json:"count"`
	}
	json.Unmarshal(data, &q)
	if q.Count == 0 {
		t.Fatal("all-space query returned no bodies")
	}

	resp, _ = doJSON(t, "GET", ts.URL+"/sessions", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: status %d", resp.StatusCode)
	}

	req, _ := http.NewRequest("DELETE", ts.URL+"/sessions/"+info.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, "GET", ts.URL+"/sessions/"+info.ID, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session still answers: status %d", resp.StatusCode)
	}
}

func TestAdmissionCapRejects(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shards: 1, Hz: 0, MaxSessions: 2})
	first := uploadWorld(t, ts.URL, tinyWorld())
	uploadWorld(t, ts.URL, tinyWorld())
	resp, err := http.Post(ts.URL+"/sessions", "application/octet-stream", bytes.NewReader(tinyWorld().Snapshot()))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap create: status %d, want 429", resp.StatusCode)
	}
	if got := srv.reg.CounterValue(srv.cRejected); got != 1 {
		t.Fatalf("rejections counter = %d, want 1", got)
	}
	// Deleting frees the slot.
	if !srv.Delete(first.ID) {
		t.Fatal("delete failed")
	}
	uploadWorld(t, ts.URL, tinyWorld())
}

func TestAdmissionQueueBackpressure(t *testing.T) {
	// White-box: the shard goroutine is never started, so a stuffed
	// control queue stays stuffed and the non-blocking admission enqueue
	// must reject deterministically.
	srv, err := New(Config{Shards: 1, Hz: 0, Queue: 1}, obs.NewTracer(), obs.NewRegistry())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv.shards[0].control <- op{kind: opList, reply: make(chan opReply, 1)}
	_, cerr := srv.Create("", 0, tinyWorld().Snapshot())
	if cerr == nil {
		t.Fatal("create with a saturated shard queue succeeded")
	}
	ce, ok := cerr.(*createError)
	if !ok || ce.status != http.StatusTooManyRequests {
		t.Fatalf("create error = %v, want 429 createError", cerr)
	}
	if got := srv.reg.CounterValue(srv.cRejected); got != 1 {
		t.Fatalf("rejections counter = %d, want 1", got)
	}
}

func TestDeadlineDegradeThenEvict(t *testing.T) {
	reg := obs.NewRegistry()
	sb := NewShardBench(reg, time.Nanosecond, true, tinyWorld())
	sawDegraded := false
	for i := 0; i < 64 && sb.Sessions() > 0; i++ {
		sb.Tick()
		if st := sb.States(); len(st) == 1 && st[0] == "degraded" {
			sawDegraded = true
		}
	}
	if !sawDegraded {
		t.Fatal("session was never degraded before eviction")
	}
	if sb.Sessions() != 0 {
		t.Fatalf("session still resident after sustained deadline misses: %v", sb.States())
	}
	if got := reg.CounterValue(reg.Counter("serve/evictions")); got != 1 {
		t.Fatalf("evictions counter = %d, want 1", got)
	}
	if reg.CounterValue(reg.Counter("serve/deadline_misses")) == 0 {
		t.Fatal("deadline_misses counter never incremented")
	}
}

func TestGenerousBudgetStaysActive(t *testing.T) {
	sb := NewShardBench(obs.NewRegistry(), time.Hour, true, tinyWorld())
	for i := 0; i < 16; i++ {
		sb.Tick()
	}
	if st := sb.States(); len(st) != 1 || st[0] != "active" {
		t.Fatalf("states = %v, want [active]", st)
	}
}

func TestHealthTripEvicts(t *testing.T) {
	reg := obs.NewRegistry()
	sb := NewShardBench(reg, 0, true, tinyWorld())
	sb.sh.sessions[0].health.Update(1, obs.Sample{Finite: false})
	sb.Tick()
	if sb.Sessions() != 0 {
		t.Fatalf("tripped session still resident: %v", sb.States())
	}
	if got := reg.CounterValue(reg.Counter("serve/evictions")); got != 1 {
		t.Fatalf("evictions counter = %d, want 1", got)
	}
}

// TestServerStepDeterminism pins the acceptance contract: a session
// stepped N ticks in-server is snapshot-bit-identical to the same
// world stepped N times directly.
func TestServerStepDeterminism(t *testing.T) {
	const n = 20
	b, _ := workload.ByName("Ragdoll")
	direct := b.Build(0.2)
	for i := 0; i < n; i++ {
		direct.Step()
	}
	want := direct.Snapshot()

	_, ts := newTestServer(t, Config{Shards: 2, Threads: 2, Hz: 0})
	info := createScene(t, ts.URL, "Ragdoll", 0.2)
	stepSession(t, ts.URL, info.ID, n)
	got := getSnapshot(t, ts.URL, info.ID)
	if !bytes.Equal(want, got) {
		t.Fatalf("in-server stepping diverged from direct stepping: %d vs %d bytes", len(got), len(want))
	}
}

// TestMigrateDeterminism pins that snapshot/restore migration is
// transparent: step, migrate, step more — bit-identical to never
// having moved.
func TestMigrateDeterminism(t *testing.T) {
	b, _ := workload.ByName("Periodic")
	direct := b.Build(0.2)
	for i := 0; i < 20; i++ {
		direct.Step()
	}
	want := direct.Snapshot()

	srv, ts := newTestServer(t, Config{Shards: 2, Hz: 0})
	info := createScene(t, ts.URL, "Periodic", 0.2)
	stepSession(t, ts.URL, info.ID, 10)
	target := (info.Shard + 1) % 2
	resp, data := doJSON(t, "POST", ts.URL+"/sessions/"+info.ID+"/migrate", migrateRequest{Shard: target})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("migrate: status %d: %s", resp.StatusCode, data)
	}
	var moved SessionInfo
	json.Unmarshal(data, &moved)
	if moved.Shard != target {
		t.Fatalf("migrated to shard %d, want %d", moved.Shard, target)
	}
	stepSession(t, ts.URL, info.ID, 10)
	got := getSnapshot(t, ts.URL, info.ID)
	if !bytes.Equal(want, got) {
		t.Fatal("migration was not snapshot-transparent")
	}
	if got := srv.reg.CounterValue(srv.cMigrated); got != 1 {
		t.Fatalf("migrations counter = %d, want 1", got)
	}
}

// TestDrainSpillRestore pins the SIGTERM contract: drain spills every
// session, a new server restores them bit-identically, and the
// manifest is consumed so the next start is empty.
func TestDrainSpillRestore(t *testing.T) {
	dir := t.TempDir()
	tr, reg := obs.NewTracer(), obs.NewRegistry()
	srv, err := New(Config{Shards: 2, Hz: 0, SpillDir: dir}, tr, reg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())

	a := createScene(t, ts.URL, "Ragdoll", 0.2)
	stepSession(t, ts.URL, a.ID, 7)
	bID := uploadWorld(t, ts.URL, tinyWorld())
	stepSession(t, ts.URL, bID.ID, 3)
	snapA := getSnapshot(t, ts.URL, a.ID)
	snapB := getSnapshot(t, ts.URL, bID.ID)

	ts.Close()
	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	srv2, err := New(Config{Shards: 2, Hz: 0, SpillDir: dir}, obs.NewTracer(), obs.NewRegistry())
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	srv2.Start()
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() {
		ts2.Close()
		srv2.Drain()
	}()
	if got := srv2.Sessions(); got != 2 {
		t.Fatalf("restored %d sessions, want 2", got)
	}
	if got := getSnapshot(t, ts2.URL, a.ID); !bytes.Equal(got, snapA) {
		t.Fatal("session A not restored bit-identically")
	}
	if got := getSnapshot(t, ts2.URL, bID.ID); !bytes.Equal(got, snapB) {
		t.Fatal("session B not restored bit-identically")
	}
	resp, data := doJSON(t, "GET", ts2.URL+"/sessions/"+a.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restored info: %d", resp.StatusCode)
	}
	var info SessionInfo
	json.Unmarshal(data, &info)
	if info.Steps != 7 || info.Scene != "Ragdoll" {
		t.Fatalf("restored info = %+v, want steps=7 scene=Ragdoll", info)
	}
	// New ids must not collide with restored ones.
	c := uploadWorld(t, ts2.URL, tinyWorld())
	if c.ID == a.ID || c.ID == bID.ID {
		t.Fatalf("restored server reissued id %s", c.ID)
	}

	// A third start without a fresh drain must come up empty: the
	// manifest was consumed.
	srv3, err := New(Config{Shards: 2, Hz: 0, SpillDir: dir}, obs.NewTracer(), obs.NewRegistry())
	if err != nil {
		t.Fatalf("third start: %v", err)
	}
	if got := srv3.Sessions(); got != 0 {
		t.Fatalf("third start restored %d sessions, want 0 (manifest not consumed)", got)
	}
}

// TestFleetTicksManySessions pins the ≥64-concurrent-sessions
// acceptance criterion: tiny sessions across all shards all make
// progress under the fixed-rate tickers.
func TestFleetTicksManySessions(t *testing.T) {
	const fleet = 64
	srv, ts := newTestServer(t, Config{Shards: 4, Hz: 200, MaxSessions: fleet})
	snap := tinyWorld().Snapshot()
	for i := 0; i < fleet; i++ {
		resp, err := http.Post(ts.URL+"/sessions", "application/octet-stream", bytes.NewReader(snap))
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d: status %d", i, resp.StatusCode)
		}
	}
	if got := srv.Sessions(); got != fleet {
		t.Fatalf("resident sessions = %d, want %d", got, fleet)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, data := doJSON(t, "GET", ts.URL+"/sessions", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list: status %d", resp.StatusCode)
		}
		var list struct {
			Sessions []SessionInfo `json:"sessions"`
			Count    int           `json:"count"`
		}
		json.Unmarshal(data, &list)
		stepped := 0
		for _, si := range list.Sessions {
			if si.Steps > 0 {
				stepped++
			}
		}
		if list.Count == fleet && stepped == fleet {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d sessions made progress", stepped, fleet)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if srv.reg.CounterValue(srv.ctr.ticks) == 0 {
		t.Fatal("serve/ticks never incremented")
	}
}

// TestMetricsExposition pins that the serve counter families reach
// /metrics and the whole exposition validates.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 2, Hz: 100})
	info := uploadWorld(t, ts.URL, tinyWorld())
	time.Sleep(50 * time.Millisecond) // let a few ticks land
	stepSession(t, ts.URL, info.ID, 1)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if err := obs.ValidateExposition(data); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, data)
	}
	for _, family := range []string{
		"parallax_serve_ticks_total",
		"parallax_serve_sessions_created_total",
		"parallax_serve_deadline_misses_total",
		"parallax_serve_rejections_total",
		"parallax_serve_migrations_total",
		"parallax_serve_active_sessions",
		"parallax_serve_shard0_sessions",
		"parallax_engine_steps_total",
	} {
		if !strings.Contains(string(data), family) {
			t.Fatalf("exposition missing %s:\n%s", family, data)
		}
	}
}

// TestChurnSoak hammers the full session lifecycle concurrently across
// shards — create, step, query, migrate, delete — and is part of the
// CI -race matrix. Transient 404s (a concurrent delete or migration
// won the race) and 429s (admission) are expected; errors are not.
func TestChurnSoak(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shards: 4, Hz: 500, MaxSessions: 32, Queue: 8})
	snap := tinyWorld().Snapshot()
	const workers = 8
	done := make(chan error, workers)
	for wkr := 0; wkr < workers; wkr++ {
		go func(wkr int) {
			var err error
			defer func() { done <- err }()
			for i := 0; i < 25; i++ {
				resp, perr := http.Post(ts.URL+"/sessions", "application/octet-stream", bytes.NewReader(snap))
				if perr != nil {
					err = perr
					return
				}
				var info SessionInfo
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusTooManyRequests {
					continue
				}
				if resp.StatusCode != http.StatusCreated {
					err = fmt.Errorf("create: status %d: %s", resp.StatusCode, body)
					return
				}
				json.Unmarshal(body, &info)

				sreq, _ := json.Marshal(stepRequest{Ticks: 3})
				resp, perr = http.Post(ts.URL+"/sessions/"+info.ID+"/step", "application/json", bytes.NewReader(sreq))
				if perr != nil {
					err = perr
					return
				}
				resp.Body.Close()

				qreq, _ := json.Marshal(queryRequest{Min: [3]float64{-10, -10, -10}, Max: [3]float64{10, 10, 10}})
				resp, perr = http.Post(ts.URL+"/sessions/"+info.ID+"/query", "application/json", bytes.NewReader(qreq))
				if perr != nil {
					err = perr
					return
				}
				resp.Body.Close()

				mreq, _ := json.Marshal(migrateRequest{Shard: (info.Shard + 1) % 4})
				resp, perr = http.Post(ts.URL+"/sessions/"+info.ID+"/migrate", "application/json", bytes.NewReader(mreq))
				if perr != nil {
					err = perr
					return
				}
				resp.Body.Close()

				if i%2 == wkr%2 {
					req, _ := http.NewRequest("DELETE", ts.URL+"/sessions/"+info.ID, nil)
					resp, perr = http.DefaultClient.Do(req)
					if perr != nil {
						err = perr
						return
					}
					resp.Body.Close()
				}
			}
		}(wkr)
	}
	for i := 0; i < workers; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if srv.reg.CounterValue(srv.cCreated) == 0 {
		t.Fatal("soak created no sessions")
	}
}

func TestHealthEndpointDrainAware(t *testing.T) {
	srv, ts := newTestServer(t, Config{Shards: 1, Hz: 0})
	resp, data := doJSON(t, "GET", ts.URL+"/health", nil)
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(string(data), "ok") {
		t.Fatalf("health = %d %q", resp.StatusCode, data)
	}
	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, data = doJSON(t, "GET", ts.URL+"/health", nil)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.HasPrefix(string(data), "draining") {
		t.Fatalf("draining health = %d %q", resp.StatusCode, data)
	}
}

func TestCreateUnknownSceneRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Shards: 1, Hz: 0})
	resp, _ := doJSON(t, "POST", ts.URL+"/sessions", createRequest{Scene: "NoSuchScene"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown scene: status %d, want 400", resp.StatusCode)
	}
}
