// Package serve is the sharded multi-world simulation server: a fixed
// pool of shard workers steps up to thousands of independent World
// sessions at a fixed tick rate, with deadline-aware scheduling
// (sessions that blow their tick budget degrade to half rate before
// being evicted), admission control with backpressure (bounded per-shard
// control queues, 429-style rejection when saturated), snapshot-based
// migration between shards, and graceful drain to a spill directory on
// SIGTERM. See DESIGN.md "Serving architecture".
package serve

import (
	"fmt"

	"github.com/parallax-arch/parallax/internal/obs"
	"github.com/parallax-arch/parallax/internal/phys/workload"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// sessionState is the deadline-scheduler state machine. All transitions
// happen on the owning shard's goroutine; HTTP handlers read session
// state only through shard ops, never directly.
type sessionState int32

const (
	// stateActive: stepped every tick.
	stateActive sessionState = iota
	// stateDegraded: stepped every other tick (half rate). Entered after
	// degradeAfter consecutive deadline misses; one met deadline
	// promotes back to active.
	stateDegraded
	// stateEvicted: removed from the run queue at the next reap. Entered
	// after evictAfter further consecutive misses while degraded, or when
	// the session's anomaly detector latches.
	stateEvicted
)

func (st sessionState) String() string {
	switch st {
	case stateActive:
		return "active"
	case stateDegraded:
		return "degraded"
	case stateEvicted:
		return "evicted"
	}
	return "unknown"
}

// Session is one resident simulation: a World plus its scheduler state.
// After attach, the owning shard goroutine is the only writer.
type Session struct {
	id    string
	scene string  // workload name, or "snapshot" for uploaded worlds
	scale float64 // build scale (0 for uploaded worlds)

	w *world.World
	// stepFn is bound to w.Step at creation (a cold path): the shard
	// tick loop calls sessions only through this trampoline so the
	// parsafe graph is cut at the call site — Step's own hot path is
	// proven separately by its noalloc contract and the step benchmarks.
	stepFn func()
	// health is the session's own anomaly detector; a tripped session is
	// evicted rather than allowed to spread NaNs through its shard's
	// tick budget.
	health *obs.Health

	state  sessionState
	steps  int64 // ticks actually stepped (in-server or via /step)
	misses int64 // consecutive deadline misses in the current state
	cause  string
}

// newSession wires a built world into a session: per-session anomaly
// detector, fleet-wide metrics registry (sessions share the counter
// families; per-world tracer lanes at fleet scale would be
// memory-prohibitive, so tracing is per shard instead).
func newSession(id, scene string, scale float64, w *world.World, reg *obs.Registry) *Session {
	s := &Session{id: id, scene: scene, scale: scale, w: w, health: obs.NewHealth()}
	w.SetObs(nil, reg, "")
	w.SetHealth(s.health)
	s.stepFn = w.Step
	return s
}

// buildSession constructs a session from a named workload scene or an
// uploaded PAXW snapshot (snap non-nil wins).
func buildSession(id, scene string, scale float64, snap []byte, reg *obs.Registry) (*Session, error) {
	if snap != nil {
		w := world.New()
		if err := w.Restore(snap); err != nil {
			return nil, fmt.Errorf("restore uploaded snapshot: %w", err)
		}
		return newSession(id, "snapshot", 0, w, reg), nil
	}
	b, ok := workload.ByName(scene)
	if !ok {
		return nil, fmt.Errorf("unknown scene %q", scene)
	}
	if scale <= 0 {
		scale = 1
	}
	return newSession(id, scene, scale, b.Build(scale), reg), nil
}

// SessionInfo is the read-model handed back by shard info ops.
type SessionInfo struct {
	ID            string  `json:"id"`
	Shard         int     `json:"shard"`
	Scene         string  `json:"scene"`
	Scale         float64 `json:"scale,omitempty"`
	State         string  `json:"state"`
	Steps         int64   `json:"steps"`
	Bodies        int     `json:"bodies"`
	KineticEnergy float64 `json:"kinetic_energy"`
	Healthy       bool    `json:"healthy"`
}

// info snapshots the session on its shard goroutine.
func (s *Session) info(shardIdx int) SessionInfo {
	return SessionInfo{
		ID:            s.id,
		Shard:         shardIdx,
		Scene:         s.scene,
		Scale:         s.scale,
		State:         s.state.String(),
		Steps:         s.steps,
		Bodies:        len(s.w.Bodies),
		KineticEnergy: s.w.KineticEnergy(),
		Healthy:       !s.health.Tripped(),
	}
}

// release shuts down the session's worker pool (SetThreads(1) closes
// the pool goroutines). Called after detach/evict, off the tick path.
func (s *Session) release() { s.w.SetThreads(1) }
