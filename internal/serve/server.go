package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/parallax-arch/parallax/internal/obs"
	"github.com/parallax-arch/parallax/internal/phys/m3"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// Config sizes the server. The zero value of any field selects its
// default.
type Config struct {
	// Shards is the number of independent shard workers (default 4).
	Shards int
	// Threads is the engine worker count per resident world
	// (world.SetThreads; default 1).
	Threads int
	// Hz is the tick rate per shard. 0 disables the tickers: sessions
	// then advance only through POST /sessions/{id}/step — the mode the
	// determinism tests and CI drain smoke use.
	Hz float64
	// Budget is the per-session step budget per tick; a session over
	// budget degrades to half rate, then evicts (0 disables deadlines).
	Budget time.Duration
	// MaxSessions caps resident sessions fleet-wide (default 1024).
	MaxSessions int
	// Queue is each shard's control-queue depth — the admission
	// backpressure bound (default 64).
	Queue int
	// SpillDir, when set, is where a drain snapshots every resident
	// session; a manifest found there at construction is restored.
	SpillDir string
}

func (c *Config) defaults() {
	if c.Shards < 1 {
		c.Shards = 4
	}
	if c.Threads < 1 {
		c.Threads = 1
	}
	if c.MaxSessions < 1 {
		c.MaxSessions = 1024
	}
	if c.Queue < 1 {
		c.Queue = 64
	}
}

// Server is the sharded session fleet plus its HTTP surface.
type Server struct {
	cfg    Config
	tr     *obs.Tracer
	reg    *obs.Registry
	shards []*shard

	mu   sync.Mutex
	byID map[string]*shard

	nextID   atomic.Int64
	active   atomic.Int64 // resident + reserved sessions
	draining atomic.Bool
	drained  sync.Once

	ctr        serveCounters
	cCreated   obs.CounterID
	cRejected  obs.CounterID
	cDeleted   obs.CounterID
	cMigrated  obs.CounterID
	cSpilled   obs.CounterID
	cRestored  obs.CounterID
	gActive    obs.GaugeID
	obsHandler http.Handler
}

// New builds a server (shard goroutines start with Start). tr and reg
// may be nil — tracing and metrics are independently optional — but a
// nil tracer also disables deadline accounting, since tick durations
// come from Tracer.Now. If cfg.SpillDir holds a drain manifest, every
// spilled session is restored onto its recorded shard before returning.
func New(cfg Config, tr *obs.Tracer, reg *obs.Registry) (*Server, error) {
	cfg.defaults()
	s := &Server{
		cfg:  cfg,
		tr:   tr,
		reg:  reg,
		byID: make(map[string]*shard),
		ctr: serveCounters{
			ticks:     reg.Counter("serve/ticks"),
			misses:    reg.Counter("serve/deadline_misses"),
			degraded:  reg.Counter("serve/degraded"),
			evictions: reg.Counter("serve/evictions"),
		},
		cCreated:   reg.Counter("serve/sessions_created"),
		cRejected:  reg.Counter("serve/rejections"),
		cDeleted:   reg.Counter("serve/sessions_deleted"),
		cMigrated:  reg.Counter("serve/migrations"),
		cSpilled:   reg.Counter("serve/sessions_spilled"),
		cRestored:  reg.Counter("serve/sessions_restored"),
		gActive:    reg.Gauge("serve/active_sessions"),
		obsHandler: obs.Handler(tr, reg, nil, nil),
	}
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = newShard(s, i, cfg.Threads, cfg.Queue, cfg.Hz, cfg.Budget, tr, reg, s.ctr)
	}
	if cfg.SpillDir != "" {
		if err := s.restoreSpill(cfg.SpillDir); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Start launches the shard goroutines (and tickers, if Hz > 0).
func (s *Server) Start() {
	for _, sh := range s.shards {
		go sh.run()
	}
}

// Sessions returns the resident session count.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}

// forget drops a session id from the routing map (called by shard reap
// on eviction) and releases its admission slot.
func (s *Server) forget(id string) {
	s.mu.Lock()
	if _, ok := s.byID[id]; ok {
		delete(s.byID, id)
		s.active.Add(-1)
	}
	s.mu.Unlock()
	s.publishActive()
}

func (s *Server) publishActive() {
	s.reg.SetGauge(s.gActive, float64(s.active.Load()))
}

// shardFor routes a session id to its owning shard.
func (s *Server) shardFor(id string) (*shard, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, ok := s.byID[id]
	return sh, ok
}

// leastLoaded picks the placement shard by resident-session count.
func (s *Server) leastLoaded() *shard {
	best := s.shards[0]
	bestN := best.nsess.Load()
	for _, sh := range s.shards[1:] {
		if n := sh.nsess.Load(); n < bestN {
			best, bestN = sh, n
		}
	}
	return best
}

// createError distinguishes admission rejections (429) from bad
// requests (400) and drain refusals (503).
type createError struct {
	status int
	msg    string
}

func (e *createError) Error() string { return e.msg }

// Create admits one session built from a named scene or an uploaded
// PAXW snapshot. Admission is two-staged: a fleet-wide slot reservation
// against MaxSessions, then a non-blocking enqueue onto the placement
// shard's bounded control queue — either failing is a rejection with
// backpressure semantics.
func (s *Server) Create(scene string, scale float64, snap []byte) (SessionInfo, error) {
	if s.draining.Load() {
		return SessionInfo{}, &createError{http.StatusServiceUnavailable, "draining"}
	}
	if s.active.Add(1) > int64(s.cfg.MaxSessions) {
		s.active.Add(-1)
		s.reg.Add(s.cRejected, 1)
		return SessionInfo{}, &createError{http.StatusTooManyRequests, "session limit reached"}
	}
	id := fmt.Sprintf("s-%06d", s.nextID.Add(1))
	sess, err := buildSession(id, scene, scale, snap, s.reg)
	if err != nil {
		s.active.Add(-1)
		return SessionInfo{}, &createError{http.StatusBadRequest, err.Error()}
	}
	sh := s.leastLoaded()
	r, queued, ok := sh.trySubmit(op{kind: opAttach, sess: sess})
	if !queued {
		s.active.Add(-1)
		sess.release()
		s.reg.Add(s.cRejected, 1)
		return SessionInfo{}, &createError{http.StatusTooManyRequests, "shard queue saturated"}
	}
	if !ok || !r.ok {
		s.active.Add(-1)
		sess.release()
		return SessionInfo{}, &createError{http.StatusServiceUnavailable, "shard stopped"}
	}
	s.mu.Lock()
	s.byID[id] = sh
	s.mu.Unlock()
	s.reg.Add(s.cCreated, 1)
	s.publishActive()
	return SessionInfo{ID: id, Shard: sh.index, Scene: sess.scene, Scale: sess.scale, State: stateActive.String()}, nil
}

// Delete detaches and releases a session.
func (s *Server) Delete(id string) bool {
	sh, ok := s.shardFor(id)
	if !ok {
		return false
	}
	r, ok := sh.submit(op{kind: opDetach, id: id})
	if !ok || !r.ok {
		return false
	}
	s.forget(id)
	r.sess.release()
	s.reg.Add(s.cDeleted, 1)
	return true
}

// Migrate moves a session to the target shard via snapshot/restore: the
// detached world is serialized, a fresh world is restored from those
// bytes on the way in, and the PAXW format's bit-stability guarantees
// the rebuilt session steps identically to the original.
func (s *Server) Migrate(id string, target int) (SessionInfo, error) {
	if target < 0 || target >= len(s.shards) {
		return SessionInfo{}, &createError{http.StatusBadRequest, fmt.Sprintf("shard %d out of range", target)}
	}
	src, ok := s.shardFor(id)
	if !ok {
		return SessionInfo{}, &createError{http.StatusNotFound, "not found"}
	}
	dst := s.shards[target]
	if src == dst {
		r, ok := src.submit(op{kind: opInfo, id: id})
		if !ok || !r.ok {
			return SessionInfo{}, &createError{http.StatusNotFound, "not found"}
		}
		return r.info, nil
	}
	r, ok := src.submit(op{kind: opDetach, id: id})
	if !ok || !r.ok {
		return SessionInfo{}, &createError{http.StatusNotFound, "not found"}
	}
	old := r.sess
	snap := old.w.Snapshot()
	old.release()
	nw := world.New()
	if err := nw.Restore(snap); err != nil {
		// The snapshot of a live world must restore; treat failure as an
		// internal error and drop the session rather than leak it.
		s.forget(id)
		return SessionInfo{}, &createError{http.StatusInternalServerError, "migration restore failed: " + err.Error()}
	}
	moved := newSession(old.id, old.scene, old.scale, nw, s.reg)
	moved.steps = old.steps
	// Snapshot the read-model before attach: once the target shard owns
	// the session it may tick concurrently, and info reads world state.
	info := moved.info(dst.index)
	if r2, ok := dst.submit(op{kind: opAttach, sess: moved}); !ok || !r2.ok {
		s.forget(id)
		return SessionInfo{}, &createError{http.StatusServiceUnavailable, "target shard stopped"}
	}
	s.mu.Lock()
	s.byID[id] = dst
	s.mu.Unlock()
	s.reg.Add(s.cMigrated, 1)
	return info, nil
}

// Drain stops accepting work, detaches every session, halts the shard
// goroutines, and — if a spill directory is configured — snapshots all
// sessions there for the next process to restore. Idempotent.
func (s *Server) Drain() error {
	var err error
	s.drained.Do(func() {
		s.draining.Store(true)
		var all []spilledSession
		for _, sh := range s.shards {
			if r, ok := sh.submit(op{kind: opDetachAll}); ok {
				for _, sess := range r.all {
					all = append(all, spilledSession{sess: sess, shard: sh.index})
				}
			}
		}
		for _, sh := range s.shards {
			close(sh.stop)
			<-sh.done
		}
		if s.cfg.SpillDir != "" {
			err = s.spill(s.cfg.SpillDir, all)
		}
		for _, sp := range all {
			sp.sess.release()
		}
	})
	return err
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// ---- HTTP surface ----

type createRequest struct {
	Scene string  `json:"scene"`
	Scale float64 `json:"scale"`
}

type queryRequest struct {
	Min [3]float64 `json:"min"`
	Max [3]float64 `json:"max"`
}

type stepRequest struct {
	Ticks int `json:"ticks"`
}

type migrateRequest struct {
	Shard int `json:"shard"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func statusOf(err error) (int, string) {
	if ce, ok := err.(*createError); ok {
		return ce.status, ce.msg
	}
	return http.StatusInternalServerError, err.Error()
}

// Handler returns the server mux: the session API, a drain-aware
// /health, and the observability layer's /metrics and /trace.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /sessions", func(w http.ResponseWriter, req *http.Request) {
		var (
			info SessionInfo
			err  error
		)
		if strings.HasPrefix(req.Header.Get("Content-Type"), "application/octet-stream") {
			snap, rerr := io.ReadAll(io.LimitReader(req.Body, 1<<30))
			if rerr != nil {
				writeErr(w, http.StatusBadRequest, rerr.Error())
				return
			}
			info, err = s.Create("", 0, snap)
		} else {
			var cr createRequest
			if derr := json.NewDecoder(req.Body).Decode(&cr); derr != nil {
				writeErr(w, http.StatusBadRequest, "bad request body: "+derr.Error())
				return
			}
			info, err = s.Create(cr.Scene, cr.Scale, nil)
		}
		if err != nil {
			st, msg := statusOf(err)
			writeErr(w, st, msg)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})

	mux.HandleFunc("GET /sessions", func(w http.ResponseWriter, req *http.Request) {
		var infos []SessionInfo
		for _, sh := range s.shards {
			if r, ok := sh.submit(op{kind: opList}); ok && r.ok {
				infos = append(infos, r.infos...)
			}
		}
		sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
		writeJSON(w, http.StatusOK, map[string]any{"sessions": infos, "count": len(infos)})
	})

	session := func(w http.ResponseWriter, req *http.Request, kind opKind, o op) (opReply, bool) {
		id := req.PathValue("id")
		sh, ok := s.shardFor(id)
		if !ok {
			writeErr(w, http.StatusNotFound, "not found")
			return opReply{}, false
		}
		o.kind = kind
		o.id = id
		r, ok := sh.submit(o)
		if !ok {
			writeErr(w, http.StatusServiceUnavailable, "shard stopped")
			return opReply{}, false
		}
		if !r.ok {
			writeErr(w, http.StatusNotFound, r.err)
			return opReply{}, false
		}
		return r, true
	}

	mux.HandleFunc("GET /sessions/{id}", func(w http.ResponseWriter, req *http.Request) {
		if r, ok := session(w, req, opInfo, op{}); ok {
			writeJSON(w, http.StatusOK, r.info)
		}
	})

	mux.HandleFunc("DELETE /sessions/{id}", func(w http.ResponseWriter, req *http.Request) {
		if !s.Delete(req.PathValue("id")) {
			writeErr(w, http.StatusNotFound, "not found")
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /sessions/{id}/snapshot", func(w http.ResponseWriter, req *http.Request) {
		if r, ok := session(w, req, opSnapshot, op{}); ok {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(r.data)
		}
	})

	mux.HandleFunc("POST /sessions/{id}/step", func(w http.ResponseWriter, req *http.Request) {
		var sr stepRequest
		if req.ContentLength != 0 {
			if err := json.NewDecoder(req.Body).Decode(&sr); err != nil {
				writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
				return
			}
		}
		if sr.Ticks < 1 {
			sr.Ticks = 1
		}
		if sr.Ticks > 100000 {
			writeErr(w, http.StatusBadRequest, "ticks out of range")
			return
		}
		if r, ok := session(w, req, opStep, op{ticks: sr.Ticks}); ok {
			writeJSON(w, http.StatusOK, r.info)
		}
	})

	mux.HandleFunc("POST /sessions/{id}/query", func(w http.ResponseWriter, req *http.Request) {
		var qr queryRequest
		if err := json.NewDecoder(req.Body).Decode(&qr); err != nil {
			writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		box := m3.AABB{
			Min: m3.V(qr.Min[0], qr.Min[1], qr.Min[2]),
			Max: m3.V(qr.Max[0], qr.Max[1], qr.Max[2]),
		}
		if r, ok := session(w, req, opQuery, op{box: box}); ok {
			ids := r.ids
			if ids == nil {
				ids = []int32{}
			}
			writeJSON(w, http.StatusOK, map[string]any{"bodies": ids, "count": len(ids)})
		}
	})

	mux.HandleFunc("POST /sessions/{id}/migrate", func(w http.ResponseWriter, req *http.Request) {
		var mr migrateRequest
		if err := json.NewDecoder(req.Body).Decode(&mr); err != nil {
			writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		info, err := s.Migrate(req.PathValue("id"), mr.Shard)
		if err != nil {
			st, msg := statusOf(err)
			writeErr(w, st, msg)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})

	mux.HandleFunc("GET /health", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ok")
	})

	mux.Handle("GET /metrics", s.obsHandler)
	mux.Handle("GET /trace", s.obsHandler)

	return mux
}
