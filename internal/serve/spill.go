package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The drain/spill format: one PAXW snapshot per session plus a JSON
// manifest binding ids to scenes, shard placements and step counts.
//
//	<dir>/manifest.json
//	<dir>/<id>.paxw
//
// PAXW snapshots are bit-stable and exclude thread counts and
// observability wiring, so a restore is bit-identical to the drained
// world no matter how the restoring server is configured.
const manifestName = "manifest.json"

type spillManifest struct {
	NextID   int64        `json:"next_id"`
	Sessions []spillEntry `json:"sessions"`
}

type spillEntry struct {
	ID    string  `json:"id"`
	Scene string  `json:"scene"`
	Scale float64 `json:"scale,omitempty"`
	Shard int     `json:"shard"`
	Steps int64   `json:"steps"`
}

// spilledSession pairs a detached session with the shard it lived on.
type spilledSession struct {
	sess  *Session
	shard int
}

// spill writes every detached session's snapshot plus the manifest.
// The manifest is written last, via rename, so a crash mid-spill never
// leaves a manifest pointing at missing snapshots.
func (s *Server) spill(dir string, all []spilledSession) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("spill: %w", err)
	}
	man := spillManifest{NextID: s.nextID.Load()}
	sort.Slice(all, func(i, j int) bool { return all[i].sess.id < all[j].sess.id })
	for _, sp := range all {
		sess := sp.sess
		if err := os.WriteFile(filepath.Join(dir, sess.id+".paxw"), sess.w.Snapshot(), 0o644); err != nil {
			return fmt.Errorf("spill %s: %w", sess.id, err)
		}
		man.Sessions = append(man.Sessions, spillEntry{
			ID:    sess.id,
			Scene: sess.scene,
			Scale: sess.scale,
			Shard: sp.shard,
			Steps: sess.steps,
		})
		s.reg.Add(s.cSpilled, 1)
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("spill manifest: %w", err)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("spill manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("spill manifest: %w", err)
	}
	return nil
}

// restoreSpill reloads a drain manifest: every spilled session is
// rebuilt from its snapshot and attached to its recorded shard (clamped
// if the restoring server has fewer shards). The consumed manifest is
// removed on success so a later restart without a fresh drain starts
// empty; snapshot files are left behind as inert artifacts the next
// spill overwrites.
func (s *Server) restoreSpill(dir string) error {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("restore spill: %w", err)
	}
	var man spillManifest
	if err := json.Unmarshal(data, &man); err != nil {
		return fmt.Errorf("restore spill manifest: %w", err)
	}
	for _, e := range man.Sessions {
		snap, err := os.ReadFile(filepath.Join(dir, e.ID+".paxw"))
		if err != nil {
			return fmt.Errorf("restore spill %s: %w", e.ID, err)
		}
		sess, err := buildSession(e.ID, e.Scene, e.Scale, snap, s.reg)
		if err != nil {
			return fmt.Errorf("restore spill %s: %w", e.ID, err)
		}
		// buildSession labels uploads "snapshot"; put the original scene
		// name and scale back so the restored fleet reads like the
		// drained one.
		sess.scene, sess.scale = e.Scene, e.Scale
		sess.steps = e.Steps
		idx := e.Shard
		if idx < 0 {
			idx = 0
		}
		if idx >= len(s.shards) {
			idx = len(s.shards) - 1
		}
		sh := s.shards[idx]
		// Direct attach: the shard goroutines have not started yet.
		sh.attach(sess)
		s.byID[e.ID] = sh
		s.active.Add(1)
		s.reg.Add(s.cRestored, 1)
	}
	if man.NextID > s.nextID.Load() {
		s.nextID.Store(man.NextID)
	}
	s.publishActive()
	return os.Remove(filepath.Join(dir, manifestName))
}
