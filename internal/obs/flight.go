package obs

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"sync"
)

// Cause identifies which health check tripped the anomaly detector.
type Cause int32

const (
	CauseNone Cause = iota
	// CauseNaN: a body's position, rotation or velocity went NaN/Inf.
	CauseNaN
	// CauseEnergy: kinetic energy spiked versus the trailing window.
	CauseEnergy
	// CauseResidual: the solver residual blew up versus the trailing
	// window.
	CauseResidual
	// CauseRebuildStorm: the incremental broadphase fell back to full
	// rebuilds for too many consecutive steps.
	CauseRebuildStorm
)

// String names the cause for logs and bundle filenames.
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseNaN:
		return "nan_state"
	case CauseEnergy:
		return "energy_spike"
	case CauseResidual:
		return "residual_blowup"
	case CauseRebuildStorm:
		return "rebuild_storm"
	}
	return "unknown"
}

// healthWindow is the trailing-window length (steps) for the ratio
// checks. Ratio checks stay disarmed until the window has filled once,
// so settling transients cannot trip them.
const healthWindow = 64

// Sample is one step's worth of health inputs, passed by value so the
// hot-path Update stays allocation-free.
type Sample struct {
	// KineticEnergy is the world's total kinetic energy this step.
	KineticEnergy float64
	// Finite is false if any body state component was NaN/Inf.
	Finite bool
	// Residual is the solver's summed post-iteration row residual.
	Residual float64
	// MaxPenetration is the deepest contact penetration this step
	// (recorded into the bundle's series; no check keys off it yet).
	MaxPenetration float64
	// Rebuilds is how many full broadphase rebuilds this step performed.
	Rebuilds int64
}

// Health is the deterministic per-step anomaly detector. Update runs
// every World.Step from the serial post-step path; all checks are pure
// functions of simulation state, so whether (and when) the detector
// trips is identical across thread counts. Once tripped it latches:
// the caller dumps one flight bundle and decides what to do next.
//
// A nil *Health is the disabled detector: Update is a no-op that
// reports no trip.
type Health struct {
	mu sync.Mutex

	// Tunables, set before stepping (zero value = defaults via New).
	// A spike check trips when value > ratio * trailing mean AND the
	// trailing mean exceeds the floor — the floor keeps near-zero
	// resting scenes from tripping on harmless noise.
	EnergySpikeRatio   float64
	EnergyFloor        float64
	ResidualSpikeRatio float64
	ResidualFloor      float64
	// RebuildStormMax trips when more than this many consecutive steps
	// each performed a full broadphase rebuild.
	RebuildStormMax int64

	keWin  [healthWindow]float64
	keSum  float64
	resWin [healthWindow]float64
	resSum float64
	n      int64 // samples folded into the windows

	stormRun int64

	tripped  bool
	cause    Cause
	tripStep int64
	observed float64 // offending value at trip time
	baseline float64 // trailing mean (or limit) at trip time
}

// NewHealth returns a detector with default thresholds. The spike
// ratios are deliberately loose (10^4×): breakable-joint scenes
// legitimately convert large amounts of potential energy in one step,
// and the detector exists to catch divergence, not drama.
func NewHealth() *Health {
	return &Health{
		EnergySpikeRatio:   1e4,
		EnergyFloor:        1,
		ResidualSpikeRatio: 1e4,
		ResidualFloor:      1,
		RebuildStormMax:    48,
	}
}

// Update folds one step's sample into the detector and reports whether
// it is (now or already) tripped. step is the world's step ordinal.
//
//paraxlint:noalloc
func (h *Health) Update(step int64, s Sample) bool {
	if h == nil {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.tripped {
		return true
	}

	// NaN/Inf body state: unconditional, no window needed.
	if !s.Finite || math.IsNaN(s.KineticEnergy) || math.IsInf(s.KineticEnergy, 0) {
		h.trip(CauseNaN, step, s.KineticEnergy, 0)
		return true
	}

	// Spike checks compare against the trailing mean BEFORE this
	// sample is folded in, and only once the window has filled.
	if h.n >= healthWindow {
		keMean := h.keSum / healthWindow
		if keMean > h.EnergyFloor && s.KineticEnergy > h.EnergySpikeRatio*keMean {
			h.trip(CauseEnergy, step, s.KineticEnergy, keMean)
			return true
		}
		resMean := h.resSum / healthWindow
		if resMean > h.ResidualFloor && s.Residual > h.ResidualSpikeRatio*resMean {
			h.trip(CauseResidual, step, s.Residual, resMean)
			return true
		}
	}

	// Rebuild storm: consecutive steps that each did >=1 full rebuild.
	if s.Rebuilds > 0 {
		h.stormRun++
	} else {
		h.stormRun = 0
	}
	if h.stormRun > h.RebuildStormMax {
		h.trip(CauseRebuildStorm, step, float64(h.stormRun), float64(h.RebuildStormMax))
		return true
	}

	// Fold the (finite) sample into the trailing windows.
	slot := h.n % healthWindow
	h.keSum += s.KineticEnergy - h.keWin[slot]
	h.keWin[slot] = s.KineticEnergy
	h.resSum += s.Residual - h.resWin[slot]
	h.resWin[slot] = s.Residual
	h.n++
	return false
}

// trip latches the detector. Callers hold h.mu.
//
//paraxlint:noalloc
func (h *Health) trip(c Cause, step int64, observed, baseline float64) {
	h.tripped = true
	h.cause = c
	h.tripStep = step
	h.observed = observed
	h.baseline = baseline
}

// Tripped reports whether the detector has latched. Safe to poll from
// parallel hot paths (the serve shard tick loop polls every resident
// session's detector each tick): the latch read is a short uncontended
// critical section and allocates nothing.
func (h *Health) Tripped() bool {
	if h == nil {
		return false
	}
	//paraxlint:allow(parsafe) latch poll: short uncontended mutex read from the shard tick loop
	h.mu.Lock()
	t := h.tripped
	//paraxlint:allow(parsafe) latch poll: short uncontended mutex read from the shard tick loop
	h.mu.Unlock()
	return t
}

// HealthStatus is a point-in-time read of the detector.
type HealthStatus struct {
	OK       bool
	Cause    Cause
	Step     int64
	Observed float64
	Baseline float64
}

// Status returns the detector's current state. A nil detector is
// always OK (nothing is watching, nothing has tripped).
func (h *Health) Status() HealthStatus {
	if h == nil {
		return HealthStatus{OK: true}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HealthStatus{
		OK:       !h.tripped,
		Cause:    h.cause,
		Step:     h.tripStep,
		Observed: h.observed,
		Baseline: h.baseline,
	}
}

// FlightInfo labels a flight bundle.
type FlightInfo struct {
	// Cause is the trip cause (Cause.String() or a caller-chosen tag
	// such as "replay_divergence").
	Cause string
	// Step is the step ordinal the anomaly was detected at.
	Step int64
	// Label names the workload/scene for humans reading the bundle.
	Label string
}

// WriteFlightBundle dumps the black-box bundle for a tripped detector
// into a fresh directory under dir, named flight-step<N>-<cause>, and
// returns that directory's path. The bundle holds:
//
//	cause.txt     trip cause, step, label — one "key value" line each
//	world.paxw    the PAXW world snapshot (replayable via -load/-replay)
//	trace.json    Chrome trace-event JSON of the resident tracer rings
//	metrics.txt   Registry.WriteSnapshot with tracer totals published
//	series.json   the last-K-steps per-step series window
//
// Cold path by definition — it runs once, after the sim has already
// diverged. Nil tracer/registry/series are tolerated; their files are
// still written (empty trace, empty snapshot) so bundle consumers can
// rely on the file set. snapshot may be nil if the caller could not
// capture one (the world.paxw file is then omitted).
func WriteFlightBundle(dir string, info FlightInfo, snapshot []byte, tr *Tracer, reg *Registry, s *Series) (string, error) {
	bundle := filepath.Join(dir, "flight-step"+strconv.FormatInt(info.Step, 10)+"-"+info.Cause)
	if err := os.MkdirAll(bundle, 0o755); err != nil {
		return "", err
	}
	cause := fmt.Sprintf("cause %s\nstep %d\nlabel %s\n", info.Cause, info.Step, info.Label)
	if err := os.WriteFile(filepath.Join(bundle, "cause.txt"), []byte(cause), 0o644); err != nil {
		return "", err
	}
	if snapshot != nil {
		if err := os.WriteFile(filepath.Join(bundle, "world.paxw"), snapshot, 0o644); err != nil {
			return "", err
		}
	}
	tf, err := os.Create(filepath.Join(bundle, "trace.json"))
	if err != nil {
		return "", err
	}
	if err := tr.WriteTrace(tf); err != nil {
		tf.Close()
		return "", err
	}
	if err := tf.Close(); err != nil {
		return "", err
	}
	tr.Publish(reg)
	mf, err := os.Create(filepath.Join(bundle, "metrics.txt"))
	if err != nil {
		return "", err
	}
	if err := reg.WriteSnapshot(mf); err != nil {
		mf.Close()
		return "", err
	}
	if err := mf.Close(); err != nil {
		return "", err
	}
	sf, err := os.Create(filepath.Join(bundle, "series.json"))
	if err != nil {
		return "", err
	}
	if err := s.WriteJSON(sf); err != nil {
		sf.Close()
		return "", err
	}
	return bundle, sf.Close()
}
