package obs

import (
	"bufio"
	"fmt"
	"io"
)

// WriteTrace exports every lane's spans as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Each lane
// becomes one thread track (tid = lane id) under pid 1, named via a
// thread_name metadata event. Timestamps are microseconds since the
// tracer started.
//
// Ring buffers wrap: each lane emits only the events still resident,
// and Begin/End records are emitted only as matched pairs (an End whose
// Begin was overwritten, or a Begin still open at export time, is
// skipped), so the JSON always carries balanced, properly nested B/E
// events with nondecreasing timestamps per track. Complete records
// (Lane.Complete) are emitted as "X" events with an explicit duration.
func (t *Tracer) WriteTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	lanes := append([]*Lane(nil), t.lanes...)
	names := append([]string(nil), t.names...)
	t.mu.Unlock()

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...interface{}) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	emit(`{"ph":"M","name":"process_name","pid":1,"args":{"name":"parallax"}}`)

	spanName := func(id SpanID) string {
		if int(id) < len(names) {
			return names[id]
		}
		return fmt.Sprintf("span-%d", id)
	}

	for _, l := range lanes {
		evs := l.snapshotEvents()
		emit(`{"ph":"M","name":"thread_name","pid":1,"tid":%d,"args":{"name":%q}}`, l.id, l.name)

		// Match B/E pairs with a stack over the resident events.
		matched := make([]bool, len(evs))
		var stack []int
		for i, e := range evs {
			switch e.kind {
			case evBegin:
				stack = append(stack, i)
			case evEnd:
				if n := len(stack); n > 0 && evs[stack[n-1]].id == e.id {
					matched[stack[n-1]] = true
					matched[i] = true
					stack = stack[:n-1]
				}
			}
		}
		for i, e := range evs {
			switch e.kind {
			case evBegin:
				if matched[i] {
					emit(`{"ph":"B","name":%q,"cat":"parallax","pid":1,"tid":%d,"ts":%.3f}`,
						spanName(e.id), l.id, float64(e.ts)/1e3)
				}
			case evEnd:
				if matched[i] {
					emit(`{"ph":"E","name":%q,"cat":"parallax","pid":1,"tid":%d,"ts":%.3f}`,
						spanName(e.id), l.id, float64(e.ts)/1e3)
				}
			case evComplete:
				emit(`{"ph":"X","name":%q,"cat":"parallax","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f}`,
					spanName(e.id), l.id, float64(e.ts)/1e3, float64(e.dur)/1e3)
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
