package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// traceDoc mirrors the exported Chrome trace-event JSON for parsing.
type traceDoc struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Ph   string  `json:"ph"`
	Name string  `json:"name"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
}

func exportDoc(t *testing.T, tr *Tracer) traceDoc {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v\n%s", err, buf.String())
	}
	return doc
}

// checkBalanced walks one tid's B/E events with a stack: every E must
// close the innermost open B of the same name, timestamps must be
// nondecreasing, and nothing may remain open.
func checkBalanced(t *testing.T, events []traceEvent) {
	t.Helper()
	var stack []string
	lastTs := -1.0
	for _, e := range events {
		if e.Ph != "B" && e.Ph != "E" {
			continue
		}
		if e.Ts < lastTs {
			t.Fatalf("timestamps not monotonic: %v after %v", e.Ts, lastTs)
		}
		lastTs = e.Ts
		switch e.Ph {
		case "B":
			stack = append(stack, e.Name)
		case "E":
			if len(stack) == 0 {
				t.Fatalf("E %q with no open span", e.Name)
			}
			if top := stack[len(stack)-1]; top != e.Name {
				t.Fatalf("E %q closes open span %q (improper nesting)", e.Name, top)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if len(stack) != 0 {
		t.Fatalf("unmatched B events remain open: %v", stack)
	}
}

func byTid(doc traceDoc) map[int][]traceEvent {
	out := map[int][]traceEvent{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		out[e.Tid] = append(out[e.Tid], e)
	}
	return out
}

func TestSpanRegistrationIdempotent(t *testing.T) {
	tr := NewTracer()
	a := tr.Span("step")
	b := tr.Span("broad")
	if a == b {
		t.Fatal("distinct names share an ID")
	}
	if got := tr.Span("step"); got != a {
		t.Fatalf("re-registering returned %d, want %d", got, a)
	}
}

func TestBeginEndDuration(t *testing.T) {
	tr := NewTracer()
	lane := tr.Lane("main", 64)
	id := tr.Span("work")
	lane.Begin(id)
	dur := lane.End(id)
	if dur < 0 {
		t.Fatalf("negative duration %d", dur)
	}
	doc := exportDoc(t, tr)
	events := byTid(doc)[0]
	if len(events) != 2 || events[0].Ph != "B" || events[1].Ph != "E" {
		t.Fatalf("want one B/E pair, got %+v", events)
	}
	checkBalanced(t, events)
}

func TestNestedSpansExportBalanced(t *testing.T) {
	tr := NewTracer()
	lane := tr.Lane("main", 256)
	step := tr.Span("step")
	inner := tr.Span("inner")
	for i := 0; i < 10; i++ {
		lane.Begin(step)
		for j := 0; j < 3; j++ {
			lane.Begin(inner)
			lane.End(inner)
		}
		lane.End(step)
	}
	doc := exportDoc(t, tr)
	events := byTid(doc)[0]
	if len(events) != 10*2+10*3*2 {
		t.Fatalf("got %d events, want %d", len(events), 10*2+10*3*2)
	}
	checkBalanced(t, events)
}

// TestRingWraparound floods a small ring far past its capacity: the
// lane must keep accepting records without allocating or corrupting,
// and the export must still be balanced (pairs split by the wrap are
// dropped, not emitted dangling).
func TestRingWraparound(t *testing.T) {
	tr := NewTracer()
	lane := tr.Lane("wrap", 64) // ring of 64 events
	id := tr.Span("s")
	const spans = 10_000
	for i := 0; i < spans; i++ {
		lane.Begin(id)
		lane.End(id)
	}
	if _, over := lane.Dropped(); over != 2*spans-64 {
		t.Fatalf("ring overwrites = %d, want %d", over, 2*spans-64)
	}
	doc := exportDoc(t, tr)
	events := byTid(doc)[0]
	if len(events) == 0 || len(events) > 64 {
		t.Fatalf("exported %d events from a 64-slot ring", len(events))
	}
	checkBalanced(t, events)
}

// TestRingWraparoundOpenSpan: a Begin overwritten by the wrap must not
// leave its End dangling in the export.
func TestRingWraparoundOpenSpan(t *testing.T) {
	tr := NewTracer()
	lane := tr.Lane("wrap", 64)
	outer := tr.Span("outer")
	tick := tr.Span("tick")
	lane.Begin(outer)
	for i := 0; i < 500; i++ { // push the outer B out of the ring
		lane.Begin(tick)
		lane.End(tick)
	}
	lane.End(outer)
	doc := exportDoc(t, tr)
	checkBalanced(t, byTid(doc)[0])
	for _, e := range byTid(doc)[0] {
		if e.Name == "outer" {
			t.Fatal("outer span emitted although its Begin was overwritten")
		}
	}
}

func TestCompleteEvents(t *testing.T) {
	tr := NewTracer()
	lane := tr.Lane("arch", 64)
	id := tr.Span("memsim")
	start := tr.Now()
	if d := lane.Complete(id, start); d < 0 {
		t.Fatalf("negative duration %d", d)
	}
	doc := exportDoc(t, tr)
	events := byTid(doc)[0]
	if len(events) != 1 || events[0].Ph != "X" || events[0].Name != "memsim" {
		t.Fatalf("want one X event, got %+v", events)
	}
	if events[0].Dur < 0 {
		t.Fatalf("X event carries negative dur %v", events[0].Dur)
	}
}

// TestConcurrentLanes exercises the intended concurrency model under
// -race: one lane per worker recording spans, plus a shared lane taking
// Complete records from every worker, plus shared registry counters.
func TestConcurrentLanes(t *testing.T) {
	tr := NewTracer()
	reg := NewRegistry()
	c := reg.Counter("test/ops")
	h := reg.Histogram("test/size", []int64{10, 100})
	shared := tr.Lane("shared", 1024)
	cid := tr.Span("complete")
	sid := tr.Span("work")

	const workers = 8
	lanes := make([]*Lane, workers)
	for i := range lanes {
		lanes[i] = tr.Lane("worker", 256)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				lanes[w].Begin(sid)
				reg.Add(c, 1)
				reg.ObserveInt(h, int64(i))
				start := tr.Now()
				shared.Complete(cid, start)
				lanes[w].End(sid)
			}
		}(w)
	}
	wg.Wait()
	if got := reg.CounterValue(c); got != workers*500 {
		t.Fatalf("counter = %d, want %d", got, workers*500)
	}
	doc := exportDoc(t, tr)
	for tid, events := range byTid(doc) {
		_ = tid
		checkBalanced(t, events)
	}
}

func TestSnapshotSortedAndOrderIndependent(t *testing.T) {
	build := func(order []string) *Registry {
		r := NewRegistry()
		for _, n := range order {
			r.Counter(n)
		}
		r.Add(r.Counter("b/two"), 2)
		r.Add(r.Counter("a/one"), 1)
		r.Add(r.Counter("c/three"), 3)
		return r
	}
	s1 := build([]string{"a/one", "b/two", "c/three"}).Snapshot()
	s2 := build([]string{"c/three", "a/one", "b/two"}).Snapshot()
	if s1 != s2 {
		t.Fatalf("snapshot depends on registration order:\n%s\nvs\n%s", s1, s2)
	}
	lines := strings.Split(strings.TrimSpace(s1), "\n")
	want := []string{"counter a/one 1", "counter b/two 2", "counter c/three 3"}
	for i, w := range want {
		if lines[i] != w {
			t.Fatalf("line %d = %q, want %q", i, lines[i], w)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dof", []int64{8, 32, 128})
	for _, v := range []int64{1, 8, 9, 32, 33, 128, 129, 100000} {
		r.ObserveInt(h, v)
	}
	got := r.Snapshot()
	want := "hist dof le8:2 le32:2 le128:2 inf:2 total:8\n"
	if got != want {
		t.Fatalf("snapshot = %q, want %q", got, want)
	}
}

// TestNilSafety: the disabled tracer/registry is a nil pointer and
// every instrumented call site must be a no-op through it.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	var lane *Lane
	var reg *Registry
	if tr.Span("x") != 0 || tr.Now() != 0 || tr.Lane("x", 64) != nil {
		t.Fatal("nil tracer not inert")
	}
	lane.Begin(0)
	if lane.End(0) != 0 || lane.Complete(0, 0) != 0 || lane.Name() != "" {
		t.Fatal("nil lane not inert")
	}
	if s, o := lane.Dropped(); s != 0 || o != 0 {
		t.Fatal("nil lane reports drops")
	}
	reg.Add(0, 1)
	reg.SetGauge(0, 1)
	reg.ObserveInt(0, 1)
	if reg.CounterValue(0) != 0 || reg.Snapshot() != "" {
		t.Fatal("nil registry not inert")
	}
	if err := tr.WriteTrace(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteSnapshot(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

// TestRecordingAllocFree pins the noalloc contract at runtime: Begin,
// End, Complete, Now, Add and ObserveInt must not touch the heap.
func TestRecordingAllocFree(t *testing.T) {
	tr := NewTracer()
	lane := tr.Lane("hot", 256)
	id := tr.Span("s")
	reg := NewRegistry()
	c := reg.Counter("c")
	h := reg.Histogram("h", []int64{10, 100})
	avg := testing.AllocsPerRun(200, func() {
		lane.Begin(id)
		reg.Add(c, 1)
		reg.ObserveInt(h, 42)
		start := tr.Now()
		lane.Complete(id, start)
		lane.End(id)
	})
	if avg != 0 {
		t.Fatalf("hot-path recording allocates %.1f objects/op, want 0", avg)
	}
}

// TestConcurrentRegistrationAndRecording pins that registration may
// interleave with recording: the harness captures benchmarks lazily,
// so a capture registers its metrics while other goroutines are
// already hammering previously registered counters. Registration must
// never move a live value (a slice append would, losing concurrent
// atomic adds on the old backing array).
func TestConcurrentRegistrationAndRecording(t *testing.T) {
	reg := NewRegistry()
	base := reg.Counter("base")
	hbase := reg.Histogram("hbase", []int64{10})

	const adds = 50000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < adds; i++ {
			reg.Add(base, 1)
			reg.ObserveInt(hbase, int64(i%20))
		}
	}()

	ids := make([]CounterID, 100)
	for i := range ids {
		ids[i] = reg.Counter(fmt.Sprintf("c%03d", i))
		reg.Add(ids[i], 2)
		if i < maxHists-1 {
			reg.Histogram(fmt.Sprintf("h%03d", i), []int64{1, 2})
		}
	}
	<-done

	if got := reg.CounterValue(base); got != adds {
		t.Errorf("base counter lost updates during registration: got %d, want %d", got, adds)
	}
	for i, id := range ids {
		if got := reg.CounterValue(id); got != 2 {
			t.Errorf("counter c%03d = %d, want 2", i, got)
		}
	}
	if want := fmt.Sprintf("hist hbase le10:%d inf:%d total:%d\n", adds/20*11, adds/20*9, adds); !strings.Contains(reg.Snapshot(), want) {
		t.Errorf("hbase lost samples: snapshot lacks %q:\n%s", want, reg.Snapshot())
	}
}
