package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// promPrefix namespaces every exposed metric family.
const promPrefix = "parallax_"

// promName mangles a registry metric name into a legal Prometheus
// metric name: the namespace prefix plus the name with every character
// outside [a-zA-Z0-9_] replaced by '_'.
func promName(name string) string {
	var sb strings.Builder
	sb.Grow(len(promPrefix) + len(name))
	sb.WriteString(promPrefix)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promFloat renders a sample value. strconv with 'g'/-1 is shortest
// round-trip formatting — a pure function of the bits — and spells the
// non-finite values exactly as the exposition format does ("NaN",
// "+Inf", "-Inf").
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promFamily is one metric family ready to emit: a TYPE header plus
// sample lines.
type promFamily struct {
	name  string
	typ   string
	lines []string
}

// WriteProm renders the registry and the series' deterministic channels
// as Prometheus text exposition format 0.0.4. The output is sorted by
// family name and every value is either a commutative integer aggregate
// or a deterministically-computed simulation quantity, so the bytes are
// identical whatever the thread count — the property the CI health
// gate pins.
//
// Families:
//
//	counter  <name>            -> parallax_<name>_total (counter)
//	gauge    <name>            -> parallax_<name> (gauge)
//	hist     <name>            -> parallax_<name> (histogram: cumulative
//	                              _bucket{le=...}, _sum, _count)
//	series channel <name>      -> parallax_series_<name> (gauge, last
//	                              committed value)
//
// Wall-clock data is excluded by construction: gauges under the
// "trace/" prefix (Tracer.Publish output) and series timing channels
// never appear here — they live in WriteSnapshot, /series.json and
// flight bundles instead. Nil registry/series contribute nothing.
func WriteProm(w io.Writer, r *Registry, s *Series) error {
	var fams []promFamily

	if r != nil {
		r.mu.Lock()
		for i, n := range r.counterNames {
			fams = append(fams, promFamily{
				name: promName(n) + "_total",
				typ:  "counter",
				lines: []string{
					promName(n) + "_total " + strconv.FormatInt(atomic.LoadInt64(&r.counters[i]), 10),
				},
			})
		}
		for i, n := range r.gaugeNames {
			if strings.HasPrefix(n, "trace/") {
				continue
			}
			v := math.Float64frombits(atomic.LoadUint64(&r.gauges[i]))
			fams = append(fams, promFamily{
				name:  promName(n),
				typ:   "gauge",
				lines: []string{promName(n) + " " + promFloat(v)},
			})
		}
		for i, n := range r.histNames {
			h := &r.hists[i]
			pn := promName(n)
			fam := promFamily{name: pn, typ: "histogram"}
			cum := int64(0)
			for bi := range h.counts {
				cum += atomic.LoadInt64(&h.counts[bi])
				le := "+Inf"
				if bi < len(h.bounds) {
					le = strconv.FormatInt(h.bounds[bi], 10)
				}
				fam.lines = append(fam.lines,
					pn+`_bucket{le="`+le+`"} `+strconv.FormatInt(cum, 10))
			}
			fam.lines = append(fam.lines,
				pn+"_sum "+strconv.FormatInt(atomic.LoadInt64(&r.histSums[i]), 10),
				pn+"_count "+strconv.FormatInt(cum, 10))
			fams = append(fams, fam)
		}
		r.mu.Unlock()
	}

	if s != nil {
		s.mu.Lock()
		if s.head > 0 {
			last := (s.head - 1) & s.mask
			for ci, n := range s.names {
				if s.timing[ci] {
					continue
				}
				pn := promName("series/" + n)
				fams = append(fams, promFamily{
					name:  pn,
					typ:   "gauge",
					lines: []string{pn + " " + promFloat(s.rings[ci][last])},
				})
			}
		}
		s.mu.Unlock()
	}

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if _, err := fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := bw.WriteString(line + "\n"); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ValidateExposition parses a Prometheus text-exposition document and
// returns the first structural error it finds: malformed metric names,
// unparseable sample values, TYPE lines for unknown types, histogram
// buckets that are not cumulative, or a histogram _count that
// disagrees with its +Inf bucket. It is deliberately a small subset of
// a real scrape parser — enough for CI to prove the /metrics endpoint
// emits what a scraper would accept.
func ValidateExposition(data []byte) error {
	type histCheck struct {
		lastCum   int64
		infBucket int64
		hasInf    bool
		count     int64
		hasCount  bool
	}
	hists := map[string]*histCheck{}
	declared := map[string]string{} // family -> type

	lines := strings.Split(string(data), "\n")
	for ln, line := range lines {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "HELP" {
				continue
			}
			if len(fields) != 4 || fields[1] != "TYPE" {
				return fmt.Errorf("line %d: malformed comment %q", ln+1, line)
			}
			name, typ := fields[2], fields[3]
			if !validPromName(name) {
				return fmt.Errorf("line %d: invalid metric name %q", ln+1, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", ln+1, typ)
			}
			if prev, dup := declared[name]; dup {
				return fmt.Errorf("line %d: family %s declared twice (%s, %s)", ln+1, name, prev, typ)
			}
			declared[name] = typ
			if typ == "histogram" {
				hists[name] = &histCheck{}
			}
			continue
		}

		// Sample line: name[{labels}] value [timestamp]
		name, rest := line, ""
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name, rest = line[:i], line[i:]
		}
		if !validPromName(name) {
			return fmt.Errorf("line %d: invalid metric name %q", ln+1, name)
		}
		var le string
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "}")
			if end < 0 {
				return fmt.Errorf("line %d: unterminated label set", ln+1)
			}
			labels := rest[1:end]
			rest = rest[end+1:]
			if strings.HasPrefix(labels, `le="`) && strings.HasSuffix(labels, `"`) {
				le = labels[len(`le="`) : len(labels)-1]
			}
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return fmt.Errorf("line %d: want value [timestamp], got %q", ln+1, rest)
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return fmt.Errorf("line %d: bad sample value %q: %v", ln+1, fields[0], err)
		}

		// Histogram structure checks keyed off the declared family.
		if base, ok := strings.CutSuffix(name, "_bucket"); ok {
			if hc := hists[base]; hc != nil {
				if le == "" {
					return fmt.Errorf("line %d: histogram bucket without le label", ln+1)
				}
				cum := int64(v)
				if cum < hc.lastCum {
					return fmt.Errorf("line %d: non-cumulative bucket for %s: %d after %d", ln+1, base, cum, hc.lastCum)
				}
				hc.lastCum = cum
				if le == "+Inf" {
					hc.infBucket = cum
					hc.hasInf = true
				}
			}
		} else if base, ok := strings.CutSuffix(name, "_count"); ok {
			if hc := hists[base]; hc != nil {
				hc.count = int64(v)
				hc.hasCount = true
			}
		}
	}
	histNames := make([]string, 0, len(hists))
	for name := range hists {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		hc := hists[name]
		if !hc.hasInf {
			return fmt.Errorf("histogram %s: missing +Inf bucket", name)
		}
		if !hc.hasCount {
			return fmt.Errorf("histogram %s: missing _count", name)
		}
		if hc.infBucket != hc.count {
			return fmt.Errorf("histogram %s: +Inf bucket %d != _count %d", name, hc.infBucket, hc.count)
		}
	}
	return nil
}

// validPromName reports whether s is a legal Prometheus metric name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
