package obs

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// feedSteady fills the detector's trailing windows with a calm signal.
func feedSteady(h *Health, steps int) int64 {
	var step int64
	for i := 0; i < steps; i++ {
		step++
		h.Update(step, Sample{KineticEnergy: 100, Finite: true, Residual: 10})
	}
	return step
}

func TestHealthNaNTrips(t *testing.T) {
	h := NewHealth()
	step := feedSteady(h, 3) // no window needed for the NaN check
	if h.Tripped() {
		t.Fatal("tripped on steady samples")
	}
	if !h.Update(step+1, Sample{KineticEnergy: 100, Finite: false, Residual: 10}) {
		t.Fatal("non-finite body state did not trip")
	}
	st := h.Status()
	if st.OK || st.Cause != CauseNaN || st.Step != step+1 {
		t.Fatalf("status = %+v", st)
	}
	// NaN kinetic energy alone also trips.
	h2 := NewHealth()
	if !h2.Update(1, Sample{KineticEnergy: math.NaN(), Finite: true}) {
		t.Fatal("NaN energy did not trip")
	}
}

func TestHealthEnergySpikeTrips(t *testing.T) {
	h := NewHealth()
	step := feedSteady(h, healthWindow)
	if !h.Update(step+1, Sample{KineticEnergy: 100 * h.EnergySpikeRatio * 2, Finite: true, Residual: 10}) {
		t.Fatal("energy spike did not trip")
	}
	if st := h.Status(); st.Cause != CauseEnergy {
		t.Fatalf("cause = %v, want %v", st.Cause, CauseEnergy)
	}
}

func TestHealthResidualBlowupTrips(t *testing.T) {
	h := NewHealth()
	step := feedSteady(h, healthWindow)
	if !h.Update(step+1, Sample{KineticEnergy: 100, Finite: true, Residual: 10 * h.ResidualSpikeRatio * 2}) {
		t.Fatal("residual blowup did not trip")
	}
	if st := h.Status(); st.Cause != CauseResidual {
		t.Fatalf("cause = %v, want %v", st.Cause, CauseResidual)
	}
}

func TestHealthRebuildStormTrips(t *testing.T) {
	h := NewHealth()
	var step int64
	tripped := false
	for i := int64(0); i <= h.RebuildStormMax+1 && !tripped; i++ {
		step++
		tripped = h.Update(step, Sample{KineticEnergy: 100, Finite: true, Rebuilds: 1})
	}
	if !tripped {
		t.Fatal("rebuild storm did not trip")
	}
	if st := h.Status(); st.Cause != CauseRebuildStorm {
		t.Fatalf("cause = %v, want %v", st.Cause, CauseRebuildStorm)
	}
	// A broken streak resets the run.
	h2 := NewHealth()
	step = 0
	for i := int64(0); i < h2.RebuildStormMax*3; i++ {
		step++
		rb := int64(1)
		if i%4 == 3 {
			rb = 0
		}
		if h2.Update(step, Sample{KineticEnergy: 100, Finite: true, Rebuilds: rb}) {
			t.Fatal("interrupted rebuild runs must not trip")
		}
	}
}

func TestHealthSpikeChecksNeedFullWindow(t *testing.T) {
	// Settling transients: huge ratios in the first few steps (scene
	// drop, first contact) must not trip before the window fills.
	h := NewHealth()
	if h.Update(1, Sample{KineticEnergy: 1, Finite: true, Residual: 1}) {
		t.Fatal("tripped on first sample")
	}
	if h.Update(2, Sample{KineticEnergy: 1e12, Finite: true, Residual: 1e12}) {
		t.Fatal("tripped during window fill")
	}
}

func TestHealthQuietSceneBelowFloorNeverTrips(t *testing.T) {
	h := NewHealth()
	var step int64
	for i := 0; i < healthWindow+8; i++ {
		step++
		// Resting scene: energies way below EnergyFloor. Any ratio of
		// near-zero to near-zero is noise, not an anomaly.
		if h.Update(step, Sample{KineticEnergy: 1e-9, Finite: true, Residual: 1e-9}) {
			t.Fatalf("tripped on a resting scene at step %d: %+v", step, h.Status())
		}
	}
	if h.Update(step+1, Sample{KineticEnergy: 1e-3, Finite: true, Residual: 1e-9}) {
		t.Fatal("sub-floor energy ratio tripped")
	}
}

func TestHealthLatches(t *testing.T) {
	h := NewHealth()
	h.Update(1, Sample{Finite: false})
	if !h.Tripped() {
		t.Fatal("did not trip")
	}
	// Healthy samples after the trip do not clear it.
	h.Update(2, Sample{KineticEnergy: 1, Finite: true})
	st := h.Status()
	if st.OK || st.Step != 1 {
		t.Fatalf("trip did not latch: %+v", st)
	}
}

func TestHealthNilSafety(t *testing.T) {
	var h *Health
	if h.Update(1, Sample{Finite: false}) || h.Tripped() {
		t.Fatal("nil detector must never trip")
	}
	if st := h.Status(); !st.OK {
		t.Fatal("nil detector must report OK")
	}
}

func TestHealthUpdateAllocFree(t *testing.T) {
	h := NewHealth()
	var step int64
	allocs := testing.AllocsPerRun(200, func() {
		step++
		h.Update(step, Sample{KineticEnergy: 100, Finite: true, Residual: 10})
	})
	if allocs != 0 {
		t.Fatalf("Health.Update allocates %v per step, want 0", allocs)
	}
}

func TestWriteFlightBundle(t *testing.T) {
	dir := t.TempDir()
	tr := NewTracer()
	l := tr.Lane("main", 64)
	id := tr.Span("step")
	l.Begin(id)
	l.End(id)
	reg := NewRegistry()
	reg.Add(reg.Counter("engine/steps"), 7)
	s := NewSeries(64)
	ke := s.Channel("kinetic_energy")
	s.Set(ke, math.NaN())
	s.Advance()

	snapshot := []byte("PAXW-not-really")
	bundle, err := WriteFlightBundle(dir,
		FlightInfo{Cause: CauseNaN.String(), Step: 123, Label: "Mix"},
		snapshot, tr, reg, s)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(bundle) != "flight-step123-nan_state" {
		t.Fatalf("bundle dir = %s", bundle)
	}

	read := func(name string) string {
		t.Helper()
		b, err := os.ReadFile(filepath.Join(bundle, name))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	cause := read("cause.txt")
	for _, want := range []string{"cause nan_state\n", "step 123\n", "label Mix\n"} {
		if !strings.Contains(cause, want) {
			t.Errorf("cause.txt missing %q:\n%s", want, cause)
		}
	}
	if got := read("world.paxw"); got != string(snapshot) {
		t.Errorf("world.paxw = %q", got)
	}
	if !json.Valid([]byte(read("trace.json"))) {
		t.Error("trace.json is not valid JSON")
	}
	if !json.Valid([]byte(read("series.json"))) {
		t.Error("series.json is not valid JSON (NaN leaked as a bare token?)")
	}
	metrics := read("metrics.txt")
	if !strings.Contains(metrics, "counter engine/steps 7") {
		t.Errorf("metrics.txt missing counter:\n%s", metrics)
	}
	// WriteFlightBundle publishes the tracer totals into the snapshot.
	if !strings.Contains(metrics, "trace/span/step/count") {
		t.Errorf("metrics.txt missing published span totals:\n%s", metrics)
	}
}

func TestWriteFlightBundleNilComponents(t *testing.T) {
	dir := t.TempDir()
	bundle, err := WriteFlightBundle(dir,
		FlightInfo{Cause: "replay_divergence", Step: 5, Label: "x"},
		nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// No snapshot -> no world.paxw; the rest of the file set exists.
	if _, err := os.Stat(filepath.Join(bundle, "world.paxw")); !os.IsNotExist(err) {
		t.Error("world.paxw should be omitted without a snapshot")
	}
	for _, name := range []string{"cause.txt", "trace.json", "metrics.txt", "series.json"} {
		if _, err := os.Stat(filepath.Join(bundle, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
}
