package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestSeriesRecordAndLast(t *testing.T) {
	s := NewSeries(64)
	ke := s.Channel("kinetic_energy")
	res := s.Channel("residual")
	for i := 0; i < 10; i++ {
		s.Set(ke, float64(i))
		s.Set(res, float64(i)*2)
		s.Advance()
	}
	if got := s.Steps(); got != 10 {
		t.Fatalf("Steps = %d, want 10", got)
	}
	if v, ok := s.Last(ke); !ok || v != 9 {
		t.Fatalf("Last(ke) = %v,%v, want 9,true", v, ok)
	}
	if v, ok := s.Last(res); !ok || v != 18 {
		t.Fatalf("Last(res) = %v,%v, want 18,true", v, ok)
	}
	w := s.Window(ke, nil)
	if len(w) != 10 || w[0] != 0 || w[9] != 9 {
		t.Fatalf("Window = %v", w)
	}
}

func TestSeriesStagedValuesClearOnAdvance(t *testing.T) {
	s := NewSeries(64)
	a := s.Channel("a")
	b := s.Channel("b")
	s.Set(a, 5)
	s.Set(b, 7)
	s.Advance()
	// Channel b not staged this step: commits zero, not a stale 7.
	s.Set(a, 6)
	s.Advance()
	if v, _ := s.Last(a); v != 6 {
		t.Fatalf("Last(a) = %v, want 6", v)
	}
	if v, _ := s.Last(b); v != 0 {
		t.Fatalf("Last(b) = %v, want 0 (staging must clear)", v)
	}
}

func TestSeriesRingWraparound(t *testing.T) {
	s := NewSeries(64)
	if s.Capacity() != 64 {
		t.Fatalf("Capacity = %d, want 64", s.Capacity())
	}
	id := s.Channel("v")
	const total = 150
	for i := 0; i < total; i++ {
		s.Set(id, float64(i))
		s.Advance()
	}
	if got := s.Steps(); got != total {
		t.Fatalf("Steps = %d, want %d", got, total)
	}
	w := s.Window(id, nil)
	if len(w) != 64 {
		t.Fatalf("resident window = %d values, want 64", len(w))
	}
	// Oldest resident is step total-64, newest is total-1.
	if w[0] != total-64 || w[63] != total-1 {
		t.Fatalf("window spans [%v,%v], want [%v,%v]", w[0], w[63], total-64, total-1)
	}
}

func TestSeriesCapacityRounding(t *testing.T) {
	if got := NewSeries(0).Capacity(); got != 64 {
		t.Fatalf("Capacity(0) = %d, want 64", got)
	}
	if got := NewSeries(65).Capacity(); got != 128 {
		t.Fatalf("Capacity(65) = %d, want 128", got)
	}
	if got := NewSeries(512).Capacity(); got != 512 {
		t.Fatalf("Capacity(512) = %d, want 512", got)
	}
}

func TestSeriesChannelIdempotent(t *testing.T) {
	s := NewSeries(64)
	a := s.Channel("x")
	b := s.Channel("x")
	if a != b {
		t.Fatalf("re-registering returned %d then %d", a, b)
	}
	if n := len(s.Names()); n != 1 {
		t.Fatalf("Names = %d entries, want 1", n)
	}
}

// seriesDoc mirrors WriteJSON's document shape; values are numbers or
// the strings "NaN"/"+Inf"/"-Inf".
type seriesDoc struct {
	Steps     int64 `json:"steps"`
	FirstStep int64 `json:"first_step"`
	Capacity  int64 `json:"capacity"`
	Channels  []struct {
		Name   string        `json:"name"`
		Timing bool          `json:"timing"`
		Values []interface{} `json:"values"`
	} `json:"channels"`
}

func TestSeriesWriteJSON(t *testing.T) {
	s := NewSeries(64)
	ke := s.Channel("kinetic_energy")
	ph := s.TimingChannel("phase_ns")
	s.Set(ke, 1.5)
	s.Set(ph, 1000)
	s.Advance()
	s.Set(ke, math.NaN())
	s.Set(ph, math.Inf(1))
	s.Advance()

	var sb strings.Builder
	if err := s.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc seriesDoc
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("WriteJSON output does not parse: %v\n%s", err, sb.String())
	}
	if doc.Steps != 2 || doc.Capacity != 64 || len(doc.Channels) != 2 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Channels[0].Name != "kinetic_energy" || doc.Channels[0].Timing {
		t.Fatalf("channel 0 = %+v", doc.Channels[0])
	}
	if !doc.Channels[1].Timing {
		t.Fatalf("phase_ns should be a timing channel")
	}
	// The NaN sample must arrive as the string "NaN", keeping the
	// document valid JSON.
	if got := doc.Channels[0].Values[1]; got != "NaN" {
		t.Fatalf("NaN value encoded as %v (%T), want \"NaN\"", got, got)
	}
	if got := doc.Channels[1].Values[1]; got != "+Inf" {
		t.Fatalf("+Inf value encoded as %v, want \"+Inf\"", got)
	}
}

func TestSeriesNilSafety(t *testing.T) {
	var s *Series
	id := s.Channel("x")
	s.Set(id, 1)
	s.Advance()
	if s.Steps() != 0 || s.Capacity() != 0 || s.Names() != nil {
		t.Fatal("nil series must be inert")
	}
	if _, ok := s.Last(id); ok {
		t.Fatal("nil series Last must report no data")
	}
	if w := s.Window(id, nil); w != nil {
		t.Fatalf("nil series Window = %v", w)
	}
	var sb strings.Builder
	if err := s.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(sb.String())) {
		t.Fatalf("nil series WriteJSON invalid: %s", sb.String())
	}
}

func TestSeriesRecordingAllocFree(t *testing.T) {
	s := NewSeries(64)
	a := s.Channel("a")
	b := s.Channel("b")
	allocs := testing.AllocsPerRun(200, func() {
		s.Set(a, 1.5)
		s.Set(b, 2.5)
		s.Advance()
	})
	if allocs != 0 {
		t.Fatalf("series recording allocates %v per step, want 0", allocs)
	}
}
