package obs

import (
	"strconv"
	"strings"
	"testing"
)

// TestPublishRingOverwriteCounter forces a lane ring wraparound and
// asserts the loss shows up in the metrics snapshot: silent trace loss
// must be visible in CI artifacts.
func TestPublishRingOverwriteCounter(t *testing.T) {
	tr := NewTracer()
	l := tr.Lane("main", 64) // minimum ring: 64 records
	id := tr.Span("step")
	for i := 0; i < 50; i++ { // 100 records > 64: wraps
		l.Begin(id)
		l.End(id)
	}
	_, over := l.Dropped()
	if over == 0 {
		t.Fatal("expected ring overwrites after 100 records in a 64-slot ring")
	}

	reg := NewRegistry()
	tr.Publish(reg)
	snap := reg.Snapshot()
	if !strings.Contains(snap, "gauge trace/ring_overwrites "+strconv.FormatInt(over, 10)) {
		t.Fatalf("ring overwrite counter missing from snapshot (want %d):\n%s", over, snap)
	}
	if !strings.Contains(snap, "gauge trace/stack_drops 0") {
		t.Fatalf("stack drop counter missing from snapshot:\n%s", snap)
	}
	// Span totals: 50 matched step spans.
	if !strings.Contains(snap, "gauge trace/span/step/count 50") {
		t.Fatalf("span totals missing from snapshot:\n%s", snap)
	}
	if !strings.Contains(snap, "gauge trace/span/step/ns ") {
		t.Fatalf("span duration total missing from snapshot:\n%s", snap)
	}
}

// TestPublishStackDropCounter overflows the open-span stack and asserts
// the drop count surfaces.
func TestPublishStackDropCounter(t *testing.T) {
	tr := NewTracer()
	l := tr.Lane("main", 2048)
	id := tr.Span("deep")
	for i := 0; i < maxOpenSpans+5; i++ {
		l.Begin(id)
	}
	drops, _ := l.Dropped()
	if drops != 5 {
		t.Fatalf("stack drops = %d, want 5", drops)
	}
	reg := NewRegistry()
	tr.Publish(reg)
	if !strings.Contains(reg.Snapshot(), "gauge trace/stack_drops 5") {
		t.Fatalf("stack drops missing from snapshot:\n%s", reg.Snapshot())
	}
}

// TestPublishSkipsIdleSpans pins that registering a span that never
// finishes adds no snapshot lines, and that Publish sums across lanes.
func TestPublishSkipsIdleSpansAndSumsLanes(t *testing.T) {
	tr := NewTracer()
	tr.Span("idle")
	busy := tr.Span("busy")
	for i := 0; i < 2; i++ {
		l := tr.Lane("w", 64)
		l.Begin(busy)
		l.End(busy)
	}
	reg := NewRegistry()
	tr.Publish(reg)
	snap := reg.Snapshot()
	if strings.Contains(snap, "trace/span/idle") {
		t.Fatalf("idle span leaked into snapshot:\n%s", snap)
	}
	if !strings.Contains(snap, "gauge trace/span/busy/count 2") {
		t.Fatalf("cross-lane span count wrong:\n%s", snap)
	}
	// Publish is idempotent-safe: calling again just overwrites gauges.
	tr.Publish(reg)
	if !strings.Contains(reg.Snapshot(), "gauge trace/span/busy/count 2") {
		t.Fatal("second Publish changed the totals")
	}
}

func TestPublishNilSafety(t *testing.T) {
	var tr *Tracer
	tr.Publish(NewRegistry()) // no-op
	NewTracer().Publish(nil)  // no-op
}
