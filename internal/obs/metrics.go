package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// CounterID, GaugeID and HistID index pre-registered metrics. The zero
// value of each is a valid ID, so instruments hold them by value and
// guard only on the registry pointer.
type (
	CounterID int32
	GaugeID   int32
	HistID    int32
)

// Metric capacities. Values live in fixed-size arrays so registration
// — which may happen lazily, after concurrent recording of previously
// registered metrics has started — never moves a live value the way a
// slice append would. Metric names are shared (re-registration returns
// the existing ID), so the distinct-name count is small and static;
// exceeding a capacity panics at registration, the cold path.
const (
	maxCounters = 256
	// Gauges get the same headroom as counters: Tracer.Publish mirrors
	// every registered span as a count + nanos gauge pair, and a
	// harness run registers a span per captured benchmark.
	maxGauges = 256
	maxHists  = 64
)

// Registry is the typed metrics store. Registration (Counter, Gauge,
// Histogram) is mutex-protected and idempotent per name; it may run
// concurrently with recording, since the record methods index
// fixed-size arrays whose elements never move. A metric's ID must be
// fully registered before it is recorded to (publish IDs with the
// usual happens-before tools: sync.Once, channel, WaitGroup).
//
// Counters and histogram buckets are int64s updated atomically:
// integer addition commutes, so totals are identical whatever order
// concurrent workers record in, and the snapshot is deterministic
// across thread counts. Gauges hold float64 bits and are set-last-wins;
// use them only for configuration values that every writer agrees on.
type Registry struct {
	mu sync.Mutex

	counterNames []string
	counters     [maxCounters]int64

	gaugeNames []string
	gauges     [maxGauges]uint64

	histNames []string
	hists     [maxHists]hist
	// histSums accumulates the raw sum of observed values per histogram,
	// alongside the bucket counts, so the Prometheus exposition can emit
	// the required _sum family. Same commutative-integer argument as the
	// counters: thread-count deterministic.
	histSums [maxHists]int64
}

type hist struct {
	// bounds are the inclusive upper bucket bounds; counts has
	// len(bounds)+1 entries, the last being the overflow bucket.
	bounds []int64
	counts []int64
}

// NewRegistry returns an empty registry. A nil *Registry is the
// disabled registry: record methods on it are no-ops.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers (or finds) a counter by name.
func (r *Registry) Counter(name string) CounterID {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, n := range r.counterNames {
		if n == name {
			return CounterID(i)
		}
	}
	if len(r.counterNames) == maxCounters {
		panic("obs: too many counters registered")
	}
	r.counterNames = append(r.counterNames, name)
	return CounterID(len(r.counterNames) - 1)
}

// Gauge registers (or finds) a gauge by name.
func (r *Registry) Gauge(name string) GaugeID {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, n := range r.gaugeNames {
		if n == name {
			return GaugeID(i)
		}
	}
	if len(r.gaugeNames) == maxGauges {
		panic("obs: too many gauges registered")
	}
	r.gaugeNames = append(r.gaugeNames, name)
	return GaugeID(len(r.gaugeNames) - 1)
}

// Histogram registers (or finds) a fixed-bucket histogram. The bounds
// are inclusive upper limits in ascending order; one overflow bucket is
// added. Re-registering an existing name returns the existing ID and
// keeps the original bounds.
func (r *Registry) Histogram(name string, bounds []int64) HistID {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, n := range r.histNames {
		if n == name {
			return HistID(i)
		}
	}
	if len(r.histNames) == maxHists {
		panic("obs: too many histograms registered")
	}
	b := append([]int64(nil), bounds...)
	r.histNames = append(r.histNames, name)
	r.hists[len(r.histNames)-1] = hist{bounds: b, counts: make([]int64, len(b)+1)}
	return HistID(len(r.histNames) - 1)
}

// Add increments a counter. Safe for concurrent use.
//
//paraxlint:noalloc
func (r *Registry) Add(id CounterID, delta int64) {
	if r == nil {
		return
	}
	atomic.AddInt64(&r.counters[id], delta)
}

// SetGauge stores a gauge value (set-last-wins).
//
//paraxlint:noalloc
func (r *Registry) SetGauge(id GaugeID, v float64) {
	if r == nil {
		return
	}
	atomic.StoreUint64(&r.gauges[id], math.Float64bits(v))
}

// ObserveInt records one histogram sample. Bucket search is a linear
// scan over the fixed bounds — no map, no allocation.
//
//paraxlint:noalloc
func (r *Registry) ObserveInt(id HistID, v int64) {
	if r == nil {
		return
	}
	h := &r.hists[id]
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	atomic.AddInt64(&h.counts[i], 1)
	atomic.AddInt64(&r.histSums[id], v)
}

// CounterValue reads a counter's current total.
func (r *Registry) CounterValue(id CounterID) int64 {
	if r == nil {
		return 0
	}
	return atomic.LoadInt64(&r.counters[id])
}

// WriteSnapshot writes the deterministic text snapshot: one line per
// metric, sorted by name across all kinds. Counter and histogram
// values are integers accumulated commutatively, so two runs that
// performed the same logical work produce identical bytes whatever
// their thread counts.
func (r *Registry) WriteSnapshot(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	lines := make([]string, 0, len(r.counterNames)+len(r.gaugeNames)+len(r.histNames))
	for i, n := range r.counterNames {
		lines = append(lines, fmt.Sprintf("counter %s %d", n, atomic.LoadInt64(&r.counters[i])))
	}
	for i, n := range r.gaugeNames {
		lines = append(lines, fmt.Sprintf("gauge %s %g", n, math.Float64frombits(atomic.LoadUint64(&r.gauges[i]))))
	}
	for i, n := range r.histNames {
		h := &r.hists[i]
		var sb strings.Builder
		fmt.Fprintf(&sb, "hist %s", n)
		total := int64(0)
		for bi := range h.counts {
			cv := atomic.LoadInt64(&h.counts[bi])
			total += cv
			if bi < len(h.bounds) {
				fmt.Fprintf(&sb, " le%d:%d", h.bounds[bi], cv)
			} else {
				fmt.Fprintf(&sb, " inf:%d", cv)
			}
		}
		fmt.Fprintf(&sb, " total:%d", total)
		lines = append(lines, sb.String())
	}
	r.mu.Unlock()
	// Sorting by line sorts by "<kind> <name>", grouping kinds; the
	// name-sorted order within a kind is what the golden tests pin.
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns WriteSnapshot's output as a string.
func (r *Registry) Snapshot() string {
	var sb strings.Builder
	r.WriteSnapshot(&sb)
	return sb.String()
}
