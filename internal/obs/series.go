package obs

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"sync"
)

// ChannelID indexes a registered series channel.
type ChannelID int32

// maxSeriesChannels bounds the channel table. The staged-value array is
// fixed-size so registering a channel never moves storage the hot-path
// Set writes into.
const maxSeriesChannels = 64

// Series is a per-step time series: one power-of-two ring buffer per
// registered channel, all advancing in lockstep. The intended use is
// engine health telemetry — every World.Step stages one float64 per
// channel (Set) and then commits the whole row (Advance) from the
// serial post-step path, so recording is allocation-free and the
// resident window always holds the last-capacity steps of every
// channel.
//
// Channels come in two flavors. Plain channels (Channel) hold values
// derived deterministically from simulation state — kinetic energy,
// solver residual, island counts — and are byte-identical across thread
// counts; they feed the Prometheus exposition. Timing channels
// (TimingChannel) hold wall-clock quantities such as per-phase span
// durations; they are diagnostics only and are excluded from every
// deterministic export (they still appear in WriteJSON and flight
// bundles).
//
// Set is single-writer by contract (the stepping goroutine); Advance
// and all readers take the series mutex, so HTTP handlers may read a
// live series while the world steps.
type Series struct {
	mu     sync.Mutex
	mask   int64
	head   int64 // total steps committed; ring slot is head&mask
	names  []string
	timing []bool
	rings  [][]float64
	cur    [maxSeriesChannels]float64
}

// NewSeries returns a series whose rings hold at least capacity steps
// (rounded up to a power of two, minimum 64). A nil *Series is the
// disabled series: every method on it is a no-op.
func NewSeries(capacity int) *Series {
	size := 64
	for size < capacity {
		size *= 2
	}
	return &Series{mask: int64(size - 1)}
}

// Channel registers (or finds) a deterministic channel by name. Cold
// path: call at setup time, not per step.
func (s *Series) Channel(name string) ChannelID { return s.channel(name, false) }

// TimingChannel registers (or finds) a wall-clock channel by name. Its
// values are excluded from the deterministic Prometheus exposition.
func (s *Series) TimingChannel(name string) ChannelID { return s.channel(name, true) }

func (s *Series) channel(name string, timing bool) ChannelID {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, n := range s.names {
		if n == name {
			return ChannelID(i)
		}
	}
	if len(s.names) == maxSeriesChannels {
		panic("obs: too many series channels registered")
	}
	s.names = append(s.names, name)
	s.timing = append(s.timing, timing)
	s.rings = append(s.rings, make([]float64, s.mask+1))
	return ChannelID(len(s.names) - 1)
}

// Set stages a channel's value for the in-progress step. Values are
// committed — and the staging slots cleared — by the next Advance, so
// a channel not Set during a step records zero. Single-writer hot
// path: fixed-array store, no locking, no allocation.
//
//paraxlint:noalloc
func (s *Series) Set(id ChannelID, v float64) {
	if s == nil {
		return
	}
	s.cur[id] = v
}

// Advance commits the staged row as one completed step and clears the
// staging slots. Called once per World.Step from the serial post-step
// path; takes the mutex only to exclude concurrent readers.
//
//paraxlint:noalloc
func (s *Series) Advance() {
	if s == nil {
		return
	}
	s.mu.Lock()
	slot := s.head & s.mask
	for i := range s.rings {
		s.rings[i][slot] = s.cur[i]
		s.cur[i] = 0
	}
	s.head++
	s.mu.Unlock()
}

// Steps returns the total number of committed steps (monotonic; not
// bounded by the ring capacity).
func (s *Series) Steps() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.head
}

// Capacity returns the ring capacity in steps (0 for a nil series).
func (s *Series) Capacity() int {
	if s == nil {
		return 0
	}
	return int(s.mask + 1)
}

// resident returns how many committed steps are still in the rings.
// Callers hold s.mu.
func (s *Series) resident() int64 {
	n := s.head
	if n > s.mask+1 {
		n = s.mask + 1
	}
	return n
}

// Names returns the registered channel names in registration order.
func (s *Series) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.names...)
}

// Last returns the most recently committed value of a channel, and
// whether any step has been committed at all.
func (s *Series) Last(id ChannelID) (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.head == 0 || int(id) >= len(s.rings) {
		return 0, false
	}
	return s.rings[id][(s.head-1)&s.mask], true
}

// Window appends the resident values of a channel to dst, oldest first,
// and returns the extended slice.
func (s *Series) Window(id ChannelID, dst []float64) []float64 {
	if s == nil {
		return dst
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.rings) {
		return dst
	}
	for i := s.head - s.resident(); i < s.head; i++ {
		dst = append(dst, s.rings[id][i&s.mask])
	}
	return dst
}

// WriteJSON writes the resident window of every channel as JSON:
//
//	{"steps":N,"first_step":F,"capacity":C,"channels":[
//	  {"name":"kinetic_energy","timing":false,"values":[...]}, ...]}
//
// Values are plain JSON numbers; non-finite samples (a NaN'd world is
// exactly when a flight bundle is dumped) are encoded as the strings
// "NaN", "+Inf" and "-Inf" so the document always parses.
func (s *Series) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if s == nil {
		if _, err := bw.WriteString(`{"steps":0,"first_step":0,"capacity":0,"channels":[]}` + "\n"); err != nil {
			return err
		}
		return bw.Flush()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.resident()
	bw.WriteString(`{"steps":`)
	bw.WriteString(strconv.FormatInt(s.head, 10))
	bw.WriteString(`,"first_step":`)
	bw.WriteString(strconv.FormatInt(s.head-n, 10))
	bw.WriteString(`,"capacity":`)
	bw.WriteString(strconv.FormatInt(s.mask+1, 10))
	bw.WriteString(`,"channels":[`)
	for ci, name := range s.names {
		if ci > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n{\"name\":")
		bw.WriteString(strconv.Quote(name))
		bw.WriteString(`,"timing":`)
		bw.WriteString(strconv.FormatBool(s.timing[ci]))
		bw.WriteString(`,"values":[`)
		for i := s.head - n; i < s.head; i++ {
			if i > s.head-n {
				bw.WriteByte(',')
			}
			writeJSONFloat(bw, s.rings[ci][i&s.mask])
		}
		bw.WriteString("]}")
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// writeJSONFloat writes v as a JSON number, or as a quoted string for
// the non-finite values JSON cannot represent.
func writeJSONFloat(bw *bufio.Writer, v float64) {
	switch {
	case math.IsNaN(v):
		bw.WriteString(`"NaN"`)
	case math.IsInf(v, 1):
		bw.WriteString(`"+Inf"`)
	case math.IsInf(v, -1):
		bw.WriteString(`"-Inf"`)
	default:
		bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
}
