package obs

import (
	"strings"
	"testing"
)

func promOutput(t *testing.T, r *Registry, s *Series) string {
	t.Helper()
	var sb strings.Builder
	if err := WriteProm(&sb, r, s); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("engine/steps")
	g := r.Gauge("config/scale")
	h := r.Histogram("engine/island_dof", []int64{25, 64})
	r.Add(c, 42)
	r.SetGauge(g, 0.25)
	r.ObserveInt(h, 10)  // le 25
	r.ObserveInt(h, 30)  // le 64
	r.ObserveInt(h, 100) // +Inf

	s := NewSeries(64)
	ke := s.Channel("kinetic_energy")
	ph := s.TimingChannel("phase/broad_ns")
	s.Set(ke, 12.5)
	s.Set(ph, 99999)
	s.Advance()

	out := promOutput(t, r, s)
	if err := ValidateExposition([]byte(out)); err != nil {
		t.Fatalf("own output fails validation: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE parallax_engine_steps_total counter\n",
		"parallax_engine_steps_total 42\n",
		"# TYPE parallax_config_scale gauge\n",
		"parallax_config_scale 0.25\n",
		"# TYPE parallax_engine_island_dof histogram\n",
		`parallax_engine_island_dof_bucket{le="25"} 1` + "\n",
		`parallax_engine_island_dof_bucket{le="64"} 2` + "\n",
		`parallax_engine_island_dof_bucket{le="+Inf"} 3` + "\n",
		"parallax_engine_island_dof_sum 140\n",
		"parallax_engine_island_dof_count 3\n",
		"# TYPE parallax_series_kinetic_energy gauge\n",
		"parallax_series_kinetic_energy 12.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
	// Wall-clock data must never appear: timing channels and the
	// tracer's published trace/* gauges.
	if strings.Contains(out, "phase") || strings.Contains(out, "broad_ns") {
		t.Errorf("timing channel leaked into exposition:\n%s", out)
	}
}

func TestWritePromExcludesTraceGauges(t *testing.T) {
	tr := NewTracer()
	l := tr.Lane("main", 64)
	id := tr.Span("step")
	l.Begin(id)
	l.End(id)
	r := NewRegistry()
	tr.Publish(r)
	out := promOutput(t, r, nil)
	if strings.Contains(out, "trace") {
		t.Fatalf("published trace gauges (wall clock) leaked into exposition:\n%s", out)
	}
	// They do appear in the plain snapshot, where wall-clock is allowed.
	if !strings.Contains(r.Snapshot(), "trace/span/step/count") {
		t.Fatalf("span totals missing from snapshot:\n%s", r.Snapshot())
	}
}

func TestWritePromDeterministicOrder(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		// Registration order differs run to run conceptually; output
		// must be sorted regardless.
		r.Add(r.Counter("z/last"), 1)
		r.Add(r.Counter("a/first"), 2)
		r.SetGauge(r.Gauge("m/mid"), 3)
		return promOutput(t, r, nil)
	}
	build2 := func() string {
		r := NewRegistry()
		r.SetGauge(r.Gauge("m/mid"), 3)
		r.Add(r.Counter("a/first"), 2)
		r.Add(r.Counter("z/last"), 1)
		return promOutput(t, r, nil)
	}
	if a, b := build(), build2(); a != b {
		t.Fatalf("registration order leaked into exposition:\n%s\nvs\n%s", a, b)
	}
}

func TestPromNameMangling(t *testing.T) {
	if got := promName("engine/solver-rows.v2"); got != "parallax_engine_solver_rows_v2" {
		t.Fatalf("promName = %q", got)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"bad name":       "9bad_name 1\n",
		"bad value":      "parallax_x abc\n",
		"bad type":       "# TYPE parallax_x rate\n",
		"malformed TYPE": "# TYPE parallax_x\n",
		"dup family":     "# TYPE parallax_x gauge\n# TYPE parallax_x counter\n",
		"non-cumulative": "# TYPE parallax_h histogram\n" +
			`parallax_h_bucket{le="1"} 5` + "\n" +
			`parallax_h_bucket{le="+Inf"} 3` + "\n" +
			"parallax_h_sum 1\nparallax_h_count 3\n",
		"count mismatch": "# TYPE parallax_h histogram\n" +
			`parallax_h_bucket{le="+Inf"} 3` + "\n" +
			"parallax_h_sum 1\nparallax_h_count 4\n",
		"missing inf": "# TYPE parallax_h histogram\n" +
			`parallax_h_bucket{le="1"} 3` + "\n" +
			"parallax_h_sum 1\nparallax_h_count 3\n",
		"unterminated labels": "parallax_x{le=\"1\" 3\n",
	}
	for name, doc := range cases {
		if err := ValidateExposition([]byte(doc)); err == nil {
			t.Errorf("%s: accepted invalid exposition:\n%s", name, doc)
		}
	}
	if err := ValidateExposition([]byte("# TYPE parallax_x gauge\nparallax_x NaN\n")); err != nil {
		t.Errorf("NaN is a legal sample value: %v", err)
	}
}
