// Package obs is the engine's zero-allocation observability layer: a
// span tracer backed by preallocated per-lane ring buffers, a typed
// metrics registry (counters, gauges, fixed-bucket histograms) indexed
// by pre-registered IDs, and exporters — Chrome trace-event JSON
// (loadable in Perfetto) for the spans and a deterministic sorted text
// snapshot for the metrics.
//
// The hot-path contract (see DESIGN.md "Observability"):
//
//   - Recording a span (Lane.Begin / Lane.End / Lane.Complete) or a
//     metric sample (Registry.Add / Registry.ObserveInt) never touches
//     the heap: storage is preallocated at registration time and
//     records are fixed-size writes into a ring buffer or
//     slice-indexed counters. The record methods carry
//     //paraxlint:noalloc and are enforced by the repo's own analyzer.
//   - Every record method is nil-receiver safe, so instrumented code
//     needs no "is tracing on?" branches: a disabled tracer is a nil
//     pointer and the call is a single predicted-taken test.
//   - Span names and metric IDs are registered up front (Tracer.Span,
//     Registry.Counter, ...) on mutex-protected cold paths; the hot
//     path deals only in integer IDs.
//
// Timestamps are wall-clock and therefore nondeterministic; spans are
// diagnostics and must never feed experiment output. The metrics
// registry holds only order-independent integer aggregates, so its
// snapshot is byte-identical whatever the thread count.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanID names a registered span type.
type SpanID int32

// Event kinds stored in a lane's ring buffer.
const (
	evBegin uint8 = iota
	evEnd
	evComplete
)

// maxOpenSpans bounds a lane's open-span stack (nesting depth).
const maxOpenSpans = 32

// DefaultLaneEvents is the default ring capacity per lane.
const DefaultLaneEvents = 4096

// maxSpanTotals bounds the per-span cumulative totals table. A fixed
// array — not a grown slice — so registering a span never moves the
// storage that hot-path atomic adds race against.
const maxSpanTotals = 512

// spanTotal accumulates the matched-span count and summed duration for
// one span ID across all lanes. Updated with atomics from the record
// hot path; read with SpanTotal.
type spanTotal struct {
	count atomic.Int64
	ns    atomic.Int64
}

// event is one fixed-size ring record.
type event struct {
	id   SpanID
	kind uint8
	ts   int64 // nanoseconds since tracer start
	dur  int64 // evComplete only
}

type openSpan struct {
	id SpanID
	ts int64
}

// Tracer owns the span-name table and the lanes. One Tracer is shared
// by the engine, the architecture models and the harness so a single
// export shows the whole pipeline on one timeline.
type Tracer struct {
	mu      sync.Mutex
	start   time.Time
	names   []string
	nameIdx map[string]SpanID
	lanes   []*Lane
	totals  [maxSpanTotals]spanTotal
}

// NewTracer returns an enabled tracer. A nil *Tracer is the disabled
// tracer: every method on it (and on its nil lanes) is a no-op.
func NewTracer() *Tracer {
	return &Tracer{
		start:   time.Now(), //paraxlint:allow(time) span timestamps are diagnostics, never experiment output
		nameIdx: make(map[string]SpanID),
	}
}

// Span registers (or finds) a span name and returns its ID. Cold path:
// call at setup time, not per record.
func (t *Tracer) Span(name string) SpanID {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.nameIdx[name]; ok {
		return id
	}
	id := SpanID(len(t.names))
	t.names = append(t.names, name)
	t.nameIdx[name] = id
	return id
}

// Lane allocates a new lane (one Perfetto track) with a ring of at
// least `events` records (rounded up to a power of two, minimum 64).
// Lanes are single-writer by convention — one per worker goroutine —
// but a small per-lane mutex makes sharing safe where convenient (the
// arch models record complete spans from pool workers).
func (t *Tracer) Lane(name string, events int) *Lane {
	if t == nil {
		return nil
	}
	if events < 64 {
		events = 64
	}
	size := 64
	for size < events {
		size *= 2
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	l := &Lane{
		tr:   t,
		id:   int32(len(t.lanes)),
		name: name,
		buf:  make([]event, size),
		mask: int64(size - 1),
	}
	t.lanes = append(t.lanes, l)
	return l
}

// Now returns nanoseconds since the tracer started (0 for a nil
// tracer). Pair with Lane.Complete for spans measured by the caller.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	//paraxlint:allow(parsafe) monotonic clock read for span timestamps: wait-free, no shared state
	return time.Since(t.start).Nanoseconds()
}

// Lane is one track of span records with a private ring buffer.
type Lane struct {
	mu   sync.Mutex
	tr   *Tracer
	id   int32
	name string
	buf  []event
	mask int64
	head int64 // total records ever written; buf[head&mask] is next

	stack [maxOpenSpans]openSpan
	depth int32
	// dropped counts Begin records whose stack slot was exhausted.
	dropped int64
}

// Name returns the lane's track name.
func (l *Lane) Name() string {
	if l == nil {
		return ""
	}
	return l.name
}

// Begin records the start of a span on this lane.
func (l *Lane) Begin(id SpanID) {
	if l == nil {
		return
	}
	ts := l.tr.Now()
	//paraxlint:allow(parsafe) per-lane mutex: one worker writes, contended only by Flush between steps
	l.mu.Lock()
	if l.depth < maxOpenSpans {
		l.stack[l.depth] = openSpan{id: id, ts: ts}
		l.depth++
	} else {
		l.dropped++
	}
	l.buf[l.head&l.mask] = event{id: id, kind: evBegin, ts: ts}
	l.head++
	//paraxlint:allow(parsafe) per-lane mutex: one worker writes, contended only by Flush between steps
	l.mu.Unlock()
}

// End records the end of the innermost open span with this ID and
// returns its duration in nanoseconds (0 if the matching Begin was
// lost to stack overflow or ring reuse).
func (l *Lane) End(id SpanID) int64 {
	if l == nil {
		return 0
	}
	ts := l.tr.Now()
	var dur int64
	//paraxlint:allow(parsafe) per-lane mutex: one worker writes, contended only by Flush between steps
	l.mu.Lock()
	if l.depth > 0 && l.stack[l.depth-1].id == id {
		l.depth--
		dur = ts - l.stack[l.depth].ts
		l.tr.addTotal(id, dur)
	}
	l.buf[l.head&l.mask] = event{id: id, kind: evEnd, ts: ts}
	l.head++
	//paraxlint:allow(parsafe) per-lane mutex: one worker writes, contended only by Flush between steps
	l.mu.Unlock()
	return dur
}

// Complete records a whole span in one write: started at startNanos
// (from Tracer.Now), ending now. Safe for lanes shared across
// goroutines, where Begin/End nesting cannot be guaranteed.
//
//paraxlint:noalloc
func (l *Lane) Complete(id SpanID, startNanos int64) int64 {
	if l == nil {
		return 0
	}
	dur := l.tr.Now() - startNanos
	if dur < 0 {
		dur = 0
	}
	l.mu.Lock()
	l.buf[l.head&l.mask] = event{id: id, kind: evComplete, ts: startNanos, dur: dur}
	l.head++
	l.mu.Unlock()
	l.tr.addTotal(id, dur)
	return dur
}

// addTotal folds one finished span into the cumulative totals table.
func (t *Tracer) addTotal(id SpanID, dur int64) {
	if id < 0 || int(id) >= maxSpanTotals {
		return
	}
	tt := &t.totals[id]
	tt.count.Add(1)
	tt.ns.Add(dur)
}

// SpanTotal returns the cumulative count and summed duration (in
// nanoseconds) of finished spans with this ID across all lanes —
// End records that matched their Begin, plus Complete records. The
// totals are wall-clock aggregates for performance reporting (e.g.
// per-phase time in a benchmark run), not experiment output. Zero for
// a nil tracer or an unregistered ID.
func (t *Tracer) SpanTotal(id SpanID) (count, nanos int64) {
	if t == nil || id < 0 || int(id) >= maxSpanTotals {
		return 0, 0
	}
	tt := &t.totals[id]
	return tt.count.Load(), tt.ns.Load()
}

// Dropped reports how many Begin records overflowed the open-span
// stack, and how many ring records have been overwritten by wraparound.
func (l *Lane) Dropped() (stackDrops, ringOverwrites int64) {
	if l == nil {
		return 0, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	over := l.head - int64(len(l.buf))
	if over < 0 {
		over = 0
	}
	return l.dropped, over
}

// Publish folds the tracer's cumulative aggregates into a metrics
// registry as gauges, so trace loss and per-phase time show up in the
// same snapshot artifact CI already uploads:
//
//	trace/stack_drops          summed Begin records lost to stack overflow
//	trace/ring_overwrites      summed ring records lost to wraparound
//	trace/span/<name>/count    finished-span count for each span ID
//	trace/span/<name>/ns       summed duration for each span ID
//
// Span gauges are emitted only for spans that have actually finished at
// least once, so an idle registration adds no lines. The values are
// wall-clock aggregates — diagnostics, not experiment output — and are
// therefore NOT thread-count deterministic; Publish is an explicit cold
// path the binaries call once before writing their -metrics artifact,
// never something WriteSnapshot does implicitly. Set-last-wins gauges
// make repeated calls safe.
func (t *Tracer) Publish(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	t.mu.Lock()
	names := append([]string(nil), t.names...)
	lanes := append([]*Lane(nil), t.lanes...)
	t.mu.Unlock()

	var stackDrops, ringOverwrites int64
	for _, l := range lanes {
		sd, ro := l.Dropped()
		stackDrops += sd
		ringOverwrites += ro
	}
	reg.SetGauge(reg.Gauge("trace/stack_drops"), float64(stackDrops))
	reg.SetGauge(reg.Gauge("trace/ring_overwrites"), float64(ringOverwrites))

	for id, name := range names {
		count, ns := t.SpanTotal(SpanID(id))
		if count == 0 {
			continue
		}
		reg.SetGauge(reg.Gauge("trace/span/"+name+"/count"), float64(count))
		reg.SetGauge(reg.Gauge("trace/span/"+name+"/ns"), float64(ns))
	}
}

// snapshotEvents copies the lane's live ring contents, oldest first.
func (l *Lane) snapshotEvents() []event {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.head
	if n > int64(len(l.buf)) {
		n = int64(len(l.buf))
	}
	out := make([]event, 0, n)
	for i := l.head - n; i < l.head; i++ {
		out = append(out, l.buf[i&l.mask])
	}
	return out
}
