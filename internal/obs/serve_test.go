package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestHandlerEndpoints(t *testing.T) {
	tr := NewTracer()
	l := tr.Lane("main", 64)
	id := tr.Span("step")
	l.Begin(id)
	l.End(id)
	reg := NewRegistry()
	reg.Add(reg.Counter("engine/steps"), 3)
	s := NewSeries(64)
	ke := s.Channel("kinetic_energy")
	s.Set(ke, 42)
	s.Advance()
	h := NewHealth()

	srv := httptest.NewServer(Handler(tr, reg, s, h))
	defer srv.Close()

	code, body, ctype := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(ctype, "0.0.4") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	if err := ValidateExposition([]byte(body)); err != nil {
		t.Errorf("/metrics invalid: %v\n%s", err, body)
	}
	if !strings.Contains(body, "parallax_engine_steps_total 3") ||
		!strings.Contains(body, "parallax_series_kinetic_energy 42") {
		t.Errorf("/metrics body:\n%s", body)
	}

	code, body, _ = get(t, srv, "/health")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/health = %d %q", code, body)
	}

	code, body, _ = get(t, srv, "/trace")
	if code != http.StatusOK || !json.Valid([]byte(body)) {
		t.Fatalf("/trace = %d, valid=%v", code, json.Valid([]byte(body)))
	}

	code, body, _ = get(t, srv, "/series.json")
	if code != http.StatusOK || !json.Valid([]byte(body)) {
		t.Fatalf("/series.json = %d, valid=%v", code, json.Valid([]byte(body)))
	}

	// Trip the detector: /health flips to 503 with the cause.
	h.Update(9, Sample{Finite: false})
	code, body, _ = get(t, srv, "/health")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("tripped /health = %d, want 503", code)
	}
	if !strings.Contains(body, "nan_state") || !strings.Contains(body, "step 9") {
		t.Errorf("tripped /health body = %q", body)
	}
}

func TestHandlerNilComponents(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, nil, nil, nil))
	defer srv.Close()

	code, body, _ := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if err := ValidateExposition([]byte(body)); err != nil {
		t.Errorf("empty /metrics invalid: %v", err)
	}
	if code, _, _ := get(t, srv, "/health"); code != http.StatusOK {
		t.Fatalf("nil detector /health = %d, want 200 (nothing watching)", code)
	}
	for _, path := range []string{"/trace", "/series.json"} {
		code, body, _ := get(t, srv, path)
		if code != http.StatusOK || !json.Valid([]byte(body)) {
			t.Fatalf("%s = %d, body %q", path, code, body)
		}
	}
}
