package obs

import (
	"fmt"
	"net/http"
)

// Handler returns the live-telemetry HTTP handler the binaries mount
// behind -serve:
//
//	/metrics      Prometheus text exposition (WriteProm; deterministic)
//	/health       200 "ok" while the detector is clean, 503 with the
//	              trip cause once it latches
//	/trace        Chrome trace-event JSON of the resident tracer rings
//	/series.json  the per-step series window (WriteJSON)
//
// Every endpoint tolerates nil components — a binary can serve with
// tracing off and still answer /health. The handlers only read: the
// tracer, registry, series and detector are all safe to snapshot while
// the simulation keeps stepping.
func Handler(tr *Tracer, reg *Registry, s *Series, h *Health) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WriteProm(w, reg, s); err != nil {
			// Headers are gone; all we can do is note it for the client.
			fmt.Fprintf(w, "# write error: %v\n", err)
		}
	})
	mux.HandleFunc("/health", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		st := h.Status()
		if st.OK {
			fmt.Fprintln(w, "ok")
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "unhealthy: %s at step %d (observed %g, baseline %g)\n",
			st.Cause, st.Step, st.Observed, st.Baseline)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if tr == nil {
			fmt.Fprintln(w, `{"displayTimeUnit":"ms","traceEvents":[]}`)
			return
		}
		if err := tr.WriteTrace(w); err != nil {
			fmt.Fprintf(w, "\n// write error: %v\n", err)
		}
	})
	mux.HandleFunc("/series.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := s.WriteJSON(w); err != nil {
			fmt.Fprintf(w, "\n// write error: %v\n", err)
		}
	})
	return mux
}
