// Package kernels models the three fine-grain kernels the paper
// characterizes (section 8.1): the Narrowphase object-pair test, the
// Island Processing LCP row update, and the Cloth vertex update. Each
// kernel is generated as a synthetic instruction trace with the
// measured static size (277 / 177 / 221 unique instructions), the
// measured instruction mix (Fig 9b), and the dependency structure that
// produces the observed ILP behaviour (branchy integer code for
// Narrowphase; bursty floating-point ILP for Island and Cloth).
package kernels

import (
	"math/rand"
	"slices"

	"github.com/parallax-arch/parallax/internal/arch/cpu"
)

// Kernel identifies one fine-grain kernel.
type Kernel int

// The three FG kernels, plus the two serial-phase code models used for
// instruction-mix and CG-core IPC characterization (they are never
// farmed to FG cores).
const (
	Narrow Kernel = iota
	Island
	Cloth
	// NumKernels counts only the FG kernels.
	NumKernels
)

const (
	// Broad models the sweep-and-prune update loop.
	Broad Kernel = NumKernels + iota
	// IslandGen models the union-find island construction loop.
	IslandGen
	// NumAllKernels sizes arrays indexed by any kernel, FG or serial.
	NumAllKernels
)

var kernelNames = map[Kernel]string{
	Narrow:    "Narrowphase",
	Island:    "Island Processing",
	Cloth:     "Cloth",
	Broad:     "Broadphase",
	IslandGen: "Island Creation",
}

func (k Kernel) String() string { return kernelNames[k] }

// StaticSize returns the number of unique static instructions in the
// kernel (paper section 8.1.2 for the FG kernels; the serial-phase
// loops are modeled at comparable sizes).
func (k Kernel) StaticSize() int {
	switch k {
	case Narrow:
		return 277
	case Island:
		return 177
	case Cloth:
		return 221
	case Broad:
		return 180
	default: // IslandGen
		return 120
	}
}

// Instruction-memory requirements (section 8.1.2): with 32-bit
// instructions all three kernels fit in 2.7KB of FG-core local memory.
const (
	InstrBytes32      = 4
	AllKernelsBytes32 = (277 + 177 + 221) * InstrBytes32 // 2.7KB
)

// Per-task data movement, from the paper's sampling (section 8.1.2):
// unique bytes read and written per kernel task.
func (k Kernel) DataIn() int {
	switch k {
	case Narrow:
		return 1668
	case Island:
		return 604
	default:
		return 376
	}
}

// DataOut returns unique bytes written per task.
func (k Kernel) DataOut() int {
	switch k {
	case Narrow:
		return 100
	case Island:
		return 128
	default:
		return 308
	}
}

// site describes one static instruction slot of a kernel body.
type site struct {
	op   cpu.Op
	src1 uint16
	src2 uint16
	// branch behaviour: bias = probability taken; chaotic sites are
	// data-dependent and effectively unpredictable.
	bias float64
}

// body builds the static kernel body for k. The body length equals
// StaticSize(k); the mix and dependency shape differ per kernel.
func (k Kernel) body(r *rand.Rand) []site {
	n := k.StaticSize()
	var sites []site
	switch k {
	case Narrow:
		// Branchy integer geometry code: ~40% int alu, 8% branches,
		// ~30% loads, ~7% stores, a sprinkle of FP compares/adds. Short
		// serial dependency chains (address computation feeding loads
		// feeding compares feeding branches).
		for len(sites) < n {
			sites = append(sites,
				site{op: cpu.Load, src1: 1},
				site{op: cpu.IntALU, src1: 1},
				site{op: cpu.IntALU, src1: 1, src2: 3},
				site{op: cpu.Load, src1: 2},
				site{op: cpu.IntALU, src1: 1},
				site{op: cpu.FPCmp, src1: 2},
			)
			b := site{op: cpu.Branch, src1: 1}
			// 60% of branch sites are biased, the rest data-dependent.
			if r.Float64() < 0.6 {
				b.bias = 0.93
			} else {
				b.bias = 0.5
			}
			sites = append(sites, b)
			sites = append(sites,
				site{op: cpu.IntALU, src1: 2},
				site{op: cpu.Load, src1: 1},
				site{op: cpu.FPAdd, src1: 1},
				site{op: cpu.IntALU, src1: 4},
				site{op: cpu.Store, src1: 1},
			)
		}
	case Island:
		// The PGS row update: lanes of independent load/address/multiply
		// work (Jacobian dot products over 6-DOF bodies) followed by a
		// short serial reduction and a clamped update. The 8-wide
		// independent bursts give the high ILP ceiling the limit study
		// measures; the ~32% FP fraction matches Fig 9b.
		for len(sites) < n {
			burst := 8
			for i := 0; i < burst; i++ {
				// Each lane: load -> address update -> multiply, lanes
				// independent of each other.
				sites = append(sites, site{op: cpu.Load})
				sites = append(sites, site{op: cpu.IntALU, src1: 1})
				sites = append(sites, site{op: cpu.FPMul, src1: 2})
			}
			// Reduction: pairwise adds over the lane products.
			for i := 0; i < 4; i++ {
				sites = append(sites, site{op: cpu.FPAdd, src1: 3, src2: 6})
			}
			sites = append(sites,
				site{op: cpu.FPCmp, src1: 1},
				site{op: cpu.Branch, src1: 1, bias: 0.9}, // clamp rarely hit
				site{op: cpu.IntALU, src1: 1},
				site{op: cpu.Store, src1: 2},
				site{op: cpu.Store, src1: 3},
			)
		}
	case Cloth:
		// The Verlet vertex update: moderate FP bursts, integer mults
		// for addressing, an occasional divide/sqrt (constraint length
		// normalization), and more branches than Island (~28% FP).
		for len(sites) < n {
			burst := 6
			for i := 0; i < burst; i++ {
				sites = append(sites, site{op: cpu.Load})
				sites = append(sites, site{op: cpu.IntALU, src1: 1})
				if i%2 == 0 {
					sites = append(sites, site{op: cpu.FPAdd, src1: 2})
				} else {
					sites = append(sites, site{op: cpu.FPMul, src1: 2})
				}
			}
			sites = append(sites,
				site{op: cpu.IntMul, src1: 1},
				site{op: cpu.FPSqrt, src1: 3},
				site{op: cpu.FPDiv, src1: 1},
				site{op: cpu.FPCmp, src1: 1},
				site{op: cpu.Branch, src1: 1, bias: 0.8},
				site{op: cpu.IntALU, src1: 1},
				site{op: cpu.Branch, src1: 1, bias: 0.95},
				site{op: cpu.Load, src1: 2},
				site{op: cpu.Store, src1: 3},
				site{op: cpu.Store, src1: 4},
			)
		}
	case Broad:
		// The sweep-and-prune update: endpoint comparisons over
		// nearly-sorted data (well-predicted branches), integer index
		// arithmetic, and endpoint exchanges. Almost no floating point
		// beyond the coordinate compares.
		for len(sites) < n {
			sites = append(sites,
				site{op: cpu.Load, src1: 1},
				site{op: cpu.IntALU, src1: 1},
				site{op: cpu.FPCmp, src1: 2},
				site{op: cpu.Branch, src1: 1, bias: 0.96}, // nearly sorted
				site{op: cpu.IntALU, src1: 1},
				site{op: cpu.Load, src1: 2},
				site{op: cpu.IntALU, src1: 1},
				site{op: cpu.Branch, src1: 1, bias: 0.88},
				site{op: cpu.Store, src1: 2},
				site{op: cpu.IntALU, src1: 1},
			)
		}
	case IslandGen:
		// Union-find parent chasing: serial dependent loads with a
		// data-dependent exit branch — low ILP, memory-latency-bound,
		// which is why the phase loves a big L2 (Fig 4a).
		for len(sites) < n {
			sites = append(sites,
				site{op: cpu.Load, src1: 1},               // parent[x]
				site{op: cpu.IntALU, src1: 1},             // compare/index
				site{op: cpu.Branch, src1: 1, bias: 0.65}, // chain end?
				site{op: cpu.Load, src1: 3},               // next parent (dependent)
				site{op: cpu.IntALU, src1: 1},
				site{op: cpu.Store, src1: 2}, // path compression
			)
		}
	}
	return sites[:n]
}

// Trace generates iters iterations of kernel k as a cpu trace. Static
// PCs repeat across iterations (the code is resident in FG local
// memory), so the branch predictor trains across tasks exactly as it
// would on the real kernel; data-dependent branch outcomes vary per
// iteration.
func (k Kernel) Trace(iters int, seed int64) []cpu.Instr {
	r := rand.New(rand.NewSource(seed))
	body := k.body(rand.New(rand.NewSource(int64(k) + 1)))
	pcBase := uint32(0x1000 + int(k)*0x4000)
	out := make([]cpu.Instr, 0, iters*len(body))
	for it := 0; it < iters; it++ {
		for si, s := range body {
			ins := cpu.Instr{
				Op:   s.op,
				PC:   pcBase + uint32(si*4),
				Src1: s.src1,
				Src2: s.src2,
			}
			if s.op.IsBranch() {
				ins.Taken = r.Float64() < s.bias
			}
			out = append(out, ins)
		}
	}
	return out
}

// Mix returns the fraction of each op class in kernel k's trace,
// mirroring Fig 9b (NOPs are never generated, matching the paper's
// NOP-filtered mixes).
func (k Kernel) Mix() map[cpu.Op]float64 {
	tr := k.Trace(50, 7)
	counts := map[cpu.Op]int{}
	for _, ins := range tr {
		counts[ins.Op]++
	}
	out := make(map[cpu.Op]float64, len(counts))
	for op, c := range counts {
		out[op] = float64(c) / float64(len(tr))
	}
	return out
}

// MixSummary collapses a mix into the paper's Fig 7b/9b categories.
type MixSummary struct {
	IntALU, Branch, FPAdd, FPMul, Read, Write, Other float64
}

// Summary converts a mix map into the display categories. Ops are
// visited in sorted order so the floating-point category sums are
// rounded identically on every run (map iteration order would make the
// printed Fig 7b/9b mixes jitter in the last digit).
func Summary(mix map[cpu.Op]float64) MixSummary {
	var s MixSummary
	ops := make([]cpu.Op, 0, len(mix))
	for op := range mix {
		ops = append(ops, op)
	}
	slices.Sort(ops)
	for _, op := range ops {
		f := mix[op]
		switch op {
		case cpu.IntALU, cpu.IntMul:
			s.IntALU += f
		case cpu.Branch, cpu.Call, cpu.Ret, cpu.FPCmp:
			s.Branch += f
		case cpu.FPAdd:
			s.FPAdd += f
		case cpu.FPMul, cpu.FPDiv, cpu.FPSqrt:
			s.FPMul += f
		case cpu.Load:
			s.Read += f
		case cpu.Store:
			s.Write += f
		default:
			s.Other += f
		}
	}
	return s
}
