package kernels

import (
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// CostModel converts the engine's per-phase work counters into dynamic
// instruction counts. The per-unit costs are calibrated so that the
// suite's per-frame instruction totals land in the paper's Table 3
// range (tens to hundreds of millions of instructions per frame), with
// the fine-grain kernels' per-iteration cost anchored to their static
// sizes.
type CostModel struct {
	// Broad phase (serial).
	PerGeom        float64
	PerAABBUpdate  float64
	PerSortOp      float64
	PerOverlapTest float64
	// Narrow phase.
	PerPair     float64
	PerPrimTest float64
	PerTriTest  float64
	// Island creation (serial).
	PerBody     float64
	PerJointGen float64
	PerFindStep float64
	PerContact  float64
	// Island processing: one constraint-row relaxation.
	PerRowUpdate float64
	// Cloth.
	PerVertexUpdate     float64
	PerConstraintUpdate float64
	PerCollisionTest    float64
	PerRayCast          float64
	// Fixed per-step overhead (phase setup, task distribution).
	PerStepOverhead float64
}

// DefaultCost is the calibrated model.
var DefaultCost = CostModel{
	PerGeom:        45,
	PerAABBUpdate:  60,
	PerSortOp:      14,
	PerOverlapTest: 22,

	PerPair:     300,
	PerPrimTest: 5 * 277, // ~5 kernel iterations per primitive test
	PerTriTest:  2 * 277,

	PerBody:     40,
	PerJointGen: 30,
	PerFindStep: 12,
	PerContact:  18,

	PerRowUpdate: 420, // the 177-instr kernel plus amortized row setup and
	// force gathering, calibrated so frame totals land in Table 3's range

	PerVertexUpdate:     500, // 221-instr kernel plus per-iteration collision
	PerConstraintUpdate: 90,  // handling folded in (the paper's engine collides
	PerCollisionTest:    250, // cloth every relaxation pass; this engine once
	PerRayCast:          450, // per step, so per-unit costs absorb the delta)

	PerStepOverhead: 40000,
}

// PhaseInstr holds the dynamic instruction count of each of the five
// phases for one simulation step.
type PhaseInstr [world.NumPhases]float64

// Total returns the step's total instruction count.
func (p PhaseInstr) Total() float64 {
	t := 0.0
	for _, v := range p {
		t += v
	}
	return t
}

// Serial returns the serial phases' instructions (Broadphase + Island
// Creation).
func (p PhaseInstr) Serial() float64 {
	return p[world.PhaseBroad] + p[world.PhaseIslandGen]
}

// InstrCounts converts one step profile into per-phase instruction
// counts.
func (m *CostModel) InstrCounts(prof *world.StepProfile) PhaseInstr {
	var p PhaseInstr
	b := prof.Broad
	p[world.PhaseBroad] = float64(b.Geoms)*m.PerGeom +
		float64(b.AABBUpdates)*m.PerAABBUpdate +
		float64(b.SortOps)*m.PerSortOp +
		float64(b.OverlapTests)*m.PerOverlapTest +
		m.PerStepOverhead

	p[world.PhaseNarrow] = float64(prof.Pairs)*m.PerPair +
		float64(prof.Narrow.PrimTests)*m.PerPrimTest +
		float64(prof.Narrow.TriTests)*m.PerTriTest

	bodies := prof.BodiesIntegrated
	joints := 0
	for _, is := range prof.Islands {
		joints += is.Joints
	}
	p[world.PhaseIslandGen] = float64(bodies)*m.PerBody +
		float64(joints)*m.PerJointGen +
		float64(prof.FindSteps)*m.PerFindStep +
		float64(prof.Contacts)*m.PerContact +
		m.PerStepOverhead/2

	p[world.PhaseIslandProc] = float64(prof.Solver.RowUpdates)*m.PerRowUpdate +
		float64(bodies)*120 // integration cost per body

	c := prof.Cloth
	p[world.PhaseCloth] = float64(c.VertexUpdates)*m.PerVertexUpdate +
		float64(c.ConstraintUpdates)*m.PerConstraintUpdate +
		float64(c.CollisionTests)*m.PerCollisionTest +
		float64(c.RayCasts)*m.PerRayCast
	return p
}

// FrameInstr sums the per-phase instruction counts over a frame.
func (m *CostModel) FrameInstr(f *world.FrameProfile) PhaseInstr {
	var total PhaseInstr
	for i := range f.Steps {
		p := m.InstrCounts(&f.Steps[i])
		for ph := range total {
			total[ph] += p[ph]
		}
	}
	return total
}

// FGShare returns, per phase, the fraction of the phase's instructions
// that live in fine-grain kernels (farmable to FG cores). Serial phases
// farm nothing; the parallel phases are dominated by their kernels with
// a coarse-grain residue (task setup, data packing, small islands).
func FGShare(ph world.Phase) float64 {
	switch ph {
	case world.PhaseNarrow:
		return 0.90
	case world.PhaseIslandProc:
		return 0.85
	case world.PhaseCloth:
		return 0.88
	default:
		return 0
	}
}
