package kernels

import (
	"testing"

	"github.com/parallax-arch/parallax/internal/arch/cpu"
	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

func TestStaticSizes(t *testing.T) {
	if Narrow.StaticSize() != 277 || Island.StaticSize() != 177 || Cloth.StaticSize() != 221 {
		t.Error("static sizes must match the paper: 277/177/221")
	}
	if AllKernelsBytes32 != 2700 {
		t.Errorf("combined 32-bit instruction footprint = %d B, want 2700 (2.7KB)", AllKernelsBytes32)
	}
}

func TestTraceLengthAndPCs(t *testing.T) {
	for k := Narrow; k < NumKernels; k++ {
		tr := k.Trace(10, 1)
		if len(tr) != 10*k.StaticSize() {
			t.Errorf("%v: trace length %d, want %d", k, len(tr), 10*k.StaticSize())
		}
		// PCs repeat each iteration (static code resident in local mem).
		pcs := map[uint32]bool{}
		for _, ins := range tr {
			pcs[ins.PC] = true
		}
		if len(pcs) != k.StaticSize() {
			t.Errorf("%v: %d unique PCs, want %d", k, len(pcs), k.StaticSize())
		}
	}
}

func TestTraceDeterministic(t *testing.T) {
	a := Narrow.Trace(20, 42)
	b := Narrow.Trace(20, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace generation is not deterministic")
		}
	}
}

func TestMixesMatchCharacterization(t *testing.T) {
	// Fig 9b: int ops and reads are the top two classes for all three;
	// Narrowphase has ~8% branches and little FP; Island and Cloth are
	// FP-heavy (~30% adds+muls); Cloth uses div/sqrt, Island does not.
	nm := Summary(Narrow.Mix())
	im := Summary(Island.Mix())
	cm := Summary(Cloth.Mix())

	if fp := nm.FPAdd + nm.FPMul; fp > 0.15 {
		t.Errorf("Narrowphase FP fraction = %v, want small", fp)
	}
	if nm.IntALU < 0.25 || nm.Read < 0.15 {
		t.Errorf("Narrowphase should be int/read dominant: %+v", nm)
	}
	if fp := im.FPAdd + im.FPMul; fp < 0.25 || fp > 0.45 {
		t.Errorf("Island FP fraction = %v, want ~0.32", fp)
	}
	if fp := cm.FPAdd + cm.FPMul; fp < 0.20 || fp > 0.40 {
		t.Errorf("Cloth FP fraction = %v, want ~0.28", fp)
	}
	hasSqrt := Cloth.Mix()[cpu.FPSqrt] > 0
	if !hasSqrt {
		t.Error("Cloth must use sqrt")
	}
	if Island.Mix()[cpu.FPSqrt] > 0 || Island.Mix()[cpu.FPDiv] > 0 {
		t.Error("Island kernel should not use div/sqrt")
	}
}

func TestKernelIPCOrdering(t *testing.T) {
	// Fig 10a's shape:
	//  - Island and Cloth IPC drop drastically from desktop to console
	//    (bursty ILP needs window capacity);
	//  - the limit core extracts >4 IPC from Island and ~1.5 from Cloth;
	//  - Narrowphase does NOT improve on the limit core (branch bound).
	ipc := func(cfg cpu.Config, k Kernel) float64 {
		return cpu.New(cfg).Run(k.Trace(400, 3)).IPC()
	}
	iDesk, iCons := ipc(cpu.Desktop, Island), ipc(cpu.Console, Island)
	if iDesk < iCons*1.3 {
		t.Errorf("Island IPC should drop desktop->console: %v vs %v", iDesk, iCons)
	}
	cDesk, cCons := ipc(cpu.Desktop, Cloth), ipc(cpu.Console, Cloth)
	if cDesk < cCons*1.2 {
		t.Errorf("Cloth IPC should drop desktop->console: %v vs %v", cDesk, cCons)
	}
	if iLim := ipc(cpu.Limit, Island); iLim < 3.5 {
		t.Errorf("limit-core Island IPC = %v, want > ~4", iLim)
	}
	nDesk, nLim := ipc(cpu.Desktop, Narrow), ipc(cpu.Limit, Narrow)
	if nLim > nDesk*1.25 {
		t.Errorf("Narrowphase should not scale to the limit core: %v vs %v", nLim, nDesk)
	}
	// All shader IPCs are below desktop.
	for k := Narrow; k < NumKernels; k++ {
		if s, d := ipc(cpu.Shader, k), ipc(cpu.Desktop, k); s >= d {
			t.Errorf("%v: shader IPC %v >= desktop %v", k, s, d)
		}
	}
}

func TestPerfectBPHelpsNarrowphase(t *testing.T) {
	// Paper: ideal branch prediction improved Narrowphase by ~30%.
	tr := Narrow.Trace(400, 3)
	real := cpu.New(cpu.Desktop).Run(tr).IPC()
	ideal := cpu.New(cpu.Desktop)
	ideal.PerfectBP = true
	iIPC := ideal.Run(tr).IPC()
	gain := iIPC / real
	if gain < 1.10 || gain > 1.9 {
		t.Errorf("ideal BP gain on Narrowphase = %vx, want roughly 1.3x", gain)
	}
}

func TestDataFootprints(t *testing.T) {
	if Narrow.DataIn() != 1668 || Island.DataIn() != 604 || Cloth.DataIn() != 376 {
		t.Error("data-in footprints must match the paper")
	}
	if Narrow.DataOut() != 100 || Island.DataOut() != 128 || Cloth.DataOut() != 308 {
		t.Error("data-out footprints must match the paper")
	}
}

func TestInstrCountsFromProfile(t *testing.T) {
	// A small real scene provides profiles with the right proportions:
	// a cloth-free scene has zero cloth instructions, etc.
	w := world.New()
	w.AddStatic(geom.Plane{Normal: m3.V(0, 1, 0)}, m3.Zero, m3.QIdent)
	for i := 0; i < 10; i++ {
		w.AddBody(geom.Sphere{R: 0.5}, 1, m3.V(float64(i)*0.9, 0.45, 0), m3.QIdent, 0, 0)
	}
	w.Step()
	p := DefaultCost.InstrCounts(&w.Profile)
	if p[world.PhaseCloth] != 0 {
		t.Errorf("cloth instructions in cloth-free scene: %v", p[world.PhaseCloth])
	}
	for _, ph := range []world.Phase{world.PhaseBroad, world.PhaseNarrow, world.PhaseIslandGen, world.PhaseIslandProc} {
		if p[ph] <= 0 {
			t.Errorf("phase %v has no instructions", ph)
		}
	}
	if p.Total() < p.Serial() {
		t.Error("totals inconsistent")
	}
}

func TestFGShare(t *testing.T) {
	if FGShare(world.PhaseBroad) != 0 || FGShare(world.PhaseIslandGen) != 0 {
		t.Error("serial phases must farm nothing to FG cores")
	}
	for _, ph := range []world.Phase{world.PhaseNarrow, world.PhaseIslandProc, world.PhaseCloth} {
		if s := FGShare(ph); s <= 0.5 || s > 1 {
			t.Errorf("phase %v FG share = %v", ph, s)
		}
	}
}
