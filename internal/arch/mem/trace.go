package mem

import (
	"github.com/parallax-arch/parallax/internal/phys/joint"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// This file synthesizes per-phase memory reference streams from a
// recorded step profile (World.RecordDetail must have been set when the
// step ran). The streams visit the actual entities the engine touched,
// at 64-byte block granularity, in the order the phase algorithms visit
// them — so cache behaviour (working sets, eviction between phases,
// thread thrashing) emerges from real workload structure.

// BroadphaseTrace emits the broad-phase reference stream: the sweep
// structure update (endpoints of every enabled geom, read-modify-write),
// the sort pass, and the pair output writes.
func (l *Layout) BroadphaseTrace(w *world.World, prof *world.StepProfile, s Stream) {
	// AABB refresh: read every geom's shape state, write its box.
	for gi, g := range w.Geoms {
		if !g.Enabled() {
			continue
		}
		touch(s, l.GeomAddr[gi], GeomBytes, true)
	}
	// Endpoint array sweep: one pass reading, plus sort work touching
	// endpoints proportional to the measured sort ops.
	n := prof.Broad.Geoms
	touch(s, l.SweepBase, n*EndpointBytes, false)
	sortTouches := prof.Broad.SortOps
	for i := 0; i < sortTouches; i++ {
		// Sort exchanges exhibit locality: consecutive endpoints.
		a := l.SweepBase + uint64((i*2)%maxInt(n*EndpointBytes, 1))
		s(a&^63, true)
	}
	// Pair output writes.
	touch(s, l.PairBase, len(prof.PairList)*PairBytes, true)
}

// NarrowphaseTrace emits the narrow-phase stream: for every candidate
// pair, read both geoms (shape data) and their bodies (poses), and write
// the produced contacts.
func (l *Layout) NarrowphaseTrace(w *world.World, prof *world.StepProfile, s Stream) {
	for _, pr := range prof.PairList {
		l.GeomFootprint(w, pr.A, s, false)
		l.GeomFootprint(w, pr.B, s, false)
	}
	touch(s, l.ContactBase, len(prof.ContactGeoms)*ContactBytes, true)
}

// IslandCreationTrace emits the island-creation stream: a serial sweep
// over all bodies and joints, union-find parent-chain walks, and contact
// endpoint reads (paper: "Island Creation uses object and joint data to
// create islands").
func (l *Layout) IslandCreationTrace(w *world.World, prof *world.StepProfile, s Stream) {
	for bi, b := range w.Bodies {
		if !b.Enabled {
			continue
		}
		touch(s, l.BodyAddr[bi], BodyBytes, false)
	}
	for ji := range w.Joints {
		touch(s, l.JointAddr[ji], l.JointSize[ji], false)
	}
	for _, cg := range prof.ContactGeoms {
		touch(s, l.GeomAddr[cg[0]], 64, false)
		touch(s, l.GeomAddr[cg[1]], 64, false)
	}
	// DSU walks: measured parent-chain steps, plus one write per body.
	n := len(w.Bodies)
	for i := 0; i < prof.FindSteps; i++ {
		a := l.DSUBase + uint64((i*7)%maxInt(n*DSUBytes, 1))
		s(a&^63, false)
	}
	touch(s, l.DSUBase, n*DSUBytes, true)
}

// IslandSweepSteady emits the per-iteration working set of island
// processing: the bodies' velocity state, which every relaxation sweep
// reads and writes. The constraint rows themselves are built once per
// step and streamed (IslandSweep); the solver's iterations hit the
// row data via the bodies, which is why Island Processing is "relatively
// insensitive to L2 cache scaling" (paper Fig 4b).
func (l *Layout) IslandSweepSteady(w *world.World, prof *world.StepProfile, s Stream) {
	for i := range prof.IslandBodies {
		for _, bi := range prof.IslandBodies[i] {
			touch(s, l.BodyAddr[bi], BodyBytes, true)
		}
	}
}

// IslandSweep emits the row-construction pass of island processing: for
// each island, each constraint row is built and written once and its
// two bodies' velocities are updated. Callers model the solver's
// iterations as one IslandSweep (cold) plus iters-1 IslandSweepSteady
// passes.
func (l *Layout) IslandSweep(w *world.World, prof *world.StepProfile, s Stream) {
	rowAddr := l.RowBase
	for i := range prof.IslandBodies {
		// Rows from the island's joints...
		for _, ji := range prof.IslandRowsOf[i] {
			nr := w.Joints[ji].NumRows()
			touch(s, l.JointAddr[ji], l.JointSize[ji], false)
			for r := 0; r < nr; r++ {
				touch(s, rowAddr, RowBytes, true)
				rowAddr += RowBytes
			}
		}
		// ...and the island's bodies are updated repeatedly.
		for _, bi := range prof.IslandBodies[i] {
			touch(s, l.BodyAddr[bi], BodyBytes, true)
		}
	}
	// Contact rows live in the per-step row arena.
	touch(s, rowAddr, len(prof.ContactGeoms)*joint.RowsPerContact*RowBytes, true)
}

// ClothSweep emits one relaxation sweep of the cloth phase: every
// particle of every cloth is read and written.
func (l *Layout) ClothSweep(w *world.World, prof *world.StepProfile, s Stream) {
	for ci := range l.ClothBase {
		touch(s, l.ClothBase[ci], l.ClothVerts[ci]*ParticleBytes, true)
	}
}

// SweepAndScale runs fn once cold and once steady against the given
// snapshotting sink, returning (coldMisses, steadyMisses). The caller
// models iters sweeps as cold + (iters-1) x steady. This sampling keeps
// trace-driven simulation tractable while preserving the hot-loop cache
// behaviour (a sweep either fits — steady misses ~0 — or thrashes —
// steady misses ~cold misses).
func SweepAndScale(fn func(Stream), sink Stream, missCount func() uint64) (cold, steady uint64) {
	m0 := missCount()
	fn(sink)
	m1 := missCount()
	fn(sink)
	m2 := missCount()
	return m1 - m0, m2 - m1
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
