package mem

import (
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/cloth"
	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/joint"
	"github.com/parallax-arch/parallax/internal/phys/m3"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

func sampleWorld() *world.World {
	w := world.New()
	w.AddStatic(geom.Plane{Normal: m3.V(0, 1, 0)}, m3.Zero, m3.QIdent)
	var prev int32 = -1
	for i := 0; i < 8; i++ {
		bi, _ := w.AddBody(geom.Box{Half: m3.V(0.4, 0.4, 0.4)}, 1,
			m3.V(float64(i)*0.85, 0.4, 0), m3.QIdent, 0, 0)
		if prev >= 0 {
			w.AddJoint(joint.NewBall(w.Bodies, prev, bi, m3.V(float64(i)*0.85-0.42, 0.4, 0)))
		}
		prev = bi
	}
	w.AddCloth(cloth.NewGrid(5, 5, 0.1, m3.V(0, 2, 0), 0.5))
	return w
}

func TestLayoutAddressesDisjointAndOrdered(t *testing.T) {
	w := sampleWorld()
	l := NewLayout(w)
	if len(l.BodyAddr) != len(w.Bodies) || len(l.GeomAddr) != len(w.Geoms) {
		t.Fatal("layout entity counts wrong")
	}
	for i := 1; i < len(l.BodyAddr); i++ {
		if l.BodyAddr[i] != l.BodyAddr[i-1]+BodyBytes {
			t.Fatalf("bodies not allocated contiguously at %d", i)
		}
	}
	// Region bases keep classes apart.
	if l.BodyAddr[len(l.BodyAddr)-1]+BodyBytes > l.GeomAddr[0] {
		t.Error("body region overlaps geom region")
	}
	for i := 1; i < len(l.JointAddr); i++ {
		if l.JointAddr[i] != l.JointAddr[i-1]+uint64(l.JointSize[i-1]) {
			t.Fatalf("joints not packed at %d", i)
		}
	}
	if len(l.ClothBase) != 1 || l.ClothVerts[0] != 25 {
		t.Errorf("cloth layout: %v %v", l.ClothBase, l.ClothVerts)
	}
}

func TestJointBytesWithinPaperRange(t *testing.T) {
	bs := sampleWorld().Bodies
	js := []joint.Joint{
		joint.NewBall(bs, 0, 1, m3.Zero),
		joint.NewHinge(bs, 0, 1, m3.Zero, m3.V(0, 0, 1)),
		joint.NewSlider(bs, 0, 1, m3.Zero, m3.V(1, 0, 0)),
		joint.NewFixed(bs, 0, 1, m3.Zero),
	}
	for _, j := range js {
		sz := JointBytes(j)
		if sz < JointMinBytes || sz > JointMaxBytes {
			t.Errorf("%T footprint %d outside paper range [%d, %d]",
				j, sz, JointMinBytes, JointMaxBytes)
		}
	}
	// Breakable adds bookkeeping on top of the wrapped joint.
	br := joint.NewBreakable(joint.NewBall(bs, 0, 1, m3.Zero), 1, 0)
	if JointBytes(br) <= JointBytes(joint.NewBall(bs, 0, 1, m3.Zero)) {
		t.Error("breakable wrapper should cost more than its inner joint")
	}
}

func TestThreadBasesDisjoint(t *testing.T) {
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			if ThreadBase(a) == ThreadBase(b) {
				t.Fatalf("threads %d and %d share a base", a, b)
			}
		}
	}
	w := sampleWorld()
	l := NewLayout(w)
	// Thread regions sit above all entity regions.
	top := l.ClothBase[0] + uint64(l.ClothVerts[0]*ParticleBytes)
	if ThreadBase(0) <= top {
		t.Error("thread regions overlap entity heap")
	}
}

// captureRefs runs a trace generator and collects the emitted refs.
func captureRefs(emit func(Stream)) []Ref {
	var out []Ref
	emit(func(addr uint64, write bool) {
		out = append(out, Ref{Addr: addr, Write: write})
	})
	return out
}

func recordedWorld(t *testing.T) (*world.World, *world.StepProfile, *Layout) {
	t.Helper()
	w := sampleWorld()
	w.RecordDetail = true
	for i := 0; i < 5; i++ {
		w.Step()
	}
	prof := w.Profile
	return w, &prof, NewLayout(w)
}

func TestBroadphaseTraceTouchesGeoms(t *testing.T) {
	w, prof, l := recordedWorld(t)
	refs := captureRefs(func(s Stream) { l.BroadphaseTrace(w, prof, s) })
	if len(refs) == 0 {
		t.Fatal("empty broadphase trace")
	}
	// Every enabled geom's record must be touched, with writes (AABB
	// refresh).
	seen := map[uint64]bool{}
	writes := 0
	for _, r := range refs {
		seen[r.Addr&^63] = true
		if r.Write {
			writes++
		}
	}
	for gi, g := range w.Geoms {
		if !g.Enabled() {
			continue
		}
		if !seen[l.GeomAddr[gi]&^63] {
			t.Errorf("geom %d untouched by broadphase trace", gi)
		}
	}
	if writes == 0 {
		t.Error("broadphase trace has no writes")
	}
}

func TestNarrowphaseTraceFollowsPairs(t *testing.T) {
	w, prof, l := recordedWorld(t)
	if len(prof.PairList) == 0 {
		t.Skip("no pairs this step")
	}
	refs := captureRefs(func(s Stream) { l.NarrowphaseTrace(w, prof, s) })
	seen := map[uint64]bool{}
	for _, r := range refs {
		seen[r.Addr&^63] = true
	}
	for _, pr := range prof.PairList {
		if !seen[l.GeomAddr[pr.A]&^63] || !seen[l.GeomAddr[pr.B]&^63] {
			t.Fatalf("pair (%d,%d) geoms untouched", pr.A, pr.B)
		}
	}
}

func TestIslandSweepCoversRowsAndBodies(t *testing.T) {
	w, prof, l := recordedWorld(t)
	refs := captureRefs(func(s Stream) { l.IslandSweep(w, prof, s) })
	steady := captureRefs(func(s Stream) { l.IslandSweepSteady(w, prof, s) })
	if len(refs) == 0 || len(steady) == 0 {
		t.Fatal("empty island traces")
	}
	// The steady sweep is a strict subset in volume: bodies only.
	if len(steady) >= len(refs) {
		t.Errorf("steady sweep (%d refs) should be smaller than cold (%d)",
			len(steady), len(refs))
	}
	// Steady refs are all within the body region.
	for _, r := range steady {
		if r.Addr < l.BodyAddr[0] || r.Addr >= l.GeomAddr[0] {
			t.Fatalf("steady sweep touched non-body address %#x", r.Addr)
		}
	}
}

func TestClothSweep(t *testing.T) {
	w, prof, l := recordedWorld(t)
	refs := captureRefs(func(s Stream) { l.ClothSweep(w, prof, s) })
	want := (25*ParticleBytes + 63) / 64
	if len(refs) < want {
		t.Errorf("cloth sweep %d refs, want >= %d", len(refs), want)
	}
}

func TestSizeOfWorld(t *testing.T) {
	w := sampleWorld()
	l := NewLayout(w)
	sz := l.SizeOfWorld()
	min := len(w.Bodies)*BodyBytes + len(w.Geoms)*GeomBytes
	if sz < min {
		t.Errorf("SizeOfWorld = %d, want >= %d", sz, min)
	}
}
