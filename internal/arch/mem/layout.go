// Package mem models the engine's memory layout for the architecture
// simulator: every world entity gets a deterministic simulated address
// using the paper's measured footprints ("The memory required per object
// and geom is 412B and 116B respectively. The memory required per joint
// varies between 148B to 392B depending on the type"), and reference
// streams over those addresses are synthesized per phase from the
// engine's recorded step profiles.
package mem

import (
	"github.com/parallax-arch/parallax/internal/phys/joint"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// Structure footprints in bytes (paper section 6.1 and 8.3).
const (
	BodyBytes     = 412 // rigid body ("object")
	GeomBytes     = 116 // collision shape state
	JointMinBytes = 148 // simplest joint (ball)
	JointMaxBytes = 392 // most complex joint (contact group/hinge2)
	ContactBytes  = 240 // contact joint + manifold entry
	RowBytes      = 160 // one solver constraint row
	ParticleBytes = 40  // cloth vertex: pos, prev, invmass (sec 8.3: 12B positions communicated)
	PairBytes     = 8   // broad-phase pair entry
	DSUBytes      = 8   // union-find parent+rank entry
	EndpointBytes = 16  // sweep-and-prune endpoint entry
)

// JointBytes returns the footprint of a joint by type, within the
// paper's 148-392B range.
func JointBytes(j joint.Joint) int {
	switch jj := j.(type) {
	case *joint.Breakable:
		return JointBytes(jj.Joint) + 32
	case *joint.Ball:
		return 148
	case *joint.Hinge:
		return 220
	case *joint.Slider:
		return 260
	case *joint.Fixed:
		return 392
	default:
		return 200
	}
}

// Region bases keep the heaps of different structure classes apart, as
// separate mallocs would.
const (
	baseBodies    = 0x0000_0000_1000_0000
	baseGeoms     = 0x0000_0000_3000_0000
	baseJoints    = 0x0000_0000_5000_0000
	baseParticles = 0x0000_0000_7000_0000
	basePairs     = 0x0000_0000_9000_0000
	baseContacts  = 0x0000_0000_A000_0000
	baseRows      = 0x0000_0000_B000_0000
	baseDSU       = 0x0000_0000_C000_0000
	baseSweep     = 0x0000_0000_D000_0000
	baseThreads   = 0x0000_0001_0000_0000
)

// Layout assigns simulated addresses to a world's entities in creation
// order (mirroring real allocation order, which gives the same spatial
// locality a real engine heap would have).
type Layout struct {
	BodyAddr  []uint64
	GeomAddr  []uint64
	JointAddr []uint64
	JointSize []int
	// ClothBase[i] is the base address of cloth i's particle array.
	ClothBase  []uint64
	ClothVerts []int
	// Per-step scratch regions.
	PairBase    uint64
	ContactBase uint64
	RowBase     uint64
	DSUBase     uint64
	SweepBase   uint64
	// ThreadBase(t) regions model per-worker OS/heap state.
}

// NewLayout builds the address map for a world.
func NewLayout(w *world.World) *Layout {
	l := &Layout{
		PairBase:    basePairs,
		ContactBase: baseContacts,
		RowBase:     baseRows,
		DSUBase:     baseDSU,
		SweepBase:   baseSweep,
	}
	addr := uint64(baseBodies)
	for range w.Bodies {
		l.BodyAddr = append(l.BodyAddr, addr)
		addr += BodyBytes
	}
	addr = baseGeoms
	for range w.Geoms {
		l.GeomAddr = append(l.GeomAddr, addr)
		addr += GeomBytes
	}
	addr = baseJoints
	for _, j := range w.Joints {
		sz := JointBytes(j)
		l.JointAddr = append(l.JointAddr, addr)
		l.JointSize = append(l.JointSize, sz)
		addr += uint64(sz)
	}
	addr = baseParticles
	for _, c := range w.Cloths {
		l.ClothBase = append(l.ClothBase, addr)
		l.ClothVerts = append(l.ClothVerts, c.NumVertices())
		addr += uint64(c.NumVertices() * ParticleBytes)
	}
	return l
}

// ThreadBase returns the base address of worker thread t's private
// region (stack, allocator arenas, kernel bookkeeping).
func ThreadBase(t int) uint64 {
	return baseThreads + uint64(t)*0x0100_0000
}

// Ref is one memory reference: a simulated address plus intent.
type Ref struct {
	Addr  uint64
	Write bool
}

// Stream receives memory references in program order. Implementations
// are typically cache models.
type Stream func(addr uint64, write bool)

// touch emits refs covering [base, base+size) at block granularity.
func touch(s Stream, base uint64, size int, write bool) {
	const block = 64
	end := base + uint64(size)
	for a := base &^ (block - 1); a < end; a += block {
		s(a, write)
	}
}

// GeomFootprint emits the references for reading one geom and (if
// dynamic) its body.
func (l *Layout) GeomFootprint(w *world.World, gi int32, s Stream, write bool) {
	touch(s, l.GeomAddr[gi], GeomBytes, write)
	if b := w.Geoms[gi].Body; b >= 0 {
		touch(s, l.BodyAddr[b], BodyBytes, false)
	}
}

// SizeOfWorld returns the total resident bytes of the world's persistent
// structures — the theoretical working set.
func (l *Layout) SizeOfWorld() int {
	total := len(l.BodyAddr)*BodyBytes + len(l.GeomAddr)*GeomBytes
	for _, s := range l.JointSize {
		total += s
	}
	for _, v := range l.ClothVerts {
		total += v * ParticleBytes
	}
	return total
}
