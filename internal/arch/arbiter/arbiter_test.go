package arbiter

import (
	"math/rand"
	"testing"
)

// balancedLoad gives each CG core the same tasks.
func balancedLoad(nCG, tasksPer int, dur float64) [][]Task {
	qs := make([][]Task, nCG)
	for cg := range qs {
		for i := 0; i < tasksPer; i++ {
			qs[cg] = append(qs[cg], Task{CG: cg, Compute: dur})
		}
	}
	return qs
}

// skewedLoad puts nearly all work on CG core 0 (the one-big-island
// scenario that motivates dynamic arbitration).
func skewedLoad(nCG, big, small int, dur float64) [][]Task {
	qs := make([][]Task, nCG)
	for i := 0; i < big; i++ {
		qs[0] = append(qs[0], Task{CG: 0, Compute: dur})
	}
	for cg := 1; cg < nCG; cg++ {
		for i := 0; i < small; i++ {
			qs[cg] = append(qs[cg], Task{CG: cg, Compute: dur})
		}
	}
	return qs
}

func TestBalancedLoadEquivalent(t *testing.T) {
	qs := balancedLoad(4, 100, 1e-6)
	d := Simulate(Dynamic, 4, 16, qs)
	s := Simulate(Static, 4, 16, qs)
	if d.Makespan > s.Makespan*1.01 {
		t.Errorf("dynamic (%v) should not lose to static (%v) on balanced load",
			d.Makespan, s.Makespan)
	}
	// Balanced load: hierarchical priorities keep locality high.
	if d.LocalityFraction < 0.9 {
		t.Errorf("dynamic locality on balanced load = %v, want >= 0.9", d.LocalityFraction)
	}
	if d.TasksRun != 400 || s.TasksRun != 400 {
		t.Errorf("tasks run %d/%d, want 400", d.TasksRun, s.TasksRun)
	}
}

func TestSkewedLoadDynamicWins(t *testing.T) {
	qs := skewedLoad(4, 400, 10, 1e-6)
	d := Simulate(Dynamic, 4, 16, qs)
	s := Simulate(Static, 4, 16, qs)
	// Static: 400 tasks on 4 cores = 100e-6. Dynamic: 430 tasks on 16
	// cores ~ 27e-6.
	if d.Makespan >= s.Makespan*0.5 {
		t.Errorf("dynamic makespan %v should be far below static %v", d.Makespan, s.Makespan)
	}
	if d.Utilization < 0.8 {
		t.Errorf("dynamic utilization on skewed load = %v", d.Utilization)
	}
	if s.Utilization > 0.5 {
		t.Errorf("static utilization on skewed load = %v, expected poor", s.Utilization)
	}
}

func TestStaticNeedsMoreCoresForDeadline(t *testing.T) {
	// Paper section 8.2.1: statically mapping shaders to particular CG
	// cores requires ~34% more area (more cores) to meet the deadline.
	qs := skewedLoad(4, 300, 100, 1e-6)
	total := 0.0
	for _, q := range qs {
		for _, task := range q {
			total += task.Compute
		}
	}
	deadline := total / 16 * 1.15 // slightly above the 16-core ideal
	nd := CoresForDeadline(Dynamic, 4, qs, deadline, 256)
	ns := CoresForDeadline(Static, 4, qs, deadline, 256)
	if ns <= nd {
		t.Fatalf("static cores (%d) should exceed dynamic cores (%d)", ns, nd)
	}
	ratio := float64(ns) / float64(nd)
	if ratio < 1.15 || ratio > 3.0 {
		t.Errorf("static/dynamic core ratio = %v, want in [1.15, 3]", ratio)
	}
}

func TestWorkConservation(t *testing.T) {
	// Property: makespan >= total work / cores, and >= the largest
	// single queue's work / its group size (for static).
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		nCG := 1 + r.Intn(4)
		nFG := nCG * (1 + r.Intn(8))
		qs := make([][]Task, nCG)
		total := 0.0
		for cg := range qs {
			n := r.Intn(50)
			for i := 0; i < n; i++ {
				d := r.Float64() * 1e-5
				qs[cg] = append(qs[cg], Task{CG: cg, Compute: d})
				total += d
			}
		}
		for _, pol := range []Policy{Dynamic, Static} {
			res := Simulate(pol, nCG, nFG, qs)
			lower := total / float64(nFG)
			if res.Makespan < lower-1e-12 {
				t.Fatalf("policy %v: makespan %v below work bound %v", pol, res.Makespan, lower)
			}
			if res.Utilization < 0 || res.Utilization > 1+1e-9 {
				t.Fatalf("utilization out of range: %v", res.Utilization)
			}
		}
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if res := Simulate(Dynamic, 0, 4, nil); res.TasksRun != 0 {
		t.Error("degenerate nCG should run nothing")
	}
	if res := Simulate(Dynamic, 4, 16, nil); res.TasksRun != 0 || res.Makespan != 0 {
		t.Error("empty queues should be a no-op")
	}
	// One CG core with one FG core still works.
	res := Simulate(Static, 1, 1, [][]Task{{{CG: 0, Compute: 1}}})
	if res.Makespan != 1 || res.TasksRun != 1 {
		t.Errorf("single task result = %+v", res)
	}
}
