// Package arbiter implements the ParallAX fine-grain core scheduling
// policies (paper section 7.1): the proposed hierarchical arbitration —
// FG cores are logically divided evenly among the CG cores, each set
// controlled by an arbiter with a unique CG priority rotation, so that
// balanced load keeps locality and one overloaded CG core can steal the
// whole pool — and the static CG-to-FG mapping baseline it is compared
// against.
package arbiter

import "container/heap"

// Task is one fine-grain work unit submitted by a CG core.
type Task struct {
	// CG is the submitting coarse-grain core.
	CG int
	// Compute is the task's FG execution time in seconds.
	Compute float64
}

// Policy selects the scheduling algorithm.
type Policy int

// The two policies compared in section 8.2.1.
const (
	// Dynamic is the hierarchical arbitration: any CG core can use any
	// FG core, with per-arbiter priority rotations preserving locality
	// under balanced load.
	Dynamic Policy = iota
	// Static binds each FG group to one CG core.
	Static
)

// Result reports one scheduling simulation.
type Result struct {
	// Makespan is the time until the last task completes.
	Makespan float64
	// Utilization is total task time / (cores x makespan).
	Utilization float64
	// LocalityFraction is the fraction of tasks that ran on an FG core
	// in their submitter's home group.
	LocalityFraction float64
	TasksRun         int
	// QueueDepthSum accumulates, over scheduling decisions, the number
	// of tasks still waiting in the deciding arbiter's visible queues at
	// the moment a core was assigned work (including the task being
	// scheduled); MaxQueueDepth is the deepest such backlog. Static
	// arbiters see only their own group's queue; a dynamic arbiter scans
	// every CG queue. Both are exact integers, so the observability
	// layer can aggregate them deterministically.
	QueueDepthSum int64
	MaxQueueDepth int
}

// coreHeap orders FG cores by availability time.
type coreItem struct {
	id   int
	free float64
}
type coreHeap []coreItem

func (h coreHeap) Len() int            { return len(h) }
func (h coreHeap) Less(i, j int) bool  { return h[i].free < h[j].free }
func (h coreHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *coreHeap) Push(x interface{}) { *h = append(*h, x.(coreItem)) }
func (h *coreHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Simulate schedules the per-CG task queues onto nFG cores grouped
// evenly among nCG arbiters under the given policy. Queues are consumed
// in order (tasks of one CG core arrive in submission order).
func Simulate(policy Policy, nCG, nFG int, queues [][]Task) Result {
	if nCG < 1 || nFG < 1 {
		return Result{}
	}
	if policy == Static {
		return simulateStatic(nCG, nFG, queues)
	}
	return simulateDynamic(nCG, nFG, queues)
}

// simulateStatic runs each group's queue on its own cores; groups do
// not interact, so each is a simple FCFS pool.
func simulateStatic(nCG, nFG int, queues [][]Task) Result {
	groupSize := func(g int) int {
		// Cores are split as evenly as possible.
		base := nFG / nCG
		if g < nFG%nCG {
			return base + 1
		}
		return base
	}
	var res Result
	var totalWork float64
	for g := 0; g < nCG; g++ {
		cores := groupSize(g)
		if cores == 0 || g >= len(queues) {
			continue
		}
		h := make(coreHeap, cores)
		heap.Init(&h)
		for ti, t := range queues[g] {
			depth := len(queues[g]) - ti
			res.QueueDepthSum += int64(depth)
			if depth > res.MaxQueueDepth {
				res.MaxQueueDepth = depth
			}
			it := heap.Pop(&h).(coreItem)
			it.free += t.Compute
			totalWork += t.Compute
			if it.free > res.Makespan {
				res.Makespan = it.free
			}
			heap.Push(&h, it)
			res.TasksRun++
		}
	}
	if res.Makespan > 0 {
		res.Utilization = totalWork / (float64(nFG) * res.Makespan)
	}
	res.LocalityFraction = 1 // static tasks always run in their home group
	return res
}

// simulateDynamic implements the hierarchical arbitration: the earliest
// free core's arbiter scans CG queues in its priority rotation.
func simulateDynamic(nCG, nFG int, queues [][]Task) Result {
	heads := make([]int, nCG)
	groupOf := func(core int) int { return core * nCG / nFG }

	h := make(coreHeap, nFG)
	for i := range h {
		h[i] = coreItem{id: i}
	}
	heap.Init(&h)

	remaining := 0
	for _, q := range queues {
		remaining += len(q)
	}

	var totalWork, makespan float64
	local, run := 0, 0
	var res Result
	for {
		pickable := false
		for cg := 0; cg < nCG && !pickable; cg++ {
			if cg < len(queues) && heads[cg] < len(queues[cg]) {
				pickable = true
			}
		}
		if !pickable {
			break
		}
		res.QueueDepthSum += int64(remaining)
		if remaining > res.MaxQueueDepth {
			res.MaxQueueDepth = remaining
		}
		remaining--
		it := heap.Pop(&h).(coreItem)
		grp := groupOf(it.id)
		pick := -1
		for k := 0; k < nCG; k++ {
			cg := (grp + k) % nCG
			if cg < len(queues) && heads[cg] < len(queues[cg]) {
				pick = cg
				break
			}
		}
		t := queues[pick][heads[pick]]
		heads[pick]++
		if pick == grp {
			local++
		}
		run++
		totalWork += t.Compute
		it.free += t.Compute
		if it.free > makespan {
			makespan = it.free
		}
		heap.Push(&h, it)
	}

	res.Makespan, res.TasksRun = makespan, run
	if makespan > 0 {
		res.Utilization = totalWork / (float64(nFG) * makespan)
	}
	if run > 0 {
		res.LocalityFraction = float64(local) / float64(run)
	}
	return res
}

// CoresForDeadline returns the minimum FG pool size (a multiple of nCG)
// that completes the workload within the deadline under the policy,
// searching up to maxCores.
func CoresForDeadline(policy Policy, nCG int, queues [][]Task, deadline float64, maxCores int) int {
	for n := nCG; n <= maxCores; n += nCG {
		if Simulate(policy, nCG, n, queues).Makespan <= deadline {
			return n
		}
	}
	return maxCores
}
