// Package cpu implements the trace-driven out-of-order core timing
// model used for the fine-grain core design-space exploration (paper
// Table 6): a parameterized fetch/issue/retire pipeline with an
// instruction window, reorder buffer, functional-unit constraints, a
// YAGS branch predictor with a return-address stack, and a mispredict
// recovery penalty that grows with speculation depth.
package cpu

import (
	"github.com/parallax-arch/parallax/internal/arch/bpred"
)

// Op classifies instructions, mirroring the paper's instruction-mix
// categories (Figs 7b, 9b): int alu, branch, float add, float mult,
// read port, write port, other.
type Op uint8

// Instruction classes.
const (
	IntALU Op = iota
	IntMul
	Branch
	Call
	Ret
	FPAdd
	FPMul
	FPDiv
	FPSqrt
	FPCmp
	Load
	Store
	NumOps
)

var opNames = [...]string{
	"int alu", "int mul", "branch", "call", "ret",
	"float add", "float mult", "float div", "float sqrt", "float cmp",
	"rd port", "wr port",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "other"
}

// IsFP reports whether the op uses a floating-point unit.
func (o Op) IsFP() bool { return o >= FPAdd && o <= FPCmp }

// IsMem reports whether the op uses a load/store port.
func (o Op) IsMem() bool { return o == Load || o == Store }

// IsBranch covers all control-flow ops.
func (o Op) IsBranch() bool { return o == Branch || o == Call || o == Ret }

// Instr is one trace instruction. Src1/Src2 are producer distances: the
// instruction depends on the instructions Src1 and Src2 positions
// earlier in the trace (0 = no dependency).
type Instr struct {
	Op    Op
	PC    uint32
	Src1  uint16
	Src2  uint16
	Taken bool
}

// Config is a core configuration (Tables 5 and 6).
type Config struct {
	Name string
	// Width is the fetch/issue/commit width.
	Width int
	// Window is the scheduler (instruction window) size.
	Window int
	// ROB is the reorder buffer size.
	ROB int
	// Depth is the pipeline depth: the mispredict redirect penalty.
	Depth int
	// PredKB sizes the YAGS predictor; RAS is the return stack depth.
	PredKB int
	RAS    int
	// Functional units.
	IntUnits, FPUnits, MemUnits int
	// LoadLat is the load-to-use latency: 2 for the CG cores' L1, 1 for
	// FG cores whose requests "always hit in single-cycle local memory".
	LoadLat int
	// ExtraLat is added to every op's latency, modeling cores without a
	// full forwarding network (results visible only after writeback, as
	// in simple shader pipelines).
	ExtraLat int
	// ClockGHz is used when converting cycles to seconds (2 GHz for all
	// cores in the paper).
	ClockGHz float64
}

// The paper's four fine-grain core design points (Table 6) and the
// coarse-grain core (Table 5).
var (
	// Desktop is modeled on an Intel Core Duo class core.
	Desktop = Config{Name: "Desktop", Width: 4, Window: 32, ROB: 96, Depth: 14,
		PredKB: 17, RAS: 64, IntUnits: 4, FPUnits: 2, MemUnits: 2, LoadLat: 1, ClockGHz: 2}
	// Console is modeled on an IBM Cell PPE-class core.
	Console = Config{Name: "Console", Width: 2, Window: 8, ROB: 32, Depth: 12,
		PredKB: 17, RAS: 64, IntUnits: 2, FPUnits: 1, MemUnits: 1, LoadLat: 1, ClockGHz: 2}
	// Shader is modeled on a GPU shader core: scalar, in-order, with a
	// minimal predictor and no full forwarding network.
	Shader = Config{Name: "Shader", Width: 1, Window: 1, ROB: 32, Depth: 8,
		PredKB: 1, RAS: 8, IntUnits: 1, FPUnits: 1, MemUnits: 1, LoadLat: 1,
		ExtraLat: 2, ClockGHz: 2}
	// Limit is the unrealistic ILP limit-study core.
	Limit = Config{Name: "Limit", Width: 128, Window: 128, ROB: 512, Depth: 14,
		PredKB: 64, RAS: 64, IntUnits: 128, FPUnits: 128, MemUnits: 128, LoadLat: 1, ClockGHz: 2}
	// CGCore is the coarse-grain core (Table 5): like Desktop but with a
	// 2-cycle L1.
	CGCore = Config{Name: "CG", Width: 4, Window: 32, ROB: 96, Depth: 14,
		PredKB: 17, RAS: 64, IntUnits: 4, FPUnits: 2, MemUnits: 2, LoadLat: 2, ClockGHz: 2}
)

// FGConfigs lists the fine-grain design points in the paper's order.
var FGConfigs = []Config{Desktop, Console, Shader, Limit}

// latency returns the execution latency of an op.
func (c *Config) latency(op Op) int {
	base := 1
	switch op {
	case IntALU, Branch, Call, Ret, Store:
		base = 1
	case IntMul:
		base = 3
	case FPAdd, FPCmp:
		base = 2
	case FPMul:
		base = 4
	case FPDiv:
		base = 12
	case FPSqrt:
		base = 16
	case Load:
		base = c.LoadLat
	}
	return base + c.ExtraLat
}

// Result reports one simulation run.
type Result struct {
	Instructions uint64
	Cycles       uint64
	Mispredicts  uint64
	Branches     uint64
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// Core is one core instance with its predictor state.
type Core struct {
	Cfg  Config
	pred *bpred.YAGS
	ras  *bpred.RAS
	// PerfectBP disables the predictor (the paper's ideal-BP experiment,
	// which improved Narrowphase by 30%).
	PerfectBP bool
}

// New builds a core.
func New(cfg Config) *Core {
	return &Core{
		Cfg:  cfg,
		pred: bpred.NewYAGS(cfg.PredKB),
		ras:  bpred.NewRAS(cfg.RAS),
	}
}

type winEntry struct {
	idx int // trace index
}

// Run simulates the trace to completion and returns timing results.
// The trace is an in-order instruction stream; wrong-path work is
// modeled by the fetch redirect penalty plus a squash cost proportional
// to the speculation depth at resolution.
func (c *Core) Run(trace []Instr) Result {
	n := len(trace)
	done := make([]uint64, n) // completion cycle per instruction
	for i := range done {
		done[i] = ^uint64(0)
	}
	var (
		now         uint64
		fetchIdx    int
		retireIdx   int
		window      []winEntry
		inROB       int
		fetchStall  uint64 // no fetch before this cycle
		mispredicts uint64
		branches    uint64
		// pendingBr is the trace index of a fetched mispredicted branch
		// that has not yet resolved (-1 = none). Fetch halts behind it.
		pendingBr = -1
	)

	cfg := &c.Cfg
	for retireIdx < n {
		now++
		if now > uint64(n)*200+10000 {
			break // safety valve: deadlock guard for degenerate configs
		}

		// Retire in order.
		retired := 0
		for retireIdx < n && retired < cfg.Width {
			if done[retireIdx] <= now {
				retireIdx++
				inROB--
				retired++
			} else {
				break
			}
		}

		// Issue from the window (oldest first).
		intB, fpB, memB := 0, 0, 0
		issued := 0
		for wi := 0; wi < len(window) && issued < cfg.Width; wi++ {
			e := window[wi]
			ins := &trace[e.idx]
			// FU availability.
			switch {
			case ins.Op.IsFP():
				if fpB >= cfg.FPUnits {
					continue
				}
			case ins.Op.IsMem():
				if memB >= cfg.MemUnits {
					continue
				}
			default:
				if intB >= cfg.IntUnits {
					continue
				}
			}
			// Dependencies resolved?
			ready := true
			for _, src := range [2]uint16{ins.Src1, ins.Src2} {
				if src == 0 {
					continue
				}
				p := e.idx - int(src)
				if p >= 0 && done[p] > now {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			lat := cfg.latency(ins.Op)
			done[e.idx] = now + uint64(lat)
			switch {
			case ins.Op.IsFP():
				fpB++
			case ins.Op.IsMem():
				memB++
			default:
				intB++
			}
			issued++
			// Mispredicted branch resolution: redirect after execute,
			// plus pipeline refill and a squash cost that grows with the
			// number of in-flight (speculative) instructions.
			if e.idx == pendingBr {
				squash := uint64(len(window)) / uint64(cfg.Width*2+1)
				fetchStall = done[e.idx] + uint64(cfg.Depth) + squash
				pendingBr = -1
			}
			// Remove from window.
			window = append(window[:wi], window[wi+1:]...)
			wi--
		}

		// Fetch.
		if now >= fetchStall && pendingBr < 0 {
			for f := 0; f < cfg.Width && fetchIdx < n; f++ {
				if len(window) >= cfg.Window || inROB >= cfg.ROB {
					break
				}
				ins := &trace[fetchIdx]
				window = append(window, winEntry{idx: fetchIdx})
				inROB++
				if ins.Op.IsBranch() {
					branches++
					mis := false
					if !c.PerfectBP {
						switch ins.Op {
						case Call:
							c.ras.Push(uint64(ins.PC) + 4)
							mis = c.pred.Update(uint64(ins.PC), ins.Taken)
						case Ret:
							_, ok := c.ras.Pop()
							mis = !ok
						default:
							mis = c.pred.Update(uint64(ins.PC), ins.Taken)
						}
					}
					if mis {
						mispredicts++
						pendingBr = fetchIdx
						fetchIdx++
						break // fetch halts behind the mispredict
					}
				}
				fetchIdx++
			}
		}
	}

	return Result{
		Instructions: uint64(n),
		Cycles:       now,
		Mispredicts:  mispredicts,
		Branches:     branches,
	}
}

// IPCOf is a convenience: simulate and return IPC.
func IPCOf(cfg Config, trace []Instr) float64 {
	return New(cfg).Run(trace).IPC()
}
