package cpu

import (
	"testing"
)

// chain builds n fully serial IntALU instructions.
func chain(n int) []Instr {
	t := make([]Instr, n)
	for i := range t {
		t[i] = Instr{Op: IntALU, PC: uint32(i * 4)}
		if i > 0 {
			t[i].Src1 = 1
		}
	}
	return t
}

// independent builds n IntALU instructions with no dependencies.
func independent(n int) []Instr {
	t := make([]Instr, n)
	for i := range t {
		t[i] = Instr{Op: IntALU, PC: uint32(i * 4)}
	}
	return t
}

func TestSerialChainIPCNearOne(t *testing.T) {
	r := New(Desktop).Run(chain(10000))
	if ipc := r.IPC(); ipc > 1.05 || ipc < 0.8 {
		t.Errorf("serial chain IPC = %v, want ~1", ipc)
	}
}

func TestIndependentStreamLimitedByWidth(t *testing.T) {
	r := New(Desktop).Run(independent(20000))
	if ipc := r.IPC(); ipc < 3.2 {
		t.Errorf("independent stream on 4-wide core: IPC = %v, want ~4", ipc)
	}
	r2 := New(Console).Run(independent(20000))
	if ipc := r2.IPC(); ipc > 2.05 || ipc < 1.6 {
		t.Errorf("independent stream on 2-wide core: IPC = %v, want ~2", ipc)
	}
	r3 := New(Shader).Run(independent(20000))
	if ipc := r3.IPC(); ipc > 1.01 || ipc < 0.8 {
		t.Errorf("independent stream on 1-wide core: IPC = %v, want ~1", ipc)
	}
}

func TestFPUnitsConstrain(t *testing.T) {
	// All-FP independent stream on Desktop (2 FP units): IPC ~2, not 4.
	n := 20000
	tr := make([]Instr, n)
	for i := range tr {
		tr[i] = Instr{Op: FPAdd, PC: uint32(i * 4)}
	}
	r := New(Desktop).Run(tr)
	if ipc := r.IPC(); ipc > 2.05 || ipc < 1.6 {
		t.Errorf("FP stream IPC = %v, want ~2 (2 FP units)", ipc)
	}
}

func TestLatencyExposedOnDependentFP(t *testing.T) {
	// Serial FPMul chain: IPC ~ 1/4 (4-cycle latency).
	n := 8000
	tr := make([]Instr, n)
	for i := range tr {
		tr[i] = Instr{Op: FPMul, PC: uint32(i * 4)}
		if i > 0 {
			tr[i].Src1 = 1
		}
	}
	r := New(Desktop).Run(tr)
	if ipc := r.IPC(); ipc > 0.30 || ipc < 0.20 {
		t.Errorf("serial FPMul IPC = %v, want ~0.25", ipc)
	}
}

func TestMispredictsSlowBranchyCode(t *testing.T) {
	// Random branches every 8 instructions.
	mk := func(rndTaken func(i int) bool) []Instr {
		var tr []Instr
		for i := 0; i < 30000; i++ {
			if i%8 == 7 {
				tr = append(tr, Instr{Op: Branch, PC: uint32((i % 512) * 4), Taken: rndTaken(i)})
			} else {
				tr = append(tr, Instr{Op: IntALU, PC: uint32(i * 4)})
			}
		}
		return tr
	}
	biased := mk(func(i int) bool { return true })
	// Pseudo-random but deterministic outcome pattern.
	random := mk(func(i int) bool { return (i*2654435761)>>13&1 == 1 })

	rb := New(Desktop).Run(biased)
	rr := New(Desktop).Run(random)
	if rb.IPC() <= rr.IPC() {
		t.Errorf("biased branches (%v IPC) should beat random branches (%v IPC)",
			rb.IPC(), rr.IPC())
	}
	if rr.Mispredicts == 0 {
		t.Error("random branches should mispredict")
	}
}

func TestPerfectBPHelps(t *testing.T) {
	var tr []Instr
	for i := 0; i < 30000; i++ {
		if i%8 == 7 {
			tr = append(tr, Instr{Op: Branch, PC: uint32((i % 512) * 4),
				Taken: (i*2654435761)>>13&1 == 1})
		} else {
			tr = append(tr, Instr{Op: IntALU, PC: uint32(i * 4)})
		}
	}
	real := New(Desktop)
	ideal := New(Desktop)
	ideal.PerfectBP = true
	rIPC := real.Run(tr).IPC()
	iIPC := ideal.Run(tr).IPC()
	if iIPC <= rIPC*1.1 {
		t.Errorf("perfect BP should clearly help branchy code: %v vs %v", iIPC, rIPC)
	}
}

func TestWindowEnablesILPAcrossChains(t *testing.T) {
	// Two interleaved serial chains: a 1-entry-window core cannot look
	// past the stalled head; a wide-window core overlaps the chains.
	n := 10000
	tr := make([]Instr, n)
	for i := range tr {
		tr[i] = Instr{Op: FPAdd, PC: uint32(i * 4)}
		if i >= 2 {
			tr[i].Src1 = 2 // depend on same-parity predecessor
		}
	}
	wide := New(Desktop).Run(tr).IPC()
	narrow := New(Shader).Run(tr).IPC()
	if wide <= narrow {
		t.Errorf("window should exploit interleaved chains: desktop %v vs shader %v",
			wide, narrow)
	}
}

func TestLimitCoreExtractsMassiveILP(t *testing.T) {
	// 64 interleaved chains: limit core should get far more ILP than
	// desktop.
	n := 40000
	tr := make([]Instr, n)
	for i := range tr {
		tr[i] = Instr{Op: FPAdd, PC: uint32(i * 4)}
		if i >= 64 {
			tr[i].Src1 = 64
		}
	}
	lim := New(Limit).Run(tr).IPC()
	desk := New(Desktop).Run(tr).IPC()
	if lim < desk*2 {
		t.Errorf("limit core IPC %v should dwarf desktop %v", lim, desk)
	}
}

func TestCallReturnUseRAS(t *testing.T) {
	var tr []Instr
	for i := 0; i < 1000; i++ {
		site := uint32(i%16) * 64 // 16 hot call sites, repeatedly visited
		tr = append(tr, Instr{Op: Call, PC: site, Taken: true})
		tr = append(tr, Instr{Op: IntALU})
		tr = append(tr, Instr{Op: Ret, PC: site + 8, Taken: true})
		tr = append(tr, Instr{Op: IntALU})
	}
	r := New(Desktop).Run(tr)
	// Balanced call/return: the RAS should make returns nearly free.
	if float64(r.Mispredicts)/float64(r.Branches) > 0.1 {
		t.Errorf("balanced call/ret mispredict ratio = %v",
			float64(r.Mispredicts)/float64(r.Branches))
	}
}

func TestAllConfigsTerminate(t *testing.T) {
	tr := chain(2000)
	for _, cfg := range append(FGConfigs, CGCore) {
		r := New(cfg).Run(tr)
		if r.Instructions != 2000 || r.Cycles == 0 {
			t.Errorf("%s: result %+v", cfg.Name, r)
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	r := New(Desktop).Run(nil)
	if r.Cycles != 0 || r.Instructions != 0 {
		t.Errorf("empty trace: %+v", r)
	}
}

func TestROBLimitsInflight(t *testing.T) {
	// A long-latency head (FPSqrt chain) with many independent followers:
	// a tiny ROB throttles how much independent work proceeds past it.
	n := 8000
	tr := make([]Instr, n)
	for i := range tr {
		if i%64 == 0 {
			tr[i] = Instr{Op: FPSqrt, PC: uint32(i * 4)}
			if i > 0 {
				tr[i].Src1 = 64 // sqrt chain
			}
		} else {
			tr[i] = Instr{Op: IntALU, PC: uint32(i * 4)}
		}
	}
	big := Desktop
	big.ROB = 512
	big.Window = 128
	small := Desktop
	small.ROB = 16
	small.Window = 128
	if bi, si := New(big).Run(tr).IPC(), New(small).Run(tr).IPC(); bi <= si {
		t.Errorf("bigger ROB should help latency hiding: %v vs %v", bi, si)
	}
}

func TestSafetyValveOnDegenerateConfig(t *testing.T) {
	// Zero-unit configs must not hang the simulator.
	cfg := Desktop
	cfg.IntUnits, cfg.FPUnits, cfg.MemUnits = 0, 0, 0
	r := New(cfg).Run(chain(100))
	if r.Cycles == 0 {
		t.Error("degenerate config produced no cycles")
	}
}

func TestMixedFUPressure(t *testing.T) {
	// Alternating int and FP work uses both pipes: IPC beats an all-FP
	// stream on a machine with more int units than FP units.
	n := 20000
	mixed := make([]Instr, n)
	fpOnly := make([]Instr, n)
	for i := range mixed {
		if i%2 == 0 {
			mixed[i] = Instr{Op: IntALU, PC: uint32(i * 4)}
		} else {
			mixed[i] = Instr{Op: FPAdd, PC: uint32(i * 4)}
		}
		fpOnly[i] = Instr{Op: FPAdd, PC: uint32(i * 4)}
	}
	mi := New(Desktop).Run(mixed).IPC()
	fi := New(Desktop).Run(fpOnly).IPC()
	if mi <= fi {
		t.Errorf("mixed stream IPC %v should beat FP-only %v on a 4int/2fp core", mi, fi)
	}
}
