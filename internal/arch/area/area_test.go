package area

import (
	"math"
	"testing"

	"github.com/parallax-arch/parallax/internal/arch/cpu"
)

func TestPaperAreaNumbers(t *testing.T) {
	// Paper section 8.2.1: "The area estimates for 30 desktop, 43
	// console, and 150 shader cores are 1388 mm2, 926 mm2, and 591 mm2
	// respectively."
	cases := []struct {
		cfg  cpu.Config
		n    int
		want float64
	}{
		{cpu.Desktop, 30, 1388},
		{cpu.Console, 43, 926},
		{cpu.Shader, 150, 591},
	}
	for _, c := range cases {
		got := FGPoolMM2(c.cfg, c.n)
		if math.Abs(got-c.want)/c.want > 0.02 {
			t.Errorf("%s x %d = %.0f mm2, want ~%.0f", c.cfg.Name, c.n, got, c.want)
		}
	}
}

func TestShaderMostAreaEfficient(t *testing.T) {
	// The paper's conclusion: the simplest cores are the most
	// area-efficient pool for the same performance target.
	d := FGPoolMM2(cpu.Desktop, 30)
	c := FGPoolMM2(cpu.Console, 43)
	s := FGPoolMM2(cpu.Shader, 150)
	if !(s < c && c < d) {
		t.Errorf("area ordering wrong: desktop %v, console %v, shader %v", d, c, s)
	}
}

func TestSystemArea(t *testing.T) {
	total := SystemMM2(4, 12, cpu.Shader, 150)
	parts := 4*(CGCoreMM2+MeshNodeMM2) + 12*L2MM2PerMB + FGPoolMM2(cpu.Shader, 150)
	if total != parts {
		t.Errorf("system area %v != %v", total, parts)
	}
	if total <= FGPoolMM2(cpu.Shader, 150) {
		t.Error("system must cost more than the FG pool alone")
	}
}

func TestCoreMM2Known(t *testing.T) {
	if CoreMM2(cpu.Desktop) != DesktopCoreMM2 || CoreMM2(cpu.Shader) != ShaderCoreMM2 {
		t.Error("core area lookup broken")
	}
	if CoreMM2(cpu.Limit) <= CoreMM2(cpu.Desktop) {
		t.Error("limit core must be enormous")
	}
	if CoreMM2(cpu.CGCore) != CGCoreMM2 {
		t.Error("CG core area lookup broken")
	}
}
