// Package area estimates die area at 90nm for the fine-grain core
// design points, derived as in the paper (section 8.2.1) from published
// die areas and photos: Intel Core Duo 2 for the desktop-class core,
// IBM Cell SPE-class for the console core, and NVIDIA G80 for the
// shader core, plus per-node mesh interconnect area from Polaris.
package area

import "github.com/parallax-arch/parallax/internal/arch/cpu"

// Core areas in mm^2 at 90nm.
const (
	DesktopCoreMM2 = 45.2
	ConsoleCoreMM2 = 20.4
	ShaderCoreMM2  = 2.84
	// MeshNodeMM2 is the per-node router + link area.
	MeshNodeMM2 = 1.1
	// L2MM2PerMB is the 90nm area of one 1MB 4-way bank.
	L2MM2PerMB = 10.5
	// CGCoreMM2 is the coarse-grain core (desktop-class plus L1s).
	CGCoreMM2 = 46.5
)

// CoreMM2 returns the per-core area for a FG core config.
func CoreMM2(cfg cpu.Config) float64 {
	switch cfg.Name {
	case "Desktop":
		return DesktopCoreMM2
	case "Console":
		return ConsoleCoreMM2
	case "Shader":
		return ShaderCoreMM2
	case "Limit":
		// The limit-study core is unrealistic; scale quadratically with
		// width from the desktop core for reporting purposes.
		return DesktopCoreMM2 * 32
	default:
		return CGCoreMM2
	}
}

// FGPoolMM2 returns the area of n FG cores of the given type including
// their mesh interconnect.
func FGPoolMM2(cfg cpu.Config, n int) float64 {
	return float64(n) * (CoreMM2(cfg) + MeshNodeMM2)
}

// SystemMM2 returns the area of a full ParallAX configuration: CG cores,
// the partitioned L2, and the FG pool.
func SystemMM2(nCG int, l2MB int, fg cpu.Config, nFG int) float64 {
	return float64(nCG)*(CGCoreMM2+MeshNodeMM2) +
		float64(l2MB)*L2MM2PerMB +
		FGPoolMM2(fg, nFG)
}
