package os

import "testing"

func TestPerThreadBytes(t *testing.T) {
	if PerThreadBytes(1) != 850<<10 || PerThreadBytes(4) != 850<<10 {
		t.Error("1-4 threads must use 850KB per thread (measured)")
	}
	if PerThreadBytes(8) != 5<<20 || PerThreadBytes(16) != 5<<20 {
		t.Error(">= 8 threads must use 5MB per thread (measured)")
	}
	mid := PerThreadBytes(6)
	if mid <= 850<<10 || mid >= 5<<20 {
		t.Errorf("6 threads = %d, want between 850KB and 5MB", mid)
	}
}

func TestKernelStreamVolume(t *testing.T) {
	count := func(threads int) int {
		n := 0
		KernelStream(threads, func(t int) uint64 { return uint64(t) << 24 }, func(uint64, bool) { n++ })
		return n
	}
	c4 := count(4)
	c8 := count(8)
	// 8 threads touch far more kernel memory than 4 (the 5x L2 miss
	// blow-up's source): 2x threads x ~6x footprint.
	if c8 < 8*c4 {
		t.Errorf("8-thread kernel stream (%d refs) should be >= 8x the 4-thread one (%d)", c8, c4)
	}
}

func TestKernelStreamAddressesDisjoint(t *testing.T) {
	seen := map[int]map[uint64]bool{}
	base := func(t int) uint64 { return uint64(t+1) << 32 }
	for _, th := range []int{2} {
		perThread := map[uint64]int{}
		KernelStream(th, base, func(a uint64, w bool) {
			perThread[a>>32]++
		})
		if len(perThread) != th {
			t.Errorf("expected %d disjoint regions, got %d", th, len(perThread))
		}
	}
	_ = seen
}
