// Package os models the operating-system overhead the paper measures
// when scaling worker threads (section 6.2): under Solaris 10, each
// worker thread used ~850KB of memory at 2-4 threads, jumping to ~5MB
// per thread at 8 threads — kernel memory accesses inside Island
// Processing and Cloth then blow up the L2 miss count by ~5x.
package os

// PerThreadBytes returns the modeled per-worker-thread memory footprint
// (heap arenas, stack, kernel bookkeeping) as a function of thread
// count, reproducing the measured 850KB -> 5MB inflation.
func PerThreadBytes(threads int) int {
	switch {
	case threads <= 4:
		return 850 << 10
	case threads >= 8:
		return 5 << 20
	default:
		// Interpolate 5..7 threads.
		lo, hi := 850<<10, 5<<20
		return lo + (hi-lo)*(threads-4)/4
	}
}

// KernelStream emits the kernel/per-thread memory references of one
// parallel-phase execution with the given thread count: each worker
// sweeps a slice of its private region proportional to its footprint.
// emit receives (addr, write); threadBase maps a worker index to its
// private region base address.
func KernelStream(threads int, threadBase func(int) uint64, emit func(addr uint64, write bool)) {
	per := PerThreadBytes(threads)
	// Workers touch a fraction of their footprint per phase execution:
	// allocator metadata, stack frames, and (beyond 4 threads) the
	// kernel structures that caused the measured blow-up.
	touched := per
	const block = 64
	for t := 0; t < threads; t++ {
		base := threadBase(t)
		for off := 0; off < touched; off += block {
			emit(base+uint64(off), off%(4*block) == 0)
		}
	}
}

// IsKernelAddr reports whether an address belongs to a thread-private
// region given the same base mapping (used to split Fig 6b's kernel vs
// user misses).
func IsKernelAddr(addr uint64, base0 uint64) bool { return addr >= base0 }
