// Package noc models the on-chip 2D mesh interconnect used between
// cores and cache banks (paper section 5.1, from Polaris 90nm data): a
// 1-cycle per-hop wire delay, a 5-cycle router pipeline at 2GHz, 64-bit
// flits with an 8-bit packet header (56-bit payload per flit), and four
// virtual channels.
package noc

import "math"

// Config describes the mesh.
type Config struct {
	// Width and Height give the node grid.
	Width, Height int
	// HopCycles is the per-hop wire latency (1 in the paper).
	HopCycles int
	// RouterCycles is the router pipeline depth (5 in the paper).
	RouterCycles int
	// FlitBits is the link width (64); HeaderBits is per-packet header
	// overhead (8), leaving PayloadBits per flit.
	FlitBits   int
	HeaderBits int
	// VCs is the number of virtual channels (4).
	VCs int
	// ClockGHz converts cycles to time.
	ClockGHz float64
}

// Default returns the paper's mesh parameters for an n-node layout,
// arranged as close to square as possible.
func Default(nodes int) Config {
	w := int(math.Ceil(math.Sqrt(float64(nodes))))
	h := (nodes + w - 1) / w
	return Config{
		Width: w, Height: h,
		HopCycles: 1, RouterCycles: 5,
		FlitBits: 64, HeaderBits: 8, VCs: 4,
		ClockGHz: 2,
	}
}

// Node is a grid coordinate.
type Node struct{ X, Y int }

// NodeAt maps a linear index to its grid position (row-major).
func (c Config) NodeAt(i int) Node {
	return Node{X: i % c.Width, Y: i / c.Width}
}

// Hops returns the XY-routing hop count between two nodes.
func (c Config) Hops(a, b Node) int {
	dx := a.X - b.X
	if dx < 0 {
		dx = -dx
	}
	dy := a.Y - b.Y
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// MaxHops returns the mesh diameter.
func (c Config) MaxHops() int { return c.Width - 1 + c.Height - 1 }

// AvgHops returns the average XY distance between distinct nodes.
func (c Config) AvgHops() float64 {
	n := c.Width * c.Height
	if n <= 1 {
		return 0
	}
	total := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				total += c.Hops(c.NodeAt(i), c.NodeAt(j))
			}
		}
	}
	return float64(total) / float64(n*(n-1))
}

// FlitsFor returns the number of flits needed to carry a payload.
func (c Config) FlitsFor(payloadBytes int) int {
	payloadPerFlit := c.FlitBits - c.HeaderBits
	bits := payloadBytes * 8
	f := (bits + payloadPerFlit - 1) / payloadPerFlit
	if f < 1 {
		f = 1
	}
	return f
}

// LatencyCycles returns the head latency plus serialization for a
// payload over the given hop count.
func (c Config) LatencyCycles(hops, payloadBytes int) int {
	head := hops*(c.HopCycles+c.RouterCycles) + c.RouterCycles
	return head + c.FlitsFor(payloadBytes) - 1
}

// LatencySeconds converts LatencyCycles to time.
func (c Config) LatencySeconds(hops, payloadBytes int) float64 {
	return float64(c.LatencyCycles(hops, payloadBytes)) / (c.ClockGHz * 1e9)
}

// LinkBandwidth returns one link's bandwidth in bytes/second (payload
// bits per cycle x clock).
func (c Config) LinkBandwidth() float64 {
	return float64(c.FlitBits-c.HeaderBits) / 8 * c.ClockGHz * 1e9
}

// BisectionBandwidth returns the mesh bisection bandwidth in bytes/s:
// min(width, height) links across the cut, times VCs' utilization is
// ignored (peak).
func (c Config) BisectionBandwidth() float64 {
	cut := c.Width
	if c.Height < cut {
		cut = c.Height
	}
	return float64(cut) * c.LinkBandwidth()
}
