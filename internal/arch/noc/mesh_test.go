package noc

import "testing"

func TestDefaultGrid(t *testing.T) {
	c := Default(16)
	if c.Width != 4 || c.Height != 4 {
		t.Errorf("16 nodes -> %dx%d, want 4x4", c.Width, c.Height)
	}
	c = Default(30)
	if c.Width*c.Height < 30 {
		t.Errorf("grid %dx%d too small for 30 nodes", c.Width, c.Height)
	}
}

func TestHops(t *testing.T) {
	c := Default(16)
	if h := c.Hops(Node{0, 0}, Node{3, 3}); h != 6 {
		t.Errorf("corner-to-corner hops = %d, want 6", h)
	}
	if h := c.Hops(Node{2, 1}, Node{2, 1}); h != 0 {
		t.Errorf("self hops = %d", h)
	}
	if c.MaxHops() != 6 {
		t.Errorf("diameter = %d", c.MaxHops())
	}
}

func TestAvgHopsBounds(t *testing.T) {
	c := Default(16)
	avg := c.AvgHops()
	if avg <= 0 || avg > float64(c.MaxHops()) {
		t.Errorf("avg hops = %v out of range", avg)
	}
	// 4x4 mesh average distance is 8/3.
	if avg < 2.5 || avg > 2.8 {
		t.Errorf("4x4 avg hops = %v, want ~2.67", avg)
	}
}

func TestFlits(t *testing.T) {
	c := Default(16)
	// 56 payload bits per flit = 7 bytes.
	if f := c.FlitsFor(7); f != 1 {
		t.Errorf("7B -> %d flits, want 1", f)
	}
	if f := c.FlitsFor(8); f != 2 {
		t.Errorf("8B -> %d flits, want 2", f)
	}
	if f := c.FlitsFor(0); f != 1 {
		t.Errorf("0B -> %d flits, want 1 (header)", f)
	}
	if f := c.FlitsFor(604); f != 87 {
		t.Errorf("604B -> %d flits, want 87", f)
	}
}

func TestLatency(t *testing.T) {
	c := Default(16)
	// 1 hop, 1 flit: 1*(1+5) + 5 = 11 cycles.
	if l := c.LatencyCycles(1, 7); l != 11 {
		t.Errorf("1-hop small packet = %d cycles, want 11", l)
	}
	// Serialization adds flits-1 cycles.
	if l := c.LatencyCycles(1, 70); l != 11+9 {
		t.Errorf("1-hop 70B packet = %d cycles, want 20", l)
	}
	// Seconds conversion at 2GHz.
	if s := c.LatencySeconds(1, 7); s != 11/2e9 {
		t.Errorf("latency seconds = %v", s)
	}
}

func TestBandwidth(t *testing.T) {
	c := Default(16)
	if bw := c.LinkBandwidth(); bw != 14e9 {
		t.Errorf("link bandwidth = %v, want 14GB/s", bw)
	}
	if bb := c.BisectionBandwidth(); bb != 4*14e9 {
		t.Errorf("bisection = %v", bb)
	}
}

func TestNodeAtRoundTrip(t *testing.T) {
	c := Default(12)
	for i := 0; i < 12; i++ {
		n := c.NodeAt(i)
		if n.Y*c.Width+n.X != i {
			t.Errorf("NodeAt(%d) = %+v does not invert", i, n)
		}
	}
}
