package parallax

import (
	"math"

	"github.com/parallax-arch/parallax/internal/arch/cpu"
	"github.com/parallax-arch/parallax/internal/arch/kernels"
	"github.com/parallax-arch/parallax/internal/arch/link"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// FGResult is the fine-grain pool's execution of the parallel kernels.
type FGResult struct {
	// ComputeTime is the pure FG execution time per frame.
	ComputeTime float64
	// CommTime is the exposed (non-overlapped) communication, including
	// the per-phase startup and post-process costs.
	CommTime float64
	// PerPhase is the FG time per parallel phase.
	PerPhase [world.NumPhases]float64
	// BufferTasks is the worst-case per-core buffering requirement.
	BufferTasks int
	// BufferBytes is the local-store requirement for that buffering.
	BufferBytes int
	// WorkLost is the fraction of FG work filtered back to CG cores
	// because islands/cloths were too small to hide the interconnect
	// latency (section 8.2.2).
	WorkLost float64
}

// Total returns compute + exposed communication.
func (r FGResult) Total() float64 { return r.ComputeTime + r.CommTime }

// fgPhases lists the phases with farmable FG kernels.
var fgPhases = []world.Phase{world.PhaseNarrow, world.PhaseIslandProc, world.PhaseCloth}

// taskGrain returns, for a phase's kernel on a core of the given IPC:
// the per-task compute time, the total task count per frame, and the
// concurrently available tasks per scheduling round. A task is "an
// independent inner iteration of a multiply-nested for loop" (section
// 7): one object-pair test, one LCP row update within one solver sweep,
// or one cloth vertex update within one relaxation sweep — so the
// iterative phases issue DOF (or vertex-count) concurrent tasks per
// sweep, with iters sweeps per step.
func (wl *Workload) taskGrain(ph world.Phase, ipc float64) (taskSec, total, avail float64) {
	instr := wl.FrameInstr()
	pairs, islandDOF, clothVerts := wl.AvailableFGTasks()
	steps := float64(len(wl.Frame.Steps))
	iters := float64(wl.World.Solver.Iterations)
	if iters < 1 {
		iters = 1
	}
	switch ph {
	case world.PhaseNarrow:
		total, avail = pairs*steps, pairs
	case world.PhaseIslandProc:
		total, avail = islandDOF*iters*steps, islandDOF
	case world.PhaseCloth:
		total, avail = clothVerts*iters*steps, clothVerts
	}
	if total <= 0 {
		return 0, 0, 0
	}
	fgInstr := instr[ph] * kernels.FGShare(ph)
	taskSec = fgInstr / total / ipc / ClockHz
	return taskSec, total, avail
}

// KernelPhase maps an FG kernel back to its engine phase.
func KernelPhase(k kernels.Kernel) world.Phase {
	switch k {
	case kernels.Island:
		return world.PhaseIslandProc
	case kernels.Cloth:
		return world.PhaseCloth
	default:
		return world.PhaseNarrow
	}
}

// TaskTime returns one FG task's compute time for kernel k at the given
// IPC (used by the Table 7 buffering analysis).
func (wl *Workload) TaskTime(k kernels.Kernel, ipc float64) float64 {
	t, _, _ := wl.taskGrain(KernelPhase(k), ipc)
	return t
}

// FGTime evaluates the fine-grain portion of the frame on nFG cores of
// the given type over the given interconnect, assuming the CG side can
// keep the task queues full (cgThreads CG cores submitting).
func (wl *Workload) FGTime(fg cpu.Config, nFG int, lk link.Kind, cgThreads int) FGResult {
	return wl.FGTimeSharedLocal(fg, nFG, lk, 1)
}

// sharedOverlap is the fraction of a task's input data that sibling
// tasks of the same coarse task reuse: LCP rows of one island share the
// island's body state, narrow-phase pairs share geom data, and cloth
// vertices share their neighbours' positions.
func sharedOverlap(k kernels.Kernel) float64 {
	switch k {
	case kernels.Island:
		return 0.6
	case kernels.Cloth:
		return 0.5
	default:
		return 0.3
	}
}

// FGTimeSharedLocal is the paper's future-work extension (section
// 8.2.2): clusters of `cluster` FG cores share a local memory, so data
// common to sibling tasks crosses the interconnect once per cluster
// instead of once per core. cluster = 1 reproduces the baseline design.
func (wl *Workload) FGTimeSharedLocal(fg cpu.Config, nFG int, lk link.Kind, cluster int) FGResult {
	obsStart := wl.obs.tr.Now()
	var res FGResult
	if nFG < 1 {
		return res
	}
	if cluster < 1 {
		cluster = 1
	}
	ipcs := wl.KernelIPC(fg)
	lc := link.For(lk)
	instr := wl.FrameInstr()
	steps := float64(len(wl.Frame.Steps))

	for _, ph := range fgPhases {
		k := PhaseKernel(ph)
		ipc := ipcs[k]
		if ipc <= 0 {
			continue
		}
		fgInstr := instr[ph] * kernels.FGShare(ph)
		if fgInstr <= 0 {
			continue
		}
		taskSec, total, avail := wl.taskGrain(ph, ipc)
		if total <= 0 {
			continue
		}
		compute := fgInstr / ipc / float64(nFG) / ClockHz

		// Shared local memory: the overlapping fraction of input data is
		// fetched once per cluster.
		effIn := float64(k.DataIn())
		if cluster > 1 {
			ov := sharedOverlap(k)
			effIn *= 1 - ov*(1-1/float64(cluster))
		}
		inBytes := int(effIn)

		// Buffering needed per core to overlap communication (section
		// 7.2); the pool needs nFG x that many tasks in flight.
		need := lc.TasksToHide(taskSec, inBytes, k.DataOut())
		if need > res.BufferTasks {
			res.BufferTasks = need
			res.BufferBytes = link.BufferBytes(need, inBytes)
		}
		required := float64(need * nFG)

		comm := 0.0
		if avail < required {
			// Not enough concurrent tasks to hide the latency: the
			// uncovered fraction of each task's round trip is exposed.
			uncovered := 1 - avail/required
			perTask := lc.RoundTrip(inBytes, k.DataOut()) * uncovered
			comm += perTask * total / float64(nFG)
		}
		// Startup and post-process cost per phase per step (always paid).
		comm += steps * lc.RoundTrip(inBytes, k.DataOut())

		res.PerPhase[ph] = compute + comm
		res.ComputeTime += compute
		res.CommTime += comm
	}
	// Link occupancy: modeled FG compute vs exposed communication time,
	// in integer nanoseconds so concurrent accumulation stays
	// deterministic.
	if r := wl.obs.reg; r != nil {
		r.Add(wl.obs.linkComputeNs, int64(res.ComputeTime*1e9))
		r.Add(wl.obs.linkCommNs, int64(res.CommTime*1e9))
	}
	wl.obs.lane.Complete(wl.obs.fgSpan, obsStart)
	return res
}

// FilteredFGTime is the section 8.2.2 variant: islands (and cloths)
// with fewer than minTasks FG tasks are filtered out — executed on the
// CG cores instead — so the remaining tasks can hide the interconnect
// latency. It returns the FG result plus the fraction of island-phase
// work filtered back.
func (wl *Workload) FilteredFGTime(fg cpu.Config, nFG int, lk link.Kind, minTasks int) (FGResult, float64) {
	res := wl.FGTime(fg, nFG, lk, 4)
	dofs := wl.IslandDOFsSorted()
	total, kept := 0.0, 0.0
	for _, d := range dofs {
		total += float64(d)
		if d >= minTasks {
			kept += float64(d)
		}
	}
	lost := 0.0
	if total > 0 {
		lost = 1 - kept/total
	}
	res.WorkLost = lost
	// The filtered work leaves the FG pool: compute shrinks, and the
	// remaining tasks (all large) hide the latency.
	res.PerPhase[world.PhaseIslandProc] *= (1 - lost)
	res.ComputeTime *= (1 - lost*0.5) // island share only; conservative
	return res, lost
}

// FGCoresFor30FPS returns the minimum number of FG cores of the given
// type needed to complete the frame's FG work within budgetFrac of a
// 30 FPS frame over the given interconnect (Fig 10b).
func (wl *Workload) FGCoresFor30FPS(fg cpu.Config, budgetFrac float64, lk link.Kind) int {
	budget := budgetFrac * FrameBudget
	lo, hi := 1, 1<<14
	r := wl.FGTime(fg, hi, lk, 4)
	if r.Total() > budget {
		return hi
	}
	for lo < hi {
		mid := (lo + hi) / 2
		r = wl.FGTime(fg, mid, lk, 4)
		if r.Total() <= budget {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// FGInstrTotal returns the frame's total farmable FG instructions.
func (wl *Workload) FGInstrTotal() float64 {
	instr := wl.FrameInstr()
	t := 0.0
	for _, ph := range fgPhases {
		t += instr[ph] * kernels.FGShare(ph)
	}
	return t
}

// IdealFGCores is the closed-form requirement assuming 100% utilization
// and fully hidden communication: instrs / (IPC x clock x budget).
func (wl *Workload) IdealFGCores(fg cpu.Config, budgetFrac float64) int {
	ipcs := wl.KernelIPC(fg)
	instr := wl.FrameInstr()
	budget := budgetFrac * FrameBudget
	cycles := 0.0
	for _, ph := range fgPhases {
		cycles += instr[ph] * kernels.FGShare(ph) / ipcs[PhaseKernel(ph)]
	}
	return int(math.Ceil(cycles / ClockHz / budget))
}
