package parallax

import (
	"github.com/parallax-arch/parallax/internal/arch/cache"
	"github.com/parallax-arch/parallax/internal/arch/mem"
	archos "github.com/parallax-arch/parallax/internal/arch/os"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// Partition ids for the application-aware L2 management (section 6.1):
// one dedicated partition per serial phase plus one shared partition for
// the parallel phases.
const (
	PartBroad     = 0
	PartIslandGen = 1
	PartParallel  = 2
)

// MemConfig selects the cache organization for a frame simulation.
type MemConfig struct {
	// Cores is the number of CG cores (each gets an L1; parallel-phase
	// accesses are spread across them).
	Cores int
	// L2MB is the shared L2 capacity in 1MB 4-way banks.
	L2MB int
	// Partitioned enables the paper's way partitioning: one third of the
	// ways each to Broadphase, Island Creation, and the parallel phases
	// (4MB + 4MB + rest in the 12MB configuration).
	Partitioned bool
	// Threads is the worker-thread count for the parallel phases; more
	// than 4 triggers the measured OS per-thread memory inflation.
	Threads int
	// DedicatedPhase, when >= 0, simulates only that phase's stream with
	// the whole L2 dedicated to it (the working-set experiments of Figs
	// 3-5 save and restore per-phase cache state; dedicating the cache
	// to one phase is equivalent).
	DedicatedPhase int
	// PrefetchDepth enables a next-N-line L2 prefetcher (the paper's
	// future-work direction for reducing L2 size requirements).
	PrefetchDepth int
}

// PhaseMem reports one phase's memory behaviour over the frame.
type PhaseMem struct {
	Accesses       uint64
	L1Misses       uint64
	L2Misses       uint64
	KernelL2Misses uint64
	// StallCycles is the aggregate memory stall contribution.
	StallCycles float64
}

// MemResult is the frame's per-phase memory behaviour.
type MemResult struct {
	Phase [world.NumPhases]PhaseMem
}

// TotalL2Misses sums L2 misses over phases.
func (m MemResult) TotalL2Misses() (user, kernel uint64) {
	for _, p := range m.Phase {
		user += p.L2Misses - p.KernelL2Misses
		kernel += p.KernelL2Misses
	}
	return user, kernel
}

// SimulateMemory replays the frame's per-phase reference streams
// through an L1/L2 hierarchy and returns per-phase miss counts and
// stall cycles. The solver's and cloth's iterative sweeps are sampled
// (cold + steady) and scaled by the iteration count.
func (wl *Workload) SimulateMemory(cfg MemConfig) MemResult {
	obsStart := wl.obs.tr.Now()
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	if cfg.Threads < 1 {
		cfg.Threads = cfg.Cores
	}
	h := cache.NewHierarchy(maxInt(cfg.Cores, cfg.Threads), cfg.L2MB)
	h.L2.Prefetch = cfg.PrefetchDepth
	if cfg.Partitioned {
		// The paper's 12MB organization: three 4MB partitions of whole
		// 1MB banks — one for Broadphase, one for Island Creation, the
		// rest for the parallel phases. Smaller L2s split by thirds.
		nb := cfg.L2MB
		per := nb / 3
		if per < 1 {
			per = 1
		}
		var broadB, genB, parB []int
		for b := 0; b < nb; b++ {
			switch {
			case b < per:
				broadB = append(broadB, b)
			case b < 2*per:
				genB = append(genB, b)
			default:
				parB = append(parB, b)
			}
		}
		if len(parB) == 0 {
			parB = genB
		}
		h.L2.PartitionBanks(PartBroad, broadB)
		h.L2.PartitionBanks(PartIslandGen, genB)
		h.L2.PartitionBanks(PartParallel, parB)
	}

	var res MemResult
	iters := wl.World.Solver.Iterations
	if iters < 1 {
		iters = 1
	}

	// account wraps a stream emission, attributing misses and stalls to
	// a phase. Parallel-phase accesses round-robin across cores' L1s.
	account := func(ph world.Phase, parallel bool, kernelRegion bool, emit func(mem.Stream)) {
		pm := &res.Phase[ph]
		part := -1
		if cfg.Partitioned {
			switch ph {
			case world.PhaseBroad:
				part = PartBroad
			case world.PhaseIslandGen:
				part = PartIslandGen
			default:
				part = PartParallel
			}
		}
		if cfg.DedicatedPhase >= 0 {
			part = -1 // dedicated experiments use the whole cache
		}
		l2Before := h.L2.Stats.Misses
		var idx uint64
		emit(func(addr uint64, write bool) {
			core := 0
			if parallel {
				core = int(idx % uint64(cfg.Threads))
			}
			idx++
			lat := h.Access(core, addr, write, part)
			pm.Accesses++
			if lat > 2 {
				pm.L1Misses++
			}
			if lat > 17 {
				pm.L2Misses++
				if kernelRegion {
					pm.KernelL2Misses++
				}
			}
			pm.StallCycles += float64(lat - 2)
		})
		_ = l2Before
	}

	want := func(ph world.Phase) bool {
		return cfg.DedicatedPhase < 0 || world.Phase(cfg.DedicatedPhase) == ph
	}

	// The paper's dedicated-cache experiments save the phase's cache
	// state at the end of a step and reload it at the start of the next,
	// so the measured steps see warm state. Replay the phase's streams
	// once unaccounted to reproduce that warm start.
	if cfg.DedicatedPhase >= 0 {
		sink := func(addr uint64, write bool) {
			h.Access(0, addr, write, -1)
		}
		for si := range wl.Frame.Steps {
			prof := &wl.Frame.Steps[si]
			switch world.Phase(cfg.DedicatedPhase) {
			case world.PhaseBroad:
				wl.Layout.BroadphaseTrace(wl.World, prof, sink)
			case world.PhaseNarrow:
				wl.Layout.NarrowphaseTrace(wl.World, prof, sink)
			case world.PhaseIslandGen:
				wl.Layout.IslandCreationTrace(wl.World, prof, sink)
			case world.PhaseIslandProc:
				wl.Layout.IslandSweep(wl.World, prof, sink)
			case world.PhaseCloth:
				wl.Layout.ClothSweep(wl.World, prof, sink)
			}
		}
	}

	for si := range wl.Frame.Steps {
		prof := &wl.Frame.Steps[si]
		if want(world.PhaseBroad) {
			account(world.PhaseBroad, false, false, func(s mem.Stream) {
				wl.Layout.BroadphaseTrace(wl.World, prof, s)
			})
		}
		if want(world.PhaseNarrow) {
			account(world.PhaseNarrow, true, false, func(s mem.Stream) {
				wl.Layout.NarrowphaseTrace(wl.World, prof, s)
			})
		}
		if want(world.PhaseIslandGen) {
			account(world.PhaseIslandGen, false, false, func(s mem.Stream) {
				wl.Layout.IslandCreationTrace(wl.World, prof, s)
			})
		}
		if want(world.PhaseIslandProc) {
			// Row construction streams once; the iterated working set is
			// the bodies, sampled once and scaled by (iters-1).
			account(world.PhaseIslandProc, true, false, func(s mem.Stream) {
				wl.Layout.IslandSweep(wl.World, prof, s)
			})
			pm := &res.Phase[world.PhaseIslandProc]
			before := *pm
			account(world.PhaseIslandProc, true, false, func(s mem.Stream) {
				wl.Layout.IslandSweepSteady(wl.World, prof, s)
			})
			scaleSteady(pm, before, iters-1)
			// OS/kernel overhead of the worker threads.
			account(world.PhaseIslandProc, true, true, func(s mem.Stream) {
				archos.KernelStream(cfg.Threads, mem.ThreadBase, s)
			})
		}
		if want(world.PhaseCloth) && len(wl.Layout.ClothBase) > 0 {
			account(world.PhaseCloth, true, false, func(s mem.Stream) {
				wl.Layout.ClothSweep(wl.World, prof, s)
			})
			pm := &res.Phase[world.PhaseCloth]
			before := *pm
			account(world.PhaseCloth, true, false, func(s mem.Stream) {
				wl.Layout.ClothSweep(wl.World, prof, s)
			})
			scaleSteady(pm, before, iters-1)
			account(world.PhaseCloth, true, true, func(s mem.Stream) {
				archos.KernelStream(cfg.Threads, mem.ThreadBase, s)
			})
		}
	}
	if r := wl.obs.reg; r != nil {
		var l1h, l1m uint64
		for _, l1 := range h.L1s {
			l1h += l1.Stats.Hits
			l1m += l1.Stats.Misses
		}
		r.Add(wl.obs.l1Hits, int64(l1h))
		r.Add(wl.obs.l1Misses, int64(l1m))
		l2 := &h.L2.Stats
		r.Add(wl.obs.l2Hits, int64(l2.Hits))
		r.Add(wl.obs.l2Misses, int64(l2.Misses))
		r.Add(wl.obs.l2Writebacks, int64(l2.Writebacks))
		r.Add(wl.obs.l2Invals, int64(l2.Invalidations))
	}
	wl.obs.lane.Complete(wl.obs.memsimSpan, obsStart)
	return res
}

// scaleSteady extrapolates the last (steady) sweep's deltas by factor-1
// additional sweeps.
func scaleSteady(pm *PhaseMem, before PhaseMem, extra int) {
	if extra <= 0 {
		return
	}
	f := uint64(extra)
	pm.Accesses += (pm.Accesses - before.Accesses) * f
	pm.L1Misses += (pm.L1Misses - before.L1Misses) * f
	pm.L2Misses += (pm.L2Misses - before.L2Misses) * f
	pm.KernelL2Misses += (pm.KernelL2Misses - before.KernelL2Misses) * f
	pm.StallCycles += (pm.StallCycles - before.StallCycles) * float64(extra)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
