package parallax

import (
	"sync"
	"testing"

	"github.com/parallax-arch/parallax/internal/arch/cpu"
	"github.com/parallax-arch/parallax/internal/arch/link"
	"github.com/parallax-arch/parallax/internal/phys/workload"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// capture builds a scaled-down benchmark and captures its workload.
// Scale 0.25 keeps tests quick while leaving realistic structure.
func capture(t *testing.T, name string, scale float64) *Workload {
	t.Helper()
	b, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("benchmark %s not found", name)
	}
	return Capture(name, b.Build(scale), 1, 2)
}

func TestCaptureBasics(t *testing.T) {
	wl := capture(t, "Periodic", 0.2)
	if len(wl.Frame.Steps) != world.StepsPerFrame {
		t.Fatalf("frame steps = %d", len(wl.Frame.Steps))
	}
	if wl.Frame.Steps[0].PairList == nil {
		t.Fatal("detail recording missing")
	}
	instr := wl.FrameInstr()
	if instr.Total() <= 0 || instr.Serial() <= 0 {
		t.Fatalf("instruction counts empty: %+v", instr)
	}
	if instr.Serial() >= instr.Total()/2 {
		t.Errorf("serial fraction = %v of %v, expected the minority",
			instr.Serial(), instr.Total())
	}
}

func TestSerialFractionSmallButNonzero(t *testing.T) {
	// Paper: serial phases average ~9% of total execution.
	wl := capture(t, "Mix", 0.2)
	instr := wl.FrameInstr()
	frac := instr.Serial() / instr.Total()
	if frac <= 0.005 || frac >= 0.5 {
		t.Errorf("serial instruction fraction = %v, want small single digits", frac)
	}
}

func TestCGFrameTimeScalesWithCores(t *testing.T) {
	wl := capture(t, "Ragdoll", 0.25)
	t1 := wl.CGOnly(1, 1, false).Total()
	t2 := wl.CGOnly(2, 12, true).Total()
	t4 := wl.CGOnly(4, 12, true).Total()
	if !(t2 < t1 && t4 < t2) {
		t.Fatalf("scaling broken: 1P=%v 2P=%v 4P=%v", t1, t2, t4)
	}
	// Sub-linear: 4 cores should not be 4x.
	if t4 < t1/4 {
		t.Errorf("4-core scaling superlinear: %v vs %v", t4, t1)
	}
	// Serial time is independent of core count.
	s1 := wl.CGOnly(1, 12, true).Serial()
	s4 := wl.CGOnly(4, 12, true).Serial()
	if s4 < s1*0.9 || s4 > s1*1.1 {
		t.Errorf("serial time changed with cores: %v vs %v", s1, s4)
	}
}

func TestEightThreadsDegrade(t *testing.T) {
	// Fig 6b: the 8-thread configuration explodes kernel L2 misses.
	wl := capture(t, "Breakable", 0.2)
	m4 := wl.SimulateMemory(MemConfig{Cores: 4, L2MB: 12, Threads: 4, DedicatedPhase: -1})
	m8 := wl.SimulateMemory(MemConfig{Cores: 8, L2MB: 12, Threads: 8, DedicatedPhase: -1})
	_, k4 := m4.TotalL2Misses()
	_, k8 := m8.TotalL2Misses()
	if k8 < k4*3 {
		t.Errorf("kernel L2 misses at 8 threads (%d) should blow up vs 4 (%d)", k8, k4)
	}
}

func TestSerialPhasesImproveWithL2(t *testing.T) {
	// Fig 2b: the serial phases improve as the shared L2 grows, then
	// plateau.
	wl := capture(t, "Explosions", 0.25)
	prev := -1.0
	var times []float64
	for _, mb := range []int{1, 2, 4, 8, 16} {
		s := wl.CGOnly(1, mb, false).Serial()
		times = append(times, s)
		if prev > 0 && s > prev*1.05 {
			t.Errorf("serial time rose with bigger L2: %vMB -> %v (prev %v)", mb, s, prev)
		}
		prev = s
	}
	if times[len(times)-1] >= times[0] {
		t.Errorf("no improvement from 1MB to 16MB: %v", times)
	}
}

func TestDedicatedCachePlateaus(t *testing.T) {
	// Section 6.1: with dedicated per-phase cache state, the serial
	// phases' performance plateaus at a modest capacity (4MB in the
	// paper) — growing the dedicated cache further buys almost nothing,
	// and the plateau performance is at least as good as the
	// small-shared-cache configuration.
	wl := capture(t, "Explosions", 0.25)
	ded := func(mb int) float64 {
		return wl.DedicatedPhaseTime(world.PhaseBroad, 1, mb) +
			wl.DedicatedPhaseTime(world.PhaseIslandGen, 1, mb)
	}
	d4, d16 := ded(4), ded(16)
	if d4 > d16*1.10 {
		t.Errorf("dedicated serial time has not plateaued by 4MB: %v vs %v at 16MB", d4, d16)
	}
	shared1 := wl.CGOnly(1, 1, false).Serial()
	if d16 > shared1*1.05 {
		t.Errorf("dedicated plateau %v should not lose to a 1MB shared cache %v", d16, shared1)
	}
}

func TestPartitioningReducesSerialTime(t *testing.T) {
	wl := capture(t, "Explosions", 0.25)
	un := wl.CGOnly(4, 12, false)
	pt := wl.CGOnly(4, 12, true)
	if pt.Serial() > un.Serial()*1.02 {
		t.Errorf("partitioned serial %v should be <= unpartitioned %v",
			pt.Serial(), un.Serial())
	}
}

func TestFGCoreCountOrdering(t *testing.T) {
	// Fig 10b: desktop < console < shader core counts for the same
	// budget.
	// A small capture needs a proportionally small budget to exercise
	// the sizing; the full-scale suite uses the paper's 32%.
	wl := capture(t, "Mix", 0.25)
	const budget = 0.02
	d := wl.FGCoresFor30FPS(cpu.Desktop, budget, link.OnChip)
	c := wl.FGCoresFor30FPS(cpu.Console, budget, link.OnChip)
	s := wl.FGCoresFor30FPS(cpu.Shader, budget, link.OnChip)
	if !(d < c && c < s) {
		t.Fatalf("core counts not ordered: desktop %d, console %d, shader %d", d, c, s)
	}
	// Tighter budget needs more cores.
	d2 := wl.FGCoresFor30FPS(cpu.Desktop, budget/2, link.OnChip)
	if d2 <= d {
		t.Errorf("half budget (%d cores) should need more than %d", d2, d)
	}
}

func TestInterconnectOrdering(t *testing.T) {
	wl := capture(t, "Mix", 0.25)
	on := wl.FGTime(cpu.Shader, 150, link.OnChip, 4)
	htx := wl.FGTime(cpu.Shader, 150, link.HTX, 4)
	pcie := wl.FGTime(cpu.Shader, 150, link.PCIe, 4)
	if !(on.Total() <= htx.Total() && htx.Total() <= pcie.Total()) {
		t.Fatalf("interconnect ordering wrong: %v %v %v",
			on.Total(), htx.Total(), pcie.Total())
	}
	if on.BufferTasks < 1 || pcie.BufferTasks <= on.BufferTasks {
		t.Errorf("buffering: on-chip %d vs PCIe %d", on.BufferTasks, pcie.BufferTasks)
	}
}

func TestFilteringRecoversHiding(t *testing.T) {
	wl := capture(t, "Mix", 0.25)
	_, lost0 := wl.FilteredFGTime(cpu.Shader, 150, link.HTX, 0)
	_, lost50 := wl.FilteredFGTime(cpu.Shader, 150, link.HTX, 50)
	if lost0 != 0 {
		t.Errorf("no filter should lose no work: %v", lost0)
	}
	if lost50 <= 0 || lost50 >= 1 {
		t.Errorf("filtering at 50 tasks lost fraction = %v", lost50)
	}
}

func TestSystemEvaluate(t *testing.T) {
	wl := capture(t, "Mix", 0.25)
	ref := Reference()
	b := wl.Evaluate(ref)
	if b.Total() <= 0 {
		t.Fatal("zero frame time")
	}
	if b.AreaMM2 <= 0 {
		t.Fatal("zero area")
	}
	// Without the FG pool the same machine is slower.
	noFG := ref
	noFG.FGCount = 0
	b0 := wl.Evaluate(noFG)
	if b0.Total() <= b.Total() {
		t.Errorf("FG pool should speed up the frame: %v vs %v", b0.Total(), b.Total())
	}
}

func TestModel2TransferTiny(t *testing.T) {
	// Section 8.3: the example transfer costs ~0.00006s.
	got := PaperModel2Example()
	if got < 2e-5 || got > 2e-4 {
		t.Errorf("Model 2 example transfer = %v s, want ~6e-5", got)
	}
	wl := capture(t, "Deformable", 0.2)
	if tt := wl.Model2TransferTime(); tt <= 0 || tt > 1e-3 {
		t.Errorf("Model 2 transfer = %v", tt)
	}
}

func TestAvailableTasksPopulated(t *testing.T) {
	wl := capture(t, "Deformable", 0.2)
	pairs, dof, verts := wl.AvailableFGTasks()
	if pairs <= 0 || dof <= 0 || verts <= 0 {
		t.Errorf("tasks = %v %v %v", pairs, dof, verts)
	}
	if wl.LargestClothVerts() != 625 {
		t.Errorf("largest cloth = %d, want 625", wl.LargestClothVerts())
	}
}

func TestIdealVsSimulatedFGCores(t *testing.T) {
	wl := capture(t, "Mix", 0.25)
	ideal := wl.IdealFGCores(cpu.Shader, 0.32)
	sim := wl.FGCoresFor30FPS(cpu.Shader, 0.32, link.OnChip)
	if sim < ideal {
		t.Errorf("simulated count %d below ideal bound %d", sim, ideal)
	}
}

// TestKernelIPCKeyedByFullConfig: the memo must key on the whole
// cpu.Config value. Two distinct configurations sharing a name (or both
// zero-named, as custom sweeps produce) must not collide.
func TestKernelIPCKeyedByFullConfig(t *testing.T) {
	wl := capture(t, "Periodic", 0.15)
	narrow := cpu.Shader
	narrow.Name = ""
	wide := cpu.Desktop
	wide.Name = ""
	a := wl.KernelIPC(narrow)
	b := wl.KernelIPC(wide)
	if a == b {
		t.Fatalf("two zero-named configs returned identical IPC vectors %v; the cache is colliding by name", a)
	}
	// Same config again hits the memo and returns identical values.
	if c := wl.KernelIPC(narrow); c != a {
		t.Errorf("memoized lookup changed: %v vs %v", c, a)
	}
}

// TestKernelIPCConcurrent hammers the memo from many goroutines (run
// with -race to catch unsynchronized access) and checks all callers see
// the same singleflighted result.
func TestKernelIPCConcurrent(t *testing.T) {
	wl := capture(t, "Periodic", 0.15)
	want := wl.KernelIPC(cpu.Console)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, cfg := range []cpu.Config{cpu.Console, cpu.Shader, cpu.Desktop} {
				v := wl.KernelIPC(cfg)
				if cfg == cpu.Console && v != want {
					errs <- "concurrent KernelIPC returned a different vector"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
