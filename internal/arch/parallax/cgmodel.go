package parallax

import (
	"github.com/parallax-arch/parallax/internal/arch/cpu"
	"github.com/parallax-arch/parallax/internal/arch/kernels"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// ClockHz is the common 2GHz clock (Table 5).
const ClockHz = 2e9

// FrameBudget is one 30 FPS frame in seconds.
const FrameBudget = 1.0 / 30.0

// CGResult is the frame-time breakdown of a conventional CMP (CG cores
// + shared/partitioned L2) running the whole workload — the
// configuration space of section 6.
type CGResult struct {
	// PhaseTime is seconds per frame per phase.
	PhaseTime [world.NumPhases]float64
	// Mem is the underlying cache simulation.
	Mem MemResult
	// Instr is the frame's per-phase instruction counts.
	Instr kernels.PhaseInstr
}

// Total returns the frame time.
func (r CGResult) Total() float64 {
	t := 0.0
	for _, v := range r.PhaseTime {
		t += v
	}
	return t
}

// Serial returns the serial phases' time.
func (r CGResult) Serial() float64 {
	return r.PhaseTime[world.PhaseBroad] + r.PhaseTime[world.PhaseIslandGen]
}

// FPS returns the achieved frame rate.
func (r CGResult) FPS() float64 {
	t := r.Total()
	if t <= 0 {
		return 0
	}
	return 1 / t
}

// syncCyclesPerStep is the per-phase barrier/queue overhead per worker
// thread per step (thread wake-up, work-queue locking).
const syncCyclesPerStep = 6000

// MemMLP is the memory-level parallelism of the out-of-order CG core:
// its 32-entry window keeps several misses in flight, so the effective
// stall per miss is the full latency divided by this overlap factor.
const MemMLP = 4.0

// CGFrameTime evaluates the frame on a conventional CG-only machine.
func (wl *Workload) CGFrameTime(cfg MemConfig) CGResult {
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	if cfg.Threads < 1 {
		cfg.Threads = cfg.Cores
	}
	var res CGResult
	res.Instr = wl.FrameInstr()
	res.Mem = wl.SimulateMemory(cfg)
	ipcs := wl.KernelIPC(cpu.CGCore)
	steps := float64(len(wl.Frame.Steps))

	// Coarse-grain parallel critical-path bounds (section 6.2: "CG
	// performance scaling is bounded by the largest island and cloth").
	pairs, islandDOF, clothVerts := wl.AvailableFGTasks()
	largestIsland := float64(wl.LargestIslandDOF())
	largestCloth := float64(wl.LargestClothVerts())

	for ph := world.Phase(0); ph < world.NumPhases; ph++ {
		ipc := ipcs[PhaseKernel(ph)]
		if ipc <= 0 {
			continue
		}
		compute := res.Instr[ph] / ipc // cycles
		stall := res.Mem.Phase[ph].StallCycles / MemMLP
		t := float64(cfg.Threads)

		var cycles float64
		switch {
		case ph.Serial():
			cycles = compute + stall
		default:
			// Parallelizable: the phase divides across threads but no
			// better than its largest single task chain allows.
			share := 1 / t
			switch ph {
			case world.PhaseIslandProc:
				if islandDOF > 0 {
					if s := largestIsland / islandDOF; s > share {
						share = s
					}
				}
			case world.PhaseCloth:
				if clothVerts > 0 {
					if s := largestCloth / clothVerts; s > share {
						share = s
					}
				}
			case world.PhaseNarrow:
				if pairs > 0 {
					if s := 1 / pairs; s > share {
						share = s
					}
				}
			}
			cycles = compute*share + stall/t
			if t > 1 {
				cycles += syncCyclesPerStep * t * steps
			}
		}
		res.PhaseTime[ph] = cycles / ClockHz
	}
	return res
}

// CGOnly is the convenience wrapper for section 6's experiments: cores
// CG cores, l2MB of L2, optional partitioning, threads = cores.
func (wl *Workload) CGOnly(cores, l2MB int, partitioned bool) CGResult {
	return wl.CGFrameTime(MemConfig{
		Cores: cores, L2MB: l2MB, Partitioned: partitioned, Threads: cores,
		DedicatedPhase: -1,
	})
}

// DedicatedPhaseTime evaluates one phase with the entire L2 dedicated to
// it (Figs 3-5: per-phase working-set analysis via saved cache state).
func (wl *Workload) DedicatedPhaseTime(ph world.Phase, cores, l2MB int) float64 {
	cfg := MemConfig{Cores: cores, L2MB: l2MB, Threads: cores, DedicatedPhase: int(ph)}
	m := wl.SimulateMemory(cfg)
	instr := wl.FrameInstr()
	ipc := wl.KernelIPC(cpu.CGCore)[PhaseKernel(ph)]
	compute := instr[ph] / ipc
	stall := m.Phase[ph].StallCycles / MemMLP
	t := float64(cores)
	if ph.Serial() {
		return (compute + stall) / ClockHz
	}
	return (compute/t + stall/t) / ClockHz
}

// IdealCGLimit returns the phase times under the idealized assumptions
// of Fig 7a: no OS overhead, no cache contention, unlimited cores and
// ideal load balancing — only the largest island / cloth chain bounds
// Island Processing and Cloth.
func (wl *Workload) IdealCGLimit() (islandProc, clothTime float64) {
	instr := wl.FrameInstr()
	ipcs := wl.KernelIPC(cpu.CGCore)
	_, islandDOF, clothVerts := wl.AvailableFGTasks()
	if islandDOF > 0 {
		share := float64(wl.LargestIslandDOF()) / islandDOF
		islandProc = instr[world.PhaseIslandProc] / ipcs[kernels.Island] * share / ClockHz
	}
	if clothVerts > 0 {
		share := float64(wl.LargestClothVerts()) / clothVerts
		clothTime = instr[world.PhaseCloth] / ipcs[kernels.Cloth] * share / ClockHz
	}
	return islandProc, clothTime
}
