package parallax

import (
	"github.com/parallax-arch/parallax/internal/arch/area"
	"github.com/parallax-arch/parallax/internal/arch/cpu"
	"github.com/parallax-arch/parallax/internal/arch/kernels"
	"github.com/parallax-arch/parallax/internal/arch/link"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// System is a full ParallAX configuration (Fig 8). Model 1 places the
// FG pool on the same die as the CG cores (on-chip mesh); Model 2 puts
// the whole physics pipeline on a discrete accelerator reached over
// PCIe, with dedicated physics memory.
type System struct {
	// CGCores and L2MB configure the coarse-grain side. The 12MB
	// partitioned configuration is the paper's choice.
	CGCores     int
	L2MB        int
	Partitioned bool
	// FG configures the fine-grain pool.
	FGType  cpu.Config
	FGCount int
	// Link connects CG to FG cores.
	Link link.Kind
	// Model2 adds the per-frame world-state transfer over PCIe
	// (section 8.3): positions/orientations in, results out.
	Model2 bool
}

// Reference returns the paper's proposed configuration: 4 CG cores,
// 12MB partitioned L2, 150 shader-class FG cores on-chip.
func Reference() System {
	return System{
		CGCores: 4, L2MB: 12, Partitioned: true,
		FGType: cpu.Shader, FGCount: 150, Link: link.OnChip,
	}
}

// Breakdown is a full-system frame evaluation.
type Breakdown struct {
	// SerialTime covers Broadphase + Island Creation on one CG core.
	SerialTime float64
	// CGParallelTime is the CG residue of the parallel phases (task
	// distribution, small islands, non-farmable work).
	CGParallelTime float64
	// FGTime is the fine-grain pool's compute + exposed communication.
	FGTime float64
	// Model2Transfer is the per-frame state shuttle for Model 2.
	Model2Transfer float64
	// AreaMM2 is the configuration's estimated die area.
	AreaMM2 float64
	FG      FGResult
	CG      CGResult
}

// Total returns the frame time.
func (b Breakdown) Total() float64 {
	return b.SerialTime + b.CGParallelTime + b.FGTime + b.Model2Transfer
}

// FPS returns the achieved frame rate.
func (b Breakdown) FPS() float64 {
	t := b.Total()
	if t <= 0 {
		return 0
	}
	return 1 / t
}

// MeetsRealTime reports whether the configuration sustains 30 FPS.
func (b Breakdown) MeetsRealTime() bool { return b.Total() <= FrameBudget }

// Evaluate runs the full-system model for one workload.
func (wl *Workload) Evaluate(sys System) Breakdown {
	var b Breakdown
	cg := wl.CGFrameTime(MemConfig{
		Cores: sys.CGCores, L2MB: sys.L2MB, Partitioned: sys.Partitioned,
		Threads: sys.CGCores, DedicatedPhase: -1,
	})
	b.CG = cg
	b.SerialTime = cg.Serial()

	// CG residue of the parallel phases: the non-farmable fraction runs
	// on the CG cores exactly as in the CG-only model.
	for _, ph := range fgPhases {
		b.CGParallelTime += cg.PhaseTime[ph] * (1 - kernels.FGShare(ph))
	}

	if sys.FGCount > 0 {
		fg := wl.FGTime(sys.FGType, sys.FGCount, sys.Link, sys.CGCores)
		b.FG = fg
		b.FGTime = fg.Total()
	} else {
		// No FG pool: the farmable work also runs on CG cores.
		for _, ph := range fgPhases {
			b.CGParallelTime += cg.PhaseTime[ph] * kernels.FGShare(ph)
		}
	}

	if sys.Model2 {
		b.Model2Transfer = wl.Model2TransferTime()
	}
	b.AreaMM2 = area.SystemMM2(sys.CGCores, sys.L2MB, sys.FGType, sys.FGCount)
	return b
}

// Model2TransferTime is the per-frame communication of the discrete
// accelerator (section 8.3): "only the position and orientation (60B)
// of each object, position (12B) of each particle, and position (12B)
// of mesh vertices are communicated at the beginning and end of a
// frame."
func (wl *Workload) Model2TransferTime() float64 {
	objects := 0
	for _, bd := range wl.World.Bodies {
		if bd.Enabled && bd.InvMass > 0 {
			objects++
		}
	}
	verts := 0
	for _, c := range wl.World.Cloths {
		verts += c.NumVertices()
	}
	bytes := objects*60 + verts*12
	pcie := link.For(link.PCIe)
	return pcie.TransferTime(bytes) * 2 // in at frame start, out at end
}

// PaperModel2Example reproduces the section 8.3 sanity number: 1,000
// objects, 10,000 particles and 5,000 mesh vertices over PCIe.
func PaperModel2Example() float64 {
	bytes := 1000*60 + 10000*12 + 5000*12
	return link.For(link.PCIe).TransferTime(bytes) * 2
}

// phase alias re-exported for experiment code readability.
type Phase = world.Phase
