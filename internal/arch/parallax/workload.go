// Package parallax assembles the full ParallAX system model (paper
// sections 7-8): coarse-grain cores with an application-aware
// partitioned L2 execute the serial and coarse-grain-parallel phases of
// the physics pipeline, while a pool of fine-grain cores — flexibly
// arbitrated among the CG cores and connected on-chip or over
// HTX/PCIe — executes the fine-grain kernels. The model is trace-driven:
// the real Go physics engine runs each benchmark and the captured
// per-step profiles (work counters, pair lists, island structure) drive
// instruction-count, cache, core-timing and interconnect models.
package parallax

import (
	"sort"
	"sync"

	"github.com/parallax-arch/parallax/internal/arch/cpu"
	"github.com/parallax-arch/parallax/internal/arch/kernels"
	"github.com/parallax-arch/parallax/internal/arch/mem"
	"github.com/parallax-arch/parallax/internal/obs"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// Workload is one captured benchmark: the simulated world (for memory
// layout) plus the worst measured frame's step profiles (paper section
// 5: frames 5-7 are executed and the worst-case frame is chosen, after
// warm-up).
type Workload struct {
	Name   string
	World  *world.World
	Frame  world.FrameProfile
	Layout *mem.Layout

	// ipcCache memoizes KernelIPC by the full core configuration
	// (cpu.Config is a comparable value type), not just its name: two
	// distinct configs sharing a name — or both zero-named, as in
	// custom sweeps — must not collide. Guarded by ipcMu with
	// singleflight semantics for concurrent evaluation.
	ipcMu    sync.Mutex
	ipcCache map[cpu.Config]*ipcOnce

	// obs holds the workload's observability hooks (SetObs); zero when
	// observability is off.
	obs wobs
}

// wobs carries the workload's tracer lane and pre-registered metric IDs
// for the architecture models. Model evaluations run concurrently from
// the harness worker pool, so spans go to a shared lane as Complete
// records (B/E nesting cannot be guaranteed across goroutines) and all
// metrics are commutative integer adds.
type wobs struct {
	tr   *obs.Tracer
	reg  *obs.Registry
	lane *obs.Lane

	memsimSpan obs.SpanID
	fgSpan     obs.SpanID

	l1Hits, l1Misses          obs.CounterID
	l2Hits, l2Misses          obs.CounterID
	l2Writebacks, l2Invals    obs.CounterID
	linkComputeNs, linkCommNs obs.CounterID
}

// SetObs attaches an observability sink to the workload's architecture
// models: SimulateMemory records the cache hierarchy's hit/miss/
// writeback/invalidation totals and a complete "memsim" span on the
// lane named label; the FG interconnect model records its per-call
// compute and exposed-communication time (in integer nanoseconds, so
// the totals stay deterministic) and a "fg-model" span. Either argument
// may be nil.
func (wl *Workload) SetObs(tr *obs.Tracer, reg *obs.Registry, label string) {
	wl.obs = wobs{tr: tr, reg: reg}
	if tr != nil {
		wl.obs.lane = tr.Lane(label, obs.DefaultLaneEvents)
		wl.obs.memsimSpan = tr.Span("memsim")
		wl.obs.fgSpan = tr.Span("fg-model")
	}
	if reg != nil {
		wl.obs.l1Hits = reg.Counter("arch/cache/l1_hits")
		wl.obs.l1Misses = reg.Counter("arch/cache/l1_misses")
		wl.obs.l2Hits = reg.Counter("arch/cache/l2_hits")
		wl.obs.l2Misses = reg.Counter("arch/cache/l2_misses")
		wl.obs.l2Writebacks = reg.Counter("arch/cache/l2_writebacks")
		wl.obs.l2Invals = reg.Counter("arch/cache/l2_invalidations")
		wl.obs.linkComputeNs = reg.Counter("arch/link/compute_ns")
		wl.obs.linkCommNs = reg.Counter("arch/link/comm_ns")
	}
}

type ipcOnce struct {
	once sync.Once
	v    [kernels.NumAllKernels]float64
}

// Capture runs the benchmark world for warmFrames unrecorded frames,
// then measureFrames recorded frames, keeping the worst (most
// instructions) as the representative frame.
func Capture(name string, w *world.World, warmFrames, measureFrames int) *Workload {
	for i := 0; i < warmFrames; i++ {
		w.StepFrame()
	}
	w.RecordDetail = true
	var worst world.FrameProfile
	worstInstr := -1.0
	for i := 0; i < measureFrames; i++ {
		f := w.StepFrame()
		t := 0.0
		for si := range f.Steps {
			t += kernels.DefaultCost.InstrCounts(&f.Steps[si]).Total()
		}
		if t > worstInstr {
			worstInstr = t
			worst = f
		}
	}
	return &Workload{
		Name:   name,
		World:  w,
		Frame:  worst,
		Layout: mem.NewLayout(w),
	}
}

// FrameInstr returns the frame's per-phase dynamic instruction counts.
func (wl *Workload) FrameInstr() kernels.PhaseInstr {
	return kernels.DefaultCost.FrameInstr(&wl.Frame)
}

// KernelIPC returns (and caches) each kernel's IPC on the given core
// configuration — the three FG kernels plus the two serial-phase code
// models — measured by running synthetic kernel traces through the cpu
// timing model. Safe for concurrent use: each configuration's traces
// run exactly once even when requested from many goroutines.
func (wl *Workload) KernelIPC(cfg cpu.Config) [kernels.NumAllKernels]float64 {
	wl.ipcMu.Lock()
	if wl.ipcCache == nil {
		wl.ipcCache = make(map[cpu.Config]*ipcOnce)
	}
	e, ok := wl.ipcCache[cfg]
	if !ok {
		e = &ipcOnce{}
		wl.ipcCache[cfg] = e
	}
	wl.ipcMu.Unlock()
	e.once.Do(func() {
		for _, k := range []kernels.Kernel{
			kernels.Narrow, kernels.Island, kernels.Cloth,
			kernels.Broad, kernels.IslandGen,
		} {
			e.v[k] = cpu.New(cfg).Run(k.Trace(300, int64(k)+11)).IPC()
		}
	})
	return e.v
}

// PhaseKernel maps an engine phase to the kernel that models its code:
// the FG kernels for the parallel phases, the sweep/union-find models
// for the serial ones.
func PhaseKernel(ph world.Phase) kernels.Kernel {
	switch ph {
	case world.PhaseIslandProc:
		return kernels.Island
	case world.PhaseCloth:
		return kernels.Cloth
	case world.PhaseBroad:
		return kernels.Broad
	case world.PhaseIslandGen:
		return kernels.IslandGen
	default:
		return kernels.Narrow
	}
}

// AvailableFGTasks returns the frame's average per-step fine-grain task
// counts: object-pairs (Narrowphase), summed island DOFs (Island
// Processing) and cloth vertices (Cloth) — the data behind Fig 11.
func (wl *Workload) AvailableFGTasks() (pairs, islandDOF, clothVerts float64) {
	n := float64(len(wl.Frame.Steps))
	if n == 0 {
		return 0, 0, 0
	}
	for i := range wl.Frame.Steps {
		s := &wl.Frame.Steps[i]
		pairs += float64(s.Pairs)
		for _, is := range s.Islands {
			islandDOF += float64(is.DOF)
		}
		for _, v := range s.ClothVerts {
			clothVerts += float64(v)
		}
	}
	return pairs / n, islandDOF / n, clothVerts / n
}

// LargestIslandDOF returns the frame's maximum island size in DOF — the
// bound on coarse-grain scaling of Island Processing.
func (wl *Workload) LargestIslandDOF() int {
	m := 0
	for i := range wl.Frame.Steps {
		for _, is := range wl.Frame.Steps[i].Islands {
			if is.DOF > m {
				m = is.DOF
			}
		}
	}
	return m
}

// LargestClothVerts returns the biggest cloth's vertex count.
func (wl *Workload) LargestClothVerts() int {
	m := 0
	for i := range wl.Frame.Steps {
		for _, v := range wl.Frame.Steps[i].ClothVerts {
			if v > m {
				m = v
			}
		}
	}
	return m
}

// IslandDOFsSorted returns all per-step island DOF counts, descending,
// for the filtering analysis of section 8.2.2.
func (wl *Workload) IslandDOFsSorted() []int {
	var out []int
	for i := range wl.Frame.Steps {
		out = wl.Frame.Steps[i].AppendIslandDOFs(out)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
