package link

import "testing"

func TestOrdering(t *testing.T) {
	// Latency and inverse bandwidth both order on-chip < HTX < PCIe.
	on, htx, pcie := For(OnChip), For(HTX), For(PCIe)
	if !(on.BaseLatency < htx.BaseLatency && htx.BaseLatency < pcie.BaseLatency) {
		t.Error("base latency ordering wrong")
	}
	if !(pcie.BandwidthBytes < htx.BandwidthBytes) {
		t.Error("PCIe should have less bandwidth than HTX")
	}
	// Transfer of an island task's data (604B in, 128B out).
	tOn := on.RoundTrip(604, 128)
	tHTX := htx.RoundTrip(604, 128)
	tPCIe := pcie.RoundTrip(604, 128)
	if !(tOn < tHTX && tHTX < tPCIe) {
		t.Errorf("round trips not ordered: %v %v %v", tOn, tHTX, tPCIe)
	}
}

func TestBandwidthNumbers(t *testing.T) {
	if For(HTX).BandwidthBytes != 20.8e9 {
		t.Error("HTX bandwidth must be 20.8 GB/s (paper)")
	}
	if For(PCIe).BandwidthBytes != 4e9 {
		t.Error("PCIe bandwidth must be 4 GB/s (paper)")
	}
}

func TestTasksToHideShape(t *testing.T) {
	// An island row task computes for ~60ns (177 instrs at ~1.5 IPC,
	// 2GHz). The buffering needed to hide latency must grow sharply from
	// on-chip to PCIe (Table 7's shape).
	const taskSec = 60e-9
	nOn := For(OnChip).TasksToHide(taskSec, 604, 128)
	nHTX := For(HTX).TasksToHide(taskSec, 604, 128)
	nPCIe := For(PCIe).TasksToHide(taskSec, 604, 128)
	if !(nOn < nHTX && nHTX < nPCIe) {
		t.Fatalf("tasks to hide not ordered: %d %d %d", nOn, nHTX, nPCIe)
	}
	if nPCIe < 10*nOn {
		t.Errorf("PCIe buffering (%d) should dwarf on-chip (%d)", nPCIe, nOn)
	}
	// A long narrow-phase task (~3us) hides on-chip latency with a
	// couple of buffered tasks.
	if n := For(OnChip).TasksToHide(3e-6, 1668, 100); n > 2 {
		t.Errorf("narrowphase on-chip buffering = %d, want <= 2", n)
	}
}

func TestDegenerate(t *testing.T) {
	if n := For(OnChip).TasksToHide(0, 100, 100); n != 1 {
		t.Errorf("zero compute time should clamp to 1, got %d", n)
	}
	if BufferBytes(3, 700) != 2100 {
		t.Error("BufferBytes arithmetic")
	}
}

func TestTransferTimeMonotone(t *testing.T) {
	c := For(PCIe)
	if c.TransferTime(100) >= c.TransferTime(10000) {
		t.Error("larger payloads must take longer")
	}
	if c.TransferTime(0) < c.BaseLatency {
		t.Error("transfer cannot beat base latency")
	}
}
