// Package link models the off-chip interconnects evaluated for CG-to-FG
// communication (paper sections 5.1, 7.2, 8.2.2): PCI Express, the
// system interconnect used by GPUs and PhysX (4 GB/s half duplex), and
// HyperTransport (HTX), the coprocessor interconnect used by AMD
// (20.8 GB/s half duplex). The on-chip mesh is exposed through the same
// interface for side-by-side comparison.
package link

// Kind selects an interconnect class.
type Kind int

// The three interconnect classes compared in Table 7.
const (
	OnChip Kind = iota
	HTX
	PCIe
)

var kindNames = [...]string{"On-chip", "HTX", "PCIe"}

func (k Kind) String() string { return kindNames[k] }

// Config describes one interconnect.
type Config struct {
	Kind Kind
	// BandwidthBytes is the half-duplex bandwidth in bytes/second.
	BandwidthBytes float64
	// BaseLatency is the one-way transfer initiation latency in seconds
	// (protocol + PHY + controller).
	BaseLatency float64
	// PerPacketOverheadBytes models header/CRC framing per transfer.
	PerPacketOverheadBytes int
}

// Configs returns the evaluated interconnect, with the on-chip mesh
// represented by avg-hop latency over a mesh of the given node count.
func For(k Kind) Config {
	// Base latencies include the software dispatch cost visible to a
	// task round trip (control packet assembly, data packing on the CG
	// core, arbiter handshake) on top of the raw wire/protocol latency.
	switch k {
	case HTX:
		// 20.8 GB/s half duplex; coprocessor-attach transaction ~400 ns.
		return Config{Kind: HTX, BandwidthBytes: 20.8e9, BaseLatency: 400e-9, PerPacketOverheadBytes: 16}
	case PCIe:
		// 4 GB/s half duplex; system-bus transaction ~2.2 us one way.
		return Config{Kind: PCIe, BandwidthBytes: 4e9, BaseLatency: 2.2e-6, PerPacketOverheadBytes: 24}
	default:
		// On-chip mesh: ~12 hops x 6 cycles at 2GHz plus dispatch
		// software ~ 120 ns; 7B payload per flit per cycle ~ 14 GB/s.
		return Config{Kind: OnChip, BandwidthBytes: 14e9, BaseLatency: 120e-9, PerPacketOverheadBytes: 1}
	}
}

// TransferTime returns the one-way time to move payloadBytes.
func (c Config) TransferTime(payloadBytes int) float64 {
	total := float64(payloadBytes + c.PerPacketOverheadBytes)
	return c.BaseLatency + total/c.BandwidthBytes
}

// RoundTrip returns the request/response time for a task dispatch
// carrying inBytes out and outBytes back.
func (c Config) RoundTrip(inBytes, outBytes int) float64 {
	return c.TransferTime(inBytes) + c.TransferTime(outBytes)
}

// TasksToHide returns how many buffered tasks one FG core needs so that
// task communication (delivery of the next task's data) fully overlaps
// with computation: the ceiling of communication time per task over
// compute time per task, and at least 1.
//
// This is the quantity Table 7 reports (multiplied by the number of FG
// cores in the pool).
func (c Config) TasksToHide(taskComputeSec float64, inBytes, outBytes int) int {
	if taskComputeSec <= 0 {
		return 1
	}
	comm := c.RoundTrip(inBytes, outBytes)
	n := int(comm/taskComputeSec) + 1
	if n < 1 {
		n = 1
	}
	return n
}

// BufferBytes returns the local-store bytes needed to hold n buffered
// tasks' inputs (the paper finds 2KB of local storage suffices in all
// cases for the minimum buffering).
func BufferBytes(n, inBytes int) int { return n * inBytes }
