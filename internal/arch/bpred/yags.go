// Package bpred implements the YAGS branch predictor (Eden & Mudge)
// plus a return-address stack, as configured throughout the paper: a
// 17KB YAGS with a 64-entry RAS for the coarse-grain and desktop cores,
// 1KB for GPU-shader cores, and 64KB for the limit-study core.
package bpred

// counter is a 2-bit saturating counter.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// cacheEntry is one tagged direction-cache entry.
type cacheEntry struct {
	tag   uint16
	ctr   counter
	valid bool
}

// YAGS predicts branch direction with a choice PHT plus two small
// tagged caches holding the exceptions: the T-cache remembers
// not-taken-biased branches that the choice says are taken, and vice
// versa for the NT-cache.
type YAGS struct {
	choice []counter
	tcache []cacheEntry
	ncache []cacheEntry
	// hist is the global history register.
	hist uint64

	Lookups     uint64
	Mispredicts uint64
}

// NewYAGS builds a predictor of approximately sizeKB kilobytes: the
// budget is split between the choice PHT (2 bits/entry) and the two
// direction caches (2-bit counter + 8-bit tag each).
func NewYAGS(sizeKB int) *YAGS {
	if sizeKB < 1 {
		sizeKB = 1
	}
	bits := sizeKB * 1024 * 8
	// Half the bits to the choice PHT, a quarter to each cache.
	choiceEntries := nextPow2(bits / 2 / 2)
	cacheEntries := nextPow2(bits / 4 / 10)
	return &YAGS{
		choice: make([]counter, choiceEntries),
		tcache: make([]cacheEntry, cacheEntries),
		ncache: make([]cacheEntry, cacheEntries),
	}
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	if p > n && p > 1 {
		p >>= 1
	}
	if p < 16 {
		p = 16
	}
	return p
}

func (y *YAGS) choiceIndex(pc uint64) int {
	return int(pc>>2) & (len(y.choice) - 1)
}

func (y *YAGS) cacheIndex(pc uint64) int {
	return int((pc>>2)^y.hist) & (len(y.tcache) - 1)
}

func tagOf(pc uint64) uint16 { return uint16(pc>>2) & 0xFF }

// Predict returns the predicted direction for the branch at pc without
// training or counting; pair it with Update, which does both.
func (y *YAGS) Predict(pc uint64) bool {
	return y.predictQuiet(pc)
}

// Update trains the predictor with the actual outcome, counts the
// lookup, and records whether the prediction was wrong. It returns true
// on mispredict.
func (y *YAGS) Update(pc uint64, taken bool) bool {
	y.Lookups++
	pred := y.predictQuiet(pc)
	mis := pred != taken
	if mis {
		y.Mispredicts++
	}

	ci := y.choiceIndex(pc)
	bias := y.choice[ci].taken()
	ii := y.cacheIndex(pc)
	tag := tagOf(pc)
	if bias {
		e := &y.ncache[ii]
		hit := e.valid && e.tag == tag
		if hit {
			e.ctr = e.ctr.update(taken)
		} else if !taken {
			// Allocate an exception entry.
			*e = cacheEntry{tag: tag, ctr: 1, valid: true}
		}
		// The choice PHT trains unless the exception cache was correct
		// while the choice was wrong (standard YAGS partial update).
		if !(hit && e.ctr.taken() == taken && bias != taken) {
			y.choice[ci] = y.choice[ci].update(taken)
		}
	} else {
		e := &y.tcache[ii]
		hit := e.valid && e.tag == tag
		if hit {
			e.ctr = e.ctr.update(taken)
		} else if taken {
			*e = cacheEntry{tag: tag, ctr: 2, valid: true}
		}
		if !(hit && e.ctr.taken() == taken && bias != taken) {
			y.choice[ci] = y.choice[ci].update(taken)
		}
	}

	y.hist = y.hist<<1 | b2u(taken)
	return mis
}

func (y *YAGS) predictQuiet(pc uint64) bool {
	ci := y.choiceIndex(pc)
	bias := y.choice[ci].taken()
	ii := y.cacheIndex(pc)
	tag := tagOf(pc)
	if bias {
		if e := y.ncache[ii]; e.valid && e.tag == tag {
			return e.ctr.taken()
		}
		return true
	}
	if e := y.tcache[ii]; e.valid && e.tag == tag {
		return e.ctr.taken()
	}
	return false
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// MispredictRate returns mispredicts / lookups over the predictor's
// lifetime.
func (y *YAGS) MispredictRate() float64 {
	if y.Lookups == 0 {
		return 0
	}
	return float64(y.Mispredicts) / float64(y.Lookups)
}

// RAS is a fixed-depth return address stack (64 entries in Table 5).
type RAS struct {
	stack []uint64
	top   int
	depth int

	Pushes, Pops, Misses uint64
}

// NewRAS builds a return-address stack of the given depth.
func NewRAS(depth int) *RAS {
	return &RAS{stack: make([]uint64, depth), depth: depth}
}

// Push records a return address at a call.
func (r *RAS) Push(addr uint64) {
	r.stack[r.top%r.depth] = addr
	r.top++
	r.Pushes++
}

// Pop predicts the target of a return; ok is false when the stack has
// underflowed (a guaranteed mispredict).
func (r *RAS) Pop() (uint64, bool) {
	r.Pops++
	if r.top == 0 {
		r.Misses++
		return 0, false
	}
	r.top--
	return r.stack[r.top%r.depth], true
}
