package bpred

import (
	"math/rand"
	"testing"
)

func TestAlwaysTakenLearned(t *testing.T) {
	y := NewYAGS(17)
	pc := uint64(0x4000)
	for i := 0; i < 100; i++ {
		y.Update(pc, true)
	}
	if !y.Predict(pc) {
		t.Error("always-taken branch predicted not-taken after training")
	}
	// The tail mispredict rate must be ~0.
	y.Mispredicts, y.Lookups = 0, 0
	for i := 0; i < 1000; i++ {
		y.Update(pc, true)
	}
	if y.MispredictRate() > 0.01 {
		t.Errorf("trained always-taken mispredict rate = %v", y.MispredictRate())
	}
}

func TestBiasedBranchLowMispredicts(t *testing.T) {
	y := NewYAGS(17)
	r := rand.New(rand.NewSource(7))
	pc := uint64(0x1234)
	for i := 0; i < 2000; i++ {
		y.Update(pc, r.Float64() < 0.95)
	}
	y.Mispredicts, y.Lookups = 0, 0
	for i := 0; i < 10000; i++ {
		y.Update(pc, r.Float64() < 0.95)
	}
	if rate := y.MispredictRate(); rate > 0.10 {
		t.Errorf("95%%-biased branch mispredict rate = %v, want <= 0.10", rate)
	}
}

func TestRandomBranchHighMispredicts(t *testing.T) {
	y := NewYAGS(17)
	r := rand.New(rand.NewSource(8))
	pc := uint64(0x5678)
	for i := 0; i < 20000; i++ {
		y.Update(pc, r.Float64() < 0.5)
	}
	if rate := y.MispredictRate(); rate < 0.30 {
		t.Errorf("random branch mispredict rate = %v, want >= 0.30", rate)
	}
}

func TestPatternLearnedViaHistory(t *testing.T) {
	// A short repeating pattern (TTN TTN ...) should be learned through
	// the history-indexed exception caches.
	y := NewYAGS(17)
	pattern := []bool{true, true, false}
	for i := 0; i < 3000; i++ {
		y.Update(0x9999, pattern[i%3])
	}
	y.Mispredicts, y.Lookups = 0, 0
	for i := 0; i < 3000; i++ {
		y.Update(0x9999, pattern[i%3])
	}
	if rate := y.MispredictRate(); rate > 0.15 {
		t.Errorf("periodic pattern mispredict rate = %v, want <= 0.15", rate)
	}
}

func TestBiggerPredictorNoWorse(t *testing.T) {
	// Many branches with mixed biases: a 17KB predictor should not be
	// (much) worse than a 1KB one under aliasing pressure.
	run := func(kb int) float64 {
		y := NewYAGS(kb)
		r := rand.New(rand.NewSource(9))
		biases := make([]float64, 512)
		for i := range biases {
			biases[i] = 0.1 + 0.8*r.Float64()
		}
		for i := 0; i < 200000; i++ {
			b := r.Intn(len(biases))
			pc := uint64(b * 4096)
			y.Update(pc, r.Float64() < biases[b])
		}
		return y.MispredictRate()
	}
	small := run(1)
	big := run(17)
	if big > small+0.02 {
		t.Errorf("17KB predictor (%v) worse than 1KB (%v)", big, small)
	}
}

func TestRAS(t *testing.T) {
	r := NewRAS(4)
	r.Push(100)
	r.Push(200)
	if v, ok := r.Pop(); !ok || v != 200 {
		t.Errorf("Pop = %v,%v", v, ok)
	}
	if v, ok := r.Pop(); !ok || v != 100 {
		t.Errorf("Pop = %v,%v", v, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Error("underflow should report miss")
	}
	if r.Misses != 1 {
		t.Errorf("misses = %d", r.Misses)
	}
	// Overflow wraps: deepest entries are lost, shallow ones survive.
	for i := 0; i < 6; i++ {
		r.Push(uint64(1000 + i))
	}
	if v, ok := r.Pop(); !ok || v != 1005 {
		t.Errorf("after overflow Pop = %v,%v, want 1005", v, ok)
	}
}

func TestSizesConstructable(t *testing.T) {
	for _, kb := range []int{1, 17, 64} {
		y := NewYAGS(kb)
		if len(y.choice) == 0 || len(y.tcache) == 0 {
			t.Errorf("%dKB predictor has empty tables", kb)
		}
		y.Update(0x10, true)
		_ = y.Predict(0x10)
	}
}
