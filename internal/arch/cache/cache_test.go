package cache

import (
	"math/rand"
	"testing"
)

func TestBasicHitMiss(t *testing.T) {
	c := New(Config{SizeBytes: 4096, Ways: 2, BlockBytes: 64, HitLatency: 1})
	if c.Access(0, false, 0, -1) {
		t.Error("first access should miss")
	}
	if !c.Access(0, false, 0, -1) {
		t.Error("second access should hit")
	}
	if !c.Access(63, false, 0, -1) {
		t.Error("same block should hit")
	}
	if c.Access(64, false, 0, -1) {
		t.Error("next block should miss")
	}
	st := c.Stats
	if st.Hits != 2 || st.Misses != 2 || st.ColdMisses != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache with 1 set: 2 blocks capacity.
	c := New(Config{SizeBytes: 128, Ways: 2, BlockBytes: 64, HitLatency: 1})
	c.Access(0, false, 0, -1)   // A
	c.Access(64, false, 0, -1)  // B
	c.Access(0, false, 0, -1)   // touch A (B is LRU)
	c.Access(128, false, 0, -1) // C evicts B
	if !c.Access(0, false, 0, -1) {
		t.Error("A should still be resident")
	}
	if c.Access(64, false, 0, -1) {
		t.Error("B should have been evicted")
	}
}

func TestCapacityBehaviour(t *testing.T) {
	// A working set that fits has ~zero steady-state misses; one that
	// doesn't fit keeps missing.
	c := New(Config{SizeBytes: 1 << 14, Ways: 4, BlockBytes: 64, HitLatency: 1})
	sweep := func(blocks int) {
		for i := 0; i < blocks; i++ {
			c.Access(uint64(i*64), false, 0, -1)
		}
	}
	fitBlocks := (1 << 14) / 64 / 2 // half capacity
	sweep(fitBlocks)
	c.ResetStats()
	sweep(fitBlocks)
	if c.Stats.Misses != 0 {
		t.Errorf("fitting working set missed %d times in steady state", c.Stats.Misses)
	}
	c.Reset()
	over := (1 << 14) / 64 * 4 // 4x capacity
	sweep(over)
	c.ResetStats()
	sweep(over)
	if c.Stats.MissRatio() < 0.9 {
		t.Errorf("thrashing sweep should keep missing: ratio %v", c.Stats.MissRatio())
	}
}

func TestPartitioningProtectsWays(t *testing.T) {
	// Two partitions on a 4-way cache: partition 0 owns ways 0-1,
	// partition 1 owns ways 2-3. Partition 1's flood must not evict
	// partition 0's resident data.
	c := New(Config{SizeBytes: 64 * 4 * 16, Ways: 4, BlockBytes: 64, HitLatency: 1})
	c.Partition(0, []int{0, 1})
	c.Partition(1, []int{2, 3})
	// Fill partition 0 with a small set.
	nsets := 16
	for i := 0; i < nsets*2; i++ {
		c.Access(uint64(i*64), false, 0, 0)
	}
	// Flood partition 1 with a huge stream.
	for i := 0; i < 10000; i++ {
		c.Access(uint64((1<<20)+i*64), false, 0, 1)
	}
	// Partition 0's data must still be resident.
	c.ResetStats()
	for i := 0; i < nsets*2; i++ {
		c.Access(uint64(i*64), false, 0, 0)
	}
	if c.Stats.Misses != 0 {
		t.Errorf("partitioned data evicted by other partition: %d misses", c.Stats.Misses)
	}
}

func TestNoPartitionSharedEviction(t *testing.T) {
	// Control for the partition test: without partitioning the flood
	// does evict.
	c := New(Config{SizeBytes: 64 * 4 * 16, Ways: 4, BlockBytes: 64, HitLatency: 1})
	nsets := 16
	for i := 0; i < nsets*2; i++ {
		c.Access(uint64(i*64), false, 0, -1)
	}
	for i := 0; i < 10000; i++ {
		c.Access(uint64((1<<20)+i*64), false, 0, -1)
	}
	c.ResetStats()
	for i := 0; i < nsets*2; i++ {
		c.Access(uint64(i*64), false, 0, -1)
	}
	if c.Stats.Misses == 0 {
		t.Error("unpartitioned flood failed to evict anything")
	}
}

func TestCoherenceInvalidations(t *testing.T) {
	c := New(Config{SizeBytes: 4096, Ways: 4, BlockBytes: 64, HitLatency: 1})
	c.Access(0, false, 0, -1) // core 0 reads (E)
	c.Access(0, false, 1, -1) // core 1 reads
	c.Access(0, true, 1, -1)  // core 1 writes: E/S -> invalidation event
	if c.Stats.Invalidations == 0 {
		t.Error("no invalidation recorded on shared write")
	}
	// Dirty read by another core downgrades to owned, then a write by a
	// third core invalidates again.
	base := c.Stats.Invalidations
	c.Access(0, false, 2, -1)
	c.Access(0, true, 0, -1)
	if c.Stats.Invalidations <= base {
		t.Error("owned-line write did not count an invalidation")
	}
}

func TestWritebacks(t *testing.T) {
	// 1-set 1-way cache: every dirty eviction is a writeback.
	c := New(Config{SizeBytes: 64, Ways: 1, BlockBytes: 64, HitLatency: 1})
	c.Access(0, true, 0, -1)
	c.Access(64, false, 0, -1) // evicts dirty block 0
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(2, 1)
	// First touch: L1 miss + L2 miss -> 2 + 15 + 340.
	if lat := h.Access(0, 0, false, -1); lat != 357 {
		t.Errorf("cold access latency = %d, want 357", lat)
	}
	// Now in both: L1 hit -> 2.
	if lat := h.Access(0, 0, false, -1); lat != 2 {
		t.Errorf("L1 hit latency = %d, want 2", lat)
	}
	// Other core: L1 miss, L2 hit -> 2 + 15.
	if lat := h.Access(1, 0, false, -1); lat != 17 {
		t.Errorf("L2 hit latency = %d, want 17", lat)
	}
}

func TestL2BankConfig(t *testing.T) {
	cfg := L2BankMB(4)
	if cfg.SizeBytes != 4<<20 || cfg.Banks != 4 || cfg.Ways != 4 {
		t.Errorf("L2 config = %+v", cfg)
	}
	c := New(cfg)
	if len(c.sets) != 4<<20/64/4 {
		t.Errorf("set count = %d", len(c.sets))
	}
}

func TestMissRatioMonotoneInSize(t *testing.T) {
	// Property: for a random reference stream with reuse, a bigger cache
	// never has (meaningfully) more misses.
	r := rand.New(rand.NewSource(5))
	addrs := make([]uint64, 20000)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(1<<16)) * 64 // 4MB footprint, reuse-heavy
	}
	var prev uint64 = ^uint64(0)
	for _, mb := range []int{1, 2, 4} {
		c := New(L2BankMB(mb))
		for _, a := range addrs {
			c.Access(a, false, 0, -1)
		}
		if c.Stats.Misses > prev {
			t.Errorf("%dMB cache missed more (%d) than smaller cache (%d)",
				mb, c.Stats.Misses, prev)
		}
		prev = c.Stats.Misses
	}
}

func TestResetClearsContents(t *testing.T) {
	c := New(Config{SizeBytes: 4096, Ways: 2, BlockBytes: 64, HitLatency: 1})
	c.Access(0, false, 0, -1)
	c.Reset()
	if c.Access(0, false, 0, -1) {
		t.Error("access after Reset should miss")
	}
	if c.Stats.Misses != 1 || c.Stats.ColdMisses != 1 {
		t.Errorf("stats after reset = %+v", c.Stats)
	}
}
