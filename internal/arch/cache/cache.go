// Package cache implements the set-associative cache models used by the
// ParallAX study: multi-bank shared L2 caches built from 1 MB 4-way
// banks (paper section 5), per-core L1s, way-granularity partitioning
// ("columnization", references [6, 23, 27]) and MOESI-style sharing
// state for coherence statistics.
package cache

// Config describes one cache.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the associativity per set.
	Ways int
	// BlockBytes is the line size (64 in the paper).
	BlockBytes int
	// Banks splits the cache into address-interleaved banks; sets are
	// computed per bank.
	Banks int
	// HitLatency in cycles (L1: 2, L2: 15, paper Table 5).
	HitLatency int
}

// L2BankMB assembles the paper's L2 configuration: n 1MB 4-way banks.
func L2BankMB(megabytes int) Config {
	return Config{
		SizeBytes:  megabytes << 20,
		Ways:       4,
		BlockBytes: 64,
		Banks:      megabytes, // 1MB per bank
		HitLatency: 15,
	}
}

// L1D returns the paper's 32KB 4-way 2-cycle L1 data cache.
func L1D() Config {
	return Config{SizeBytes: 32 << 10, Ways: 4, BlockBytes: 64, Banks: 1, HitLatency: 2}
}

// MESI-like line states for sharing statistics.
type state uint8

const (
	invalid state = iota
	shared
	exclusive
	modified
	owned
)

type line struct {
	tag   uint64
	state state
	// part is the partition the line was filled under (-1 = unassigned).
	part int8
	// owner is the core that last wrote the line.
	owner int8
	// prefetched marks lines brought in speculatively and not yet
	// demanded.
	prefetched bool
	// lastUse is the LRU timestamp.
	lastUse uint64
}

// Stats accumulates cache events.
type Stats struct {
	Hits   uint64
	Misses uint64
	// Cold misses: first-ever touch of a block.
	ColdMisses uint64
	Writebacks uint64
	// Invalidations counts coherence kills (write to a line another core
	// holds).
	Invalidations uint64
	// Prefetches counts lines brought in by the next-line prefetcher;
	// PrefetchHits counts demand hits on prefetched-not-yet-used lines.
	Prefetches   uint64
	PrefetchHits uint64
	// PartMisses buckets misses by partition id.
	PartMisses map[int]uint64
}

// MissRatio returns misses / accesses.
func (s *Stats) MissRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

// Cache is a single-level set-associative cache with optional way
// partitioning. It is a functional (hit/miss) model: latency is carried
// in the Config and charged by the timing layer.
type Cache struct {
	cfg       Config
	sets      [][]line
	setsShift uint
	setsMask  uint64
	bankMask  uint64
	clock     uint64
	seen      map[uint64]struct{}
	// Prefetch enables a next-N-line prefetcher: every demand miss also
	// brings in the next Prefetch sequential blocks (the paper's future
	// work on reducing L2 size requirements via prefetching).
	Prefetch int
	// partWays[p] lists the way indices partition p may fill into; nil
	// means all ways (no partitioning).
	partWays map[int][]int
	// partBanks[p] lists the bank indices partition p maps into (the
	// paper's partitioning: whole 1MB banks dedicated to a phase,
	// "allocated near the CG core"). When set for a partition, both
	// lookups and fills of that partition use only those banks.
	partBanks map[int][]int
	bankSets  int
	nBanks    int
	candBuf   []uint64
	Stats     Stats
}

// New builds a cache from the config.
func New(cfg Config) *Cache {
	if cfg.Banks < 1 {
		cfg.Banks = 1
	}
	setsTotal := cfg.SizeBytes / cfg.BlockBytes / cfg.Ways
	c := &Cache{
		cfg:       cfg,
		sets:      make([][]line, setsTotal),
		seen:      make(map[uint64]struct{}),
		partWays:  make(map[int][]int),
		partBanks: make(map[int][]int),
		nBanks:    cfg.Banks,
		bankSets:  setsTotal / cfg.Banks,
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
		for w := range c.sets[i] {
			c.sets[i][w].part = -1
		}
	}
	c.Stats.PartMisses = make(map[int]uint64)
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Partition dedicates the given ways (indices 0..Ways-1) to partition p.
// Accesses tagged with p fill only into those ways; lookups still hit in
// any way ("the cache space dedicated to the serial phases should be
// readable but not modifiable during parallel phases").
func (c *Cache) Partition(p int, ways []int) {
	c.partWays[p] = ways
}

// PartitionBanks dedicates whole banks to partition p: accesses tagged
// with p map only into those banks. This is the paper's configuration —
// 4MB of 1MB 4-way banks per serial phase, placed near the CG core.
func (c *Cache) PartitionBanks(p int, banks []int) {
	c.partBanks[p] = banks
}

// candidates returns the distinct set indices where addr could reside:
// its own partition's set first, then every other partition's mapping
// (and the unpartitioned mapping), so cross-partition reads hit.
func (c *Cache) candidates(addr uint64, own uint64) []uint64 {
	if len(c.partBanks) == 0 {
		return []uint64{own}
	}
	out := c.candBuf[:0]
	out = append(out, own)
	add := func(si uint64) {
		for _, s := range out {
			if s == si {
				return
			}
		}
		out = append(out, si)
	}
	for p := range c.partBanks {
		add(c.setIndex(addr, p))
	}
	add(c.setIndex(addr, -1))
	c.candBuf = out
	return out
}

// touchLine applies the hit-path state transitions.
func (c *Cache) touchLine(l *line, write bool, core int) {
	l.lastUse = c.clock
	if l.prefetched {
		l.prefetched = false
		c.Stats.PrefetchHits++
	}
	if write {
		// Writing a line another core holds (or that is shared) kills
		// the other copies.
		if l.state == shared || l.state == owned || int(l.owner) != core {
			c.Stats.Invalidations++
		}
		l.state = modified
		l.owner = int8(core)
	} else if int(l.owner) != core {
		switch l.state {
		case modified:
			// Another core reads a dirty line: downgrade to owned.
			l.state = owned
		case exclusive:
			l.state = shared
		}
	}
}

// setIndex maps an address to a set for partition part: the block
// interleaves across the partition's banks (all banks when the
// partition has no bank allocation).
func (c *Cache) setIndex(addr uint64, part int) uint64 {
	block := addr / uint64(c.cfg.BlockBytes)
	banks := c.partBanks[part]
	if len(banks) == 0 {
		return block % uint64(len(c.sets))
	}
	bank := banks[block%uint64(len(banks))]
	setInBank := (block / uint64(len(banks))) % uint64(c.bankSets)
	return uint64(bank)*uint64(c.bankSets) + setInBank
}

// Access performs one reference from core (for sharing state) under
// partition part (-1 = unpartitioned). It returns true on hit and the
// access latency contribution in cycles.
func (c *Cache) Access(addr uint64, write bool, core int, part int) bool {
	c.clock++
	block := addr / uint64(c.cfg.BlockBytes)
	si := c.setIndex(addr, part)
	// The cache stays logically shared under partitioning: lookups
	// search every partition's candidate set; only the fill placement is
	// constrained ("readable but not modifiable" across phases).
	for _, ci := range c.candidates(addr, si) {
		set := c.sets[ci]
		for w := range set {
			l := &set[w]
			if l.state != invalid && l.tag == block {
				c.Stats.Hits++
				c.touchLine(l, write, core)
				return true
			}
		}
	}
	// Miss: classify, fill, and optionally prefetch sequential blocks.
	c.Stats.Misses++
	if part >= 0 {
		c.Stats.PartMisses[part]++
	}
	if _, ok := c.seen[block]; !ok {
		c.seen[block] = struct{}{}
		c.Stats.ColdMisses++
	}
	c.fill(block, si, write, core, part, false)
	for i := 1; i <= c.Prefetch; i++ {
		nb := block + uint64(i)
		nsi := c.setIndex(nb*uint64(c.cfg.BlockBytes), part)
		if c.present(nb, nsi) {
			continue
		}
		c.fill(nb, nsi, false, core, part, true)
		c.Stats.Prefetches++
	}
	return false
}

// present reports whether a block is resident in the given set.
func (c *Cache) present(block, si uint64) bool {
	for w := range c.sets[si] {
		l := &c.sets[si][w]
		if l.state != invalid && l.tag == block {
			return true
		}
	}
	return false
}

// fill selects a victim in set si (respecting the partition's way
// allocation) and installs the block.
func (c *Cache) fill(block, si uint64, write bool, core, part int, prefetched bool) {
	set := c.sets[si]
	ways := c.partWays[part]
	victim := -1
	var oldest uint64 = ^uint64(0)
	pick := func(w int) {
		l := &set[w]
		if l.state == invalid {
			if victim == -1 || set[victim].state != invalid {
				victim = w
				oldest = 0
			}
			return
		}
		if victim == -1 || (set[victim].state != invalid && l.lastUse < oldest) {
			victim = w
			oldest = l.lastUse
		}
	}
	if ways == nil {
		for w := range set {
			pick(w)
		}
	} else {
		for _, w := range ways {
			if w >= 0 && w < len(set) {
				pick(w)
			}
		}
	}
	if victim < 0 {
		victim = 0
	}
	v := &set[victim]
	if v.state == modified || v.state == owned {
		c.Stats.Writebacks++
	}
	v.tag = block
	v.lastUse = c.clock
	v.part = int8(part)
	v.owner = int8(core)
	v.prefetched = prefetched
	if write {
		v.state = modified
	} else {
		v.state = exclusive
	}
}

// Reset clears contents and statistics but keeps the partition map.
func (c *Cache) Reset() {
	for i := range c.sets {
		for w := range c.sets[i] {
			c.sets[i][w] = line{part: -1}
		}
	}
	c.clock = 0
	c.seen = make(map[uint64]struct{})
	c.Stats = Stats{PartMisses: make(map[int]uint64)}
}

// ResetStats clears counters but keeps contents (for steady-state
// sampling).
func (c *Cache) ResetStats() {
	c.Stats = Stats{PartMisses: make(map[int]uint64)}
}

// Hierarchy is a two-level hierarchy: per-core L1s in front of a shared
// L2, with the paper's latencies (L1 2, L2 15, memory 340 cycles).
type Hierarchy struct {
	L1s []*Cache
	L2  *Cache
	// MemLatency is the miss-to-memory penalty in cycles.
	MemLatency int
}

// NewHierarchy builds cores L1s plus a shared L2 of l2MB megabytes.
func NewHierarchy(cores, l2MB int) *Hierarchy {
	h := &Hierarchy{MemLatency: 340}
	for i := 0; i < cores; i++ {
		h.L1s = append(h.L1s, New(L1D()))
	}
	h.L2 = New(L2BankMB(l2MB))
	return h
}

// Access runs one reference from the given core through L1 then L2 and
// returns the total latency in cycles.
func (h *Hierarchy) Access(core int, addr uint64, write bool, part int) int {
	l1 := h.L1s[core]
	if l1.Access(addr, write, core, -1) {
		return l1.cfg.HitLatency
	}
	if h.L2.Access(addr, write, core, part) {
		return l1.cfg.HitLatency + h.L2.cfg.HitLatency
	}
	return l1.cfg.HitLatency + h.L2.cfg.HitLatency + h.MemLatency
}

// StreamFor adapts core/partition-tagged access into a mem.Stream-shaped
// closure.
func (h *Hierarchy) StreamFor(core, part int) func(addr uint64, write bool) {
	return func(addr uint64, write bool) { h.Access(core, addr, write, part) }
}

// L2Misses returns the shared L2 miss counter.
func (h *Hierarchy) L2Misses() uint64 { return h.L2.Stats.Misses }
