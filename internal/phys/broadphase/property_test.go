package broadphase

import (
	"math/rand"
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// TestSAPTracksMotionOverManyFrames runs a random walk over many frames
// and checks the incremental sweep structure never diverges from the
// brute-force reference — the temporal-coherence correctness property.
func TestSAPTracksMotionOverManyFrames(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	gs := randomScene(r, 80, 10)
	sap := NewSweepAndPrune()
	bf := NewBruteForce()
	for frame := 0; frame < 60; frame++ {
		for _, g := range gs[1:] {
			g.Pos = g.Pos.Add(m3.V(
				(r.Float64()-0.5)*0.3,
				(r.Float64()-0.5)*0.3,
				(r.Float64()-0.5)*0.3,
			))
		}
		got := sap.Pairs(gs, nil)
		want := bf.Pairs(gs, nil)
		if !pairsEqual(got, want) {
			t.Fatalf("frame %d: SAP diverged (%d vs %d pairs)", frame, len(got), len(want))
		}
	}
}

// TestSAPHandlesEnableDisableChurn toggles geoms on and off between
// passes; the persistent order list must stay consistent.
func TestSAPHandlesEnableDisableChurn(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	gs := randomScene(r, 50, 8)
	sap := NewSweepAndPrune()
	bf := NewBruteForce()
	for frame := 0; frame < 40; frame++ {
		for _, g := range gs[1:] {
			if r.Float64() < 0.15 {
				g.Flags ^= geom.FlagDisabled
			}
		}
		got := sap.Pairs(gs, nil)
		want := bf.Pairs(gs, nil)
		if !pairsEqual(got, want) {
			t.Fatalf("frame %d: SAP wrong under enable/disable churn", frame)
		}
	}
}

// TestSAPHandlesGrowth adds geoms between passes (projectile spawning,
// blast volumes) without rebuilding.
func TestSAPHandlesGrowth(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	gs := randomScene(r, 20, 6)
	sap := NewSweepAndPrune()
	bf := NewBruteForce()
	for frame := 0; frame < 30; frame++ {
		id := len(gs)
		gs = append(gs, &geom.Geom{
			ID:    id,
			Shape: geom.Sphere{R: 0.3 + r.Float64()*0.4},
			Pos:   m3.V(r.Float64()*6, r.Float64()*6, r.Float64()*6),
			Rot:   m3.Ident,
			Body:  id,
		})
		got := sap.Pairs(gs, nil)
		want := bf.Pairs(gs, nil)
		if !pairsEqual(got, want) {
			t.Fatalf("frame %d: SAP wrong after geom insertion", frame)
		}
	}
}

// TestBroadphaseAgreementUnderMixedChurn drives every persistent
// implementation — full SAP, incremental SAP, spatial hash — through
// one long sequence mixing random walks, teleport storms and
// mass-detonation debris bursts, checking each emits exactly the
// brute-force pair list at every frame. This is the cross-check oracle
// for the incremental structure's swap-maintained pair set: any missed
// endpoint swap or stale set entry diverges here.
func TestBroadphaseAgreementUnderMixedChurn(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	gs := randomScene(r, 60, 10)
	impls := []Interface{NewSweepAndPrune(), NewIncrementalSAP(), NewSpatialHash()}
	names := []string{"sap", "incsap", "hash"}
	bf := NewBruteForce()
	for frame := 0; frame < 120; frame++ {
		switch {
		case frame%40 == 25:
			// Teleport storm: coherence collapses completely.
			for _, g := range gs[1:] {
				g.Pos = m3.V(r.Float64()*40-20, r.Float64()*40-20, r.Float64()*40-20)
			}
		case frame%30 == 15:
			// Mass detonation: a burst of debris spawns at one point.
			c := m3.V(r.Float64()*10, r.Float64()*10, r.Float64()*10)
			for i := 0; i < 10; i++ {
				id := len(gs)
				gs = append(gs, &geom.Geom{
					ID:    id,
					Shape: geom.Sphere{R: 0.15 + r.Float64()*0.2},
					Pos:   c.Add(m3.V(r.Float64()-0.5, r.Float64()-0.5, r.Float64()-0.5)),
					Rot:   m3.Ident,
					Body:  id,
				})
			}
		default:
			for _, g := range gs[1:] {
				g.Pos = g.Pos.Add(m3.V(
					(r.Float64()-0.5)*0.4,
					(r.Float64()-0.5)*0.4,
					(r.Float64()-0.5)*0.4,
				))
			}
		}
		want := bf.Pairs(gs, nil)
		for i, impl := range impls {
			got := impl.Pairs(gs, nil)
			if !pairsEqual(got, want) {
				t.Fatalf("frame %d: %s diverged (%d vs %d pairs)", frame, names[i], len(got), len(want))
			}
		}
	}
}

// TestHashCellSizeOverride checks explicit cell sizing still matches the
// reference.
func TestHashCellSizeOverride(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	gs := randomScene(r, 60, 8)
	want := NewBruteForce().Pairs(gs, nil)
	for _, cell := range []float64{0.5, 1.5, 4.0} {
		sh := NewSpatialHash()
		sh.CellSize = cell
		got := sh.Pairs(gs, nil)
		if !pairsEqual(got, want) {
			t.Fatalf("cell=%v: hash wrong (%d vs %d pairs)", cell, len(got), len(want))
		}
	}
}

// TestMixedShapesBroadphase exercises the sweep over heterogeneous AABB
// sizes (tiny debris next to a huge terrain box).
func TestMixedShapesBroadphase(t *testing.T) {
	var gs []*geom.Geom
	add := func(s geom.Shape, pos m3.Vec, static bool) {
		g := &geom.Geom{ID: len(gs), Shape: s, Pos: pos, Rot: m3.Ident, Body: len(gs)}
		if static {
			g.Body = -1
			g.Flags = geom.FlagStatic
		}
		gs = append(gs, g)
	}
	hs := make([]float64, 64)
	add(geom.NewHeightField(8, 8, 5, 5, hs), m3.V(-20, 0, -20), true)
	for i := 0; i < 30; i++ {
		add(geom.Sphere{R: 0.05}, m3.V(float64(i%6), 0.02, float64(i/6)), false)
	}
	add(geom.Box{Half: m3.V(10, 0.5, 10)}, m3.V(0, -1, 0), false)
	got := NewSweepAndPrune().Pairs(gs, nil)
	want := NewBruteForce().Pairs(gs, nil)
	if !pairsEqual(got, want) {
		t.Fatalf("mixed-extent scene: %d vs %d pairs", len(got), len(want))
	}
	if len(got) == 0 {
		t.Fatal("expected overlaps in the mixed scene")
	}
}
