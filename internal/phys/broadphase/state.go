package broadphase

import "slices"

// Snapshot support. The sweep-based broad phases carry cross-step state
// that is observable in their outputs: the persistent endpoint order
// holds temporal coherence, and Stats.SortOps counts the insertion-sort
// moves needed to fix it up — so a restored world must resume from the
// same order to reproduce the original run's profiles bit for bit.
// Membership stamps (mark/gen) and the unbounded list are rebuilt from
// scratch every pass and need no saving. SpatialHash and BruteForce
// keep only per-pass scratch, so they have nothing to save at all.

// SaveOrder appends the persistent sweep order (geom indices sorted
// along the current sweep axis) and returns the extended slice.
func (s *SweepAndPrune) SaveOrder(dst []int32) []int32 {
	return append(dst, s.order...)
}

// RestoreOrder replaces the persistent sweep order, re-establishing the
// temporal coherence of the run the order was saved from.
func (s *SweepAndPrune) RestoreOrder(order []int32) {
	s.order = append(s.order[:0], order...)
}

// IncSAPState is the serializable cross-step state of IncrementalSAP:
// the sweep axis, the endpoint array order (each entry id<<1|side; the
// cached coordinate values are re-derived from the geom boxes at the
// start of the next pass and need no saving), the persistent
// axis-overlap pair keys (sorted for byte stability), and whether the
// next pass must rebuild.
type IncSAPState struct {
	Axis      int32
	Endpoints []int32
	Pairs     []uint64
	Rebuild   bool
}

// SaveState captures the incremental structure's cross-step state.
// This is a cold path; it allocates freely.
func (s *IncrementalSAP) SaveState() IncSAPState {
	st := IncSAPState{
		Axis:      int32(s.axis),
		Endpoints: make([]int32, 0, len(s.eps)),
		Pairs:     make([]uint64, 0, len(s.set)),
		Rebuild:   s.fullNext,
	}
	for _, ep := range s.eps {
		st.Endpoints = append(st.Endpoints, ep.id<<1|ep.side)
	}
	for k := range s.set {
		st.Pairs = append(st.Pairs, k)
	}
	slices.Sort(st.Pairs)
	return st
}

// RestoreState replaces the incremental structure's cross-step state
// with a previously saved one. Endpoint coordinate values are left
// zero — the next pass refreshes every value from the geom boxes
// before sorting, so the restored run is bit-identical to the
// original. Cold path; allocates freely.
func (s *IncrementalSAP) RestoreState(st IncSAPState) {
	s.eps = s.eps[:0]
	maxID := int32(-1)
	for _, packed := range st.Endpoints {
		id, side := packed>>1, packed&1
		s.eps = append(s.eps, endpoint{id: id, side: side})
		if id > maxID {
			maxID = id
		}
	}
	if n := int(maxID) + 1; len(s.has) < n {
		s.has = make([]bool, n)
		s.mark = make([]uint32, n)
		s.gone = make([]uint32, n)
	}
	clear(s.has)
	for _, ep := range s.eps {
		if ep.side == 0 {
			s.has[ep.id] = true
		}
	}
	if s.set == nil {
		s.set = make(map[uint64]bool, len(st.Pairs))
	}
	clear(s.set)
	for _, k := range st.Pairs {
		s.set[k] = true
	}
	s.axis = int(st.Axis)
	s.fullNext = st.Rebuild
}
