package broadphase

// Snapshot support. Sweep-and-prune is the only broad phase with
// cross-step state that is observable in its outputs: the persistent
// endpoint order carries temporal coherence, and Stats.SortOps counts
// the insertion-sort moves needed to fix it up — so a restored world
// must resume from the same order to reproduce the original run's
// profiles bit for bit. The membership stamps (mark/gen) and the
// unbounded list are rebuilt from scratch every pass and need no
// saving. SpatialHash and BruteForce keep only per-pass scratch, so
// they have nothing to save at all.

// SaveOrder appends the persistent sweep order (geom indices sorted
// along the current sweep axis) and returns the extended slice.
func (s *SweepAndPrune) SaveOrder(dst []int32) []int32 {
	return append(dst, s.order...)
}

// RestoreOrder replaces the persistent sweep order, re-establishing the
// temporal coherence of the run the order was saved from.
func (s *SweepAndPrune) RestoreOrder(order []int32) {
	s.order = append(s.order[:0], order...)
}
