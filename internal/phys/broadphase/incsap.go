package broadphase

import (
	"slices"

	"github.com/parallax-arch/parallax/internal/phys/geom"
)

// IncrementalSAP is a Bullet/Box2D-style incremental sweep-and-prune: it
// keeps the interval endpoints (min and max per geom) of the sweep axis
// in a persistently sorted array and a persistent set of axis-overlapping
// pairs, updated only by the endpoint swaps the per-pass insertion sort
// performs. A coherent frame therefore costs O(endpoints + swaps + set)
// instead of re-sweeping every overlap run, which is what makes the
// broad phase cheap enough to leave on the serial critical path.
//
// Correctness hinges on a strict total order over endpoints —
// (value, side, id) with a geom's min ordering before any max at equal
// value — so that touching intervals count as overlapping, exactly
// matching SweepAndPrune's closed-interval sweep (`b.min <= a.max`).
// Under that order, an adjacent swap that moves a min left past a max
// always opens an axis overlap and a max moving left past a min always
// closes one; same-geom crossings cannot occur because a min orders
// strictly before its own max.
//
// When coherence collapses (mass detonation, teleports, a sweep-axis
// change), the insertion sort would degrade toward O(n^2) swaps; the
// pass detects this deterministically — the swap count crossing a fixed
// budget — aborts, and falls back to a full O(n log n) re-sort plus a
// from-scratch sweep that rebuilds the pair set. Stats.Rebuilds counts
// these fallbacks.
//
// Pairs are emitted by filtering the persistent set through the same
// shouldPair test the full sweep uses and then canonically sorting, so
// the output is byte-identical to SweepAndPrune's for the same scene.
type IncrementalSAP struct {
	// eps is the persistently sorted endpoint array (2 per live geom).
	eps []endpoint
	// set holds the axis-overlapping candidate pairs, keyed A<B packed
	// into a uint64. Maintained across passes by endpoint swaps.
	set  map[uint64]bool
	axis int
	// fullNext forces a rebuild on the next pass (axis change, restore).
	fullNext bool
	stats    Stats

	// mark[id] == gen: geom id is live (enabled, non-plane) this pass.
	// gone[id] == gen: geom id left the structure this pass.
	mark, gone []uint32
	gen        uint32
	// has[id]: geom id currently contributes endpoints to eps.
	has []bool

	members   []int32 // live geom ids, rebuilt each pass (plane pairing, axis choice)
	unbounded []int32 // planes, paired out-of-band like SweepAndPrune
	active    []int32 // rebuild-sweep scratch
}

// endpoint is one interval bound on the sweep axis. side 0 is the
// interval minimum, 1 the maximum; val caches the bound's coordinate for
// the current pass.
type endpoint struct {
	val  float64
	id   int32
	side int32
}

// NewIncrementalSAP returns an empty incremental sweep-and-prune
// structure. The first pass performs a full rebuild.
func NewIncrementalSAP() *IncrementalSAP {
	return &IncrementalSAP{set: make(map[uint64]bool), fullNext: true}
}

// Stats implements Interface.
func (s *IncrementalSAP) Stats() Stats { return s.stats }

// Pairs implements Interface.
//
//paraxlint:noalloc
func (s *IncrementalSAP) Pairs(geoms []*geom.Geom, dst []Pair) []Pair {
	return s.run(geoms, dst, true)
}

// PairsPrerefreshed implements Prerefreshed.
//
//paraxlint:noalloc
func (s *IncrementalSAP) PairsPrerefreshed(geoms []*geom.Geom, dst []Pair) []Pair {
	return s.run(geoms, dst, false)
}

//paraxlint:noalloc
func (s *IncrementalSAP) run(geoms []*geom.Geom, dst []Pair, refresh bool) []Pair {
	s.stats = Stats{}
	s.gen++
	if len(s.mark) < len(geoms) {
		grown := make([]uint32, len(geoms)) //paraxlint:allow(alloc) capacity growth, amortized
		copy(grown, s.mark)
		s.mark = grown
		grown = make([]uint32, len(geoms)) //paraxlint:allow(alloc) capacity growth, amortized
		copy(grown, s.gone)
		s.gone = grown
		has := make([]bool, len(geoms)) //paraxlint:allow(alloc) capacity growth, amortized
		copy(has, s.has)
		s.has = has
	}
	if s.gen == 0 { // wrapped: stale stamps could collide, reset
		clear(s.mark)
		clear(s.gone)
		s.gen = 1
	}

	unbounded := s.unbounded[:0]
	for _, g := range geoms {
		if !g.Enabled() {
			continue
		}
		if refresh {
			s.stats.Geoms++
			g.UpdateAABB()
			s.stats.AABBUpdates++
		}
		if g.Shape.Kind() == geom.KindPlane {
			unbounded = append(unbounded, int32(g.ID))
			continue
		}
		s.mark[g.ID] = s.gen
	}
	s.unbounded = unbounded

	// Departures (disabled, freed, reshaped to a plane): compact their
	// endpoints out — relative order is preserved, so no overlap relation
	// between survivors changes — and purge their pairs from the set.
	removed := false
	live := s.eps[:0]
	for _, ep := range s.eps {
		if int(ep.id) < len(s.mark) && s.mark[ep.id] == s.gen {
			live = append(live, ep)
		} else {
			s.gone[ep.id] = s.gen
			s.has[ep.id] = false
			removed = true
		}
	}
	s.eps = live
	if removed {
		for k := range s.set {
			if s.gone[uint32(k>>32)] == s.gen || s.gone[uint32(k)] == s.gen {
				delete(s.set, k)
			}
		}
	}

	// Arrivals append at the array's end: positionally overlap-free,
	// matching their (empty) membership in the set until the sort moves
	// them into place and opens their overlaps swap by swap.
	for _, g := range geoms {
		if s.mark[g.ID] == s.gen && !s.has[g.ID] {
			s.eps = append(s.eps,
				endpoint{id: int32(g.ID), side: 0},
				endpoint{id: int32(g.ID), side: 1})
			s.has[g.ID] = true
		}
	}

	members := s.members[:0]
	for _, ep := range s.eps {
		if ep.side == 0 {
			members = append(members, ep.id)
		}
	}
	s.members = members

	axis := bestAxis(geoms, members)
	if axis != s.axis {
		// Every cached endpoint value belongs to the old axis; the sorted
		// order is meaningless on the new one.
		s.axis = axis
		s.fullNext = true
	}
	for i := range s.eps {
		ep := &s.eps[i]
		if ep.side == 0 {
			ep.val = geoms[ep.id].Box.Min.Comp(axis)
		} else {
			ep.val = geoms[ep.id].Box.Max.Comp(axis)
		}
	}

	if s.fullNext {
		s.fullNext = false
		s.rebuild()
	} else if !s.sortIncremental() {
		s.rebuild()
	}

	// Emit: filter the persistent axis-overlap set through the same 3D
	// test the full sweep applies. Iteration order is irrelevant — dst is
	// canonically sorted below, making the output byte-identical to
	// SweepAndPrune's.
	for k := range s.set {
		a, b := int32(k>>32), int32(uint32(k))
		s.stats.OverlapTests++
		if shouldPair(geoms[a], geoms[b]) {
			dst = append(dst, Pair{A: a, B: b})
			s.stats.PairsOut++
		}
	}
	for _, pid := range s.unbounded {
		p := geoms[pid]
		for _, id := range s.members {
			g := geoms[id]
			if g.Flags.Has(geom.FlagStatic) {
				continue
			}
			s.stats.OverlapTests++
			if geom.ShouldCollide(p, g) {
				dst = appendPair(dst, pid, id)
				s.stats.PairsOut++
			}
		}
	}
	slices.SortFunc(dst, cmpPair)
	return dst
}

// sortIncremental insertion-sorts the endpoint array, maintaining the
// pair set on every adjacent swap, and reports whether it completed
// within the swap budget. On a false return the array is still a valid
// permutation (the in-flight element is always placed before aborting)
// but the set is stale; the caller must fall back to rebuild.
//
//paraxlint:noalloc
func (s *IncrementalSAP) sortIncremental() bool {
	eps := s.eps
	// The budget that declares coherence collapsed: a settled scene does
	// a handful of swaps, a blast does O(n^2). The fixed form keeps the
	// fallback decision deterministic across runs and thread counts.
	budget := 4*len(eps) + 64
	for i := 1; i < len(eps); i++ {
		v := eps[i]
		j := i - 1
		for j >= 0 && epAfter(&eps[j], &v) {
			p := eps[j]
			// v moves one slot left past p: a min passing a max opens an
			// axis overlap, a max passing a min closes one. Same-geom
			// crossings cannot occur (a min orders strictly before its
			// own max), so no id check is needed.
			if v.side == 0 && p.side == 1 {
				s.set[pairKeyOf(v.id, p.id)] = true
			} else if v.side == 1 && p.side == 0 {
				delete(s.set, pairKeyOf(v.id, p.id))
			}
			eps[j+1] = p
			j--
			s.stats.SortOps++
		}
		eps[j+1] = v
		if s.stats.SortOps > budget {
			return false
		}
	}
	return true
}

// rebuild fully re-sorts the endpoints and rebuilds the pair set with a
// single sweep over the sorted array — the O(n log n + overlaps)
// fallback for incoherent frames, and the initialization path.
//
//paraxlint:noalloc
func (s *IncrementalSAP) rebuild() {
	slices.SortFunc(s.eps, cmpEndpoint)
	clear(s.set)
	active := s.active[:0]
	for _, ep := range s.eps {
		if ep.side == 0 {
			// Every interval still open at this min overlaps it (its max
			// endpoint lies further right, and the total order makes
			// touching intervals overlap, like the closed-interval sweep).
			for _, a := range active {
				s.set[pairKeyOf(a, ep.id)] = true
			}
			active = append(active, ep.id)
		} else {
			for i, a := range active {
				if a == ep.id {
					active[i] = active[len(active)-1]
					active = active[:len(active)-1]
					break
				}
			}
		}
	}
	s.active = active[:0]
	s.stats.SortOps += len(s.eps) // nominal re-sort cost, deterministic
	s.stats.Rebuilds++
}

// epAfter reports whether p orders strictly after v in the endpoint
// total order (value, then side with min before max, then id). Only
// strict < comparisons are used, so equal values fall through to the
// tie-break fields.
//
//paraxlint:noalloc
func epAfter(p, v *endpoint) bool {
	if v.val < p.val {
		return true
	}
	if p.val < v.val {
		return false
	}
	if p.side != v.side {
		return p.side > v.side
	}
	return p.id > v.id
}

// cmpEndpoint is epAfter as a three-way comparison for slices.SortFunc.
func cmpEndpoint(a, b endpoint) int {
	if a.val < b.val {
		return -1
	}
	if b.val < a.val {
		return 1
	}
	if a.side != b.side {
		return int(a.side) - int(b.side)
	}
	return int(a.id) - int(b.id)
}

// pairKeyOf packs an unordered geom-id pair into the canonical A<B key.
//
//paraxlint:noalloc
func pairKeyOf(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}
