// Package broadphase implements the first stage of collision detection:
// culling the O(n^2) space of geom pairs down to pairs whose bounding
// boxes overlap. Two classic algorithms are provided — sweep-and-prune
// and a uniform spatial hash — both maintaining persistent spatial
// structures across steps, which is what makes this phase hard to
// parallelize (the paper treats broad phase as a serial phase). Both
// also keep all working storage (membership stamps, cell entry lists,
// dedup tables) across passes so that steady-state stepping does not
// allocate.
package broadphase

import (
	"fmt"
	"slices"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// Pair is a candidate colliding pair of geom indices, with A < B.
type Pair struct {
	A, B int32
}

// Stats records the work done by one broad-phase pass; the architecture
// model converts these counts into instruction and memory streams.
type Stats struct {
	// Geoms considered (enabled geoms).
	Geoms int
	// AABBUpdates is the number of bounding boxes recomputed.
	AABBUpdates int
	// SortOps counts exchange/insert work in the sweep structures: array
	// exchanges in the sweep-and-prune insertion sort (zero when the
	// previous frame's order still holds) and cell inserts in the
	// spatial hash.
	SortOps int
	// OverlapTests counts narrow AABB-vs-AABB tests performed.
	OverlapTests int
	// PairsOut is the number of candidate pairs produced.
	PairsOut int
	// Rebuilds counts full-structure rebuilds by incremental algorithms
	// (coherence-collapse fallbacks); always zero for the full-sweep
	// implementations.
	Rebuilds int
}

// Interface is a broad-phase algorithm. Implementations keep persistent
// state between calls to exploit temporal coherence.
type Interface interface {
	// Pairs updates the spatial structure for the current geom
	// placements and appends all candidate pairs to dst, returning it.
	Pairs(geoms []*geom.Geom, dst []Pair) []Pair
	// Stats returns counters for the most recent Pairs call.
	Stats() Stats
}

// Prerefreshed is implemented by broad phases that can skip their
// internal AABB refresh when the caller has already updated every
// enabled geom's bounding box (e.g. World.Step's chunk-parallel refresh
// pass). Stats.Geoms and Stats.AABBUpdates are left zero on this path;
// the caller accounts for the refresh work itself.
type Prerefreshed interface {
	Interface
	// PairsPrerefreshed is Pairs without the per-geom UpdateAABB calls.
	PairsPrerefreshed(geoms []*geom.Geom, dst []Pair) []Pair
}

// NewByName constructs a broad phase by its command-line name.
func NewByName(name string) (Interface, error) {
	switch name {
	case "sap":
		return NewSweepAndPrune(), nil
	case "incsap":
		return NewIncrementalSAP(), nil
	case "grid", "hash":
		return NewSpatialHash(), nil
	case "brute":
		return NewBruteForce(), nil
	}
	return nil, fmt.Errorf("unknown broad phase %q (want sap, incsap, grid or brute)", name)
}

// shouldPair applies the engine-level pair filter plus the AABB test.
//
//paraxlint:noalloc
func shouldPair(a, b *geom.Geom) bool {
	return geom.ShouldCollide(a, b) && a.Box.Overlaps(b.Box)
}

// SweepAndPrune is a sort-and-sweep broad phase. Each pass it refreshes
// the world AABBs, picks the axis with the greatest spread, sorts the
// interval endpoints along it (insertion sort over the mostly-sorted
// previous order, exploiting temporal coherence), and sweeps to emit
// overlapping pairs. Unbounded shapes (planes) are handled out-of-band
// and paired against every dynamic geom.
type SweepAndPrune struct {
	order []int32 // geom indices sorted by Box.Min along the sweep axis
	axis  int
	stats Stats
	// mark[id] == gen means geom id is already in order this pass
	// (generation-stamped membership, replacing a per-pass map).
	mark      []uint32
	gen       uint32
	unbounded []int32
}

// NewSweepAndPrune returns an empty sweep-and-prune structure.
func NewSweepAndPrune() *SweepAndPrune { return &SweepAndPrune{} }

// Stats implements Interface.
func (s *SweepAndPrune) Stats() Stats { return s.stats }

// Pairs implements Interface.
//
//paraxlint:noalloc
func (s *SweepAndPrune) Pairs(geoms []*geom.Geom, dst []Pair) []Pair {
	return s.run(geoms, dst, true)
}

// PairsPrerefreshed implements Prerefreshed.
//
//paraxlint:noalloc
func (s *SweepAndPrune) PairsPrerefreshed(geoms []*geom.Geom, dst []Pair) []Pair {
	return s.run(geoms, dst, false)
}

//paraxlint:noalloc
func (s *SweepAndPrune) run(geoms []*geom.Geom, dst []Pair, refresh bool) []Pair {
	s.stats = Stats{}
	s.gen++
	if len(s.mark) < len(geoms) {
		grown := make([]uint32, len(geoms)) //paraxlint:allow(alloc) capacity growth, amortized
		copy(grown, s.mark)
		s.mark = grown
	}
	if s.gen == 0 { // wrapped: stale stamps could collide, reset
		clear(s.mark)
		s.gen = 1
	}
	unbounded := s.unbounded[:0] // planes etc.
	// Refresh AABBs and the index list.
	live := s.order[:0]
	for _, id := range s.order {
		if int(id) < len(geoms) && geoms[id].Enabled() && geoms[id].Shape.Kind() != geom.KindPlane {
			live = append(live, id)
			s.mark[id] = s.gen
		}
	}
	for _, g := range geoms {
		if !g.Enabled() {
			continue
		}
		if refresh {
			s.stats.Geoms++
			g.UpdateAABB()
			s.stats.AABBUpdates++
		}
		if g.Shape.Kind() == geom.KindPlane {
			unbounded = append(unbounded, int32(g.ID))
			continue
		}
		if s.mark[g.ID] != s.gen {
			live = append(live, int32(g.ID))
		}
	}
	s.order = live
	s.unbounded = unbounded

	// Choose sweep axis by spread of box centers.
	s.axis = bestAxis(geoms, s.order)

	// Insertion sort: nearly sorted from the previous frame.
	s.insertionSort(geoms)

	// Sweep.
	for i := 0; i < len(s.order); i++ {
		a := geoms[s.order[i]]
		amax := a.Box.Max.Comp(s.axis)
		for j := i + 1; j < len(s.order); j++ {
			b := geoms[s.order[j]]
			if b.Box.Min.Comp(s.axis) > amax {
				break
			}
			s.stats.OverlapTests++
			if shouldPair(a, b) {
				dst = appendPair(dst, int32(a.ID), int32(b.ID))
				s.stats.PairsOut++
			}
		}
	}
	// Planes against everything dynamic.
	for _, pid := range unbounded {
		p := geoms[pid]
		for _, id := range s.order {
			g := geoms[id]
			if g.Flags.Has(geom.FlagStatic) {
				continue
			}
			s.stats.OverlapTests++
			if geom.ShouldCollide(p, g) {
				dst = appendPair(dst, pid, id)
				s.stats.PairsOut++
			}
		}
	}
	sortPairs(dst)
	return dst
}

// insertionSort re-sorts order by AABB minimum along the sweep axis.
// SortOps counts only actual element moves, so a frame whose order is
// unchanged from the previous one reports zero sort work (temporal
// coherence makes the serial phase cheap, and the counter must not
// inflate the Fig 2b/3a instruction and memory streams when no work
// happened).
//
//paraxlint:noalloc
func (s *SweepAndPrune) insertionSort(geoms []*geom.Geom) {
	axis := s.axis
	for i := 1; i < len(s.order); i++ {
		v := s.order[i]
		kv := geoms[v].Box.Min.Comp(axis)
		j := i - 1
		for j >= 0 && geoms[s.order[j]].Box.Min.Comp(axis) > kv {
			s.order[j+1] = s.order[j]
			j--
			s.stats.SortOps++
		}
		s.order[j+1] = v
	}
}

//paraxlint:noalloc
func bestAxis(geoms []*geom.Geom, order []int32) int {
	if len(order) == 0 {
		return 0
	}
	var mean, m2 [3]float64
	n := 0.0
	for _, id := range order {
		c := geoms[id].Box.Center()
		n++
		for k := 0; k < 3; k++ {
			x := c.Comp(k)
			d := x - mean[k]
			mean[k] += d / n
			m2[k] += d * (x - mean[k])
		}
	}
	axis := 0
	for k := 1; k < 3; k++ {
		if m2[k] > m2[axis] {
			axis = k
		}
	}
	return axis
}

//paraxlint:noalloc
func appendPair(dst []Pair, a, b int32) []Pair {
	if a > b {
		a, b = b, a
	}
	return append(dst, Pair{A: a, B: b})
}

// SpatialHash is a uniform-grid broad phase: geoms are binned by their
// AABBs into grid cells keyed by a hash; pairs are emitted within each
// cell and deduplicated. Cell membership is kept as a flat (cellKey,
// geom) entry list sorted by key — equal-key runs are the buckets —
// instead of a map of slices, so the structure is rebuilt each pass
// without allocating.
type SpatialHash struct {
	// CellSize is the grid pitch; if zero it is derived from the average
	// geom extent on each pass.
	CellSize float64
	entries  []cellEntry
	seen     map[uint64]bool
	dynamic  []int32
	unbound  []int32
	stats    Stats
}

// cellEntry records one geom overlapping one grid cell.
type cellEntry struct {
	key uint64
	id  int32
}

// NewSpatialHash returns a spatial hash with automatic cell sizing.
func NewSpatialHash() *SpatialHash {
	return &SpatialHash{seen: make(map[uint64]bool)}
}

// Stats implements Interface.
func (h *SpatialHash) Stats() Stats { return h.stats }

//paraxlint:noalloc
func cellKey(x, y, z int32) uint64 {
	// Morton-ish mix of the three signed cell coordinates.
	const p1, p2, p3 = 73856093, 19349663, 83492791
	return uint64(uint32(x)*p1) ^ uint64(uint32(y)*p2)<<1 ^ uint64(uint32(z)*p3)<<2
}

// Pairs implements Interface.
//
//paraxlint:noalloc
func (h *SpatialHash) Pairs(geoms []*geom.Geom, dst []Pair) []Pair {
	return h.run(geoms, dst, true)
}

// PairsPrerefreshed implements Prerefreshed.
//
//paraxlint:noalloc
func (h *SpatialHash) PairsPrerefreshed(geoms []*geom.Geom, dst []Pair) []Pair {
	return h.run(geoms, dst, false)
}

//paraxlint:noalloc
func (h *SpatialHash) run(geoms []*geom.Geom, dst []Pair, refresh bool) []Pair {
	h.stats = Stats{}
	h.entries = h.entries[:0]
	clear(h.seen)

	unbounded := h.unbound[:0]
	dynamic := h.dynamic[:0]
	sum := 0.0
	cnt := 0
	for _, g := range geoms {
		if !g.Enabled() {
			continue
		}
		if refresh {
			h.stats.Geoms++
			g.UpdateAABB()
			h.stats.AABBUpdates++
		}
		if g.Shape.Kind() == geom.KindPlane {
			unbounded = append(unbounded, int32(g.ID))
			continue
		}
		dynamic = append(dynamic, int32(g.ID))
		e := g.Box.Extent()
		sum += (e.X + e.Y + e.Z) / 3
		cnt++
	}
	h.unbound = unbounded
	h.dynamic = dynamic
	cell := h.CellSize
	if cell <= 0 {
		if cnt == 0 {
			return dst
		}
		cell = 2*sum/float64(cnt) + m3.Eps
	}

	for _, id := range dynamic {
		g := geoms[id]
		x0 := int32(fastFloor(g.Box.Min.X / cell))
		y0 := int32(fastFloor(g.Box.Min.Y / cell))
		z0 := int32(fastFloor(g.Box.Min.Z / cell))
		x1 := int32(fastFloor(g.Box.Max.X / cell))
		y1 := int32(fastFloor(g.Box.Max.Y / cell))
		z1 := int32(fastFloor(g.Box.Max.Z / cell))
		for z := z0; z <= z1; z++ {
			for y := y0; y <= y1; y++ {
				for x := x0; x <= x1; x++ {
					h.entries = append(h.entries, cellEntry{cellKey(x, y, z), id})
					h.stats.SortOps++ // hashing/insert work
				}
			}
		}
	}
	slices.SortFunc(h.entries, func(a, b cellEntry) int {
		switch {
		case a.key != b.key:
			if a.key < b.key {
				return -1
			}
			return 1
		case a.id != b.id:
			return int(a.id) - int(b.id)
		}
		return 0
	})

	// Equal-key runs of the sorted entry list are the cell buckets.
	for lo := 0; lo < len(h.entries); {
		hi := lo + 1
		for hi < len(h.entries) && h.entries[hi].key == h.entries[lo].key {
			hi++
		}
		bucket := h.entries[lo:hi]
		for i := 0; i < len(bucket); i++ {
			for j := i + 1; j < len(bucket); j++ {
				a, b := bucket[i].id, bucket[j].id
				if a == b {
					continue
				}
				x, y := a, b
				if x > y {
					x, y = y, x
				}
				pk := uint64(x)<<32 | uint64(uint32(y))
				if h.seen[pk] {
					continue
				}
				h.seen[pk] = true
				h.stats.OverlapTests++
				if shouldPair(geoms[a], geoms[b]) {
					dst = appendPair(dst, a, b)
					h.stats.PairsOut++
				}
			}
		}
		lo = hi
	}
	for _, pid := range unbounded {
		p := geoms[pid]
		for _, id := range dynamic {
			g := geoms[id]
			if g.Flags.Has(geom.FlagStatic) {
				continue
			}
			h.stats.OverlapTests++
			if geom.ShouldCollide(p, g) {
				dst = appendPair(dst, pid, id)
				h.stats.PairsOut++
			}
		}
	}
	sortPairs(dst)
	return dst
}

// fastFloor truncates toward negative infinity. The != below is an
// exact-representation check (did int conversion lose anything), not a
// value comparison, so it is a legitimate exact float compare.
//
//paraxlint:tolerance
func fastFloor(x float64) int {
	i := int(x)
	if x < 0 && float64(i) != x {
		i--
	}
	return i
}

// sortPairs orders pairs deterministically; determinism keeps
// simulation results reproducible across runs and thread counts.
//
//paraxlint:noalloc
func sortPairs(p []Pair) {
	slices.SortFunc(p, cmpPair)
}

// cmpPair is the canonical (A, B) pair ordering.
func cmpPair(a, b Pair) int {
	if a.A != b.A {
		return int(a.A) - int(b.A)
	}
	return int(a.B) - int(b.B)
}

// BruteForce is the O(n^2) reference implementation used by tests to
// validate the real algorithms.
type BruteForce struct {
	stats Stats
	live  []*geom.Geom
}

// NewBruteForce returns the reference broad phase.
func NewBruteForce() *BruteForce { return &BruteForce{} }

// Stats implements Interface.
func (bf *BruteForce) Stats() Stats { return bf.stats }

// Pairs implements Interface.
func (bf *BruteForce) Pairs(geoms []*geom.Geom, dst []Pair) []Pair {
	return bf.run(geoms, dst, true)
}

// PairsPrerefreshed implements Prerefreshed.
func (bf *BruteForce) PairsPrerefreshed(geoms []*geom.Geom, dst []Pair) []Pair {
	return bf.run(geoms, dst, false)
}

func (bf *BruteForce) run(geoms []*geom.Geom, dst []Pair, refresh bool) []Pair {
	bf.stats = Stats{}
	live := bf.live[:0]
	for _, g := range geoms {
		if !g.Enabled() {
			continue
		}
		if refresh {
			bf.stats.Geoms++
			g.UpdateAABB()
			bf.stats.AABBUpdates++
		}
		live = append(live, g)
	}
	bf.live = live
	for i := 0; i < len(live); i++ {
		for j := i + 1; j < len(live); j++ {
			a, b := live[i], live[j]
			// Plane-vs-plane is filtered by ShouldCollide (two statics).
			bf.stats.OverlapTests++
			if shouldPair(a, b) {
				dst = appendPair(dst, int32(a.ID), int32(b.ID))
				bf.stats.PairsOut++
			}
		}
	}
	sortPairs(dst)
	return dst
}
