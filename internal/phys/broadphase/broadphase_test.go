package broadphase

import (
	"math/rand"
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// randomScene builds n sphere geoms scattered in a cube of the given
// side, with a ground plane.
func randomScene(r *rand.Rand, n int, side float64) []*geom.Geom {
	var gs []*geom.Geom
	gs = append(gs, &geom.Geom{
		ID:    0,
		Shape: geom.Plane{Normal: m3.V(0, 1, 0), Offset: 0},
		Rot:   m3.Ident,
		Body:  -1,
		Flags: geom.FlagStatic,
	})
	for i := 1; i <= n; i++ {
		gs = append(gs, &geom.Geom{
			ID:    i,
			Shape: geom.Sphere{R: 0.3 + r.Float64()*0.5},
			Pos:   m3.V(r.Float64()*side, r.Float64()*side, r.Float64()*side),
			Rot:   m3.Ident,
			Body:  i - 1,
		})
	}
	return gs
}

func pairsEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSAPMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		gs := randomScene(r, 60, 8)
		sap := NewSweepAndPrune()
		got := sap.Pairs(gs, nil)
		want := NewBruteForce().Pairs(gs, nil)
		if !pairsEqual(got, want) {
			t.Fatalf("trial %d: SAP %d pairs, brute force %d pairs", trial, len(got), len(want))
		}
	}
}

func TestSpatialHashMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		gs := randomScene(r, 60, 8)
		sh := NewSpatialHash()
		got := sh.Pairs(gs, nil)
		want := NewBruteForce().Pairs(gs, nil)
		if !pairsEqual(got, want) {
			t.Fatalf("trial %d: hash %d pairs, brute force %d pairs", trial, len(got), len(want))
		}
	}
}

func TestSAPTemporalCoherence(t *testing.T) {
	// Moving the scene slightly between passes must keep results correct
	// and should sort cheaply the second time.
	r := rand.New(rand.NewSource(13))
	gs := randomScene(r, 100, 10)
	sap := NewSweepAndPrune()
	sap.Pairs(gs, nil)
	firstSort := sap.Stats().SortOps
	for _, g := range gs[1:] {
		g.Pos = g.Pos.Add(m3.V(r.Float64()*0.01, r.Float64()*0.01, 0))
	}
	got := sap.Pairs(gs, nil)
	want := NewBruteForce().Pairs(gs, nil)
	if !pairsEqual(got, want) {
		t.Fatal("SAP wrong after incremental update")
	}
	secondSort := sap.Stats().SortOps
	if secondSort > firstSort {
		t.Errorf("expected cheaper incremental sort: first %d, second %d", firstSort, secondSort)
	}
}

func TestDisabledGeomsSkipped(t *testing.T) {
	a := &geom.Geom{ID: 0, Shape: geom.Sphere{R: 1}, Rot: m3.Ident, Body: 0}
	b := &geom.Geom{ID: 1, Shape: geom.Sphere{R: 1}, Rot: m3.Ident, Body: 1}
	c := &geom.Geom{ID: 2, Shape: geom.Sphere{R: 1}, Rot: m3.Ident, Body: 2, Flags: geom.FlagDisabled}
	gs := []*geom.Geom{a, b, c}
	for _, bp := range []Interface{NewSweepAndPrune(), NewSpatialHash(), NewBruteForce()} {
		pairs := bp.Pairs(gs, nil)
		if len(pairs) != 1 || pairs[0] != (Pair{A: 0, B: 1}) {
			t.Errorf("%T: pairs = %v, want [{0 1}]", bp, pairs)
		}
	}
}

func TestGroupFiltering(t *testing.T) {
	a := &geom.Geom{ID: 0, Shape: geom.Sphere{R: 1}, Rot: m3.Ident, Body: 0, Group: 5}
	b := &geom.Geom{ID: 1, Shape: geom.Sphere{R: 1}, Rot: m3.Ident, Body: 1, Group: 5}
	gs := []*geom.Geom{a, b}
	for _, bp := range []Interface{NewSweepAndPrune(), NewSpatialHash()} {
		if pairs := bp.Pairs(gs, nil); len(pairs) != 0 {
			t.Errorf("%T: same-group pair not filtered: %v", bp, pairs)
		}
	}
}

func TestPlanePairsWithAllDynamics(t *testing.T) {
	gs := []*geom.Geom{
		{ID: 0, Shape: geom.Plane{Normal: m3.V(0, 1, 0)}, Rot: m3.Ident, Body: -1, Flags: geom.FlagStatic},
		{ID: 1, Shape: geom.Sphere{R: 1}, Pos: m3.V(0, 100, 0), Rot: m3.Ident, Body: 0},
		{ID: 2, Shape: geom.Sphere{R: 1}, Pos: m3.V(50, 3, -20), Rot: m3.Ident, Body: 1},
	}
	sap := NewSweepAndPrune()
	pairs := sap.Pairs(gs, nil)
	if len(pairs) != 2 {
		t.Fatalf("plane should pair with both spheres, got %v", pairs)
	}
}

func TestStatsPopulated(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	gs := randomScene(r, 30, 5)
	sap := NewSweepAndPrune()
	sap.Pairs(gs, nil)
	st := sap.Stats()
	if st.Geoms != 31 || st.AABBUpdates != 31 {
		t.Errorf("geoms/updates = %d/%d, want 31/31", st.Geoms, st.AABBUpdates)
	}
	if st.OverlapTests == 0 {
		t.Error("no overlap tests recorded")
	}
}

func TestEmptyWorld(t *testing.T) {
	for _, bp := range []Interface{NewSweepAndPrune(), NewSpatialHash(), NewBruteForce()} {
		if pairs := bp.Pairs(nil, nil); len(pairs) != 0 {
			t.Errorf("%T: empty world produced pairs", bp)
		}
	}
}

func BenchmarkSAP500(b *testing.B) {
	r := rand.New(rand.NewSource(15))
	gs := randomScene(r, 500, 20)
	sap := NewSweepAndPrune()
	var buf []Pair
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = sap.Pairs(gs, buf[:0])
	}
}

func BenchmarkSpatialHash500(b *testing.B) {
	r := rand.New(rand.NewSource(15))
	gs := randomScene(r, 500, 20)
	sh := NewSpatialHash()
	var buf []Pair
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = sh.Pairs(gs, buf[:0])
	}
}

// A pass over an unchanged scene must report zero sort work: SortOps
// counts actual exchanges, and an already-sorted order needs none.
// (Regression: the counter used to tick once per element even when the
// order held, inflating the serial-phase work stream.)
func TestSAPSortOpsZeroWhenSorted(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	gs := randomScene(r, 50, 8)
	sap := NewSweepAndPrune()
	sap.Pairs(gs, nil)
	sap.Pairs(gs, nil) // nothing moved
	if ops := sap.Stats().SortOps; ops != 0 {
		t.Errorf("static scene re-pass did %d sort ops, want 0", ops)
	}
}

// Steady-state passes over a coherent scene must not allocate: both
// algorithms keep membership stamps, entry lists and dedup tables
// across passes.
func TestBroadphaseSteadyStateAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	gs := randomScene(r, 80, 9)
	for _, tc := range []struct {
		name string
		bp   Interface
	}{
		{"sap", NewSweepAndPrune()},
		{"hash", NewSpatialHash()},
	} {
		dst := tc.bp.Pairs(gs, nil)
		for i := 0; i < 5; i++ { // warm capacities
			dst = tc.bp.Pairs(gs, dst[:0])
		}
		allocs := testing.AllocsPerRun(20, func() {
			dst = tc.bp.Pairs(gs, dst[:0])
		})
		if allocs > 0 {
			t.Errorf("%s: steady-state pass allocates %v/op, want 0", tc.name, allocs)
		}
	}
}
