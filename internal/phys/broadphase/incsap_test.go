package broadphase

import (
	"math/rand"
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// oracles returns a fresh incremental SAP plus the three reference
// implementations it must agree with pair-for-pair.
func oracles() (inc *IncrementalSAP, refs []Interface) {
	return NewIncrementalSAP(), []Interface{
		NewSweepAndPrune(), NewSpatialHash(), NewBruteForce(),
	}
}

// checkAgainst runs every implementation on the same scene and fails if
// any pair list differs from the incremental one — the cross-check
// oracle required by the determinism contract: incsap output must be
// byte-identical to the full sweep (and therefore to every oracle).
func checkAgainst(t *testing.T, frame int, gs []*geom.Geom, inc *IncrementalSAP, refs []Interface) {
	t.Helper()
	got := inc.Pairs(gs, nil)
	for _, ref := range refs {
		want := ref.Pairs(gs, nil)
		if !pairsEqual(got, want) {
			t.Fatalf("frame %d: incsap diverged from %T (%d vs %d pairs)",
				frame, ref, len(got), len(want))
		}
	}
}

// TestIncSAPMatchesOraclesOverMotion drives a long random walk and
// cross-checks the persistent pair set against full SAP, the spatial
// hash, and brute force every frame.
func TestIncSAPMatchesOraclesOverMotion(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	gs := randomScene(r, 80, 10)
	inc, refs := oracles()
	for frame := 0; frame < 80; frame++ {
		for _, g := range gs[1:] {
			g.Pos = g.Pos.Add(m3.V(
				(r.Float64()-0.5)*0.3,
				(r.Float64()-0.5)*0.3,
				(r.Float64()-0.5)*0.3,
			))
		}
		checkAgainst(t, frame, gs, inc, refs)
	}
}

// TestIncSAPTeleportStorm scrambles every position each frame —
// coherence collapses completely, the swap budget trips, and the
// full-rebuild fallback must keep the output exact.
func TestIncSAPTeleportStorm(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	gs := randomScene(r, 60, 8)
	inc, refs := oracles()
	sawRebuild := false
	for frame := 0; frame < 30; frame++ {
		for _, g := range gs[1:] {
			g.Pos = m3.V(r.Float64()*8, r.Float64()*8, r.Float64()*8)
		}
		checkAgainst(t, frame, gs, inc, refs)
		if frame > 0 && inc.Stats().Rebuilds > 0 {
			sawRebuild = true
		}
	}
	if !sawRebuild {
		t.Error("teleport storm never tripped the coherence-collapse fallback")
	}
}

// TestIncSAPDetonationChurn disables clusters of geoms and spawns new
// debris between passes — the departure/arrival bookkeeping (endpoint
// compaction, set purge, end-append) must stay exact under churn.
func TestIncSAPDetonationChurn(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	gs := randomScene(r, 50, 8)
	inc, refs := oracles()
	for frame := 0; frame < 40; frame++ {
		for _, g := range gs[1:] {
			g.Pos = g.Pos.Add(m3.V((r.Float64()-0.5)*0.2, (r.Float64()-0.5)*0.2, 0))
			if r.Float64() < 0.1 {
				g.Flags ^= geom.FlagDisabled
			}
		}
		if frame%5 == 0 { // debris burst
			for k := 0; k < 4; k++ {
				id := len(gs)
				gs = append(gs, &geom.Geom{
					ID:    id,
					Shape: geom.Sphere{R: 0.2 + r.Float64()*0.3},
					Pos:   m3.V(r.Float64()*8, r.Float64()*8, r.Float64()*8),
					Rot:   m3.Ident,
					Body:  id,
				})
			}
		}
		checkAgainst(t, frame, gs, inc, refs)
	}
}

// TestIncSAPCheaperWhenCoherent is the point of the structure: a pass
// over a nearly-still scene must do far less sort work than the first
// (rebuild) pass, and an unchanged scene must report zero exchanges.
func TestIncSAPCheaperWhenCoherent(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	gs := randomScene(r, 100, 10)
	inc := NewIncrementalSAP()
	inc.Pairs(gs, nil)
	if inc.Stats().Rebuilds != 1 {
		t.Fatalf("first pass rebuilds = %d, want 1", inc.Stats().Rebuilds)
	}
	inc.Pairs(gs, nil) // nothing moved
	if st := inc.Stats(); st.SortOps != 0 || st.Rebuilds != 0 {
		t.Errorf("static re-pass: sortOps=%d rebuilds=%d, want 0/0", st.SortOps, st.Rebuilds)
	}
	for _, g := range gs[1:] {
		g.Pos = g.Pos.Add(m3.V(r.Float64()*0.01, r.Float64()*0.01, 0))
	}
	got := inc.Pairs(gs, nil)
	if st := inc.Stats(); st.Rebuilds != 0 || st.SortOps > 2*len(gs) {
		t.Errorf("coherent drift: sortOps=%d rebuilds=%d, want few swaps and no rebuild",
			st.SortOps, st.Rebuilds)
	}
	if want := NewBruteForce().Pairs(gs, nil); !pairsEqual(got, want) {
		t.Fatal("incremental pass diverged after drift")
	}
}

// TestIncSAPPrerefreshedMatches checks the two entry points emit the
// same pairs when boxes are already fresh, and that the prerefreshed
// path leaves the refresh counters to the caller.
func TestIncSAPPrerefreshedMatches(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	gs := randomScene(r, 40, 7)
	for _, g := range gs {
		g.UpdateAABB()
	}
	inc := NewIncrementalSAP()
	got := inc.PairsPrerefreshed(gs, nil)
	if st := inc.Stats(); st.Geoms != 0 || st.AABBUpdates != 0 {
		t.Errorf("prerefreshed pass counted geoms=%d updates=%d, want 0/0", st.Geoms, st.AABBUpdates)
	}
	if want := NewBruteForce().Pairs(gs, nil); !pairsEqual(got, want) {
		t.Fatal("prerefreshed pairs diverged from reference")
	}
}

// TestIncSAPStateRoundTrip saves the cross-step state mid-run, keeps
// stepping both the original and a restored copy, and requires
// identical pairs and identical Stats — the bit-transparency contract
// snapshot/Restore relies on.
func TestIncSAPStateRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(36))
	gs := randomScene(r, 60, 9)
	inc := NewIncrementalSAP()
	for frame := 0; frame < 10; frame++ {
		for _, g := range gs[1:] {
			g.Pos = g.Pos.Add(m3.V((r.Float64()-0.5)*0.2, (r.Float64()-0.5)*0.2, 0))
		}
		inc.Pairs(gs, nil)
	}
	st := inc.SaveState()
	restored := NewIncrementalSAP()
	restored.RestoreState(st)
	for frame := 0; frame < 10; frame++ {
		for _, g := range gs[1:] {
			g.Pos = g.Pos.Add(m3.V((r.Float64()-0.5)*0.2, 0, (r.Float64()-0.5)*0.2))
		}
		a := inc.Pairs(gs, nil)
		b := restored.Pairs(gs, nil)
		if !pairsEqual(a, b) {
			t.Fatalf("frame %d: restored structure diverged (%d vs %d pairs)", frame, len(a), len(b))
		}
		if inc.Stats() != restored.Stats() {
			t.Fatalf("frame %d: stats diverged: %+v vs %+v", frame, inc.Stats(), restored.Stats())
		}
	}
}

// TestIncSAPSteadyStateAllocs: passes over a coherent scene must not
// allocate once capacities are warm (the pair-set map reuses buckets
// across the delete/insert churn of sliding contacts).
func TestIncSAPSteadyStateAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	gs := randomScene(r, 80, 9)
	inc := NewIncrementalSAP()
	dst := inc.Pairs(gs, nil)
	for i := 0; i < 5; i++ { // warm capacities
		for _, g := range gs[1:] {
			g.Pos = g.Pos.Add(m3.V(r.Float64()*0.01, 0, 0))
		}
		dst = inc.Pairs(gs, dst[:0])
	}
	allocs := testing.AllocsPerRun(20, func() {
		dst = inc.Pairs(gs, dst[:0])
	})
	if allocs > 0 {
		t.Errorf("incsap steady-state pass allocates %v/op, want 0", allocs)
	}
}

// TestNewByName pins the flag-name registry.
func TestNewByName(t *testing.T) {
	for name, want := range map[string]string{
		"sap":    "*broadphase.SweepAndPrune",
		"incsap": "*broadphase.IncrementalSAP",
		"grid":   "*broadphase.SpatialHash",
		"hash":   "*broadphase.SpatialHash",
		"brute":  "*broadphase.BruteForce",
	} {
		bp, err := NewByName(name)
		if err != nil {
			t.Fatalf("NewByName(%q): %v", name, err)
		}
		if got := typeName(bp); got != want {
			t.Errorf("NewByName(%q) = %s, want %s", name, got, want)
		}
	}
	if _, err := NewByName("quadtree"); err == nil {
		t.Error("NewByName accepted an unknown name")
	}
}

func typeName(v any) string {
	switch v.(type) {
	case *SweepAndPrune:
		return "*broadphase.SweepAndPrune"
	case *IncrementalSAP:
		return "*broadphase.IncrementalSAP"
	case *SpatialHash:
		return "*broadphase.SpatialHash"
	case *BruteForce:
		return "*broadphase.BruteForce"
	}
	return "?"
}

func BenchmarkIncSAP500(b *testing.B) {
	r := rand.New(rand.NewSource(15))
	gs := randomScene(r, 500, 20)
	inc := NewIncrementalSAP()
	var buf []Pair
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = inc.Pairs(gs, buf[:0])
	}
}
