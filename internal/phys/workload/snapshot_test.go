package workload

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/parallax-arch/parallax/internal/obs"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// TestSnapshotRoundTripAllBenchmarks is the acceptance gate for the
// snapshot subsystem: for every paper benchmark, restoring a mid-run
// snapshot and stepping on must be bit-identical to the uninterrupted
// run — profile digest by profile digest and snapshot byte for byte —
// at 1 and 8 threads, regardless of the thread count that recorded it.
func TestSnapshotRoundTripAllBenchmarks(t *testing.T) {
	const (
		scale     = 0.25
		warmSteps = 15
		runSteps  = 30
	)
	for _, b := range All {
		for _, threads := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s/threads=%d", b.Name, threads), func(t *testing.T) {
				w := b.Build(scale)
				w.Threads = 4
				for i := 0; i < warmSteps; i++ {
					w.Step()
				}
				w2 := world.New()
				w2.Threads = threads
				if err := w2.Restore(w.Snapshot()); err != nil {
					t.Fatalf("Restore: %v", err)
				}
				for i := 0; i < runSteps; i++ {
					w.Step()
					w2.Step()
					if w.Profile.Digest() != w2.Profile.Digest() {
						t.Fatalf("profile diverged at step %d after restore", i)
					}
				}
				if !bytes.Equal(w.Snapshot(), w2.Snapshot()) {
					t.Fatal("world state diverged after restore")
				}
			})
		}
	}
}

// TestSnapshotPreservesMetrics: two worlds forked via snapshot and given
// fresh metric registries must log identical metrics while stepping —
// the observable work stream, not just the end state, survives a
// restore.
func TestSnapshotPreservesMetrics(t *testing.T) {
	b, ok := ByName("Mix")
	if !ok {
		t.Fatal("Mix benchmark missing")
	}
	w := b.Build(0.25)
	w.Threads = 2
	for i := 0; i < 15; i++ {
		w.Step()
	}
	w2 := world.New()
	w2.Threads = 8
	if err := w2.Restore(w.Snapshot()); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	r1, r2 := obs.NewRegistry(), obs.NewRegistry()
	w.SetObs(nil, r1, "bench")
	w2.SetObs(nil, r2, "bench")
	for i := 0; i < 30; i++ {
		w.Step()
		w2.Step()
	}
	if s1, s2 := r1.Snapshot(), r2.Snapshot(); s1 != s2 {
		t.Fatalf("metrics diverged after restore:\n--- original ---\n%s\n--- restored ---\n%s", s1, s2)
	}
}
