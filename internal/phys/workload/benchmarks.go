package workload

import (
	"math"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// Benchmark is one scene of the suite. Build constructs the world at the
// given scale (1.0 = the paper's scale; tests use smaller scales).
type Benchmark struct {
	Name  string
	Genre string
	Desc  string
	Build func(scale float64) *world.World
}

// All lists the eight benchmarks in the paper's order (Table 3).
var All = []Benchmark{
	{"Periodic", "role-playing",
		"groups of humanoids engaging in hand-to-hand combat", BuildPeriodic},
	{"Ragdoll", "first-person shooter",
		"humanoids falling due to impact from projectiles", BuildRagdoll},
	{"Continuous", "racing",
		"cars driving on terrain and between obstacles", BuildContinuous},
	{"Breakable", "first-person shooter",
		"cannons and exploding vehicles fracturing walls and bridges", BuildBreakable},
	{"Deformable", "sports/action",
		"uniformed players and large cloth objects", BuildDeformable},
	{"Explosions", "real-time strategy",
		"an army with cannons fighting in an urban environment", BuildExplosions},
	{"Highspeed", "action",
		"cars crashing into walls, high-speed rockets hitting buildings", BuildHighspeed},
	{"Mix", "all",
		"all features combined: terrain, cloth, fracture, explosions", BuildMix},
}

// ByName finds a benchmark by its name.
func ByName(name string) (Benchmark, bool) {
	for _, b := range All {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

func count(base int, scale float64) int {
	n := int(math.Round(float64(base) * scale))
	if n < 1 {
		n = 1
	}
	return n
}

// BuildPeriodic: 30 humanoids with 3 groups of 5, 3 groups of 3, and 3
// groups of 2, all members of each group in combat with one another
// (continuous periodic contact).
func BuildPeriodic(scale float64) *world.World {
	w := world.New()
	b := newBuilder(w, 1)
	w.AddStatic(geom.Plane{Normal: m3.V(0, 1, 0), Offset: 0}, m3.Zero, m3.QIdent)
	groupSizes := []int{5, 5, 5, 3, 3, 3, 2, 2, 2}
	total := 0
	for _, g := range groupSizes {
		total += g
	}
	want := count(30, scale)
	placed := 0
	gi := 0
	for placed < want {
		size := groupSizes[gi%len(groupSizes)]
		if placed+size > want {
			size = want - placed
		}
		center := m3.V(float64(gi%3)*8, 0, float64(gi/3)*8)
		for k := 0; k < size; k++ {
			ang := 2 * math.Pi * float64(k) / float64(size)
			pos := center.Add(m3.V(math.Cos(ang)*0.8, 0, math.Sin(ang)*0.8))
			h := b.humanoid(pos, false)
			// Lunge toward the group center: periodic contact.
			for _, bi := range h.Bodies {
				w.Bodies[bi].LinVel = center.Sub(pos).Norm().Scale(1.5)
			}
		}
		placed += size
		gi++
	}
	return w
}

// BuildRagdoll: 30 ragdolls all falling away from each other after
// projectile impacts.
func BuildRagdoll(scale float64) *world.World {
	w := world.New()
	b := newBuilder(w, 2)
	w.AddStatic(geom.Plane{Normal: m3.V(0, 1, 0), Offset: 0}, m3.Zero, m3.QIdent)
	n := count(30, scale)
	for k := 0; k < n; k++ {
		ang := 2 * math.Pi * float64(k) / float64(n)
		pos := m3.V(math.Cos(ang)*3, 1.2, math.Sin(ang)*3)
		h := b.humanoid(pos, false)
		out := m3.V(math.Cos(ang), 0.4, math.Sin(ang)).Norm()
		for _, bi := range h.Bodies {
			w.Bodies[bi].LinVel = out.Scale(4)
			w.Bodies[bi].AngVel = m3.V(b.rng.Float64()-0.5, b.rng.Float64()-0.5, 0).Scale(3)
		}
	}
	return w
}

// BuildContinuous: a rally race — 30 cars over heightfield and trimesh
// terrain between many static obstacles (continuous contact).
func BuildContinuous(scale float64) *world.World {
	w := world.New()
	b := newBuilder(w, 3)
	hf := b.terrain(m3.V(-10, 0, -10), 48, 1.5, 0.4)
	b.meshPatch(m3.V(-10, 0, 62), 24, 1.5)
	b.obstacles(count(1650, scale), 55, m3.V(-5, 0.5, -5))
	n := count(30, scale)
	for k := 0; k < n; k++ {
		x, z := float64(k%6)*5, float64(k/6)*7
		ground := hf.HeightAt(x+10, z+10) // terrain origin is (-10,0,-10)
		c := b.car(m3.V(x, ground+0.02, z), false)
		b.drive(c, m3.V(0, 0, 1), 11)
	}
	return w
}

// BuildBreakable: three areas each enclosed by three prefractured walls
// with two bridges; 30 humans in groups of 10; six vehicles ram the
// walls and explode on contact.
func BuildBreakable(scale float64) *world.World {
	w := world.New()
	w.EnableSleep = true
	b := newBuilder(w, 4)
	w.AddStatic(geom.Plane{Normal: m3.V(0, 1, 0), Offset: 0}, m3.Zero, m3.QIdent)
	areas := count(3, math.Sqrt(scale))
	wallBricksX := count(13, math.Sqrt(scale))
	wallBricksY := count(9, math.Sqrt(scale))
	for a := 0; a < areas; a++ {
		base := m3.V(float64(a)*30, 0, 0)
		b.wall(base, m3.V(1, 0, 0), wallBricksX, wallBricksY, true)
		b.wall(base, m3.V(0, 0, 1), wallBricksX, wallBricksY, true)
		b.wall(base.Add(m3.V(13, 0, 13)), m3.V(-1, 0, 0), wallBricksX, wallBricksY, true)
		b.bridge(base.Add(m3.V(2, 2.5, 16)), base.Add(m3.V(10, 2.5, 16)), 8)
		b.bridge(base.Add(m3.V(2, 2.5, 19)), base.Add(m3.V(10, 2.5, 19)), 8)
		// Humans scattered in a group of 10 inside the area.
		for k := 0; k < count(10, scale); k++ {
			pos := base.Add(m3.V(3+float64(k%5)*1.5, 0, 3+float64(k/5)*1.5))
			b.humanoid(pos, true)
		}
		// Two ramming vehicles per area, exploding on contact.
		for v := 0; v < 2; v++ {
			cpos := base.Add(m3.V(6+float64(v)*2, 0, -2.6))
			c := b.car(cpos, true)
			b.drive(c, m3.V(0, 0, 1), 14)
			w.MarkExplosive(c.Geom, world.ExplosiveSpec{Radius: 4, Duration: 0.06, Impulse: 60})
		}
		// Cannonballs already in flight, hitting the walls within the
		// measured frames (~0.15 s at 28 m/s from ~4 m out).
		for s := 0; s < 3; s++ {
			from := base.Add(m3.V(float64(s)*4+1, 3.0, -4.2))
			target := base.Add(m3.V(float64(s)*4+2, 1.5, 0.3))
			b.projectile(from, target, 28, &world.ExplosiveSpec{Radius: 3.5, Duration: 0.06, Impulse: 50})
		}
	}
	return w
}

// BuildDeformable: 30 uniformed players (small cloth attached to each)
// and 2 large cloth objects each in contact with one player.
func BuildDeformable(scale float64) *world.World {
	w := world.New()
	b := newBuilder(w, 5)
	w.AddStatic(geom.Plane{Normal: m3.V(0, 1, 0), Offset: 0}, m3.Zero, m3.QIdent)
	n := count(30, scale)
	var first, second *Humanoid
	for k := 0; k < n; k++ {
		pos := m3.V(float64(k%6)*2.5, 0, float64(k/6)*2.5)
		h := b.humanoid(pos, false)
		b.smallClothOn(h)
		if k == 0 {
			first = h
		}
		if k == 1 {
			second = h
		}
		// Gentle jostling keeps contacts flowing.
		for _, bi := range h.Bodies {
			w.Bodies[bi].LinVel = m3.V(b.rng.Float64()-0.5, 0, b.rng.Float64()-0.5)
		}
	}
	// Two large cloths draped over the first two players.
	if first != nil {
		p := w.Bodies[first.Pelvis].Pos
		b.largeCloth(m3.V(p.X-1.0, 2.0, p.Z-1.0), false)
	}
	if second != nil {
		p := w.Bodies[second.Pelvis].Pos
		b.largeCloth(m3.V(p.X-1.0, 2.1, p.Z-1.0), false)
	}
	return w
}

// BuildExplosions: ten walled areas, 50 roaming vehicles, ten cannons
// shooting exploding projectiles. No breakable joints or prefracture —
// pure blast and contact load.
func BuildExplosions(scale float64) *world.World {
	w := world.New()
	w.EnableSleep = true
	b := newBuilder(w, 6)
	w.AddStatic(geom.Plane{Normal: m3.V(0, 1, 0), Offset: 0}, m3.Zero, m3.QIdent)
	areas := count(10, math.Sqrt(scale))
	bricksX := count(11, math.Sqrt(scale))
	bricksY := count(10, math.Sqrt(scale))
	for a := 0; a < areas; a++ {
		base := m3.V(float64(a%5)*26, 0, float64(a/5)*26)
		b.wall(base, m3.V(1, 0, 0), bricksX, bricksY, false)
		b.wall(base, m3.V(0, 0, 1), bricksX, bricksY, false)
		b.wall(base.Add(m3.V(11, 0, 11)), m3.V(-1, 0, 0), bricksX, bricksY, false)
	}
	nveh := count(50, scale)
	for v := 0; v < nveh; v++ {
		pos := m3.V(float64(v%10)*10+3, 0, float64(v/10)*10+16)
		c := b.car(pos, false)
		dir := m3.V(math.Cos(float64(v)), 0, math.Sin(float64(v))).Norm()
		b.drive(c, dir, 8)
	}
	ncan := count(10, scale)
	for s := 0; s < ncan; s++ {
		// Shells already in flight, ~4 m from their impact points.
		from := m3.V(float64(s)*12+2, 2.6, 0.6)
		target := m3.V(float64(s)*12+4, 1.2, 4.2)
		b.projectile(from, target, 26, &world.ExplosiveSpec{Radius: 4, Duration: 0.06, Impulse: 70})
		b.projectile(from.Add(m3.V(1, 0.5, -1.5)), target, 26,
			&world.ExplosiveSpec{Radius: 4, Duration: 0.06, Impulse: 70})
	}
	return w
}

// BuildHighspeed: ten buildings, 20 moving cars, ten cannons shooting
// high-speed projectiles — no explosions, just the complexity of
// detecting high-speed impacts.
func BuildHighspeed(scale float64) *world.World {
	w := world.New()
	w.EnableSleep = true
	b := newBuilder(w, 7)
	w.AddStatic(geom.Plane{Normal: m3.V(0, 1, 0), Offset: 0}, m3.Zero, m3.QIdent)
	nb := count(10, math.Sqrt(scale))
	floors := count(20, math.Sqrt(scale))
	for k := 0; k < nb; k++ {
		b.building(m3.V(float64(k%5)*12, 0, float64(k/5)*12), floors, false)
	}
	ncar := count(20, scale)
	for v := 0; v < ncar; v++ {
		pos := m3.V(float64(v%5)*11+4, 0, float64(v/5)*11-8)
		c := b.car(pos, false)
		b.drive(c, m3.V(0, 0, 1), 22) // crashing speed
	}
	ncan := count(10, scale)
	for s := 0; s < ncan; s++ {
		// High-speed rockets ~12 m out hit within ~0.13 s at 90 m/s.
		from := m3.V(float64(s%5)*12+1, 5+float64(s%3), -12)
		target := m3.V(float64(s%5)*12, 4, float64(s/5)*12)
		b.projectile(from, target, 90, nil) // high-speed rocket
		b.projectile(from.Add(m3.V(0.5, 0.5, -5)), target, 90, nil)
	}
	return w
}

// BuildMix: all features combined — heightfield terrain, 3 prefractured
// buildings with large cloths over their openings, 6 bridges, 30
// cloth-draped humanoids, 6 vehicles, breakable joints and exploding
// projectiles.
func BuildMix(scale float64) *world.World {
	w := world.New()
	w.EnableSleep = true
	b := newBuilder(w, 8)
	b.terrain(m3.V(-12, -0.2, -12), 40, 1.6, 0.25)
	nb := count(3, scale)
	for k := 0; k < nb; k++ {
		base := m3.V(float64(k)*14, 0.3, 0)
		b.building(base, count(22, math.Sqrt(scale)), true)
		// A large cloth covering the building opening.
		b.largeCloth(base.Add(m3.V(-0.9, float64(count(22, math.Sqrt(scale)))*0.6+0.4, -0.9)), true)
	}
	for k := 0; k < count(6, scale); k++ {
		a := m3.V(float64(k)*8, 2.2, 10)
		c := a.Add(m3.V(6, 0, 0))
		b.bridge(a, c, 8)
	}
	for k := 0; k < count(30, scale); k++ {
		pos := m3.V(float64(k%6)*2.5, 0.3, 14+float64(k/6)*2.5)
		h := b.humanoid(pos, true)
		b.smallClothOn(h)
	}
	for v := 0; v < count(6, scale); v++ {
		cpos := m3.V(float64(v)*6, 0.4, 24)
		c := b.car(cpos, true)
		b.drive(c, m3.V(0, 0, -1), 12)
		w.MarkExplosive(c.Geom, world.ExplosiveSpec{Radius: 4, Duration: 0.06, Impulse: 60})
	}
	for s := 0; s < count(6, scale); s++ {
		from := m3.V(float64(s%3)*14+1, 5, -4.5)
		target := m3.V(float64(s%3)*14, 3, 0)
		b.projectile(from, target, 30, &world.ExplosiveSpec{Radius: 3.5, Duration: 0.06, Impulse: 55})
	}
	return w
}

// BuildWallRubble is the steady-state stepping scene shared by the
// repo's BenchmarkStep and paraxsim's -stepbench mode: a brick wall
// stacked on a ground plane with a field of rubble (spheres and boxes)
// settling around it. It is deliberately not part of All — it is a
// measurement scene, not a paper benchmark. At steady state every step
// exercises broad phase, narrow phase, island creation and island
// processing with a stable contact topology and no event paths (no
// explosives, fracture or cloth), so steady-state stepping stays
// allocation-free.
func BuildWallRubble() *world.World {
	w := world.New()
	w.AddStatic(geom.Plane{Normal: m3.V(0, 1, 0)}, m3.Zero, m3.QIdent)
	// Brick wall: 8 columns x 6 rows.
	for row := 0; row < 6; row++ {
		for col := 0; col < 8; col++ {
			x := float64(col)*1.02 + 0.51*float64(row%2)
			y := 0.5 + float64(row)*1.01
			w.AddBody(geom.Box{Half: m3.V(0.5, 0.5, 0.25)}, 4.0, m3.V(x, y, 0), m3.QIdent, 0, 0)
		}
	}
	// Rubble field in front of the wall.
	for i := 0; i < 40; i++ {
		x := float64(i%10)*0.9 - 0.5
		z := 2 + float64(i/10)*0.9
		if i%2 == 0 {
			w.AddBody(geom.Sphere{R: 0.3}, 1.0, m3.V(x, 0.3, z), m3.QIdent, 0, 0)
		} else {
			w.AddBody(geom.Box{Half: m3.V(0.3, 0.2, 0.3)}, 1.5, m3.V(x, 0.2, z), m3.QIdent, 0, 0)
		}
	}
	return w
}
