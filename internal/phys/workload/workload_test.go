package workload

import (
	"io"
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// testScale keeps unit tests fast; full scale runs in the bench harness.
const testScale = 0.12

func TestAllBenchmarksBuildAndStep(t *testing.T) {
	for _, b := range All {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			w := b.Build(testScale)
			if len(w.Bodies) == 0 {
				t.Fatal("benchmark has no bodies")
			}
			for i := 0; i < 6; i++ { // two frames
				w.Step()
			}
			for bi, bd := range w.Bodies {
				if !bd.Valid() {
					t.Fatalf("body %d invalid after stepping", bi)
				}
			}
			if w.Profile.Pairs == 0 {
				t.Error("benchmark produced no candidate pairs")
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("Mix"); !ok {
		t.Error("Mix not found")
	}
	if _, ok := ByName("Nope"); ok {
		t.Error("unknown benchmark found")
	}
	if len(All) != 8 {
		t.Errorf("suite has %d benchmarks, want 8", len(All))
	}
}

func TestHumanoidSegmentCount(t *testing.T) {
	w := world.New()
	b := newBuilder(w, 1)
	h := b.humanoid(m3.Zero, false)
	if len(h.Bodies) != 16 {
		t.Errorf("humanoid segments = %d, want 16", len(h.Bodies))
	}
	if b.permJoints != 15 {
		t.Errorf("humanoid joints = %d, want 15", b.permJoints)
	}
}

func TestPeriodicComposition(t *testing.T) {
	w := BuildPeriodic(1.0)
	st := MeasureStats("Periodic", w)
	if st.DynamicObjs != 480 {
		t.Errorf("Periodic dynamic objects = %d, want 480 (30 humanoids x 16)", st.DynamicObjs)
	}
	if st.StaticJoints != 450 {
		t.Errorf("Periodic joints = %d, want 450", st.StaticJoints)
	}
	if st.ClothObjs != 0 || st.PrefracturedObj != 0 {
		t.Errorf("Periodic should have no cloth or prefracture: %+v", st)
	}
}

func TestDeformableComposition(t *testing.T) {
	w := BuildDeformable(1.0)
	st := MeasureStats("Deformable", w)
	if st.ClothObjs != 32 {
		t.Errorf("Deformable cloths = %d, want 32 (30 small + 2 large)", st.ClothObjs)
	}
	if st.ClothVerts != 30*25+2*625 {
		t.Errorf("Deformable cloth verts = %d, want %d", st.ClothVerts, 30*25+2*625)
	}
}

func TestBreakableHasPrefracture(t *testing.T) {
	w := BuildBreakable(testScale)
	st := MeasureStats("Breakable", w)
	if st.PrefracturedObj == 0 {
		t.Error("Breakable has no prefractured debris")
	}
	if len(w.Explosives) == 0 {
		t.Error("Breakable has no explosives")
	}
	if len(w.Fractures) == 0 {
		t.Error("Breakable has no fracture groups")
	}
}

func TestExplosionsDetonateOverTime(t *testing.T) {
	w := BuildExplosions(testScale)
	totalExpl := 0
	for i := 0; i < 40; i++ {
		w.Step()
		totalExpl += w.Profile.Explosions
	}
	if totalExpl == 0 {
		t.Error("no explosions fired in Explosions benchmark")
	}
}

func TestHighspeedProjectilesHit(t *testing.T) {
	w := BuildHighspeed(testScale)
	// Projectiles at 90 m/s should produce contacts within a second.
	contacts := 0
	for i := 0; i < 60; i++ {
		w.Step()
		contacts += w.Profile.Contacts
	}
	if contacts == 0 {
		t.Error("no contacts in Highspeed benchmark")
	}
}

func TestMixHasEverything(t *testing.T) {
	w := BuildMix(testScale)
	st := MeasureStats("Mix", w)
	if st.ClothObjs == 0 {
		t.Error("Mix has no cloth")
	}
	if st.PrefracturedObj == 0 {
		t.Error("Mix has no prefracture")
	}
	if len(w.Explosives) == 0 {
		t.Error("Mix has no explosives")
	}
	hasHF := false
	for _, g := range w.Geoms {
		if g.Shape.Kind() == geom.KindHeightField {
			hasHF = true
		}
	}
	if !hasHF {
		t.Error("Mix has no heightfield terrain")
	}
}

func TestPrintTable4SmallScale(t *testing.T) {
	rows := PrintTable4(io.Discard, 0.06)
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ObjPairs == 0 {
			t.Errorf("%s: no object pairs measured", r.Name)
		}
	}
}

func TestComplexityOrdering(t *testing.T) {
	// The suite is designed to scale in complexity from Periodic to Mix
	// (paper: "The distribution of execution times shows good complexity
	// scaling ranging from Periodic to Mix"). Check the pair counts of
	// the extremes at a common scale.
	per := MeasureStats("Periodic", BuildPeriodic(0.1))
	mix := MeasureStats("Mix", BuildMix(0.1))
	if mix.ObjPairs <= per.ObjPairs {
		t.Errorf("Mix (%d pairs) should exceed Periodic (%d pairs)",
			mix.ObjPairs, per.ObjPairs)
	}
}
