package workload

import (
	"fmt"
	"io"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/joint"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// SceneStats is this suite's Table 4 row: the static composition of a
// benchmark scene.
type SceneStats struct {
	Name            string
	StaticObjs      int
	DynamicObjs     int
	PrefracturedObj int
	ClothObjs       int
	ClothVerts      int
	StaticJoints    int
	// Measured after warm-up (the first step of the measured frame):
	ObjPairs int
	Islands  int
}

// MeasureStats warms the world up by one simulation step (the paper
// warms each benchmark for one step before measuring) and collects the
// Table 4 row.
func MeasureStats(name string, w *world.World) SceneStats {
	s := SceneStats{Name: name}
	for _, g := range w.Geoms {
		switch {
		case g.Flags.Has(geom.FlagCloth):
			// proxy, not an object
		case g.Flags.Has(geom.FlagDebris):
			s.PrefracturedObj++
		case g.Flags.Has(geom.FlagStatic):
			s.StaticObjs++
		case g.Flags.Has(geom.FlagBlast):
			// transient
		default:
			s.DynamicObjs++
		}
	}
	for _, c := range w.Cloths {
		s.ClothObjs++
		s.ClothVerts += c.NumVertices()
	}
	for _, j := range w.Joints {
		if _, isBr := j.(*joint.Breakable); isBr {
			s.StaticJoints++
			continue
		}
		s.StaticJoints++
	}
	w.Step() // warm-up
	s.ObjPairs = w.Profile.Pairs
	s.Islands = len(w.Profile.Islands)
	return s
}

// PrintTable4 writes the suite's Table 4 analog for all benchmarks at
// the given scale.
func PrintTable4(wr io.Writer, scale float64) []SceneStats {
	fmt.Fprintf(wr, "%-12s %9s %8s %6s %14s %11s %12s %13s\n",
		"Benchmark", "Obj-Pairs", "Islands", "Cloth", "[vertices]",
		"StaticObjs", "DynamicObjs", "Prefractured")
	var out []SceneStats
	for _, b := range All {
		w := b.Build(scale)
		st := MeasureStats(b.Name, w)
		fmt.Fprintf(wr, "%-12s %9d %8d %6d %14d %11d %12d %13d\n",
			st.Name, st.ObjPairs, st.Islands, st.ClothObjs, st.ClothVerts,
			st.StaticObjs, st.DynamicObjs, st.PrefracturedObj)
		out = append(out, st)
	}
	return out
}
