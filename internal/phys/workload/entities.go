// Package workload builds the paper's forward-looking benchmark suite
// (Tables 2-4): eight parameterized scenes — Periodic, Ragdoll,
// Continuous, Breakable, Deformable, Explosions, Highspeed, and Mix —
// covering constrained rigid bodies (virtual humans of 16 segments,
// cars), terrains, breakable joints, prefractured objects, explosions,
// static obstacles and cloth simulation.
package workload

import (
	"math"
	"math/rand"

	"github.com/parallax-arch/parallax/internal/phys/cloth"
	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/joint"
	"github.com/parallax-arch/parallax/internal/phys/m3"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// groupCounter hands out collision groups so articulated figures do not
// self-collide.
type builder struct {
	w         *world.World
	rng       *rand.Rand
	nextGroup int32
	// entity counters for the benchmark spec.
	humans, cars, bricks, planks, clothsSmall, clothsLarge int
	permJoints                                             int
}

func newBuilder(w *world.World, seed int64) *builder {
	return &builder{w: w, rng: rand.New(rand.NewSource(seed)), nextGroup: 1}
}

func (b *builder) group() int32 {
	g := b.nextGroup
	b.nextGroup++
	return g
}

func (b *builder) addJoint(j joint.Joint) int32 {
	b.permJoints++
	return b.w.AddJoint(j)
}

// Humanoid is one 16-segment virtual human: pelvis, torso, chest, head,
// and per side upper arm, forearm, hand, thigh, shin, foot — joined by
// ball and hinge joints (paper Table 2: "Virtual humans consist of 16
// segments of anthropomorphic dimensions").
type Humanoid struct {
	Bodies []int32
	Geoms  []int32
	Pelvis int32
}

// humanoid builds a standing figure with feet at base.
func (b *builder) humanoid(base m3.Vec, breakableJoints bool) *Humanoid {
	w := b.w
	grp := b.group()
	h := &Humanoid{}
	b.humans++

	add := func(s geom.Shape, mass float64, pos m3.Vec, rot m3.Quat) int32 {
		bi, gi := w.AddBody(s, mass, pos, rot, 0, grp)
		h.Bodies = append(h.Bodies, bi)
		h.Geoms = append(h.Geoms, gi)
		return bi
	}
	join := func(j joint.Joint) {
		if breakableJoints {
			b.addJoint(joint.NewBreakable(j, 6000, 0))
		} else {
			b.addJoint(j)
		}
	}
	up := func(y float64) m3.Vec { return base.Add(m3.V(0, y, 0)) }
	sideways := m3.QFromAxisAngle(m3.V(1, 0, 0), math.Pi/2) // capsule Z-axis -> vertical? no: rotates Z to -Y

	// Legs (capsule axes vertical via rotation about X by 90 deg).
	legRot := sideways
	pelvis := add(geom.Box{Half: m3.V(0.17, 0.1, 0.12)}, 8, up(0.95), m3.QIdent)
	h.Pelvis = pelvis
	torso := add(geom.Box{Half: m3.V(0.16, 0.12, 0.11)}, 10, up(1.18), m3.QIdent)
	chest := add(geom.Box{Half: m3.V(0.18, 0.12, 0.12)}, 10, up(1.42), m3.QIdent)
	head := add(geom.Sphere{R: 0.11}, 4, up(1.68), m3.QIdent)
	join(joint.NewBall(w.Bodies, pelvis, torso, up(1.06)))
	join(joint.NewBall(w.Bodies, torso, chest, up(1.30)))
	join(joint.NewBall(w.Bodies, chest, head, up(1.56)))

	for _, side := range [2]float64{-1, 1} {
		sx := func(x float64) m3.Vec { return base.Add(m3.V(side*x, 0, 0)) }
		_ = sx
		// Arm chain.
		shoulder := base.Add(m3.V(side*0.26, 1.48, 0))
		uarm := add(geom.Capsule{R: 0.05, HalfLen: 0.12}, 2.5,
			base.Add(m3.V(side*0.26, 1.31, 0)), legRot)
		join(joint.NewBall(w.Bodies, chest, uarm, shoulder))
		elbow := base.Add(m3.V(side*0.26, 1.14, 0))
		farm := add(geom.Capsule{R: 0.04, HalfLen: 0.11}, 1.8,
			base.Add(m3.V(side*0.26, 0.99, 0)), legRot)
		join(joint.NewHinge(w.Bodies, uarm, farm, elbow, m3.V(1, 0, 0)))
		wrist := base.Add(m3.V(side*0.26, 0.84, 0))
		hand := add(geom.Box{Half: m3.V(0.04, 0.06, 0.03)}, 0.5,
			base.Add(m3.V(side*0.26, 0.76, 0)), m3.QIdent)
		join(joint.NewBall(w.Bodies, farm, hand, wrist))

		// Leg chain.
		hip := base.Add(m3.V(side*0.1, 0.88, 0))
		thigh := add(geom.Capsule{R: 0.07, HalfLen: 0.16}, 6,
			base.Add(m3.V(side*0.1, 0.66, 0)), legRot)
		join(joint.NewBall(w.Bodies, pelvis, thigh, hip))
		knee := base.Add(m3.V(side*0.1, 0.44, 0))
		shin := add(geom.Capsule{R: 0.055, HalfLen: 0.16}, 4,
			base.Add(m3.V(side*0.1, 0.23, 0)), legRot)
		join(joint.NewHinge(w.Bodies, thigh, shin, knee, m3.V(1, 0, 0)))
		ankle := base.Add(m3.V(side*0.1, 0.05, 0))
		foot := add(geom.Box{Half: m3.V(0.05, 0.03, 0.11)}, 1,
			base.Add(m3.V(side*0.1, 0.03, 0.04)), m3.QIdent)
		join(joint.NewHinge(w.Bodies, shin, foot, ankle, m3.V(1, 0, 0)))
	}
	return h
}

// Car is a vehicle: a chassis box with four spherical wheels on softly
// anchored hinges (the suspension system of slider-like compliance).
type Car struct {
	Chassis int32
	Wheels  [4]int32
	Geom    int32
}

func (b *builder) car(pos m3.Vec, breakableJoints bool) *Car {
	w := b.w
	grp := b.group()
	b.cars++
	c := &Car{}
	var gi int32
	c.Chassis, gi = w.AddBody(geom.Box{Half: m3.V(0.9, 0.3, 0.5)}, 400,
		pos.Add(m3.V(0, 0.55, 0)), m3.QIdent, 0, grp)
	c.Geom = gi
	i := 0
	for _, dx := range [2]float64{-0.7, 0.7} {
		for _, dz := range [2]float64{-0.55, 0.55} {
			wp := pos.Add(m3.V(dx, 0.3, dz))
			wb, _ := w.AddBody(geom.Sphere{R: 0.3}, 12, wp, m3.QIdent, 0, grp)
			c.Wheels[i] = wb
			hinge := joint.NewHinge(w.Bodies, c.Chassis, wb, wp, m3.V(0, 0, 1))
			hinge.SoftAnchor = 2e-4 // suspension compliance
			if breakableJoints {
				b.addJoint(joint.NewBreakable(hinge, 30000, 0))
			} else {
				b.addJoint(hinge)
			}
			i++
		}
	}
	return c
}

// drive gives a car an initial forward speed and spinning wheels.
func (b *builder) drive(c *Car, dir m3.Vec, speed float64) {
	w := b.w
	w.Bodies[c.Chassis].LinVel = dir.Scale(speed)
	for _, wi := range c.Wheels {
		w.Bodies[wi].LinVel = dir.Scale(speed)
		w.Bodies[wi].AngVel = m3.V(0, 0, 1).Cross(dir).Scale(-speed / 0.3)
	}
}

// wall builds a brick wall of nx-by-ny bricks starting at corner,
// extending along dir (unit, horizontal). If prefracture, each brick
// carries debris pieces that activate when a blast touches the brick.
// Bricks start asleep (ODE-style auto-disable): resting masonry costs
// collision detection but no solver work until something hits it.
func (b *builder) wall(corner m3.Vec, dir m3.Vec, nx, ny int, prefracture bool) {
	w := b.w
	const bw, bh, bd = 0.5, 0.25, 0.25 // brick half-extents
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			offset := 0.0
			if y%2 == 1 {
				offset = bw
			}
			pos := corner.Add(dir.Scale(float64(x)*2*bw + offset + bw)).
				Add(m3.V(0, float64(y)*2*bh+bh, 0))
			bi, gi := w.AddBody(geom.Box{Half: m3.V(bw, bh, bd)}, 6, pos, m3.QIdent, 0, 0)
			w.Bodies[bi].Asleep = true
			b.bricks++
			if prefracture {
				b.prefractureBrick(gi, pos, m3.V(bw, bh, bd))
			}
		}
	}
}

// prefractureBrick registers four disabled debris pieces for a brick.
func (b *builder) prefractureBrick(parent int32, pos, half m3.Vec) {
	w := b.w
	grp := b.group()
	var debris []int32
	for i := 0; i < 4; i++ {
		dx := float64(i%2)*half.X - half.X/2
		dy := float64(i/2)*half.Y - half.Y/2
		dpos := pos.Add(m3.V(dx, dy, 0))
		_, dg := w.AddBody(geom.Box{Half: m3.V(half.X/2, half.Y/2, half.Z)},
			1.5, dpos, m3.QIdent, geom.FlagDebris, grp)
		w.DisableBodyGeom(dg)
		debris = append(debris, dg)
	}
	w.RegisterFracture(parent, debris)
}

// bridge spans from a to b with n planks joined by breakable hinges and
// anchored to the world at both ends.
func (b *builder) bridge(a, c m3.Vec, n int) {
	w := b.w
	grp := b.group()
	span := c.Sub(a)
	dir := span.Norm()
	length := span.Len() / float64(n)
	half := m3.V(length/2*0.95, 0.05, 0.5)
	var prev int32 = -1
	for i := 0; i < n; i++ {
		center := a.Add(dir.Scale((float64(i) + 0.5) * length))
		rot := m3.QIdent
		bi, _ := w.AddBody(geom.Box{Half: half}, 20, center, rot, 0, grp)
		b.planks++
		anchor := a.Add(dir.Scale(float64(i) * length))
		axis := m3.V(0, 1, 0).Cross(dir).Norm()
		hj := joint.NewHinge(w.Bodies, prev, bi, anchor, axis)
		b.addJoint(joint.NewBreakable(hj, 25000, 0))
		prev = bi
	}
	// Far end anchored to the world.
	hj := joint.NewHinge(w.Bodies, prev, -1, c, m3.V(0, 1, 0).Cross(dir).Norm())
	b.addJoint(joint.NewBreakable(hj, 25000, 0))
}

// building stacks boxes into a hollow 5x5-footprint tower (16 boxes per
// floor). Boxes start asleep until disturbed.
func (b *builder) building(base m3.Vec, floors int, prefracture bool) {
	w := b.w
	const hw, hh = 0.5, 0.3
	for f := 0; f < floors; f++ {
		y := float64(f)*2*hh + hh
		for i := -2; i <= 2; i++ {
			for j := -2; j <= 2; j++ {
				if i > -2 && i < 2 && j > -2 && j < 2 {
					continue // hollow interior
				}
				pos := base.Add(m3.V(float64(i)*2*hw, y, float64(j)*2*hw))
				bi, gi := w.AddBody(geom.Box{Half: m3.V(hw, hh, hw)}, 8, pos, m3.QIdent, 0, 0)
				w.Bodies[bi].Asleep = true
				b.bricks++
				if prefracture {
					b.prefractureBrick(gi, pos, m3.V(hw, hh, hw))
				}
			}
		}
	}
}

// projectile launches a sphere toward target at the given speed;
// explosive projectiles detonate on contact.
func (b *builder) projectile(from, target m3.Vec, speed float64, spec *world.ExplosiveSpec) int32 {
	w := b.w
	dir := target.Sub(from).Norm()
	bi, gi := w.AddBody(geom.Sphere{R: 0.15}, 5, from, m3.QIdent, 0, 0)
	w.Bodies[bi].LinVel = dir.Scale(speed)
	if spec != nil {
		w.MarkExplosive(gi, *spec)
	}
	return gi
}

// terrain adds a rolling heightfield of n-by-n samples with the given
// cell size and roughness.
func (b *builder) terrain(origin m3.Vec, n int, cell, roughness float64) *geom.HeightField {
	hs := make([]float64, n*n)
	for z := 0; z < n; z++ {
		for x := 0; x < n; x++ {
			fx, fz := float64(x)*cell, float64(z)*cell
			hs[z*n+x] = roughness * (math.Sin(fx*0.35) + math.Cos(fz*0.28) +
				0.5*math.Sin(fx*0.9+fz*0.7))
		}
	}
	hf := geom.NewHeightField(n, n, cell, cell, hs)
	b.w.AddStatic(hf, origin, m3.QIdent)
	return hf
}

// meshPatch adds a static triangle-mesh ground patch (trimesh terrain).
func (b *builder) meshPatch(origin m3.Vec, n int, cell float64) {
	var verts []m3.Vec
	var tris []geom.Tri
	for z := 0; z <= n; z++ {
		for x := 0; x <= n; x++ {
			h := 0.15 * math.Sin(float64(x)*0.7) * math.Cos(float64(z)*0.6)
			verts = append(verts, m3.V(float64(x)*cell, h, float64(z)*cell))
		}
	}
	idx := func(x, z int) int32 { return int32(z*(n+1) + x) }
	for z := 0; z < n; z++ {
		for x := 0; x < n; x++ {
			tris = append(tris, geom.Tri{idx(x, z), idx(x+1, z), idx(x+1, z+1)})
			tris = append(tris, geom.Tri{idx(x, z), idx(x+1, z+1), idx(x, z+1)})
		}
	}
	b.w.AddStatic(geom.NewTriMesh(verts, tris), origin, m3.QIdent)
}

// largeCloth adds a 25x25 (625-vertex) drape; smallCloth a 5x5 (25
// vertex) uniform attached to a humanoid's chest (paper Table 2).
func (b *builder) largeCloth(origin m3.Vec, pinCorners bool) *cloth.Cloth {
	c := cloth.NewGrid(25, 25, 0.08, origin, 2)
	if pinCorners {
		c.PinParticle(0)
		c.PinParticle(24)
	}
	b.clothsLarge++
	b.w.AddCloth(c)
	return c
}

func (b *builder) smallClothOn(h *Humanoid) *cloth.Cloth {
	w := b.w
	chest := w.Bodies[h.Bodies[2]] // chest segment
	origin := chest.Pos.Add(m3.V(-0.2, 0.15, 0.14))
	c := cloth.NewGrid(5, 5, 0.1, origin, 0.2)
	// Pin the top row to the chest.
	for i := int32(0); i < 5; i++ {
		local := c.Particles[i].Pos.Sub(chest.Pos)
		c.PinToBody(i, h.Bodies[2], local)
	}
	b.clothsSmall++
	w.AddCloth(c)
	return c
}

// obstacles scatters immobile boxes.
func (b *builder) obstacles(n int, area float64, base m3.Vec) {
	for i := 0; i < n; i++ {
		pos := base.Add(m3.V(b.rng.Float64()*area, 0.4, b.rng.Float64()*area))
		b.w.AddStatic(geom.Box{Half: m3.V(0.4, 0.4, 0.4)}, pos, m3.QIdent)
	}
}
