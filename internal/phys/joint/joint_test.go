package joint

import (
	"math"
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/body"
	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

var p = Params{Dt: 0.01, ERP: 0.2, CFM: 1e-9}

func twoBodies() []*body.Body {
	a := body.New(1, geom.Sphere{R: 0.5}.Inertia(1))
	a.ID = 0
	a.Pos = m3.V(-1, 0, 0)
	b := body.New(1, geom.Sphere{R: 0.5}.Inertia(1))
	b.ID = 1
	b.Pos = m3.V(1, 0, 0)
	return []*body.Body{a, b}
}

// rowVelocity evaluates J*v for a row.
func rowVelocity(bs []*body.Body, r Row) float64 {
	v := 0.0
	if r.BodyA >= 0 {
		v += r.JLinA.Dot(bs[r.BodyA].LinVel) + r.JAngA.Dot(bs[r.BodyA].AngVel)
	}
	if r.BodyB >= 0 {
		v += r.JLinB.Dot(bs[r.BodyB].LinVel) + r.JAngB.Dot(bs[r.BodyB].AngVel)
	}
	return v
}

func TestBallRowsSatisfiedAtRest(t *testing.T) {
	bs := twoBodies()
	j := NewBall(bs, 0, 1, m3.V(0, 0, 0))
	rows := j.Rows(bs, p, 0, nil)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		// At rest with zero positional error, both J*v and RHS are 0.
		if rowVelocity(bs, r) != 0 {
			t.Errorf("row %d: nonzero velocity at rest", i)
		}
		if math.Abs(r.RHS) > 1e-12 {
			t.Errorf("row %d: RHS = %v with no positional error", i, r.RHS)
		}
		if r.Joint != 0 {
			t.Errorf("row %d: joint id = %d", i, r.Joint)
		}
	}
}

func TestBallRHSCorrectsPositionalError(t *testing.T) {
	bs := twoBodies()
	j := NewBall(bs, 0, 1, m3.V(0, 0, 0))
	// Drift body B so the anchors separate by 0.1 along +x.
	bs[1].Pos = bs[1].Pos.Add(m3.V(0.1, 0, 0))
	rows := j.Rows(bs, p, 0, nil)
	// err = anchorA - anchorB = (-0.1, 0, 0); the x row's RHS should pull
	// B back toward A: RHS = ERP/Dt * err.x = -2.
	if math.Abs(rows[0].RHS-(-2.0)) > 1e-9 {
		t.Errorf("x-row RHS = %v, want -2", rows[0].RHS)
	}
}

func TestRelativeVelocityConvention(t *testing.T) {
	// J*v must equal the relative anchor velocity projected on the row
	// direction (B minus A).
	bs := twoBodies()
	j := NewBall(bs, 0, 1, m3.V(0, 0, 0))
	bs[0].LinVel = m3.V(1, 2, 3)
	bs[1].LinVel = m3.V(-1, 5, 0)
	rows := j.Rows(bs, p, 0, nil)
	rel := bs[1].VelocityAt(m3.Zero).Sub(bs[0].VelocityAt(m3.Zero))
	want := [3]float64{rel.X, rel.Y, rel.Z}
	for i, r := range rows {
		if math.Abs(rowVelocity(bs, r)-want[i]) > 1e-9 {
			t.Errorf("row %d: J*v = %v, want %v", i, rowVelocity(bs, r), want[i])
		}
	}
}

func TestWorldAttachment(t *testing.T) {
	bs := twoBodies()
	j := NewBall(bs, 0, -1, m3.V(-1, 1, 0))
	a, b := j.Bodies()
	if a != 0 || b != -1 {
		t.Errorf("Bodies = %d,%d", a, b)
	}
	rows := j.Rows(bs, p, 0, nil)
	for i, r := range rows {
		if r.BodyB != -1 {
			t.Errorf("row %d should reference the world", i)
		}
		if r.JLinB != m3.Zero && r.BodyB == -1 {
			// Jacobian halves for the world side are ignored by the
			// solver, but we still produce them consistently.
			break
		}
		_ = i
	}
}

func TestHingeAxisPreserved(t *testing.T) {
	bs := twoBodies()
	axis := m3.V(0, 0, 1)
	j := NewHinge(bs, 0, 1, m3.Zero, axis)
	// Relative rotation about the hinge axis must be invisible to the
	// angular rows.
	bs[0].AngVel = m3.V(0, 0, 2)
	bs[1].AngVel = m3.V(0, 0, 7)
	rows := j.Rows(bs, p, 0, nil)
	for i := 3; i < 5; i++ {
		if v := rowVelocity(bs, rows[i]); math.Abs(v) > 1e-9 {
			t.Errorf("angular row %d sees on-axis spin: %v", i, v)
		}
	}
	// Off-axis relative rotation must be visible.
	bs[1].AngVel = m3.V(3, 0, 0)
	rows = j.Rows(bs, p, 0, nil)
	seen := math.Abs(rowVelocity(bs, rows[3])) + math.Abs(rowVelocity(bs, rows[4]))
	if seen < 1e-9 {
		t.Error("angular rows blind to off-axis spin")
	}
}

func TestHingeSoftAnchorCFM(t *testing.T) {
	bs := twoBodies()
	j := NewHinge(bs, 0, 1, m3.Zero, m3.V(0, 0, 1))
	j.SoftAnchor = 0.5
	rows := j.Rows(bs, p, 0, nil)
	for i := 0; i < 3; i++ {
		if rows[i].CFM < 0.5 {
			t.Errorf("linear row %d CFM = %v, want soft", i, rows[i].CFM)
		}
	}
	for i := 3; i < 5; i++ {
		if rows[i].CFM >= 0.5 {
			t.Errorf("angular row %d should not be softened", i)
		}
	}
}

func TestSliderRotationLock(t *testing.T) {
	bs := twoBodies()
	j := NewSlider(bs, 0, 1, m3.Zero, m3.V(1, 0, 0))
	bs[1].AngVel = m3.V(1, 2, 3)
	rows := j.Rows(bs, p, 0, nil)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Three angular rows see the relative spin component-wise.
	total := 0.0
	for i := 2; i < 5; i++ {
		total += math.Abs(rowVelocity(bs, rows[i]))
	}
	if math.Abs(total-6) > 1e-9 {
		t.Errorf("angular rows see |w| = %v, want 6", total)
	}
	// Axial translation is free: no row responds to it.
	bs[1].AngVel = m3.Zero
	bs[1].LinVel = m3.V(5, 0, 0)
	rows = j.Rows(bs, p, 0, nil)
	for i, r := range rows {
		if v := rowVelocity(bs, r); math.Abs(v) > 1e-9 {
			t.Errorf("row %d resists axial motion: %v", i, v)
		}
	}
}

func TestFixedCapturesRelativePose(t *testing.T) {
	bs := twoBodies()
	bs[1].Rot = m3.QFromAxisAngle(m3.V(0, 1, 0), 0.7)
	j := NewFixed(bs, 0, 1, m3.Zero)
	// At the captured pose, all six rows are satisfied.
	rows := j.Rows(bs, p, 0, nil)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if math.Abs(r.RHS) > 1e-9 {
			t.Errorf("row %d RHS = %v at the captured pose", i, r.RHS)
		}
	}
	// Rotating B further produces an angular error signal.
	bs[1].Rot = bs[1].Rot.Mul(m3.QFromAxisAngle(m3.V(0, 1, 0), 0.2))
	rows = j.Rows(bs, p, 0, nil)
	errSum := 0.0
	for i := 3; i < 6; i++ {
		errSum += math.Abs(rows[i].RHS)
	}
	if errSum < 1e-6 {
		t.Error("fixed joint blind to relative rotation drift")
	}
}

func TestContactRowsStructure(t *testing.T) {
	bs := twoBodies()
	n := m3.V(0, 1, 0)
	rows := ContactRows(bs, 0, 1, m3.Zero, n, 0.02, DefaultMaterial, p, 10, nil)
	if len(rows) != RowsPerContact {
		t.Fatalf("rows = %d, want %d", len(rows), RowsPerContact)
	}
	normal := rows[0]
	if normal.Lo != 0 || !math.IsInf(normal.Hi, 1) {
		t.Errorf("normal row bounds [%v, %v], want [0, +inf)", normal.Lo, normal.Hi)
	}
	if normal.RHS <= 0 {
		t.Errorf("penetrating contact should have positive bias: %v", normal.RHS)
	}
	for i := 1; i < 3; i++ {
		fr := rows[i]
		if fr.FrictionOf != 10 {
			t.Errorf("friction row %d references row %d, want 10", i, fr.FrictionOf)
		}
		if fr.Mu != DefaultMaterial.Mu {
			t.Errorf("friction row %d mu = %v", i, fr.Mu)
		}
		// Friction directions orthogonal to the normal and each other.
		if math.Abs(fr.JLinB.Dot(n)) > 1e-9 {
			t.Errorf("friction row %d not tangent", i)
		}
	}
	if math.Abs(rows[1].JLinB.Dot(rows[2].JLinB)) > 1e-9 {
		t.Error("friction rows not orthogonal")
	}
}

func TestContactRestitutionThreshold(t *testing.T) {
	bs := twoBodies()
	mat := ContactMaterial{Mu: 0, Restitution: 0.9, RestitutionThreshold: 0.5}
	// Slow approach: no bounce term, only Baumgarte.
	bs[1].LinVel = m3.V(0, -0.2, 0)
	slow := ContactRows(bs, 0, 1, m3.Zero, m3.V(0, 1, 0), 0.01, mat, p, 0, nil)
	// Fast approach: bounce dominates.
	bs[1].LinVel = m3.V(0, -10, 0)
	fast := ContactRows(bs, 0, 1, m3.Zero, m3.V(0, 1, 0), 0.01, mat, p, 0, nil)
	if fast[0].RHS <= slow[0].RHS {
		t.Errorf("fast impact RHS %v should exceed slow %v", fast[0].RHS, slow[0].RHS)
	}
	if math.Abs(fast[0].RHS-9) > 0.5 {
		t.Errorf("bounce target = %v, want ~9 (0.9 x 10)", fast[0].RHS)
	}
}

func TestNumRowsConsistency(t *testing.T) {
	bs := twoBodies()
	js := []Joint{
		NewBall(bs, 0, 1, m3.Zero),
		NewHinge(bs, 0, 1, m3.Zero, m3.V(0, 0, 1)),
		NewSlider(bs, 0, 1, m3.Zero, m3.V(1, 0, 0)),
		NewFixed(bs, 0, 1, m3.Zero),
	}
	want := []int{3, 5, 5, 6}
	for i, j := range js {
		if j.NumRows() != want[i] {
			t.Errorf("joint %d NumRows = %d, want %d", i, j.NumRows(), want[i])
		}
		rows := j.Rows(bs, p, int32(i), nil)
		if len(rows) != j.NumRows() {
			t.Errorf("joint %d: Rows produced %d, NumRows says %d", i, len(rows), j.NumRows())
		}
	}
}

func TestBreakableDelegation(t *testing.T) {
	bs := twoBodies()
	br := NewBreakable(NewHinge(bs, 0, 1, m3.Zero, m3.V(0, 0, 1)), 100, 0)
	a, b := br.Bodies()
	if a != 0 || b != 1 {
		t.Errorf("breakable Bodies = %d,%d", a, b)
	}
	if br.NumRows() != 5 {
		t.Errorf("breakable NumRows = %d", br.NumRows())
	}
	if got := len(br.Rows(bs, p, 0, nil)); got != 5 {
		t.Errorf("breakable Rows = %d", got)
	}
	// Breaking is idempotent and sticky.
	br.Broken = true
	if br.ApplyLoad(1e9) {
		t.Error("already-broken joint reported breaking again")
	}
}
