package joint

import (
	"fmt"

	"github.com/parallax-arch/parallax/internal/phys/enc"
)

// Joint serialization for the world snapshot format: a one-byte type
// tag followed by the joint's fields. Breakable wraps its inner joint
// recursively, so its dynamic state (accumulated fatigue, broken flag)
// rides along with the configuration.

// Joint type tags in the snapshot encoding. Part of the serialized
// format; never renumber.
const (
	tagBall uint8 = iota
	tagHinge
	tagSlider
	tagFixed
	tagBreakable
)

// EncodeJoint appends the snapshot encoding of j to w. An unknown Joint
// implementation is an error.
func EncodeJoint(w *enc.Writer, j Joint) error {
	switch t := j.(type) {
	case *Ball:
		w.U8(tagBall)
		w.I32(t.A)
		w.I32(t.B)
		w.Vec(t.AnchorA)
		w.Vec(t.AnchorB)
	case *Hinge:
		w.U8(tagHinge)
		w.I32(t.A)
		w.I32(t.B)
		w.Vec(t.AnchorA)
		w.Vec(t.AnchorB)
		w.Vec(t.AxisA)
		w.Vec(t.AxisB)
		w.F64(t.SoftAnchor)
	case *Slider:
		w.U8(tagSlider)
		w.I32(t.A)
		w.I32(t.B)
		w.Vec(t.AxisA)
		w.Vec(t.RefA)
		w.Vec(t.RefB)
		w.Quat(t.RelRot)
	case *Fixed:
		w.U8(tagFixed)
		w.I32(t.A)
		w.I32(t.B)
		w.Vec(t.AnchorA)
		w.Vec(t.AnchorB)
		w.Quat(t.RelRot)
	case *Breakable:
		w.U8(tagBreakable)
		if err := EncodeJoint(w, t.Joint); err != nil {
			return err
		}
		w.F64(t.Threshold)
		w.F64(t.FatigueLimit)
		w.F64(t.Fatigue)
		w.Bool(t.Broken)
	default:
		return fmt.Errorf("joint: cannot encode joint type %T", j)
	}
	return nil
}

// DecodeJoint reads one joint from r.
func DecodeJoint(r *enc.Reader) (Joint, error) {
	tag := r.U8()
	if err := r.Err(); err != nil {
		return nil, err
	}
	var j Joint
	switch tag {
	case tagBall:
		t := &Ball{A: r.I32(), B: r.I32()}
		t.AnchorA = r.Vec()
		t.AnchorB = r.Vec()
		j = t
	case tagHinge:
		t := &Hinge{A: r.I32(), B: r.I32()}
		t.AnchorA = r.Vec()
		t.AnchorB = r.Vec()
		t.AxisA = r.Vec()
		t.AxisB = r.Vec()
		t.SoftAnchor = r.F64()
		j = t
	case tagSlider:
		t := &Slider{A: r.I32(), B: r.I32()}
		t.AxisA = r.Vec()
		t.RefA = r.Vec()
		t.RefB = r.Vec()
		t.RelRot = r.Quat()
		j = t
	case tagFixed:
		t := &Fixed{A: r.I32(), B: r.I32()}
		t.AnchorA = r.Vec()
		t.AnchorB = r.Vec()
		t.RelRot = r.Quat()
		j = t
	case tagBreakable:
		inner, err := DecodeJoint(r)
		if err != nil {
			return nil, err
		}
		if _, nested := inner.(*Breakable); nested {
			return nil, fmt.Errorf("joint: nested breakable joint in snapshot")
		}
		t := &Breakable{Joint: inner}
		t.Threshold = r.F64()
		t.FatigueLimit = r.F64()
		t.Fatigue = r.F64()
		t.Broken = r.Bool()
		j = t
	default:
		return nil, fmt.Errorf("joint: unknown joint tag %d", tag)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return j, nil
}
