package joint

import (
	"github.com/parallax-arch/parallax/internal/phys/body"
)

// Breakable wraps a joint with a load threshold: the joint breaks when
// its applied constraint force exceeds Threshold in a single step, or
// when accumulated load exceeds FatigueLimit (accumulation of force, per
// the paper's Table 2). Bridges, cars and robots use breakable joints.
type Breakable struct {
	Joint
	// Threshold is the single-step breaking force (N); <= 0 disables.
	Threshold float64
	// FatigueLimit is the accumulated load limit (N*steps); <= 0 disables.
	FatigueLimit float64
	// Fatigue is the load accumulated so far.
	Fatigue float64
	// Broken joints contribute no rows and are dropped by the engine.
	Broken bool
}

// NewBreakable wraps j with the given breaking behaviour.
func NewBreakable(j Joint, threshold, fatigueLimit float64) *Breakable {
	return &Breakable{Joint: j, Threshold: threshold, FatigueLimit: fatigueLimit}
}

// Rows implements Joint; broken joints produce nothing.
func (b *Breakable) Rows(bs []*body.Body, p Params, idx int32, dst []Row) []Row {
	if b.Broken {
		return dst
	}
	return b.Joint.Rows(bs, p, idx, dst)
}

// NumRows implements Joint.
func (b *Breakable) NumRows() int {
	if b.Broken {
		return 0
	}
	return b.Joint.NumRows()
}

// ApplyLoad records the constraint force magnitude from one step and
// returns true if the joint just broke.
//
//paraxlint:noalloc
func (b *Breakable) ApplyLoad(force float64) bool {
	if b.Broken {
		return false
	}
	if b.Threshold > 0 && force > b.Threshold {
		b.Broken = true
		return true
	}
	if b.FatigueLimit > 0 {
		b.Fatigue += force
		if b.Fatigue > b.FatigueLimit {
			b.Broken = true
			return true
		}
	}
	return false
}
