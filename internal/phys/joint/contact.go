package joint

import (
	"math"

	"github.com/parallax-arch/parallax/internal/phys/body"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// ContactMaterial sets the surface response for contact rows.
type ContactMaterial struct {
	// Mu is the Coulomb friction coefficient.
	Mu float64
	// Restitution is the bounce coefficient in [0, 1].
	Restitution float64
	// RestitutionThreshold is the minimum approach speed below which no
	// bounce is applied (prevents jitter).
	RestitutionThreshold float64
}

// DefaultMaterial is the engine-wide surface response.
var DefaultMaterial = ContactMaterial{
	Mu:                   0.7,
	Restitution:          0.1,
	RestitutionThreshold: 0.5,
}

// ContactRows appends the 3 constraint rows (1 normal, 2 friction) for a
// contact between bodies a and b (either may be -1 for static). pos is
// the world contact point, n the unit normal pushing body B along +n,
// depth the penetration. rowBase is the absolute index in the island's
// row list where these rows will land, so friction rows can reference
// their normal row.
func ContactRows(bs []*body.Body, a, b int32, pos, n m3.Vec, depth float64,
	mat ContactMaterial, p Params, rowBase int32, dst []Row) []Row {

	ra, rb := anchorOffsets(bs, a, b, pos)

	// Relative approach velocity along the normal (B relative to A).
	var va, vb m3.Vec
	if a >= 0 {
		va = bs[a].VelocityAt(pos)
	}
	if b >= 0 {
		vb = bs[b].VelocityAt(pos)
	}
	vn := vb.Sub(va).Dot(n)

	// Baumgarte bias pushes the pair apart; restitution adds bounce for
	// fast approaches.
	rhs := p.ERP / p.Dt * depth
	if vn < -mat.RestitutionThreshold {
		if bounce := -mat.Restitution * vn; bounce > rhs {
			rhs = bounce
		}
	}

	normal := Row{
		BodyA: a, BodyB: b,
		JLinA: n.Neg(), JAngA: ra.Cross(n).Neg(),
		JLinB: n, JAngB: rb.Cross(n),
		RHS: rhs, CFM: p.CFM,
		Lo: 0, Hi: math.Inf(1),
		FrictionOf: -1, Joint: -1,
	}
	dst = append(dst, normal)

	// Two friction rows spanning the tangent plane, bounded by
	// mu * (normal impulse).
	u, w := n.Basis()
	for _, d := range [2]m3.Vec{u, w} {
		dst = append(dst, Row{
			BodyA: a, BodyB: b,
			JLinA: d.Neg(), JAngA: ra.Cross(d).Neg(),
			JLinB: d, JAngB: rb.Cross(d),
			RHS: 0, CFM: p.CFM,
			Lo: -1, Hi: 1, // scaled by Mu * lambda(normal)
			FrictionOf: rowBase, Mu: mat.Mu, Joint: -1,
		})
	}
	return dst
}

// RowsPerContact is the number of solver rows generated per contact
// point.
const RowsPerContact = 3
