package world

import (
	"fmt"

	"github.com/parallax-arch/parallax/internal/obs"
)

// stepSpans holds the pre-registered span IDs for the Step hot path:
// the five phases (paper Fig 1) on the main-thread lane, plus the
// per-worker task spans (narrow-phase chunks, island solves, cloth
// objects).
type stepSpans struct {
	step       obs.SpanID
	broad      obs.SpanID
	narrow     obs.SpanID
	islandGen  obs.SpanID
	islandProc obs.SpanID
	integrate  obs.SpanID
	cloth      obs.SpanID

	narrowChunk  obs.SpanID
	refreshChunk obs.SpanID
	edgeChunk    obs.SpanID
	integChunk   obs.SpanID
	syncChunk    obs.SpanID
	island       obs.SpanID
	solve        obs.SpanID
	clothObj     obs.SpanID
}

// stepMetrics holds the pre-registered metric IDs harvested from the
// StepProfile at the end of every step. All are commutative integer
// aggregates of values that are themselves deterministic per step
// (per-chunk results merge in chunk order), so the metrics snapshot is
// byte-identical whatever the thread count.
type stepMetrics struct {
	steps            obs.CounterID
	pairs            obs.CounterID
	contacts         obs.CounterID
	islands          obs.CounterID
	findSteps        obs.CounterID
	solverRows       obs.CounterID
	solverRowUpdates obs.CounterID
	bodiesIntegrated obs.CounterID
	explosions       obs.CounterID
	fractureHits     obs.CounterID
	jointBreaks      obs.CounterID
	clothVertUpdates obs.CounterID
	aabbUpdates      obs.CounterID
	broadSortOps     obs.CounterID
	broadRebuilds    obs.CounterID

	islandDOF obs.HistID
}

// islandDOFBounds buckets the per-island DOF histogram: SmallIslandDOF
// sits inside the first bounds so the main-thread/work-queue split is
// readable straight off the snapshot.
var islandDOFBounds = []int64{SmallIslandDOF, 64, 256, 1024, 4096}

// SetObs attaches an observability sink to the world: spans for the
// five Step phases and the per-worker tasks go to tr, work counters to
// reg. label prefixes the lane (Perfetto track) names so several worlds
// can share one tracer. Both arguments may be nil (tracing and metrics
// are independently optional); calling SetObs(nil, nil, "") detaches.
//
// Call it after setting Threads: one lane is created per worker. Lanes
// are grown automatically if Threads is raised later (a cold path —
// steady-state stepping stays allocation-free).
func (w *World) SetObs(tr *obs.Tracer, reg *obs.Registry, label string) {
	w.trace = tr
	w.metrics = reg
	w.obsLabel = label
	w.obsLanes = w.obsLanes[:0]
	if tr != nil {
		w.spans = stepSpans{
			step:         tr.Span("step"),
			broad:        tr.Span("broadphase"),
			narrow:       tr.Span("narrowphase"),
			islandGen:    tr.Span("island-creation"),
			islandProc:   tr.Span("island-processing"),
			integrate:    tr.Span("integrate"),
			cloth:        tr.Span("cloth"),
			narrowChunk:  tr.Span("narrow-chunk"),
			refreshChunk: tr.Span("refresh-chunk"),
			edgeChunk:    tr.Span("edge-chunk"),
			integChunk:   tr.Span("integrate-chunk"),
			syncChunk:    tr.Span("sync-chunk"),
			island:       tr.Span("island"),
			solve:        tr.Span("solve"),
			clothObj:     tr.Span("cloth-object"),
		}
		w.growObsLanes()
	}
	if reg != nil {
		w.met = stepMetrics{
			steps:            reg.Counter("engine/steps"),
			pairs:            reg.Counter("engine/pairs"),
			contacts:         reg.Counter("engine/contacts"),
			islands:          reg.Counter("engine/islands"),
			findSteps:        reg.Counter("engine/find_steps"),
			solverRows:       reg.Counter("engine/solver_rows"),
			solverRowUpdates: reg.Counter("engine/solver_row_updates"),
			bodiesIntegrated: reg.Counter("engine/bodies_integrated"),
			explosions:       reg.Counter("engine/explosions"),
			fractureHits:     reg.Counter("engine/fracture_hits"),
			jointBreaks:      reg.Counter("engine/joint_breaks"),
			clothVertUpdates: reg.Counter("engine/cloth_vertex_updates"),
			aabbUpdates:      reg.Counter("engine/aabb_updates"),
			broadSortOps:     reg.Counter("engine/broad_sort_ops"),
			broadRebuilds:    reg.Counter("engine/broad_rebuilds"),
			islandDOF:        reg.Histogram("engine/island_dof", islandDOFBounds),
		}
	}
}

// growObsLanes creates the missing per-worker lanes. Cold path: runs at
// SetObs time and again only if Threads is raised.
func (w *World) growObsLanes() {
	want := w.Threads
	if want < 1 {
		want = 1
	}
	for i := len(w.obsLanes); i < want; i++ {
		events := obs.DefaultLaneEvents
		if i == 0 {
			// The main-thread lane carries the phase spans on top of its
			// share of task spans; give it more history before the ring
			// wraps.
			events *= 4
		}
		w.obsLanes = append(w.obsLanes, w.trace.Lane(fmt.Sprintf("%s/worker%d", w.obsLabel, i), events))
	}
}

// laneFor returns worker i's span lane, or nil when tracing is off (the
// nil-check fast path: every Lane method is a no-op on nil).
func (w *World) laneFor(worker int) *obs.Lane {
	if worker >= len(w.obsLanes) {
		return nil
	}
	return w.obsLanes[worker]
}

// recordStepMetrics harvests the finished step's profile into the
// metrics registry.
//
//paraxlint:noalloc
func (w *World) recordStepMetrics(prof *StepProfile) {
	m := w.metrics
	if m == nil {
		return
	}
	m.Add(w.met.steps, 1)
	m.Add(w.met.pairs, int64(prof.Pairs))
	m.Add(w.met.contacts, int64(prof.Contacts))
	m.Add(w.met.islands, int64(len(prof.Islands)))
	m.Add(w.met.findSteps, int64(prof.FindSteps))
	m.Add(w.met.solverRows, int64(prof.Solver.Rows))
	m.Add(w.met.solverRowUpdates, int64(prof.Solver.RowUpdates))
	m.Add(w.met.bodiesIntegrated, int64(prof.BodiesIntegrated))
	m.Add(w.met.explosions, int64(prof.Explosions))
	m.Add(w.met.fractureHits, int64(prof.FractureHit))
	m.Add(w.met.jointBreaks, int64(prof.JointBreaks))
	m.Add(w.met.clothVertUpdates, int64(prof.Cloth.VertexUpdates))
	m.Add(w.met.aabbUpdates, int64(prof.Broad.AABBUpdates))
	m.Add(w.met.broadSortOps, int64(prof.Broad.SortOps))
	m.Add(w.met.broadRebuilds, int64(prof.Broad.Rebuilds))
	for i := range prof.Islands {
		m.ObserveInt(w.met.islandDOF, int64(prof.Islands[i].DOF))
	}
}

// numPhaseSpans is how many phase spans recordTelemetry differences
// into per-step durations: the five paper phases plus integrate.
const numPhaseSpans = 6

// stepSeries holds the pre-registered series channel IDs recorded once
// per step by recordTelemetry. The first group are deterministic
// simulation quantities (byte-identical across thread counts, exposed
// at /metrics); phaseNs are wall-clock timing channels (diagnostics
// only).
type stepSeries struct {
	kineticEnergy  obs.ChannelID
	maxPenetration obs.ChannelID
	solverResidual obs.ChannelID
	impulseNorm    obs.ChannelID
	islands        obs.ChannelID
	islandDOFMax   obs.ChannelID
	broadSortOps   obs.ChannelID
	broadRebuilds  obs.ChannelID

	phaseNs [numPhaseSpans]obs.ChannelID
}

// phaseSpanIDs returns the span IDs recordTelemetry differences, in
// the fixed order stepSeries.phaseNs uses.
func (w *World) phaseSpanIDs() [numPhaseSpans]obs.SpanID {
	return [numPhaseSpans]obs.SpanID{
		w.spans.broad, w.spans.narrow, w.spans.islandGen,
		w.spans.islandProc, w.spans.integrate, w.spans.cloth,
	}
}

// SetSeries attaches (or, with nil, detaches) the per-step telemetry
// series. Channels are registered here, on the cold path; every Step
// then stages one row and commits it allocation-free from the serial
// post-step path. If a tracer is attached (SetObs), per-phase wall
// durations are recorded into timing channels by differencing
// Tracer.SpanTotal between steps; call SetObs first so the span IDs
// exist.
func (w *World) SetSeries(s *obs.Series) {
	w.series = s
	if s == nil {
		w.ser = stepSeries{}
		return
	}
	w.ser = stepSeries{
		kineticEnergy:  s.Channel("kinetic_energy"),
		maxPenetration: s.Channel("max_penetration"),
		solverResidual: s.Channel("solver_residual"),
		impulseNorm:    s.Channel("solver_impulse_norm"),
		islands:        s.Channel("islands"),
		islandDOFMax:   s.Channel("island_dof_max"),
		broadSortOps:   s.Channel("broad_sort_ops"),
		broadRebuilds:  s.Channel("broad_rebuilds"),
	}
	phaseNames := [numPhaseSpans]string{
		"phase/broad_ns", "phase/narrow_ns", "phase/island_creation_ns",
		"phase/island_processing_ns", "phase/integrate_ns", "phase/cloth_ns",
	}
	for i, n := range phaseNames {
		w.ser.phaseNs[i] = s.TimingChannel(n)
	}
	spans := w.phaseSpanIDs()
	for i := range spans {
		_, w.prevPhaseNs[i] = w.trace.SpanTotal(spans[i])
	}
}

// SetHealth attaches (or, with nil, detaches) the anomaly detector.
// The detector sees every step's Sample from the serial post-step
// path; poll Health.Tripped/Status between frames to react.
func (w *World) SetHealth(h *obs.Health) { w.health = h }

// recordTelemetry feeds the finished step into the series rings and
// the anomaly detector. It runs on the serial post-step path: the body
// scan (kinetic energy + finiteness) iterates in body index order and
// the solver stats were merged in island index order, so every
// deterministic channel is byte-identical across thread counts.
//
//paraxlint:noalloc
func (w *World) recordTelemetry(prof *StepProfile) {
	if w.series == nil && w.health == nil {
		return
	}
	w.telStep++

	ke := 0.0
	finite := true
	for _, b := range w.Bodies {
		if !b.Enabled {
			continue
		}
		ke += b.KineticEnergy()
		if !b.Valid() {
			finite = false
		}
	}
	maxDOF := 0
	for i := range prof.Islands {
		if prof.Islands[i].DOF > maxDOF {
			maxDOF = prof.Islands[i].DOF
		}
	}

	if s := w.series; s != nil {
		s.Set(w.ser.kineticEnergy, ke)
		s.Set(w.ser.maxPenetration, prof.Narrow.DeepestDepth)
		s.Set(w.ser.solverResidual, prof.Solver.Residual)
		s.Set(w.ser.impulseNorm, prof.Solver.ImpulseNorm)
		s.Set(w.ser.islands, float64(len(prof.Islands)))
		s.Set(w.ser.islandDOFMax, float64(maxDOF))
		s.Set(w.ser.broadSortOps, float64(prof.Broad.SortOps))
		s.Set(w.ser.broadRebuilds, float64(prof.Broad.Rebuilds))
		spans := w.phaseSpanIDs()
		for i := range spans {
			_, ns := w.trace.SpanTotal(spans[i])
			s.Set(w.ser.phaseNs[i], float64(ns-w.prevPhaseNs[i]))
			w.prevPhaseNs[i] = ns
		}
		s.Advance()
	}

	w.health.Update(w.telStep, obs.Sample{
		KineticEnergy:  ke,
		Finite:         finite,
		Residual:       prof.Solver.Residual,
		MaxPenetration: prof.Narrow.DeepestDepth,
		Rebuilds:       int64(prof.Broad.Rebuilds),
	})
}
