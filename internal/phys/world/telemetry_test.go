package world

import (
	"math"
	"strings"
	"testing"

	"github.com/parallax-arch/parallax/internal/obs"
)

// telWorld builds the deterministic regression scene with the full
// telemetry stack attached: tracer, metrics, series, detector.
func telWorld(threads int) (*World, *obs.Series, *obs.Health) {
	w := detWorld(threads)
	w.SetObs(obs.NewTracer(), obs.NewRegistry(), "tel")
	s := obs.NewSeries(128)
	h := obs.NewHealth()
	w.SetSeries(s)
	w.SetHealth(h)
	return w, s, h
}

func TestStepSeriesRecords(t *testing.T) {
	w, s, h := telWorld(2)
	const steps = 20
	for i := 0; i < steps; i++ {
		w.Step()
	}
	if got := s.Steps(); got != steps {
		t.Fatalf("series committed %d steps, want %d", got, steps)
	}
	if h.Tripped() {
		t.Fatalf("detector tripped on the regression scene: %+v", h.Status())
	}
	// The dropping scene has moving bodies, contacts and islands: the
	// core channels must carry live values.
	mustPositive := map[string]obs.ChannelID{
		"kinetic_energy":      s.Channel("kinetic_energy"),
		"islands":             s.Channel("islands"),
		"island_dof_max":      s.Channel("island_dof_max"),
		"solver_impulse_norm": s.Channel("solver_impulse_norm"),
	}
	for name, id := range mustPositive {
		v, ok := s.Last(id)
		if !ok || !(v > 0) {
			t.Errorf("channel %s = %v,%v; want a positive committed value", name, v, ok)
		}
	}
	// Residual and penetration must at least be finite and recorded.
	for _, name := range []string{"solver_residual", "max_penetration"} {
		v, ok := s.Last(s.Channel(name))
		if !ok || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("channel %s = %v,%v; want a finite committed value", name, v, ok)
		}
	}
	// Phase timing channels exist and are marked as timing (excluded
	// from the deterministic exposition).
	var sb strings.Builder
	if err := obs.WriteProm(&sb, nil, s); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "phase_") {
		t.Errorf("timing channels leaked into the exposition:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "parallax_series_kinetic_energy ") {
		t.Errorf("kinetic energy missing from exposition:\n%s", sb.String())
	}
}

// TestMetricsEndpointThreadCountDeterminism pins the tentpole property:
// the full /metrics exposition — registry counters, histograms and the
// series' deterministic channels — is byte-identical at 1 and 8
// threads.
func TestMetricsEndpointThreadCountDeterminism(t *testing.T) {
	run := func(threads int) string {
		reg := obs.NewRegistry()
		w := detWorld(threads)
		w.SetObs(obs.NewTracer(), reg, "det")
		s := obs.NewSeries(128)
		w.SetSeries(s)
		w.SetHealth(obs.NewHealth())
		for i := 0; i < 30; i++ {
			w.Step()
		}
		var sb strings.Builder
		if err := obs.WriteProm(&sb, reg, s); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	m1, m8 := run(1), run(8)
	if m1 != m8 {
		t.Fatalf("/metrics differs between 1 and 8 threads:\n-- 1 --\n%s\n-- 8 --\n%s", m1, m8)
	}
	if err := obs.ValidateExposition([]byte(m1)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

// TestSeriesThreadCountDeterminism compares the committed windows of
// every deterministic channel value-for-value across thread counts.
func TestSeriesThreadCountDeterminism(t *testing.T) {
	run := func(threads int) (*obs.Series, []string) {
		w := detWorld(threads)
		w.SetObs(obs.NewTracer(), obs.NewRegistry(), "det")
		s := obs.NewSeries(128)
		w.SetSeries(s)
		for i := 0; i < 25; i++ {
			w.Step()
		}
		return s, s.Names()
	}
	s1, names := run(1)
	s8, _ := run(8)
	for _, name := range names {
		if strings.HasPrefix(name, "phase/") {
			continue // wall clock
		}
		w1 := s1.Window(s1.Channel(name), nil)
		w8 := s8.Window(s8.Channel(name), nil)
		if len(w1) != len(w8) {
			t.Fatalf("%s: window lengths differ: %d vs %d", name, len(w1), len(w8))
		}
		for i := range w1 {
			if math.Float64bits(w1[i]) != math.Float64bits(w8[i]) {
				t.Errorf("%s step %d: %v (1 thread) vs %v (8 threads)", name, i, w1[i], w8[i])
				break
			}
		}
	}
}

// TestHealthTripsOnNaNBody corrupts one body mid-run, exactly as
// paraxsim -nan does, and asserts the detector latches with the right
// cause on the next step.
func TestHealthTripsOnNaNBody(t *testing.T) {
	w, _, h := telWorld(2)
	for i := 0; i < 5; i++ {
		w.Step()
	}
	if h.Tripped() {
		t.Fatal("tripped early")
	}
	w.Bodies[1].LinVel.X = math.NaN()
	w.Step()
	if !h.Tripped() {
		t.Fatal("NaN body did not trip the detector")
	}
	st := h.Status()
	if st.Cause != obs.CauseNaN {
		t.Fatalf("cause = %v, want %v", st.Cause, obs.CauseNaN)
	}
	if st.Step != 6 {
		t.Fatalf("trip step = %d, want 6", st.Step)
	}
}

// TestTelemetrySurvivesSnapshotRestore pins that the gauges telemetry
// derives from world state — kinetic energy, solver residual — are
// bit-identical when a run is forked through Snapshot/Restore.
func TestTelemetrySurvivesSnapshotRestore(t *testing.T) {
	w, s, _ := telWorld(2)
	for i := 0; i < 10; i++ {
		w.Step()
	}
	snap := w.Snapshot()

	fork := New()
	if err := fork.Restore(snap); err != nil {
		t.Fatal(err)
	}
	fs := obs.NewSeries(128)
	fork.SetSeries(fs)

	channels := []string{"kinetic_energy", "solver_residual", "solver_impulse_norm", "max_penetration"}
	for i := 0; i < 10; i++ {
		w.Step()
		fork.Step()
		for _, name := range channels {
			v, _ := s.Last(s.Channel(name))
			fv, _ := fs.Last(fs.Channel(name))
			if math.Float64bits(v) != math.Float64bits(fv) {
				t.Fatalf("step %d: %s diverged after Restore: %v vs %v", i, name, v, fv)
			}
		}
	}
}

// TestStepSteadyStateAllocsRecorded extends the zero-allocation
// contract to the full flight-recorder stack: series staging/commit
// plus the detector's windowed checks.
func TestStepSteadyStateAllocsRecorded(t *testing.T) {
	w, _, _ := telWorld(2)
	for i := 0; i < 40; i++ {
		w.Step()
	}
	allocs := testing.AllocsPerRun(30, func() { w.Step() })
	if allocs != 0 {
		t.Fatalf("recorded steady-state Step allocates %v per step, want 0", allocs)
	}
}

// TestSolverResidualPopulated checks the new solver stats flow into the
// profile: a converged contact-rich step reports a finite residual and
// a positive applied-impulse norm, merged in island order.
func TestSolverResidualPopulated(t *testing.T) {
	w := detWorld(2)
	for i := 0; i < 15; i++ {
		w.Step()
	}
	st := w.Profile.Solver
	if st.Rows == 0 {
		t.Fatal("scene produced no solver rows")
	}
	if !(st.ImpulseNorm > 0) {
		t.Fatalf("ImpulseNorm = %v, want > 0 (bodies are resting on the ground)", st.ImpulseNorm)
	}
	if math.IsNaN(st.Residual) || math.IsInf(st.Residual, 0) || st.Residual < 0 {
		t.Fatalf("Residual = %v, want finite and non-negative", st.Residual)
	}
}
