package world

import (
	"fmt"
	"hash/crc32"
	"slices"

	"github.com/parallax-arch/parallax/internal/phys/body"
	"github.com/parallax-arch/parallax/internal/phys/broadphase"
	"github.com/parallax-arch/parallax/internal/phys/cloth"
	"github.com/parallax-arch/parallax/internal/phys/enc"
	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/joint"
	"github.com/parallax-arch/parallax/internal/phys/m3"
	"github.com/parallax-arch/parallax/internal/phys/solver"
)

// World snapshot format: a versioned, byte-stable binary encoding of
// the complete dynamic simulation state, closed with a CRC-32 checksum.
// Byte-stable means the same state always encodes to the same bytes —
// floats are stored as IEEE-754 bit patterns and map contents in sorted
// key order — so snapshot bytes can be compared directly to test state
// equality, and Restore(Snapshot(w)) followed by N steps is
// bit-identical to stepping w uninterrupted, at any thread count.
//
// Captured: solver/world parameters and simulated time; bodies (pose,
// velocities, mass properties, force/torque accumulators, sleep state);
// geoms (shape, placement, flags, cached AABB) and the free-slot list;
// joints including Breakable fatigue and broken flags; explosive specs,
// active blasts with their already-hit sets, and fracture tables;
// cloths (particle positions and Verlet previous positions, pins,
// constraints); the warm-start impulse cache; and the broad phase's
// cross-step state — the sweep-and-prune order, or the incremental
// SAP's endpoint order plus persistent overlap-pair set (their
// temporal coherence is observable in the step profile's SortOps and
// Rebuilds counters).
//
// Intentionally excluded (execution configuration and derived scratch,
// not simulation state): Threads, RecordDetail, the observability
// attachments, the last step's Profile, the worker pool, and the
// per-step scratch arena. See DESIGN.md "State model & snapshot
// format".

// snapMagic identifies a world snapshot ("PAXW" little-endian).
const snapMagic = uint32('P') | uint32('A')<<8 | uint32('X')<<16 | uint32('W')<<24

// SnapshotVersion is the current snapshot format version. Restore
// rejects other versions: forward compatibility is out of scope, and a
// silent misparse would corrupt a simulation.
const SnapshotVersion = 1

// Broad-phase implementation tags in the snapshot encoding.
const (
	bpSweep uint8 = iota
	bpHash
	bpBrute
	bpIncSweep
	bpOther = uint8(255)
)

// Snapshot encodes the world's complete dynamic state.
func (w *World) Snapshot() []byte {
	e := &enc.Writer{}
	e.U32(snapMagic)
	e.U32(SnapshotVersion)

	// Parameters.
	e.Vec(w.Gravity)
	e.F64(w.Dt)
	e.F64(w.ERP)
	e.F64(w.CFM)
	e.Bool(w.EnableSleep)
	e.Bool(w.WarmStart)
	e.F64(w.Time)
	e.I32(int32(w.Solver.Iterations))
	e.F64(w.Solver.SOR)

	// Bodies.
	e.U32(uint32(len(w.Bodies)))
	for _, b := range w.Bodies {
		e.Vec(b.Pos)
		e.Quat(b.Rot)
		e.Vec(b.LinVel)
		e.Vec(b.AngVel)
		e.F64(b.Mass)
		e.Mat(b.Inertia)
		e.Vec(b.Force)
		e.Vec(b.Torque)
		e.Bool(b.Enabled)
		e.Bool(b.Asleep)
		e.F64(b.SleepClock())
	}

	// Geoms.
	e.U32(uint32(len(w.Geoms)))
	for _, g := range w.Geoms {
		if err := geom.EncodeShape(e, g.Shape); err != nil {
			// Unknown shape implementations cannot appear in worlds built
			// through the package API; fail loudly if one does.
			panic(fmt.Sprintf("world: snapshot: %v", err))
		}
		e.Vec(g.Pos)
		e.Mat(g.Rot)
		e.I32(int32(g.Body))
		e.Vec(g.OffsetPos)
		e.Quat(g.OffsetRot)
		e.U16(uint16(g.Flags))
		e.AABB(g.Box)
		e.I32(g.Group)
		e.I32(g.Aux)
	}
	e.I32s(w.bodyGeom)
	e.I32s(w.geomFree)
	e.I32s(w.geomFreeStaged)

	// Joints.
	e.U32(uint32(len(w.Joints)))
	for _, j := range w.Joints {
		if err := joint.EncodeJoint(e, j); err != nil {
			panic(fmt.Sprintf("world: snapshot: %v", err))
		}
	}

	// Explosive specs, in geom-index order.
	expl := make([]int32, 0, len(w.Explosives))
	for gi := range w.Explosives {
		expl = append(expl, gi)
	}
	slices.Sort(expl)
	e.U32(uint32(len(expl)))
	for _, gi := range expl {
		spec := w.Explosives[gi]
		e.I32(gi)
		e.F64(spec.Radius)
		e.F64(spec.Duration)
		e.F64(spec.Impulse)
	}

	// Active blasts, with their already-hit sets in sorted order.
	e.U32(uint32(len(w.Blasts)))
	for i := range w.Blasts {
		bl := &w.Blasts[i]
		e.I32(bl.Geom)
		e.F64(bl.Remaining)
		e.F64(bl.Impulse)
		hit := make([]int32, 0, len(bl.hit))
		for bi := range bl.hit {
			hit = append(hit, bi)
		}
		slices.Sort(hit)
		e.I32s(hit)
		hitCloth := make([]int32, 0, len(bl.hitCloth))
		for ci := range bl.hitCloth {
			hitCloth = append(hitCloth, ci)
		}
		slices.Sort(hitCloth)
		e.I32s(hitCloth)
	}

	// Fracture tables.
	e.U32(uint32(len(w.Fractures)))
	for i := range w.Fractures {
		fr := &w.Fractures[i]
		e.I32(fr.Parent)
		e.I32s(fr.Debris)
		e.Vecs(fr.LocalPos)
		e.U32(uint32(len(fr.LocalRot)))
		for _, q := range fr.LocalRot {
			e.Quat(q)
		}
		e.Bool(fr.Broken)
	}

	// Cloths.
	e.U32(uint32(len(w.Cloths)))
	for _, c := range w.Cloths {
		e.U32(uint32(len(c.Particles)))
		for i := range c.Particles {
			p := &c.Particles[i]
			e.Vec(p.Pos)
			e.Vec(p.Prev)
			e.F64(p.InvMass)
		}
		e.U32(uint32(len(c.Constraints)))
		for i := range c.Constraints {
			con := &c.Constraints[i]
			e.I32(con.I)
			e.I32(con.J)
			e.F64(con.Rest)
		}
		e.U32(uint32(len(c.Tris)))
		for _, t := range c.Tris {
			e.I32(t[0])
			e.I32(t[1])
			e.I32(t[2])
		}
		e.U32(uint32(len(c.Pins)))
		for i := range c.Pins {
			pin := &c.Pins[i]
			e.I32(pin.P)
			e.I32(pin.Body)
			e.Vec(pin.Local)
		}
		e.I32(int32(c.Iterations))
		e.F64(c.Damping)
		e.F64(c.Thickness)
		e.F64(c.Friction)
		e.AABB(c.Box)
	}
	e.I32s(w.clothProxy)

	// Warm-start cache, in (pair, ordinal) order.
	wk := make([]warmKey, 0, len(w.warmCache))
	for k := range w.warmCache {
		wk = append(wk, k)
	}
	slices.SortFunc(wk, func(a, b warmKey) int {
		switch {
		case a.pair != b.pair:
			if a.pair < b.pair {
				return -1
			}
			return 1
		default:
			return int(a.ord) - int(b.ord)
		}
	})
	e.U32(uint32(len(wk)))
	for _, k := range wk {
		v := w.warmCache[k]
		e.U64(k.pair)
		e.I32(k.ord)
		for _, f := range v {
			e.F64(f)
		}
	}

	// Broad phase.
	switch bp := w.Broad.(type) {
	case *broadphase.SweepAndPrune:
		e.U8(bpSweep)
		e.I32s(bp.SaveOrder(nil))
	case *broadphase.IncrementalSAP:
		e.U8(bpIncSweep)
		st := bp.SaveState()
		e.I32(st.Axis)
		e.I32s(st.Endpoints)
		e.U32(uint32(len(st.Pairs)))
		for _, k := range st.Pairs {
			e.U64(k)
		}
		e.Bool(st.Rebuild)
	case *broadphase.SpatialHash:
		e.U8(bpHash)
		e.F64(bp.CellSize)
	case *broadphase.BruteForce:
		e.U8(bpBrute)
	default:
		// Custom implementation: its state cannot be captured here.
		// Restore leaves the target world's broad phase untouched.
		e.U8(bpOther)
	}

	buf := e.Bytes()
	e.U32(crc32.ChecksumIEEE(buf))
	return e.Bytes()
}

// worldState is the fully decoded snapshot, parsed before any of it is
// committed so a corrupt snapshot never leaves the world half-restored.
type worldState struct {
	gravity                  m3.Vec
	dt, erp, cfm             float64
	enableSleep, warmStart   bool
	time                     float64
	solverIters              int
	solverSOR                float64
	bodies                   []*body.Body
	geoms                    []*geom.Geom
	bodyGeom                 []int32
	geomFree, geomFreeStaged []int32
	joints                   []joint.Joint
	explosives               map[int32]ExplosiveSpec
	blasts                   []Blast
	fractures                []FractureGroup
	cloths                   []*cloth.Cloth
	clothProxy               []int32
	clothProxyShape          []*geom.Box
	warmCache                map[warmKey][joint.RowsPerContact]float64
	bpTag                    uint8
	bpOrder                  []int32
	bpInc                    broadphase.IncSAPState
	bpCellSize               float64
}

// Restore replaces the world's dynamic state with a snapshot previously
// produced by Snapshot. Execution configuration (Threads, RecordDetail,
// observability attachments) is left untouched. On error the world is
// unchanged.
func (w *World) Restore(data []byte) error {
	if len(data) < 12 {
		return fmt.Errorf("world: snapshot truncated (%d bytes)", len(data))
	}
	payload := data[:len(data)-4]
	sum := crc32.ChecksumIEEE(payload)
	trailer := enc.NewReader(data[len(data)-4:])
	if got := trailer.U32(); got != sum {
		return fmt.Errorf("world: snapshot checksum mismatch (got %08x, want %08x)", got, sum)
	}
	r := enc.NewReader(payload)
	if magic := r.U32(); magic != snapMagic {
		return fmt.Errorf("world: bad snapshot magic %08x", magic)
	}
	if v := r.U32(); v != SnapshotVersion {
		return fmt.Errorf("world: unsupported snapshot version %d (want %d)", v, SnapshotVersion)
	}
	st, err := decodeState(r)
	if err != nil {
		return err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("world: %d trailing bytes in snapshot", r.Remaining())
	}
	w.commit(st)
	return nil
}

// decodeState parses everything after the header. It validates index
// ranges that later code dereferences, so a corrupt-but-checksummed
// snapshot fails with an error instead of a panic.
func decodeState(r *enc.Reader) (*worldState, error) {
	st := &worldState{}
	st.gravity = r.Vec()
	st.dt = r.F64()
	st.erp = r.F64()
	st.cfm = r.F64()
	st.enableSleep = r.Bool()
	st.warmStart = r.Bool()
	st.time = r.F64()
	st.solverIters = int(r.I32())
	st.solverSOR = r.F64()

	nBodies := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nBodies > r.Remaining() {
		return nil, enc.ErrShort
	}
	st.bodies = make([]*body.Body, nBodies)
	for i := range st.bodies {
		pos := r.Vec()
		rot := r.Quat()
		lin := r.Vec()
		ang := r.Vec()
		mass := r.F64()
		inertia := r.Mat()
		force := r.Vec()
		torque := r.Vec()
		enabled := r.Bool()
		asleep := r.Bool()
		idle := r.F64()
		b := body.New(mass, inertia)
		b.ID = i
		b.Pos = pos
		b.Rot = rot
		b.LinVel = lin
		b.AngVel = ang
		b.Force = force
		b.Torque = torque
		b.Enabled = enabled
		b.Asleep = asleep
		b.SetSleepClock(idle)
		st.bodies[i] = b
	}

	nGeoms := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nGeoms > r.Remaining() {
		return nil, enc.ErrShort
	}
	st.geoms = make([]*geom.Geom, nGeoms)
	for i := range st.geoms {
		sh, err := geom.DecodeShape(r)
		if err != nil {
			return nil, err
		}
		gm := &geom.Geom{ID: i, Shape: sh}
		gm.Pos = r.Vec()
		gm.Rot = r.Mat()
		gm.Body = int(r.I32())
		gm.OffsetPos = r.Vec()
		gm.OffsetRot = r.Quat()
		gm.Flags = geom.Flag(r.U16())
		gm.Box = r.AABB()
		gm.Group = r.I32()
		gm.Aux = r.I32()
		if gm.Body < -1 || gm.Body >= nBodies {
			return nil, fmt.Errorf("world: geom %d references body %d (of %d)", i, gm.Body, nBodies)
		}
		st.geoms[i] = gm
	}
	st.bodyGeom = r.I32s()
	st.geomFree = r.I32s()
	st.geomFreeStaged = r.I32s()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(st.bodyGeom) != nBodies {
		return nil, fmt.Errorf("world: bodyGeom length %d != body count %d", len(st.bodyGeom), nBodies)
	}
	for _, gi := range st.geomFree {
		if gi < 0 || int(gi) >= nGeoms {
			return nil, fmt.Errorf("world: free geom slot %d out of range", gi)
		}
	}

	nJoints := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nJoints > r.Remaining() {
		return nil, enc.ErrShort
	}
	st.joints = make([]joint.Joint, nJoints)
	for i := range st.joints {
		j, err := joint.DecodeJoint(r)
		if err != nil {
			return nil, err
		}
		a, b := j.Bodies()
		if a < -1 || int(a) >= nBodies || b < -1 || int(b) >= nBodies {
			return nil, fmt.Errorf("world: joint %d references bodies (%d, %d) of %d", i, a, b, nBodies)
		}
		st.joints[i] = j
	}

	nExpl := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nExpl > r.Remaining() {
		return nil, enc.ErrShort
	}
	st.explosives = make(map[int32]ExplosiveSpec, nExpl)
	for i := 0; i < nExpl; i++ {
		gi := r.I32()
		spec := ExplosiveSpec{Radius: r.F64(), Duration: r.F64(), Impulse: r.F64()}
		if gi < 0 || int(gi) >= nGeoms {
			return nil, fmt.Errorf("world: explosive spec on geom %d (of %d)", gi, nGeoms)
		}
		st.explosives[gi] = spec
	}

	nBlasts := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nBlasts > r.Remaining() {
		return nil, enc.ErrShort
	}
	st.blasts = make([]Blast, nBlasts)
	for i := range st.blasts {
		bl := &st.blasts[i]
		bl.Geom = r.I32()
		bl.Remaining = r.F64()
		bl.Impulse = r.F64()
		bl.hit = make(map[int32]bool)
		for _, bi := range r.I32s() {
			bl.hit[bi] = true
		}
		bl.hitCloth = make(map[int32]bool)
		for _, ci := range r.I32s() {
			bl.hitCloth[ci] = true
		}
		if bl.Geom < 0 || int(bl.Geom) >= nGeoms {
			return nil, fmt.Errorf("world: blast %d on geom %d (of %d)", i, bl.Geom, nGeoms)
		}
	}

	nFr := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nFr > r.Remaining() {
		return nil, enc.ErrShort
	}
	st.fractures = make([]FractureGroup, nFr)
	for i := range st.fractures {
		fr := &st.fractures[i]
		fr.Parent = r.I32()
		fr.Debris = r.I32s()
		fr.LocalPos = r.Vecs()
		nq := int(r.U32())
		if err := r.Err(); err != nil {
			return nil, err
		}
		if nq > r.Remaining() {
			return nil, enc.ErrShort
		}
		fr.LocalRot = make([]m3.Quat, 0, nq)
		for q := 0; q < nq; q++ {
			fr.LocalRot = append(fr.LocalRot, r.Quat())
		}
		fr.Broken = r.Bool()
		if fr.Parent < 0 || int(fr.Parent) >= nGeoms {
			return nil, fmt.Errorf("world: fracture %d parent %d (of %d)", i, fr.Parent, nGeoms)
		}
		for _, di := range fr.Debris {
			if di < 0 || int(di) >= nGeoms {
				return nil, fmt.Errorf("world: fracture %d debris %d (of %d)", i, di, nGeoms)
			}
		}
		if len(fr.Debris) != len(fr.LocalPos) || len(fr.Debris) != len(fr.LocalRot) {
			return nil, fmt.Errorf("world: fracture %d table lengths mismatch", i)
		}
	}

	nCloths := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nCloths > r.Remaining() {
		return nil, enc.ErrShort
	}
	st.cloths = make([]*cloth.Cloth, nCloths)
	for i := range st.cloths {
		c := &cloth.Cloth{}
		np := int(r.U32())
		if err := r.Err(); err != nil {
			return nil, err
		}
		if np > r.Remaining() {
			return nil, enc.ErrShort
		}
		c.Particles = make([]cloth.Particle, np)
		for p := range c.Particles {
			c.Particles[p].Pos = r.Vec()
			c.Particles[p].Prev = r.Vec()
			c.Particles[p].InvMass = r.F64()
		}
		nc := int(r.U32())
		if err := r.Err(); err != nil {
			return nil, err
		}
		if nc > r.Remaining() {
			return nil, enc.ErrShort
		}
		c.Constraints = make([]cloth.Constraint, nc)
		for ci := range c.Constraints {
			c.Constraints[ci].I = r.I32()
			c.Constraints[ci].J = r.I32()
			c.Constraints[ci].Rest = r.F64()
		}
		nt := int(r.U32())
		if err := r.Err(); err != nil {
			return nil, err
		}
		if nt > r.Remaining() {
			return nil, enc.ErrShort
		}
		c.Tris = make([]geom.Tri, nt)
		for t := range c.Tris {
			c.Tris[t][0] = r.I32()
			c.Tris[t][1] = r.I32()
			c.Tris[t][2] = r.I32()
		}
		npin := int(r.U32())
		if err := r.Err(); err != nil {
			return nil, err
		}
		if npin > r.Remaining() {
			return nil, enc.ErrShort
		}
		c.Pins = make([]cloth.Pin, npin)
		for p := range c.Pins {
			c.Pins[p].P = r.I32()
			c.Pins[p].Body = r.I32()
			c.Pins[p].Local = r.Vec()
		}
		c.Iterations = int(r.I32())
		c.Damping = r.F64()
		c.Thickness = r.F64()
		c.Friction = r.F64()
		c.Box = r.AABB()
		for _, con := range c.Constraints {
			if con.I < 0 || int(con.I) >= np || con.J < 0 || int(con.J) >= np {
				return nil, fmt.Errorf("world: cloth %d constraint out of range", i)
			}
		}
		for _, pin := range c.Pins {
			if pin.P < 0 || int(pin.P) >= np || pin.Body < 0 || int(pin.Body) >= nBodies {
				return nil, fmt.Errorf("world: cloth %d pin out of range", i)
			}
		}
		st.cloths[i] = c
	}
	st.clothProxy = r.I32s()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(st.clothProxy) != nCloths {
		return nil, fmt.Errorf("world: %d cloth proxies for %d cloths", len(st.clothProxy), nCloths)
	}
	st.clothProxyShape = make([]*geom.Box, nCloths)
	for ci, gi := range st.clothProxy {
		if gi < 0 || int(gi) >= nGeoms {
			return nil, fmt.Errorf("world: cloth %d proxy geom %d (of %d)", ci, gi, nGeoms)
		}
		// Re-establish the proxy aliasing: the proxy geom's Shape must be
		// the same *Box the world resizes each step.
		bx, ok := st.geoms[gi].Shape.(geom.Box)
		if !ok {
			return nil, fmt.Errorf("world: cloth %d proxy geom %d is %T, want box", ci, gi, st.geoms[gi].Shape)
		}
		sh := &geom.Box{Half: bx.Half}
		st.geoms[gi].Shape = sh
		st.clothProxyShape[ci] = sh
	}

	nWarm := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nWarm > r.Remaining() {
		return nil, enc.ErrShort
	}
	if nWarm > 0 {
		st.warmCache = make(map[warmKey][joint.RowsPerContact]float64, nWarm)
		for i := 0; i < nWarm; i++ {
			k := warmKey{pair: r.U64(), ord: r.I32()}
			var v [joint.RowsPerContact]float64
			for vi := range v {
				v[vi] = r.F64()
			}
			st.warmCache[k] = v
		}
	}

	st.bpTag = r.U8()
	switch st.bpTag {
	case bpSweep:
		st.bpOrder = r.I32s()
		for _, gi := range st.bpOrder {
			if gi < 0 || int(gi) >= nGeoms {
				return nil, fmt.Errorf("world: broadphase order entry %d out of range", gi)
			}
		}
	case bpIncSweep:
		st.bpInc.Axis = r.I32()
		st.bpInc.Endpoints = r.I32s()
		nPairs := int(r.U32())
		if err := r.Err(); err != nil {
			return nil, err
		}
		if nPairs > r.Remaining() {
			return nil, enc.ErrShort
		}
		st.bpInc.Pairs = make([]uint64, 0, nPairs)
		for i := 0; i < nPairs; i++ {
			st.bpInc.Pairs = append(st.bpInc.Pairs, r.U64())
		}
		st.bpInc.Rebuild = r.Bool()
		if st.bpInc.Axis < 0 || st.bpInc.Axis > 2 {
			return nil, fmt.Errorf("world: broadphase sweep axis %d out of range", st.bpInc.Axis)
		}
		// Each geom in the endpoint array must contribute exactly one min
		// and one max, min first — RestoreState and the next pass's sort
		// assume a well-formed permutation.
		seen := make(map[int32]int32, len(st.bpInc.Endpoints)/2)
		done := 0
		for _, packed := range st.bpInc.Endpoints {
			id, side := packed>>1, packed&1
			if id < 0 || int(id) >= nGeoms {
				return nil, fmt.Errorf("world: broadphase endpoint geom %d (of %d)", id, nGeoms)
			}
			if seen[id] != side {
				return nil, fmt.Errorf("world: broadphase endpoints of geom %d malformed", id)
			}
			seen[id] = side + 1
			if side == 1 {
				done++
			}
		}
		if 2*done != len(st.bpInc.Endpoints) {
			return nil, fmt.Errorf("world: broadphase endpoint array incomplete (%d endpoints, %d closed)", len(st.bpInc.Endpoints), done)
		}
		for _, k := range st.bpInc.Pairs {
			a, b := int32(k>>32), int32(k&0xffffffff)
			if a >= b || seen[a] != 2 || seen[b] != 2 {
				return nil, fmt.Errorf("world: broadphase pair key (%d,%d) malformed", a, b)
			}
		}
	case bpHash:
		st.bpCellSize = r.F64()
	case bpBrute, bpOther:
	default:
		return nil, fmt.Errorf("world: unknown broadphase tag %d", st.bpTag)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return st, nil
}

// commit swaps the decoded state into the world. Execution
// configuration (Threads, RecordDetail, obs attachments, worker pool,
// scratch arena) is preserved.
func (w *World) commit(st *worldState) {
	w.Gravity = st.gravity
	w.Dt = st.dt
	w.ERP = st.erp
	w.CFM = st.cfm
	w.EnableSleep = st.enableSleep
	w.WarmStart = st.warmStart
	w.Time = st.time
	if w.Solver == nil {
		w.Solver = solver.New()
	}
	w.Solver.Iterations = st.solverIters
	w.Solver.SOR = st.solverSOR

	w.Bodies = st.bodies
	w.Geoms = st.geoms
	w.bodyGeom = st.bodyGeom
	w.geomFree = st.geomFree
	w.geomFreeStaged = st.geomFreeStaged
	w.Joints = st.joints
	w.Explosives = st.explosives
	w.Blasts = st.blasts
	w.blastOfGeom = make(map[int32]int32, len(st.blasts))
	for i := range st.blasts {
		w.blastOfGeom[st.blasts[i].Geom] = int32(i)
	}
	w.Fractures = st.fractures
	w.fractureOfGeom = make(map[int32]int32, len(st.fractures))
	for i := range st.fractures {
		w.fractureOfGeom[st.fractures[i].Parent] = int32(i)
	}
	w.Cloths = st.cloths
	w.clothProxy = st.clothProxy
	w.clothProxyShape = st.clothProxyShape
	w.clothContacts = make([][]int32, len(st.cloths))
	w.warmCache = st.warmCache

	switch st.bpTag {
	case bpSweep:
		sap, ok := w.Broad.(*broadphase.SweepAndPrune)
		if !ok {
			sap = broadphase.NewSweepAndPrune()
			w.Broad = sap
		}
		sap.RestoreOrder(st.bpOrder)
	case bpIncSweep:
		inc, ok := w.Broad.(*broadphase.IncrementalSAP)
		if !ok {
			inc = broadphase.NewIncrementalSAP()
			w.Broad = inc
		}
		inc.RestoreState(st.bpInc)
	case bpHash:
		h, ok := w.Broad.(*broadphase.SpatialHash)
		if !ok {
			h = broadphase.NewSpatialHash()
			w.Broad = h
		}
		h.CellSize = st.bpCellSize
	case bpBrute:
		if _, ok := w.Broad.(*broadphase.BruteForce); !ok {
			w.Broad = broadphase.NewBruteForce()
		}
	case bpOther:
		// The source world ran a custom broad phase whose state the
		// snapshot cannot carry; keep whatever the target world has.
	}

	// Seed the pair/edge pre-size hints so the first post-restore step
	// doesn't regrow its scratch buffers incrementally. The incremental
	// SAP's saved pair set gives a real count; otherwise estimate from
	// the scene size.
	w.prevPairs = len(st.bpInc.Pairs)
	if w.prevPairs == 0 {
		w.prevPairs = 4 * len(st.geoms)
	}
	w.prevEdges = w.prevPairs + len(st.joints)

	// The last step's profile described the pre-restore state.
	w.Profile = StepProfile{}
}

// Clone returns an independent copy of the world via a snapshot round
// trip, sharing no mutable state with the original. Execution
// configuration (Threads, RecordDetail) is copied; observability
// attachments are not.
func (w *World) Clone() (*World, error) {
	nw := New()
	nw.Threads = w.Threads
	nw.RecordDetail = w.RecordDetail
	if err := nw.Restore(w.Snapshot()); err != nil {
		return nil, err
	}
	return nw, nil
}
