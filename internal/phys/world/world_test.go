package world

import (
	"math"
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/cloth"
	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/joint"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

func groundWorld() *World {
	w := New()
	w.AddStatic(geom.Plane{Normal: m3.V(0, 1, 0), Offset: 0}, m3.Zero, m3.QIdent)
	return w
}

func TestBallFallsAndRests(t *testing.T) {
	w := groundWorld()
	bi, _ := w.AddBody(geom.Sphere{R: 0.5}, 1, m3.V(0, 3, 0), m3.QIdent, 0, 0)
	for i := 0; i < 300; i++ {
		w.Step()
	}
	b := w.Bodies[bi]
	if math.Abs(b.Pos.Y-0.5) > 0.05 {
		t.Errorf("ball resting height = %v, want ~0.5", b.Pos.Y)
	}
	if b.LinVel.Len() > 0.1 {
		t.Errorf("ball still moving at %v m/s", b.LinVel.Len())
	}
	if !b.Valid() {
		t.Error("body state invalid")
	}
}

func TestBoxStackStable(t *testing.T) {
	w := groundWorld()
	var tops []int32
	for i := 0; i < 4; i++ {
		bi, _ := w.AddBody(geom.Box{Half: m3.V(0.5, 0.5, 0.5)}, 2,
			m3.V(0, 0.5+float64(i)*1.001, 0), m3.QIdent, 0, 0)
		tops = append(tops, bi)
	}
	for i := 0; i < 200; i++ {
		w.Step()
	}
	for n, bi := range tops {
		b := w.Bodies[bi]
		wantY := 0.5 + float64(n)*1.0
		if math.Abs(b.Pos.Y-wantY) > 0.2 {
			t.Errorf("box %d at y=%v, want ~%v", n, b.Pos.Y, wantY)
		}
		if math.Abs(b.Pos.X) > 0.3 || math.Abs(b.Pos.Z) > 0.3 {
			t.Errorf("box %d drifted laterally to (%v, %v)", n, b.Pos.X, b.Pos.Z)
		}
	}
}

func TestParallelMatchesSerialStructure(t *testing.T) {
	// The same scene stepped with 1 and 4 threads must produce identical
	// pair/contact/island statistics (per-thread buffers are merged in
	// thread order, so the simulation is deterministic).
	build := func(threads int) *World {
		w := groundWorld()
		w.Threads = threads
		for i := 0; i < 20; i++ {
			x := float64(i%5) * 1.2
			z := float64(i/5) * 1.2
			w.AddBody(geom.Sphere{R: 0.5}, 1, m3.V(x, 1+float64(i%3), z), m3.QIdent, 0, 0)
		}
		return w
	}
	w1 := build(1)
	w4 := build(4)
	for i := 0; i < 60; i++ {
		w1.Step()
		w4.Step()
		p1, p4 := w1.Profile, w4.Profile
		if p1.Pairs != p4.Pairs || p1.Contacts != p4.Contacts || len(p1.Islands) != len(p4.Islands) {
			t.Fatalf("step %d: serial/parallel divergence: pairs %d/%d contacts %d/%d islands %d/%d",
				i, p1.Pairs, p4.Pairs, p1.Contacts, p4.Contacts, len(p1.Islands), len(p4.Islands))
		}
	}
	for i := range w1.Bodies {
		d := w1.Bodies[i].Pos.Dist(w4.Bodies[i].Pos)
		if d > 1e-9 {
			t.Fatalf("body %d diverged by %v between 1 and 4 threads", i, d)
		}
	}
}

func TestIslandFormation(t *testing.T) {
	w := groundWorld()
	// Two separate stacks -> two islands (plus any singletons).
	for i := 0; i < 3; i++ {
		w.AddBody(geom.Box{Half: m3.V(0.5, 0.5, 0.5)}, 1, m3.V(0, 0.5+float64(i), 0), m3.QIdent, 0, 0)
		w.AddBody(geom.Box{Half: m3.V(0.5, 0.5, 0.5)}, 1, m3.V(10, 0.5+float64(i), 0), m3.QIdent, 0, 0)
	}
	for i := 0; i < 10; i++ {
		w.Step()
	}
	if len(w.Profile.Islands) != 2 {
		t.Errorf("want 2 islands, got %d: %+v", len(w.Profile.Islands), w.Profile.Islands)
	}
	for _, is := range w.Profile.Islands {
		if is.Bodies != 3 {
			t.Errorf("island body count = %d, want 3", is.Bodies)
		}
		if is.DOF == 0 {
			t.Error("island has no constraint rows")
		}
	}
}

func TestJointedPendulum(t *testing.T) {
	w := New()
	bi, _ := w.AddBody(geom.Sphere{R: 0.2}, 1, m3.V(1, 0, 0), m3.QIdent, 0, 0)
	w.AddJoint(joint.NewBall(w.Bodies, int32(bi), -1, m3.Zero))
	minY := 0.0
	for i := 0; i < 500; i++ {
		w.Step()
		b := w.Bodies[bi]
		// The bob stays on (approximately) the unit sphere around the
		// anchor throughout the swing.
		if r := b.Pos.Len(); math.Abs(r-1) > 0.05 {
			t.Fatalf("step %d: pendulum length drifted to %v", i, r)
		}
		if b.Pos.Y < minY {
			minY = b.Pos.Y
		}
	}
	// At some point it must have swung well below its start.
	if minY > -0.8 {
		t.Errorf("pendulum never swung down: min y = %v", minY)
	}
}

func TestExplosionReplacesBodyWithBlast(t *testing.T) {
	w := groundWorld()
	_, gi := w.AddBody(geom.Sphere{R: 0.3}, 1, m3.V(0, 0.29, 0), m3.QIdent, 0, 0)
	w.MarkExplosive(gi, ExplosiveSpec{Radius: 3, Duration: 0.05, Impulse: 10})
	// A bystander inside the future blast radius.
	vi, _ := w.AddBody(geom.Sphere{R: 0.3}, 1, m3.V(1.5, 0.3, 0), m3.QIdent, 0, 0)

	w.Step() // bomb touches the ground -> detonates
	if w.Profile.Explosions != 1 {
		t.Fatalf("explosions = %d, want 1", w.Profile.Explosions)
	}
	if w.Geoms[gi].Enabled() {
		t.Error("explosive geom should be disabled after detonation")
	}
	if len(w.Blasts) != 1 {
		t.Fatalf("blast volume not created")
	}
	w.Step() // blast pairs with the bystander and pushes it
	v := w.Bodies[vi]
	if v.LinVel.X <= 0.5 {
		t.Errorf("bystander not pushed away: vel %v", v.LinVel)
	}
	// Blast expires after its duration.
	for i := 0; i < 10; i++ {
		w.Step()
	}
	if len(w.Blasts) != 0 {
		t.Error("blast volume did not expire")
	}
}

func TestPrefractureShatters(t *testing.T) {
	w := groundWorld()
	// Parent brick.
	_, pg := w.AddBody(geom.Box{Half: m3.V(0.5, 0.5, 0.5)}, 4, m3.V(0, 0.5, 0), m3.QIdent, 0, 0)
	// Four debris pieces inside it, disabled at startup.
	var debris []int32
	for i := 0; i < 4; i++ {
		off := m3.V(float64(i%2)*0.5-0.25, 0.5, float64(i/2)*0.5-0.25)
		_, dg := w.AddBody(geom.Box{Half: m3.V(0.25, 0.25, 0.25)}, 1, off, m3.QIdent, geom.FlagDebris, 0)
		w.DisableBodyGeom(dg)
		debris = append(debris, dg)
	}
	w.RegisterFracture(pg, debris)

	// A bomb resting against the brick.
	_, bomb := w.AddBody(geom.Sphere{R: 0.3}, 1, m3.V(0.85, 0.3, 0), m3.QIdent, 0, 0)
	w.MarkExplosive(bomb, ExplosiveSpec{Radius: 2, Duration: 0.05, Impulse: 5})

	found := false
	for i := 0; i < 5; i++ {
		w.Step()
		if w.Profile.FractureHit > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("blast did not shatter the prefractured brick")
	}
	if w.Geoms[pg].Enabled() {
		t.Error("parent geom still enabled after shattering")
	}
	for _, dg := range debris {
		if !w.Geoms[dg].Enabled() {
			t.Error("debris not enabled after shattering")
		}
	}
	if w.Fractures[0].Broken != true {
		t.Error("fracture group not marked broken")
	}
}

func TestBreakableJointBreaksUnderLoad(t *testing.T) {
	w := New()
	// A heavy body hanging from a weak joint to the world.
	bi, _ := w.AddBody(geom.Sphere{R: 0.3}, 50, m3.V(0, -1, 0), m3.QIdent, 0, 0)
	j := joint.NewBreakable(joint.NewBall(w.Bodies, int32(bi), -1, m3.Zero), 100, 0)
	w.AddJoint(j)
	broke := false
	for i := 0; i < 100; i++ {
		w.Step()
		if w.Profile.JointBreaks > 0 {
			broke = true
			break
		}
	}
	if !broke {
		t.Fatal("overloaded breakable joint did not break")
	}
	// After breaking the body free-falls.
	y0 := w.Bodies[bi].Pos.Y
	for i := 0; i < 50; i++ {
		w.Step()
	}
	if w.Bodies[bi].Pos.Y >= y0-0.5 {
		t.Error("body did not fall after joint broke")
	}
}

func TestClothContactListDrivesCollision(t *testing.T) {
	w := New()
	w.AddStatic(geom.Plane{Normal: m3.V(0, 1, 0), Offset: 0}, m3.Zero, m3.QIdent)
	c := cloth.NewGrid(8, 8, 0.1, m3.V(-0.35, 1.2, -0.35), 0.5)
	w.AddCloth(c)
	// A ball placed under the cloth.
	w.AddBody(geom.Sphere{R: 0.4}, 0, m3.V(0, 0.4, 0), m3.QIdent, 0, 0)
	for i := 0; i < 200; i++ {
		w.Step()
	}
	for i := range c.Particles {
		d := c.Particles[i].Pos.Dist(m3.V(0, 0.4, 0))
		if d < 0.4-1e-6 {
			t.Fatalf("cloth particle %d penetrated the ball (dist %v)", i, d)
		}
	}
	if w.Profile.ClothVerts[0] != 64 {
		t.Errorf("cloth verts = %v, want [64]", w.Profile.ClothVerts)
	}
}

func TestProfilePopulated(t *testing.T) {
	w := groundWorld()
	w.AddBody(geom.Sphere{R: 0.5}, 1, m3.V(0, 0.4, 0), m3.QIdent, 0, 0)
	w.AddBody(geom.Sphere{R: 0.5}, 1, m3.V(0.6, 0.4, 0), m3.QIdent, 0, 0)
	f := w.StepFrame()
	if len(f.Steps) != StepsPerFrame {
		t.Fatalf("frame steps = %d", len(f.Steps))
	}
	if f.TotalPairs() == 0 || f.TotalContacts() == 0 {
		t.Errorf("frame profile empty: pairs %d contacts %d", f.TotalPairs(), f.TotalContacts())
	}
	p := w.Profile
	if p.Solver.RowUpdates == 0 || p.BodiesIntegrated == 0 {
		t.Errorf("solver stats missing: %+v", p.Solver)
	}
	if p.Broad.Geoms == 0 {
		t.Error("broadphase stats missing")
	}
}

func TestSleepFreezesIdleBodies(t *testing.T) {
	w := groundWorld()
	w.EnableSleep = true
	bi, _ := w.AddBody(geom.Sphere{R: 0.5}, 1, m3.V(0, 0.5, 0), m3.QIdent, 0, 0)
	for i := 0; i < 300; i++ {
		w.Step()
	}
	if !w.Bodies[bi].Asleep {
		t.Error("resting body did not fall asleep")
	}
	// A projectile hitting it wakes it up.
	w.AddBody(geom.Sphere{R: 0.3}, 1, m3.V(-3, 0.5, 0), m3.QIdent, 0, 0)
	w.Bodies[len(w.Bodies)-1].LinVel = m3.V(10, 0, 0)
	woke := false
	for i := 0; i < 100; i++ {
		w.Step()
		if !w.Bodies[bi].Asleep {
			woke = true
			break
		}
	}
	if !woke {
		t.Error("contact did not wake the sleeping body")
	}
}

func TestSmallIslandsRunOnMainThread(t *testing.T) {
	// A single pair of touching spheres forms a small island (6 contact
	// rows < SmallIslandDOF+1? contact rows = 3 per contact). Just check
	// the step works under multiple threads with small islands.
	w := groundWorld()
	w.Threads = 4
	w.AddBody(geom.Sphere{R: 0.5}, 1, m3.V(0, 0.45, 0), m3.QIdent, 0, 0)
	for i := 0; i < 20; i++ {
		w.Step()
	}
	if len(w.Profile.Islands) != 1 {
		t.Fatalf("islands = %d", len(w.Profile.Islands))
	}
	if w.Profile.Islands[0].DOF > SmallIslandDOF {
		t.Skip("island unexpectedly large")
	}
}

func TestHeightFieldDrive(t *testing.T) {
	// A ball rolling downhill on a ramp heightfield gains lateral speed.
	w := New()
	n := 20
	hs := make([]float64, n*n)
	for z := 0; z < n; z++ {
		for x := 0; x < n; x++ {
			hs[z*n+x] = float64(n-x) * 0.2 // slope down along +x
		}
	}
	w.AddStatic(geom.NewHeightField(n, n, 1, 1, hs), m3.V(0, 0, 0), m3.QIdent)
	bi, _ := w.AddBody(geom.Sphere{R: 0.5}, 1, m3.V(3, hs[3]+3, 10), m3.QIdent, 0, 0)
	for i := 0; i < 300; i++ {
		w.Step()
	}
	b := w.Bodies[bi]
	if b.LinVel.X <= 0.2 && b.Pos.X < 4 {
		t.Errorf("ball did not roll downhill: pos %v vel %v", b.Pos, b.LinVel)
	}
	if !b.Valid() {
		t.Error("body invalid")
	}
}
