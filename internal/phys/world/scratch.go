package world

import (
	"github.com/parallax-arch/parallax/internal/obs"
	"github.com/parallax-arch/parallax/internal/phys/cloth"
	"github.com/parallax-arch/parallax/internal/phys/island"
	"github.com/parallax-arch/parallax/internal/phys/joint"
	"github.com/parallax-arch/parallax/internal/phys/narrowphase"
	"github.com/parallax-arch/parallax/internal/phys/solver"
)

// narrowEvents is one narrow-phase chunk's output: contacts plus the
// special-contact events (explosions, blast hits, cloth contact lists).
// Chunks are partitioned deterministically over the pair list, so
// merging the chunk buffers in index order reproduces the serial result
// bit for bit whatever the thread count.
type narrowEvents struct {
	contacts   []narrowphase.Contact
	stats      narrowphase.Stats
	explosions []int32
	blastHits  [][2]int32 // blast geom, other geom
	blastCloth [][2]int32 // blast geom, cloth index
	clothHits  [][2]int32 // cloth index, other geom
	// scr holds the chunk's collision scratch (mesh-query and EPA
	// buffers). It persists across steps — beginStep resets the event
	// slices but leaves it alone — so mesh/hull pairs stay allocation-free.
	scr narrowphase.Scratch
}

// warmKey identifies a contact across steps for warm starting: the geom
// pair plus the contact's ordinal within that pair's manifold.
type warmKey struct {
	pair uint64
	ord  int32
}

// frameScratch is the World's reusable per-step arena. Everything the
// step loop needs that scales with the scene — per-chunk narrow-phase
// buffers, the merged contact list, island edges, per-island solver
// stats, joint-load accumulators, warm-start bookkeeping, and
// per-worker row buffers and solver workspaces — lives here and is
// re-sliced to length zero (or overwritten in place) each step, so a
// steady-state Step performs no heap allocation. Event paths that fire
// rarely (detonations, RecordDetail profile copies) still allocate; see
// DESIGN.md "Scratch-arena memory model".
type frameScratch struct {
	// Narrow phase: one buffer set per chunk (chunk count = Threads).
	narrow []narrowEvents
	// contacts is the merged, deterministic contact list.
	contacts []narrowphase.Contact
	// seenExpl dedups explosion events across chunks.
	seenExpl map[int32]bool

	// Island creation.
	edges   []island.Edge
	builder island.Builder
	islands []island.Island // aliases builder storage; valid for the step

	// Island processing.
	solverStats []solver.Stats
	// jointLoad accumulates constraint force per joint id. Islands touch
	// disjoint joints, so parallel island solves write disjoint entries.
	jointLoad []float64
	// queued and main partition island indices (and later cloth indices)
	// between the work queue and the main thread.
	queued, main []int32
	// Per-worker storage, indexed by pool worker id (0 = main thread).
	rows []([]joint.Row)
	ws   []solver.Workspace

	// Warm starting: per-contact keys, manifold ordinals, the row base of
	// each solved contact (-1 = not solved this step), and the per-row
	// impulses gathered from island solves.
	contactKey []uint64
	contactOrd []int32
	ordCount   map[uint64]int32
	rowBase    []int32
	warmLambda []float64

	// Cloth phase.
	clothStats []cloth.Stats
	clothIdx   []int32

	// parallelChunks state (set for the duration of one dispatch).
	chunkFn   func(chunk, lo, hi int)
	chunkSize int
	chunkN    int
	chunkIdx  []int32
	chunkMain []int32
	// chunkSpan is the span recorded around each chunk execution, set by
	// parallelChunks per dispatch (refresh, narrow, edge, integrate...).
	chunkSpan obs.SpanID

	// Chunk-parallel phase merge buffers, indexed by chunk (count <=
	// threads); merged serially in chunk order so results are
	// deterministic whatever worker ran each chunk.
	refresh    [][2]int        // refreshChunk: (geoms seen, AABBs updated)
	edgeChunks [][]island.Edge // edgeChunk: per-chunk island edge lists
	integ      []int           // posChunk: bodies integrated per chunk
}

// beginStep resizes the arena for the current scene, reusing all prior
// capacity. edgeHint pre-sizes the island edge list from the previous
// step's count so the first steps after a snapshot Restore don't regrow
// it incrementally.
//
//paraxlint:noalloc
func (sc *frameScratch) beginStep(threads, numJoints, edgeHint int) {
	if threads < 1 {
		threads = 1
	}
	if cap(sc.narrow) < threads {
		//paraxlint:allow(alloc) capacity growth, amortized to zero in steady state
		sc.narrow = append(sc.narrow[:cap(sc.narrow)], make([]narrowEvents, threads-cap(sc.narrow))...)
	}
	sc.narrow = sc.narrow[:threads]
	for i := range sc.narrow {
		e := &sc.narrow[i]
		e.contacts = e.contacts[:0]
		e.stats = narrowphase.Stats{}
		e.explosions = e.explosions[:0]
		e.blastHits = e.blastHits[:0]
		e.blastCloth = e.blastCloth[:0]
		e.clothHits = e.clothHits[:0]
	}
	sc.contacts = sc.contacts[:0]
	if sc.seenExpl == nil {
		sc.seenExpl = make(map[int32]bool) //paraxlint:allow(alloc) lazy one-time map
	}
	clear(sc.seenExpl)
	sc.edges = sc.edges[:0]
	if cap(sc.edges) < edgeHint {
		sc.edges = make([]island.Edge, 0, edgeHint) //paraxlint:allow(alloc) pre-sized from the previous step's count
	}

	sc.jointLoad = growFloat(sc.jointLoad, numJoints)
	clear(sc.jointLoad)

	if cap(sc.refresh) < threads {
		sc.refresh = make([][2]int, threads) //paraxlint:allow(alloc) capacity growth, amortized
	}
	sc.refresh = sc.refresh[:threads]
	for i := range sc.refresh {
		sc.refresh[i] = [2]int{}
	}
	if cap(sc.edgeChunks) < threads {
		//paraxlint:allow(alloc) capacity growth, amortized to zero in steady state
		sc.edgeChunks = append(sc.edgeChunks[:cap(sc.edgeChunks)], make([][]island.Edge, threads-cap(sc.edgeChunks))...)
	}
	sc.edgeChunks = sc.edgeChunks[:threads]
	for i := range sc.edgeChunks {
		sc.edgeChunks[i] = sc.edgeChunks[i][:0]
	}
	if cap(sc.integ) < threads {
		sc.integ = make([]int, threads) //paraxlint:allow(alloc) capacity growth, amortized
	}
	sc.integ = sc.integ[:threads]
	clear(sc.integ)

	if cap(sc.rows) < threads {
		//paraxlint:allow(alloc) capacity growth, amortized to zero in steady state
		sc.rows = append(sc.rows[:cap(sc.rows)], make([][]joint.Row, threads-cap(sc.rows))...)
		//paraxlint:allow(alloc) capacity growth, amortized to zero in steady state
		sc.ws = append(sc.ws[:cap(sc.ws)], make([]solver.Workspace, threads-cap(sc.ws))...)
	}
	sc.rows = sc.rows[:threads]
	sc.ws = sc.ws[:threads]
}

// beginIslands sizes the per-island and per-contact working sets.
//
//paraxlint:noalloc
func (sc *frameScratch) beginIslands(numIslands, numContacts int, warm bool) {
	sc.solverStats = growStats(sc.solverStats, numIslands)
	for i := range sc.solverStats {
		sc.solverStats[i] = solver.Stats{}
	}
	sc.rowBase = growInt32(sc.rowBase, numContacts)
	for i := range sc.rowBase {
		sc.rowBase[i] = -1
	}
	if warm {
		sc.contactKey = growUint64(sc.contactKey, numContacts)
		sc.contactOrd = growInt32(sc.contactOrd, numContacts)
		sc.warmLambda = growFloat(sc.warmLambda, numContacts*joint.RowsPerContact)
		clear(sc.warmLambda)
		if sc.ordCount == nil {
			sc.ordCount = make(map[uint64]int32) //paraxlint:allow(alloc) lazy one-time map
		}
		clear(sc.ordCount)
	}
	sc.queued = sc.queued[:0]
	sc.main = sc.main[:0]
}

//paraxlint:noalloc
func growFloat(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n) //paraxlint:allow(alloc) capacity growth, amortized
	}
	return s[:n]
}

//paraxlint:noalloc
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n) //paraxlint:allow(alloc) capacity growth, amortized
	}
	return s[:n]
}

//paraxlint:noalloc
func growUint64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n) //paraxlint:allow(alloc) capacity growth, amortized
	}
	return s[:n]
}

//paraxlint:noalloc
func growStats(s []solver.Stats, n int) []solver.Stats {
	if cap(s) < n {
		return make([]solver.Stats, n) //paraxlint:allow(alloc) capacity growth, amortized
	}
	return s[:n]
}
