package world

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/parallax-arch/parallax/internal/obs"
)

// TestStepTraceCoversPhases steps a traced world and checks the export
// is valid Chrome trace JSON whose spans cover all five phases plus the
// per-worker task spans.
func TestStepTraceCoversPhases(t *testing.T) {
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	w := detWorld(2)
	w.SetObs(tr, reg, "det")
	for i := 0; i < 5; i++ {
		w.Step()
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "B" || e.Ph == "X" {
			seen[e.Name] = true
		}
	}
	for _, want := range []string{
		"step", "broadphase", "narrowphase", "island-creation",
		"island-processing", "integrate", "cloth", "island", "solve",
		"cloth-object", "narrow-chunk", "refresh-chunk", "edge-chunk",
		"integrate-chunk", "sync-chunk",
	} {
		if !seen[want] {
			t.Errorf("trace missing span %q (have %v)", want, seen)
		}
	}
	// The tracer's cumulative totals must agree with the stepping we did:
	// exactly one matched "step" span per Step call.
	if n, ns := tr.SpanTotal(tr.Span("step")); n != 5 || ns <= 0 {
		t.Errorf("SpanTotal(step) = (%d, %d), want 5 matched spans with positive time", n, ns)
	}
}

// TestStepMetricsMatchProfile cross-checks the harvested counters
// against an independently accumulated profile.
func TestStepMetricsMatchProfile(t *testing.T) {
	reg := obs.NewRegistry()
	w := detWorld(1)
	w.SetObs(nil, reg, "")
	steps, pairs, contacts := 0, 0, 0
	for i := 0; i < 20; i++ {
		w.Step()
		steps++
		pairs += w.Profile.Pairs
		contacts += w.Profile.Contacts
	}
	if got := reg.CounterValue(reg.Counter("engine/steps")); got != int64(steps) {
		t.Errorf("engine/steps = %d, want %d", got, steps)
	}
	if got := reg.CounterValue(reg.Counter("engine/pairs")); got != int64(pairs) {
		t.Errorf("engine/pairs = %d, want %d", got, pairs)
	}
	if got := reg.CounterValue(reg.Counter("engine/contacts")); got != int64(contacts) {
		t.Errorf("engine/contacts = %d, want %d", got, contacts)
	}
	if !strings.Contains(reg.Snapshot(), "hist engine/island_dof") {
		t.Error("snapshot missing the island DOF histogram")
	}
}

// TestStepMetricsThreadCountDeterminism: the same scene stepped with 1
// and 8 threads must produce byte-identical metrics snapshots — the
// registry may hold only order-independent integer aggregates.
func TestStepMetricsThreadCountDeterminism(t *testing.T) {
	run := func(threads int) string {
		reg := obs.NewRegistry()
		w := detWorld(threads)
		w.SetObs(obs.NewTracer(), reg, "det") // tracing on: must not perturb metrics
		for i := 0; i < 30; i++ {
			w.Step()
		}
		return reg.Snapshot()
	}
	s1, s8 := run(1), run(8)
	if s1 != s8 {
		t.Fatalf("metrics snapshot differs between 1 and 8 threads:\n-- 1 --\n%s\n-- 8 --\n%s", s1, s8)
	}
}

// TestTracedStepThreadGrowth raises Threads after SetObs: lanes must
// grow and tracing must keep working (no panics, spans on new workers).
func TestTracedStepThreadGrowth(t *testing.T) {
	tr := obs.NewTracer()
	w := detWorld(1)
	w.SetObs(tr, nil, "grow")
	for i := 0; i < 3; i++ {
		w.Step()
	}
	w.Threads = 4
	for i := 0; i < 3; i++ {
		w.Step()
	}
	if len(w.obsLanes) != 4 {
		t.Fatalf("have %d lanes after raising Threads to 4", len(w.obsLanes))
	}
}

// TestStepSteadyStateAllocsTraced is the tentpole acceptance check:
// steady-state Step stays allocation-free with tracing AND metrics
// enabled — recording is ring-buffer writes and atomic adds only.
func TestStepSteadyStateAllocsTraced(t *testing.T) {
	for _, th := range []int{1, 2} {
		w := detWorld(th)
		w.SetObs(obs.NewTracer(), obs.NewRegistry(), "alloc")
		for i := 0; i < 150; i++ {
			w.Step()
		}
		avg := testing.AllocsPerRun(50, func() { w.Step() })
		if avg != 0 {
			t.Errorf("threads=%d traced: steady-state Step allocates %.1f objects/op, want 0", th, avg)
		}
	}
}
