package world

import (
	"sync"
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/cloth"
	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// TestConcurrentQueriesNoRace: RayCast and BodiesIn are read-only and
// must be safe to run concurrently (CI runs this under -race; before
// the fix both refreshed the shared geom AABB cache and raced).
func TestConcurrentQueriesNoRace(t *testing.T) {
	w := detWorld(2)
	for i := 0; i < 30; i++ {
		w.Step()
	}
	var wg sync.WaitGroup
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			buf := make([]int32, 0, 32)
			for i := 0; i < 200; i++ {
				o := m3.V(float64(k)-4, 5, float64(i%7)-3)
				if hit, ok := w.RayCast(o, m3.V(0, -1, 0), 10); ok && hit.T < 0 {
					t.Errorf("negative ray parameter %v", hit.T)
				}
				buf = w.BodiesIn(m3.AABB{Min: m3.V(-5, 0, -5), Max: m3.V(5, 3, 5)}, buf[:0])
			}
		}(k)
	}
	wg.Wait()
}

// TestQueriesDoNotMutateState: a query between steps must not change
// the simulation — byte-compare snapshots around a volley of queries.
func TestQueriesDoNotMutateState(t *testing.T) {
	w := detWorld(1)
	for i := 0; i < 10; i++ {
		w.Step()
	}
	before := w.Snapshot()
	w.RayCast(m3.V(0, 5, 0), m3.V(0, -1, 0), 20)
	w.BodiesIn(m3.AABB{Min: m3.V(-5, -1, -5), Max: m3.V(5, 5, 5)}, nil)
	after := w.Snapshot()
	if string(before) != string(after) {
		t.Fatal("read-only queries mutated world state")
	}
}

// addBomb drops an explosive sphere that detonates on ground contact.
func addBomb(w *World, x float64, spec ExplosiveSpec) int32 {
	_, gi := w.AddBody(geom.Sphere{R: 0.3}, 1, m3.V(x, 0.29, 0), m3.QIdent, 0, 0)
	w.MarkExplosive(gi, spec)
	return gi
}

// TestExplosiveSpecConsumed: detonation must delete the consumed spec
// from w.Explosives (it leaked forever before the fix).
func TestExplosiveSpecConsumed(t *testing.T) {
	w := groundWorld()
	addBomb(w, 0, ExplosiveSpec{Radius: 1, Duration: 0.05, Impulse: 5})
	if len(w.Explosives) != 1 {
		t.Fatalf("setup: %d specs", len(w.Explosives))
	}
	for i := 0; i < 20 && len(w.Explosives) > 0; i++ {
		w.Step()
	}
	if len(w.Explosives) != 0 {
		t.Fatal("explosive spec not deleted after detonation")
	}
}

// TestGeomSlotsRecycled: detonated explosive geoms and expired blast
// volumes must return their w.Geoms slots to the free list, and new
// blasts must reuse them — a long-running explosion scene's geom count
// stays bounded instead of growing per detonation.
func TestGeomSlotsRecycled(t *testing.T) {
	w := groundWorld()
	spec := ExplosiveSpec{Radius: 1, Duration: 0.03, Impulse: 5}
	addBomb(w, 0, spec)
	// Detonate and let the blast expire.
	for i := 0; i < 30; i++ {
		w.Step()
	}
	if len(w.Blasts) != 0 {
		t.Fatal("blast did not expire")
	}
	if len(w.geomFree) == 0 {
		t.Fatal("no geom slots freed after detonation + blast expiry")
	}
	baseline := len(w.Geoms)

	// A second bomb adds exactly one geom; its blast must reuse a freed
	// slot instead of appending.
	addBomb(w, 0.1, spec)
	if len(w.Geoms) != baseline+1 {
		t.Fatalf("adding a bomb grew geoms by %d, want 1", len(w.Geoms)-baseline)
	}
	for i := 0; i < 30; i++ {
		w.Step()
	}
	if len(w.Blasts) != 0 {
		t.Fatal("second blast did not expire")
	}
	if len(w.Geoms) != baseline+1 {
		t.Fatalf("second detonation grew geoms to %d, want %d (blast should reuse a freed slot)",
			len(w.Geoms), baseline+1)
	}
	// Steady state: every consumed slot is back on the free list.
	if len(w.geomFree) < 2 {
		t.Fatalf("free list has %d slots, want >= 2", len(w.geomFree))
	}
}

// TestBlastMovesCloth: an explosion under a cloth must kick its
// vertices (before the fix the cloth case shadowed the blast case in
// narrowChunk and explosions could never move cloth).
func TestBlastMovesCloth(t *testing.T) {
	w := groundWorld()
	c := cloth.NewGrid(6, 6, 0.2, m3.V(-0.5, 1, -0.5), 0.5)
	c.PinParticle(0)
	c.PinParticle(5)
	ci := w.AddCloth(c)
	addBomb(w, 0, ExplosiveSpec{Radius: 3, Duration: 0.1, Impulse: 20})

	maxY := func() float64 {
		m := -1e300
		for i := range c.Particles {
			if c.Particles[i].Pos.Y > m {
				m = c.Particles[i].Pos.Y
			}
		}
		return m
	}
	before := maxY()
	exploded := false
	peak := before
	for i := 0; i < 40; i++ {
		w.Step()
		exploded = exploded || w.Profile.Explosions > 0
		if y := maxY(); y > peak {
			peak = y
		}
	}
	if !exploded {
		t.Fatal("bomb never detonated")
	}
	if w.Cloths[ci].MaxStretch() > 10 {
		t.Errorf("blast destroyed the cloth: max stretch %v", w.Cloths[ci].MaxStretch())
	}
	// The cloth hangs from its pins, so the shockwave shows up as a
	// transient: some particle must have been thrown above its start.
	if peak < before+0.3 {
		t.Fatalf("blast did not move the cloth: peak particle height %v (started at %v)", peak, before)
	}
}

// TestBlastHitsClothOnce: the shockwave reaches each cloth at most once
// per blast — the kick must not repeat every step of the blast's
// lifetime.
func TestBlastHitsClothOnce(t *testing.T) {
	w := groundWorld()
	c := cloth.NewGrid(4, 4, 0.2, m3.V(-0.3, 1.2, -0.3), 0.5)
	w.AddCloth(c)
	addBomb(w, 0, ExplosiveSpec{Radius: 3, Duration: 1.0, Impulse: 10})
	for i := 0; i < 3; i++ {
		w.Step()
	}
	if len(w.Blasts) != 1 {
		t.Fatal("expected a live blast")
	}
	if !w.Blasts[0].hitCloth[0] {
		t.Fatal("blast did not register the cloth hit")
	}
	// Velocity right after the hit; with the long-lived blast still
	// overlapping, further steps must only see gravity-scale changes,
	// not repeated shockwave kicks.
	speed := func() float64 {
		m := 0.0
		for i := range c.Particles {
			v := c.Particles[i].Pos.Sub(c.Particles[i].Prev).Len() / w.Dt
			if v > m {
				m = v
			}
		}
		return m
	}
	s0 := speed()
	w.Step()
	s1 := speed()
	if s1 > s0+1 {
		t.Fatalf("cloth re-kicked by a blast that already hit it: %v -> %v m/s", s0, s1)
	}
}
