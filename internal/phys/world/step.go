package world

import (
	"github.com/parallax-arch/parallax/internal/phys/body"
	"github.com/parallax-arch/parallax/internal/phys/broadphase"
	"github.com/parallax-arch/parallax/internal/phys/cloth"
	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/island"
	"github.com/parallax-arch/parallax/internal/phys/joint"
	"github.com/parallax-arch/parallax/internal/phys/m3"
	"github.com/parallax-arch/parallax/internal/phys/narrowphase"
	"github.com/parallax-arch/parallax/internal/phys/solver"
)

// StepsPerFrame is how many simulation steps make one rendered frame:
// the paper executes 3 steps of 0.01 s per 30 FPS frame to keep fast
// objects from tunneling.
const StepsPerFrame = 3

// Step advances the simulation by one Dt, running the five phases and
// recording the step profile.
func (w *World) Step() {
	prof := StepProfile{}
	p := w.params()

	// (a) Apply external forces (gravity).
	for _, b := range w.Bodies {
		if b.Enabled && b.InvMass > 0 && !b.Asleep {
			b.AddForce(w.Gravity.Scale(b.Mass))
		}
	}

	// Refresh cloth bounding-volume proxies and reset contact lists.
	for ci, gi := range w.clothProxy {
		c := w.Cloths[ci]
		g := w.Geoms[gi]
		g.Shape = geom.Box{Half: c.Box.Extent().Scale(0.5)}
		g.Pos = c.Box.Center()
		w.clothContacts[ci] = w.clothContacts[ci][:0]
	}

	// (b) Broad-phase: candidate pairs. Serial phase.
	w.pairBuf = w.Broad.Pairs(w.Geoms, w.pairBuf[:0])
	prof.Broad = w.Broad.Stats()
	prof.Pairs = len(w.pairBuf)

	// (c) Narrow-phase: contacts plus the special-contact events
	// (explosions, blast hits, cloth contact lists). Massively parallel:
	// pairs are partitioned into equal sets per worker thread, each with
	// its own contact buffer (the engine modification described in the
	// paper that removes ODE's single-joint-group serialization).
	type narrowEvents struct {
		contacts   []narrowphase.Contact
		stats      narrowphase.Stats
		explosions []int32
		blastHits  [][2]int32 // blast geom, other geom
		clothHits  [][2]int32 // cloth index, other geom
	}
	threads := w.Threads
	if threads < 1 {
		threads = 1
	}
	evs := make([]narrowEvents, threads)
	w.parallelChunks(len(w.pairBuf), func(th, lo, hi int) {
		e := &evs[th]
		for _, pr := range w.pairBuf[lo:hi] {
			a, b := w.Geoms[pr.A], w.Geoms[pr.B]
			aC, bC := a.Flags.Has(geom.FlagCloth), b.Flags.Has(geom.FlagCloth)
			aB, bB := a.Flags.Has(geom.FlagBlast), b.Flags.Has(geom.FlagBlast)
			switch {
			case aC || bC:
				// (c.iii) body touching a cloth's bounding volume goes on
				// the cloth's contact list.
				if aC && !bB && !bC {
					e.clothHits = append(e.clothHits, [2]int32{a.Aux, int32(b.ID)})
				}
				if bC && !aB && !aC {
					e.clothHits = append(e.clothHits, [2]int32{b.Aux, int32(a.ID)})
				}
			case aB || bB:
				// (c.iv) blast volume interactions.
				if aB && !bB {
					e.blastHits = append(e.blastHits, [2]int32{int32(a.ID), int32(b.ID)})
				} else if bB && !aB {
					e.blastHits = append(e.blastHits, [2]int32{int32(b.ID), int32(a.ID)})
				}
			default:
				start := len(e.contacts)
				e.contacts = narrowphase.Collide(a, b, e.contacts, &e.stats)
				if len(e.contacts) > start {
					// (c.ii) explosive objects detonate on contact instead
					// of generating constraints.
					exploded := false
					if a.Flags.Has(geom.FlagExplosive) {
						e.explosions = append(e.explosions, int32(a.ID))
						exploded = true
					}
					if b.Flags.Has(geom.FlagExplosive) {
						e.explosions = append(e.explosions, int32(b.ID))
						exploded = true
					}
					if exploded {
						e.contacts = e.contacts[:start]
					}
				}
			}
		}
	})
	// Merge per-thread results in thread order (deterministic).
	var contacts []narrowphase.Contact
	for i := range evs {
		contacts = append(contacts, evs[i].contacts...)
		prof.Narrow.PairsTested += evs[i].stats.PairsTested
		prof.Narrow.ContactsOut += evs[i].stats.ContactsOut
		prof.Narrow.TriTests += evs[i].stats.TriTests
		prof.Narrow.PrimTests += evs[i].stats.PrimTests
		if evs[i].stats.DeepestDepth > prof.Narrow.DeepestDepth {
			prof.Narrow.DeepestDepth = evs[i].stats.DeepestDepth
		}
	}
	prof.Contacts = len(contacts)

	// Serial event processing: explosions, blasts, fracture, cloth lists.
	seenExpl := map[int32]bool{}
	for i := range evs {
		for _, gidx := range evs[i].explosions {
			if seenExpl[gidx] {
				continue
			}
			seenExpl[gidx] = true
			w.detonate(gidx, &prof)
		}
	}
	for i := range evs {
		for _, hit := range evs[i].blastHits {
			w.blastHit(hit[0], hit[1], &prof)
		}
		for _, hit := range evs[i].clothHits {
			w.clothContacts[hit[0]] = append(w.clothContacts[hit[0]], hit[1])
		}
	}

	// Wake sleeping bodies hit by something that is actually moving;
	// resting contacts must not keep bodies awake forever.
	if w.EnableSleep {
		moving := func(bi int) bool {
			b := w.Bodies[bi]
			return !b.Asleep &&
				(b.LinVel.Len2() > body.SleepLinVel*body.SleepLinVel ||
					b.AngVel.Len2() > body.SleepAngVel*body.SleepAngVel)
		}
		for _, c := range contacts {
			ba, bb := w.Geoms[c.A].Body, w.Geoms[c.B].Body
			if ba >= 0 && w.Bodies[ba].Asleep && bb >= 0 && moving(bb) {
				w.Bodies[ba].Wake()
			}
			if bb >= 0 && w.Bodies[bb].Asleep && ba >= 0 && moving(ba) {
				w.Bodies[bb].Wake()
			}
		}
	}

	// (d) Island creation: group interacting objects. Serial phase.
	edges := make([]island.Edge, 0, len(contacts)+len(w.Joints))
	for ji, j := range w.Joints {
		nr := j.NumRows()
		if nr == 0 {
			continue
		}
		a, b := j.Bodies()
		edges = append(edges, island.Edge{A: a, B: b, Ref: int32(ji), DOF: nr})
	}
	for ci, c := range contacts {
		a := int32(w.Geoms[c.A].Body)
		b := int32(w.Geoms[c.B].Body)
		edges = append(edges, island.Edge{
			A: a, B: b, Ref: int32(ci), IsContact: true,
			DOF: joint.RowsPerContact,
		})
	}
	active := func(i int32) bool {
		b := w.Bodies[i]
		return b.Enabled && b.InvMass > 0 && !b.Asleep
	}
	islands, findSteps := island.BuildCounted(len(w.Bodies), edges, active)
	prof.FindSteps = findSteps
	prof.Islands = make([]IslandStat, len(islands))
	for i, is := range islands {
		prof.Islands[i] = IslandStat{
			Bodies: len(is.Bodies), Joints: len(is.Joints),
			Contacts: len(is.Contacts), DOF: is.DOF,
		}
	}
	if w.RecordDetail {
		prof.PairList = append([]broadphase.Pair(nil), w.pairBuf...)
		prof.ContactGeoms = make([][2]int32, len(contacts))
		for i, c := range contacts {
			prof.ContactGeoms[i] = [2]int32{c.A, c.B}
		}
		prof.IslandBodies = make([][]int32, len(islands))
		prof.IslandRowsOf = make([][]int32, len(islands))
		for i, is := range islands {
			prof.IslandBodies[i] = append([]int32(nil), is.Bodies...)
			prof.IslandRowsOf[i] = append([]int32(nil), is.Joints...)
		}
	}

	// (e) Island processing: forward-simulate each island. Islands are
	// independent; big ones go on the work queue, small ones run on the
	// main thread.
	solverStats := make([]solver.Stats, len(islands))
	jointLoads := make([]map[int32]float64, len(islands))

	// Warm starting: match this step's contacts to last step's impulses
	// by (geom pair, ordinal within the pair).
	var contactKey []uint64
	var contactOrd []int32
	var warmOut []map[uint64][]float64
	if w.WarmStart {
		contactKey = make([]uint64, len(contacts))
		contactOrd = make([]int32, len(contacts))
		counts := map[uint64]int32{}
		for ci, c := range contacts {
			k := uint64(uint32(c.A))<<32 | uint64(uint32(c.B))
			contactKey[ci] = k
			contactOrd[ci] = counts[k]
			counts[k]++
		}
		warmOut = make([]map[uint64][]float64, len(islands))
	}

	solveIsland := func(i int) func() {
		is := islands[i]
		return func() {
			loads := map[int32]float64{}
			jointLoads[i] = loads
			for _, bi := range is.Bodies {
				w.Bodies[bi].IntegrateVelocity(w.Dt)
			}
			var rows []joint.Row
			for _, ji := range is.Joints {
				rows = w.Joints[ji].Rows(w.Bodies, p, ji, rows)
			}
			contactBase := make([]int32, len(is.Contacts))
			for k, ci := range is.Contacts {
				c := contacts[ci]
				a := int32(w.Geoms[c.A].Body)
				b := int32(w.Geoms[c.B].Body)
				base := int32(len(rows))
				contactBase[k] = base
				rows = joint.ContactRows(w.Bodies, a, b, c.Pos, c.Normal, c.Depth,
					joint.DefaultMaterial, p, base, rows)
				if w.WarmStart {
					if cached, ok := w.warmCache[contactKey[ci]]; ok {
						off := int(contactOrd[ci]) * joint.RowsPerContact
						for j := 0; j < joint.RowsPerContact && off+j < len(cached); j++ {
							rows[int(base)+j].Warm = cached[off+j]
						}
					}
				}
			}
			lam := w.Solver.Solve(w.Bodies, rows, w.Dt, loads, &solverStats[i])
			if w.WarmStart && len(is.Contacts) > 0 {
				out := map[uint64][]float64{}
				for k, ci := range is.Contacts {
					base := contactBase[k]
					key := contactKey[ci]
					buf := out[key]
					for j := 0; j < joint.RowsPerContact; j++ {
						buf = append(buf, lam[int(base)+j])
					}
					out[key] = buf
				}
				warmOut[i] = out
			}
			for _, bi := range is.Bodies {
				w.Bodies[bi].IntegratePosition(w.Dt)
				if w.EnableSleep {
					w.Bodies[bi].UpdateSleep(w.Dt)
				}
			}
		}
	}
	var queued, mainTasks []func()
	for i, is := range islands {
		if is.DOF > SmallIslandDOF {
			queued = append(queued, solveIsland(i))
		} else {
			mainTasks = append(mainTasks, solveIsland(i))
		}
	}
	w.runQueue(queued, mainTasks)
	for i := range islands {
		prof.Solver.Rows += solverStats[i].Rows
		prof.Solver.RowUpdates += solverStats[i].RowUpdates
		prof.Solver.Iterations = w.Solver.Iterations
		prof.BodiesIntegrated += len(islands[i].Bodies)
	}
	if w.WarmStart {
		// Replace the impulse cache with this step's results (islands
		// are disjoint, so a serial merge suffices).
		w.warmCache = make(map[uint64][]float64)
		for _, out := range warmOut {
			for k, v := range out {
				w.warmCache[k] = append(w.warmCache[k], v...)
			}
		}
	}
	// Clear accumulators of bodies outside any island (asleep/disabled).
	for _, b := range w.Bodies {
		b.ClearAccumulators()
	}

	// (f) Check breakable joints: a joint whose applied load exceeded its
	// threshold breaks (serial, cheap).
	for i := range islands {
		for ji, load := range jointLoads[i] {
			if br, ok := w.Joints[ji].(*joint.Breakable); ok {
				if br.ApplyLoad(load) {
					prof.JointBreaks++
				}
			}
		}
	}

	// Sync geoms to their bodies.
	for _, g := range w.Geoms {
		if g.Body < 0 || !g.Enabled() {
			continue
		}
		b := w.Bodies[g.Body]
		g.Pos = b.Rot.Rotate(g.OffsetPos).Add(b.Pos)
		off := g.OffsetRot
		if off == (m3.Quat{}) {
			off = m3.QIdent
		}
		g.Rot = b.Rot.Mul(off).Mat()
	}

	// (g) Cloth: forward-step every cloth object. Parallel per cloth;
	// vertices are the fine-grain tasks.
	clothStats := make([]cloth.Stats, len(w.Cloths))
	prof.ClothVerts = prof.ClothVerts[:0]
	pose := func(bi int32) (m3.Vec, m3.Quat) {
		b := w.Bodies[bi]
		return b.Pos, b.Rot
	}
	var clothTasks []func()
	for ci := range w.Cloths {
		ci := ci
		c := w.Cloths[ci]
		prof.ClothVerts = append(prof.ClothVerts, c.NumVertices())
		clothTasks = append(clothTasks, func() {
			c.SatisfyPins(pose)
			c.Integrate(w.Dt, w.Gravity)
			c.Relax()
			for _, gi := range w.clothContacts[ci] {
				g := w.Geoms[gi]
				if g.Enabled() {
					c.CollideGeom(g)
				}
			}
			c.UpdateBox()
			clothStats[ci] = c.LastStats
		})
	}
	w.runQueue(clothTasks, nil)
	for _, st := range clothStats {
		prof.Cloth.VertexUpdates += st.VertexUpdates
		prof.Cloth.ConstraintUpdates += st.ConstraintUpdates
		prof.Cloth.CollisionTests += st.CollisionTests
		prof.Cloth.RayCasts += st.RayCasts
	}

	// Blast volume lifetimes.
	live := w.Blasts[:0]
	for _, bl := range w.Blasts {
		bl.Remaining -= w.Dt
		if bl.Remaining > 0 {
			live = append(live, bl)
		} else {
			w.Geoms[bl.Geom].Flags |= geom.FlagDisabled
		}
	}
	w.Blasts = live

	// (h) Advance time.
	w.Time += w.Dt
	w.Profile = prof
}

// StepFrame advances one rendered frame (StepsPerFrame steps) and
// returns the aggregated frame profile.
func (w *World) StepFrame() FrameProfile {
	var f FrameProfile
	for i := 0; i < StepsPerFrame; i++ {
		w.Step()
		f.Add(w.Profile)
	}
	return f
}

// detonate replaces an explosive geom with its blast volume.
func (w *World) detonate(gidx int32, prof *StepProfile) {
	g := w.Geoms[gidx]
	if !g.Enabled() {
		return
	}
	spec, ok := w.Explosives[gidx]
	if !ok {
		return
	}
	pos := g.Pos
	w.DisableBodyGeom(gidx)
	bg := &geom.Geom{
		ID:    len(w.Geoms),
		Shape: geom.Sphere{R: spec.Radius},
		Pos:   pos,
		Rot:   m3.Ident,
		Body:  -1,
		Flags: geom.FlagBlast,
	}
	bg.UpdateAABB()
	w.Geoms = append(w.Geoms, bg)
	w.Blasts = append(w.Blasts, Blast{
		Geom: int32(bg.ID), Remaining: spec.Duration, Impulse: spec.Impulse,
		hit: make(map[int32]bool),
	})
	prof.Explosions++
}

// blastHit applies a blast volume's effect to a geom it overlaps:
// prefractured objects shatter; dynamic bodies receive a radial impulse.
func (w *World) blastHit(blastGeom, other int32, prof *StepProfile) {
	bg := w.Geoms[blastGeom]
	og := w.Geoms[other]
	if !bg.Enabled() || !og.Enabled() {
		return
	}
	if og.Flags.Has(geom.FlagPrefractured) {
		if fi, ok := w.fractureOfGeom[other]; ok && !w.Fractures[fi].Broken {
			w.shatter(fi, bg.Pos, prof)
		}
		return
	}
	if og.Body < 0 {
		return
	}
	var blast *Blast
	for i := range w.Blasts {
		if w.Blasts[i].Geom == blastGeom {
			blast = &w.Blasts[i]
			break
		}
	}
	if blast == nil || blast.Impulse == 0 {
		return
	}
	if blast.hit[int32(og.Body)] {
		return // the shockwave already reached this body
	}
	blast.hit[int32(og.Body)] = true
	impulse := blast.Impulse
	b := w.Bodies[og.Body]
	r := bg.Shape.(geom.Sphere).R
	d := b.Pos.Sub(bg.Pos)
	dist := d.Len()
	if dist >= r {
		return
	}
	dir := d.Norm()
	if dir == m3.Zero {
		dir = m3.V(0, 1, 0)
	}
	scale := 1 - dist/r
	b.Wake()
	b.ApplyImpulse(dir.Scale(impulse*scale), b.Pos)
}

// shatter breaks a prefractured object: the parent is disabled and its
// debris pieces are enabled at their positions relative to the parent's
// current pose, inheriting its velocity plus a radial kick away from the
// blast center.
func (w *World) shatter(fi int32, blastPos m3.Vec, prof *StepProfile) {
	fr := &w.Fractures[fi]
	fr.Broken = true
	pg := w.Geoms[fr.Parent]
	var vel m3.Vec
	parentPos := pg.Pos
	var parentRot m3.Quat = m3.QIdent
	if pg.Body >= 0 {
		pb := w.Bodies[pg.Body]
		vel = pb.LinVel
		parentPos = pb.Pos
		parentRot = pb.Rot
	}
	w.DisableBodyGeom(fr.Parent)
	for i, di := range fr.Debris {
		dg := w.Geoms[di]
		w.EnableBodyGeom(di)
		if dg.Body >= 0 {
			db := w.Bodies[dg.Body]
			db.Pos = parentRot.Rotate(fr.LocalPos[i]).Add(parentPos)
			db.Rot = parentRot.Mul(fr.LocalRot[i])
			kick := db.Pos.Sub(blastPos).Norm().Scale(2.0)
			db.LinVel = vel.Add(kick)
			dg.Pos = db.Pos
			dg.Rot = db.Rot.Mat()
			dg.UpdateAABB()
		}
	}
	prof.FractureHit++
}
