package world

import (
	"github.com/parallax-arch/parallax/internal/phys/body"
	"github.com/parallax-arch/parallax/internal/phys/broadphase"
	"github.com/parallax-arch/parallax/internal/phys/cloth"
	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/island"
	"github.com/parallax-arch/parallax/internal/phys/joint"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// StepsPerFrame is how many simulation steps make one rendered frame:
// the paper executes 3 steps of 0.01 s per 30 FPS frame to keep fast
// objects from tunneling.
const StepsPerFrame = 3

// Step advances the simulation by one Dt, running the five phases and
// recording the step profile. The steady-state hot path is
// allocation-free: all per-step working storage lives in the World's
// scratch arena and is reused across steps (see DESIGN.md
// "Scratch-arena memory model").
//
//paraxlint:noalloc
func (w *World) Step() {
	w.Profile.reset()
	prof := &w.Profile
	sc := &w.scratch
	sc.beginStep(w.Threads, len(w.Joints), w.prevEdges)
	if w.trace != nil && len(w.obsLanes) < w.Threads {
		w.growObsLanes() // cold path: Threads was raised after SetObs
	}
	l0 := w.laneFor(0)
	l0.Begin(w.spans.step)

	// (a) Apply external forces (gravity).
	for _, b := range w.Bodies {
		if b.Enabled && b.InvMass > 0 && !b.Asleep {
			b.AddForce(w.Gravity.Scale(b.Mass))
		}
	}

	// Refresh cloth bounding-volume proxies and reset contact lists.
	for ci, gi := range w.clothProxy {
		c := w.Cloths[ci]
		g := w.Geoms[gi]
		w.clothProxyShape[ci].Half = c.Box.Extent().Scale(0.5)
		g.Pos = c.Box.Center()
		w.clothContacts[ci] = w.clothContacts[ci][:0]
	}

	// (b) Broad-phase: candidate pairs. The AABB refresh runs
	// chunk-parallel when the implementation supports an external
	// refresh (all built-ins do); the pair pass itself stays serial —
	// with the incremental sweep it is O(swaps), no longer the
	// re-sweep that made this phase the Amdahl bottleneck. Per-chunk
	// refresh counters merge in chunk order, so the profile (and its
	// replay digest) is byte-identical to the serial pass.
	l0.Begin(w.spans.broad)
	if cap(w.pairBuf) < w.prevPairs {
		w.pairBuf = make([]broadphase.Pair, 0, w.prevPairs) //paraxlint:allow(alloc) pre-sized from the previous step's count
	}
	if pre, ok := w.Broad.(broadphase.Prerefreshed); ok {
		w.parallelChunks(len(w.Geoms), w.refreshFn, w.spans.refreshChunk)
		w.pairBuf = pre.PairsPrerefreshed(w.Geoms, w.pairBuf[:0])
		prof.Broad = w.Broad.Stats()
		for _, r := range sc.refresh {
			prof.Broad.Geoms += r[0]
			prof.Broad.AABBUpdates += r[1]
		}
	} else {
		w.pairBuf = w.Broad.Pairs(w.Geoms, w.pairBuf[:0])
		prof.Broad = w.Broad.Stats()
	}
	prof.Pairs = len(w.pairBuf)
	l0.End(w.spans.broad)

	// (c) Narrow-phase: contacts plus the special-contact events
	// (explosions, blast hits, cloth contact lists). Massively parallel:
	// pairs are partitioned into equal sets per worker thread, each with
	// its own contact buffer (the engine modification described in the
	// paper that removes ODE's single-joint-group serialization).
	l0.Begin(w.spans.narrow)
	w.parallelChunks(len(w.pairBuf), w.narrowFn, w.spans.narrowChunk)

	// Merge per-chunk results in chunk order (deterministic).
	contacts := sc.contacts
	for i := range sc.narrow {
		e := &sc.narrow[i]
		contacts = append(contacts, e.contacts...)
		prof.Narrow.PairsTested += e.stats.PairsTested
		prof.Narrow.ContactsOut += e.stats.ContactsOut
		prof.Narrow.TriTests += e.stats.TriTests
		prof.Narrow.PrimTests += e.stats.PrimTests
		if e.stats.DeepestDepth > prof.Narrow.DeepestDepth {
			prof.Narrow.DeepestDepth = e.stats.DeepestDepth
		}
	}
	sc.contacts = contacts
	prof.Contacts = len(contacts)

	// Serial event processing: explosions, blasts, fracture, cloth lists.
	for i := range sc.narrow {
		for _, gidx := range sc.narrow[i].explosions {
			if sc.seenExpl[gidx] {
				continue
			}
			sc.seenExpl[gidx] = true
			w.detonate(gidx, prof)
		}
	}
	for i := range sc.narrow {
		for _, hit := range sc.narrow[i].blastHits {
			w.blastHit(hit[0], hit[1], prof)
		}
		for _, hit := range sc.narrow[i].blastCloth {
			w.blastHitCloth(hit[0], hit[1])
		}
		for _, hit := range sc.narrow[i].clothHits {
			w.clothContacts[hit[0]] = append(w.clothContacts[hit[0]], hit[1])
		}
	}

	// Wake sleeping bodies hit by something that is actually moving;
	// resting contacts must not keep bodies awake forever. Joints
	// propagate wake the same way: a moving body drags its jointed
	// partner awake before islands are built, so the partner joins the
	// island instead of being silently anchored.
	if w.EnableSleep {
		for _, j := range w.Joints {
			if j.NumRows() == 0 {
				continue
			}
			ja, jb := j.Bodies()
			if ja >= 0 && w.Bodies[ja].Asleep && jb >= 0 && w.bodyMoving(int(jb)) {
				w.Bodies[ja].Wake()
			}
			if jb >= 0 && w.Bodies[jb].Asleep && ja >= 0 && w.bodyMoving(int(ja)) {
				w.Bodies[jb].Wake()
			}
		}
		for i := range contacts {
			c := &contacts[i]
			ba, bb := w.Geoms[c.A].Body, w.Geoms[c.B].Body
			if ba >= 0 && w.Bodies[ba].Asleep && bb >= 0 && w.bodyMoving(bb) {
				w.Bodies[ba].Wake()
			}
			if bb >= 0 && w.Bodies[bb].Asleep && ba >= 0 && w.bodyMoving(ba) {
				w.Bodies[bb].Wake()
			}
		}
	}
	l0.End(w.spans.narrow)

	// (d) Island creation. Edge collection runs chunk-parallel over the
	// combined joint+contact domain into per-chunk buffers; chunks are
	// contiguous ranges of the serial iteration order, so concatenating
	// them in chunk order reproduces the serial edge list exactly. The
	// union-find merge itself stays serial (the paper's irreducible
	// serial core), but it is now the only serial part of the phase.
	l0.Begin(w.spans.islandGen)
	w.parallelChunks(len(w.Joints)+len(contacts), w.edgeFn, w.spans.edgeChunk)
	edges := sc.edges
	for i := range sc.edgeChunks {
		edges = append(edges, sc.edgeChunks[i]...)
	}
	sc.edges = edges
	islands, findSteps := sc.builder.Build(len(w.Bodies), edges, w.activeFn)
	sc.islands = islands
	prof.FindSteps = findSteps
	for _, is := range islands {
		prof.Islands = append(prof.Islands, IslandStat{
			Bodies: len(is.Bodies), Joints: len(is.Joints),
			Contacts: len(is.Contacts), DOF: is.DOF,
		})
	}
	if w.RecordDetail {
		// Detail copies are freshly allocated: they are retained by the
		// architecture model far beyond this step, so they must not alias
		// the scratch arena. RecordDetail is a capture-mode flag, never
		// set on the real-time path, hence the allocation waivers.
		prof.PairList = append([]broadphase.Pair(nil), w.pairBuf...) //paraxlint:allow(alloc)
		prof.ContactGeoms = make([][2]int32, len(contacts))          //paraxlint:allow(alloc)
		for i := range contacts {
			prof.ContactGeoms[i] = [2]int32{contacts[i].A, contacts[i].B}
		}
		prof.IslandBodies = make([][]int32, len(islands)) //paraxlint:allow(alloc)
		prof.IslandRowsOf = make([][]int32, len(islands)) //paraxlint:allow(alloc)
		for i, is := range islands {
			prof.IslandBodies[i] = append([]int32(nil), is.Bodies...) //paraxlint:allow(alloc)
			prof.IslandRowsOf[i] = append([]int32(nil), is.Joints...) //paraxlint:allow(alloc)
		}
	}
	l0.End(w.spans.islandGen)

	// (e) Island processing: forward-simulate each island. Islands are
	// independent; big ones go on the work queue, small ones run on the
	// main thread.
	l0.Begin(w.spans.islandProc)
	sc.beginIslands(len(islands), len(contacts), w.WarmStart)

	// Warm starting: match this step's contacts to last step's impulses
	// by (geom pair, ordinal within the pair's manifold).
	if w.WarmStart {
		for ci := range contacts {
			k := uint64(uint32(contacts[ci].A))<<32 | uint64(uint32(contacts[ci].B))
			sc.contactKey[ci] = k
			sc.contactOrd[ci] = sc.ordCount[k]
			sc.ordCount[k]++
		}
		if w.warmCache == nil {
			w.warmCache = make(map[warmKey][joint.RowsPerContact]float64) //paraxlint:allow(alloc) lazy one-time cache
		}
	}

	// Velocity integration, hoisted out of the per-island solves into
	// one chunk-parallel pass: every active body is in exactly one
	// island, so the same integrations happen exactly once, and
	// inactive bodies get their accumulator clear here instead of in a
	// separate end-of-step loop. Row assembly below reads only the
	// solving island's own (already integrated) bodies, so results are
	// bit-identical to the per-island ordering.
	w.parallelChunks(len(w.Bodies), w.velFn, w.spans.integChunk)

	for i, is := range islands {
		if is.DOF > SmallIslandDOF {
			sc.queued = append(sc.queued, int32(i))
		} else {
			sc.main = append(sc.main, int32(i))
		}
	}
	w.dispatch(w.islandFn, sc.queued, sc.main)

	prof.Solver.Iterations = w.Solver.Iterations
	for i := range islands {
		prof.Solver.Rows += sc.solverStats[i].Rows
		prof.Solver.RowUpdates += sc.solverStats[i].RowUpdates
		// Float sums merge in island index order — not worker completion
		// order — so the totals are thread-count deterministic.
		prof.Solver.Residual += sc.solverStats[i].Residual
		prof.Solver.ImpulseNorm += sc.solverStats[i].ImpulseNorm
	}
	if w.WarmStart {
		// Rebuild the impulse cache from this step's results. Contacts
		// are visited in merge order, so the cache contents are
		// deterministic whatever worker solved each island.
		clear(w.warmCache)
		for ci := range contacts {
			if sc.rowBase[ci] < 0 {
				continue // contact was not part of any solved island
			}
			var v [joint.RowsPerContact]float64
			copy(v[:], sc.warmLambda[ci*joint.RowsPerContact:])
			w.warmCache[warmKey{sc.contactKey[ci], sc.contactOrd[ci]}] = v
		}
	}
	l0.End(w.spans.islandProc)

	// (f) Check breakable joints: a joint whose applied load exceeded its
	// threshold breaks (serial, cheap).
	for ji, load := range sc.jointLoad {
		if load == 0 {
			continue
		}
		if br, ok := w.Joints[ji].(*joint.Breakable); ok {
			if br.ApplyLoad(load) {
				prof.JointBreaks++
			}
		}
	}

	// Integration: position integration + sleep-clock update over the
	// bodies, then geom-pose sync over the geoms, both chunk-parallel.
	// Hoisted out of the per-island solves; islands touch disjoint
	// bodies, so integrating after all solves complete is bit-identical,
	// and the per-chunk integration counts merged in chunk order equal
	// the per-island body sum the serial version recorded.
	l0.Begin(w.spans.integrate)
	w.parallelChunks(len(w.Bodies), w.posFn, w.spans.integChunk)
	for _, n := range sc.integ {
		prof.BodiesIntegrated += n
	}
	w.parallelChunks(len(w.Geoms), w.syncFn, w.spans.syncChunk)
	l0.End(w.spans.integrate)

	// (g) Cloth: forward-step every cloth object. Parallel per cloth;
	// vertices are the fine-grain tasks. The span is recorded even with
	// no cloth in the scene so every trace carries all five phases.
	l0.Begin(w.spans.cloth)
	if len(w.Cloths) > 0 {
		sc.clothStats = sc.clothStats[:0]
		sc.clothIdx = sc.clothIdx[:0]
		for ci := range w.Cloths {
			sc.clothStats = append(sc.clothStats, cloth.Stats{})
			sc.clothIdx = append(sc.clothIdx, int32(ci))
			prof.ClothVerts = append(prof.ClothVerts, w.Cloths[ci].NumVertices())
		}
		w.dispatch(w.clothFn, sc.clothIdx, nil)
		for i := range sc.clothStats {
			st := &sc.clothStats[i]
			prof.Cloth.VertexUpdates += st.VertexUpdates
			prof.Cloth.ConstraintUpdates += st.ConstraintUpdates
			prof.Cloth.CollisionTests += st.CollisionTests
			prof.Cloth.RayCasts += st.RayCasts
		}
	}
	l0.End(w.spans.cloth)

	// Blast volume lifetimes. Expired volumes are disabled and their
	// geom slots staged for reuse by future detonations.
	live := w.Blasts[:0]
	for _, bl := range w.Blasts {
		bl.Remaining -= w.Dt
		if bl.Remaining > 0 {
			if w.blastOfGeom != nil {
				w.blastOfGeom[bl.Geom] = int32(len(live))
			}
			live = append(live, bl)
		} else {
			delete(w.blastOfGeom, bl.Geom)
			w.Geoms[bl.Geom].Flags |= geom.FlagDisabled
			w.geomFreeStaged = append(w.geomFreeStaged, bl.Geom)
		}
	}
	w.Blasts = live

	// Slots freed this step (consumed explosives, expired blasts) become
	// reusable now that no in-step reference to them remains.
	if len(w.geomFreeStaged) > 0 {
		w.geomFree = append(w.geomFree, w.geomFreeStaged...)
		w.geomFreeStaged = w.geomFreeStaged[:0]
	}

	// (h) Advance time. The pair and edge counts seed next step's
	// buffer pre-sizing.
	w.Time += w.Dt
	w.prevPairs = len(w.pairBuf)
	w.prevEdges = len(sc.edges)
	w.recordStepMetrics(prof)
	w.recordTelemetry(prof)
	l0.End(w.spans.step)
}

// narrowChunk is the narrow-phase worker: it tests one chunk of the
// candidate pair list, writing into that chunk's event buffers.
//
//paraxlint:parroot narrow-phase worker, dispatched by parallelChunks
func (w *World) narrowChunk(chunk, lo, hi int) {
	e := &w.scratch.narrow[chunk]
	for _, pr := range w.pairBuf[lo:hi] {
		a, b := w.Geoms[pr.A], w.Geoms[pr.B]
		aC, bC := a.Flags.Has(geom.FlagCloth), b.Flags.Has(geom.FlagCloth)
		aB, bB := a.Flags.Has(geom.FlagBlast), b.Flags.Has(geom.FlagBlast)
		switch {
		case aC || bC:
			// (c.iii) body touching a cloth's bounding volume goes on
			// the cloth's contact list; a blast volume overlapping it
			// instead applies the shockwave to the cloth's vertices.
			if aC && bB {
				e.blastCloth = append(e.blastCloth, [2]int32{int32(b.ID), a.Aux})
			}
			if bC && aB {
				e.blastCloth = append(e.blastCloth, [2]int32{int32(a.ID), b.Aux})
			}
			if aC && !bB && !bC {
				e.clothHits = append(e.clothHits, [2]int32{a.Aux, int32(b.ID)})
			}
			if bC && !aB && !aC {
				e.clothHits = append(e.clothHits, [2]int32{b.Aux, int32(a.ID)})
			}
		case aB || bB:
			// (c.iv) blast volume interactions.
			if aB && !bB {
				e.blastHits = append(e.blastHits, [2]int32{int32(a.ID), int32(b.ID)})
			} else if bB && !aB {
				e.blastHits = append(e.blastHits, [2]int32{int32(b.ID), int32(a.ID)})
			}
		default:
			start := len(e.contacts)
			e.contacts = e.scr.Collide(a, b, e.contacts, &e.stats)
			if len(e.contacts) > start {
				// (c.ii) explosive objects detonate on contact instead
				// of generating constraints.
				exploded := false
				if a.Flags.Has(geom.FlagExplosive) {
					e.explosions = append(e.explosions, int32(a.ID))
					exploded = true
				}
				if b.Flags.Has(geom.FlagExplosive) {
					e.explosions = append(e.explosions, int32(b.ID))
					exploded = true
				}
				if exploded {
					e.contacts = e.contacts[:start]
				}
			}
		}
	}
}

// solveIsland forward-simulates one island: row assembly into the
// worker's reusable row buffer and the LCP solve with the worker's
// workspace. Velocity and position integration are chunk-parallel
// passes outside the island solves (see Step). Islands touch disjoint
// bodies, joints and contacts, so concurrent island solves never share
// mutable state.
//
//paraxlint:parroot island worker, dispatched by World.dispatch
func (w *World) solveIsland(worker, idx int) {
	lane := w.laneFor(worker)
	lane.Begin(w.spans.island)
	sc := &w.scratch
	is := &sc.islands[idx]
	p := w.params()
	rows := sc.rows[worker][:0]
	for _, ji := range is.Joints {
		base := len(rows)
		rows = w.Joints[ji].Rows(w.Bodies, p, ji, rows)
		// A joint may reference a body that belongs to no island — asleep
		// with a partner too slow to wake it, or disabled. Freeze that
		// endpoint: sleeping zeroes velocity, so treating it as static is
		// exact, and the solver must never write into a body another
		// island might also touch.
		for ri := base; ri < len(rows); ri++ {
			r := &rows[ri]
			if r.BodyA >= 0 && !w.bodySolvable(r.BodyA) {
				r.BodyA = -1
			}
			if r.BodyB >= 0 && !w.bodySolvable(r.BodyB) {
				r.BodyB = -1
			}
		}
	}
	for _, ci := range is.Contacts {
		c := &sc.contacts[ci]
		a := int32(w.Geoms[c.A].Body)
		b := int32(w.Geoms[c.B].Body)
		// Same freezing for contacts: a resting touch does not wake a
		// sleeping body, so the contact anchors against it instead.
		if a >= 0 && !w.bodySolvable(a) {
			a = -1
		}
		if b >= 0 && !w.bodySolvable(b) {
			b = -1
		}
		base := int32(len(rows))
		sc.rowBase[ci] = base
		rows = joint.ContactRows(w.Bodies, a, b, c.Pos, c.Normal, c.Depth,
			joint.DefaultMaterial, p, base, rows)
		if w.WarmStart {
			if cached, ok := w.warmCache[warmKey{sc.contactKey[ci], sc.contactOrd[ci]}]; ok {
				for j := 0; j < joint.RowsPerContact; j++ {
					rows[int(base)+j].Warm = cached[j]
				}
			}
		}
	}
	sc.rows[worker] = rows // keep the grown capacity for the next island
	lane.Begin(w.spans.solve)
	lam := w.Solver.Solve(w.Bodies, rows, w.Dt, sc.jointLoad,
		&sc.solverStats[idx], &sc.ws[worker])
	lane.End(w.spans.solve)
	if w.WarmStart {
		for _, ci := range is.Contacts {
			base := sc.rowBase[ci]
			copy(sc.warmLambda[int(ci)*joint.RowsPerContact:(int(ci)+1)*joint.RowsPerContact],
				lam[base:int(base)+joint.RowsPerContact])
		}
	}
	lane.End(w.spans.island)
}

// refreshChunk is the broad-phase AABB refresh worker: it recomputes
// the bounding boxes of one chunk of the geom list, counting into that
// chunk's merge slot so the profile totals match the serial refresh.
//
//paraxlint:parroot broad-phase AABB refresh worker, dispatched by parallelChunks
func (w *World) refreshChunk(chunk, lo, hi int) {
	n := 0
	for _, g := range w.Geoms[lo:hi] {
		if !g.Enabled() {
			continue
		}
		g.UpdateAABB()
		n++
	}
	w.scratch.refresh[chunk] = [2]int{n, n}
}

// edgeChunk collects island edges for one chunk of the combined
// joint+contact domain (joints first, then contacts, matching the
// serial order) into that chunk's buffer.
//
//paraxlint:parroot island edge-collection worker, dispatched by parallelChunks
func (w *World) edgeChunk(chunk, lo, hi int) {
	sc := &w.scratch
	buf := sc.edgeChunks[chunk][:0]
	nj := len(w.Joints)
	for i := lo; i < hi; i++ {
		if i < nj {
			j := w.Joints[i]
			nr := j.NumRows()
			if nr == 0 {
				continue
			}
			a, b := j.Bodies()
			buf = append(buf, island.Edge{A: a, B: b, Ref: int32(i), DOF: nr})
		} else {
			ci := i - nj
			c := &sc.contacts[ci]
			buf = append(buf, island.Edge{
				A: int32(w.Geoms[c.A].Body), B: int32(w.Geoms[c.B].Body),
				Ref: int32(ci), IsContact: true, DOF: joint.RowsPerContact,
			})
		}
	}
	sc.edgeChunks[chunk] = buf
}

// velChunk integrates velocities for active bodies (consuming and
// clearing their force accumulators) and clears the accumulators of
// inactive ones — the work the per-island solves and the end-of-step
// cleanup loop previously split between them. IntegrateVelocity must
// not run on asleep bodies (it does not check Asleep itself), hence
// the explicit active predicate.
//
//paraxlint:parroot velocity-integration worker, dispatched by parallelChunks
func (w *World) velChunk(chunk, lo, hi int) {
	for _, b := range w.Bodies[lo:hi] {
		if b.Enabled && b.InvMass > 0 && !b.Asleep {
			b.IntegrateVelocity(w.Dt)
		} else {
			b.ClearAccumulators()
		}
	}
}

// posChunk integrates positions and advances sleep clocks for active
// bodies, counting them into the chunk's merge slot. The active set
// cannot change between island construction and this pass, so the
// merged count equals the per-island body sum. A body is counted even
// if UpdateSleep puts it to sleep within this very call — it was
// integrated this step.
//
//paraxlint:parroot position-integration worker, dispatched by parallelChunks
func (w *World) posChunk(chunk, lo, hi int) {
	n := 0
	for _, b := range w.Bodies[lo:hi] {
		if b.Enabled && b.InvMass > 0 && !b.Asleep {
			n++
			b.IntegratePosition(w.Dt)
			if w.EnableSleep {
				b.UpdateSleep(w.Dt)
			}
		}
	}
	w.scratch.integ[chunk] = n
}

// syncChunk writes body poses through to the geoms of one chunk of the
// geom list. Geoms are written disjointly and bodies only read, so
// chunks never conflict.
//
//paraxlint:parroot geom pose-sync worker, dispatched by parallelChunks
func (w *World) syncChunk(chunk, lo, hi int) {
	for _, g := range w.Geoms[lo:hi] {
		if g.Body < 0 || !g.Enabled() {
			continue
		}
		b := w.Bodies[g.Body]
		g.Pos = b.Rot.Rotate(g.OffsetPos).Add(b.Pos)
		off := g.OffsetRot
		if off == (m3.Quat{}) {
			off = m3.QIdent
		}
		g.Rot = b.Rot.Mul(off).Mat()
	}
}

// stepCloth forward-steps one cloth object.
//
//paraxlint:parroot cloth worker, dispatched by World.dispatch
func (w *World) stepCloth(worker, ci int) {
	lane := w.laneFor(worker)
	lane.Begin(w.spans.clothObj)
	c := w.Cloths[ci]
	c.SatisfyPins(w.poseFn)
	c.Integrate(w.Dt, w.Gravity)
	c.Relax()
	for _, gi := range w.clothContacts[ci] {
		g := w.Geoms[gi]
		if g.Enabled() {
			c.CollideGeom(g)
		}
	}
	c.UpdateBox()
	w.scratch.clothStats[ci] = c.LastStats
	lane.End(w.spans.clothObj)
}

// bodySolvable reports whether the solver may read and write a body's
// velocities: enabled, finite mass, awake. Inactive bodies belong to no
// island, so two islands solved on different workers could otherwise
// race on them through shared joint or contact rows.
func (w *World) bodySolvable(bi int32) bool {
	b := w.Bodies[bi]
	return b.Enabled && b.InvMass > 0 && !b.Asleep
}

// bodyMoving reports whether a body is awake and above the sleep speed
// thresholds — the "is the thing that hit me actually moving" test for
// waking sleeping bodies.
//
//paraxlint:noalloc
func (w *World) bodyMoving(bi int) bool {
	b := w.Bodies[bi]
	return !b.Asleep &&
		(b.LinVel.Len2() > body.SleepLinVel*body.SleepLinVel ||
			b.AngVel.Len2() > body.SleepAngVel*body.SleepAngVel)
}

// bodyPose reports a body's pose for cloth pinning.
//
//paraxlint:noalloc
func (w *World) bodyPose(bi int32) (m3.Vec, m3.Quat) {
	b := w.Bodies[bi]
	return b.Pos, b.Rot
}

// StepFrame advances one rendered frame (StepsPerFrame steps) and
// returns the aggregated frame profile.
func (w *World) StepFrame() FrameProfile {
	var f FrameProfile
	for i := 0; i < StepsPerFrame; i++ {
		w.Step()
		f.Add(w.Profile)
	}
	return f
}

// detonate replaces an explosive geom with its blast volume. The
// consumed spec is deleted and the explosive's geom slot staged for
// reuse — a detonated explosive never comes back, and leaving its geom
// and spec behind would grow the world without bound in long-running
// explosion scenes. The blast volume itself takes a recycled slot when
// one is free (from a previous step; slots freed this step are not yet
// reusable).
func (w *World) detonate(gidx int32, prof *StepProfile) {
	g := w.Geoms[gidx]
	if !g.Enabled() {
		return
	}
	spec, ok := w.Explosives[gidx]
	if !ok {
		return
	}
	pos := g.Pos
	w.DisableBodyGeom(gidx)
	delete(w.Explosives, gidx)
	// Prefractured explosives keep their slot: the fracture table still
	// references the parent geom.
	if !g.Flags.Has(geom.FlagPrefractured) {
		if g.Body >= 0 {
			w.bodyGeom[g.Body] = -1
		}
		w.geomFreeStaged = append(w.geomFreeStaged, gidx)
	}
	id := len(w.Geoms)
	if n := len(w.geomFree); n > 0 {
		id = int(w.geomFree[n-1])
		w.geomFree = w.geomFree[:n-1]
	}
	bg := &geom.Geom{
		ID:    id,
		Shape: geom.Sphere{R: spec.Radius},
		Pos:   pos,
		Rot:   m3.Ident,
		Body:  -1,
		Flags: geom.FlagBlast,
	}
	bg.UpdateAABB()
	if id == len(w.Geoms) {
		w.Geoms = append(w.Geoms, bg)
	} else {
		w.Geoms[id] = bg
	}
	if w.blastOfGeom == nil {
		w.blastOfGeom = make(map[int32]int32)
	}
	w.blastOfGeom[int32(bg.ID)] = int32(len(w.Blasts))
	w.Blasts = append(w.Blasts, Blast{
		Geom: int32(bg.ID), Remaining: spec.Duration, Impulse: spec.Impulse,
		hit: make(map[int32]bool), hitCloth: make(map[int32]bool),
	})
	prof.Explosions++
}

// blastHitCloth applies a blast volume's shockwave to a cloth whose
// bounding volume it overlaps: every particle inside the blast sphere
// gets a radial velocity kick scaled by proximity, with the blast's
// impulse spread over the cloth's particles. Like rigid bodies, each
// cloth is hit at most once per blast.
func (w *World) blastHitCloth(blastGeom, clothIdx int32) {
	bg := w.Geoms[blastGeom]
	if !bg.Enabled() {
		return
	}
	bi, ok := w.blastOfGeom[blastGeom]
	if !ok {
		return
	}
	blast := &w.Blasts[bi]
	if blast.Impulse == 0 {
		return
	}
	if blast.hitCloth[clothIdx] {
		return
	}
	blast.hitCloth[clothIdx] = true
	c := w.Cloths[clothIdx]
	r := bg.Shape.(geom.Sphere).R
	c.ApplyBlast(bg.Pos, r, blast.Impulse/float64(c.NumVertices()), w.Dt)
}

// blastHit applies a blast volume's effect to a geom it overlaps:
// prefractured objects shatter; dynamic bodies receive a radial impulse.
// The owning Blast is found through the geom-id index, not a scan, so
// Detonation/Mix-style scenes with many simultaneous blasts stay
// O(hits) per step.
func (w *World) blastHit(blastGeom, other int32, prof *StepProfile) {
	bg := w.Geoms[blastGeom]
	og := w.Geoms[other]
	if !bg.Enabled() || !og.Enabled() {
		return
	}
	if og.Flags.Has(geom.FlagPrefractured) {
		if fi, ok := w.fractureOfGeom[other]; ok && !w.Fractures[fi].Broken {
			w.shatter(fi, bg.Pos, prof)
		}
		return
	}
	if og.Body < 0 {
		return
	}
	bi, ok := w.blastOfGeom[blastGeom]
	if !ok {
		return
	}
	blast := &w.Blasts[bi]
	if blast.Impulse == 0 {
		return
	}
	if blast.hit[int32(og.Body)] {
		return // the shockwave already reached this body
	}
	blast.hit[int32(og.Body)] = true
	impulse := blast.Impulse
	b := w.Bodies[og.Body]
	r := bg.Shape.(geom.Sphere).R
	d := b.Pos.Sub(bg.Pos)
	dist := d.Len()
	if dist >= r {
		return
	}
	dir := d.Norm()
	if dir == m3.Zero {
		dir = m3.V(0, 1, 0)
	}
	scale := 1 - dist/r
	b.Wake()
	b.ApplyImpulse(dir.Scale(impulse*scale), b.Pos)
}

// shatter breaks a prefractured object: the parent is disabled and its
// debris pieces are enabled at their positions relative to the parent's
// current pose, inheriting its linear velocity plus a radial kick away
// from the blast center. Debris state left over from before the pieces
// were disabled (velocities, accumulated forces, sleep state) is fully
// reset, so debris never spawns spinning or asleep.
func (w *World) shatter(fi int32, blastPos m3.Vec, prof *StepProfile) {
	fr := &w.Fractures[fi]
	fr.Broken = true
	pg := w.Geoms[fr.Parent]
	var vel m3.Vec
	parentPos := pg.Pos
	var parentRot m3.Quat = m3.QIdent
	if pg.Body >= 0 {
		pb := w.Bodies[pg.Body]
		vel = pb.LinVel
		parentPos = pb.Pos
		parentRot = pb.Rot
	}
	w.DisableBodyGeom(fr.Parent)
	for i, di := range fr.Debris {
		dg := w.Geoms[di]
		w.EnableBodyGeom(di)
		if dg.Body >= 0 {
			db := w.Bodies[dg.Body]
			db.Pos = parentRot.Rotate(fr.LocalPos[i]).Add(parentPos)
			db.Rot = parentRot.Mul(fr.LocalRot[i])
			kick := db.Pos.Sub(blastPos).Norm().Scale(2.0)
			db.LinVel = vel.Add(kick)
			db.AngVel = m3.Zero
			dg.Pos = db.Pos
			dg.Rot = db.Rot.Mat()
			dg.UpdateAABB()
		}
	}
	prof.FractureHit++
}
