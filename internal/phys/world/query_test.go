package world

import (
	"math"
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

func TestWorldRayCastNearest(t *testing.T) {
	w := groundWorld()
	w.AddBody(geom.Sphere{R: 0.5}, 1, m3.V(5, 1, 0), m3.QIdent, 0, 0)
	w.AddBody(geom.Sphere{R: 0.5}, 1, m3.V(9, 1, 0), m3.QIdent, 0, 0)
	hit, ok := w.RayCast(m3.V(0, 1, 0), m3.V(1, 0, 0), 100)
	if !ok {
		t.Fatal("ray should hit the nearer sphere")
	}
	if math.Abs(hit.T-4.5) > 1e-9 {
		t.Errorf("T = %v, want 4.5 (nearer sphere)", hit.T)
	}
	// Downward ray hits the ground plane.
	hit, ok = w.RayCast(m3.V(0, 5, 0), m3.V(0, -1, 0), 100)
	if !ok || math.Abs(hit.T-5) > 1e-9 {
		t.Errorf("ground hit = %+v ok=%v", hit, ok)
	}
	// A ray into empty space misses.
	if _, ok := w.RayCast(m3.V(0, 5, 0), m3.V(0, 1, 0), 100); ok {
		t.Error("upward ray should miss everything")
	}
}

func TestWorldRayCastSkipsDisabledAndBlast(t *testing.T) {
	w := New()
	_, gi := w.AddBody(geom.Sphere{R: 1}, 1, m3.V(5, 0, 0), m3.QIdent, 0, 0)
	w.DisableBodyGeom(gi)
	if _, ok := w.RayCast(m3.Zero, m3.V(1, 0, 0), 100); ok {
		t.Error("disabled geom should be invisible to rays")
	}
}

func TestBodiesIn(t *testing.T) {
	w := groundWorld()
	a, _ := w.AddBody(geom.Sphere{R: 0.5}, 1, m3.V(0, 1, 0), m3.QIdent, 0, 0)
	_, _ = w.AddBody(geom.Sphere{R: 0.5}, 1, m3.V(20, 1, 0), m3.QIdent, 0, 0)
	got := w.BodiesIn(m3.AABB{Min: m3.V(-2, 0, -2), Max: m3.V(2, 2, 2)}, nil)
	if len(got) != 1 || got[0] != a {
		t.Errorf("BodiesIn = %v, want [%d]", got, a)
	}
	all := w.BodiesIn(m3.AABB{Min: m3.V(-100, -100, -100), Max: m3.V(100, 100, 100)}, nil)
	if len(all) != 2 {
		t.Errorf("full query = %v", all)
	}
}

func TestKineticEnergyDecaysToRest(t *testing.T) {
	w := groundWorld()
	bi, _ := w.AddBody(geom.Sphere{R: 0.5}, 1, m3.V(0, 3, 0), m3.QIdent, 0, 0)
	_ = bi
	peak := 0.0
	for i := 0; i < 400; i++ {
		w.Step()
		if e := w.KineticEnergy(); e > peak {
			peak = e
		}
	}
	final := w.KineticEnergy()
	if peak <= 0 {
		t.Fatal("no kinetic energy during fall")
	}
	if final > peak*0.05 {
		t.Errorf("ball did not come to rest: final %v vs peak %v", final, peak)
	}
}

func TestEnergyNeverExplodes(t *testing.T) {
	// A pile of mixed shapes must dissipate, not gain, energy (solver
	// stability invariant).
	w := groundWorld()
	shapes := []geom.Shape{
		geom.Sphere{R: 0.3},
		geom.Box{Half: m3.V(0.3, 0.2, 0.25)},
		geom.Capsule{R: 0.15, HalfLen: 0.3},
	}
	for i := 0; i < 12; i++ {
		w.AddBody(shapes[i%3], 1+float64(i%4),
			m3.V(float64(i%3)*0.4-0.4, 1+float64(i/3)*0.8, float64(i%2)*0.3),
			m3.QFromAxisAngle(m3.V(1, 1, 0), float64(i)), 0, 0)
	}
	// Track the peak; afterwards energy may fluctuate but must not blow
	// past the initial potential scale.
	peak := 0.0
	for i := 0; i < 600; i++ {
		w.Step()
		e := w.KineticEnergy()
		if e > peak {
			peak = e
		}
		if i > 100 && e > 500 {
			t.Fatalf("energy explosion at step %d: %v J", i, e)
		}
	}
	if w.KineticEnergy() > peak*0.2+1 {
		t.Errorf("pile still energetic after settling: %v J (peak %v)",
			w.KineticEnergy(), peak)
	}
}

func TestHullRockSettles(t *testing.T) {
	// A convex-hull rock (GJK/EPA collision) dropped onto the ground
	// settles like its box twin.
	w := groundWorld()
	rock := geom.BoxHull(m3.V(0.4, 0.3, 0.5))
	bi, _ := w.AddBody(rock, 5, m3.V(0, 2, 0),
		m3.QFromAxisAngle(m3.V(1, 0, 0), 0.3), 0, 0)
	for i := 0; i < 400; i++ {
		w.Step()
	}
	b := w.Bodies[bi]
	if !b.Valid() {
		t.Fatal("hull body invalid")
	}
	if b.Pos.Y < 0.2 || b.Pos.Y > 0.6 {
		t.Errorf("hull rock rest height = %v, want ~0.3-0.5", b.Pos.Y)
	}
	if b.LinVel.Len() > 0.2 {
		t.Errorf("hull rock still moving at %v m/s", b.LinVel.Len())
	}
}

func TestHullVsSphereInWorld(t *testing.T) {
	// A sphere rolls into a resting hull and pushes it.
	w := groundWorld()
	rock := geom.BoxHull(m3.V(0.4, 0.4, 0.4))
	hull, _ := w.AddBody(rock, 2, m3.V(0, 0.41, 0), m3.QIdent, 0, 0)
	ball, _ := w.AddBody(geom.Sphere{R: 0.4}, 6, m3.V(-4, 0.4, 0), m3.QIdent, 0, 0)
	w.Bodies[ball].LinVel = m3.V(8, 0, 0)
	for i := 0; i < 200; i++ {
		w.Step()
	}
	if w.Bodies[hull].Pos.X < 0.3 {
		t.Errorf("hull not pushed by the ball: x=%v", w.Bodies[hull].Pos.X)
	}
	if !w.Bodies[hull].Valid() || !w.Bodies[ball].Valid() {
		t.Fatal("bodies invalid after hull impact")
	}
}
