package world

import "sync"

// pool is the engine's persistent worker pool: the paper's work-queue
// model with persistent worker threads, which "eliminate thread creation
// and destruction costs". Workers live for the lifetime of the world.
type pool struct {
	n     int
	tasks chan func()
	wg    sync.WaitGroup
}

// newPool starts n persistent workers.
func newPool(n int) *pool {
	p := &pool{n: n, tasks: make(chan func(), 4*n)}
	for i := 0; i < n; i++ {
		go func() {
			for f := range p.tasks {
				f()
				p.wg.Done()
			}
		}()
	}
	return p
}

// run executes all tasks on the workers and blocks until they finish.
func (p *pool) run(tasks []func()) {
	p.wg.Add(len(tasks))
	for _, f := range tasks {
		p.tasks <- f
	}
	p.wg.Wait()
}

// close stops the workers.
func (p *pool) close() { close(p.tasks) }

// ensurePool (re)creates the world's pool to match the thread count.
func (w *World) ensurePool() *pool {
	want := w.Threads - 1 // the main thread is worker 0
	if want < 1 {
		return nil
	}
	if w.pool == nil || w.pool.n != want {
		if w.pool != nil {
			w.pool.close()
		}
		w.pool = newPool(want)
	}
	return w.pool
}

// parallelChunks partitions n items into w.Threads equal chunks and runs
// fn(thread, lo, hi) for each, chunk 0 on the calling goroutine and the
// rest on the pool (the paper partitions object-pairs into equal sets
// per worker thread).
func (w *World) parallelChunks(n int, fn func(thread, lo, hi int)) {
	t := w.Threads
	if t <= 1 || n == 0 {
		fn(0, 0, n)
		return
	}
	if t > n {
		t = n
	}
	p := w.ensurePool()
	chunk := (n + t - 1) / t
	var tasks []func()
	for i := 1; i < t; i++ {
		lo := i * chunk
		hi := lo + chunk
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		i, lo, hi := i, lo, hi
		tasks = append(tasks, func() { fn(i, lo, hi) })
	}
	p.wg.Add(len(tasks))
	for _, f := range tasks {
		p.tasks <- f
	}
	hi := chunk
	if hi > n {
		hi = n
	}
	fn(0, 0, hi)
	p.wg.Wait()
}

// runQueue executes the given closures via the work queue, mainTasks on
// the calling goroutine (small islands execute on the main thread).
func (w *World) runQueue(queued []func(), mainTasks []func()) {
	if w.Threads <= 1 {
		for _, f := range queued {
			f()
		}
		for _, f := range mainTasks {
			f()
		}
		return
	}
	p := w.ensurePool()
	p.wg.Add(len(queued))
	for _, f := range queued {
		p.tasks <- f
	}
	for _, f := range mainTasks {
		f()
	}
	p.wg.Wait()
}
