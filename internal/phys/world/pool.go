package world

import (
	"sync"

	"github.com/parallax-arch/parallax/internal/obs"
)

// task is one unit of pool work: fn(worker, arg), where worker is the
// id of the executing thread (0 = the main/calling thread, 1..n = pool
// workers) — used to select per-thread scratch — and arg names the work
// item (an island index, a cloth index, a narrow-phase chunk).
type task struct {
	fn  func(worker, arg int)
	arg int32
}

// pool is the engine's persistent worker pool: the paper's work-queue
// model with persistent worker threads, which "eliminate thread creation
// and destruction costs". Workers live for the lifetime of the world.
type pool struct {
	n     int
	tasks chan task
	wg    sync.WaitGroup
}

// newPool starts n persistent workers with ids 1..n.
func newPool(n int) *pool {
	p := &pool{n: n, tasks: make(chan task, 4*n)}
	for i := 0; i < n; i++ {
		go p.loop(i + 1)
	}
	return p
}

// loop is one persistent worker: it drains the task channel until the
// pool is closed. Everything a task function can reach from here runs
// concurrently with the other workers — loop is a parsafe root.
//
//paraxlint:parroot persistent pool worker; all task functions run under it
func (p *pool) loop(worker int) {
	//paraxlint:allow(parsafe) the pool's own task-channel receive: the one sanctioned handoff
	for t := range p.tasks {
		//paraxlint:allow(parsafe) task dispatch: the callee set is exactly the parroot worker functions
		t.fn(worker, int(t.arg))
		//paraxlint:allow(parsafe) the pool's own WaitGroup handoff, paired with post's Add
		p.wg.Done()
	}
}

// post enqueues fn(worker, arg) for every arg. It is the single place
// in the engine that pairs wg.Add with the worker-side wg.Done; every
// parallel phase funnels through it via World.dispatch.
//
//paraxlint:noalloc
func (p *pool) post(fn func(worker, arg int), args []int32) {
	p.wg.Add(len(args))
	for _, a := range args {
		p.tasks <- task{fn, a}
	}
}

// wait blocks until all posted tasks have completed.
//
//paraxlint:noalloc
func (p *pool) wait() { p.wg.Wait() }

// close stops the workers.
func (p *pool) close() { close(p.tasks) }

// ensurePool (re)creates the world's pool to match the thread count.
func (w *World) ensurePool() *pool {
	want := w.Threads - 1 // the main thread is worker 0
	if want < 1 {
		if w.pool != nil {
			w.pool.close()
			w.pool = nil
		}
		return nil
	}
	if w.pool == nil || w.pool.n != want {
		if w.pool != nil {
			w.pool.close()
		}
		w.pool = newPool(want)
	}
	return w.pool
}

// dispatch is the one code path for all three parallel phases: it runs
// fn(worker, arg) for every queued arg on the pool workers and
// fn(0, arg) for every main arg on the calling goroutine, returning when
// everything has completed. With Threads <= 1 all work runs inline.
//
//paraxlint:noalloc
func (w *World) dispatch(fn func(worker, arg int), queued, main []int32) {
	p := w.ensurePool()
	if p == nil {
		for _, a := range queued {
			fn(0, int(a))
		}
		for _, a := range main {
			fn(0, int(a))
		}
		return
	}
	p.post(fn, queued)
	for _, a := range main {
		fn(0, int(a))
	}
	p.wait()
}

// parallelChunks partitions n items into w.Threads equal chunks and runs
// fn(chunk, lo, hi) for each, chunk 0 on the calling goroutine and the
// rest on the pool (the paper partitions object-pairs into equal sets
// per worker thread). Chunk indices — not worker ids — are passed to fn
// so per-chunk result buffers merge deterministically whatever worker
// ran them. span labels each chunk execution on its worker's lane.
//
//paraxlint:noalloc
func (w *World) parallelChunks(n int, fn func(chunk, lo, hi int), span obs.SpanID) {
	t := w.Threads
	if t <= 1 || n == 0 {
		fn(0, 0, n)
		return
	}
	if t > n {
		t = n
	}
	sc := &w.scratch
	sc.chunkFn = fn
	sc.chunkSize = (n + t - 1) / t
	sc.chunkN = n
	sc.chunkSpan = span
	q := sc.chunkIdx[:0]
	for i := 1; i < t; i++ {
		q = append(q, int32(i))
	}
	sc.chunkIdx = q
	if len(sc.chunkMain) == 0 {
		sc.chunkMain = append(sc.chunkMain, 0)
	}
	w.dispatch(w.runChunkFn, q, sc.chunkMain)
	sc.chunkFn = nil
}

// runChunk adapts one chunk index to the chunk function set by
// parallelChunks. It runs on pool workers via dispatch, so it is a
// parsafe root in its own right (the static graph cannot follow the
// method value stored in runChunkFn).
//
//paraxlint:parroot chunk adapter, dispatched by parallelChunks
func (w *World) runChunk(worker, chunk int) {
	lane := w.laneFor(worker)
	sc := &w.scratch
	span := sc.chunkSpan
	lane.Begin(span)
	lo := chunk * sc.chunkSize
	hi := lo + sc.chunkSize
	if lo > sc.chunkN {
		lo = sc.chunkN
	}
	if hi > sc.chunkN {
		hi = sc.chunkN
	}
	//paraxlint:allow(parsafe) chunkFn is set by parallelChunks to one of the parroot chunk workers
	sc.chunkFn(chunk, lo, hi)
	lane.End(span)
}
