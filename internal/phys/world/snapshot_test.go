package world

import (
	"bytes"
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/cloth"
	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/joint"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// snapWorld builds a scene that exercises every snapshot section:
// stacked bodies, a hinge and a breakable fixed joint accumulating
// fatigue, pinned cloth, an explosive that detonates within a few
// steps (creating a blast and consuming its spec), a prefractured
// brick with debris, warm starting, and sleeping enabled.
func snapWorld(threads int) *World {
	w := detWorld(threads)
	w.WarmStart = true
	w.EnableSleep = true

	a, _ := w.AddBody(geom.Box{Half: m3.V(0.2, 0.2, 0.2)}, 1, m3.V(-4, 0.2, 2), m3.QIdent, 0, 0)
	b, _ := w.AddBody(geom.Box{Half: m3.V(0.2, 0.2, 0.2)}, 1, m3.V(-4, 0.65, 2), m3.QIdent, 0, 0)
	w.AddJoint(joint.NewBreakable(
		joint.NewFixed(w.Bodies, a, b, m3.V(-4, 0.4, 2)), 0, 1e5))

	_, pg := w.AddBody(geom.Box{Half: m3.V(0.4, 0.4, 0.4)}, 4, m3.V(5, 0.4, 2), m3.QIdent, 0, 0)
	var debris []int32
	for i := 0; i < 2; i++ {
		off := m3.V(5+float64(i)*0.4-0.2, 0.6, 2)
		_, dg := w.AddBody(geom.Box{Half: m3.V(0.2, 0.2, 0.2)}, 1, off, m3.QIdent, geom.FlagDebris, 0)
		w.DisableBodyGeom(dg)
		debris = append(debris, dg)
	}
	w.RegisterFracture(pg, debris)

	_, bomb := w.AddBody(geom.Sphere{R: 0.2}, 1, m3.V(5.6, 0.3, 2), m3.QIdent, 0, 0)
	w.MarkExplosive(bomb, ExplosiveSpec{Radius: 2, Duration: 0.2, Impulse: 15})
	return w
}

// TestSnapshotRoundTripIdentity: decoding a snapshot into a fresh world
// and re-encoding must reproduce the exact bytes, including mid-run
// state with live blasts, consumed explosives, broken fractures and a
// populated warm-start cache.
func TestSnapshotRoundTripIdentity(t *testing.T) {
	w := snapWorld(2)
	for i := 0; i < 40; i++ {
		w.Step()
	}
	s1 := w.Snapshot()
	w2 := New()
	if err := w2.Restore(s1); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	s2 := w2.Snapshot()
	if !bytes.Equal(s1, s2) {
		t.Fatalf("snapshot not byte-stable through a restore round trip (%d vs %d bytes)", len(s1), len(s2))
	}
}

// TestSnapshotRestoreContinuesBitIdentical: Restore(Snapshot(w)) + N
// steps must match stepping w uninterrupted, profile digest by profile
// digest and byte for byte, at several thread counts — including a
// restored thread count different from the recording one.
func TestSnapshotRestoreContinuesBitIdentical(t *testing.T) {
	for _, threads := range []int{1, 3, 8} {
		w := snapWorld(2)
		for i := 0; i < 25; i++ {
			w.Step()
		}
		w2 := New()
		w2.Threads = threads
		if err := w2.Restore(w.Snapshot()); err != nil {
			t.Fatalf("threads=%d: Restore: %v", threads, err)
		}
		for i := 0; i < 60; i++ {
			w.Step()
			w2.Step()
			if w.Profile.Digest() != w2.Profile.Digest() {
				t.Fatalf("threads=%d: profile diverged at step %d after restore", threads, i)
			}
		}
		if !bytes.Equal(w.Snapshot(), w2.Snapshot()) {
			t.Fatalf("threads=%d: state diverged after 60 post-restore steps", threads)
		}
	}
}

// TestSnapshotPreservesEventState checks the event-system state
// explicitly: breakable fatigue, consumed explosive specs, live blast
// hit sets and fracture flags all survive the round trip.
func TestSnapshotPreservesEventState(t *testing.T) {
	w := snapWorld(1)
	detonated := false
	for i := 0; i < 60 && !detonated; i++ {
		w.Step()
		detonated = w.Profile.Explosions > 0
	}
	if !detonated {
		t.Fatal("bomb never detonated; scene no longer exercises blasts")
	}
	// One more step so the blast has applied hits but is still alive.
	w.Step()

	w2 := New()
	if err := w2.Restore(w.Snapshot()); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if len(w2.Explosives) != len(w.Explosives) {
		t.Errorf("explosive specs: got %d, want %d", len(w2.Explosives), len(w.Explosives))
	}
	if len(w2.Blasts) != len(w.Blasts) {
		t.Fatalf("blasts: got %d, want %d", len(w2.Blasts), len(w.Blasts))
	}
	for i := range w.Blasts {
		if len(w2.Blasts[i].hit) != len(w.Blasts[i].hit) {
			t.Errorf("blast %d hit set: got %d, want %d", i, len(w2.Blasts[i].hit), len(w.Blasts[i].hit))
		}
	}
	var br, br2 *joint.Breakable
	for ji := range w.Joints {
		if b, ok := w.Joints[ji].(*joint.Breakable); ok {
			br = b
			br2 = w2.Joints[ji].(*joint.Breakable)
			break
		}
	}
	if br == nil {
		t.Fatal("no breakable joint in scene")
	}
	if br.Fatigue == 0 {
		t.Error("breakable joint accumulated no fatigue; scene no longer exercises fatigue")
	}
	if br2.Fatigue != br.Fatigue || br2.Broken != br.Broken {
		t.Errorf("breakable state: got (%v, %v), want (%v, %v)", br2.Fatigue, br2.Broken, br.Fatigue, br.Broken)
	}
	for i := range w.Bodies {
		if w2.Bodies[i].Asleep != w.Bodies[i].Asleep || w2.Bodies[i].SleepClock() != w.Bodies[i].SleepClock() {
			t.Errorf("body %d sleep state not preserved", i)
		}
	}
}

// TestSnapshotRejectsCorruption: a flipped byte anywhere fails the
// checksum; truncation, bad magic and unknown versions all error
// without mutating the target world.
func TestSnapshotRejectsCorruption(t *testing.T) {
	w := snapWorld(1)
	for i := 0; i < 10; i++ {
		w.Step()
	}
	snap := w.Snapshot()

	fresh := func() *World {
		nw := New()
		if err := nw.Restore(snap); err != nil {
			t.Fatalf("Restore of pristine snapshot: %v", err)
		}
		return nw
	}
	target := fresh()
	want := target.Snapshot()

	for _, off := range []int{0, 4, len(snap) / 2, len(snap) - 1} {
		bad := append([]byte(nil), snap...)
		bad[off] ^= 0x40
		if err := target.Restore(bad); err == nil {
			t.Errorf("corruption at byte %d not detected", off)
		}
	}
	if err := target.Restore(snap[:8]); err == nil {
		t.Error("truncated snapshot not detected")
	}
	if err := target.Restore(nil); err == nil {
		t.Error("empty snapshot not detected")
	}
	if !bytes.Equal(target.Snapshot(), want) {
		t.Error("failed Restore mutated the world")
	}
}

// TestCloneIndependent: a clone shares no mutable state — stepping it
// must leave the original's snapshot untouched, and both worlds step
// identically from the fork point.
func TestCloneIndependent(t *testing.T) {
	w := snapWorld(2)
	for i := 0; i < 20; i++ {
		w.Step()
	}
	before := w.Snapshot()
	cl, err := w.Clone()
	if err != nil {
		t.Fatalf("Clone: %v", err)
	}
	if cl.Threads != w.Threads {
		t.Errorf("clone Threads = %d, want %d", cl.Threads, w.Threads)
	}
	for i := 0; i < 30; i++ {
		cl.Step()
	}
	if !bytes.Equal(w.Snapshot(), before) {
		t.Fatal("stepping the clone mutated the original")
	}
	for i := 0; i < 30; i++ {
		w.Step()
	}
	if !bytes.Equal(w.Snapshot(), cl.Snapshot()) {
		t.Fatal("original and clone diverged while stepping the same inputs")
	}
}

// TestSnapshotCloth: a cloth mid-flight (nonzero implied Verlet
// velocity) restores bit-identically, including the proxy geom
// aliasing that the per-step resize mutates through.
func TestSnapshotCloth(t *testing.T) {
	w := groundWorld()
	c := cloth.NewGrid(8, 8, 0.2, m3.V(-0.7, 2, -0.7), 0.5)
	c.PinParticle(0)
	w.AddCloth(c)
	bi, _ := w.AddBody(geom.Sphere{R: 0.3}, 1, m3.V(0, 3.5, 0), m3.QIdent, 0, 0)
	w.Bodies[bi].LinVel = m3.V(0, -2, 0)
	for i := 0; i < 30; i++ {
		w.Step()
	}
	w2 := New()
	if err := w2.Restore(w.Snapshot()); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for i := 0; i < 60; i++ {
		w.Step()
		w2.Step()
	}
	if !bytes.Equal(w.Snapshot(), w2.Snapshot()) {
		t.Fatal("cloth state diverged after restore")
	}
	// The restored proxy must alias the cloth box: stepping must keep
	// resizing it (regression for the pointer re-establishment).
	gi := w2.clothProxy[0]
	if _, ok := w2.Geoms[gi].Shape.(*geom.Box); !ok {
		t.Fatalf("restored cloth proxy shape is %T, want *geom.Box", w2.Geoms[gi].Shape)
	}
	if w2.clothProxyShape[0] != w2.Geoms[gi].Shape.(*geom.Box) {
		t.Fatal("restored cloth proxy shape does not alias the proxy geom's shape")
	}
}
