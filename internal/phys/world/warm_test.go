package world

import (
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

func buildStack(warm bool, iters int) *World {
	w := New()
	w.WarmStart = warm
	w.Solver.Iterations = iters
	w.AddStatic(geom.Plane{Normal: m3.V(0, 1, 0)}, m3.Zero, m3.QIdent)
	for i := 0; i < 8; i++ {
		w.AddBody(geom.Box{Half: m3.V(0.5, 0.5, 0.5)}, 10,
			m3.V(0, 0.5+float64(i)*1.0, 0), m3.QIdent, 0, 0)
	}
	return w
}

func settledPenetration(w *World) float64 {
	for i := 0; i < 200; i++ {
		w.Step()
	}
	return w.Profile.Narrow.DeepestDepth
}

func TestWarmStartImprovesConvergence(t *testing.T) {
	// At few iterations, warm starting dramatically reduces residual
	// penetration in a heavy stack.
	cold := settledPenetration(buildStack(false, 5))
	warm := settledPenetration(buildStack(true, 5))
	t.Logf("5 iterations: cold %.2f mm, warm %.2f mm", cold*1e3, warm*1e3)
	if warm > cold*0.5 {
		t.Errorf("warm starting should at least halve residual penetration: cold %v warm %v", cold, warm)
	}
	// And the stack must remain stable (no launch).
	w := buildStack(true, 5)
	for i := 0; i < 300; i++ {
		w.Step()
	}
	for bi, b := range w.Bodies {
		if !b.Valid() || b.Pos.Y > 9 {
			t.Fatalf("warm-started stack unstable: body %d at %v", bi, b.Pos)
		}
	}
}
