// Package world orchestrates the physics engine's five computational
// phases (paper Figure 1):
//
//	Broad-phase -> Narrow-phase -> Island Creation -> Island Processing -> Cloth
//
// All phases are serialized with respect to each other; Narrow-phase,
// Island Processing and Cloth exploit parallelism within the phase using
// a work-queue model with persistent worker goroutines (the paper's
// pthreads + persistent worker threads). The engine also implements the
// paper's game-physics extensions: explosions (blast-radius spheres),
// pre-fractured objects that shatter into debris, breakable joints, and
// cloth contact lists.
package world

import (
	"github.com/parallax-arch/parallax/internal/obs"
	"github.com/parallax-arch/parallax/internal/phys/body"
	"github.com/parallax-arch/parallax/internal/phys/broadphase"
	"github.com/parallax-arch/parallax/internal/phys/cloth"
	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/joint"
	"github.com/parallax-arch/parallax/internal/phys/m3"
	"github.com/parallax-arch/parallax/internal/phys/solver"
)

// SmallIslandDOF is the threshold below which islands are processed on
// the main thread instead of the work queue (paper section 3.2: "Only
// islands with more than 25 degrees-of-freedom removed are inserted into
// the work-queue").
const SmallIslandDOF = 25

// ExplosiveSpec configures an explosive geom: on contact the object is
// replaced by a blast sphere of the given radius that lives for Duration
// seconds and applies Impulse (N*s, scaled by proximity) to bodies it
// touches.
type ExplosiveSpec struct {
	Radius   float64
	Duration float64
	Impulse  float64
}

// Blast is an active blast volume. The shockwave imparts its impulse to
// each body (and each cloth) at most once over the blast's lifetime.
type Blast struct {
	Geom      int32
	Remaining float64
	Impulse   float64
	hit       map[int32]bool // body index -> shockwave already applied
	hitCloth  map[int32]bool // cloth index -> shockwave already applied
}

// FractureGroup links a breakable parent geom to its pre-created debris.
// LocalPos/LocalRot hold each debris piece's pose relative to the parent
// so pieces can be placed correctly however far the parent has moved.
type FractureGroup struct {
	Parent   int32
	Debris   []int32
	LocalPos []m3.Vec
	LocalRot []m3.Quat
	Broken   bool
}

// World holds the complete simulation state.
type World struct {
	// Gravity applied to every dynamic body (m/s^2).
	Gravity m3.Vec
	// Dt is the simulation time step (the paper uses 0.01 s).
	Dt float64
	// ERP and CFM are the global constraint parameters.
	ERP, CFM float64
	// EnableSleep lets idle bodies go to sleep. Off by default: the
	// benchmark scenes are measured at full activity.
	EnableSleep bool
	// RecordDetail makes Step record the pair list, contact endpoints
	// and island membership in the profile (for the architecture model).
	RecordDetail bool
	// WarmStart carries contact impulses across steps (persistent
	// manifolds), letting the solver start near last step's solution.
	// Off by default to match the paper's plain iterative relaxation.
	WarmStart bool

	Bodies []*body.Body
	Geoms  []*geom.Geom
	Joints []joint.Joint
	Cloths []*cloth.Cloth

	// Broad is the broad-phase algorithm (sweep-and-prune by default).
	Broad broadphase.Interface
	// Solver runs the per-island LCP (20 iterations by default).
	Solver *solver.Solver

	// Threads is the worker count for the parallel phases (1 = serial).
	Threads int

	// Explosives maps geom index to its blast behaviour.
	Explosives map[int32]ExplosiveSpec
	// Blasts are the currently active blast volumes.
	Blasts []Blast
	// blastOfGeom indexes active blasts by their volume geom id, so
	// resolving a blast hit is O(1) instead of a scan over w.Blasts.
	blastOfGeom map[int32]int32
	// Fractures lists the registered prefractured objects.
	Fractures      []FractureGroup
	fractureOfGeom map[int32]int32 // parent geom -> fracture index

	// clothProxy maps cloth index -> proxy geom index.
	clothProxy []int32
	// clothProxyShape is each proxy's box, held by pointer so the
	// per-step resize mutates it in place instead of re-boxing the Shape
	// interface (which would allocate every step).
	clothProxyShape []*geom.Box
	// clothContacts is the per-step contact list per cloth.
	clothContacts [][]int32

	// Time is the accumulated simulated time.
	Time float64

	// Profile holds the instrumentation for the most recent Step.
	Profile StepProfile

	pool     *pool
	pairBuf  []broadphase.Pair
	bodyGeom []int32 // body index -> geom index (-1 once consumed)
	// geomFree lists disabled geom slots (consumed explosives, expired
	// blast volumes) available for reuse, so long-running Explosions/Mix
	// scenes don't grow w.Geoms without bound. geomFreeStaged collects
	// the slots freed during the current step; they migrate to geomFree
	// only when the step completes, so nothing that still references a
	// geom id this step (cloth contact lists, pending events) can see
	// the slot repurposed mid-step.
	geomFree       []int32
	geomFreeStaged []int32
	// warmCache holds last step's contact impulses keyed by (geom pair,
	// ordinal within the pair's manifold): normal + two friction values.
	warmCache map[warmKey][joint.RowsPerContact]float64

	// Observability sink (SetObs): span tracer lanes, per-step metric
	// harvesting. All nil/zero when tracing is off — the hot path pays
	// only nil checks.
	trace    *obs.Tracer
	metrics  *obs.Registry
	obsLabel string
	obsLanes []*obs.Lane
	spans    stepSpans
	met      stepMetrics

	// Live telemetry (SetSeries/SetHealth): the per-step series rings,
	// the anomaly detector, the pre-registered channel IDs, the
	// telemetry step ordinal, and the previous cumulative per-phase
	// span totals (recordTelemetry differences them into per-step
	// durations). All nil/zero when telemetry is off.
	series      *obs.Series
	health      *obs.Health
	ser         stepSeries
	telStep     int64
	prevPhaseNs [numPhaseSpans]int64

	// scratch is the reusable per-step arena; see frameScratch.
	scratch frameScratch
	// Persistent task closures, bound once at construction (bind) so
	// steady-state dispatch never checks for or creates them (a method
	// value allocates).
	narrowFn   func(chunk, lo, hi int)
	refreshFn  func(chunk, lo, hi int)
	edgeFn     func(chunk, lo, hi int)
	velFn      func(chunk, lo, hi int)
	posFn      func(chunk, lo, hi int)
	syncFn     func(chunk, lo, hi int)
	islandFn   func(worker, arg int)
	clothFn    func(worker, arg int)
	runChunkFn func(worker, arg int)
	activeFn   func(int32) bool
	poseFn     func(int32) (m3.Vec, m3.Quat)

	// prevPairs and prevEdges carry the previous step's broad-phase pair
	// and island-edge counts, pre-sizing this step's buffers so the
	// steps after a snapshot Restore don't regrow them incrementally.
	prevPairs, prevEdges int
}

// New returns an empty world with the paper's default parameters:
// 0.01 s steps, 20 solver iterations, sweep-and-prune broad phase,
// single-threaded.
func New() *World {
	w := &World{
		Gravity:        m3.V(0, -9.81, 0),
		Dt:             0.01,
		ERP:            0.2,
		CFM:            1e-9,
		Broad:          broadphase.NewSweepAndPrune(),
		Solver:         solver.New(),
		Threads:        1,
		Explosives:     make(map[int32]ExplosiveSpec),
		fractureOfGeom: make(map[int32]int32),
		blastOfGeom:    make(map[int32]int32),
	}
	w.bind()
	return w
}

// bind installs the persistent task closures. It runs once, at
// construction — the per-step hot path dispatches through these fields
// without nil checks, because creating a method value there would
// allocate on every step.
func (w *World) bind() {
	w.narrowFn = w.narrowChunk
	w.refreshFn = w.refreshChunk
	w.edgeFn = w.edgeChunk
	w.velFn = w.velChunk
	w.posFn = w.posChunk
	w.syncFn = w.syncChunk
	w.islandFn = w.solveIsland
	w.clothFn = w.stepCloth
	w.runChunkFn = w.runChunk
	w.poseFn = w.bodyPose
	w.activeFn = func(i int32) bool {
		b := w.Bodies[i]
		return b.Enabled && b.InvMass > 0 && !b.Asleep
	}
}

// SetThreads sets the worker count for the parallel phases, rebuilding
// the worker pool immediately and growing the tracer lanes if tracing
// is attached — work that would otherwise happen lazily inside the
// next Step. Values below 1 are clamped to 1 (serial).
func (w *World) SetThreads(n int) {
	if n < 1 {
		n = 1
	}
	w.Threads = n
	w.ensurePool()
	if w.trace != nil && len(w.obsLanes) < n {
		w.growObsLanes()
	}
}

// AddBody creates a dynamic body with a single collision shape and
// returns (bodyIndex, geomIndex). A non-positive mass creates an
// immovable (kinematic) body.
func (w *World) AddBody(s geom.Shape, mass float64, pos m3.Vec, rot m3.Quat, flags geom.Flag, group int32) (int32, int32) {
	b := body.New(mass, s.Inertia(mass))
	b.ID = len(w.Bodies)
	b.Pos = pos
	b.Rot = rot
	w.Bodies = append(w.Bodies, b)

	g := &geom.Geom{
		ID:        len(w.Geoms),
		Shape:     s,
		Pos:       pos,
		Rot:       rot.Mat(),
		Body:      b.ID,
		OffsetRot: m3.QIdent,
		Flags:     flags,
		Group:     group,
	}
	g.UpdateAABB()
	w.Geoms = append(w.Geoms, g)
	w.bodyGeom = append(w.bodyGeom, int32(g.ID))
	return int32(b.ID), int32(g.ID)
}

// AddStatic creates immobile collision geometry (terrain, obstacles) and
// returns its geom index. Static objects participate in collision
// detection but not in forward stepping (paper Table 2).
func (w *World) AddStatic(s geom.Shape, pos m3.Vec, rot m3.Quat) int32 {
	g := &geom.Geom{
		ID:    len(w.Geoms),
		Shape: s,
		Pos:   pos,
		Rot:   rot.Mat(),
		Body:  -1,
		Flags: geom.FlagStatic,
	}
	g.UpdateAABB()
	w.Geoms = append(w.Geoms, g)
	return int32(g.ID)
}

// AddJoint registers a joint and returns its index.
func (w *World) AddJoint(j joint.Joint) int32 {
	w.Joints = append(w.Joints, j)
	return int32(len(w.Joints) - 1)
}

// AddCloth registers a cloth object and creates its bounding-volume
// proxy geom, returning the cloth index.
func (w *World) AddCloth(c *cloth.Cloth) int32 {
	idx := int32(len(w.Cloths))
	w.Cloths = append(w.Cloths, c)
	c.UpdateBox()
	sh := &geom.Box{Half: c.Box.Extent().Scale(0.5)}
	g := &geom.Geom{
		ID:    len(w.Geoms),
		Shape: sh,
		Pos:   c.Box.Center(),
		Rot:   m3.Ident,
		Body:  -1,
		Flags: geom.FlagCloth,
		Aux:   idx,
	}
	g.UpdateAABB()
	w.Geoms = append(w.Geoms, g)
	w.clothProxy = append(w.clothProxy, int32(g.ID))
	w.clothProxyShape = append(w.clothProxyShape, sh)
	w.clothContacts = append(w.clothContacts, nil)
	return idx
}

// MarkExplosive flags a geom as explosive with the given blast.
func (w *World) MarkExplosive(geomIdx int32, spec ExplosiveSpec) {
	w.Geoms[geomIdx].Flags |= geom.FlagExplosive
	w.Explosives[geomIdx] = spec
}

// RegisterFracture marks parent as prefractured with the given debris
// geoms, capturing each debris piece's current pose relative to the
// parent. Debris geoms (and their bodies) are disabled until the parent
// breaks; they must have been created with FlagDebris and then disabled.
func (w *World) RegisterFracture(parent int32, debris []int32) {
	w.Geoms[parent].Flags |= geom.FlagPrefractured
	pg := w.Geoms[parent]
	pPos, pRot := pg.Pos, m3.QIdent
	if pg.Body >= 0 {
		pPos, pRot = w.Bodies[pg.Body].Pos, w.Bodies[pg.Body].Rot
	}
	fr := FractureGroup{Parent: parent, Debris: debris}
	for _, di := range debris {
		dg := w.Geoms[di]
		dPos, dRot := dg.Pos, m3.QIdent
		if dg.Body >= 0 {
			dPos, dRot = w.Bodies[dg.Body].Pos, w.Bodies[dg.Body].Rot
		}
		fr.LocalPos = append(fr.LocalPos, pRot.Conj().Rotate(dPos.Sub(pPos)))
		fr.LocalRot = append(fr.LocalRot, pRot.Conj().Mul(dRot))
	}
	idx := int32(len(w.Fractures))
	w.Fractures = append(w.Fractures, fr)
	w.fractureOfGeom[parent] = idx
}

// DisableBodyGeom removes a body and its geom from simulation.
func (w *World) DisableBodyGeom(geomIdx int32) {
	g := w.Geoms[geomIdx]
	g.Flags |= geom.FlagDisabled
	if g.Body >= 0 {
		w.Bodies[g.Body].Enabled = false
	}
}

// EnableBodyGeom re-activates a body and its geom (used for debris). The
// body returns awake with cleared force/torque accumulators: anything
// accumulated before it was disabled is stale and must not leak into the
// body's first live step.
func (w *World) EnableBodyGeom(geomIdx int32) {
	g := w.Geoms[geomIdx]
	g.Flags &^= geom.FlagDisabled
	if g.Body >= 0 {
		b := w.Bodies[g.Body]
		b.Enabled = true
		b.Wake()
		b.ClearAccumulators()
	}
}

// params returns the per-step joint parameters.
func (w *World) params() joint.Params {
	return joint.Params{Dt: w.Dt, ERP: w.ERP, CFM: w.CFM}
}

// BodyOfGeom returns the body index for a geom (-1 for static).
func (w *World) BodyOfGeom(g int32) int32 { return int32(w.Geoms[g].Body) }

// GeomOfBody returns the geom index for a body.
func (w *World) GeomOfBody(b int32) int32 { return w.bodyGeom[b] }

// DynamicBodyCount returns the number of enabled dynamic bodies.
func (w *World) DynamicBodyCount() int {
	n := 0
	for _, b := range w.Bodies {
		if b.Enabled && b.InvMass > 0 {
			n++
		}
	}
	return n
}
