package world

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/broadphase"
	"github.com/parallax-arch/parallax/internal/phys/cloth"
	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/joint"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// TestShatterDebrisVelocity pins down the shatter contract: debris
// spawns with the parent's linear velocity plus a unit-radial kick of
// magnitude 2, zero angular velocity, awake, and with cleared force
// accumulators — whatever junk state the pieces held before they were
// disabled.
func TestShatterDebrisVelocity(t *testing.T) {
	w := New() // no ground: nothing else touches the velocities
	pb, pg := w.AddBody(geom.Box{Half: m3.V(0.5, 0.5, 0.5)}, 4, m3.V(0, 5, 0), m3.QIdent, 0, 0)
	w.Bodies[pb].LinVel = m3.V(3, 0, -1)
	var debris []int32
	for i := 0; i < 4; i++ {
		off := m3.V(float64(i%2)-0.5, 5, float64(i/2)-0.5)
		db, dg := w.AddBody(geom.Box{Half: m3.V(0.25, 0.25, 0.25)}, 1, off, m3.QIdent, geom.FlagDebris, 0)
		// Poison the disabled pieces with stale state the fix must clear.
		w.Bodies[db].LinVel = m3.V(99, 99, 99)
		w.Bodies[db].AngVel = m3.V(7, -7, 7)
		w.Bodies[db].Force = m3.V(1e6, 0, 0)
		w.Bodies[db].Torque = m3.V(0, 1e6, 0)
		w.Bodies[db].Asleep = true
		w.DisableBodyGeom(dg)
		debris = append(debris, dg)
	}
	w.RegisterFracture(pg, debris)

	blastPos := m3.V(0, 4, 0)
	w.shatter(0, blastPos, &w.Profile)

	parentVel := m3.V(3, 0, -1)
	for _, dg := range debris {
		db := w.Bodies[w.Geoms[dg].Body]
		if !db.Enabled || db.Asleep {
			t.Fatalf("debris %d not awake/enabled", dg)
		}
		if db.Force != m3.Zero || db.Torque != m3.Zero {
			t.Errorf("debris %d spawned with stale accumulators: F=%v T=%v", dg, db.Force, db.Torque)
		}
		if db.AngVel != m3.Zero {
			t.Errorf("debris %d spawned spinning: %v", dg, db.AngVel)
		}
		kick := db.LinVel.Sub(parentVel)
		if math.Abs(kick.Len()-2.0) > 1e-9 {
			t.Errorf("debris %d kick magnitude = %v, want 2", dg, kick.Len())
		}
		radial := db.Pos.Sub(blastPos).Norm()
		if kick.Sub(radial.Scale(2)).Len() > 1e-9 {
			t.Errorf("debris %d kick not radial from blast: kick=%v radial=%v", dg, kick, radial)
		}
	}
}

// TestSimultaneousBlastsOneImpulseEach overlaps two active blast volumes
// on the same body and checks the body receives exactly one impulse from
// each blast — the geom-id blast index must route each hit to its own
// blast, and the per-blast hit set must prevent re-application on later
// steps while the volumes stay alive.
func TestSimultaneousBlastsOneImpulseEach(t *testing.T) {
	w := New() // free space: gravity is the only other influence
	_, bombA := w.AddBody(geom.Sphere{R: 0.1}, 0, m3.V(-1, 5, 0), m3.QIdent, 0, 0)
	_, bombB := w.AddBody(geom.Sphere{R: 0.1}, 0, m3.V(1, 5, 0), m3.QIdent, 0, 0)
	w.MarkExplosive(bombA, ExplosiveSpec{Radius: 2, Duration: 1.0, Impulse: 10})
	w.MarkExplosive(bombB, ExplosiveSpec{Radius: 2, Duration: 1.0, Impulse: 20})
	// Target sits 1 m from each blast center: proximity scale = 0.5.
	tgt, _ := w.AddBody(geom.Sphere{R: 0.2}, 1, m3.V(0, 5, 0), m3.QIdent, 0, 0)
	// Bystander only inside blast B's radius.
	by, _ := w.AddBody(geom.Sphere{R: 0.2}, 1, m3.V(2.5, 5, 0), m3.QIdent, 0, 0)

	w.detonate(bombA, &w.Profile)
	w.detonate(bombB, &w.Profile)
	if len(w.Blasts) != 2 {
		t.Fatalf("expected 2 active blasts, got %d", len(w.Blasts))
	}
	w.Step()

	gdt := w.Gravity.Scale(w.Dt)
	// Blast A pushes +x with 10*0.5, blast B pushes -x with 20*0.5.
	wantTgt := m3.V(10*0.5-20*0.5, 0, 0).Add(gdt)
	if got := w.Bodies[tgt].LinVel; got.Sub(wantTgt).Len() > 1e-9 {
		t.Errorf("target velocity = %v, want %v (one impulse per blast)", got, wantTgt)
	}
	// Bystander: dist 1.5 from B (scale 0.25), outside A.
	wantBy := m3.V(20*0.25, 0, 0).Add(gdt)
	if got := w.Bodies[by].LinVel; got.Sub(wantBy).Len() > 1e-9 {
		t.Errorf("bystander velocity = %v, want %v", got, wantBy)
	}

	// The volumes are still alive; further steps must add gravity only.
	v1 := w.Bodies[tgt].LinVel
	w.Step()
	if got := w.Bodies[tgt].LinVel.Sub(v1); got.Sub(gdt).Len() > 1e-9 {
		t.Errorf("second step re-applied a blast impulse: dv=%v", got)
	}
	if len(w.Blasts) != 2 {
		t.Fatalf("blasts expired prematurely")
	}
}

// TestPoolResizeViaThreads changes Threads between steps and checks the
// pool is rebuilt to match and that the trajectory stays bit-identical
// to a single-threaded reference world.
func TestPoolResizeViaThreads(t *testing.T) {
	build := func() *World {
		w := groundWorld()
		for i := 0; i < 12; i++ {
			w.AddBody(geom.Box{Half: m3.V(0.3, 0.3, 0.3)}, 1,
				m3.V(float64(i%3)*0.65, 0.4+float64(i/3)*0.65, 0), m3.QIdent, 0, 0)
		}
		return w
	}
	ref, w := build(), build()
	for _, th := range []int{1, 4, 2, 8, 1, 3} {
		w.Threads = th
		for i := 0; i < 10; i++ {
			ref.Step()
			w.Step()
		}
		want := th - 1
		if want < 1 {
			if w.pool != nil {
				t.Fatalf("Threads=%d left a live pool", th)
			}
		} else if w.pool == nil || w.pool.n != want {
			t.Fatalf("Threads=%d: pool has %d workers, want %d", th, poolN(w), want)
		}
	}
	for i := range w.Bodies {
		if w.Bodies[i].Pos != ref.Bodies[i].Pos || w.Bodies[i].Rot != ref.Bodies[i].Rot {
			t.Fatalf("body %d diverged from serial reference after pool resizes", i)
		}
	}
}

func poolN(w *World) int {
	if w.pool == nil {
		return 0
	}
	return w.pool.n
}

// TestSolverIterationsReportedWithoutIslands: a step that builds no
// islands must still report the solver's configured iteration count, not
// zero — the architecture model reads it as the per-island relaxation
// depth, which is a world constant.
func TestSolverIterationsReportedWithoutIslands(t *testing.T) {
	w := New()
	w.AddStatic(geom.Plane{Normal: m3.V(0, 1, 0), Offset: 0}, m3.Zero, m3.QIdent)
	w.Step()
	if len(w.Profile.Islands) != 0 {
		t.Fatalf("scene unexpectedly produced %d islands", len(w.Profile.Islands))
	}
	if got := w.Profile.Solver.Iterations; got != w.Solver.Iterations {
		t.Errorf("zero-island step reported Solver.Iterations=%d, want %d", got, w.Solver.Iterations)
	}
}

// detWorld builds a scene exercising every parallel phase: stacked
// boxes and spheres (contacts, islands), a hinged pair (joint rows), and
// a pinned cloth sheet.
func detWorld(threads int) *World {
	w := groundWorld()
	w.Threads = threads
	for i := 0; i < 14; i++ {
		w.AddBody(geom.Box{Half: m3.V(0.3, 0.3, 0.3)}, 1,
			m3.V(float64(i%4)*0.7-1, 0.4+float64(i/4)*0.65, 0), m3.QIdent, 0, 0)
	}
	for i := 0; i < 6; i++ {
		w.AddBody(geom.Sphere{R: 0.25}, 1,
			m3.V(float64(i)*0.6-2, 2.5, 1.5), m3.QIdent, 0, 0)
	}
	a, _ := w.AddBody(geom.Box{Half: m3.V(0.2, 0.2, 0.2)}, 1, m3.V(3, 1, 0), m3.QIdent, 0, 0)
	b, _ := w.AddBody(geom.Box{Half: m3.V(0.2, 0.2, 0.2)}, 1, m3.V(3.5, 1, 0), m3.QIdent, 0, 0)
	w.AddJoint(joint.NewHinge(w.Bodies, a, b, m3.V(3.25, 1, 0), m3.V(0, 0, 1)))
	c := cloth.NewGrid(6, 6, 0.2, m3.V(-3, 2, -2), 0.5)
	c.PinParticle(0)
	c.PinParticle(5)
	w.AddCloth(c)
	return w
}

// TestThreadCountDeterminism is the tentpole's safety net: stepping the
// same scene with 1 and 8 threads must produce bit-identical body poses,
// cloth particles, and step profiles, frame after frame. CI runs this
// under -race, which also catches cross-island write races.
func TestThreadCountDeterminism(t *testing.T) {
	w1, w8 := detWorld(1), detWorld(8)
	for frame := 0; frame < 3; frame++ {
		var f1, f8 FrameProfile
		for s := 0; s < 30; s++ {
			w1.Step()
			f1.Add(w1.Profile)
			w8.Step()
			f8.Add(w8.Profile)
		}
		for i := range w1.Bodies {
			if w1.Bodies[i].Pos != w8.Bodies[i].Pos || w1.Bodies[i].Rot != w8.Bodies[i].Rot ||
				w1.Bodies[i].LinVel != w8.Bodies[i].LinVel || w1.Bodies[i].AngVel != w8.Bodies[i].AngVel {
				t.Fatalf("frame %d: body %d state differs between 1 and 8 threads", frame, i)
			}
		}
		for i := range w1.Cloths[0].Particles {
			if w1.Cloths[0].Particles[i].Pos != w8.Cloths[0].Particles[i].Pos {
				t.Fatalf("frame %d: cloth particle %d differs between 1 and 8 threads", frame, i)
			}
		}
		if !reflect.DeepEqual(f1, f8) {
			for s := range f1.Steps {
				if !reflect.DeepEqual(f1.Steps[s], f8.Steps[s]) {
					t.Fatalf("frame %d step %d: profiles differ:\n 1T: %+v\n 8T: %+v",
						frame, s, f1.Steps[s], f8.Steps[s])
				}
			}
			t.Fatalf("frame %d: frame profiles differ", frame)
		}
	}
}

// TestStepSteadyStateAllocs is the tentpole's acceptance check at unit
// scope: once warm, Step must not touch the heap.
func TestStepSteadyStateAllocs(t *testing.T) {
	for _, th := range []int{1, 2} {
		w := detWorld(th)
		for i := 0; i < 150; i++ {
			w.Step()
		}
		avg := testing.AllocsPerRun(50, func() { w.Step() })
		if avg != 0 {
			t.Errorf("threads=%d: steady-state Step allocates %.1f objects/op, want 0", th, avg)
		}
	}
}

// incSAPWorld is detWorld running on the incremental sweep-and-prune.
func incSAPWorld(threads int) *World {
	w := detWorld(threads)
	w.Broad = broadphase.NewIncrementalSAP()
	return w
}

// TestIncSAPThreadCountDeterminism runs the 1-vs-8-thread oracle with
// the incremental broad phase: its pair emission (map iteration +
// canonical sort) and the chunk-parallel phases around it must stay
// byte-deterministic, profile digest by profile digest.
func TestIncSAPThreadCountDeterminism(t *testing.T) {
	w1, w8 := incSAPWorld(1), incSAPWorld(8)
	for s := 0; s < 90; s++ {
		w1.Step()
		w8.Step()
		if w1.Profile.Digest() != w8.Profile.Digest() {
			t.Fatalf("step %d: profile digests differ between 1 and 8 threads", s)
		}
	}
	for i := range w1.Bodies {
		if w1.Bodies[i].Pos != w8.Bodies[i].Pos || w1.Bodies[i].Rot != w8.Bodies[i].Rot {
			t.Fatalf("body %d state differs between 1 and 8 threads", i)
		}
	}
}

// TestIncSAPWorldSnapshotRoundTrip snapshots a world mid-run on the
// incremental broad phase, restores it into a fresh world, and checks
// (a) the snapshot is byte-stable through the round trip, (b) the
// restored world runs on an IncrementalSAP, and (c) both worlds step
// on in lockstep — the saved endpoint order and pair set preserve the
// structure's temporal coherence, which is observable in the profile's
// SortOps/Rebuilds counters and hence in the digests.
func TestIncSAPWorldSnapshotRoundTrip(t *testing.T) {
	w := incSAPWorld(2)
	for i := 0; i < 40; i++ {
		w.Step()
	}
	s := w.Snapshot()
	w2 := New()
	if err := w2.Restore(s); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if _, ok := w2.Broad.(*broadphase.IncrementalSAP); !ok {
		t.Fatalf("restored broad phase is %T, want *IncrementalSAP", w2.Broad)
	}
	if !bytes.Equal(w2.Snapshot(), s) {
		t.Fatal("snapshot not byte-stable through restore")
	}
	w2.Threads = 2
	for i := 0; i < 25; i++ {
		w.Step()
		w2.Step()
		if w.Profile.Digest() != w2.Profile.Digest() {
			t.Fatalf("restored world diverged at step %d", i)
		}
	}
	if !bytes.Equal(w.Snapshot(), w2.Snapshot()) {
		t.Fatal("end states differ after restore")
	}
}

// TestIncSAPStepSteadyStateAllocs: the incremental broad phase must
// keep the steady-state Step allocation-free — the persistent pair set
// and endpoint array reuse their capacity across passes.
func TestIncSAPStepSteadyStateAllocs(t *testing.T) {
	for _, th := range []int{1, 2} {
		w := incSAPWorld(th)
		for i := 0; i < 150; i++ {
			w.Step()
		}
		avg := testing.AllocsPerRun(50, func() { w.Step() })
		if avg != 0 {
			t.Errorf("threads=%d: steady-state Step allocates %.1f objects/op, want 0", th, avg)
		}
	}
}
