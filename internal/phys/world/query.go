package world

import (
	"math"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
	"github.com/parallax-arch/parallax/internal/phys/narrowphase"
)

// RayCast finds the nearest intersection of the ray from origin o along
// unit direction dir (limited to maxT) with any enabled geom, skipping
// blast volumes and cloth proxies. It returns the hit and whether one
// was found. Gameplay queries (line of sight, picking, projectile
// pre-sweeps) use this; cloth collision uses the same per-geom tests
// internally.
func (w *World) RayCast(o, dir m3.Vec, maxT float64) (narrowphase.RayHit, bool) {
	best := narrowphase.RayHit{T: math.Inf(1)}
	found := false
	end := o.Add(dir.Scale(maxT))
	ray := m3.AABB{Min: o.Min(end), Max: o.Max(end)}
	for _, g := range w.Geoms {
		if !g.Enabled() || g.Flags.Has(geom.FlagBlast) || g.Flags.Has(geom.FlagCloth) {
			continue
		}
		// Planes have unbounded boxes; everything else is pre-filtered
		// by the ray's AABB. The box is computed into a local: queries
		// are read-only and may run concurrently, so they must not
		// refresh the shared g.Box cache.
		if g.Shape.Kind() != geom.KindPlane {
			box := g.Shape.AABB(g.Pos, g.Rot)
			if !box.Overlaps(ray) {
				continue
			}
		}
		if hit, ok := narrowphase.RayCast(g, o, dir, maxT); ok && hit.T < best.T {
			best = hit
			found = true
		}
	}
	return best, found
}

// BodiesIn appends the indices of enabled dynamic bodies whose geom
// AABBs intersect the query box (an area query for gameplay triggers and
// blast pre-filters) and returns the slice.
func (w *World) BodiesIn(box m3.AABB, dst []int32) []int32 {
	for _, g := range w.Geoms {
		if !g.Enabled() || g.Body < 0 {
			continue
		}
		if g.Flags.Has(geom.FlagBlast) || g.Flags.Has(geom.FlagCloth) {
			continue
		}
		// Read-only query: compute the AABB into a local rather than
		// refreshing the shared g.Box cache (see RayCast).
		gb := g.Shape.AABB(g.Pos, g.Rot)
		if gb.Overlaps(box) {
			dst = append(dst, int32(g.Body))
		}
	}
	return dst
}

// KineticEnergy returns the total kinetic energy of all enabled dynamic
// bodies — a convenient invariant for tests and stability monitoring.
func (w *World) KineticEnergy() float64 {
	e := 0.0
	for _, b := range w.Bodies {
		if b.Enabled {
			e += b.KineticEnergy()
		}
	}
	return e
}
