package world

import (
	"bytes"
	"math"
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/broadphase"
	"github.com/parallax-arch/parallax/internal/phys/cloth"
	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/joint"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// fuzzOps interprets a byte stream as a bounded world-building program.
// Every value is clamped into ranges the solver is stable in, so the
// fuzzer explores scene topology (bodies, joints, cloth, explosives,
// disabled geoms, step bursts) rather than numeric blow-ups.
type fuzzOps struct {
	data []byte
	i    int
}

func (f *fuzzOps) byte() byte {
	if f.i >= len(f.data) {
		return 0
	}
	b := f.data[f.i]
	f.i++
	return b
}

// unit returns a value in [0, 1) with 1/256 resolution.
func (f *fuzzOps) unit() float64 { return float64(f.byte()) / 256 }

// span returns a value in [lo, hi).
func (f *fuzzOps) span(lo, hi float64) float64 { return lo + (hi-lo)*f.unit() }

// buildFuzzWorld replays the op stream into a fresh world with the
// given thread count and broad-phase implementation (nil keeps the
// default full sweep). The same bytes always build the same scene.
func buildFuzzWorld(data []byte, threads int, broad broadphase.Interface) *World {
	w := New()
	w.Threads = threads
	if broad != nil {
		w.Broad = broad
	}
	w.WarmStart = true
	w.EnableSleep = true
	w.AddStatic(geom.Plane{Normal: m3.V(0, 1, 0)}, m3.V(0, 0, 0), m3.QIdent)

	f := &fuzzOps{data: data}
	const maxOps = 96
	for n := 0; n < maxOps && f.i < len(f.data); n++ {
		switch f.byte() % 8 {
		case 0: // box body
			if len(w.Bodies) >= 48 {
				continue
			}
			h := f.span(0.1, 0.5)
			w.AddBody(geom.Box{Half: m3.V(h, h, h)}, f.span(0.5, 4),
				m3.V(f.span(-8, 8), f.span(0.2, 5), f.span(-8, 8)), m3.QIdent, 0, 0)
		case 1: // sphere body with a small initial velocity
			if len(w.Bodies) >= 48 {
				continue
			}
			bi, _ := w.AddBody(geom.Sphere{R: f.span(0.1, 0.4)}, f.span(0.5, 2),
				m3.V(f.span(-8, 8), f.span(0.3, 5), f.span(-8, 8)), m3.QIdent, 0, 0)
			w.Bodies[bi].LinVel = m3.V(f.span(-3, 3), f.span(-3, 0), f.span(-3, 3))
		case 2: // capsule body
			if len(w.Bodies) >= 48 {
				continue
			}
			w.AddBody(geom.Capsule{R: f.span(0.1, 0.3), HalfLen: f.span(0.1, 0.5)}, f.span(0.5, 2),
				m3.V(f.span(-8, 8), f.span(0.5, 5), f.span(-8, 8)), m3.QIdent, 0, 0)
		case 3: // joint between two existing bodies
			if len(w.Bodies) < 2 {
				continue
			}
			a := int32(int(f.byte()) % len(w.Bodies))
			b := int32(int(f.byte()) % len(w.Bodies))
			if a == b {
				continue
			}
			mid := w.Bodies[a].Pos.Add(w.Bodies[b].Pos).Scale(0.5)
			switch f.byte() % 3 {
			case 0:
				w.AddJoint(joint.NewBall(w.Bodies, a, b, mid))
			case 1:
				w.AddJoint(joint.NewFixed(w.Bodies, a, b, mid))
			default:
				w.AddJoint(joint.NewBreakable(
					joint.NewBall(w.Bodies, a, b, mid), 0, f.span(1e3, 1e5)))
			}
		case 4: // small cloth
			if len(w.Cloths) >= 2 {
				continue
			}
			c := cloth.NewGrid(4, 4, 0.2, m3.V(f.span(-4, 4), f.span(1, 3), f.span(-4, 4)), 0.5)
			if f.byte()%2 == 0 {
				c.PinParticle(0)
			}
			w.AddCloth(c)
		case 5: // arm an existing dynamic geom as an explosive
			if len(w.Geoms) == 0 {
				continue
			}
			gi := int32(int(f.byte()) % len(w.Geoms))
			g := w.Geoms[gi]
			if g == nil || g.Body < 0 || !g.Enabled() || g.Flags.Has(geom.FlagExplosive) {
				continue
			}
			w.MarkExplosive(gi, ExplosiveSpec{
				Radius:   f.span(0.5, 2.5),
				Duration: f.span(0.02, 0.2),
				Impulse:  f.span(1, 15),
			})
		case 6: // disable a geom
			if len(w.Geoms) == 0 {
				continue
			}
			gi := int32(int(f.byte()) % len(w.Geoms))
			if g := w.Geoms[gi]; g != nil && g.Body >= 0 && g.Enabled() {
				w.DisableBodyGeom(gi)
			}
		default: // step burst
			steps := int(f.byte())%4 + 1
			for s := 0; s < steps; s++ {
				w.Step()
			}
		}
	}
	return w
}

// FuzzWorldStep drives random bounded op sequences through the engine
// and cross-checks three determinism oracles on every input:
//
//  1. thread invariance — the same program built and stepped at 1 and
//     3 threads ends in byte-identical snapshots;
//  2. snapshot transparency — forking the 1-thread world mid-run via
//     Restore(Snapshot()) and stepping both copies keeps them
//     byte-identical, profile digest by profile digest;
//  3. encode stability — a snapshot re-encoded through a restore round
//     trip reproduces its exact bytes;
//  4. broad-phase equivalence — the same program run with the
//     incremental SAP passes oracles 1-3 too, and ends with body state
//     bit-identical to the full-sweep run (profile digests differ
//     between implementations only in maintenance counters, so the
//     comparison is on the simulated state itself).
func FuzzWorldStep(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 10, 1, 20, 7, 7, 7})
	f.Add([]byte{0, 100, 1, 30, 3, 0, 1, 2, 7, 5, 2, 9, 9, 9, 7, 7})
	f.Add([]byte{4, 1, 0, 50, 5, 1, 8, 8, 8, 7, 7, 7, 7, 6, 2, 7})
	f.Add(bytes.Repeat([]byte{0, 40, 80, 120, 160, 200, 7, 3, 5, 6, 2, 1, 4}, 8))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			t.Skip("op stream longer than budget")
		}
		w1 := buildFuzzWorld(data, 1, nil)
		wN := buildFuzzWorld(data, 3, nil)

		for i := 0; i < 10; i++ {
			w1.Step()
			wN.Step()
			if w1.Profile.Digest() != wN.Profile.Digest() {
				t.Fatalf("1-thread and 3-thread profiles diverged at step %d", i)
			}
		}
		s1 := w1.Snapshot()
		if !bytes.Equal(s1, wN.Snapshot()) {
			t.Fatal("1-thread and 3-thread end states differ")
		}

		w2 := New()
		if err := w2.Restore(s1); err != nil {
			t.Fatalf("Restore of own snapshot failed: %v", err)
		}
		if !bytes.Equal(w2.Snapshot(), s1) {
			t.Fatal("snapshot not byte-stable through restore")
		}
		for i := 0; i < 8; i++ {
			w1.Step()
			w2.Step()
			if w1.Profile.Digest() != w2.Profile.Digest() {
				t.Fatalf("restored world diverged from original at step %d", i)
			}
		}
		if !bytes.Equal(w1.Snapshot(), w2.Snapshot()) {
			t.Fatal("restored world end state differs from original")
		}

		// Oracle 4: the incremental SAP through the same gauntlet.
		i1 := buildFuzzWorld(data, 1, broadphase.NewIncrementalSAP())
		iN := buildFuzzWorld(data, 3, broadphase.NewIncrementalSAP())
		for i := 0; i < 10; i++ {
			i1.Step()
			iN.Step()
			if i1.Profile.Digest() != iN.Profile.Digest() {
				t.Fatalf("incsap: 1-thread and 3-thread profiles diverged at step %d", i)
			}
		}
		si := i1.Snapshot()
		if !bytes.Equal(si, iN.Snapshot()) {
			t.Fatal("incsap: 1-thread and 3-thread end states differ")
		}
		i2 := New()
		if err := i2.Restore(si); err != nil {
			t.Fatalf("incsap: Restore of own snapshot failed: %v", err)
		}
		if !bytes.Equal(i2.Snapshot(), si) {
			t.Fatal("incsap: snapshot not byte-stable through restore")
		}
		for i := 0; i < 8; i++ {
			i1.Step()
			i2.Step()
			if i1.Profile.Digest() != i2.Profile.Digest() {
				t.Fatalf("incsap: restored world diverged at step %d", i)
			}
		}
		// w1 and i1 have now run the same program for the same number of
		// steps under different broad phases; the simulated state must be
		// bit-identical.
		if len(w1.Bodies) != len(i1.Bodies) {
			t.Fatalf("body count differs between broad phases: %d vs %d", len(w1.Bodies), len(i1.Bodies))
		}
		for bi := range w1.Bodies {
			a, b := w1.Bodies[bi], i1.Bodies[bi]
			if !sameVec(a.Pos, b.Pos) || !sameQuat(a.Rot, b.Rot) ||
				!sameVec(a.LinVel, b.LinVel) || !sameVec(a.AngVel, b.AngVel) {
				t.Fatalf("body %d state differs between full and incremental SAP", bi)
			}
		}
	})
}

// sameVec and sameQuat compare by IEEE-754 bit pattern, so a shared
// NaN cannot mask (or fake) a divergence the way float equality would.
func sameVec(a, b m3.Vec) bool {
	return math.Float64bits(a.X) == math.Float64bits(b.X) &&
		math.Float64bits(a.Y) == math.Float64bits(b.Y) &&
		math.Float64bits(a.Z) == math.Float64bits(b.Z)
}

func sameQuat(a, b m3.Quat) bool {
	return math.Float64bits(a.W) == math.Float64bits(b.W) &&
		math.Float64bits(a.X) == math.Float64bits(b.X) &&
		math.Float64bits(a.Y) == math.Float64bits(b.Y) &&
		math.Float64bits(a.Z) == math.Float64bits(b.Z)
}
