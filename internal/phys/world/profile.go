package world

import (
	"math"

	"github.com/parallax-arch/parallax/internal/phys/broadphase"
	"github.com/parallax-arch/parallax/internal/phys/cloth"
	"github.com/parallax-arch/parallax/internal/phys/narrowphase"
	"github.com/parallax-arch/parallax/internal/phys/solver"
)

// Phase identifies one of the five computational phases (paper Fig 1).
type Phase int

// The five phases. Broad-phase and Island Creation are the serial
// phases; the other three exploit parallelism within the phase.
const (
	PhaseBroad Phase = iota
	PhaseNarrow
	PhaseIslandGen
	PhaseIslandProc
	PhaseCloth
	NumPhases
)

var phaseNames = [...]string{
	"Broadphase", "Narrowphase", "Island Creation", "Island Processing", "Cloth",
}

func (p Phase) String() string {
	if p < 0 || int(p) >= len(phaseNames) {
		return "unknown"
	}
	return phaseNames[p]
}

// Serial reports whether the phase is one of the hard-to-parallelize
// (serial) phases.
func (p Phase) Serial() bool { return p == PhaseBroad || p == PhaseIslandGen }

// IslandStat summarizes one island for the profile. DOF is the number of
// constraint rows — the island's fine-grain task count.
type IslandStat struct {
	Bodies   int
	Joints   int
	Contacts int
	DOF      int
}

// StepProfile records everything the architecture model needs about one
// simulation step: phase-level work counters and the fine-grain task
// structure.
//
// The Islands and ClothVerts slices are backed by World-owned scratch
// storage that the next Step reuses; copy them (or go through
// FrameProfile.Add, which does) before stepping again if they must
// outlive the step. The RecordDetail slices (PairList, ContactGeoms,
// IslandBodies, IslandRowsOf) are freshly allocated every step and safe
// to retain.
type StepProfile struct {
	// Pairs is the candidate pair count out of the broad phase (the
	// narrow phase's fine-grain task count).
	Pairs int
	// Contacts is the number of contact points generated.
	Contacts int

	Broad  broadphase.Stats
	Narrow narrowphase.Stats
	// FindSteps counts union-find work in island creation.
	FindSteps int
	// Islands lists per-island statistics.
	Islands []IslandStat
	Solver  solver.Stats
	// Cloth aggregates cloth work across all cloth objects.
	Cloth cloth.Stats
	// ClothVerts lists each cloth's vertex count (its FG task count).
	ClothVerts []int

	// Event counters.
	Explosions  int
	FractureHit int
	JointBreaks int
	// BodiesIntegrated counts forward-stepped bodies.
	BodiesIntegrated int

	// Detail below is populated only when World.RecordDetail is set; the
	// architecture model uses it to synthesize memory reference streams
	// over the actual entities touched.
	PairList     []broadphase.Pair
	ContactGeoms [][2]int32
	IslandBodies [][]int32
	IslandRowsOf [][]int32 // per island: the joint ids contributing rows
}

// reset clears the profile for the next step, keeping the capacity of
// the scratch-backed slices.
//
//paraxlint:noalloc
func (p *StepProfile) reset() {
	islands := p.Islands[:0]
	clothVerts := p.ClothVerts[:0]
	*p = StepProfile{Islands: islands, ClothVerts: clothVerts}
}

// AppendIslandDOFs appends the per-island fine-grain task counts to dst
// and returns the extended slice. It allocates only when dst lacks
// capacity, so profiling loops can reuse one buffer across steps.
//
//paraxlint:noalloc
func (p *StepProfile) AppendIslandDOFs(dst []int) []int {
	for _, is := range p.Islands {
		dst = append(dst, is.DOF)
	}
	return dst
}

// IslandDOFs returns the per-island fine-grain task counts in a fresh
// slice. Hot loops should use AppendIslandDOFs with a reused buffer.
func (p *StepProfile) IslandDOFs() []int {
	return p.AppendIslandDOFs(make([]int, 0, len(p.Islands)))
}

// Digest returns a 64-bit FNV-1a hash over the profile's counters and
// per-island statistics — everything the step records except the
// RecordDetail slices. Two steps that did identical work produce the
// same digest, so comparing digests step by step is how record-replay
// detects the first divergence between two runs.
func (p *StepProfile) Digest() uint64 {
	const offset = 14695981039346656037
	const prime = 1099511628211
	h := uint64(offset)
	mix := func(v uint64) {
		h = (h ^ v) * prime
	}
	mix(uint64(p.Pairs))
	mix(uint64(p.Contacts))
	mix(uint64(p.Broad.Geoms))
	mix(uint64(p.Broad.AABBUpdates))
	mix(uint64(p.Broad.SortOps))
	mix(uint64(p.Broad.OverlapTests))
	mix(uint64(p.Broad.PairsOut))
	mix(uint64(p.Narrow.PairsTested))
	mix(uint64(p.Narrow.ContactsOut))
	mix(uint64(p.Narrow.TriTests))
	mix(uint64(p.Narrow.PrimTests))
	mix(math.Float64bits(p.Narrow.DeepestDepth))
	mix(uint64(p.FindSteps))
	mix(uint64(len(p.Islands)))
	for i := range p.Islands {
		is := &p.Islands[i]
		mix(uint64(is.Bodies))
		mix(uint64(is.Joints))
		mix(uint64(is.Contacts))
		mix(uint64(is.DOF))
	}
	mix(uint64(p.Solver.Rows))
	mix(uint64(p.Solver.Iterations))
	mix(uint64(p.Solver.RowUpdates))
	mix(uint64(p.Cloth.VertexUpdates))
	mix(uint64(p.Cloth.ConstraintUpdates))
	mix(uint64(p.Cloth.CollisionTests))
	mix(uint64(p.Cloth.RayCasts))
	mix(uint64(len(p.ClothVerts)))
	for _, v := range p.ClothVerts {
		mix(uint64(v))
	}
	mix(uint64(p.Explosions))
	mix(uint64(p.FractureHit))
	mix(uint64(p.JointBreaks))
	mix(uint64(p.BodiesIntegrated))
	return h
}

// FrameProfile aggregates the steps of one rendered frame (the paper
// runs 3 simulation steps per 30 FPS frame).
type FrameProfile struct {
	Steps []StepProfile
}

// Add appends a step profile, deep-copying the scratch-backed slices so
// the frame record stays valid across subsequent steps.
func (f *FrameProfile) Add(s StepProfile) {
	if len(s.Islands) > 0 {
		s.Islands = append([]IslandStat(nil), s.Islands...)
	}
	if len(s.ClothVerts) > 0 {
		s.ClothVerts = append([]int(nil), s.ClothVerts...)
	}
	f.Steps = append(f.Steps, s)
}

// TotalPairs returns the frame's total narrow-phase task count.
func (f *FrameProfile) TotalPairs() int {
	n := 0
	for _, s := range f.Steps {
		n += s.Pairs
	}
	return n
}

// TotalContacts returns the frame's contact count.
func (f *FrameProfile) TotalContacts() int {
	n := 0
	for _, s := range f.Steps {
		n += s.Contacts
	}
	return n
}

// MaxIslands returns the worst-case per-step island count.
func (f *FrameProfile) MaxIslands() int {
	m := 0
	for _, s := range f.Steps {
		if len(s.Islands) > m {
			m = len(s.Islands)
		}
	}
	return m
}
