package world

import (
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

func TestExplosionChainReaction(t *testing.T) {
	// Two bombs: the first detonates on ground contact; its blast pushes
	// a ball into the second bomb, which then detonates too.
	w := groundWorld()
	_, bombA := w.AddBody(geom.Sphere{R: 0.3}, 1, m3.V(0, 0.29, 0), m3.QIdent, 0, 0)
	w.MarkExplosive(bombA, ExplosiveSpec{Radius: 3, Duration: 0.05, Impulse: 120})
	// The messenger ball sits between the bombs, off the ground so its
	// own ground contact doesn't matter.
	ball, _ := w.AddBody(geom.Sphere{R: 0.3}, 1, m3.V(1.5, 0.31, 0), m3.QIdent, 0, 0)
	_, bombB := w.AddBody(geom.Sphere{R: 0.3}, 1, m3.V(4.2, 0.6, 0), m3.QIdent, 0, 0)
	w.Bodies[w.Geoms[bombB].Body].Enabled = true
	// B floats (kinematic) so it only explodes when the ball arrives.
	w.Bodies[w.Geoms[bombB].Body].SetMass(0, m3.Mat{})
	w.MarkExplosive(bombB, ExplosiveSpec{Radius: 2, Duration: 0.05, Impulse: 50})

	total := 0
	for i := 0; i < 300 && total < 2; i++ {
		w.Step()
		total += w.Profile.Explosions
	}
	if total < 2 {
		t.Fatalf("chain reaction incomplete: %d explosions", total)
	}
	if !w.Bodies[ball].Valid() {
		t.Error("messenger ball state invalid")
	}
}

func TestDebrisParticipatesAfterFracture(t *testing.T) {
	// Once a prefractured brick shatters, its debris must generate pairs
	// and contacts of its own (it lands on the ground).
	w := groundWorld()
	_, pg := w.AddBody(geom.Box{Half: m3.V(0.5, 0.5, 0.5)}, 4, m3.V(0, 0.5, 0), m3.QIdent, 0, 0)
	var debris []int32
	for i := 0; i < 4; i++ {
		off := m3.V(float64(i%2)*0.5-0.25, 0.75, float64(i/2)*0.5-0.25)
		_, dg := w.AddBody(geom.Box{Half: m3.V(0.25, 0.25, 0.25)}, 1, off, m3.QIdent, geom.FlagDebris, 0)
		w.DisableBodyGeom(dg)
		debris = append(debris, dg)
	}
	w.RegisterFracture(pg, debris)
	_, bomb := w.AddBody(geom.Sphere{R: 0.2}, 1, m3.V(0.75, 0.19, 0), m3.QIdent, 0, 0)
	w.MarkExplosive(bomb, ExplosiveSpec{Radius: 2.5, Duration: 0.05, Impulse: 20})

	for i := 0; i < 10; i++ {
		w.Step()
	}
	if !w.Fractures[0].Broken {
		t.Fatal("brick did not shatter")
	}
	// Debris settles onto the ground under gravity.
	for i := 0; i < 300; i++ {
		w.Step()
	}
	for _, dg := range debris {
		b := w.Bodies[w.Geoms[dg].Body]
		if !b.Valid() {
			t.Fatal("debris state invalid")
		}
		if b.Pos.Y < 0.1 || b.Pos.Y > 2 {
			t.Errorf("debris did not settle plausibly: y=%v", b.Pos.Y)
		}
	}
}

func TestBenchmarkStyleDeterminism(t *testing.T) {
	// Two identical worlds stepped identically stay bit-identical —
	// required for reproducible workload capture.
	build := func() *World {
		w := groundWorld()
		for i := 0; i < 15; i++ {
			w.AddBody(geom.Box{Half: m3.V(0.3, 0.3, 0.3)}, 1,
				m3.V(float64(i%4)*0.7, 0.5+float64(i/4)*0.7, 0), m3.QIdent, 0, 0)
		}
		return w
	}
	w1, w2 := build(), build()
	for i := 0; i < 120; i++ {
		w1.Step()
		w2.Step()
	}
	for i := range w1.Bodies {
		if w1.Bodies[i].Pos != w2.Bodies[i].Pos {
			t.Fatalf("body %d diverged between identical runs", i)
		}
		if w1.Bodies[i].Rot != w2.Bodies[i].Rot {
			t.Fatalf("body %d orientation diverged", i)
		}
	}
}

func TestThreadCountChangeMidRun(t *testing.T) {
	// Resizing the worker pool between steps must be safe.
	w := groundWorld()
	for i := 0; i < 10; i++ {
		w.AddBody(geom.Sphere{R: 0.4}, 1, m3.V(float64(i)*0.7, 1, 0), m3.QIdent, 0, 0)
	}
	for _, th := range []int{1, 4, 2, 8, 1} {
		w.Threads = th
		for i := 0; i < 5; i++ {
			w.Step()
		}
	}
	for _, b := range w.Bodies {
		if !b.Valid() {
			t.Fatal("invalid body after pool resizing")
		}
	}
}

func TestBlastDoesNotMoveStatics(t *testing.T) {
	w := groundWorld()
	s := w.AddStatic(geom.Box{Half: m3.V(0.5, 0.5, 0.5)}, m3.V(1.2, 0.5, 0), m3.QIdent)
	_, bomb := w.AddBody(geom.Sphere{R: 0.3}, 1, m3.V(0, 0.29, 0), m3.QIdent, 0, 0)
	w.MarkExplosive(bomb, ExplosiveSpec{Radius: 3, Duration: 0.05, Impulse: 100})
	before := w.Geoms[s].Pos
	for i := 0; i < 20; i++ {
		w.Step()
	}
	if w.Geoms[s].Pos != before {
		t.Error("blast displaced a static obstacle")
	}
}

func TestExplosiveOnlyDetonatesOnce(t *testing.T) {
	w := groundWorld()
	_, bomb := w.AddBody(geom.Sphere{R: 0.3}, 1, m3.V(0, 0.29, 0), m3.QIdent, 0, 0)
	w.MarkExplosive(bomb, ExplosiveSpec{Radius: 2, Duration: 0.05, Impulse: 10})
	total := 0
	for i := 0; i < 60; i++ {
		w.Step()
		total += w.Profile.Explosions
	}
	if total != 1 {
		t.Errorf("bomb detonated %d times", total)
	}
	// The consumed bomb's geom stays disabled.
	if w.Geoms[bomb].Enabled() {
		t.Error("exploded geom re-enabled")
	}
}
