package body

import (
	"math"
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

func unitSphereBody(mass float64) *Body {
	return New(mass, geom.Sphere{R: 1}.Inertia(mass))
}

func TestFreeFall(t *testing.T) {
	b := unitSphereBody(2)
	g := m3.V(0, -9.81, 0)
	const dt = 0.01
	for i := 0; i < 100; i++ {
		b.AddForce(g.Scale(b.Mass))
		b.IntegrateVelocity(dt)
		b.IntegratePosition(dt)
	}
	// After 1s of semi-implicit Euler: v = g*t exactly, y ~= -g t^2 / 2.
	if !vecClose(b.LinVel, g, 1e-9) {
		t.Errorf("velocity after 1s = %v, want %v", b.LinVel, g)
	}
	wantY := -9.81 * 0.5 * (1 + 0.01) // semi-implicit offset of dt/2
	if math.Abs(b.Pos.Y-wantY) > 1e-6 {
		t.Errorf("position after 1s = %v, want %v", b.Pos.Y, wantY)
	}
}

func vecClose(a, b m3.Vec, tol float64) bool { return a.Sub(b).Len() <= tol }

func TestImmovableBody(t *testing.T) {
	b := New(0, m3.Mat{})
	b.AddForce(m3.V(100, 100, 100))
	b.IntegrateVelocity(0.01)
	b.IntegratePosition(0.01)
	if b.Pos != m3.Zero || b.LinVel != m3.Zero {
		t.Errorf("immovable body moved: %+v", b)
	}
}

func TestApplyImpulseLinear(t *testing.T) {
	b := unitSphereBody(4)
	b.ApplyImpulse(m3.V(8, 0, 0), b.Pos)
	if !vecClose(b.LinVel, m3.V(2, 0, 0), 1e-12) {
		t.Errorf("LinVel = %v, want (2,0,0)", b.LinVel)
	}
	if b.AngVel.Len() > 1e-12 {
		t.Errorf("central impulse should not spin body: %v", b.AngVel)
	}
}

func TestApplyImpulseOffCenterSpins(t *testing.T) {
	b := unitSphereBody(1)
	b.ApplyImpulse(m3.V(0, 1, 0), b.Pos.Add(m3.V(1, 0, 0)))
	if b.AngVel.Len() < 1e-9 {
		t.Error("off-center impulse should produce spin")
	}
	// Torque axis: r x j = (1,0,0) x (0,1,0) = (0,0,1).
	if b.AngVel.Z <= 0 {
		t.Errorf("spin axis wrong: %v", b.AngVel)
	}
}

func TestVelocityAt(t *testing.T) {
	b := unitSphereBody(1)
	b.LinVel = m3.V(1, 0, 0)
	b.AngVel = m3.V(0, 0, 2)
	v := b.VelocityAt(b.Pos.Add(m3.V(0, 1, 0)))
	// v = lin + w x r = (1,0,0) + (0,0,2)x(0,1,0) = (1,0,0) + (-2,0,0)
	if !vecClose(v, m3.V(-1, 0, 0), 1e-12) {
		t.Errorf("VelocityAt = %v, want (-1,0,0)", v)
	}
}

func TestTorqueFreePrecessionConservesEnergy(t *testing.T) {
	// A tumbling box with no external forces should approximately
	// conserve kinetic energy under small steps.
	b := New(2, geom.Box{Half: m3.V(0.1, 0.2, 0.4)}.Inertia(2))
	b.AngVel = m3.V(3, 5, 1)
	e0 := b.KineticEnergy()
	for i := 0; i < 2000; i++ {
		b.IntegratePosition(0.0005)
	}
	e1 := b.KineticEnergy()
	if math.Abs(e1-e0)/e0 > 0.05 {
		t.Errorf("energy drifted: %v -> %v", e0, e1)
	}
	if !b.Valid() {
		t.Error("body state became invalid")
	}
}

func TestInvInertiaWorldRotates(t *testing.T) {
	b := New(1, geom.Box{Half: m3.V(1, 0.1, 0.1)}.Inertia(1))
	i0 := b.InvInertiaWorld()
	// Rotate 90 degrees about Z: X and Y diagonal entries swap.
	b.Rot = m3.QFromAxisAngle(m3.V(0, 0, 1), math.Pi/2)
	i1 := b.InvInertiaWorld()
	if math.Abs(i0.M[0][0]-i1.M[1][1]) > 1e-9 || math.Abs(i0.M[1][1]-i1.M[0][0]) > 1e-9 {
		t.Errorf("world inertia did not rotate:\n%v\n%v", i0, i1)
	}
}

func TestSleepWake(t *testing.T) {
	b := unitSphereBody(1)
	b.LinVel = m3.V(0.001, 0, 0)
	for i := 0; i < 100; i++ {
		b.UpdateSleep(0.01)
	}
	if !b.Asleep {
		t.Fatal("slow body should fall asleep after SleepDelay")
	}
	if b.LinVel != m3.Zero {
		t.Error("sleeping body should have zero velocity")
	}
	b.Wake()
	if b.Asleep {
		t.Error("Wake failed")
	}
	// A fast body never sleeps.
	b.LinVel = m3.V(5, 0, 0)
	for i := 0; i < 100; i++ {
		b.UpdateSleep(0.01)
	}
	if b.Asleep {
		t.Error("fast body fell asleep")
	}
}

func TestMomentum(t *testing.T) {
	b := unitSphereBody(3)
	b.LinVel = m3.V(1, 2, 3)
	if !vecClose(b.Momentum(), m3.V(3, 6, 9), 1e-12) {
		t.Errorf("Momentum = %v", b.Momentum())
	}
	s := New(0, m3.Mat{})
	s.LinVel = m3.V(1, 0, 0)
	if s.Momentum() != m3.Zero {
		t.Error("immovable body momentum should be zero")
	}
}

func TestAddForceAtMatchesImpulse(t *testing.T) {
	// Integrating AddForceAt(f, p) over dt should match ApplyImpulse(f*dt, p).
	p := m3.V(0.5, 0.25, -0.3)
	f := m3.V(2, -1, 4)
	const dt = 0.01

	b1 := unitSphereBody(2)
	b1.AddForceAt(f, p)
	b1.IntegrateVelocity(dt)

	b2 := unitSphereBody(2)
	b2.ApplyImpulse(f.Scale(dt), p)

	if !vecClose(b1.LinVel, b2.LinVel, 1e-12) || !vecClose(b1.AngVel, b2.AngVel, 1e-12) {
		t.Errorf("force/impulse mismatch: %v/%v vs %v/%v", b1.LinVel, b1.AngVel, b2.LinVel, b2.AngVel)
	}
}
