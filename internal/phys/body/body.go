// Package body implements rigid-body state and integration: mass and
// inertia bookkeeping, force/torque accumulation, and the semi-implicit
// Euler forward step used by the engine's island-processing phase.
package body

import (
	"math"

	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// Body is a rigid body. Bodies are identified by index within the world;
// static geometry has no body.
type Body struct {
	// ID is the body's index in the world body list.
	ID int

	// Pos is the world position of the center of mass.
	Pos m3.Vec
	// Rot is the orientation quaternion (kept unit-length).
	Rot m3.Quat
	// LinVel and AngVel are the world-frame velocities.
	LinVel m3.Vec
	AngVel m3.Vec

	// Mass and InvMass. InvMass zero makes a body kinematic/immovable.
	Mass    float64
	InvMass float64
	// Inertia and InvInertia are in the body frame.
	Inertia    m3.Mat
	InvInertia m3.Mat

	// Force and Torque accumulate over a step and are cleared afterward.
	Force  m3.Vec
	Torque m3.Vec

	// Enabled bodies take part in simulation; disabled bodies (debris
	// not yet activated, consumed explosives) are skipped everywhere.
	Enabled bool

	// idleTime accumulates seconds below the sleep thresholds.
	idleTime float64
	// Asleep bodies skip integration until disturbed.
	Asleep bool
}

// New returns an enabled body at the origin with the given mass
// properties. inertia is the body-frame inertia tensor.
func New(mass float64, inertia m3.Mat) *Body {
	b := &Body{
		Rot:     m3.QIdent,
		Enabled: true,
	}
	b.SetMass(mass, inertia)
	return b
}

// SetMass sets the mass and body-frame inertia tensor. A non-positive
// mass makes the body immovable.
func (b *Body) SetMass(mass float64, inertia m3.Mat) {
	b.Mass = mass
	b.Inertia = inertia
	if mass <= 0 {
		b.InvMass = 0
		b.InvInertia = m3.Mat{}
		return
	}
	b.InvMass = 1 / mass
	b.InvInertia = inertia.Inverse()
}

// InvInertiaWorld returns the inverse inertia tensor rotated into the
// world frame: R * Iinv * R^T.
func (b *Body) InvInertiaWorld() m3.Mat {
	r := b.Rot.Mat()
	return r.Mul(b.InvInertia).Mul(r.Transpose())
}

// AddForce accumulates a world-frame force through the center of mass.
//
//paraxlint:noalloc
func (b *Body) AddForce(f m3.Vec) { b.Force = b.Force.Add(f) }

// AddTorque accumulates a world-frame torque.
//
//paraxlint:noalloc
func (b *Body) AddTorque(t m3.Vec) { b.Torque = b.Torque.Add(t) }

// AddForceAt accumulates a world-frame force applied at world point p.
//
//paraxlint:noalloc
func (b *Body) AddForceAt(f, p m3.Vec) {
	b.Force = b.Force.Add(f)
	b.Torque = b.Torque.Add(p.Sub(b.Pos).Cross(f))
}

// ApplyImpulse changes velocity instantaneously by a world impulse j
// applied at world point p.
//
//paraxlint:noalloc
func (b *Body) ApplyImpulse(j, p m3.Vec) {
	b.LinVel = b.LinVel.Add(j.Scale(b.InvMass))
	b.AngVel = b.AngVel.Add(b.InvInertiaWorld().MulVec(p.Sub(b.Pos).Cross(j)))
}

// VelocityAt returns the world velocity of the material point of b at
// world position p.
func (b *Body) VelocityAt(p m3.Vec) m3.Vec {
	return b.LinVel.Add(b.AngVel.Cross(p.Sub(b.Pos)))
}

// IntegrateVelocity applies the accumulated forces over dt using
// semi-implicit Euler, then clears the accumulators.
func (b *Body) IntegrateVelocity(dt float64) {
	if b.InvMass == 0 || !b.Enabled {
		b.ClearAccumulators()
		return
	}
	b.LinVel = b.LinVel.Add(b.Force.Scale(b.InvMass * dt))
	b.AngVel = b.AngVel.Add(b.InvInertiaWorld().MulVec(b.Torque).Scale(dt))
	b.ClearAccumulators()
}

// IntegratePosition advances position and orientation over dt from the
// current velocities.
func (b *Body) IntegratePosition(dt float64) {
	if b.InvMass == 0 || !b.Enabled {
		return
	}
	b.Pos = b.Pos.Add(b.LinVel.Scale(dt))
	b.Rot = b.Rot.Integrate(b.AngVel, dt)
}

// ClearAccumulators zeroes the force and torque accumulators.
func (b *Body) ClearAccumulators() {
	b.Force = m3.Zero
	b.Torque = m3.Zero
}

// Sleep thresholds: a body idle below these speeds for SleepDelay
// seconds is put to sleep.
const (
	SleepLinVel = 0.04
	SleepAngVel = 0.06
	SleepDelay  = 0.5
)

// UpdateSleep advances the body's sleep state by dt and returns whether
// the body is now asleep. Immovable bodies never sleep (they are never
// integrated anyway).
func (b *Body) UpdateSleep(dt float64) bool {
	if b.InvMass == 0 || !b.Enabled {
		return false
	}
	if b.LinVel.Len2() < SleepLinVel*SleepLinVel && b.AngVel.Len2() < SleepAngVel*SleepAngVel {
		b.idleTime += dt
		if b.idleTime >= SleepDelay {
			b.Asleep = true
			b.LinVel = m3.Zero
			b.AngVel = m3.Zero
		}
	} else {
		b.idleTime = 0
		b.Asleep = false
	}
	return b.Asleep
}

// Wake clears the sleep state.
//
//paraxlint:noalloc
func (b *Body) Wake() {
	b.Asleep = false
	b.idleTime = 0
}

// SleepClock returns the accumulated idle time driving the sleep
// decision — part of the body's dynamic state, exposed so snapshots can
// capture it.
func (b *Body) SleepClock() float64 { return b.idleTime }

// SetSleepClock restores the idle-time accumulator (snapshot restore).
func (b *Body) SetSleepClock(t float64) { b.idleTime = t }

// KineticEnergy returns the body's kinetic energy.
func (b *Body) KineticEnergy() float64 {
	if b.InvMass == 0 {
		return 0
	}
	lin := 0.5 * b.Mass * b.LinVel.Len2()
	// w . (R I R^T w)
	r := b.Rot.Mat()
	iw := r.Mul(b.Inertia).Mul(r.Transpose()).MulVec(b.AngVel)
	ang := 0.5 * b.AngVel.Dot(iw)
	return lin + ang
}

// Momentum returns the linear momentum m*v.
func (b *Body) Momentum() m3.Vec {
	if b.InvMass == 0 {
		return m3.Zero
	}
	return b.LinVel.Scale(b.Mass)
}

// Valid reports whether the body state is finite. Used by stability
// tests and the engine's invariant checks.
func (b *Body) Valid() bool {
	return b.Pos.IsFinite() && b.LinVel.IsFinite() && b.AngVel.IsFinite() &&
		b.Rot.IsFinite() && !math.IsNaN(b.Mass)
}
