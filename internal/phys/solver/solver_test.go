package solver

import (
	"math"
	"math/rand"
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/body"
	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/joint"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

func sphereBody(id int, mass float64, pos m3.Vec) *body.Body {
	b := body.New(mass, geom.Sphere{R: 0.5}.Inertia(mass))
	b.ID = id
	b.Pos = pos
	return b
}

var testParams = joint.Params{Dt: 0.01, ERP: 0.2, CFM: 1e-9}

func TestContactStopsApproach(t *testing.T) {
	// A ball falling onto the static ground: after solving, the approach
	// velocity along the normal must be non-negative (plus bias).
	b := sphereBody(0, 1, m3.V(0, 0.45, 0))
	b.LinVel = m3.V(0, -3, 0)
	bs := []*body.Body{b}
	n := m3.V(0, 1, 0) // normal pushes body B (the ball) up; A is world
	rows := joint.ContactRows(bs, -1, 0, m3.V(0, 0, 0), n, 0.05,
		joint.DefaultMaterial, testParams, 0, nil)
	s := New()
	var st Stats
	s.Solve(bs, rows, testParams.Dt, nil, &st, nil)
	if b.LinVel.Y < 0 {
		t.Errorf("ball still approaching ground after solve: vy = %v", b.LinVel.Y)
	}
	if st.Rows != 3 || st.RowUpdates != 60 {
		t.Errorf("stats = %+v", st)
	}
}

func TestContactRestitutionBounces(t *testing.T) {
	b := sphereBody(0, 1, m3.V(0, 0.45, 0))
	b.LinVel = m3.V(0, -10, 0) // fast: above restitution threshold
	bs := []*body.Body{b}
	mat := joint.ContactMaterial{Mu: 0, Restitution: 0.8, RestitutionThreshold: 0.5}
	rows := joint.ContactRows(bs, -1, 0, m3.Zero, m3.V(0, 1, 0), 0.01, mat, testParams, 0, nil)
	New().Solve(bs, rows, testParams.Dt, nil, nil, nil)
	if b.LinVel.Y < 7.5 || b.LinVel.Y > 8.5 {
		t.Errorf("bounce velocity = %v, want ~8", b.LinVel.Y)
	}
}

func TestFrictionBoundedByNormal(t *testing.T) {
	// A sliding box on the ground: friction impulse must not exceed
	// mu * normal impulse.
	b := sphereBody(0, 1, m3.V(0, 0.5, 0))
	b.LinVel = m3.V(5, -1, 0)
	bs := []*body.Body{b}
	mat := joint.ContactMaterial{Mu: 0.5}
	rows := joint.ContactRows(bs, -1, 0, m3.V(0, 0, 0), m3.V(0, 1, 0), 0.001, mat, testParams, 0, nil)
	lam := New().Solve(bs, rows, testParams.Dt, nil, nil, nil)
	fr := math.Hypot(lam[1], lam[2])
	if fr > mat.Mu*lam[0]*math.Sqrt2+1e-9 {
		t.Errorf("friction %v exceeds mu*normal %v", fr, mat.Mu*lam[0])
	}
	// Sliding should be slowed, not reversed.
	if b.LinVel.X < 0 || b.LinVel.X > 5 {
		t.Errorf("tangential velocity = %v", b.LinVel.X)
	}
}

func TestBallJointHoldsBodies(t *testing.T) {
	// Two spheres connected at their midpoint; pulling them apart should
	// be resisted: after the solve, relative velocity at the anchor ~ 0.
	a := sphereBody(0, 1, m3.V(-0.5, 0, 0))
	b := sphereBody(1, 1, m3.V(0.5, 0, 0))
	bs := []*body.Body{a, b}
	j := joint.NewBall(bs, 0, 1, m3.V(0, 0, 0))
	a.LinVel = m3.V(-1, 0, 0)
	b.LinVel = m3.V(1, 0, 0)
	rows := j.Rows(bs, testParams, 0, nil)
	if len(rows) != 3 {
		t.Fatalf("ball joint rows = %d, want 3", len(rows))
	}
	New().Solve(bs, rows, testParams.Dt, nil, nil, nil)
	va := a.VelocityAt(m3.Zero)
	vb := b.VelocityAt(m3.Zero)
	if va.Sub(vb).Len() > 1e-6 {
		t.Errorf("anchor velocities differ after solve: %v vs %v", va, vb)
	}
}

func TestBallJointConservesMomentum(t *testing.T) {
	a := sphereBody(0, 2, m3.V(-0.5, 0, 0))
	b := sphereBody(1, 3, m3.V(0.5, 0, 0))
	bs := []*body.Body{a, b}
	a.LinVel = m3.V(4, 1, 0)
	b.LinVel = m3.V(-2, 0, 1)
	p0 := a.Momentum().Add(b.Momentum())
	j := joint.NewBall(bs, 0, 1, m3.Zero)
	rows := j.Rows(bs, testParams, 0, nil)
	New().Solve(bs, rows, testParams.Dt, nil, nil, nil)
	p1 := a.Momentum().Add(b.Momentum())
	if p1.Sub(p0).Len() > 1e-9 {
		t.Errorf("internal constraint changed momentum: %v -> %v", p0, p1)
	}
}

func TestHingeRemovesOffAxisRotation(t *testing.T) {
	a := sphereBody(0, 1, m3.V(0, 0, 0))
	b := sphereBody(1, 1, m3.V(1, 0, 0))
	bs := []*body.Body{a, b}
	axis := m3.V(0, 0, 1)
	j := joint.NewHinge(bs, 0, 1, m3.V(0.5, 0, 0), axis)
	if j.NumRows() != 5 {
		t.Fatalf("hinge rows = %d", j.NumRows())
	}
	// Give B angular velocity off-axis; hinge should cancel the off-axis
	// relative part.
	b.AngVel = m3.V(3, 2, 1)
	rows := j.Rows(bs, testParams, 0, nil)
	New().Solve(bs, rows, testParams.Dt, nil, nil, nil)
	rel := b.AngVel.Sub(a.AngVel)
	off := rel.Sub(axis.Scale(rel.Dot(axis)))
	if off.Len() > 1e-4 {
		t.Errorf("off-axis relative spin remains: %v", off)
	}
}

func TestFixedWeldStopsRelativeMotion(t *testing.T) {
	a := sphereBody(0, 1, m3.V(0, 0, 0))
	b := sphereBody(1, 1, m3.V(1, 0, 0))
	bs := []*body.Body{a, b}
	j := joint.NewFixed(bs, 0, 1, m3.V(0.5, 0, 0))
	b.LinVel = m3.V(0, 2, 0)
	b.AngVel = m3.V(1, 1, 1)
	rows := j.Rows(bs, testParams, 0, nil)
	if len(rows) != 6 {
		t.Fatalf("fixed joint rows = %d, want 6", len(rows))
	}
	New().Solve(bs, rows, testParams.Dt, nil, nil, nil)
	if rel := b.AngVel.Sub(a.AngVel); rel.Len() > 1e-4 {
		t.Errorf("relative spin remains: %v", rel)
	}
	va := a.VelocityAt(m3.V(0.5, 0, 0))
	vb := b.VelocityAt(m3.V(0.5, 0, 0))
	if va.Sub(vb).Len() > 1e-4 {
		t.Errorf("anchor velocity mismatch: %v vs %v", va, vb)
	}
}

func TestSliderAllowsAxialMotion(t *testing.T) {
	a := sphereBody(0, 1, m3.V(0, 0, 0))
	b := sphereBody(1, 1, m3.V(1, 0, 0))
	bs := []*body.Body{a, b}
	axis := m3.V(1, 0, 0)
	j := joint.NewSlider(bs, 0, 1, m3.V(0.5, 0, 0), axis)
	b.LinVel = m3.V(2, 3, 0) // axial + lateral
	rows := j.Rows(bs, testParams, 0, nil)
	New().Solve(bs, rows, testParams.Dt, nil, nil, nil)
	// A slider locks relative rotation and lateral anchor motion; the
	// assembly may still rotate jointly, so compare anchor velocities,
	// not center velocities.
	if relW := b.AngVel.Sub(a.AngVel); relW.Len() > 1e-4 {
		t.Errorf("relative spin remains: %v", relW)
	}
	anchor := m3.V(0.5, 0, 0)
	rel := b.VelocityAt(anchor).Sub(a.VelocityAt(anchor))
	if math.Abs(rel.Y) > 1e-4 || math.Abs(rel.Z) > 1e-4 {
		t.Errorf("lateral anchor motion remains: %v", rel)
	}
	if rel.X < 0.5 {
		t.Errorf("axial motion should be preserved: %v", rel)
	}
}

func TestBreakableJoint(t *testing.T) {
	a := sphereBody(0, 1, m3.V(0, 0, 0))
	b := sphereBody(1, 1, m3.V(1, 0, 0))
	bs := []*body.Body{a, b}
	inner := joint.NewBall(bs, 0, 1, m3.V(0.5, 0, 0))
	br := joint.NewBreakable(inner, 10, 0)
	if br.NumRows() != 3 {
		t.Fatalf("breakable rows = %d", br.NumRows())
	}
	if br.ApplyLoad(5) || br.Broken {
		t.Error("joint broke below threshold")
	}
	if !br.ApplyLoad(15) || !br.Broken {
		t.Error("joint did not break above threshold")
	}
	if rows := br.Rows(bs, testParams, 0, nil); len(rows) != 0 {
		t.Error("broken joint still produces rows")
	}
	if br.NumRows() != 0 {
		t.Error("broken joint reports rows")
	}
}

func TestBreakableFatigue(t *testing.T) {
	a := sphereBody(0, 1, m3.Zero)
	bs := []*body.Body{a}
	_ = bs
	br := joint.NewBreakable(joint.NewBall(bs, 0, -1, m3.Zero), 0, 100)
	for i := 0; i < 9; i++ {
		if br.ApplyLoad(11) && br.Fatigue <= 100 {
			t.Fatalf("broke early at accumulated load %v", br.Fatigue)
		}
	}
	// 9 * 11 = 99 <= 100: still intact; the 10th application breaks it.
	if br.Broken {
		t.Fatal("joint broke before exceeding fatigue limit")
	}
	if !br.ApplyLoad(11) || !br.Broken {
		t.Error("fatigue accumulation did not break joint")
	}
}

func TestJointLoadFeedback(t *testing.T) {
	a := sphereBody(0, 1, m3.V(-0.5, 0, 0))
	b := sphereBody(1, 1, m3.V(0.5, 0, 0))
	bs := []*body.Body{a, b}
	j := joint.NewBall(bs, 0, 1, m3.Zero)
	a.LinVel = m3.V(-10, 0, 0)
	b.LinVel = m3.V(10, 0, 0)
	rows := j.Rows(bs, testParams, 4, nil)
	load := make([]float64, 5)
	New().Solve(bs, rows, testParams.Dt, load, nil, nil)
	if load[4] <= 0 {
		t.Errorf("joint load not recorded: %v", load)
	}
}

// A reused Workspace must give the same answer as a fresh solve and,
// once grown, make repeated solves allocation-free.
func TestWorkspaceReuse(t *testing.T) {
	mkRows := func(bs []*body.Body) []joint.Row {
		return joint.ContactRows(bs, -1, 0, m3.Zero, m3.V(0, 1, 0), 0.01,
			joint.DefaultMaterial, testParams, 0, nil)
	}
	fresh := sphereBody(0, 1, m3.V(0, 0.45, 0))
	fresh.LinVel = m3.V(0, -3, 0)
	want := New().Solve([]*body.Body{fresh}, mkRows([]*body.Body{fresh}),
		testParams.Dt, nil, nil, nil)

	ws := &Workspace{}
	// Dirty the workspace with a larger unrelated solve first.
	dirty := sphereBody(0, 2, m3.V(0, 0.4, 0))
	dirty.LinVel = m3.V(1, -5, 2)
	dbs := []*body.Body{dirty}
	drows := append(mkRows(dbs), mkRows(dbs)...)
	New().Solve(dbs, drows, testParams.Dt, nil, nil, ws)

	b := sphereBody(0, 1, m3.V(0, 0.45, 0))
	b.LinVel = m3.V(0, -3, 0)
	bs := []*body.Body{b}
	got := New().Solve(bs, mkRows(bs), testParams.Dt, nil, nil, ws)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("lambda[%d]: reused workspace %v, fresh %v", i, got[i], want[i])
		}
	}

	s := New()
	rows := mkRows(bs)
	allocs := testing.AllocsPerRun(50, func() {
		s.Solve(bs, rows, testParams.Dt, nil, nil, ws)
	})
	if allocs > 0 {
		t.Errorf("Solve with grown workspace allocates %v/op, want 0", allocs)
	}
}

func TestSolverEmptyRows(t *testing.T) {
	if lam := New().Solve(nil, nil, 0.01, nil, nil, nil); lam != nil {
		t.Error("empty solve should return nil")
	}
}

// Property test: the solver never produces non-finite state, whatever
// random constraint soup it is given.
func TestSolverRobustToRandomRows(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(6)
		var bs []*body.Body
		for i := 0; i < n; i++ {
			b := sphereBody(i, 0.5+r.Float64()*5, m3.V(r.Float64()*4, r.Float64()*4, r.Float64()*4))
			b.LinVel = m3.V(r.Float64()*10-5, r.Float64()*10-5, r.Float64()*10-5)
			bs = append(bs, b)
		}
		var rows []joint.Row
		for k := 0; k < 3+r.Intn(10); k++ {
			a := int32(r.Intn(n))
			bidx := int32(r.Intn(n))
			d := m3.V(r.Float64()*2-1, r.Float64()*2-1, r.Float64()*2-1).Norm()
			if d == m3.Zero {
				d = m3.V(1, 0, 0)
			}
			rows = append(rows, joint.Row{
				BodyA: a, BodyB: bidx,
				JLinA: d.Neg(), JLinB: d,
				JAngA: m3.V(r.Float64(), r.Float64(), r.Float64()),
				JAngB: m3.V(r.Float64(), r.Float64(), r.Float64()),
				RHS:   r.Float64()*4 - 2,
				CFM:   1e-9,
				Lo:    math.Inf(-1), Hi: math.Inf(1),
				FrictionOf: -1, Joint: -1,
			})
		}
		lam := New().Solve(bs, rows, 0.01, nil, nil, nil)
		for i, l := range lam {
			if math.IsNaN(l) || math.IsInf(l, 0) {
				t.Fatalf("trial %d: lambda[%d] = %v", trial, i, l)
			}
		}
		for i, b := range bs {
			if !b.Valid() {
				t.Fatalf("trial %d: body %d invalid after solve", trial, i)
			}
		}
	}
}

// Warm starting must preserve the solution of an already-converged
// system: re-solving with the previous impulses yields (nearly) no
// further velocity change.
func TestWarmStartIdempotent(t *testing.T) {
	b := sphereBody(0, 1, m3.V(0, 0.45, 0))
	b.LinVel = m3.V(0, -3, 0)
	bs := []*body.Body{b}
	rows := joint.ContactRows(bs, -1, 0, m3.Zero, m3.V(0, 1, 0), 0.01,
		joint.DefaultMaterial, testParams, 0, nil)
	lam := New().Solve(bs, rows, testParams.Dt, nil, nil, nil)

	// Second solve on a fresh body with the same approach velocity, warm
	// started with the converged impulses: one sweep suffices.
	b2 := sphereBody(0, 1, m3.V(0, 0.45, 0))
	b2.LinVel = m3.V(0, -3, 0)
	bs2 := []*body.Body{b2}
	rows2 := joint.ContactRows(bs2, -1, 0, m3.Zero, m3.V(0, 1, 0), 0.01,
		joint.DefaultMaterial, testParams, 0, nil)
	for i := range rows2 {
		rows2[i].Warm = lam[i]
	}
	one := &Solver{Iterations: 1, SOR: 1}
	one.Solve(bs2, rows2, testParams.Dt, nil, nil, nil)
	if math.Abs(b2.LinVel.Y-b.LinVel.Y) > 0.05 {
		t.Errorf("warm-started single sweep %v differs from converged %v",
			b2.LinVel.Y, b.LinVel.Y)
	}
}
