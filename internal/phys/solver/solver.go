// Package solver implements the island-processing constraint solver: a
// projected Gauss–Seidel (successive over-relaxation) iteration over the
// mixed linear complementarity problem built from an island's constraint
// rows, in the style of ODE's quickstep. Each row update is one
// fine-grain task in the ParallAX model ("degrees of freedom removed in
// the LCP solver", paper section 7).
package solver

import (
	"math"

	"github.com/parallax-arch/parallax/internal/phys/body"
	"github.com/parallax-arch/parallax/internal/phys/joint"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// Solver holds the iteration parameters. The paper uses 20 iterations
// per step as recommended by the ODE user guide.
type Solver struct {
	// Iterations is the number of relaxation sweeps per solve.
	Iterations int
	// SOR is the successive over-relaxation factor (1 = pure
	// Gauss-Seidel; ODE quickstep uses ~0.9–1.3).
	SOR float64
}

// New returns a solver with the paper's parameters.
func New() *Solver { return &Solver{Iterations: 20, SOR: 1.0} }

// Stats reports the work done by one Solve call.
type Stats struct {
	Rows       int
	Iterations int
	// RowUpdates = Rows * Iterations, the fine-grain task-instance count.
	RowUpdates int

	// Residual is the summed absolute post-iteration row error (the
	// complementarity-aware |RHS - J·v - CFM·λ|, zeroed where the row is
	// clamped at a bound pushing outward). A converged solve is near
	// zero; a blowup is the solver-health signal the anomaly detector
	// watches. Deterministic: accumulated in row order per island.
	Residual float64
	// ImpulseNorm is the summed |λ| over all rows — the total applied
	// impulse magnitude this solve.
	ImpulseNorm float64
}

// Workspace holds the per-row temporaries one Solve call needs. A
// caller that steps repeatedly keeps one Workspace per worker thread and
// passes it back in, so steady-state solving does not allocate: the
// slices grow to the largest island seen and are then reused.
type Workspace struct {
	pLinA, pAngA []m3.Vec
	pLinB, pAngB []m3.Vec
	invDen       []float64
	lambda       []float64
}

// grow resizes the workspace for n rows, reusing prior capacity.
func (ws *Workspace) grow(n int) {
	if cap(ws.lambda) < n {
		// Capacity growth to the largest island seen, then reused forever.
		ws.pLinA = make([]m3.Vec, n)   //paraxlint:allow(parsafe)
		ws.pAngA = make([]m3.Vec, n)   //paraxlint:allow(parsafe)
		ws.pLinB = make([]m3.Vec, n)   //paraxlint:allow(parsafe)
		ws.pAngB = make([]m3.Vec, n)   //paraxlint:allow(parsafe)
		ws.invDen = make([]float64, n) //paraxlint:allow(parsafe)
		ws.lambda = make([]float64, n) //paraxlint:allow(parsafe)
		return
	}
	ws.pLinA = ws.pLinA[:n]
	ws.pAngA = ws.pAngA[:n]
	ws.pLinB = ws.pLinB[:n]
	ws.pAngB = ws.pAngB[:n]
	ws.invDen = ws.invDen[:n]
	ws.lambda = ws.lambda[:n]
	for i := range ws.lambda {
		ws.pLinA[i] = m3.Zero
		ws.pAngA[i] = m3.Zero
		ws.pLinB[i] = m3.Zero
		ws.pAngB[i] = m3.Zero
		ws.invDen[i] = 0
		ws.lambda[i] = 0
	}
}

// Solve runs the PGS iteration for one island's rows, mutating body
// velocities in place. jointLoad, if non-nil, is indexed by joint id and
// accumulates the constraint force magnitude per joint (for breakable
// joints). ws, if non-nil, provides reusable per-row storage; the
// returned impulse slice aliases it and is valid until the workspace's
// next Solve. A nil ws allocates a temporary workspace.
func (s *Solver) Solve(bs []*body.Body, rows []joint.Row, dt float64,
	jointLoad []float64, st *Stats, ws *Workspace) []float64 {

	n := len(rows)
	if st != nil {
		st.Rows += n
		st.Iterations = s.Iterations
		st.RowUpdates += n * s.Iterations
	}
	if n == 0 {
		return nil
	}
	if ws == nil {
		ws = &Workspace{} //paraxlint:allow(parsafe) convenience fallback; the engine always passes a workspace
	}
	ws.grow(n)
	pLinA, pAngA := ws.pLinA, ws.pAngA
	pLinB, pAngB := ws.pLinB, ws.pAngB
	invDen, lambda := ws.invDen, ws.lambda

	// Precompute per-row propagation vectors and effective masses.
	for i := range rows {
		r := &rows[i]
		den := r.CFM
		if r.BodyA >= 0 {
			a := bs[r.BodyA]
			pLinA[i] = r.JLinA.Scale(a.InvMass)
			pAngA[i] = a.InvInertiaWorld().MulVec(r.JAngA)
			den += r.JLinA.Dot(pLinA[i]) + r.JAngA.Dot(pAngA[i])
		}
		if r.BodyB >= 0 {
			b := bs[r.BodyB]
			pLinB[i] = r.JLinB.Scale(b.InvMass)
			pAngB[i] = b.InvInertiaWorld().MulVec(r.JAngB)
			den += r.JLinB.Dot(pLinB[i]) + r.JAngB.Dot(pAngB[i])
		}
		if den < m3.Eps {
			invDen[i] = 0
		} else {
			invDen[i] = 1 / den
		}
	}

	// Warm starting: re-apply the previous step's impulses so the
	// iteration starts near the converged solution (persistent contact
	// manifolds make stacks converge in far fewer sweeps).
	for i := range rows {
		r := &rows[i]
		if r.Warm == 0 {
			continue
		}
		lambda[i] = r.Warm
		if r.BodyA >= 0 {
			a := bs[r.BodyA]
			a.LinVel = a.LinVel.Add(pLinA[i].Scale(r.Warm))
			a.AngVel = a.AngVel.Add(pAngA[i].Scale(r.Warm))
		}
		if r.BodyB >= 0 {
			b := bs[r.BodyB]
			b.LinVel = b.LinVel.Add(pLinB[i].Scale(r.Warm))
			b.AngVel = b.AngVel.Add(pAngB[i].Scale(r.Warm))
		}
	}
	for it := 0; it < s.Iterations; it++ {
		for i := range rows {
			r := &rows[i]
			// Current constraint velocity.
			vel := 0.0
			if r.BodyA >= 0 {
				a := bs[r.BodyA]
				vel += r.JLinA.Dot(a.LinVel) + r.JAngA.Dot(a.AngVel)
			}
			if r.BodyB >= 0 {
				b := bs[r.BodyB]
				vel += r.JLinB.Dot(b.LinVel) + r.JAngB.Dot(b.AngVel)
			}
			dl := s.SOR * (r.RHS - vel - r.CFM*lambda[i]) * invDen[i]

			lo, hi := r.Lo, r.Hi
			if r.FrictionOf >= 0 {
				limit := r.Mu * math.Abs(lambda[r.FrictionOf])
				lo, hi = -limit, limit
			}
			old := lambda[i]
			nl := old + dl
			if nl < lo {
				nl = lo
			} else if nl > hi {
				nl = hi
			}
			dl = nl - old
			if dl == 0 {
				continue
			}
			lambda[i] = nl

			if r.BodyA >= 0 {
				a := bs[r.BodyA]
				a.LinVel = a.LinVel.Add(pLinA[i].Scale(dl))
				a.AngVel = a.AngVel.Add(pAngA[i].Scale(dl))
			}
			if r.BodyB >= 0 {
				b := bs[r.BodyB]
				b.LinVel = b.LinVel.Add(pLinB[i].Scale(dl))
				b.AngVel = b.AngVel.Add(pAngB[i].Scale(dl))
			}
		}
	}

	if jointLoad != nil {
		for i := range rows {
			r := &rows[i]
			if r.Joint >= 0 && int(r.Joint) < len(jointLoad) {
				jointLoad[r.Joint] += math.Abs(lambda[i]) / dt
			}
		}
	}

	// Convergence diagnostics: one more pass over the rows measuring the
	// residual the iteration left behind. A row clamped at a bound with
	// the error pushing further out of bounds is satisfied by
	// complementarity, not a solver failure, so its error is zeroed.
	if st != nil {
		for i := range rows {
			r := &rows[i]
			vel := 0.0
			if r.BodyA >= 0 {
				a := bs[r.BodyA]
				vel += r.JLinA.Dot(a.LinVel) + r.JAngA.Dot(a.AngVel)
			}
			if r.BodyB >= 0 {
				b := bs[r.BodyB]
				vel += r.JLinB.Dot(b.LinVel) + r.JAngB.Dot(b.AngVel)
			}
			err := r.RHS - vel - r.CFM*lambda[i]
			lo, hi := r.Lo, r.Hi
			if r.FrictionOf >= 0 {
				limit := r.Mu * math.Abs(lambda[r.FrictionOf])
				lo, hi = -limit, limit
			}
			if lambda[i] <= lo && err < 0 {
				err = 0
			}
			if lambda[i] >= hi && err > 0 {
				err = 0
			}
			st.Residual += math.Abs(err)
			st.ImpulseNorm += math.Abs(lambda[i])
		}
	}
	return lambda
}
