package cloth

import (
	"math"
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

var gravity = m3.V(0, -9.81, 0)

func step(c *Cloth, dt float64, geoms ...*geom.Geom) {
	c.Integrate(dt, gravity)
	c.Relax()
	for _, g := range geoms {
		c.CollideGeom(g)
	}
	c.UpdateBox()
}

func TestGridConstruction(t *testing.T) {
	c := NewGrid(5, 5, 0.1, m3.Zero, 1)
	if c.NumVertices() != 25 {
		t.Fatalf("vertices = %d, want 25", c.NumVertices())
	}
	// Structural: 4*5*2 = 40; shear: 4*4*2 = 32.
	if len(c.Constraints) != 72 {
		t.Errorf("constraints = %d, want 72", len(c.Constraints))
	}
	if len(c.Tris) != 32 {
		t.Errorf("tris = %d, want 32", len(c.Tris))
	}
	if c.MaxStretch() > 1e-12 {
		t.Errorf("fresh grid should be unstretched: %v", c.MaxStretch())
	}
}

func TestFreeFallingCloth(t *testing.T) {
	c := NewGrid(5, 5, 0.1, m3.V(0, 2, 0), 1)
	y0 := c.Particles[12].Pos.Y
	for i := 0; i < 50; i++ {
		step(c, 0.01)
	}
	y1 := c.Particles[12].Pos.Y
	if y1 >= y0-0.5 {
		t.Errorf("cloth did not fall: %v -> %v", y0, y1)
	}
	// Free fall should not stretch the cloth much.
	if c.MaxStretch() > 0.05 {
		t.Errorf("free-falling cloth stretched: %v", c.MaxStretch())
	}
}

func TestHangingClothStabilizes(t *testing.T) {
	c := NewGrid(8, 8, 0.1, m3.V(0, 2, 0), 0.5)
	// Pin the two top corners (row z=0).
	c.PinParticle(0)
	c.PinParticle(7)
	for i := 0; i < 300; i++ {
		step(c, 0.01)
	}
	// Pinned particles have not moved.
	if c.Particles[0].Pos.Dist(m3.V(0, 2, 0)) > 1e-9 {
		t.Errorf("pinned particle moved: %v", c.Particles[0].Pos)
	}
	// The cloth hangs below its pins.
	low := c.Particles[63].Pos.Y
	if low >= 2 {
		t.Errorf("cloth bottom did not drop below pins: %v", low)
	}
	// Constraints keep the mesh together under moderate stretch.
	if c.MaxStretch() > 0.30 {
		t.Errorf("hanging cloth over-stretched: %v", c.MaxStretch())
	}
	// Motion has largely stopped.
	v := c.Particles[63].Pos.Sub(c.Particles[63].Prev).Len() / 0.01
	if v > 0.5 {
		t.Errorf("cloth still swinging at %v m/s", v)
	}
}

func TestClothOnPlane(t *testing.T) {
	c := NewGrid(6, 6, 0.1, m3.V(0, 0.5, 0), 1)
	ground := &geom.Geom{
		Shape: geom.Plane{Normal: m3.V(0, 1, 0), Offset: 0},
		Rot:   m3.Ident, Body: -1, Flags: geom.FlagStatic,
	}
	ground.UpdateAABB()
	for i := 0; i < 200; i++ {
		step(c, 0.01, ground)
	}
	for i, p := range c.Particles {
		if p.Pos.Y < c.Thickness-1e-6 {
			t.Fatalf("particle %d sank through the ground: %v", i, p.Pos.Y)
		}
	}
}

func TestClothDrapesOverSphere(t *testing.T) {
	c := NewGrid(10, 10, 0.1, m3.V(-0.45, 1.0, -0.45), 1)
	ball := &geom.Geom{Shape: geom.Sphere{R: 0.4}, Pos: m3.V(0, 0.4, 0), Rot: m3.Ident, Body: -1}
	ball.UpdateAABB()
	for i := 0; i < 300; i++ {
		step(c, 0.01, ball)
	}
	// No particle inside the sphere.
	for i, p := range c.Particles {
		if p.Pos.Dist(ball.Pos) < 0.4-1e-6 {
			t.Fatalf("particle %d inside sphere: dist %v", i, p.Pos.Dist(ball.Pos))
		}
	}
	// The center of the cloth should rest near the top of the sphere.
	top := c.Particles[4*10+4].Pos
	if top.Y < 0.6 {
		t.Errorf("cloth center fell off the sphere: %v", top)
	}
}

func TestClothCollidesBox(t *testing.T) {
	c := NewGrid(8, 8, 0.1, m3.V(-0.35, 1.0, -0.35), 1)
	box := &geom.Geom{Shape: geom.Box{Half: m3.V(0.3, 0.3, 0.3)}, Pos: m3.V(0, 0.3, 0), Rot: m3.Ident, Body: -1}
	box.UpdateAABB()
	for i := 0; i < 300; i++ {
		step(c, 0.01, box)
	}
	for i, p := range c.Particles {
		l := p.Pos.Sub(box.Pos).Abs()
		if l.X < 0.3-1e-6 && l.Y < 0.3-1e-6 && l.Z < 0.3-1e-6 {
			t.Fatalf("particle %d inside box: %v", i, p.Pos)
		}
	}
}

func TestPinToBodyFollows(t *testing.T) {
	c := NewGrid(4, 4, 0.1, m3.Zero, 1)
	c.PinToBody(0, 3, m3.V(0, 0.5, 0))
	pose := func(int32) (m3.Vec, m3.Quat) {
		return m3.V(1, 2, 3), m3.QIdent
	}
	c.SatisfyPins(pose)
	want := m3.V(1, 2.5, 3)
	if c.Particles[0].Pos.Dist(want) > 1e-12 {
		t.Errorf("pinned particle at %v, want %v", c.Particles[0].Pos, want)
	}
}

func TestRayCatchTunneling(t *testing.T) {
	// A particle moving very fast toward a thin box should be stopped by
	// the ray cast, not pass through.
	c := NewGrid(2, 2, 0.05, m3.V(0, 1, 0), 0.1)
	c.Thickness = 0.01
	wall := &geom.Geom{Shape: geom.Box{Half: m3.V(1, 0.05, 1)}, Pos: m3.V(0, 0.5, 0), Rot: m3.Ident, Body: -1}
	wall.UpdateAABB()
	for i := range c.Particles {
		p := &c.Particles[i]
		p.Prev = p.Pos.Add(m3.V(0, 5, 0).Scale(0.01)) // downward velocity 5 m/s
	}
	rayCasts := 0
	for i := 0; i < 30; i++ {
		step(c, 0.01, wall)
		rayCasts += c.LastStats.RayCasts
	}
	for i, p := range c.Particles {
		if p.Pos.Y < 0.45 {
			t.Fatalf("particle %d tunneled through the wall: %v", i, p.Pos.Y)
		}
	}
	if rayCasts == 0 {
		t.Error("fast particles should trigger ray casts")
	}
}

func TestStatsAccumulate(t *testing.T) {
	c := NewGrid(4, 4, 0.1, m3.V(0, 1, 0), 1)
	ground := &geom.Geom{Shape: geom.Plane{Normal: m3.V(0, 1, 0)}, Rot: m3.Ident, Body: -1}
	ground.UpdateAABB()
	step(c, 0.01, ground)
	st := c.LastStats
	if st.VertexUpdates != 16 {
		t.Errorf("vertex updates = %d, want 16", st.VertexUpdates)
	}
	if st.ConstraintUpdates == 0 || st.CollisionTests == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMaxStretchDetectsStretch(t *testing.T) {
	c := NewGrid(2, 2, 1, m3.Zero, 1)
	c.Particles[1].Pos = c.Particles[1].Pos.Add(m3.V(1, 0, 0)) // double an edge
	if s := c.MaxStretch(); math.Abs(s-1) > 1e-9 {
		t.Errorf("MaxStretch = %v, want 1", s)
	}
}
