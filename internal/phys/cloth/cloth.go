// Package cloth implements soft-body simulation largely following
// Jakobsen's position-based approach (paper section 3.2): particles
// integrated with a Verlet scheme, edge-length constraints solved by
// iterative relaxation, and collision resolution by vertex projection
// with ray casting against rigid geoms for fast-moving vertices.
package cloth

import (
	"math"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
	"github.com/parallax-arch/parallax/internal/phys/narrowphase"
)

// Particle is one cloth vertex.
type Particle struct {
	Pos, Prev m3.Vec
	// InvMass zero pins the particle in space (or to a body via Pin).
	InvMass float64
}

// Constraint keeps two particles at their rest distance.
type Constraint struct {
	I, J int32
	Rest float64
}

// Pin attaches particle P rigidly to a body at a local offset; the
// engine updates pinned particles from the body pose each step
// (uniforms attached to virtual humans use this).
type Pin struct {
	P     int32
	Body  int32
	Local m3.Vec
}

// Cloth is one soft-body object: a triangular mesh of particles where
// each edge is a length constraint.
type Cloth struct {
	Particles   []Particle
	Constraints []Constraint
	Tris        []geom.Tri
	Pins        []Pin
	// Iterations is the relaxation count per forward step.
	Iterations int
	// Damping removes a fraction of the Verlet velocity each step.
	Damping float64
	// Thickness is the collision offset kept between cloth vertices and
	// rigid surfaces.
	Thickness float64
	// Friction in [0, 1] is the fraction of tangential velocity removed
	// from a vertex when it is projected out of a rigid surface.
	Friction float64
	// Box is the cloth's bounding volume, refreshed each step; the
	// engine uses it as the cloth's broad-phase proxy.
	Box m3.AABB
	// stats for the architecture model.
	LastStats Stats

	// scr and triBuf are per-cloth collision scratch buffers (a cloth is
	// stepped by one worker at a time, so they are not contended). They
	// are runtime-only state: excluded from snapshots.
	scr    narrowphase.Scratch
	triBuf []int32
}

// Stats counts per-step cloth work.
type Stats struct {
	VertexUpdates     int
	ConstraintUpdates int
	CollisionTests    int
	RayCasts          int
}

// NewGrid builds an nx-by-nz cloth grid in the XZ plane with the given
// spacing, starting at origin, with structural and shear constraints and
// total mass spread evenly over the particles.
func NewGrid(nx, nz int, spacing float64, origin m3.Vec, mass float64) *Cloth {
	c := &Cloth{
		Iterations: 20,
		Damping:    0.01,
		Thickness:  0.02,
		Friction:   0.6,
	}
	invM := float64(nx*nz) / math.Max(mass, 1e-9)
	idx := func(x, z int) int32 { return int32(z*nx + x) }
	for z := 0; z < nz; z++ {
		for x := 0; x < nx; x++ {
			p := origin.Add(m3.V(float64(x)*spacing, 0, float64(z)*spacing))
			c.Particles = append(c.Particles, Particle{Pos: p, Prev: p, InvMass: invM})
		}
	}
	addCon := func(i, j int32) {
		rest := c.Particles[i].Pos.Dist(c.Particles[j].Pos)
		c.Constraints = append(c.Constraints, Constraint{I: i, J: j, Rest: rest})
	}
	for z := 0; z < nz; z++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				addCon(idx(x, z), idx(x+1, z))
			}
			if z+1 < nz {
				addCon(idx(x, z), idx(x, z+1))
			}
			if x+1 < nx && z+1 < nz {
				addCon(idx(x, z), idx(x+1, z+1)) // shear
				addCon(idx(x+1, z), idx(x, z+1)) // shear
				c.Tris = append(c.Tris,
					geom.Tri{idx(x, z), idx(x+1, z), idx(x+1, z+1)},
					geom.Tri{idx(x, z), idx(x+1, z+1), idx(x, z+1)})
			}
		}
	}
	c.UpdateBox()
	return c
}

// PinParticle fixes particle p in space at its current position.
func (c *Cloth) PinParticle(p int32) { c.Particles[p].InvMass = 0 }

// PinToBody attaches particle p to the given body index at local offset.
func (c *Cloth) PinToBody(p, bodyIdx int32, local m3.Vec) {
	c.Particles[p].InvMass = 0
	c.Pins = append(c.Pins, Pin{P: p, Body: bodyIdx, Local: local})
}

// UpdateBox refreshes the cloth bounding volume, expanded by thickness.
func (c *Cloth) UpdateBox() {
	box := m3.EmptyAABB()
	for i := range c.Particles {
		p := c.Particles[i].Pos
		box = box.Union(m3.AABB{Min: p, Max: p})
	}
	c.Box = box.Expand(c.Thickness + 0.05)
}

// Integrate performs the Verlet step for all particles under the given
// acceleration (typically gravity). Each vertex is independent — this is
// the cloth phase's fine-grain parallelism.
func (c *Cloth) Integrate(dt float64, accel m3.Vec) {
	st := &c.LastStats
	*st = Stats{}
	k := 1 - c.Damping
	for i := range c.Particles {
		p := &c.Particles[i]
		if p.InvMass == 0 {
			continue
		}
		vel := p.Pos.Sub(p.Prev).Scale(k)
		next := p.Pos.Add(vel).Add(accel.Scale(dt * dt))
		p.Prev = p.Pos
		p.Pos = next
		st.VertexUpdates++
	}
}

// ApplyBlast kicks every free particle inside the blast sphere at
// center with the given radius: a radial velocity change of magnitude
// impulse*InvMass, scaled down linearly with distance from the center
// (matching the engine's rigid-body shockwave). Verlet state stores
// velocity implicitly as Pos-Prev, so the kick is applied by moving
// Prev backwards along the kick direction. It returns the number of
// particles hit.
//
//paraxlint:noalloc
func (c *Cloth) ApplyBlast(center m3.Vec, radius, impulse, dt float64) int {
	hit := 0
	for i := range c.Particles {
		p := &c.Particles[i]
		if p.InvMass == 0 {
			continue
		}
		d := p.Pos.Sub(center)
		dist := d.Len()
		if dist >= radius {
			continue
		}
		dir := d.Norm()
		if dir == m3.Zero {
			dir = m3.V(0, 1, 0)
		}
		dv := dir.Scale(impulse * (1 - dist/radius) * p.InvMass)
		p.Prev = p.Prev.Sub(dv.Scale(dt))
		hit++
	}
	return hit
}

// Relax runs the constraint relaxation sweeps.
func (c *Cloth) Relax() {
	st := &c.LastStats
	for it := 0; it < c.Iterations; it++ {
		for _, con := range c.Constraints {
			a := &c.Particles[con.I]
			b := &c.Particles[con.J]
			d := b.Pos.Sub(a.Pos)
			dist := d.Len()
			if dist < m3.Eps {
				continue
			}
			w := a.InvMass + b.InvMass
			if w == 0 {
				continue
			}
			corr := d.Scale((dist - con.Rest) / dist / w)
			a.Pos = a.Pos.Add(corr.Scale(a.InvMass))
			b.Pos = b.Pos.Sub(corr.Scale(b.InvMass))
			st.ConstraintUpdates++
		}
	}
}

// CollideGeom projects penetrating particles out of a rigid geom. Fast
// vertices (moving more than the geom's extent) are ray cast from their
// previous position to catch tunneling.
func (c *Cloth) CollideGeom(g *geom.Geom) {
	st := &c.LastStats
	if !c.Box.Overlaps(g.Box) {
		return
	}
	for i := range c.Particles {
		p := &c.Particles[i]
		if p.InvMass == 0 {
			continue
		}
		st.CollisionTests++
		move := p.Pos.Sub(p.Prev)
		dist := move.Len()
		if dist > 4*c.Thickness {
			// Ray cast for tunneling.
			st.RayCasts++
			if hit, ok := c.scr.RayCast(g, p.Prev, move.Scale(1/dist), dist); ok {
				p.Pos = hit.Pos.Add(hit.Normal.Scale(c.Thickness))
				c.applyFriction(p, hit.Normal)
				continue
			}
		}
		before := p.Pos
		c.projectOut(p, g)
		if shift := p.Pos.Sub(before); shift.Len2() > m3.Eps {
			c.applyFriction(p, shift.Norm())
		}
	}
}

// applyFriction rewrites a projected particle's previous position so
// that its implied velocity loses the normal component entirely and a
// Friction fraction of the tangential component (the vertex projection
// scheme's contact response).
func (c *Cloth) applyFriction(p *Particle, n m3.Vec) {
	vel := p.Pos.Sub(p.Prev)
	vt := vel.Sub(n.Scale(vel.Dot(n)))
	p.Prev = p.Pos.Sub(vt.Scale(1 - c.Friction))
}

// projectOut pushes a single particle out of the geom if penetrating.
func (c *Cloth) projectOut(p *Particle, g *geom.Geom) {
	switch s := g.Shape.(type) {
	case geom.Sphere:
		d := p.Pos.Sub(g.Pos)
		dist := d.Len()
		if dist < s.R+c.Thickness {
			n := d.Norm()
			if dist < m3.Eps {
				n = m3.V(0, 1, 0)
			}
			p.Pos = g.Pos.Add(n.Scale(s.R + c.Thickness))
		}
	case geom.Box:
		cl, inside := closestOnBox(p.Pos, g, s)
		if inside {
			p.Pos = cl
			return
		}
		d := p.Pos.Sub(cl)
		if dist := d.Len(); dist < c.Thickness {
			p.Pos = cl.Add(d.Scale(c.Thickness / math.Max(dist, m3.Eps)))
		}
	case geom.Capsule:
		p0, p1 := s.Ends(g.Pos, g.Rot)
		seg := p1.Sub(p0)
		t := p.Pos.Sub(p0).Dot(seg) / math.Max(seg.Len2(), m3.Eps)
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
		axis := p0.Add(seg.Scale(t))
		d := p.Pos.Sub(axis)
		if dist := d.Len(); dist < s.R+c.Thickness {
			n := d.Norm()
			if dist < m3.Eps {
				n = m3.V(0, 1, 0)
			}
			p.Pos = axis.Add(n.Scale(s.R + c.Thickness))
		}
	case geom.Plane:
		if depth := s.Depth(p.Pos); depth < c.Thickness {
			p.Pos = p.Pos.Add(s.Normal.Scale(c.Thickness - depth))
		}
	case *geom.HeightField:
		lx, lz := p.Pos.X-g.Pos.X, p.Pos.Z-g.Pos.Z
		h := s.HeightAt(lx, lz) + g.Pos.Y
		if p.Pos.Y < h+c.Thickness {
			p.Pos.Y = h + c.Thickness
		}
	case *geom.TriMesh:
		// Project onto nearby triangles.
		q := m3.AABBAt(p.Pos.Sub(g.Pos), m3.V(c.Thickness*4, c.Thickness*4, c.Thickness*4))
		c.triBuf = s.TrianglesIn(q, c.triBuf[:0])
		for _, ti := range c.triBuf {
			v0, v1, v2 := s.TriVerts(ti)
			v0, v1, v2 = v0.Add(g.Pos), v1.Add(g.Pos), v2.Add(g.Pos)
			cl := closestPointTri(p.Pos, v0, v1, v2)
			d := p.Pos.Sub(cl)
			if dist := d.Len(); dist < c.Thickness {
				p.Pos = cl.Add(d.Scale(c.Thickness / math.Max(dist, m3.Eps)))
			}
		}
	}
}

// closestOnBox is like the narrow-phase helper but keeps interior
// resolution on the surface.
func closestOnBox(p m3.Vec, g *geom.Geom, b geom.Box) (m3.Vec, bool) {
	l := g.Rot.TMulVec(p.Sub(g.Pos))
	inside := true
	var cl m3.Vec
	for i := 0; i < 3; i++ {
		v := l.Comp(i)
		h := b.Half.Comp(i)
		if v < -h {
			v, inside = -h, false
		} else if v > h {
			v, inside = h, false
		}
		cl = cl.SetComp(i, v)
	}
	if inside {
		// Push to the nearest face.
		bestD := math.Inf(1)
		axis, sign := 0, 1.0
		for i := 0; i < 3; i++ {
			h := b.Half.Comp(i)
			if d := h - l.Comp(i); d < bestD {
				bestD, axis, sign = d, i, 1
			}
			if d := h + l.Comp(i); d < bestD {
				bestD, axis, sign = d, i, -1
			}
		}
		cl = cl.SetComp(axis, sign*b.Half.Comp(axis))
	}
	return g.Rot.MulVec(cl).Add(g.Pos), inside
}

func closestPointTri(p, a, b, cc m3.Vec) m3.Vec {
	// Delegate to the same math as the narrow phase (re-derived here to
	// avoid exporting internals): project onto the plane, clamp to edges.
	ab := b.Sub(a)
	ac := cc.Sub(a)
	n := ab.Cross(ac)
	if n.Len2() < m3.Eps {
		return a
	}
	// Barycentric clamp via the standard region walk.
	ap := p.Sub(a)
	d1, d2 := ab.Dot(ap), ac.Dot(ap)
	if d1 <= 0 && d2 <= 0 {
		return a
	}
	bp := p.Sub(b)
	d3, d4 := ab.Dot(bp), ac.Dot(bp)
	if d3 >= 0 && d4 <= d3 {
		return b
	}
	if vc := d1*d4 - d3*d2; vc <= 0 && d1 >= 0 && d3 <= 0 {
		return a.Add(ab.Scale(d1 / (d1 - d3)))
	}
	cp := p.Sub(cc)
	d5, d6 := ab.Dot(cp), ac.Dot(cp)
	if d6 >= 0 && d5 <= d6 {
		return cc
	}
	if vb := d5*d2 - d1*d6; vb <= 0 && d2 >= 0 && d6 <= 0 {
		return a.Add(ac.Scale(d2 / (d2 - d6)))
	}
	if va := d3*d6 - d5*d4; va <= 0 && (d4-d3) >= 0 && (d5-d6) >= 0 {
		return b.Add(cc.Sub(b).Scale((d4 - d3) / ((d4 - d3) + (d5 - d6))))
	}
	den := 1 / (d1*d4 - d3*d2 + d5*d2 - d1*d6 + d3*d6 - d5*d4)
	_ = den
	// Interior: project onto the plane.
	nn := n.Norm()
	return p.Sub(nn.Scale(p.Sub(a).Dot(nn)))
}

// SatisfyPins re-seats pinned particles; bodyPose returns the world pose
// of a body index.
func (c *Cloth) SatisfyPins(bodyPose func(int32) (m3.Vec, m3.Quat)) {
	for _, pin := range c.Pins {
		//paraxlint:allow(parsafe) bodyPose is World.bodyPose, a pure pose read passed as a func only to avoid an import cycle
		pos, rot := bodyPose(pin.Body)
		w := rot.Rotate(pin.Local).Add(pos)
		p := &c.Particles[pin.P]
		p.Prev = p.Pos
		p.Pos = w
	}
}

// MaxStretch returns the largest constraint strain |len/rest - 1|; a
// well-relaxed cloth keeps this small. Used by tests as an invariant.
func (c *Cloth) MaxStretch() float64 {
	worst := 0.0
	for _, con := range c.Constraints {
		d := c.Particles[con.I].Pos.Dist(c.Particles[con.J].Pos)
		if con.Rest < m3.Eps {
			continue
		}
		s := math.Abs(d/con.Rest - 1)
		if s > worst {
			worst = s
		}
	}
	return worst
}

// NumVertices returns the particle count (the cloth's FG task count).
func (c *Cloth) NumVertices() int { return len(c.Particles) }
