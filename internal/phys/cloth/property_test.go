package cloth

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// totalStrain sums |len - rest| over all constraints.
func totalStrain(c *Cloth) float64 {
	s := 0.0
	for _, con := range c.Constraints {
		d := c.Particles[con.I].Pos.Dist(c.Particles[con.J].Pos)
		if d > con.Rest {
			s += d - con.Rest
		} else {
			s += con.Rest - d
		}
	}
	return s
}

func TestRelaxNeverIncreasesStrain(t *testing.T) {
	// Property: starting from a randomly perturbed grid, a relaxation
	// pass reduces (or preserves) the total constraint violation.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := NewGrid(6, 6, 0.1, m3.Zero, 1)
		for i := range c.Particles {
			c.Particles[i].Pos = c.Particles[i].Pos.Add(m3.V(
				(r.Float64()-0.5)*0.05,
				(r.Float64()-0.5)*0.05,
				(r.Float64()-0.5)*0.05,
			))
		}
		before := totalStrain(c)
		c.Relax()
		after := totalStrain(c)
		return after <= before*1.01
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(5)),
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPinnedParticlesImmobileUnderRelax(t *testing.T) {
	// Property: pinned particles never move during relaxation, however
	// the rest of the mesh is distorted.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := NewGrid(5, 5, 0.1, m3.Zero, 1)
		c.PinParticle(0)
		c.PinParticle(4)
		p0 := c.Particles[0].Pos
		p4 := c.Particles[4].Pos
		for i := range c.Particles {
			if c.Particles[i].InvMass == 0 {
				continue
			}
			c.Particles[i].Pos = c.Particles[i].Pos.Add(m3.V(
				(r.Float64()-0.5)*0.2, (r.Float64()-0.5)*0.2, (r.Float64()-0.5)*0.2))
		}
		c.Relax()
		return c.Particles[0].Pos == p0 && c.Particles[4].Pos == p4
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(6)),
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(r.Int63())
		}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestIntegrateMomentum(t *testing.T) {
	// Verlet with no damping and uniform velocity translates the cloth
	// rigidly: relative geometry is exactly preserved.
	c := NewGrid(4, 4, 0.1, m3.Zero, 1)
	c.Damping = 0
	vel := m3.V(0.3, 0.1, -0.2)
	for i := range c.Particles {
		c.Particles[i].Prev = c.Particles[i].Pos.Sub(vel.Scale(0.01))
	}
	rel0 := c.Particles[5].Pos.Sub(c.Particles[0].Pos)
	for i := 0; i < 10; i++ {
		c.Integrate(0.01, m3.Zero)
	}
	rel1 := c.Particles[5].Pos.Sub(c.Particles[0].Pos)
	if rel0.Sub(rel1).Len() > 1e-12 {
		t.Errorf("uniform motion distorted the mesh: %v vs %v", rel0, rel1)
	}
	moved := c.Particles[0].Pos.Len()
	if moved < 0.02 {
		t.Errorf("cloth did not translate: %v", moved)
	}
}

func TestDampingBleedsVelocity(t *testing.T) {
	c := NewGrid(2, 2, 0.1, m3.Zero, 1)
	c.Damping = 0.1
	for i := range c.Particles {
		c.Particles[i].Prev = c.Particles[i].Pos.Sub(m3.V(0.01, 0, 0))
	}
	for i := 0; i < 100; i++ {
		c.Integrate(0.01, m3.Zero)
	}
	v := c.Particles[0].Pos.Sub(c.Particles[0].Prev).Len() / 0.01
	if v > 0.05 {
		t.Errorf("damped cloth still moving at %v m/s", v)
	}
}
