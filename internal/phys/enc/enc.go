// Package enc implements the little-endian binary encoding used by the
// world snapshot format: a growable Writer and a sticky-error Reader
// over a flat byte slice. Floats are stored as their IEEE-754 bit
// patterns so encoding is byte-stable: the same state always produces
// the same bytes, and a decode-encode round trip is the identity.
//
// Snapshot encoding is a cold path (it never runs inside Step), so the
// package favors clarity over allocation avoidance.
package enc

import (
	"encoding/binary"
	"errors"
	"math"

	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// ErrShort is returned once a Reader runs past the end of its buffer.
var ErrShort = errors.New("enc: buffer too short")

// Writer appends values to a growing byte buffer.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Raw appends b verbatim.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I32 appends a little-endian int32.
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// I64 appends a little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// F64 appends a float64 as its IEEE-754 bit pattern.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Vec appends the three components of a vector.
func (w *Writer) Vec(v m3.Vec) {
	w.F64(v.X)
	w.F64(v.Y)
	w.F64(v.Z)
}

// Quat appends the four components of a quaternion (W first).
func (w *Writer) Quat(q m3.Quat) {
	w.F64(q.W)
	w.F64(q.X)
	w.F64(q.Y)
	w.F64(q.Z)
}

// Mat appends a 3x3 matrix in row-major order.
func (w *Writer) Mat(m m3.Mat) {
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			w.F64(m.M[i][j])
		}
	}
}

// AABB appends the box's min and max corners.
func (w *Writer) AABB(b m3.AABB) {
	w.Vec(b.Min)
	w.Vec(b.Max)
}

// I32s appends a length-prefixed int32 slice.
func (w *Writer) I32s(s []int32) {
	w.U32(uint32(len(s)))
	for _, v := range s {
		w.I32(v)
	}
}

// F64s appends a length-prefixed float64 slice.
func (w *Writer) F64s(s []float64) {
	w.U32(uint32(len(s)))
	for _, v := range s {
		w.F64(v)
	}
}

// Vecs appends a length-prefixed vector slice.
func (w *Writer) Vecs(s []m3.Vec) {
	w.U32(uint32(len(s)))
	for _, v := range s {
		w.Vec(v)
	}
}

// String appends a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader consumes values from a byte buffer. After the first short
// read the error sticks and every subsequent read returns zero values,
// so decode sequences can run unchecked and test Err once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the sticky error, if any.
func (r *Reader) Err() error { return r.err }

// Fail forces the sticky error (used by decoders that detect invalid
// content rather than truncation).
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Offset returns the current read position.
func (r *Reader) Offset() int { return r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf)-r.off < n {
		r.err = ErrShort
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Raw reads n bytes verbatim.
func (r *Reader) Raw(n int) []byte { return r.take(n) }

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I32 reads a little-endian int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Bool reads one byte as a bool.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// F64 reads a float64 from its IEEE-754 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Vec reads a vector.
func (r *Reader) Vec() m3.Vec {
	var v m3.Vec
	v.X = r.F64()
	v.Y = r.F64()
	v.Z = r.F64()
	return v
}

// Quat reads a quaternion (W first).
func (r *Reader) Quat() m3.Quat {
	var q m3.Quat
	q.W = r.F64()
	q.X = r.F64()
	q.Y = r.F64()
	q.Z = r.F64()
	return q
}

// Mat reads a 3x3 matrix in row-major order.
func (r *Reader) Mat() m3.Mat {
	var m m3.Mat
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			m.M[i][j] = r.F64()
		}
	}
	return m
}

// AABB reads a bounding box.
func (r *Reader) AABB() m3.AABB {
	var b m3.AABB
	b.Min = r.Vec()
	b.Max = r.Vec()
	return b
}

// count reads a length prefix, bounding it by the remaining bytes so a
// corrupt length cannot drive a huge allocation: every element of the
// encodings in this package occupies at least one byte.
func (r *Reader) count() int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n > r.Remaining() {
		r.err = ErrShort
		return 0
	}
	return n
}

// I32s reads a length-prefixed int32 slice (nil when empty).
func (r *Reader) I32s() []int32 {
	n := r.count()
	if n == 0 {
		return nil
	}
	s := make([]int32, n)
	for i := range s {
		s[i] = r.I32()
	}
	return s
}

// F64s reads a length-prefixed float64 slice (nil when empty).
func (r *Reader) F64s() []float64 {
	n := r.count()
	if n == 0 {
		return nil
	}
	s := make([]float64, n)
	for i := range s {
		s[i] = r.F64()
	}
	return s
}

// Vecs reads a length-prefixed vector slice (nil when empty).
func (r *Reader) Vecs() []m3.Vec {
	n := r.count()
	if n == 0 {
		return nil
	}
	s := make([]m3.Vec, n)
	for i := range s {
		s[i] = r.Vec()
	}
	return s
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.count()
	if n == 0 {
		return ""
	}
	return string(r.take(n))
}
