package enc

import (
	"math"
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/m3"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	w.U8(0xab)
	w.U16(0xbeef)
	w.U32(0xdeadbeef)
	w.U64(0x0123456789abcdef)
	w.I32(-7)
	w.I64(-1 << 40)
	w.Bool(true)
	w.Bool(false)
	w.F64(math.Copysign(0, -1))
	w.F64(math.Pi)
	w.Vec(m3.V(1, -2, 3))
	w.Quat(m3.Quat{W: 0.5, X: -0.5, Y: 0.5, Z: -0.5})
	w.AABB(m3.AABB{Min: m3.V(-1, -1, -1), Max: m3.V(2, 2, 2)})
	w.I32s([]int32{3, -1, 4})
	w.F64s([]float64{1.5, -2.5})
	w.Vecs([]m3.Vec{{X: 1}, {Y: 2}})
	w.String("hello")

	r := NewReader(w.Bytes())
	if r.U8() != 0xab || r.U16() != 0xbeef || r.U32() != 0xdeadbeef {
		t.Fatal("unsigned round trip failed")
	}
	if r.U64() != 0x0123456789abcdef || r.I32() != -7 || r.I64() != -1<<40 {
		t.Fatal("wide round trip failed")
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bool round trip failed")
	}
	if math.Float64bits(r.F64()) != math.Float64bits(math.Copysign(0, -1)) {
		t.Fatal("negative zero not preserved bit-exactly")
	}
	if r.F64() != math.Pi {
		t.Fatal("float round trip failed")
	}
	if r.Vec() != m3.V(1, -2, 3) {
		t.Fatal("vec round trip failed")
	}
	if (r.Quat() != m3.Quat{W: 0.5, X: -0.5, Y: 0.5, Z: -0.5}) {
		t.Fatal("quat round trip failed")
	}
	bb := r.AABB()
	if bb.Min != m3.V(-1, -1, -1) || bb.Max != m3.V(2, 2, 2) {
		t.Fatal("aabb round trip failed")
	}
	is := r.I32s()
	if len(is) != 3 || is[0] != 3 || is[1] != -1 || is[2] != 4 {
		t.Fatal("i32 slice round trip failed")
	}
	fs := r.F64s()
	if len(fs) != 2 || fs[0] != 1.5 || fs[1] != -2.5 {
		t.Fatal("f64 slice round trip failed")
	}
	vs := r.Vecs()
	if len(vs) != 2 || vs[0].X != 1 || vs[1].Y != 2 {
		t.Fatal("vec slice round trip failed")
	}
	if r.String() != "hello" {
		t.Fatal("string round trip failed")
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d after full read", r.Err(), r.Remaining())
	}
}

// TestReaderShortInput: reads past the end stick an error and return
// zero values instead of panicking, including length-prefixed slices
// whose claimed count exceeds the remaining bytes.
func TestReaderShortInput(t *testing.T) {
	r := NewReader([]byte{0x01})
	if r.U32() != 0 || r.Err() == nil {
		t.Fatal("short U32 read did not error")
	}
	if r.U64() != 0 || r.F64() != 0 || r.String() != "" {
		t.Fatal("reads after sticky error not zero-valued")
	}

	var w Writer
	w.U32(1 << 30) // claims a billion elements
	r = NewReader(w.Bytes())
	if s := r.I32s(); s != nil || r.Err() == nil {
		t.Fatal("oversized count not rejected")
	}
}

func TestMatRoundTrip(t *testing.T) {
	var w Writer
	m := m3.Mat{}
	v := 1.0
	for i := range m.M {
		for j := range m.M[i] {
			m.M[i][j] = v
			v++
		}
	}
	w.Mat(m)
	r := NewReader(w.Bytes())
	if got := r.Mat(); got != m {
		t.Fatalf("mat round trip: got %v want %v", got, m)
	}
}
