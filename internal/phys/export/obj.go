// Package export writes world snapshots as Wavefront OBJ files so
// simulations can be inspected in any 3D viewer — the visual
// verification channel (the paper compiled separate display builds for
// visual verification; this engine dumps geometry instead).
package export

import (
	"fmt"
	"io"
	"math"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// Options controls what gets written.
type Options struct {
	// SkipStatic omits immobile geometry (terrain can dominate a dump).
	SkipStatic bool
	// SkipDisabled omits disabled geoms (unbroken debris).
	SkipDisabled bool
	// SphereSegments controls sphere/capsule tessellation (default 8).
	SphereSegments int
}

// OBJ writes the world's current geometry to w as a Wavefront OBJ.
func OBJ(out io.Writer, w *world.World, opt Options) error {
	if opt.SphereSegments < 3 {
		opt.SphereSegments = 8
	}
	e := &objWriter{out: out, seg: opt.SphereSegments}
	fmt.Fprintln(out, "# parallax world snapshot")
	for gi, g := range w.Geoms {
		if opt.SkipDisabled && !g.Enabled() {
			continue
		}
		if opt.SkipStatic && g.Flags.Has(geom.FlagStatic) {
			continue
		}
		if g.Flags.Has(geom.FlagCloth) || g.Flags.Has(geom.FlagBlast) {
			continue
		}
		fmt.Fprintf(out, "o geom_%d_%s\n", gi, g.Shape.Kind())
		e.shape(g)
		if e.err != nil {
			return e.err
		}
	}
	for ci, c := range w.Cloths {
		fmt.Fprintf(out, "o cloth_%d\n", ci)
		base := e.n
		for i := range c.Particles {
			e.vert(c.Particles[i].Pos)
		}
		for _, t := range c.Tris {
			e.face(base+int(t[0]), base+int(t[1]), base+int(t[2]))
		}
	}
	return e.err
}

type objWriter struct {
	out io.Writer
	n   int // vertices written
	seg int
	err error
}

func (e *objWriter) vert(p m3.Vec) {
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.out, "v %.5f %.5f %.5f\n", p.X, p.Y, p.Z)
	}
	e.n++
}

// face takes zero-based vertex indices.
func (e *objWriter) face(a, b, c int) {
	if e.err == nil {
		_, e.err = fmt.Fprintf(e.out, "f %d %d %d\n", a+1, b+1, c+1)
	}
}

func (e *objWriter) quad(a, b, c, d int) {
	e.face(a, b, c)
	e.face(a, c, d)
}

func (e *objWriter) shape(g *geom.Geom) {
	switch s := g.Shape.(type) {
	case geom.Sphere:
		e.uvSphere(g.Pos, s.R)
	case geom.Box:
		e.box(g, s.Half)
	case geom.Capsule:
		p0, p1 := s.Ends(g.Pos, g.Rot)
		e.uvSphere(p0, s.R)
		e.uvSphere(p1, s.R)
	case *geom.Hull:
		base := e.n
		for _, v := range s.Verts {
			e.vert(g.Rot.MulVec(v).Add(g.Pos))
		}
		for _, f := range s.Faces {
			e.face(base+int(f[0]), base+int(f[1]), base+int(f[2]))
		}
	case geom.Plane:
		// A large quad around the origin projection.
		u, w := s.Normal.Basis()
		c := s.Normal.Scale(s.Offset)
		const ext = 50.0
		base := e.n
		e.vert(c.Add(u.Scale(ext)).Add(w.Scale(ext)))
		e.vert(c.Add(u.Scale(ext)).Sub(w.Scale(ext)))
		e.vert(c.Sub(u.Scale(ext)).Sub(w.Scale(ext)))
		e.vert(c.Sub(u.Scale(ext)).Add(w.Scale(ext)))
		e.quad(base, base+1, base+2, base+3)
	case *geom.HeightField:
		base := e.n
		for z := 0; z < s.NZ; z++ {
			for x := 0; x < s.NX; x++ {
				e.vert(g.Pos.Add(m3.V(float64(x)*s.CellX, s.Heights[z*s.NX+x], float64(z)*s.CellZ)))
			}
		}
		idx := func(x, z int) int { return base + z*s.NX + x }
		for z := 0; z < s.NZ-1; z++ {
			for x := 0; x < s.NX-1; x++ {
				e.quad(idx(x, z), idx(x+1, z), idx(x+1, z+1), idx(x, z+1))
			}
		}
	case *geom.TriMesh:
		base := e.n
		for _, v := range s.Verts {
			e.vert(v.Add(g.Pos))
		}
		for _, t := range s.Tris {
			e.face(base+int(t[0]), base+int(t[1]), base+int(t[2]))
		}
	}
}

// box emits the oriented box's 8 corners and 6 quads.
func (e *objWriter) box(g *geom.Geom, half m3.Vec) {
	base := e.n
	for i := 0; i < 8; i++ {
		c := m3.V(
			half.X*float64(1-2*(i&1)),
			half.Y*float64(1-2*((i>>1)&1)),
			half.Z*float64(1-2*((i>>2)&1)),
		)
		e.vert(g.Rot.MulVec(c).Add(g.Pos))
	}
	quads := [6][4]int{
		{0, 2, 3, 1}, {4, 5, 7, 6}, {0, 1, 5, 4},
		{2, 6, 7, 3}, {0, 4, 6, 2}, {1, 3, 7, 5},
	}
	for _, q := range quads {
		e.quad(base+q[0], base+q[1], base+q[2], base+q[3])
	}
}

// uvSphere emits a latitude/longitude tessellated sphere.
func (e *objWriter) uvSphere(center m3.Vec, r float64) {
	seg := e.seg
	base := e.n
	// Poles plus (seg-1) rings of seg vertices.
	e.vert(center.Add(m3.V(0, r, 0)))
	for ring := 1; ring < seg; ring++ {
		phi := math.Pi * float64(ring) / float64(seg)
		for s := 0; s < seg; s++ {
			theta := 2 * math.Pi * float64(s) / float64(seg)
			e.vert(center.Add(m3.V(
				r*math.Sin(phi)*math.Cos(theta),
				r*math.Cos(phi),
				r*math.Sin(phi)*math.Sin(theta),
			)))
		}
	}
	e.vert(center.Add(m3.V(0, -r, 0)))
	last := e.n - 1
	ringAt := func(ring, s int) int { return base + 1 + (ring-1)*seg + (s % seg) }
	for s := 0; s < seg; s++ {
		e.face(base, ringAt(1, s+1), ringAt(1, s))
	}
	for ring := 1; ring < seg-1; ring++ {
		for s := 0; s < seg; s++ {
			e.quad(ringAt(ring, s), ringAt(ring, s+1), ringAt(ring+1, s+1), ringAt(ring+1, s))
		}
	}
	for s := 0; s < seg; s++ {
		e.face(last, ringAt(seg-1, s), ringAt(seg-1, s+1))
	}
}
