package export

import (
	"bufio"
	"fmt"
	"strings"
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/cloth"
	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

func sceneForExport() *world.World {
	w := world.New()
	w.AddStatic(geom.Plane{Normal: m3.V(0, 1, 0)}, m3.Zero, m3.QIdent)
	w.AddBody(geom.Sphere{R: 0.5}, 1, m3.V(0, 1, 0), m3.QIdent, 0, 0)
	w.AddBody(geom.Box{Half: m3.V(0.3, 0.3, 0.3)}, 1, m3.V(2, 1, 0), m3.QIdent, 0, 0)
	w.AddBody(geom.Capsule{R: 0.2, HalfLen: 0.4}, 1, m3.V(4, 1, 0), m3.QIdent, 0, 0)
	w.AddBody(geom.BoxHull(m3.V(0.3, 0.3, 0.3)), 1, m3.V(6, 1, 0), m3.QIdent, 0, 0)
	hs := make([]float64, 9)
	w.AddStatic(geom.NewHeightField(3, 3, 1, 1, hs), m3.V(8, 0, 0), m3.QIdent)
	w.AddCloth(cloth.NewGrid(4, 4, 0.1, m3.V(0, 2, 0), 0.2))
	return w
}

// parseOBJ validates the file structure and returns vertex/face counts,
// checking every face index is in range.
func parseOBJ(t *testing.T, s string) (verts, faces int) {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(s))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "v "):
			var x, y, z float64
			if _, err := fmt.Sscanf(line, "v %f %f %f", &x, &y, &z); err != nil {
				t.Fatalf("bad vertex line %q: %v", line, err)
			}
			verts++
		case strings.HasPrefix(line, "f "):
			var a, b, c int
			if _, err := fmt.Sscanf(line, "f %d %d %d", &a, &b, &c); err != nil {
				t.Fatalf("bad face line %q: %v", line, err)
			}
			for _, i := range [3]int{a, b, c} {
				if i < 1 || i > verts {
					t.Fatalf("face index %d out of range (verts so far %d)", i, verts)
				}
			}
			faces++
		}
	}
	return verts, faces
}

func TestOBJExportAllShapes(t *testing.T) {
	w := sceneForExport()
	var sb strings.Builder
	if err := OBJ(&sb, w, Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	verts, faces := parseOBJ(t, out)
	if verts < 100 || faces < 100 {
		t.Errorf("export too small: %d verts, %d faces", verts, faces)
	}
	for _, name := range []string{"sphere", "box", "capsule", "hull", "plane", "heightfield", "cloth_0"} {
		if !strings.Contains(out, name) {
			t.Errorf("export missing object %q", name)
		}
	}
}

func TestOBJSkipOptions(t *testing.T) {
	w := sceneForExport()
	var full, noStatic strings.Builder
	if err := OBJ(&full, w, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := OBJ(&noStatic, w, Options{SkipStatic: true}); err != nil {
		t.Fatal(err)
	}
	if noStatic.Len() >= full.Len() {
		t.Error("SkipStatic did not shrink the export")
	}
	if strings.Contains(noStatic.String(), "plane") {
		t.Error("SkipStatic left the ground plane in")
	}
	// Disabled debris skipped.
	_, gi := w.AddBody(geom.Box{Half: m3.V(0.1, 0.1, 0.1)}, 1, m3.V(0, 5, 0), m3.QIdent, geom.FlagDebris, 0)
	w.DisableBodyGeom(gi)
	var noDisabled strings.Builder
	if err := OBJ(&noDisabled, w, Options{SkipDisabled: true}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(noDisabled.String(), fmt.Sprintf("geom_%d_", gi)) {
		t.Error("SkipDisabled left the disabled geom in")
	}
}

func TestOBJAfterSimulation(t *testing.T) {
	// Export stays valid after the scene has evolved (rotated boxes,
	// moved cloth).
	w := sceneForExport()
	for i := 0; i < 60; i++ {
		w.Step()
	}
	var sb strings.Builder
	if err := OBJ(&sb, w, Options{}); err != nil {
		t.Fatal(err)
	}
	parseOBJ(t, sb.String())
}
