package geom

import (
	"fmt"

	"github.com/parallax-arch/parallax/internal/phys/enc"
)

// Shape serialization for the world snapshot format. The encoding is a
// one-byte kind tag followed by the shape's defining fields.
//
// Derived state is handled per shape so a decode-encode round trip (and
// a restored simulation) is byte-identical to the original:
//
//   - HeightField and TriMesh rebuild their derived state through the
//     public constructors, which recompute it deterministically from the
//     encoded fields.
//   - Hull serializes its derived fields (volume, unit inertia, bounding
//     radius) directly: NewHull re-centers the vertices on the recomputed
//     centroid, and re-running that on already-centered vertices would
//     reproduce the same values only up to floating-point rounding —
//     not bit-exactly.

// Shape kind tags in the snapshot encoding. These are part of the
// serialized format and must never be renumbered; Kind values are
// ordered for narrow-phase dispatch and are not stored directly.
const (
	tagSphere uint8 = iota
	tagBox
	tagCapsule
	tagPlane
	tagHeightField
	tagTriMesh
	tagHull
)

func encodeTris(w *enc.Writer, tris []Tri) {
	w.U32(uint32(len(tris)))
	for _, t := range tris {
		w.I32(t[0])
		w.I32(t[1])
		w.I32(t[2])
	}
}

func decodeTris(r *enc.Reader) []Tri {
	n := int(r.U32())
	if r.Err() != nil || n > r.Remaining() {
		r.Fail(enc.ErrShort)
		return nil
	}
	if n == 0 {
		return nil
	}
	tris := make([]Tri, n)
	for i := range tris {
		tris[i][0] = r.I32()
		tris[i][1] = r.I32()
		tris[i][2] = r.I32()
	}
	return tris
}

// EncodeShape appends the snapshot encoding of s to w. It supports
// every shape kind in the package; an unknown Shape implementation is
// an error.
func EncodeShape(w *enc.Writer, s Shape) error {
	switch sh := s.(type) {
	case Sphere:
		w.U8(tagSphere)
		w.F64(sh.R)
	case Box:
		w.U8(tagBox)
		w.Vec(sh.Half)
	case *Box:
		w.U8(tagBox)
		w.Vec(sh.Half)
	case Capsule:
		w.U8(tagCapsule)
		w.F64(sh.R)
		w.F64(sh.HalfLen)
	case Plane:
		w.U8(tagPlane)
		w.Vec(sh.Normal)
		w.F64(sh.Offset)
	case *HeightField:
		w.U8(tagHeightField)
		w.U32(uint32(sh.NX))
		w.U32(uint32(sh.NZ))
		w.F64(sh.CellX)
		w.F64(sh.CellZ)
		w.F64s(sh.Heights)
	case *TriMesh:
		w.U8(tagTriMesh)
		w.Vecs(sh.Verts)
		encodeTris(w, sh.Tris)
	case *Hull:
		w.U8(tagHull)
		w.Vecs(sh.Verts)
		encodeTris(w, sh.Faces)
		w.F64(sh.volume)
		w.Vec(sh.centroid)
		w.Mat(sh.unitInertia)
		w.F64(sh.radius)
	default:
		return fmt.Errorf("geom: cannot encode shape type %T", s)
	}
	return nil
}

// DecodeShape reads one shape from r. Value shapes (sphere, box,
// capsule, plane) are returned by value; callers that need a mutable
// boxed shape (the world's cloth proxies) re-box the result themselves.
func DecodeShape(r *enc.Reader) (Shape, error) {
	tag := r.U8()
	if err := r.Err(); err != nil {
		return nil, err
	}
	var s Shape
	switch tag {
	case tagSphere:
		s = Sphere{R: r.F64()}
	case tagBox:
		s = Box{Half: r.Vec()}
	case tagCapsule:
		s = Capsule{R: r.F64(), HalfLen: r.F64()}
	case tagPlane:
		s = Plane{Normal: r.Vec(), Offset: r.F64()}
	case tagHeightField:
		nx := int(r.U32())
		nz := int(r.U32())
		cellX := r.F64()
		cellZ := r.F64()
		heights := r.F64s()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if nx < 0 || nz < 0 || nx*nz != len(heights) {
			return nil, fmt.Errorf("geom: heightfield %dx%d does not match %d heights", nx, nz, len(heights))
		}
		s = NewHeightField(nx, nz, cellX, cellZ, heights)
	case tagTriMesh:
		verts := r.Vecs()
		tris := decodeTris(r)
		if err := r.Err(); err != nil {
			return nil, err
		}
		if err := checkTris(tris, len(verts)); err != nil {
			return nil, err
		}
		s = NewTriMesh(verts, tris)
	case tagHull:
		h := &Hull{Verts: r.Vecs(), Faces: decodeTris(r)}
		h.volume = r.F64()
		h.centroid = r.Vec()
		h.unitInertia = r.Mat()
		h.radius = r.F64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if err := checkTris(h.Faces, len(h.Verts)); err != nil {
			return nil, err
		}
		s = h
	default:
		return nil, fmt.Errorf("geom: unknown shape tag %d", tag)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// checkTris validates triangle vertex indices against the vertex count,
// so a corrupt snapshot fails decoding instead of panicking later.
func checkTris(tris []Tri, nverts int) error {
	for _, t := range tris {
		for _, vi := range t {
			if vi < 0 || int(vi) >= nverts {
				return fmt.Errorf("geom: triangle index %d out of range (%d verts)", vi, nverts)
			}
		}
	}
	return nil
}
