package geom

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/parallax-arch/parallax/internal/phys/m3"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSphereProperties(t *testing.T) {
	s := Sphere{R: 2}
	if got, want := s.Volume(), 4.0/3.0*math.Pi*8; !approx(got, want, 1e-12) {
		t.Errorf("Volume = %v, want %v", got, want)
	}
	in := s.Inertia(5)
	want := 2.0 / 5.0 * 5 * 4
	if !approx(in.M[0][0], want, 1e-12) || !approx(in.M[1][1], want, 1e-12) {
		t.Errorf("Inertia = %v", in)
	}
	box := s.AABB(m3.V(1, 2, 3), m3.Ident)
	if box.Min != (m3.Vec{X: -1, Y: 0, Z: 1}) || box.Max != (m3.Vec{X: 3, Y: 4, Z: 5}) {
		t.Errorf("AABB = %+v", box)
	}
}

func TestBoxAABBRotated(t *testing.T) {
	b := Box{Half: m3.V(1, 2, 3)}
	// Rotate 90 degrees about X: Y and Z extents swap.
	rot := m3.QFromAxisAngle(m3.V(1, 0, 0), math.Pi/2).Mat()
	box := b.AABB(m3.Zero, rot)
	e := box.Extent()
	if !approx(e.X, 2, 1e-9) || !approx(e.Y, 6, 1e-9) || !approx(e.Z, 4, 1e-9) {
		t.Errorf("rotated box extent = %v", e)
	}
}

func TestBoxAABBAlwaysContainsCorners(t *testing.T) {
	f := func(hx, hy, hz, ax, ay, az, angle float64) bool {
		b := Box{Half: m3.V(math.Abs(hx)+0.1, math.Abs(hy)+0.1, math.Abs(hz)+0.1)}
		q := m3.QFromAxisAngle(m3.V(ax, ay, az).Add(m3.V(0.01, 0, 0)), angle)
		rot := q.Mat()
		pos := m3.V(ax, ay, az)
		box := b.AABB(pos, rot)
		for i := 0; i < 8; i++ {
			c := m3.V(
				b.Half.X*float64(1-2*(i&1)),
				b.Half.Y*float64(1-2*((i>>1)&1)),
				b.Half.Z*float64(1-2*((i>>2)&1)),
			)
			w := rot.MulVec(c).Add(pos)
			if !box.Expand(1e-9).Contains(w) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7)),
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(r.Float64()*4 - 2)
			}
		}}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCapsuleVolumeMatchesLimits(t *testing.T) {
	// A capsule with zero half-length is a sphere.
	c := Capsule{R: 1.5, HalfLen: 0}
	s := Sphere{R: 1.5}
	if !approx(c.Volume(), s.Volume(), 1e-12) {
		t.Errorf("degenerate capsule volume = %v, want %v", c.Volume(), s.Volume())
	}
}

func TestCapsuleEnds(t *testing.T) {
	c := Capsule{R: 0.5, HalfLen: 2}
	p0, p1 := c.Ends(m3.V(1, 1, 1), m3.Ident)
	if p0 != (m3.Vec{X: 1, Y: 1, Z: -1}) || p1 != (m3.Vec{X: 1, Y: 1, Z: 3}) {
		t.Errorf("ends = %v %v", p0, p1)
	}
	box := c.AABB(m3.Zero, m3.Ident)
	if box.Min != (m3.Vec{X: -0.5, Y: -0.5, Z: -2.5}) {
		t.Errorf("capsule AABB min = %v", box.Min)
	}
}

func TestInertiaPositiveDefinite(t *testing.T) {
	shapes := []Shape{
		Sphere{R: 0.5},
		Box{Half: m3.V(0.2, 0.6, 1.0)},
		Capsule{R: 0.3, HalfLen: 0.8},
	}
	for _, s := range shapes {
		in := s.Inertia(3)
		for i := 0; i < 3; i++ {
			if in.M[i][i] <= 0 {
				t.Errorf("%v inertia diagonal %d = %v, want > 0", s.Kind(), i, in.M[i][i])
			}
		}
	}
}

func TestPlaneDepth(t *testing.T) {
	p := Plane{Normal: m3.V(0, 1, 0), Offset: 2}
	if got := p.Depth(m3.V(0, 5, 0)); got != 3 {
		t.Errorf("Depth = %v, want 3", got)
	}
	if got := p.Depth(m3.V(0, 0, 0)); got != -2 {
		t.Errorf("Depth = %v, want -2", got)
	}
}

func TestKindString(t *testing.T) {
	if KindSphere.String() != "sphere" || KindTriMesh.String() != "trimesh" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() != "unknown" {
		t.Error("out-of-range kind should be unknown")
	}
}
