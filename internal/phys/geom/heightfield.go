package geom

import (
	"math"

	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// HeightField is a static terrain shape: a regular grid of heights over
// the local X/Z plane, with the up direction along +Y. The field covers
// [0, (NX-1)*CellX] x [0, (NZ-1)*CellZ] in its local frame; placement is
// by translation only (rotation is ignored, as in ODE's common use).
type HeightField struct {
	NX, NZ       int
	CellX, CellZ float64
	Heights      []float64 // row-major: Heights[z*NX + x]
	minH, maxH   float64
}

// NewHeightField builds a heightfield from a row-major height grid.
// heights must have nx*nz entries.
func NewHeightField(nx, nz int, cellX, cellZ float64, heights []float64) *HeightField {
	hf := &HeightField{NX: nx, NZ: nz, CellX: cellX, CellZ: cellZ, Heights: heights}
	hf.minH, hf.maxH = math.Inf(1), math.Inf(-1)
	for _, h := range heights {
		hf.minH = math.Min(hf.minH, h)
		hf.maxH = math.Max(hf.maxH, h)
	}
	return hf
}

// Kind implements Shape.
func (h *HeightField) Kind() Kind { return KindHeightField }

// AABB implements Shape.
func (h *HeightField) AABB(pos m3.Vec, _ m3.Mat) m3.AABB {
	return m3.AABB{
		Min: pos.Add(m3.V(0, h.minH, 0)),
		Max: pos.Add(m3.V(float64(h.NX-1)*h.CellX, h.maxH, float64(h.NZ-1)*h.CellZ)),
	}
}

// Volume implements Shape.
func (h *HeightField) Volume() float64 { return 0 }

// Inertia implements Shape.
func (h *HeightField) Inertia(float64) m3.Mat { return m3.Mat{} }

// HeightAt returns the interpolated terrain height at local coordinates
// (x, z), clamped to the field's domain.
func (h *HeightField) HeightAt(x, z float64) float64 {
	fx := x / h.CellX
	fz := z / h.CellZ
	ix := int(math.Floor(fx))
	iz := int(math.Floor(fz))
	if ix < 0 {
		ix, fx = 0, 0
	} else if ix >= h.NX-1 {
		ix, fx = h.NX-2, float64(h.NX-1)
	}
	if iz < 0 {
		iz, fz = 0, 0
	} else if iz >= h.NZ-1 {
		iz, fz = h.NZ-2, float64(h.NZ-1)
	}
	tx := fx - float64(ix)
	tz := fz - float64(iz)
	tx = math.Min(math.Max(tx, 0), 1)
	tz = math.Min(math.Max(tz, 0), 1)
	h00 := h.Heights[iz*h.NX+ix]
	h10 := h.Heights[iz*h.NX+ix+1]
	h01 := h.Heights[(iz+1)*h.NX+ix]
	h11 := h.Heights[(iz+1)*h.NX+ix+1]
	return h00*(1-tx)*(1-tz) + h10*tx*(1-tz) + h01*(1-tx)*tz + h11*tx*tz
}

// NormalAt returns the outward (up-facing) terrain normal at local
// coordinates (x, z), from central differences of the height function.
func (h *HeightField) NormalAt(x, z float64) m3.Vec {
	d := math.Min(h.CellX, h.CellZ) * 0.5
	dhdx := (h.HeightAt(x+d, z) - h.HeightAt(x-d, z)) / (2 * d)
	dhdz := (h.HeightAt(x, z+d) - h.HeightAt(x, z-d)) / (2 * d)
	return m3.V(-dhdx, 1, -dhdz).Norm()
}
