package geom

import (
	"math/rand"
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/m3"
)

func flatField(nx, nz int, h float64) *HeightField {
	hs := make([]float64, nx*nz)
	for i := range hs {
		hs[i] = h
	}
	return NewHeightField(nx, nz, 1, 1, hs)
}

func TestHeightFieldFlat(t *testing.T) {
	hf := flatField(4, 4, 2.5)
	for _, p := range [][2]float64{{0, 0}, {1.5, 2.5}, {3, 3}, {-1, 10}} {
		if got := hf.HeightAt(p[0], p[1]); !approx(got, 2.5, 1e-12) {
			t.Errorf("HeightAt(%v) = %v, want 2.5", p, got)
		}
	}
	n := hf.NormalAt(1.5, 1.5)
	if !approx(n.Y, 1, 1e-9) {
		t.Errorf("flat normal = %v", n)
	}
}

func TestHeightFieldInterpolation(t *testing.T) {
	// A ramp rising along X: h = x.
	hs := []float64{0, 1, 2, 0, 1, 2}
	hf := NewHeightField(3, 2, 1, 1, hs)
	if got := hf.HeightAt(0.5, 0.5); !approx(got, 0.5, 1e-12) {
		t.Errorf("ramp height = %v, want 0.5", got)
	}
	if got := hf.HeightAt(1.75, 0.25); !approx(got, 1.75, 1e-12) {
		t.Errorf("ramp height = %v, want 1.75", got)
	}
	n := hf.NormalAt(1, 0.5)
	if n.X >= 0 || n.Y <= 0 {
		t.Errorf("ramp normal should tilt back along -X: %v", n)
	}
}

func TestHeightFieldAABB(t *testing.T) {
	hs := []float64{0, 3, -1, 2}
	hf := NewHeightField(2, 2, 2, 2, hs)
	box := hf.AABB(m3.V(10, 0, 10), m3.Ident)
	if !approx(box.Min.Y, -1, 1e-12) || !approx(box.Max.Y, 3, 1e-12) {
		t.Errorf("AABB heights = %v..%v", box.Min.Y, box.Max.Y)
	}
	if !approx(box.Min.X, 10, 1e-12) || !approx(box.Max.X, 12, 1e-12) {
		t.Errorf("AABB X = %v..%v", box.Min.X, box.Max.X)
	}
}

func TestHeightFieldInterpolationBounds(t *testing.T) {
	// Interpolated heights never exceed the min/max of the samples.
	r := rand.New(rand.NewSource(42))
	hs := make([]float64, 8*8)
	lo, hi := 1e300, -1e300
	for i := range hs {
		hs[i] = r.Float64()*10 - 5
		if hs[i] < lo {
			lo = hs[i]
		}
		if hs[i] > hi {
			hi = hs[i]
		}
	}
	hf := NewHeightField(8, 8, 0.5, 0.5, hs)
	for i := 0; i < 500; i++ {
		x := r.Float64()*5 - 1
		z := r.Float64()*5 - 1
		h := hf.HeightAt(x, z)
		if h < lo-1e-9 || h > hi+1e-9 {
			t.Fatalf("HeightAt(%v,%v) = %v outside [%v,%v]", x, z, h, lo, hi)
		}
	}
}
