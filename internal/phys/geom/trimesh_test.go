package geom

import (
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// quadMesh builds a unit quad in the XZ plane out of two triangles.
func quadMesh() *TriMesh {
	verts := []m3.Vec{
		m3.V(0, 0, 0), m3.V(1, 0, 0), m3.V(1, 0, 1), m3.V(0, 0, 1),
	}
	tris := []Tri{{0, 1, 2}, {0, 2, 3}}
	return NewTriMesh(verts, tris)
}

func TestTriMeshAABB(t *testing.T) {
	m := quadMesh()
	box := m.AABB(m3.V(5, 5, 5), m3.Ident)
	if box.Min != (m3.Vec{X: 5, Y: 5, Z: 5}) || box.Max != (m3.Vec{X: 6, Y: 5, Z: 6}) {
		t.Errorf("AABB = %+v", box)
	}
}

func TestTriMeshQuery(t *testing.T) {
	m := quadMesh()
	got := m.TrianglesIn(m3.AABB{Min: m3.V(-1, -1, -1), Max: m3.V(2, 2, 2)}, nil)
	seen := map[int32]bool{}
	for _, i := range got {
		seen[i] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("full query should return both triangles, got %v", got)
	}
	// A query far away returns nothing.
	if got := m.TrianglesIn(m3.AABB{Min: m3.V(50, 0, 50), Max: m3.V(51, 1, 51)}, nil); len(got) != 0 {
		t.Errorf("far query returned %v", got)
	}
}

func TestTriMeshLocalizedQuery(t *testing.T) {
	// A larger grid mesh: queries near one corner should not return
	// every triangle.
	const n = 16
	var verts []m3.Vec
	var tris []Tri
	for z := 0; z <= n; z++ {
		for x := 0; x <= n; x++ {
			verts = append(verts, m3.V(float64(x), 0, float64(z)))
		}
	}
	idx := func(x, z int) int32 { return int32(z*(n+1) + x) }
	for z := 0; z < n; z++ {
		for x := 0; x < n; x++ {
			tris = append(tris, Tri{idx(x, z), idx(x+1, z), idx(x+1, z+1)})
			tris = append(tris, Tri{idx(x, z), idx(x+1, z+1), idx(x, z+1)})
		}
	}
	m := NewTriMesh(verts, tris)
	got := m.TrianglesIn(m3.AABB{Min: m3.V(0, -1, 0), Max: m3.V(1.5, 1, 1.5)}, nil)
	if len(got) == 0 {
		t.Fatal("corner query returned no triangles")
	}
	if len(got) >= len(tris)/2 {
		t.Errorf("corner query returned %d of %d triangles; acceleration grid not localizing", len(got), len(tris))
	}
	// Triangle under the corner must be present.
	seen := map[int32]bool{}
	for _, i := range got {
		seen[i] = true
	}
	if !seen[0] {
		t.Error("corner query missed triangle 0")
	}
}

func TestTriVerts(t *testing.T) {
	m := quadMesh()
	a, b, c := m.TriVerts(1)
	if a != m.Verts[0] || b != m.Verts[2] || c != m.Verts[3] {
		t.Errorf("TriVerts = %v %v %v", a, b, c)
	}
}

func TestGeomFlags(t *testing.T) {
	g := &Geom{Flags: FlagStatic | FlagExplosive}
	if !g.Flags.Has(FlagStatic) || !g.Flags.Has(FlagExplosive) {
		t.Error("flag Has failed")
	}
	if g.Flags.Has(FlagBlast) {
		t.Error("unset flag reported present")
	}
	if !g.Enabled() {
		t.Error("geom without FlagDisabled should be enabled")
	}
	g.Flags |= FlagDisabled
	if g.Enabled() {
		t.Error("disabled geom reported enabled")
	}
}

func TestShouldCollide(t *testing.T) {
	s1 := &Geom{Shape: Sphere{R: 1}, Flags: FlagStatic}
	s2 := &Geom{Shape: Sphere{R: 1}, Flags: FlagStatic}
	d1 := &Geom{Shape: Sphere{R: 1}, Body: 0}
	d2 := &Geom{Shape: Sphere{R: 1}, Body: 1}
	if ShouldCollide(s1, s2) {
		t.Error("two statics should not collide")
	}
	if !ShouldCollide(s1, d1) {
		t.Error("static vs dynamic should collide")
	}
	if !ShouldCollide(d1, d2) {
		t.Error("dynamic vs dynamic should collide")
	}
	d1.Group, d2.Group = 7, 7
	if ShouldCollide(d1, d2) {
		t.Error("same group should not collide")
	}
	d2.Group = 8
	if !ShouldCollide(d1, d2) {
		t.Error("different groups should collide")
	}
	d2.Flags |= FlagDisabled
	if ShouldCollide(d1, d2) {
		t.Error("disabled geom should not collide")
	}
}
