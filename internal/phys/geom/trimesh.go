package geom

import (
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// Tri indexes the three vertices of a triangle.
type Tri [3]int32

// TriMesh is a static triangle-mesh shape with a flat BVH (a grid of
// triangle buckets over the mesh AABB) to accelerate queries. Vertices
// are in the local frame; placement is by translation only.
type TriMesh struct {
	Verts []m3.Vec
	Tris  []Tri
	box   m3.AABB
	// bucketed acceleration structure over local X/Z.
	nbx, nbz int
	cellX    float64
	cellZ    float64
	buckets  [][]int32 // triangle indices per bucket
}

// NewTriMesh builds a triangle mesh and its acceleration grid.
func NewTriMesh(verts []m3.Vec, tris []Tri) *TriMesh {
	m := &TriMesh{Verts: verts, Tris: tris, box: m3.EmptyAABB()}
	for _, v := range verts {
		m.box = m.box.Union(m3.AABB{Min: v, Max: v})
	}
	if len(tris) == 0 {
		return m
	}
	// Aim for a handful of triangles per bucket.
	n := len(tris)
	m.nbx = intSqrt(n) + 1
	m.nbz = m.nbx
	ext := m.box.Extent()
	m.cellX = ext.X/float64(m.nbx) + m3.Eps
	m.cellZ = ext.Z/float64(m.nbz) + m3.Eps
	m.buckets = make([][]int32, m.nbx*m.nbz)
	for ti, t := range tris {
		tb := m3.EmptyAABB()
		for _, vi := range t {
			v := verts[vi]
			tb = tb.Union(m3.AABB{Min: v, Max: v})
		}
		x0, z0 := m.bucketOf(tb.Min)
		x1, z1 := m.bucketOf(tb.Max)
		for z := z0; z <= z1; z++ {
			for x := x0; x <= x1; x++ {
				i := z*m.nbx + x
				m.buckets[i] = append(m.buckets[i], int32(ti))
			}
		}
	}
	return m
}

func intSqrt(n int) int {
	i := 0
	for i*i < n {
		i++
	}
	return i
}

func (m *TriMesh) bucketOf(p m3.Vec) (int, int) {
	x := int((p.X - m.box.Min.X) / m.cellX)
	z := int((p.Z - m.box.Min.Z) / m.cellZ)
	if x < 0 {
		x = 0
	} else if x >= m.nbx {
		x = m.nbx - 1
	}
	if z < 0 {
		z = 0
	} else if z >= m.nbz {
		z = m.nbz - 1
	}
	return x, z
}

// Kind implements Shape.
func (m *TriMesh) Kind() Kind { return KindTriMesh }

// AABB implements Shape.
func (m *TriMesh) AABB(pos m3.Vec, _ m3.Mat) m3.AABB {
	return m3.AABB{Min: m.box.Min.Add(pos), Max: m.box.Max.Add(pos)}
}

// Volume implements Shape.
func (m *TriMesh) Volume() float64 { return 0 }

// Inertia implements Shape.
func (m *TriMesh) Inertia(float64) m3.Mat { return m3.Mat{} }

// TrianglesIn appends to dst the indices of triangles whose buckets
// intersect the local-frame box query, and returns dst. Callers must
// still test individual triangles; duplicates are possible for
// triangles spanning several buckets.
func (m *TriMesh) TrianglesIn(query m3.AABB, dst []int32) []int32 {
	if len(m.Tris) == 0 || !m.box.Overlaps(query) {
		return dst
	}
	x0, z0 := m.bucketOf(query.Min)
	x1, z1 := m.bucketOf(query.Max)
	for z := z0; z <= z1; z++ {
		for x := x0; x <= x1; x++ {
			dst = append(dst, m.buckets[z*m.nbx+x]...)
		}
	}
	return dst
}

// TriVerts returns the three vertices of triangle i in the local frame.
func (m *TriMesh) TriVerts(i int32) (m3.Vec, m3.Vec, m3.Vec) {
	t := m.Tris[i]
	return m.Verts[t[0]], m.Verts[t[1]], m.Verts[t[2]]
}
