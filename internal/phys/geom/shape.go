// Package geom defines the collision shapes used by the physics engine
// (sphere, box, capsule, plane, heightfield, triangle mesh), their mass
// properties, and the Geom placement type that positions a shape in the
// world and links it to a rigid body.
package geom

import (
	"math"

	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// Kind identifies a shape type.
type Kind int

// Shape kinds, ordered so that the narrow phase can dispatch on the pair
// (min(kind), max(kind)).
const (
	KindSphere Kind = iota
	KindBox
	KindCapsule
	KindPlane
	KindHeightField
	KindTriMesh
	KindHull
	numKinds
)

var kindNames = [...]string{"sphere", "box", "capsule", "plane", "heightfield", "trimesh", "hull"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return "unknown"
	}
	return kindNames[k]
}

// Shape is a collision shape in its local frame.
type Shape interface {
	// Kind returns the shape type for narrow-phase dispatch.
	Kind() Kind
	// AABB returns the world-space bounding box of the shape placed at
	// pos with rotation rot.
	AABB(pos m3.Vec, rot m3.Mat) m3.AABB
	// Volume returns the shape volume. Zero for shapes that cannot be
	// attached to dynamic bodies (plane, heightfield, trimesh).
	Volume() float64
	// Inertia returns the body-frame inertia tensor for the given mass,
	// about the shape's center of mass.
	Inertia(mass float64) m3.Mat
}

// Sphere is a sphere of radius R centered at the local origin.
type Sphere struct {
	R float64
}

// Kind implements Shape.
func (s Sphere) Kind() Kind { return KindSphere }

// AABB implements Shape.
func (s Sphere) AABB(pos m3.Vec, _ m3.Mat) m3.AABB {
	return m3.AABBAt(pos, m3.V(s.R, s.R, s.R))
}

// Volume implements Shape.
func (s Sphere) Volume() float64 { return 4.0 / 3.0 * math.Pi * s.R * s.R * s.R }

// Inertia implements Shape.
func (s Sphere) Inertia(mass float64) m3.Mat {
	i := 2.0 / 5.0 * mass * s.R * s.R
	return m3.Diag(m3.V(i, i, i))
}

// Box is an axis-aligned box in its local frame with half-extents Half.
type Box struct {
	Half m3.Vec
}

// Kind implements Shape.
func (b Box) Kind() Kind { return KindBox }

// AABB implements Shape.
func (b Box) AABB(pos m3.Vec, rot m3.Mat) m3.AABB {
	// World half extents are |R| * half.
	var h m3.Vec
	for i := 0; i < 3; i++ {
		e := math.Abs(rot.M[i][0])*b.Half.X +
			math.Abs(rot.M[i][1])*b.Half.Y +
			math.Abs(rot.M[i][2])*b.Half.Z
		h = h.SetComp(i, e)
	}
	return m3.AABBAt(pos, h)
}

// Volume implements Shape.
func (b Box) Volume() float64 { return 8 * b.Half.X * b.Half.Y * b.Half.Z }

// Inertia implements Shape.
func (b Box) Inertia(mass float64) m3.Mat {
	x2 := 4 * b.Half.X * b.Half.X
	y2 := 4 * b.Half.Y * b.Half.Y
	z2 := 4 * b.Half.Z * b.Half.Z
	k := mass / 12
	return m3.Diag(m3.V(k*(y2+z2), k*(x2+z2), k*(x2+y2)))
}

// Capsule is a capsule of radius R whose axis spans the local Z axis
// from -HalfLen to +HalfLen (the cylinder part; the hemispherical caps
// extend beyond).
type Capsule struct {
	R       float64
	HalfLen float64
}

// Kind implements Shape.
func (c Capsule) Kind() Kind { return KindCapsule }

// Axis returns the world-space unit axis of the capsule under rot.
func (c Capsule) Axis(rot m3.Mat) m3.Vec { return rot.Col(2) }

// Ends returns the world-space centers of the two cap hemispheres.
func (c Capsule) Ends(pos m3.Vec, rot m3.Mat) (m3.Vec, m3.Vec) {
	a := c.Axis(rot).Scale(c.HalfLen)
	return pos.Sub(a), pos.Add(a)
}

// AABB implements Shape.
func (c Capsule) AABB(pos m3.Vec, rot m3.Mat) m3.AABB {
	p0, p1 := c.Ends(pos, rot)
	box := m3.AABB{Min: p0.Min(p1), Max: p0.Max(p1)}
	return box.Expand(c.R)
}

// Volume implements Shape.
func (c Capsule) Volume() float64 {
	cyl := math.Pi * c.R * c.R * (2 * c.HalfLen)
	sph := 4.0 / 3.0 * math.Pi * c.R * c.R * c.R
	return cyl + sph
}

// Inertia implements Shape.
func (c Capsule) Inertia(mass float64) m3.Mat {
	// Split mass between cylinder and the two hemispherical caps by
	// volume, then combine standard formulas (caps offset by half-length).
	vc := math.Pi * c.R * c.R * (2 * c.HalfLen)
	vs := 4.0 / 3.0 * math.Pi * c.R * c.R * c.R
	mc := mass * vc / (vc + vs)
	ms := mass - mc
	h := 2 * c.HalfLen
	r2 := c.R * c.R
	// Cylinder about Z (its axis) and transverse.
	izz := 0.5*mc*r2 + 0.4*ms*r2
	it := mc*(3*r2+h*h)/12 +
		ms*(0.4*r2+0.5*h*c.R+0.25*h*h)
	return m3.Diag(m3.V(it, it, izz))
}

// Plane is the infinite static half-space with outward unit Normal and
// plane equation Normal . p = Offset. Bodies stay on the positive side.
type Plane struct {
	Normal m3.Vec
	Offset float64
}

// Kind implements Shape.
func (p Plane) Kind() Kind { return KindPlane }

// AABB implements Shape. Planes are unbounded; broad phase treats them
// specially, so a huge box is returned.
func (p Plane) AABB(m3.Vec, m3.Mat) m3.AABB {
	const big = 1e12
	return m3.AABB{Min: m3.V(-big, -big, -big), Max: m3.V(big, big, big)}
}

// Volume implements Shape.
func (p Plane) Volume() float64 { return 0 }

// Inertia implements Shape.
func (p Plane) Inertia(float64) m3.Mat { return m3.Mat{} }

// Depth returns the signed distance of point q above the plane.
func (p Plane) Depth(q m3.Vec) float64 { return p.Normal.Dot(q) - p.Offset }
