package geom

import (
	"math"

	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// Hull is a convex polyhedron given by its vertices and a triangulated
// surface (counter-clockwise winding seen from outside). Hulls collide
// through GJK/EPA in the narrow phase; mass properties are computed
// exactly from the surface triangulation via the divergence theorem.
type Hull struct {
	Verts []m3.Vec
	Faces []Tri
	// Derived at construction.
	volume   float64
	centroid m3.Vec
	// unitInertia is the inertia tensor for unit mass about the
	// centroid.
	unitInertia m3.Mat
	radius      float64 // bounding radius about the centroid
}

// NewHull builds a convex hull shape from vertices and a consistently
// wound triangulated surface (either orientation; it is normalized so
// the enclosed volume is positive). Vertices are re-centered on the
// volume centroid so the shape's local origin is its center of mass
// (bodies rotate about their center of mass).
func NewHull(verts []m3.Vec, faces []Tri) *Hull {
	h := &Hull{Verts: append([]m3.Vec(nil), verts...), Faces: append([]Tri(nil), faces...)}
	if h.signedVolume() < 0 {
		for i := range h.Faces {
			h.Faces[i][1], h.Faces[i][2] = h.Faces[i][2], h.Faces[i][1]
		}
	}
	h.computeMass()
	// Re-center on the centroid.
	for i := range h.Verts {
		h.Verts[i] = h.Verts[i].Sub(h.centroid)
	}
	h.centroid = m3.Zero
	h.radius = 0
	for _, v := range h.Verts {
		if r := v.Len(); r > h.radius {
			h.radius = r
		}
	}
	return h
}

// signedVolume returns the raw signed volume under the current winding.
func (h *Hull) signedVolume() float64 {
	vol := 0.0
	for _, f := range h.Faces {
		a, b, c := h.Verts[f[0]], h.Verts[f[1]], h.Verts[f[2]]
		vol += a.Dot(b.Cross(c)) / 6
	}
	return vol
}

// computeMass integrates volume, centroid and inertia over the signed
// tetrahedra (origin, a, b, c) of the triangulated surface.
func (h *Hull) computeMass() {
	var vol float64
	var ctr m3.Vec
	// Inertia integrals.
	var ixx, iyy, izz, ixy, iyz, izx float64
	for _, f := range h.Faces {
		a, b, c := h.Verts[f[0]], h.Verts[f[1]], h.Verts[f[2]]
		d := a.Dot(b.Cross(c)) // 6 x signed tet volume
		vol += d / 6
		ctr = ctr.Add(a.Add(b).Add(c).Scale(d / 24))
		// Covariance-style integrals over the tetrahedron.
		f2 := func(w func(m3.Vec) float64) float64 {
			wa, wb, wc := w(a), w(b), w(c)
			return d / 60 * (wa*wa + wb*wb + wc*wc + wa*wb + wb*wc + wc*wa)
		}
		fxy := func(u, v func(m3.Vec) float64) float64 {
			ua, ub, uc := u(a), u(b), u(c)
			va, vb, vc := v(a), v(b), v(c)
			return d / 120 * (2*(ua*va+ub*vb+uc*vc) +
				ua*vb + ua*vc + ub*va + ub*vc + uc*va + uc*vb)
		}
		gx := func(p m3.Vec) float64 { return p.X }
		gy := func(p m3.Vec) float64 { return p.Y }
		gz := func(p m3.Vec) float64 { return p.Z }
		ixx += f2(gy) + f2(gz)
		iyy += f2(gx) + f2(gz)
		izz += f2(gx) + f2(gy)
		ixy += fxy(gx, gy)
		iyz += fxy(gy, gz)
		izx += fxy(gz, gx)
	}
	if vol <= m3.Eps {
		// Degenerate hull: fall back to a point mass.
		h.volume = 0
		h.unitInertia = m3.Ident
		return
	}
	h.volume = vol
	h.centroid = ctr.Scale(1 / vol)
	// Shift inertia to the centroid (parallel axis) and normalize to
	// unit mass (density = 1/vol).
	cx, cy, cz := h.centroid.X, h.centroid.Y, h.centroid.Z
	ixx = ixx/vol - (cy*cy + cz*cz)
	iyy = iyy/vol - (cx*cx + cz*cz)
	izz = izz/vol - (cx*cx + cy*cy)
	ixy = ixy/vol - cx*cy
	iyz = iyz/vol - cy*cz
	izx = izx/vol - cz*cx
	h.unitInertia = m3.Mat{M: [3][3]float64{
		{ixx, -ixy, -izx},
		{-ixy, iyy, -iyz},
		{-izx, -iyz, izz},
	}}
}

// Kind implements Shape.
func (h *Hull) Kind() Kind { return KindHull }

// AABB implements Shape.
func (h *Hull) AABB(pos m3.Vec, rot m3.Mat) m3.AABB {
	box := m3.EmptyAABB()
	for _, v := range h.Verts {
		w := rot.MulVec(v).Add(pos)
		box = box.Union(m3.AABB{Min: w, Max: w})
	}
	return box
}

// Volume implements Shape.
func (h *Hull) Volume() float64 { return h.volume }

// Inertia implements Shape.
func (h *Hull) Inertia(mass float64) m3.Mat {
	return h.unitInertia.Scale(mass)
}

// SupportLocal returns the hull vertex most extreme along local
// direction d.
func (h *Hull) SupportLocal(d m3.Vec) m3.Vec {
	best := math.Inf(-1)
	var out m3.Vec
	for _, v := range h.Verts {
		if dot := v.Dot(d); dot > best {
			best = dot
			out = v
		}
	}
	return out
}

// Radius returns the bounding radius about the center of mass.
func (h *Hull) Radius() float64 { return h.radius }

// BoxHull builds the hull of an axis-aligned box (used by tests to
// cross-validate GJK/EPA against the analytic box paths).
func BoxHull(half m3.Vec) *Hull {
	var verts []m3.Vec
	for i := 0; i < 8; i++ {
		verts = append(verts, m3.V(
			half.X*float64(1-2*(i&1)),
			half.Y*float64(1-2*((i>>1)&1)),
			half.Z*float64(1-2*((i>>2)&1)),
		))
	}
	// 12 triangles, outward winding.
	faces := []Tri{
		{0, 2, 3}, {0, 3, 1}, // -z? (indices per bit layout below)
		{4, 5, 7}, {4, 7, 6},
		{0, 1, 5}, {0, 5, 4},
		{2, 6, 7}, {2, 7, 3},
		{0, 4, 6}, {0, 6, 2},
		{1, 3, 7}, {1, 7, 5},
	}
	return NewHull(verts, faces)
}
