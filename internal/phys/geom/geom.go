package geom

import (
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// Flag is a set of per-geom behaviour flags used by the engine's
// game-physics extensions (explosions, prefracture, cloth interaction).
type Flag uint16

// Geom behaviour flags.
const (
	// FlagStatic marks immobile geometry that participates in collision
	// detection but not in forward stepping.
	FlagStatic Flag = 1 << iota
	// FlagExplosive marks objects that detonate on contact: the object
	// is replaced by a blast-radius sphere.
	FlagExplosive
	// FlagBlast marks an active blast-radius sphere. Blast spheres break
	// prefractured objects they touch and apply impulses, but generate
	// no contact constraints.
	FlagBlast
	// FlagPrefractured marks breakable objects that shatter into their
	// pre-created debris when touched by a blast volume.
	FlagPrefractured
	// FlagDebris marks the pre-created debris pieces of a prefractured
	// object. Debris geoms start disabled.
	FlagDebris
	// FlagDisabled removes the geom from collision detection entirely.
	FlagDisabled
	// FlagCloth marks a cloth bounding volume proxy: bodies contacting
	// it are put on the cloth's contact list instead of producing rigid
	// contacts.
	FlagCloth
)

// Has reports whether all bits in q are set in f.
func (f Flag) Has(q Flag) bool { return f&q == q }

// Geom places a Shape in the world and links it to a rigid body.
type Geom struct {
	// ID is the geom's index in the world's geom list.
	ID int
	// Shape is the collision shape.
	Shape Shape
	// Pos and Rot place the shape in world space. For geoms attached to
	// a body they are refreshed from the body each step.
	Pos m3.Vec
	Rot m3.Mat
	// Body is the owning body's index, or -1 for static geometry.
	Body int
	// OffsetPos and OffsetRot place the shape relative to its body.
	OffsetPos m3.Vec
	OffsetRot m3.Quat
	// Flags select engine extensions.
	Flags Flag
	// Box caches the world AABB, refreshed by the broad phase.
	Box m3.AABB
	// Group: geoms in the same non-zero group never collide with each
	// other (used for articulated figures and debris clusters).
	Group int32
	// Aux links extension data: for FlagBlast the blast definition index,
	// for FlagPrefractured/FlagDebris the fracture group index, for
	// FlagCloth the cloth index.
	Aux int32
}

// Enabled reports whether the geom currently participates in collision
// detection.
func (g *Geom) Enabled() bool { return !g.Flags.Has(FlagDisabled) }

// UpdateAABB recomputes the cached world bounding box.
func (g *Geom) UpdateAABB() { g.Box = g.Shape.AABB(g.Pos, g.Rot) }

// ShouldCollide reports whether the pair (g, h) should be considered by
// the narrow phase at all.
func ShouldCollide(g, h *Geom) bool {
	if !g.Enabled() || !h.Enabled() {
		return false
	}
	// Two statics never collide.
	gs, hs := g.Flags.Has(FlagStatic), h.Flags.Has(FlagStatic)
	if gs && hs {
		return false
	}
	// Same non-zero group: self-collision suppressed.
	if g.Group != 0 && g.Group == h.Group {
		return false
	}
	// Blast volumes interact with everything (handled specially), cloth
	// proxies likewise; both pass through here.
	return true
}
