package replay

import (
	"path/filepath"
	"testing"

	"github.com/parallax-arch/parallax/internal/obs"
)

// TestFlightBundleReplaysToDivergentStep pins the flight-recorder
// round trip paraxsim performs on a replay divergence: detect the
// divergent step, bundle the snapshot plus the digests up to (and
// including) it, and prove that replaying the bundle's recording from
// disk re-diverges at exactly the same step on any thread count.
func TestFlightBundleReplaysToDivergentStep(t *testing.T) {
	rec := record(t, 20)

	// Inject a divergence the way paraxsim -inject does.
	const bad = 7
	rec.Digests[bad] ^= 0x1
	div, err := Verify(rec, 2)
	if err == nil {
		t.Fatal("corrupted recording verified clean")
	}
	if div != bad {
		t.Fatalf("diverged at step %d, want %d", div, bad)
	}

	// Bundle it: world.paxw is the recording's snapshot, replay.paxr is
	// the trimmed recording ending at the divergent step.
	dir := t.TempDir()
	info := obs.FlightInfo{Cause: "replay_divergence", Step: int64(div), Label: rec.Label}
	bundle, err := obs.WriteFlightBundle(dir, info, rec.Snapshot, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	trimmed := &Recording{
		Label:    rec.Label,
		Snapshot: rec.Snapshot,
		Digests:  rec.Digests[:div+1],
	}
	if err := trimmed.Save(filepath.Join(bundle, "replay.paxr")); err != nil {
		t.Fatal(err)
	}

	// Round trip through the bundle file: the reloaded recording must
	// re-diverge at the same step, at any thread count.
	loaded, err := Load(filepath.Join(bundle, "replay.paxr"))
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Digests) != bad+1 {
		t.Fatalf("bundle recording holds %d digests, want %d", len(loaded.Digests), bad+1)
	}
	for _, threads := range []int{1, 8} {
		div2, err := Verify(loaded, threads)
		if err == nil {
			t.Fatalf("threads=%d: bundle recording verified clean", threads)
		}
		if div2 != bad {
			t.Fatalf("threads=%d: bundle replay diverged at %d, want %d", threads, div2, bad)
		}
	}
}
