// Package replay implements record-replay verification for the
// simulation: a Recording captures a world snapshot plus the per-step
// profile digests of the run that followed it, and Verify re-steps the
// snapshot — at any thread count — checking that every step reproduces
// the recorded digest. The first mismatch pinpoints the step where a
// nondeterminism bug (or a behavior change) first became observable.
package replay

import (
	"fmt"
	"hash/crc32"
	"os"

	"github.com/parallax-arch/parallax/internal/phys/enc"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// Magic and version of the recording file format ("PAXR", little
// endian). The payload reuses the world snapshot encoding and is
// protected by the same CRC32 scheme.
const (
	Magic   = uint32('P') | uint32('A')<<8 | uint32('X')<<16 | uint32('R')<<24
	Version = 1
)

// Recording is a deterministic replay artifact: the full world state at
// the start of the recorded window plus one profile digest per step.
type Recording struct {
	// Label is free-form provenance (benchmark name, scale, flags).
	Label string
	// Snapshot is the world state the digests were recorded from.
	Snapshot []byte
	// Digests holds StepProfile.Digest() for each recorded step.
	Digests []uint64
}

// Record snapshots w and then steps it n times, capturing the profile
// digest of every step. The world is advanced by n steps as a side
// effect — the recording plays forward from where w was.
func Record(w *world.World, label string, n int) *Recording {
	rec := &Recording{
		Label:    label,
		Snapshot: w.Snapshot(),
		Digests:  make([]uint64, 0, n),
	}
	for i := 0; i < n; i++ {
		w.Step()
		rec.Digests = append(rec.Digests, w.Profile.Digest())
	}
	return rec
}

// Verify restores the recording into a fresh world with the given
// thread count and re-steps it, comparing digests. It returns the
// zero-based index of the first divergent step, or -1 if the replay
// matched end to end.
func Verify(rec *Recording, threads int) (int, error) {
	w := world.New()
	w.Threads = threads
	if err := w.Restore(rec.Snapshot); err != nil {
		return -1, fmt.Errorf("replay: restore: %w", err)
	}
	for i, want := range rec.Digests {
		w.Step()
		if got := w.Profile.Digest(); got != want {
			return i, fmt.Errorf("replay: step %d diverged: digest %016x, recorded %016x", i, got, want)
		}
	}
	return -1, nil
}

// Encode serializes the recording.
func (rec *Recording) Encode() []byte {
	var w enc.Writer
	w.U32(Magic)
	w.U32(Version)
	w.String(rec.Label)
	w.U32(uint32(len(rec.Snapshot)))
	w.Raw(rec.Snapshot)
	w.U32(uint32(len(rec.Digests)))
	for _, d := range rec.Digests {
		w.U64(d)
	}
	payload := w.Bytes()
	w.U32(crc32.ChecksumIEEE(payload))
	return w.Bytes()
}

// Decode parses a recording, validating checksum, magic and version.
func Decode(data []byte) (*Recording, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("replay: recording too short (%d bytes)", len(data))
	}
	payload := data[:len(data)-4]
	r := enc.NewReader(data[len(data)-4:])
	if sum := crc32.ChecksumIEEE(payload); r.U32() != sum {
		return nil, fmt.Errorf("replay: checksum mismatch")
	}
	r = enc.NewReader(payload)
	if r.U32() != Magic {
		return nil, fmt.Errorf("replay: bad magic")
	}
	if v := r.U32(); v != Version {
		return nil, fmt.Errorf("replay: unsupported version %d", v)
	}
	rec := &Recording{Label: r.String()}
	snapLen := int(r.U32())
	if snapLen < 0 || snapLen > r.Remaining() {
		return nil, fmt.Errorf("replay: corrupt snapshot length")
	}
	rec.Snapshot = append([]byte(nil), r.Raw(snapLen)...)
	nd := int(r.U32())
	if nd < 0 || nd*8 > r.Remaining() {
		return nil, fmt.Errorf("replay: corrupt digest count")
	}
	rec.Digests = make([]uint64, nd)
	for i := range rec.Digests {
		rec.Digests[i] = r.U64()
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("replay: %d trailing bytes", r.Remaining())
	}
	return rec, nil
}

// Save writes the recording to a file.
func (rec *Recording) Save(path string) error {
	return os.WriteFile(path, rec.Encode(), 0o644)
}

// Load reads a recording from a file.
func Load(path string) (*Recording, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
