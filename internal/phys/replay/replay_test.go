package replay

import (
	"path/filepath"
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/workload"
)

func record(t *testing.T, steps int) *Recording {
	t.Helper()
	b, ok := workload.ByName("Breakable")
	if !ok {
		t.Fatal("Breakable benchmark missing")
	}
	w := b.Build(0.25)
	w.Threads = 2
	for i := 0; i < 10; i++ {
		w.Step()
	}
	return Record(w, "Breakable scale=0.25", steps)
}

// TestRecordVerify: a recording must replay clean at several thread
// counts, including ones different from the recording run.
func TestRecordVerify(t *testing.T) {
	rec := record(t, 25)
	if len(rec.Digests) != 25 {
		t.Fatalf("recorded %d digests, want 25", len(rec.Digests))
	}
	for _, threads := range []int{1, 4, 8} {
		step, err := Verify(rec, threads)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if step != -1 {
			t.Fatalf("threads=%d: diverged at step %d", threads, step)
		}
	}
}

// TestVerifyDetectsDivergence: corrupting one recorded digest must make
// Verify report exactly that step.
func TestVerifyDetectsDivergence(t *testing.T) {
	rec := record(t, 20)
	rec.Digests[7] ^= 0xdeadbeef
	step, err := Verify(rec, 1)
	if err == nil {
		t.Fatal("verify accepted a diverging recording")
	}
	if step != 7 {
		t.Fatalf("divergence reported at step %d, want 7", step)
	}
}

// TestRecordingFileRoundTrip: encode → file → decode reproduces the
// recording, and corrupt files are rejected.
func TestRecordingFileRoundTrip(t *testing.T) {
	rec := record(t, 10)
	path := filepath.Join(t.TempDir(), "run.paxr")
	if err := rec.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Label != rec.Label || len(got.Digests) != len(rec.Digests) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	for i := range rec.Digests {
		if got.Digests[i] != rec.Digests[i] {
			t.Fatalf("digest %d changed in round trip", i)
		}
	}
	if step, err := Verify(got, 2); err != nil || step != -1 {
		t.Fatalf("loaded recording does not replay: step=%d err=%v", step, err)
	}

	data := rec.Encode()
	for _, off := range []int{0, 6, len(data) / 2, len(data) - 2} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x10
		if _, err := Decode(bad); err == nil {
			t.Errorf("corruption at byte %d not detected", off)
		}
	}
	if _, err := Decode(data[:5]); err == nil {
		t.Error("truncated recording not detected")
	}
}
