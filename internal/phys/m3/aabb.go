package m3

// AABB is an axis-aligned bounding box described by its two corners.
type AABB struct {
	Min, Max Vec
}

// AABBAt returns the box of half-extents h centered at c.
func AABBAt(c, h Vec) AABB { return AABB{Min: c.Sub(h), Max: c.Add(h)} }

// EmptyAABB returns a box that contains nothing and acts as the identity
// for Union.
func EmptyAABB() AABB {
	const big = 1e300
	return AABB{Min: Vec{big, big, big}, Max: Vec{-big, -big, -big}}
}

// Overlaps reports whether a and b intersect (touching counts).
func (a AABB) Overlaps(b AABB) bool {
	return a.Min.X <= b.Max.X && a.Max.X >= b.Min.X &&
		a.Min.Y <= b.Max.Y && a.Max.Y >= b.Min.Y &&
		a.Min.Z <= b.Max.Z && a.Max.Z >= b.Min.Z
}

// Contains reports whether point p lies inside a (inclusive).
func (a AABB) Contains(p Vec) bool {
	return p.X >= a.Min.X && p.X <= a.Max.X &&
		p.Y >= a.Min.Y && p.Y <= a.Max.Y &&
		p.Z >= a.Min.Z && p.Z <= a.Max.Z
}

// Union returns the smallest box containing both a and b.
func (a AABB) Union(b AABB) AABB {
	return AABB{Min: a.Min.Min(b.Min), Max: a.Max.Max(b.Max)}
}

// Expand returns a grown by margin r on every side.
func (a AABB) Expand(r float64) AABB {
	d := Vec{r, r, r}
	return AABB{Min: a.Min.Sub(d), Max: a.Max.Add(d)}
}

// Center returns the center point of a.
func (a AABB) Center() Vec { return a.Min.Add(a.Max).Scale(0.5) }

// Extent returns the full size of a along each axis.
func (a AABB) Extent() Vec { return a.Max.Sub(a.Min) }

// SurfaceArea returns the total surface area of a. Empty boxes report 0.
func (a AABB) SurfaceArea() float64 {
	e := a.Extent()
	if e.X < 0 || e.Y < 0 || e.Z < 0 {
		return 0
	}
	return 2 * (e.X*e.Y + e.Y*e.Z + e.Z*e.X)
}

// ClosestPoint returns the point inside a closest to p.
func (a AABB) ClosestPoint(p Vec) Vec { return p.Max(a.Min).Min(a.Max) }

// RayHits reports whether the segment from o along d*[0,tmax] intersects
// the box, and if so the entry parameter.
func (a AABB) RayHits(o, d Vec, tmax float64) (float64, bool) {
	t0, t1 := 0.0, tmax
	for i := 0; i < 3; i++ {
		oi, di := o.Comp(i), d.Comp(i)
		lo, hi := a.Min.Comp(i), a.Max.Comp(i)
		if di > -Eps && di < Eps {
			if oi < lo || oi > hi {
				return 0, false
			}
			continue
		}
		inv := 1 / di
		ta, tb := (lo-oi)*inv, (hi-oi)*inv
		if ta > tb {
			ta, tb = tb, ta
		}
		if ta > t0 {
			t0 = ta
		}
		if tb < t1 {
			t1 = tb
		}
		if t0 > t1 {
			return 0, false
		}
	}
	return t0, true
}
