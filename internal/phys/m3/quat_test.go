package m3

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func genQuat(r *rand.Rand) Quat {
	return QFromAxisAngle(genVec(r).Add(Vec{0.01, 0.01, 0.01}), r.Float64()*2*math.Pi)
}

func TestQuatIdentityRotation(t *testing.T) {
	f := func(v Vec) bool { return vecApprox(QIdent.Rotate(v), v, 1e-12) }
	cfg := quickCfg(20)
	cfg.Values = func(vals []reflectValue, r *rand.Rand) {
		vals[0] = valueOf(genVec(r))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuatRotatePreservesLength(t *testing.T) {
	f := func(q Quat, v Vec) bool {
		return approx(q.Rotate(v).Len(), v.Len(), 1e-8)
	}
	cfg := quickCfg(21)
	cfg.Values = func(vals []reflectValue, r *rand.Rand) {
		vals[0] = valueOf(genQuat(r))
		vals[1] = valueOf(genVec(r))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuatConjInverse(t *testing.T) {
	f := func(q Quat, v Vec) bool {
		return vecApprox(q.Conj().Rotate(q.Rotate(v)), v, 1e-8)
	}
	cfg := quickCfg(22)
	cfg.Values = func(vals []reflectValue, r *rand.Rand) {
		vals[0] = valueOf(genQuat(r))
		vals[1] = valueOf(genVec(r))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuatMatMatchesRotate(t *testing.T) {
	f := func(q Quat, v Vec) bool {
		return vecApprox(q.Mat().MulVec(v), q.Rotate(v), 1e-8)
	}
	cfg := quickCfg(23)
	cfg.Values = func(vals []reflectValue, r *rand.Rand) {
		vals[0] = valueOf(genQuat(r))
		vals[1] = valueOf(genVec(r))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuatMulComposition(t *testing.T) {
	f := func(q, p Quat, v Vec) bool {
		return vecApprox(q.Mul(p).Rotate(v), q.Rotate(p.Rotate(v)), 1e-7)
	}
	cfg := quickCfg(24)
	cfg.Values = func(vals []reflectValue, r *rand.Rand) {
		vals[0] = valueOf(genQuat(r))
		vals[1] = valueOf(genQuat(r))
		vals[2] = valueOf(genVec(r))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuatAxisAngle(t *testing.T) {
	q := QFromAxisAngle(V(0, 0, 1), math.Pi/2)
	got := q.Rotate(V(1, 0, 0))
	if !vecApprox(got, V(0, 1, 0), 1e-12) {
		t.Errorf("90 deg about z: got %v, want (0,1,0)", got)
	}
}

func TestQuatIntegrateStaysUnit(t *testing.T) {
	q := QIdent
	w := V(3, -2, 5)
	for i := 0; i < 1000; i++ {
		q = q.Integrate(w, 0.01)
	}
	if !approx(q.Len(), 1, 1e-9) {
		t.Errorf("integrated quaternion drifted from unit: |q| = %v", q.Len())
	}
}

func TestQuatIntegrateMatchesAxisAngle(t *testing.T) {
	// Integrating a constant angular velocity in many small steps should
	// approximate the closed-form axis-angle rotation.
	w := V(0, 1, 0)
	q := QIdent
	const steps = 10000
	const total = 1.0 // radians
	for i := 0; i < steps; i++ {
		q = q.Integrate(w, total/steps)
	}
	want := QFromAxisAngle(w, total)
	v := V(1, 0, 0)
	if !vecApprox(q.Rotate(v), want.Rotate(v), 1e-4) {
		t.Errorf("integrated rotation %v, want %v", q.Rotate(v), want.Rotate(v))
	}
}

func TestQuatNormDegenerate(t *testing.T) {
	if got := (Quat{}).Norm(); got != QIdent {
		t.Errorf("zero quat norm = %v, want identity", got)
	}
}

func TestQuatEuler(t *testing.T) {
	q := QFromEuler(math.Pi/2, 0, 0) // yaw 90 about Y
	got := q.Rotate(V(1, 0, 0))
	if !vecApprox(got, V(0, 0, -1), 1e-12) {
		t.Errorf("yaw rotate = %v, want (0,0,-1)", got)
	}
}
