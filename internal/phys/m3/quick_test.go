package m3

import "reflect"

// reflectValue and valueOf keep the property-test value generators terse.
type reflectValue = reflect.Value

func valueOf(x interface{}) reflect.Value { return reflect.ValueOf(x) }
