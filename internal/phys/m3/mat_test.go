package m3

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func genMat(r *rand.Rand) Mat {
	var m Mat
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			m.M[i][j] = r.Float64()*4 - 2
		}
	}
	return m
}

func matApprox(a, b Mat, tol float64) bool {
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !approx(a.M[i][j], b.M[i][j], tol) {
				return false
			}
		}
	}
	return true
}

func TestMatIdentity(t *testing.T) {
	f := func(m Mat) bool {
		return matApprox(m.Mul(Ident), m, 0) && matApprox(Ident.Mul(m), m, 0)
	}
	cfg := quickCfg(10)
	cfg.Values = func(vals []reflectValue, r *rand.Rand) {
		vals[0] = valueOf(genMat(r))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMatInverse(t *testing.T) {
	f := func(m Mat) bool {
		if d := m.Det(); d > -1e-3 && d < 1e-3 {
			return true // skip near-singular draws
		}
		return matApprox(m.Mul(m.Inverse()), Ident, 1e-6)
	}
	cfg := quickCfg(11)
	cfg.Values = func(vals []reflectValue, r *rand.Rand) {
		vals[0] = valueOf(genMat(r))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMatTransposeInvolution(t *testing.T) {
	f := func(m Mat) bool { return m.Transpose().Transpose() == m }
	cfg := quickCfg(12)
	cfg.Values = func(vals []reflectValue, r *rand.Rand) {
		vals[0] = valueOf(genMat(r))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMatTMulVecMatchesTranspose(t *testing.T) {
	f := func(m Mat, v Vec) bool {
		return vecApprox(m.TMulVec(v), m.Transpose().MulVec(v), 1e-12)
	}
	cfg := quickCfg(13)
	cfg.Values = func(vals []reflectValue, r *rand.Rand) {
		vals[0] = valueOf(genMat(r))
		vals[1] = valueOf(genVec(r))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSkewMatchesCross(t *testing.T) {
	f := func(a, b Vec) bool {
		return vecApprox(Skew(a).MulVec(b), a.Cross(b), 1e-12)
	}
	cfg := quickCfg(14)
	cfg.Values = func(vals []reflectValue, r *rand.Rand) {
		vals[0] = valueOf(genVec(r))
		vals[1] = valueOf(genVec(r))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMatRowsCols(t *testing.T) {
	m := MatFromRows(V(1, 2, 3), V(4, 5, 6), V(7, 8, 9))
	if m.Row(1) != (Vec{4, 5, 6}) {
		t.Errorf("Row(1) = %v", m.Row(1))
	}
	if m.Col(2) != (Vec{3, 6, 9}) {
		t.Errorf("Col(2) = %v", m.Col(2))
	}
	n := MatFromCols(V(1, 4, 7), V(2, 5, 8), V(3, 6, 9))
	if m != n {
		t.Errorf("rows/cols construction mismatch:\n%v\n%v", m, n)
	}
}

func TestDiag(t *testing.T) {
	d := Diag(V(2, 3, 4))
	if got := d.MulVec(V(1, 1, 1)); got != (Vec{2, 3, 4}) {
		t.Errorf("Diag mul = %v", got)
	}
	if d.Det() != 24 {
		t.Errorf("Diag det = %v", d.Det())
	}
}

func TestMatDetProduct(t *testing.T) {
	f := func(a, b Mat) bool {
		lhs := a.Mul(b).Det()
		rhs := a.Det() * b.Det()
		scale := 1.0
		if rhs > 1 || rhs < -1 {
			scale = rhs
			if scale < 0 {
				scale = -scale
			}
		}
		return approx(lhs, rhs, 1e-8*scale+1e-8)
	}
	cfg := quickCfg(15)
	cfg.Values = func(vals []reflectValue, r *rand.Rand) {
		vals[0] = valueOf(genMat(r))
		vals[1] = valueOf(genMat(r))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
