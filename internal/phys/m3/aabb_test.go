package m3

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func genAABB(r *rand.Rand) AABB {
	a, b := genVec(r), genVec(r)
	return AABB{Min: a.Min(b), Max: a.Max(b)}
}

func TestAABBOverlapsSymmetric(t *testing.T) {
	f := func(a, b AABB) bool { return a.Overlaps(b) == b.Overlaps(a) }
	cfg := quickCfg(30)
	cfg.Values = func(vals []reflectValue, r *rand.Rand) {
		vals[0] = valueOf(genAABB(r))
		vals[1] = valueOf(genAABB(r))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestAABBUnionContainsBoth(t *testing.T) {
	f := func(a, b AABB) bool {
		u := a.Union(b)
		return u.Contains(a.Min) && u.Contains(a.Max) && u.Contains(b.Min) && u.Contains(b.Max)
	}
	cfg := quickCfg(31)
	cfg.Values = func(vals []reflectValue, r *rand.Rand) {
		vals[0] = valueOf(genAABB(r))
		vals[1] = valueOf(genAABB(r))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestAABBSelfOverlap(t *testing.T) {
	f := func(a AABB) bool { return a.Overlaps(a) }
	cfg := quickCfg(32)
	cfg.Values = func(vals []reflectValue, r *rand.Rand) {
		vals[0] = valueOf(genAABB(r))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestAABBClosestPointInside(t *testing.T) {
	f := func(a AABB, p Vec) bool {
		return a.Contains(a.ClosestPoint(p))
	}
	cfg := quickCfg(33)
	cfg.Values = func(vals []reflectValue, r *rand.Rand) {
		vals[0] = valueOf(genAABB(r))
		vals[1] = valueOf(genVec(r))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestAABBBasics(t *testing.T) {
	a := AABB{Min: V(0, 0, 0), Max: V(2, 4, 6)}
	if got := a.Center(); got != (Vec{1, 2, 3}) {
		t.Errorf("Center = %v", got)
	}
	if got := a.Extent(); got != (Vec{2, 4, 6}) {
		t.Errorf("Extent = %v", got)
	}
	if got := a.SurfaceArea(); got != 2*(8+24+12) {
		t.Errorf("SurfaceArea = %v", got)
	}
	b := a.Expand(1)
	if b.Min != (Vec{-1, -1, -1}) || b.Max != (Vec{3, 5, 7}) {
		t.Errorf("Expand = %+v", b)
	}
}

func TestAABBAt(t *testing.T) {
	a := AABBAt(V(1, 1, 1), V(0.5, 0.5, 0.5))
	if a.Min != (Vec{0.5, 0.5, 0.5}) || a.Max != (Vec{1.5, 1.5, 1.5}) {
		t.Errorf("AABBAt = %+v", a)
	}
}

func TestEmptyAABBUnionIdentity(t *testing.T) {
	f := func(a AABB) bool { return EmptyAABB().Union(a) == a }
	cfg := quickCfg(34)
	cfg.Values = func(vals []reflectValue, r *rand.Rand) {
		vals[0] = valueOf(genAABB(r))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestAABBRayHits(t *testing.T) {
	a := AABB{Min: V(-1, -1, -1), Max: V(1, 1, 1)}
	if tt, ok := a.RayHits(V(-5, 0, 0), V(1, 0, 0), 100); !ok || !approx(tt, 4, 1e-12) {
		t.Errorf("ray x: t=%v ok=%v", tt, ok)
	}
	if _, ok := a.RayHits(V(-5, 3, 0), V(1, 0, 0), 100); ok {
		t.Error("ray should miss above the box")
	}
	if _, ok := a.RayHits(V(-5, 0, 0), V(1, 0, 0), 2); ok {
		t.Error("ray should stop before reaching the box")
	}
	// Ray starting inside hits at t=0.
	if tt, ok := a.RayHits(V(0, 0, 0), V(0, 1, 0), 10); !ok || tt != 0 {
		t.Errorf("inside ray: t=%v ok=%v", tt, ok)
	}
}
