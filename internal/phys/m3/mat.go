package m3

import "math"

// Mat is a 3x3 matrix in row-major order.
type Mat struct {
	M [3][3]float64
}

// Ident is the identity matrix.
var Ident = Mat{M: [3][3]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}}

// MatFromRows builds a matrix whose rows are a, b, c.
func MatFromRows(a, b, c Vec) Mat {
	return Mat{M: [3][3]float64{
		{a.X, a.Y, a.Z},
		{b.X, b.Y, b.Z},
		{c.X, c.Y, c.Z},
	}}
}

// MatFromCols builds a matrix whose columns are a, b, c.
func MatFromCols(a, b, c Vec) Mat {
	return Mat{M: [3][3]float64{
		{a.X, b.X, c.X},
		{a.Y, b.Y, c.Y},
		{a.Z, b.Z, c.Z},
	}}
}

// Diag builds a diagonal matrix with entries d.
func Diag(d Vec) Mat {
	return Mat{M: [3][3]float64{{d.X, 0, 0}, {0, d.Y, 0}, {0, 0, d.Z}}}
}

// Row returns row i of m.
func (m Mat) Row(i int) Vec { return Vec{m.M[i][0], m.M[i][1], m.M[i][2]} }

// Col returns column j of m.
func (m Mat) Col(j int) Vec { return Vec{m.M[0][j], m.M[1][j], m.M[2][j]} }

// MulVec returns m * v.
func (m Mat) MulVec(v Vec) Vec {
	return Vec{
		m.M[0][0]*v.X + m.M[0][1]*v.Y + m.M[0][2]*v.Z,
		m.M[1][0]*v.X + m.M[1][1]*v.Y + m.M[1][2]*v.Z,
		m.M[2][0]*v.X + m.M[2][1]*v.Y + m.M[2][2]*v.Z,
	}
}

// TMulVec returns transpose(m) * v.
func (m Mat) TMulVec(v Vec) Vec {
	return Vec{
		m.M[0][0]*v.X + m.M[1][0]*v.Y + m.M[2][0]*v.Z,
		m.M[0][1]*v.X + m.M[1][1]*v.Y + m.M[2][1]*v.Z,
		m.M[0][2]*v.X + m.M[1][2]*v.Y + m.M[2][2]*v.Z,
	}
}

// Mul returns m * n.
func (m Mat) Mul(n Mat) Mat {
	var r Mat
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r.M[i][j] = m.M[i][0]*n.M[0][j] + m.M[i][1]*n.M[1][j] + m.M[i][2]*n.M[2][j]
		}
	}
	return r
}

// Add returns m + n.
func (m Mat) Add(n Mat) Mat {
	var r Mat
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r.M[i][j] = m.M[i][j] + n.M[i][j]
		}
	}
	return r
}

// Scale returns m with every entry scaled by s.
func (m Mat) Scale(s float64) Mat {
	var r Mat
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r.M[i][j] = m.M[i][j] * s
		}
	}
	return r
}

// Transpose returns the transpose of m.
func (m Mat) Transpose() Mat {
	var r Mat
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r.M[i][j] = m.M[j][i]
		}
	}
	return r
}

// Det returns the determinant of m.
func (m Mat) Det() float64 {
	return m.M[0][0]*(m.M[1][1]*m.M[2][2]-m.M[1][2]*m.M[2][1]) -
		m.M[0][1]*(m.M[1][0]*m.M[2][2]-m.M[1][2]*m.M[2][0]) +
		m.M[0][2]*(m.M[1][0]*m.M[2][1]-m.M[1][1]*m.M[2][0])
}

// Inverse returns the inverse of m. Singular matrices (|det| < Eps)
// invert to the zero matrix.
func (m Mat) Inverse() Mat {
	d := m.Det()
	if math.Abs(d) < Eps {
		return Mat{}
	}
	inv := 1 / d
	var r Mat
	r.M[0][0] = (m.M[1][1]*m.M[2][2] - m.M[1][2]*m.M[2][1]) * inv
	r.M[0][1] = (m.M[0][2]*m.M[2][1] - m.M[0][1]*m.M[2][2]) * inv
	r.M[0][2] = (m.M[0][1]*m.M[1][2] - m.M[0][2]*m.M[1][1]) * inv
	r.M[1][0] = (m.M[1][2]*m.M[2][0] - m.M[1][0]*m.M[2][2]) * inv
	r.M[1][1] = (m.M[0][0]*m.M[2][2] - m.M[0][2]*m.M[2][0]) * inv
	r.M[1][2] = (m.M[0][2]*m.M[1][0] - m.M[0][0]*m.M[1][2]) * inv
	r.M[2][0] = (m.M[1][0]*m.M[2][1] - m.M[1][1]*m.M[2][0]) * inv
	r.M[2][1] = (m.M[0][1]*m.M[2][0] - m.M[0][0]*m.M[2][1]) * inv
	r.M[2][2] = (m.M[0][0]*m.M[1][1] - m.M[0][1]*m.M[1][0]) * inv
	return r
}

// Skew returns the cross-product matrix of v, so Skew(v).MulVec(w) == v x w.
func Skew(v Vec) Mat {
	return Mat{M: [3][3]float64{
		{0, -v.Z, v.Y},
		{v.Z, 0, -v.X},
		{-v.Y, v.X, 0},
	}}
}
