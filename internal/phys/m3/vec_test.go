package m3

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// genVec draws a bounded random vector so products stay finite.
func genVec(r *rand.Rand) Vec {
	return Vec{r.Float64()*20 - 10, r.Float64()*20 - 10, r.Float64()*20 - 10}
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecApprox(a, b Vec, tol float64) bool {
	return approx(a.X, b.X, tol) && approx(a.Y, b.Y, tol) && approx(a.Z, b.Z, tol)
}

func quickCfg(seed int64) *quick.Config {
	r := rand.New(rand.NewSource(seed))
	return &quick.Config{MaxCount: 300, Rand: r}
}

func TestVecAddSub(t *testing.T) {
	v := V(1, 2, 3)
	w := V(4, -5, 6)
	if got := v.Add(w); got != (Vec{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
}

func TestVecDotCross(t *testing.T) {
	x, y, z := V(1, 0, 0), V(0, 1, 0), V(0, 0, 1)
	if got := x.Cross(y); got != z {
		t.Errorf("x cross y = %v, want z", got)
	}
	if got := y.Cross(z); got != x {
		t.Errorf("y cross z = %v, want x", got)
	}
	if got := x.Dot(y); got != 0 {
		t.Errorf("x.y = %v, want 0", got)
	}
}

func TestCrossOrthogonalProperty(t *testing.T) {
	f := func(a, b Vec) bool {
		c := a.Cross(b)
		return approx(c.Dot(a), 0, 1e-8) && approx(c.Dot(b), 0, 1e-8)
	}
	cfg := quickCfg(1)
	cfg.Values = func(vals []reflectValue, r *rand.Rand) {
		vals[0] = valueOf(genVec(r))
		vals[1] = valueOf(genVec(r))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCrossAnticommutative(t *testing.T) {
	f := func(a, b Vec) bool {
		return vecApprox(a.Cross(b), b.Cross(a).Neg(), 1e-12)
	}
	cfg := quickCfg(2)
	cfg.Values = func(vals []reflectValue, r *rand.Rand) {
		vals[0] = valueOf(genVec(r))
		vals[1] = valueOf(genVec(r))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestLagrangeIdentity(t *testing.T) {
	// |a x b|^2 = |a|^2 |b|^2 - (a.b)^2
	f := func(a, b Vec) bool {
		lhs := a.Cross(b).Len2()
		rhs := a.Len2()*b.Len2() - a.Dot(b)*a.Dot(b)
		return approx(lhs, rhs, 1e-6*(1+math.Abs(rhs)))
	}
	cfg := quickCfg(3)
	cfg.Values = func(vals []reflectValue, r *rand.Rand) {
		vals[0] = valueOf(genVec(r))
		vals[1] = valueOf(genVec(r))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestNormUnitLength(t *testing.T) {
	f := func(a Vec) bool {
		n := a.Norm()
		if a.Len() < Eps {
			return n == Zero
		}
		return approx(n.Len(), 1, 1e-9)
	}
	cfg := quickCfg(4)
	cfg.Values = func(vals []reflectValue, r *rand.Rand) {
		vals[0] = valueOf(genVec(r))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBasisOrthonormal(t *testing.T) {
	f := func(a Vec) bool {
		if a.Len() < 1e-3 {
			return true
		}
		n := a.Norm()
		u, w := n.Basis()
		return approx(u.Len(), 1, 1e-9) && approx(w.Len(), 1, 1e-9) &&
			approx(n.Dot(u), 0, 1e-9) && approx(n.Dot(w), 0, 1e-9) &&
			approx(u.Dot(w), 0, 1e-9)
	}
	cfg := quickCfg(5)
	cfg.Values = func(vals []reflectValue, r *rand.Rand) {
		vals[0] = valueOf(genVec(r))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCompRoundTrip(t *testing.T) {
	v := V(1, 2, 3)
	for i := 0; i < 3; i++ {
		v = v.SetComp(i, float64(10+i))
	}
	if v != (Vec{10, 11, 12}) {
		t.Errorf("SetComp round trip = %v", v)
	}
	if v.Comp(0) != 10 || v.Comp(1) != 11 || v.Comp(2) != 12 {
		t.Errorf("Comp readback failed: %v", v)
	}
}

func TestMinMaxAbs(t *testing.T) {
	a, b := V(1, -2, 3), V(-4, 5, -6)
	if got := a.Min(b); got != (Vec{-4, -2, -6}) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != (Vec{1, 5, 3}) {
		t.Errorf("Max = %v", got)
	}
	if got := b.Abs(); got != (Vec{4, 5, 6}) {
		t.Errorf("Abs = %v", got)
	}
}

func TestLerp(t *testing.T) {
	a, b := V(0, 0, 0), V(10, 20, 30)
	if got := a.Lerp(b, 0.5); got != (Vec{5, 10, 15}) {
		t.Errorf("Lerp = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !V(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (Vec{math.NaN(), 0, 0}).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if (Vec{0, math.Inf(1), 0}).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}
