// Package m3 provides the small fixed-size linear algebra used by the
// physics engine: 3-vectors, 3x3 matrices, quaternions and axis-aligned
// bounding boxes. All types are values; operations return new values and
// never mutate their receivers.
package m3

import "math"

// Eps is the tolerance used by the geometric routines when comparing
// lengths and penetration depths.
const Eps = 1e-9

// Vec is a 3-component vector.
type Vec struct {
	X, Y, Z float64
}

// V is shorthand for Vec{x, y, z}.
func V(x, y, z float64) Vec { return Vec{x, y, z} }

// Zero is the zero vector.
var Zero = Vec{}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s, v.Z * s} }

// Neg returns -v.
func (v Vec) Neg() Vec { return Vec{-v.X, -v.Y, -v.Z} }

// Dot returns the dot product v . w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v x w.
func (v Vec) Cross(w Vec) Vec {
	return Vec{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Len returns |v|.
func (v Vec) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Len2 returns |v|^2.
func (v Vec) Len2() float64 { return v.Dot(v) }

// Dist returns |v - w|.
func (v Vec) Dist(w Vec) float64 { return v.Sub(w).Len() }

// Norm returns v normalized to unit length. The zero vector normalizes
// to the zero vector.
func (v Vec) Norm() Vec {
	l := v.Len()
	if l < Eps {
		return Vec{}
	}
	return v.Scale(1 / l)
}

// Mul returns the component-wise product of v and w.
func (v Vec) Mul(w Vec) Vec { return Vec{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Abs returns the component-wise absolute value of v.
func (v Vec) Abs() Vec { return Vec{math.Abs(v.X), math.Abs(v.Y), math.Abs(v.Z)} }

// Min returns the component-wise minimum of v and w.
func (v Vec) Min(w Vec) Vec {
	return Vec{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// Max returns the component-wise maximum of v and w.
func (v Vec) Max(w Vec) Vec {
	return Vec{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}

// Comp returns component i of v (0 = X, 1 = Y, 2 = Z).
func (v Vec) Comp(i int) float64 {
	switch i {
	case 0:
		return v.X
	case 1:
		return v.Y
	default:
		return v.Z
	}
}

// SetComp returns v with component i replaced by x.
func (v Vec) SetComp(i int, x float64) Vec {
	switch i {
	case 0:
		v.X = x
	case 1:
		v.Y = x
	default:
		v.Z = x
	}
	return v
}

// Lerp returns the linear interpolation between v and w at parameter t.
func (v Vec) Lerp(w Vec, t float64) Vec { return v.Add(w.Sub(v).Scale(t)) }

// IsFinite reports whether every component of v is finite.
func (v Vec) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

// Basis returns two unit vectors u, w such that {n, u, w} form an
// orthonormal basis. n must be unit length.
func (n Vec) Basis() (u, w Vec) {
	if math.Abs(n.X) > 0.7 {
		u = Vec{n.Y, -n.X, 0}.Norm()
	} else {
		u = Vec{0, n.Z, -n.Y}.Norm()
	}
	w = n.Cross(u)
	return u, w
}
