package m3

import "math"

// Quat is a rotation quaternion (W + Xi + Yj + Zk).
type Quat struct {
	W, X, Y, Z float64
}

// QIdent is the identity rotation.
var QIdent = Quat{W: 1}

// QFromAxisAngle returns the quaternion rotating by angle radians about
// the given axis. The axis need not be unit length.
func QFromAxisAngle(axis Vec, angle float64) Quat {
	a := axis.Norm()
	s, c := math.Sincos(angle / 2)
	return Quat{W: c, X: a.X * s, Y: a.Y * s, Z: a.Z * s}
}

// QFromEuler returns the quaternion for the given yaw (about Y), pitch
// (about X) and roll (about Z), applied in roll-pitch-yaw order.
func QFromEuler(yaw, pitch, roll float64) Quat {
	qy := QFromAxisAngle(Vec{0, 1, 0}, yaw)
	qp := QFromAxisAngle(Vec{1, 0, 0}, pitch)
	qr := QFromAxisAngle(Vec{0, 0, 1}, roll)
	return qy.Mul(qp).Mul(qr)
}

// Mul returns the composition q * p (apply p first, then q).
func (q Quat) Mul(p Quat) Quat {
	return Quat{
		W: q.W*p.W - q.X*p.X - q.Y*p.Y - q.Z*p.Z,
		X: q.W*p.X + q.X*p.W + q.Y*p.Z - q.Z*p.Y,
		Y: q.W*p.Y - q.X*p.Z + q.Y*p.W + q.Z*p.X,
		Z: q.W*p.Z + q.X*p.Y - q.Y*p.X + q.Z*p.W,
	}
}

// Conj returns the conjugate of q (the inverse rotation for unit q).
func (q Quat) Conj() Quat { return Quat{W: q.W, X: -q.X, Y: -q.Y, Z: -q.Z} }

// Len returns the quaternion magnitude.
func (q Quat) Len() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Norm returns q normalized to unit length; a degenerate quaternion
// normalizes to the identity.
func (q Quat) Norm() Quat {
	l := q.Len()
	if l < Eps {
		return QIdent
	}
	inv := 1 / l
	return Quat{W: q.W * inv, X: q.X * inv, Y: q.Y * inv, Z: q.Z * inv}
}

// Rotate applies the rotation q to vector v.
func (q Quat) Rotate(v Vec) Vec {
	// v' = v + 2*u x (u x v + w*v), u = (X,Y,Z)
	u := Vec{q.X, q.Y, q.Z}
	t := u.Cross(v).Add(v.Scale(q.W))
	return v.Add(u.Cross(t).Scale(2))
}

// Mat returns the rotation matrix equivalent to q (assumed unit).
func (q Quat) Mat() Mat {
	x2, y2, z2 := q.X*q.X, q.Y*q.Y, q.Z*q.Z
	xy, xz, yz := q.X*q.Y, q.X*q.Z, q.Y*q.Z
	wx, wy, wz := q.W*q.X, q.W*q.Y, q.W*q.Z
	return Mat{M: [3][3]float64{
		{1 - 2*(y2+z2), 2 * (xy - wz), 2 * (xz + wy)},
		{2 * (xy + wz), 1 - 2*(x2+z2), 2 * (yz - wx)},
		{2 * (xz - wy), 2 * (yz + wx), 1 - 2*(x2+y2)},
	}}
}

// Integrate advances orientation q by angular velocity w over dt seconds
// using the standard first-order quaternion derivative, renormalizing
// the result.
func (q Quat) Integrate(w Vec, dt float64) Quat {
	dq := Quat{W: 0, X: w.X, Y: w.Y, Z: w.Z}.Mul(q)
	h := dt / 2
	return Quat{
		W: q.W + dq.W*h,
		X: q.X + dq.X*h,
		Y: q.Y + dq.Y*h,
		Z: q.Z + dq.Z*h,
	}.Norm()
}

// IsFinite reports whether every component of q is finite.
func (q Quat) IsFinite() bool {
	for _, c := range [4]float64{q.W, q.X, q.Y, q.Z} {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return false
		}
	}
	return true
}
