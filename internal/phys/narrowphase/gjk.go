package narrowphase

import (
	"math"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// GJK/EPA collision for convex shapes, used by the hull paths of the
// narrow phase. Any convex shape is represented by its support
// function; the Minkowski-difference simplex (GJK) answers the overlap
// question and the expanding polytope (EPA) recovers penetration depth,
// normal, and witness points.

// supportShape is a devirtualized support function: one flat struct per
// convex shape, dispatched by kind. The earlier closure-per-shape
// representation allocated on every hull pair; building a supportShape
// is a stack write.
type supportShape struct {
	kind   geom.Kind
	pos    m3.Vec
	rot    m3.Mat
	r      float64 // sphere/capsule radius
	half   m3.Vec  // box half extents
	p0, p1 m3.Vec  // capsule axis endpoints (world)
	hull   *geom.Hull
}

// makeSupport builds the support shape for a convex geom. It panics on
// non-convex shapes (plane/heightfield/trimesh), which never reach the
// GJK paths.
func makeSupport(g *geom.Geom) supportShape {
	switch s := g.Shape.(type) {
	case geom.Sphere:
		return supportShape{kind: geom.KindSphere, pos: g.Pos, r: s.R}
	case geom.Box:
		return supportShape{kind: geom.KindBox, pos: g.Pos, rot: g.Rot, half: s.Half}
	case geom.Capsule:
		p0, p1 := s.Ends(g.Pos, g.Rot)
		return supportShape{kind: geom.KindCapsule, p0: p0, p1: p1, r: s.R}
	case *geom.Hull:
		return supportShape{kind: geom.KindHull, pos: g.Pos, rot: g.Rot, hull: s}
	}
	//paraxlint:allow(parsafe) panic message on a path that cannot be reached from the dispatch table
	panic("narrowphase: support function requested for non-convex shape " + g.Shape.Kind().String())
}

// at evaluates the support function in world direction d.
func (s *supportShape) at(d m3.Vec) m3.Vec {
	switch s.kind {
	case geom.KindSphere:
		return s.pos.Add(d.Norm().Scale(s.r))
	case geom.KindBox:
		l := s.rot.TMulVec(d)
		p := m3.V(
			math.Copysign(s.half.X, l.X),
			math.Copysign(s.half.Y, l.Y),
			math.Copysign(s.half.Z, l.Z),
		)
		return s.rot.MulVec(p).Add(s.pos)
	case geom.KindCapsule:
		e := s.p0
		if d.Dot(s.p1) > d.Dot(s.p0) {
			e = s.p1
		}
		return e.Add(d.Norm().Scale(s.r))
	case geom.KindHull:
		return s.rot.MulVec(s.hull.SupportLocal(s.rot.TMulVec(d))).Add(s.pos)
	}
	return m3.Zero
}

// mkv is one Minkowski-difference vertex with its witnesses.
type mkv struct {
	p      m3.Vec // supA - supB
	wa, wb m3.Vec
}

func minkowski(sa, sb *supportShape, d m3.Vec) mkv {
	a := sa.at(d)
	b := sb.at(d.Neg())
	return mkv{p: a.Sub(b), wa: a, wb: b}
}

// gjk runs the boolean GJK test. On overlap it returns the final
// tetrahedral simplex for EPA.
func gjk(sa, sb *supportShape) (simplex [4]mkv, n int, hit bool) {
	d := m3.V(1, 0, 0)
	v := minkowski(sa, sb, d)
	simplex[0] = v
	n = 1
	d = v.p.Neg()
	for iter := 0; iter < 64; iter++ {
		if d.Len2() < 1e-18 {
			// Origin on the simplex boundary: treat as touching.
			return simplex, n, true
		}
		v = minkowski(sa, sb, d)
		if v.p.Dot(d) < 0 {
			return simplex, n, false // origin outside the support plane
		}
		// Insert new point at the front.
		copy(simplex[1:], simplex[:n])
		simplex[0] = v
		if n < 4 {
			n++
		}
		var contains bool
		simplex, n, d, contains = nextSimplex(simplex, n)
		if contains {
			return simplex, n, true
		}
	}
	return simplex, n, false
}

// nextSimplex reduces the simplex to the feature closest to the origin
// and returns the next search direction.
func nextSimplex(s [4]mkv, n int) ([4]mkv, int, m3.Vec, bool) {
	switch n {
	case 2:
		a, b := s[0].p, s[1].p
		ab := b.Sub(a)
		ao := a.Neg()
		if ab.Dot(ao) > 0 {
			d := ab.Cross(ao).Cross(ab)
			return s, 2, d, false
		}
		return s, 1, ao, false
	case 3:
		a, b, c := s[0].p, s[1].p, s[2].p
		ab := b.Sub(a)
		ac := c.Sub(a)
		ao := a.Neg()
		abc := ab.Cross(ac)
		if abc.Cross(ac).Dot(ao) > 0 {
			if ac.Dot(ao) > 0 {
				s[1] = s[2]
				return s, 2, ac.Cross(ao).Cross(ac), false
			}
			return s, 2, ab.Cross(ao).Cross(ab), false
		}
		if ab.Cross(abc).Dot(ao) > 0 {
			return s, 2, ab.Cross(ao).Cross(ab), false
		}
		if abc.Dot(ao) > 0 {
			return s, 3, abc, false
		}
		// Below the triangle: flip winding.
		s[1], s[2] = s[2], s[1]
		return s, 3, abc.Neg(), false
	case 4:
		a := s[0].p
		b := s[1].p
		c := s[2].p
		dd := s[3].p
		ao := a.Neg()
		ab := b.Sub(a)
		ac := c.Sub(a)
		ad := dd.Sub(a)
		abc := ab.Cross(ac)
		acd := ac.Cross(ad)
		adb := ad.Cross(ab)
		if abc.Dot(ao) > 0 {
			return [4]mkv{s[0], s[1], s[2]}, 3, abc, false
		}
		if acd.Dot(ao) > 0 {
			return [4]mkv{s[0], s[2], s[3]}, 3, acd, false
		}
		if adb.Dot(ao) > 0 {
			return [4]mkv{s[0], s[3], s[1]}, 3, adb, false
		}
		return s, 4, m3.Zero, true
	}
	return s, n, s[0].p.Neg(), false
}

// epaFace is one triangle of the expanding polytope.
type epaFace struct {
	a, b, c int
	normal  m3.Vec // outward unit normal
	dist    float64
}

// epaEdge is one horizon edge during polytope expansion.
type epaEdge struct{ a, b int }

// epaDirs completes a degenerate terminal simplex to a tetrahedron.
var epaDirs = [8]m3.Vec{
	{X: 1}, {X: -1}, {Y: 1}, {Y: -1}, {Z: 1}, {Z: -1},
	{X: 1, Y: 1, Z: 1}, {X: -1, Y: -1, Z: -1},
}

// refreshEpaFace recomputes a face's outward normal and distance,
// orienting it against the interior point. It reports false on a
// degenerate (collinear) face.
func refreshEpaFace(verts []mkv, interior m3.Vec, f *epaFace) bool {
	a, b, c := verts[f.a].p, verts[f.b].p, verts[f.c].p
	nrm := b.Sub(a).Cross(c.Sub(a))
	if nrm.Len2() < 1e-18 {
		return false
	}
	nrm = nrm.Norm()
	if nrm.Dot(a.Sub(interior)) < 0 {
		f.b, f.c = f.c, f.b
		nrm = nrm.Neg()
	}
	f.normal = nrm
	d := nrm.Dot(a)
	if d < 0 {
		d = 0 // origin marginally outside a boundary face: clamp
	}
	f.dist = d
	return true
}

// addHorizonEdge inserts e unless its reverse is already present (an
// edge shared by two removed faces is interior, not horizon), in which
// case the reverse is removed instead.
func addHorizonEdge(h []epaEdge, e epaEdge) []epaEdge {
	for i, x := range h {
		if x.a == e.b && x.b == e.a {
			return append(h[:i], h[i+1:]...)
		}
	}
	return append(h, e)
}

// epaWitness projects the origin onto the face and blends the witness
// points barycentrically.
func epaWitness(verts []mkv, f epaFace) (normal m3.Vec, depth float64, point m3.Vec) {
	a, b, c := verts[f.a], verts[f.b], verts[f.c]
	u, vv, w := barycentric(f.normal.Scale(f.dist), a.p, b.p, c.p)
	wa := a.wa.Scale(u).Add(b.wa.Scale(vv)).Add(c.wa.Scale(w))
	wb := a.wb.Scale(u).Add(b.wb.Scale(vv)).Add(c.wb.Scale(w))
	return f.normal, f.dist, wa.Add(wb).Scale(0.5)
}

// epa expands the terminal GJK simplex to find the penetration depth,
// contact normal (pointing from shape A toward shape B) and witness
// point. All polytope storage lives in the Scratch and is reused across
// calls; the arithmetic and iteration order are identical to the
// allocating version this replaced, so results are bit-identical.
func epa(sa, sb *supportShape, scr *Scratch, simplex [4]mkv, n int) (normal m3.Vec, depth float64, point m3.Vec, ok bool) {
	//paraxlint:allow(parsafe) seeds scr.verts, written back below: grows to the largest polytope seen, then reused
	verts := append(scr.verts[:0], simplex[:n]...)
	scr.verts = verts
	// Complete degenerate simplices to a tetrahedron.
	for di := 0; len(verts) < 4 && di < len(epaDirs); di++ {
		v := minkowski(sa, sb, epaDirs[di])
		dup := false
		for _, w := range verts {
			if w.p.Sub(v.p).Len2() < 1e-16 {
				dup = true
				break
			}
		}
		if !dup {
			verts = append(verts, v)
			scr.verts = verts
		}
	}
	if len(verts) < 4 {
		return m3.Zero, 0, m3.Zero, false
	}

	//paraxlint:allow(parsafe) seeds scr.faces, written back below: grows to the largest polytope seen, then reused
	faces := append(scr.faces[:0],
		epaFace{a: 0, b: 1, c: 2}, epaFace{a: 0, b: 2, c: 3},
		epaFace{a: 0, b: 3, c: 1}, epaFace{a: 1, b: 3, c: 2})
	alt := scr.alt[:0]
	scr.faces, scr.alt = faces, alt
	// Orient faces against an interior point (the initial tetrahedron's
	// centroid), not the origin: the origin may lie exactly on a face of
	// the terminal GJK simplex, where its side is numerically ambiguous
	// and a misoriented face corrupts the polytope.
	interior := verts[0].p.Add(verts[1].p).Add(verts[2].p).Add(verts[3].p).Scale(0.25)
	for i := range faces {
		if !refreshEpaFace(verts, interior, &faces[i]) {
			return m3.Zero, 0, m3.Zero, false
		}
	}

	for iter := 0; iter < 96; iter++ {
		// Closest face to the origin.
		best := 0
		for i := 1; i < len(faces); i++ {
			if faces[i].dist < faces[best].dist {
				best = i
			}
		}
		f := faces[best]
		v := minkowski(sa, sb, f.normal)
		grow := v.p.Dot(f.normal) - f.dist
		if grow < 1e-7 || iter == 95 {
			// Converged: project the origin onto the face for witnesses.
			normal, depth, point = epaWitness(verts, f)
			return normal, depth, point, true
		}
		// Split every face visible from the new vertex, keeping the
		// horizon edges. kept fills the ping-pong buffer, never the one
		// being iterated.
		vi := len(verts)
		verts = append(verts, v)
		scr.verts = verts
		horizon := scr.horizon[:0]
		kept := alt[:0]
		for _, fc := range faces {
			if fc.normal.Dot(v.p.Sub(verts[fc.a].p)) > 0 {
				horizon = addHorizonEdge(horizon, epaEdge{fc.a, fc.b})
				horizon = addHorizonEdge(horizon, epaEdge{fc.b, fc.c})
				horizon = addHorizonEdge(horizon, epaEdge{fc.c, fc.a})
			} else {
				kept = append(kept, fc)
			}
		}
		scr.horizon = horizon
		if len(horizon) == 0 {
			// Numerical trouble: accept the current best face.
			normal, depth, point = epaWitness(verts, f)
			return normal, depth, point, true
		}
		for _, e := range horizon {
			nf := epaFace{a: e.a, b: e.b, c: vi}
			if refreshEpaFace(verts, interior, &nf) {
				kept = append(kept, nf)
			}
		}
		faces, alt = kept, faces
		scr.faces, scr.alt = faces, alt
		if len(faces) == 0 {
			return m3.Zero, 0, m3.Zero, false
		}
	}
	return m3.Zero, 0, m3.Zero, false
}

// barycentric returns the barycentric coordinates of p on triangle
// (a, b, c), clamped to the triangle.
func barycentric(p, a, b, c m3.Vec) (u, v, w float64) {
	v0 := b.Sub(a)
	v1 := c.Sub(a)
	v2 := p.Sub(a)
	d00 := v0.Dot(v0)
	d01 := v0.Dot(v1)
	d11 := v1.Dot(v1)
	d20 := v2.Dot(v0)
	d21 := v2.Dot(v1)
	den := d00*d11 - d01*d01
	if math.Abs(den) < 1e-18 {
		return 1, 0, 0
	}
	v = (d11*d20 - d01*d21) / den
	w = (d00*d21 - d01*d20) / den
	u = 1 - v - w
	// Clamp (degenerate projections).
	if u < 0 {
		u = 0
	}
	if v < 0 {
		v = 0
	}
	if w < 0 {
		w = 0
	}
	s := u + v + w
	if s > 0 {
		u, v, w = u/s, v/s, w/s
	}
	return u, v, w
}

// convexConvex produces a single GJK/EPA contact between two convex
// geoms (at least one a hull).
func convexConvex(scr *Scratch, a, b *geom.Geom, dst []Contact, st *Stats) []Contact {
	primTest(st)
	sa, sb := makeSupport(a), makeSupport(b)
	simplex, n, hit := gjk(&sa, &sb)
	if !hit {
		return dst
	}
	normal, depth, point, ok := epa(&sa, &sb, scr, simplex, n)
	if !ok || depth <= 0 {
		return dst
	}
	// EPA's outward normal on A - B is the direction along which B must
	// move (and A must move oppositely) to separate — exactly the
	// contact convention (Normal points from A into B).
	return append(dst, Contact{
		A: int32(a.ID), B: int32(b.ID),
		Pos: point, Normal: normal, Depth: depth,
	})
}

// hullPlane rests a hull on a plane: every vertex below the surface
// becomes a contact (capped to the deepest MaxContactsPerPair).
func hullPlane(a, b *geom.Geom, dst []Contact, st *Stats) []Contact {
	primTest(st)
	h := a.Shape.(*geom.Hull)
	p := b.Shape.(geom.Plane)
	start := len(dst)
	for _, v := range h.Verts {
		w := a.Rot.MulVec(v).Add(a.Pos)
		depth := -p.Depth(w)
		if depth <= 0 {
			continue
		}
		dst = append(dst, Contact{
			A: int32(a.ID), B: int32(b.ID),
			Pos: w, Normal: p.Normal.Neg(), Depth: depth,
		})
	}
	return capManifold(dst, start)
}

// hullHeightField rests a hull on terrain by vertex sampling.
func hullHeightField(a, b *geom.Geom, dst []Contact, st *Stats) []Contact {
	h := a.Shape.(*geom.Hull)
	hf := b.Shape.(*geom.HeightField)
	start := len(dst)
	for _, v := range h.Verts {
		triTest(st)
		w := a.Rot.MulVec(v).Add(a.Pos)
		lx, lz := w.X-b.Pos.X, w.Z-b.Pos.Z
		hgt := hf.HeightAt(lx, lz) + b.Pos.Y
		if w.Y >= hgt {
			continue
		}
		n := hf.NormalAt(lx, lz)
		dst = append(dst, Contact{
			A: int32(a.ID), B: int32(b.ID),
			Pos: w, Normal: n.Neg(), Depth: hgt - w.Y,
		})
	}
	return capManifold(dst, start)
}
