package narrowphase

import (
	"math"
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

func TestRaySphere(t *testing.T) {
	s := mk(0, geom.Sphere{R: 1}, m3.V(5, 0, 0))
	hit, ok := RayCast(s, m3.Zero, m3.V(1, 0, 0), 100)
	if !ok {
		t.Fatal("ray should hit sphere")
	}
	if math.Abs(hit.T-4) > 1e-9 {
		t.Errorf("T = %v, want 4", hit.T)
	}
	if hit.Normal.Sub(m3.V(-1, 0, 0)).Len() > 1e-9 {
		t.Errorf("normal = %v, want -x", hit.Normal)
	}
	if _, ok := RayCast(s, m3.Zero, m3.V(0, 1, 0), 100); ok {
		t.Error("perpendicular ray should miss")
	}
	if _, ok := RayCast(s, m3.Zero, m3.V(1, 0, 0), 3); ok {
		t.Error("short ray should miss")
	}
}

func TestRayBox(t *testing.T) {
	b := mk(0, geom.Box{Half: m3.V(1, 1, 1)}, m3.V(0, 5, 0))
	hit, ok := RayCast(b, m3.Zero, m3.V(0, 1, 0), 100)
	if !ok {
		t.Fatal("ray should hit box")
	}
	if math.Abs(hit.T-4) > 1e-9 {
		t.Errorf("T = %v, want 4", hit.T)
	}
	if hit.Normal.Sub(m3.V(0, -1, 0)).Len() > 1e-9 {
		t.Errorf("normal = %v, want -y", hit.Normal)
	}
}

func TestRayRotatedBox(t *testing.T) {
	q := m3.QFromAxisAngle(m3.V(0, 0, 1), math.Pi/4)
	b := mkRot(0, geom.Box{Half: m3.V(1, 1, 1)}, m3.V(0, 5, 0), q)
	hit, ok := RayCast(b, m3.Zero, m3.V(0, 1, 0), 100)
	if !ok {
		t.Fatal("ray should hit rotated box")
	}
	// Rotated 45 degrees, corner at distance 5-sqrt(2).
	if math.Abs(hit.T-(5-math.Sqrt2)) > 1e-6 {
		t.Errorf("T = %v, want %v", hit.T, 5-math.Sqrt2)
	}
}

func TestRayCapsule(t *testing.T) {
	c := mk(0, geom.Capsule{R: 0.5, HalfLen: 1}, m3.V(3, 0, 0))
	hit, ok := RayCast(c, m3.Zero, m3.V(1, 0, 0), 100)
	if !ok {
		t.Fatal("ray should hit capsule")
	}
	if math.Abs(hit.T-2.5) > 1e-3 {
		t.Errorf("T = %v, want 2.5", hit.T)
	}
}

func TestRayPlane(t *testing.T) {
	p := mk(0, geom.Plane{Normal: m3.V(0, 1, 0), Offset: 0}, m3.Zero)
	hit, ok := RayCast(p, m3.V(0, 3, 0), m3.V(0, -1, 0), 100)
	if !ok {
		t.Fatal("ray should hit plane")
	}
	if math.Abs(hit.T-3) > 1e-9 {
		t.Errorf("T = %v, want 3", hit.T)
	}
	if _, ok := RayCast(p, m3.V(0, 3, 0), m3.V(1, 0, 0), 100); ok {
		t.Error("parallel ray should miss plane")
	}
}

func TestRayHeightField(t *testing.T) {
	hs := make([]float64, 25)
	hf := geom.NewHeightField(5, 5, 1, 1, hs)
	f := mk(0, hf, m3.Zero)
	hit, ok := RayCast(f, m3.V(2, 3, 2), m3.V(0, -1, 0), 100)
	if !ok {
		t.Fatal("ray should hit terrain")
	}
	if math.Abs(hit.T-3) > 0.01 {
		t.Errorf("T = %v, want 3", hit.T)
	}
}

func TestRayTriMesh(t *testing.T) {
	verts := []m3.Vec{m3.V(-2, 0, -2), m3.V(2, 0, -2), m3.V(2, 0, 2), m3.V(-2, 0, 2)}
	tm := geom.NewTriMesh(verts, []geom.Tri{{0, 1, 2}, {0, 2, 3}})
	f := mk(0, tm, m3.Zero)
	hit, ok := RayCast(f, m3.V(0.5, 4, 0.5), m3.V(0, -1, 0), 100)
	if !ok {
		t.Fatal("ray should hit mesh")
	}
	if math.Abs(hit.T-4) > 1e-9 {
		t.Errorf("T = %v, want 4", hit.T)
	}
	if hit.Normal.Y < 0.99 {
		t.Errorf("normal = %v, want +y (facing ray origin)", hit.Normal)
	}
	if _, ok := RayCast(f, m3.V(10, 4, 10), m3.V(0, -1, 0), 100); ok {
		t.Error("ray outside mesh should miss")
	}
}

func TestRayTriangleBarycentricBounds(t *testing.T) {
	v0, v1, v2 := m3.V(0, 0, 0), m3.V(1, 0, 0), m3.V(0, 0, 1)
	if _, ok := rayTriangle(m3.V(0.9, 1, 0.9), m3.V(0, -1, 0), v0, v1, v2, 10); ok {
		t.Error("ray outside the hypotenuse should miss")
	}
	if tt, ok := rayTriangle(m3.V(0.25, 1, 0.25), m3.V(0, -1, 0), v0, v1, v2, 10); !ok || math.Abs(tt-1) > 1e-12 {
		t.Errorf("interior hit t=%v ok=%v", tt, ok)
	}
}
