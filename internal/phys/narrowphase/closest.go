// Package narrowphase implements the second stage of collision
// detection: computing contact points, normals and penetration depths
// for each candidate geom pair produced by the broad phase. Every pair
// is independent of every other, which is the source of the massive
// fine-grain parallelism the ParallAX architecture exploits.
package narrowphase

import (
	"math"

	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// clamp01 clamps t to [0, 1].
func clamp01(t float64) float64 {
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

// closestPtSegSeg returns the closest points between segments [p1,q1]
// and [p2,q2] and the segment parameters at which they occur.
func closestPtSegSeg(p1, q1, p2, q2 m3.Vec) (c1, c2 m3.Vec, s, t float64) {
	d1 := q1.Sub(p1)
	d2 := q2.Sub(p2)
	r := p1.Sub(p2)
	a := d1.Len2()
	e := d2.Len2()
	f := d2.Dot(r)

	switch {
	case a <= m3.Eps && e <= m3.Eps:
		return p1, p2, 0, 0
	case a <= m3.Eps:
		t = clamp01(f / e)
		return p1, p2.Add(d2.Scale(t)), 0, t
	}
	c := d1.Dot(r)
	if e <= m3.Eps {
		s = clamp01(-c / a)
		return p1.Add(d1.Scale(s)), p2, s, 0
	}
	b := d1.Dot(d2)
	den := a*e - b*b
	if den > m3.Eps {
		s = clamp01((b*f - c*e) / den)
	}
	t = (b*s + f) / e
	if t < 0 {
		t = 0
		s = clamp01(-c / a)
	} else if t > 1 {
		t = 1
		s = clamp01((b - c) / a)
	}
	c1 = p1.Add(d1.Scale(s))
	c2 = p2.Add(d2.Scale(t))
	return c1, c2, s, t
}

// closestPtPointTriangle returns the point on triangle (a,b,c) closest
// to p.
func closestPtPointTriangle(p, a, b, c m3.Vec) m3.Vec {
	ab := b.Sub(a)
	ac := c.Sub(a)
	ap := p.Sub(a)
	d1 := ab.Dot(ap)
	d2 := ac.Dot(ap)
	if d1 <= 0 && d2 <= 0 {
		return a
	}
	bp := p.Sub(b)
	d3 := ab.Dot(bp)
	d4 := ac.Dot(bp)
	if d3 >= 0 && d4 <= d3 {
		return b
	}
	vc := d1*d4 - d3*d2
	if vc <= 0 && d1 >= 0 && d3 <= 0 {
		v := d1 / (d1 - d3)
		return a.Add(ab.Scale(v))
	}
	cp := p.Sub(c)
	d5 := ab.Dot(cp)
	d6 := ac.Dot(cp)
	if d6 >= 0 && d5 <= d6 {
		return c
	}
	vb := d5*d2 - d1*d6
	if vb <= 0 && d2 >= 0 && d6 <= 0 {
		w := d2 / (d2 - d6)
		return a.Add(ac.Scale(w))
	}
	va := d3*d6 - d5*d4
	if va <= 0 && (d4-d3) >= 0 && (d5-d6) >= 0 {
		w := (d4 - d3) / ((d4 - d3) + (d5 - d6))
		return b.Add(c.Sub(b).Scale(w))
	}
	den := 1 / (va + vb + vc)
	v := vb * den
	w := vc * den
	return a.Add(ab.Scale(v)).Add(ac.Scale(w))
}

// closestPtSegTriangle returns closest points between segment [p,q] and
// triangle (a,b,c).
func closestPtSegTriangle(p, q, a, b, c m3.Vec) (onSeg, onTri m3.Vec) {
	// Candidate 1..3: segment vs each triangle edge.
	best := math.Inf(1)
	for _, e := range [3][2]m3.Vec{{a, b}, {b, c}, {c, a}} {
		s1, s2, _, _ := closestPtSegSeg(p, q, e[0], e[1])
		if d := s1.Sub(s2).Len2(); d < best {
			best, onSeg, onTri = d, s1, s2
		}
	}
	// Candidate 4..5: endpoints vs triangle interior.
	if t := closestPtPointTriangle(p, a, b, c); p.Sub(t).Len2() < best {
		best, onSeg, onTri = p.Sub(t).Len2(), p, t
	}
	if t := closestPtPointTriangle(q, a, b, c); q.Sub(t).Len2() < best {
		best, onSeg, onTri = q.Sub(t).Len2(), q, t
	}
	// Candidate 6: segment crossing the triangle plane inside the face.
	n := b.Sub(a).Cross(c.Sub(a))
	if n.Len2() > m3.Eps {
		dp := n.Dot(p.Sub(a))
		dq := n.Dot(q.Sub(a))
		if dp*dq < 0 { // endpoints straddle the plane
			t := dp / (dp - dq)
			x := p.Lerp(q, t)
			if closestPtPointTriangle(x, a, b, c).Sub(x).Len2() < m3.Eps {
				onSeg, onTri = x, x
			}
		}
	}
	return onSeg, onTri
}

// closestPtPointBox returns the point on (or in) an oriented box closest
// to p, plus whether p is inside. The box has half-extents half, center
// pos, rotation rot.
func closestPtPointBox(p, pos m3.Vec, rot m3.Mat, half m3.Vec) (m3.Vec, bool) {
	l := rot.TMulVec(p.Sub(pos)) // into box frame
	inside := true
	var cl m3.Vec
	for i := 0; i < 3; i++ {
		v := l.Comp(i)
		h := half.Comp(i)
		if v < -h {
			v = -h
			inside = false
		} else if v > h {
			v = h
			inside = false
		}
		cl = cl.SetComp(i, v)
	}
	return rot.MulVec(cl).Add(pos), inside
}

// deepestInteriorAxis returns, for a point strictly inside a box (local
// coordinates l), the face normal (local) and penetration depth to the
// nearest face.
func deepestInteriorAxis(l, half m3.Vec) (m3.Vec, float64) {
	bestDepth := math.Inf(1)
	var n m3.Vec
	for i := 0; i < 3; i++ {
		h := half.Comp(i)
		v := l.Comp(i)
		if d := h - v; d < bestDepth { // +face
			bestDepth = d
			n = m3.Zero.SetComp(i, 1)
		}
		if d := h + v; d < bestDepth { // -face
			bestDepth = d
			n = m3.Zero.SetComp(i, -1)
		}
	}
	return n, bestDepth
}
