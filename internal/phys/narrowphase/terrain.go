package narrowphase

import (
	"math"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// ---- heightfield pairs (primitive is always geom a; field is geom b) ----

func sphereHeightField(a, b *geom.Geom, dst []Contact, st *Stats) []Contact {
	triTest(st)
	sa := a.Shape.(geom.Sphere)
	hf := b.Shape.(*geom.HeightField)
	lx := a.Pos.X - b.Pos.X
	lz := a.Pos.Z - b.Pos.Z
	h := hf.HeightAt(lx, lz) + b.Pos.Y
	n := hf.NormalAt(lx, lz)
	// Signed distance of the sphere center above the local surface plane.
	depth := sa.R - n.Dot(a.Pos.Sub(m3.V(a.Pos.X, h, a.Pos.Z)))
	if depth <= 0 {
		return dst
	}
	return append(dst, Contact{
		A: int32(a.ID), B: int32(b.ID),
		Pos:    a.Pos.Sub(n.Scale(sa.R - depth/2)),
		Normal: n.Neg(),
		Depth:  depth,
	})
}

func boxHeightField(a, b *geom.Geom, dst []Contact, st *Stats) []Contact {
	ba := a.Shape.(geom.Box)
	hf := b.Shape.(*geom.HeightField)
	start := len(dst)
	for i := 0; i < 8; i++ {
		triTest(st)
		c := m3.V(
			ba.Half.X*float64(1-2*(i&1)),
			ba.Half.Y*float64(1-2*((i>>1)&1)),
			ba.Half.Z*float64(1-2*((i>>2)&1)),
		)
		w := a.Rot.MulVec(c).Add(a.Pos)
		lx, lz := w.X-b.Pos.X, w.Z-b.Pos.Z
		h := hf.HeightAt(lx, lz) + b.Pos.Y
		if w.Y >= h {
			continue
		}
		n := hf.NormalAt(lx, lz)
		dst = append(dst, Contact{
			A: int32(a.ID), B: int32(b.ID),
			Pos: w, Normal: n.Neg(), Depth: h - w.Y,
		})
	}
	return capManifold(dst, start)
}

func capsuleHeightField(a, b *geom.Geom, dst []Contact, st *Stats) []Contact {
	ca := a.Shape.(geom.Capsule)
	hf := b.Shape.(*geom.HeightField)
	p0, p1 := ca.Ends(a.Pos, a.Rot)
	start := len(dst)
	for _, p := range [3]m3.Vec{p0, a.Pos, p1} {
		triTest(st)
		lx, lz := p.X-b.Pos.X, p.Z-b.Pos.Z
		h := hf.HeightAt(lx, lz) + b.Pos.Y
		n := hf.NormalAt(lx, lz)
		depth := ca.R - n.Dot(p.Sub(m3.V(p.X, h, p.Z)))
		if depth <= 0 {
			continue
		}
		dst = append(dst, Contact{
			A: int32(a.ID), B: int32(b.ID),
			Pos:    p.Sub(n.Scale(ca.R - depth/2)),
			Normal: n.Neg(),
			Depth:  depth,
		})
	}
	return capManifold(dst, start)
}

// ---- trimesh pairs (primitive is always geom a; mesh is geom b) ----

func sphereTriMesh(scr *Scratch, a, b *geom.Geom, dst []Contact, st *Stats) []Contact {
	sa := a.Shape.(geom.Sphere)
	tm := b.Shape.(*geom.TriMesh)
	local := a.Box
	local.Min = local.Min.Sub(b.Pos)
	local.Max = local.Max.Sub(b.Pos)
	tris := scr.triQuery(tm, local)
	start := len(dst)
	for _, ti := range tris {
		triTest(st)
		v0, v1, v2 := tm.TriVerts(ti)
		v0, v1, v2 = v0.Add(b.Pos), v1.Add(b.Pos), v2.Add(b.Pos)
		cl := closestPtPointTriangle(a.Pos, v0, v1, v2)
		d := cl.Sub(a.Pos)
		dist := d.Len()
		pen := sa.R - dist
		if pen <= 0 {
			continue
		}
		var n m3.Vec
		if dist > m3.Eps {
			n = d.Scale(1 / dist)
		} else {
			n = v1.Sub(v0).Cross(v2.Sub(v0)).Norm().Neg()
		}
		dst = append(dst, Contact{
			A: int32(a.ID), B: int32(b.ID), Pos: cl, Normal: n, Depth: pen,
		})
	}
	return capManifold(dst, start)
}

func boxTriMesh(scr *Scratch, a, b *geom.Geom, dst []Contact, st *Stats) []Contact {
	ba := a.Shape.(geom.Box)
	tm := b.Shape.(*geom.TriMesh)
	local := a.Box
	local.Min = local.Min.Sub(b.Pos)
	local.Max = local.Max.Sub(b.Pos)
	tris := scr.triQuery(tm, local)
	start := len(dst)
	for _, ti := range tris {
		triTest(st)
		v0, v1, v2 := tm.TriVerts(ti)
		v0, v1, v2 = v0.Add(b.Pos), v1.Add(b.Pos), v2.Add(b.Pos)
		// Test triangle vertices against the box interior, and box
		// corners against the triangle plane (two-way vertex test).
		tn := v1.Sub(v0).Cross(v2.Sub(v0)).Norm()
		for _, v := range [3]m3.Vec{v0, v1, v2} {
			if _, inside := closestPtPointBox(v, a.Pos, a.Rot, ba.Half); inside {
				l := a.Rot.TMulVec(v.Sub(a.Pos))
				nLocal, depth := deepestInteriorAxis(l, ba.Half)
				dst = append(dst, Contact{
					A: int32(a.ID), B: int32(b.ID),
					Pos: v, Normal: a.Rot.MulVec(nLocal), Depth: depth,
				})
			}
		}
		for i := 0; i < 8; i++ {
			c := m3.V(
				ba.Half.X*float64(1-2*(i&1)),
				ba.Half.Y*float64(1-2*((i>>1)&1)),
				ba.Half.Z*float64(1-2*((i>>2)&1)),
			)
			w := a.Rot.MulVec(c).Add(a.Pos)
			d := tn.Dot(w.Sub(v0))
			if d >= 0 || d < -0.5 {
				continue // above the face, or too deep to be this triangle
			}
			cl := closestPtPointTriangle(w, v0, v1, v2)
			if cl.Sub(w).Len() > math.Abs(d)+1e-6 {
				continue // nearest feature is an edge of another triangle
			}
			dst = append(dst, Contact{
				A: int32(a.ID), B: int32(b.ID),
				Pos: w, Normal: tn.Neg(), Depth: -d,
			})
		}
	}
	return capManifold(dst, start)
}

func capsuleTriMesh(scr *Scratch, a, b *geom.Geom, dst []Contact, st *Stats) []Contact {
	ca := a.Shape.(geom.Capsule)
	tm := b.Shape.(*geom.TriMesh)
	p0, p1 := ca.Ends(a.Pos, a.Rot)
	local := a.Box
	local.Min = local.Min.Sub(b.Pos)
	local.Max = local.Max.Sub(b.Pos)
	tris := scr.triQuery(tm, local)
	start := len(dst)
	for _, ti := range tris {
		triTest(st)
		v0, v1, v2 := tm.TriVerts(ti)
		v0, v1, v2 = v0.Add(b.Pos), v1.Add(b.Pos), v2.Add(b.Pos)
		onSeg, onTri := closestPtSegTriangle(p0, p1, v0, v1, v2)
		d := onTri.Sub(onSeg)
		dist := d.Len()
		pen := ca.R - dist
		if pen <= 0 {
			continue
		}
		var n m3.Vec
		if dist > m3.Eps {
			n = d.Scale(1 / dist)
		} else {
			n = v1.Sub(v0).Cross(v2.Sub(v0)).Norm().Neg()
		}
		dst = append(dst, Contact{
			A: int32(a.ID), B: int32(b.ID), Pos: onTri, Normal: n, Depth: pen,
		})
	}
	return capManifold(dst, start)
}
