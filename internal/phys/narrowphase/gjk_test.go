package narrowphase

import (
	"math"
	"math/rand"
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

func TestGJKSeparatedSpheres(t *testing.T) {
	a := mk(0, geom.Sphere{R: 1}, m3.Zero)
	b := mk(1, geom.Sphere{R: 1}, m3.V(3, 0, 0))
	sa, sb := makeSupport(a), makeSupport(b)
	if _, _, hit := gjk(&sa, &sb); hit {
		t.Error("separated spheres reported overlapping")
	}
	b.Pos = m3.V(1.5, 0, 0)
	sb = makeSupport(b)
	if _, _, hit := gjk(&sa, &sb); !hit {
		t.Error("overlapping spheres reported separate")
	}
}

func TestEPASphereSphereMatchesAnalytic(t *testing.T) {
	// GJK/EPA on two spheres must reproduce the analytic sphere-sphere
	// depth and normal.
	a := mk(0, geom.Sphere{R: 1}, m3.Zero)
	b := mk(1, geom.Sphere{R: 1}, m3.V(1.4, 0.3, -0.2))
	want := Collide(a, b, nil, nil)
	var scr Scratch
	got := convexConvex(&scr, a, b, nil, nil)
	if len(want) != 1 || len(got) != 1 {
		t.Fatalf("contacts: analytic %d, gjk %d", len(want), len(got))
	}
	if math.Abs(got[0].Depth-want[0].Depth) > 0.01 {
		t.Errorf("depth: gjk %v vs analytic %v", got[0].Depth, want[0].Depth)
	}
	if got[0].Normal.Sub(want[0].Normal).Len() > 0.05 {
		t.Errorf("normal: gjk %v vs analytic %v", got[0].Normal, want[0].Normal)
	}
}

func TestHullCubeMatchesBox(t *testing.T) {
	// A hull-shaped cube colliding with a sphere must agree with the
	// analytic sphere-box path.
	half := m3.V(0.5, 0.5, 0.5)
	hull := mk(0, geom.BoxHull(half), m3.Zero)
	box := mk(1, geom.Box{Half: half}, m3.Zero)
	s := mk(2, geom.Sphere{R: 0.4}, m3.V(0.8, 0, 0))

	want := Collide(s, box, nil, nil)
	got := Collide(s, hull, nil, nil)
	if len(want) != 1 || len(got) != 1 {
		t.Fatalf("contacts: box %d, hull %d", len(want), len(got))
	}
	if math.Abs(got[0].Depth-want[0].Depth) > 0.01 {
		t.Errorf("depth: hull %v vs box %v", got[0].Depth, want[0].Depth)
	}
	if got[0].Normal.Sub(want[0].Normal).Len() > 0.05 {
		t.Errorf("normal: hull %v vs box %v", got[0].Normal, want[0].Normal)
	}
}

func TestHullMassPropertiesMatchBox(t *testing.T) {
	half := m3.V(0.3, 0.5, 0.7)
	h := geom.BoxHull(half)
	b := geom.Box{Half: half}
	if math.Abs(h.Volume()-b.Volume())/b.Volume() > 1e-9 {
		t.Errorf("volume: hull %v vs box %v", h.Volume(), b.Volume())
	}
	hi := h.Inertia(5)
	bi := b.Inertia(5)
	for i := 0; i < 3; i++ {
		if math.Abs(hi.M[i][i]-bi.M[i][i])/bi.M[i][i] > 1e-6 {
			t.Errorf("inertia[%d][%d]: hull %v vs box %v", i, i, hi.M[i][i], bi.M[i][i])
		}
	}
	// Off-diagonals vanish for a symmetric solid.
	if math.Abs(hi.M[0][1]) > 1e-9 || math.Abs(hi.M[1][2]) > 1e-9 {
		t.Errorf("hull inertia has spurious products: %v", hi)
	}
}

func TestHullCentroidRecentered(t *testing.T) {
	// A hull built from an off-center cloud re-centers onto its volume
	// centroid.
	off := m3.V(3, -2, 5)
	var verts []m3.Vec
	for i := 0; i < 8; i++ {
		verts = append(verts, m3.V(
			0.5*float64(1-2*(i&1))+off.X,
			0.5*float64(1-2*((i>>1)&1))+off.Y,
			0.5*float64(1-2*((i>>2)&1))+off.Z,
		))
	}
	h := geom.NewHull(verts, geom.BoxHull(m3.V(0.5, 0.5, 0.5)).Faces)
	sum := m3.Zero
	for _, v := range h.Verts {
		sum = sum.Add(v)
	}
	if sum.Len() > 1e-9 {
		t.Errorf("re-centered hull vertices do not average to zero: %v", sum)
	}
}

func TestHullOnPlaneRests(t *testing.T) {
	h := mk(0, geom.BoxHull(m3.V(0.5, 0.5, 0.5)), m3.V(0, 0.4, 0))
	p := mk(1, geom.Plane{Normal: m3.V(0, 1, 0)}, m3.Zero)
	cs := Collide(h, p, nil, nil)
	if len(cs) != 4 {
		t.Fatalf("resting hull cube: want 4 contacts, got %d", len(cs))
	}
	checkManifold(t, cs, h, p)
	for _, c := range cs {
		if math.Abs(c.Depth-0.1) > 1e-9 {
			t.Errorf("depth = %v, want 0.1", c.Depth)
		}
		if c.Normal.Sub(m3.V(0, -1, 0)).Len() > 1e-9 {
			t.Errorf("normal = %v, want -y (push hull up)", c.Normal)
		}
	}
	// And with the arguments flipped.
	cs2 := Collide(p, h, nil, nil)
	if len(cs2) != 4 || cs2[0].Normal.Y < 0.99 {
		t.Fatalf("flipped plane-hull manifold wrong: %+v", cs2)
	}
}

func TestTetrahedronHull(t *testing.T) {
	// A non-box hull: a regular-ish tetrahedron dropped point-down onto
	// a sphere still produces sane contacts via EPA.
	verts := []m3.Vec{
		m3.V(0, -0.5, 0), m3.V(0.5, 0.5, 0.5), m3.V(-0.5, 0.5, 0.5), m3.V(0, 0.5, -0.5),
	}
	faces := []geom.Tri{{0, 1, 2}, {0, 2, 3}, {0, 3, 1}, {1, 3, 2}}
	tet := geom.NewHull(verts, faces)
	if tet.Volume() <= 0 {
		t.Fatalf("tetrahedron volume = %v", tet.Volume())
	}
	a := mk(0, tet, m3.V(0, 0.9, 0))
	s := mk(1, geom.Sphere{R: 0.5}, m3.Zero)
	cs := Collide(a, s, nil, nil)
	if len(cs) != 1 {
		t.Fatalf("tet vs sphere: want 1 contact, got %d", len(cs))
	}
	checkManifold(t, cs, a, s)
	// The tet is above the sphere: pushing the sphere (B) away means a
	// downward-ish normal.
	if cs[0].Normal.Y > -0.5 {
		t.Errorf("normal = %v, want mostly -y", cs[0].Normal)
	}
}

func TestGJKRandomAgainstSphereAnalytic(t *testing.T) {
	// Property: for random sphere pairs, GJK/EPA and the analytic path
	// agree on hit/miss and (when hitting) on depth within tolerance.
	r := rand.New(rand.NewSource(17))
	var scr Scratch
	for trial := 0; trial < 300; trial++ {
		ra := 0.3 + r.Float64()
		rb := 0.3 + r.Float64()
		a := mk(0, geom.Sphere{R: ra}, m3.Zero)
		b := mk(1, geom.Sphere{R: rb},
			m3.V(r.Float64()*4-2, r.Float64()*4-2, r.Float64()*4-2))
		dist := b.Pos.Len()
		if math.Abs(dist-(ra+rb)) < 0.02 {
			continue // skip grazing cases
		}
		wantHit := dist < ra+rb
		got := convexConvex(&scr, a, b, nil, nil)
		if (len(got) > 0) != wantHit {
			t.Fatalf("trial %d: gjk hit=%v, want %v (dist %v vs %v)",
				trial, len(got) > 0, wantHit, dist, ra+rb)
		}
		if wantHit {
			wantDepth := ra + rb - dist
			if math.Abs(got[0].Depth-wantDepth) > 0.02+wantDepth*0.05 {
				t.Fatalf("trial %d: depth %v, want %v", trial, got[0].Depth, wantDepth)
			}
		}
	}
}

func TestHullInWorld(t *testing.T) {
	// End to end: a hull-shaped rock dropped onto the ground settles.
	// (Uses the narrowphase only via the world package in world tests;
	// here just confirm repeated collide calls stay stable.)
	rock := geom.BoxHull(m3.V(0.4, 0.3, 0.5))
	g := mk(0, rock, m3.V(0, 0.25, 0))
	p := mk(1, geom.Plane{Normal: m3.V(0, 1, 0)}, m3.Zero)
	for i := 0; i < 100; i++ {
		cs := Collide(g, p, nil, nil)
		checkManifold(t, cs, g, p)
	}
}
