package narrowphase

import (
	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// Scratch holds one worker's reusable buffers for collision and ray
// queries: the triangle-index list and generation-stamped dedup marks
// for mesh queries, and the EPA polytope storage. Buffers grow to the
// scene's high-water mark and are then reused forever, so steady-state
// narrow-phase calls through a Scratch never allocate.
//
// A Scratch must not be shared between concurrent workers: each
// narrow-phase chunk owns one (inside its narrowEvents buffer set) and
// each cloth object owns one.
type Scratch struct {
	// Triangle queries (trimesh contact and ray paths).
	tris []int32
	seen []uint32 // generation stamp per triangle index
	gen  uint32

	// EPA polytope storage (hull contact paths).
	verts   []mkv
	faces   []epaFace
	alt     []epaFace
	horizon []epaEdge
}

// Collide computes the contact manifold for the pair (a, b) and appends
// it to dst, reusing the Scratch's buffers: zero steady-state
// allocation. Pairs involving blast volumes or cloth proxies produce no
// rigid contacts here; the engine handles them separately.
func (scr *Scratch) Collide(a, b *geom.Geom, dst []Contact, st *Stats) []Contact {
	if st != nil {
		st.PairsTested++
	}
	// Canonicalize so that kind(a) <= kind(b); flip results if swapped.
	flip := false
	if a.Shape.Kind() > b.Shape.Kind() {
		a, b = b, a
		flip = true
	}
	start := len(dst)
	dst = collideOrdered(scr, a, b, dst, st)
	if flip {
		for i := start; i < len(dst); i++ {
			dst[i].A, dst[i].B = dst[i].B, dst[i].A
			dst[i].Normal = dst[i].Normal.Neg()
		}
	}
	if st != nil {
		st.ContactsOut += len(dst) - start
		for i := start; i < len(dst); i++ {
			if dst[i].Depth > st.DeepestDepth {
				st.DeepestDepth = dst[i].Depth
			}
		}
	}
	return dst
}

// triQuery collects the distinct triangles overlapping query, in bucket
// emission order (first occurrence wins, exactly like the map-based
// dedup it replaces — contact order is deterministic). The result
// aliases scr.tris and is valid until the next query on this Scratch.
func (scr *Scratch) triQuery(tm *geom.TriMesh, query m3.AABB) []int32 {
	scr.tris = tm.TrianglesIn(query, scr.tris[:0])
	n := len(tm.Tris)
	if cap(scr.seen) < n {
		//paraxlint:allow(parsafe) grows once per mesh size, amortized to zero in steady state
		scr.seen = make([]uint32, n)
	}
	seen := scr.seen[:n]
	scr.gen++
	if scr.gen == 0 { // stamp wraparound: reset all marks
		clear(scr.seen[:cap(scr.seen)])
		scr.gen = 1
	}
	out := scr.tris[:0]
	for _, ti := range scr.tris {
		if seen[ti] == scr.gen {
			continue
		}
		seen[ti] = scr.gen
		out = append(out, ti)
	}
	scr.tris = out
	return out
}
