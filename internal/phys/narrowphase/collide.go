package narrowphase

import (
	"math"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// Contact is a single contact point between two geoms.
type Contact struct {
	// A and B are the geom IDs; Normal points from A's surface into B,
	// so separating the pair pushes B along +Normal and A along -Normal.
	A, B   int32
	Pos    m3.Vec
	Normal m3.Vec
	// Depth is the penetration depth (>= 0 at generation time).
	Depth float64
}

// MaxContactsPerPair caps the manifold size for one geom pair.
const MaxContactsPerPair = 4

// Stats counts the work done by narrow-phase calls; the architecture
// model converts these counts into kernel iterations.
type Stats struct {
	PairsTested  int
	ContactsOut  int
	TriTests     int // triangle-level primitive tests (heightfield/trimesh)
	PrimTests    int // convex primitive pair tests
	DeepestDepth float64
}

// Collide computes the contact manifold for the pair (a, b) and appends
// it to dst. It is the convenience entry point for tests and one-shot
// queries: it uses a throwaway Scratch, so mesh and hull pairs allocate
// transient buffers. Hot paths hold a per-worker Scratch and call its
// Collide method instead.
func Collide(a, b *geom.Geom, dst []Contact, st *Stats) []Contact {
	var scr Scratch
	return scr.Collide(a, b, dst, st)
}

func collideOrdered(scr *Scratch, a, b *geom.Geom, dst []Contact, st *Stats) []Contact {
	switch a.Shape.Kind() {
	case geom.KindSphere:
		switch b.Shape.Kind() {
		case geom.KindSphere:
			return sphereSphere(a, b, dst, st)
		case geom.KindBox:
			return sphereBox(a, b, dst, st)
		case geom.KindCapsule:
			return sphereCapsule(a, b, dst, st)
		case geom.KindPlane:
			return spherePlane(a, b, dst, st)
		case geom.KindHeightField:
			return sphereHeightField(a, b, dst, st)
		case geom.KindTriMesh:
			return sphereTriMesh(scr, a, b, dst, st)
		case geom.KindHull:
			return convexConvex(scr, a, b, dst, st)
		}
	case geom.KindBox:
		switch b.Shape.Kind() {
		case geom.KindBox:
			return boxBox(a, b, dst, st)
		case geom.KindCapsule:
			return boxCapsule(a, b, dst, st)
		case geom.KindPlane:
			return boxPlane(a, b, dst, st)
		case geom.KindHeightField:
			return boxHeightField(a, b, dst, st)
		case geom.KindTriMesh:
			return boxTriMesh(scr, a, b, dst, st)
		case geom.KindHull:
			return convexConvex(scr, a, b, dst, st)
		}
	case geom.KindCapsule:
		switch b.Shape.Kind() {
		case geom.KindCapsule:
			return capsuleCapsule(a, b, dst, st)
		case geom.KindPlane:
			return capsulePlane(a, b, dst, st)
		case geom.KindHeightField:
			return capsuleHeightField(a, b, dst, st)
		case geom.KindTriMesh:
			return capsuleTriMesh(scr, a, b, dst, st)
		case geom.KindHull:
			return convexConvex(scr, a, b, dst, st)
		}
	case geom.KindPlane:
		if b.Shape.Kind() == geom.KindHull {
			return planeHull(a, b, dst, st)
		}
	case geom.KindHeightField:
		if b.Shape.Kind() == geom.KindHull {
			return heightFieldHull(a, b, dst, st)
		}
	case geom.KindHull:
		if b.Shape.Kind() == geom.KindHull {
			return convexConvex(scr, a, b, dst, st)
		}
	}
	// Remaining combinations (plane-plane, static-static meshes,
	// trimesh-hull, ...) produce no contacts.
	return dst
}

// planeHull and heightFieldHull adapt the (hull, surface) contact
// functions to the canonical (surface, hull) dispatch order, swapping
// ids and normals in their output. They are concrete functions (not a
// closure-returning adapter) so the hot dispatch never allocates.
func planeHull(a, b *geom.Geom, dst []Contact, st *Stats) []Contact {
	start := len(dst)
	dst = hullPlane(b, a, dst, st)
	return flipRange(dst, start)
}

func heightFieldHull(a, b *geom.Geom, dst []Contact, st *Stats) []Contact {
	start := len(dst)
	dst = hullHeightField(b, a, dst, st)
	return flipRange(dst, start)
}

// flipRange swaps ids and negates normals of dst[start:].
func flipRange(dst []Contact, start int) []Contact {
	for i := start; i < len(dst); i++ {
		dst[i].A, dst[i].B = dst[i].B, dst[i].A
		dst[i].Normal = dst[i].Normal.Neg()
	}
	return dst
}

func primTest(st *Stats) {
	if st != nil {
		st.PrimTests++
	}
}

func triTest(st *Stats) {
	if st != nil {
		st.TriTests++
	}
}

// ---- sphere pairs ----

func sphereSphere(a, b *geom.Geom, dst []Contact, st *Stats) []Contact {
	primTest(st)
	sa := a.Shape.(geom.Sphere)
	sb := b.Shape.(geom.Sphere)
	d := b.Pos.Sub(a.Pos)
	dist := d.Len()
	pen := sa.R + sb.R - dist
	if pen <= 0 {
		return dst
	}
	var n m3.Vec
	if dist > m3.Eps {
		n = d.Scale(1 / dist)
	} else {
		n = m3.V(0, 1, 0)
	}
	pos := a.Pos.Add(n.Scale(sa.R - pen/2))
	return append(dst, Contact{
		A: int32(a.ID), B: int32(b.ID), Pos: pos, Normal: n, Depth: pen,
	})
}

func sphereBox(a, b *geom.Geom, dst []Contact, st *Stats) []Contact {
	primTest(st)
	sa := a.Shape.(geom.Sphere)
	bb := b.Shape.(geom.Box)
	cl, inside := closestPtPointBox(a.Pos, b.Pos, b.Rot, bb.Half)
	if inside {
		// Sphere center inside the box: push out through nearest face.
		l := b.Rot.TMulVec(a.Pos.Sub(b.Pos))
		nLocal, depth := deepestInteriorAxis(l, bb.Half)
		n := b.Rot.MulVec(nLocal).Neg() // from sphere into box
		return append(dst, Contact{
			A: int32(a.ID), B: int32(b.ID),
			Pos: a.Pos, Normal: n, Depth: depth + sa.R,
		})
	}
	d := cl.Sub(a.Pos)
	dist := d.Len()
	pen := sa.R - dist
	if pen <= 0 {
		return dst
	}
	n := d.Scale(1 / math.Max(dist, m3.Eps))
	return append(dst, Contact{
		A: int32(a.ID), B: int32(b.ID), Pos: cl, Normal: n, Depth: pen,
	})
}

func sphereCapsule(a, b *geom.Geom, dst []Contact, st *Stats) []Contact {
	primTest(st)
	sa := a.Shape.(geom.Sphere)
	cb := b.Shape.(geom.Capsule)
	p0, p1 := cb.Ends(b.Pos, b.Rot)
	// Closest point on the capsule axis segment to the sphere center.
	seg := p1.Sub(p0)
	t := clamp01(a.Pos.Sub(p0).Dot(seg) / math.Max(seg.Len2(), m3.Eps))
	cl := p0.Add(seg.Scale(t))
	d := cl.Sub(a.Pos)
	dist := d.Len()
	pen := sa.R + cb.R - dist
	if pen <= 0 {
		return dst
	}
	var n m3.Vec
	if dist > m3.Eps {
		n = d.Scale(1 / dist)
	} else {
		n = m3.V(0, 1, 0)
	}
	pos := a.Pos.Add(n.Scale(sa.R - pen/2))
	return append(dst, Contact{
		A: int32(a.ID), B: int32(b.ID), Pos: pos, Normal: n, Depth: pen,
	})
}

func spherePlane(a, b *geom.Geom, dst []Contact, st *Stats) []Contact {
	primTest(st)
	sa := a.Shape.(geom.Sphere)
	pb := b.Shape.(geom.Plane)
	depth := sa.R - pb.Depth(a.Pos)
	if depth <= 0 {
		return dst
	}
	// Plane pushes the sphere along +plane normal, so the contact normal
	// (from sphere A into plane B) is -plane normal.
	return append(dst, Contact{
		A: int32(a.ID), B: int32(b.ID),
		Pos:    a.Pos.Sub(pb.Normal.Scale(sa.R - depth/2)),
		Normal: pb.Normal.Neg(),
		Depth:  depth,
	})
}

// ---- capsule pairs ----

func capsuleCapsule(a, b *geom.Geom, dst []Contact, st *Stats) []Contact {
	primTest(st)
	ca := a.Shape.(geom.Capsule)
	cb := b.Shape.(geom.Capsule)
	a0, a1 := ca.Ends(a.Pos, a.Rot)
	b0, b1 := cb.Ends(b.Pos, b.Rot)
	p, q, _, _ := closestPtSegSeg(a0, a1, b0, b1)
	d := q.Sub(p)
	dist := d.Len()
	pen := ca.R + cb.R - dist
	if pen <= 0 {
		return dst
	}
	var n m3.Vec
	if dist > m3.Eps {
		n = d.Scale(1 / dist)
	} else {
		n = m3.V(0, 1, 0)
	}
	pos := p.Add(n.Scale(ca.R - pen/2))
	return append(dst, Contact{
		A: int32(a.ID), B: int32(b.ID), Pos: pos, Normal: n, Depth: pen,
	})
}

func capsulePlane(a, b *geom.Geom, dst []Contact, st *Stats) []Contact {
	primTest(st)
	ca := a.Shape.(geom.Capsule)
	pb := b.Shape.(geom.Plane)
	p0, p1 := ca.Ends(a.Pos, a.Rot)
	for _, p := range [2]m3.Vec{p0, p1} {
		depth := ca.R - pb.Depth(p)
		if depth <= 0 {
			continue
		}
		dst = append(dst, Contact{
			A: int32(a.ID), B: int32(b.ID),
			Pos:    p.Sub(pb.Normal.Scale(ca.R - depth/2)),
			Normal: pb.Normal.Neg(),
			Depth:  depth,
		})
	}
	return dst
}

func boxCapsule(a, b *geom.Geom, dst []Contact, st *Stats) []Contact {
	primTest(st)
	ba := a.Shape.(geom.Box)
	cb := b.Shape.(geom.Capsule)
	c0, c1 := cb.Ends(b.Pos, b.Rot)
	// Iterative closest-point refinement between the capsule axis and the
	// box: start from the segment point closest to the box center, then
	// alternate projections. A few iterations converge well in practice.
	seg := c1.Sub(c0)
	t := clamp01(a.Pos.Sub(c0).Dot(seg) / math.Max(seg.Len2(), m3.Eps))
	var onBox m3.Vec
	inside := false
	for it := 0; it < 4; it++ {
		p := c0.Add(seg.Scale(t))
		onBox, inside = closestPtPointBox(p, a.Pos, a.Rot, ba.Half)
		if inside {
			break
		}
		t = clamp01(onBox.Sub(c0).Dot(seg) / math.Max(seg.Len2(), m3.Eps))
	}
	p := c0.Add(seg.Scale(t))
	if inside {
		l := a.Rot.TMulVec(p.Sub(a.Pos))
		nLocal, depth := deepestInteriorAxis(l, ba.Half)
		// Normal from box A into capsule B = outward face normal.
		n := a.Rot.MulVec(nLocal)
		return append(dst, Contact{
			A: int32(a.ID), B: int32(b.ID),
			Pos: p, Normal: n, Depth: depth + cb.R,
		})
	}
	d := p.Sub(onBox)
	dist := d.Len()
	pen := cb.R - dist
	if pen <= 0 {
		return dst
	}
	n := d.Scale(1 / math.Max(dist, m3.Eps))
	return append(dst, Contact{
		A: int32(a.ID), B: int32(b.ID), Pos: onBox, Normal: n, Depth: pen,
	})
}

// ---- box pairs ----

func boxPlane(a, b *geom.Geom, dst []Contact, st *Stats) []Contact {
	primTest(st)
	ba := a.Shape.(geom.Box)
	pb := b.Shape.(geom.Plane)
	// Test all 8 corners; keep the deepest MaxContactsPerPair.
	start := len(dst)
	for i := 0; i < 8; i++ {
		c := m3.V(
			ba.Half.X*float64(1-2*(i&1)),
			ba.Half.Y*float64(1-2*((i>>1)&1)),
			ba.Half.Z*float64(1-2*((i>>2)&1)),
		)
		w := a.Rot.MulVec(c).Add(a.Pos)
		depth := -pb.Depth(w)
		if depth <= 0 {
			continue
		}
		dst = append(dst, Contact{
			A: int32(a.ID), B: int32(b.ID),
			Pos: w, Normal: pb.Normal.Neg(), Depth: depth,
		})
	}
	return capManifold(dst, start)
}

// capManifold keeps at most MaxContactsPerPair deepest contacts among
// dst[start:].
func capManifold(dst []Contact, start int) []Contact {
	n := len(dst) - start
	if n <= MaxContactsPerPair {
		return dst
	}
	sub := dst[start:]
	// Selection of the deepest MaxContactsPerPair (n is tiny).
	for i := 0; i < MaxContactsPerPair; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if sub[j].Depth > sub[best].Depth {
				best = j
			}
		}
		sub[i], sub[best] = sub[best], sub[i]
	}
	return dst[:start+MaxContactsPerPair]
}
