package narrowphase

import (
	"math"
	"math/rand"
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

func mk(id int, s geom.Shape, pos m3.Vec) *geom.Geom {
	g := &geom.Geom{ID: id, Shape: s, Pos: pos, Rot: m3.Ident, Body: id}
	g.UpdateAABB()
	return g
}

func mkRot(id int, s geom.Shape, pos m3.Vec, q m3.Quat) *geom.Geom {
	g := &geom.Geom{ID: id, Shape: s, Pos: pos, Rot: q.Mat(), Body: id}
	g.UpdateAABB()
	return g
}

// checkManifold verifies the generic contact invariants: unit normals,
// non-negative depth, ids matching the input pair.
func checkManifold(t *testing.T, cs []Contact, a, b *geom.Geom) {
	t.Helper()
	for i, c := range cs {
		if math.Abs(c.Normal.Len()-1) > 1e-6 {
			t.Errorf("contact %d: normal not unit: %v", i, c.Normal)
		}
		if c.Depth < 0 {
			t.Errorf("contact %d: negative depth %v", i, c.Depth)
		}
		if !c.Pos.IsFinite() {
			t.Errorf("contact %d: non-finite position", i)
		}
		ok := (c.A == int32(a.ID) && c.B == int32(b.ID)) ||
			(c.A == int32(b.ID) && c.B == int32(a.ID))
		if !ok {
			t.Errorf("contact %d: ids %d,%d do not match pair %d,%d", i, c.A, c.B, a.ID, b.ID)
		}
	}
}

func TestSphereSphere(t *testing.T) {
	a := mk(0, geom.Sphere{R: 1}, m3.V(0, 0, 0))
	b := mk(1, geom.Sphere{R: 1}, m3.V(1.5, 0, 0))
	cs := Collide(a, b, nil, nil)
	if len(cs) != 1 {
		t.Fatalf("want 1 contact, got %d", len(cs))
	}
	checkManifold(t, cs, a, b)
	c := cs[0]
	if math.Abs(c.Depth-0.5) > 1e-9 {
		t.Errorf("depth = %v, want 0.5", c.Depth)
	}
	if c.Normal.Sub(m3.V(1, 0, 0)).Len() > 1e-9 {
		t.Errorf("normal = %v, want +x", c.Normal)
	}
	// Separated spheres: no contact.
	b.Pos = m3.V(3, 0, 0)
	b.UpdateAABB()
	if cs := Collide(a, b, nil, nil); len(cs) != 0 {
		t.Errorf("separated spheres produced %d contacts", len(cs))
	}
}

func TestSphereSphereCoincident(t *testing.T) {
	a := mk(0, geom.Sphere{R: 1}, m3.Zero)
	b := mk(1, geom.Sphere{R: 1}, m3.Zero)
	cs := Collide(a, b, nil, nil)
	if len(cs) != 1 {
		t.Fatalf("coincident spheres should contact")
	}
	checkManifold(t, cs, a, b)
	if math.Abs(cs[0].Depth-2) > 1e-9 {
		t.Errorf("depth = %v, want 2", cs[0].Depth)
	}
}

func TestSpherePlane(t *testing.T) {
	s := mk(0, geom.Sphere{R: 1}, m3.V(0, 0.5, 0))
	p := mk(1, geom.Plane{Normal: m3.V(0, 1, 0), Offset: 0}, m3.Zero)
	p.Flags = geom.FlagStatic
	cs := Collide(s, p, nil, nil)
	if len(cs) != 1 {
		t.Fatalf("want 1 contact, got %d", len(cs))
	}
	checkManifold(t, cs, s, p)
	if math.Abs(cs[0].Depth-0.5) > 1e-9 {
		t.Errorf("depth = %v, want 0.5", cs[0].Depth)
	}
	// Normal from sphere into plane: -y.
	if cs[0].Normal.Sub(m3.V(0, -1, 0)).Len() > 1e-9 {
		t.Errorf("normal = %v, want -y", cs[0].Normal)
	}
	// Flipped argument order must flip the normal.
	cs2 := Collide(p, s, nil, nil)
	if len(cs2) != 1 {
		t.Fatalf("flipped: want 1 contact")
	}
	if cs2[0].Normal.Sub(m3.V(0, 1, 0)).Len() > 1e-9 {
		t.Errorf("flipped normal = %v, want +y", cs2[0].Normal)
	}
	if cs2[0].A != int32(p.ID) || cs2[0].B != int32(s.ID) {
		t.Errorf("flipped ids = %d,%d", cs2[0].A, cs2[0].B)
	}
}

func TestSphereBoxFace(t *testing.T) {
	b := mk(0, geom.Box{Half: m3.V(1, 1, 1)}, m3.Zero)
	s := mk(1, geom.Sphere{R: 0.5}, m3.V(0, 1.25, 0))
	cs := Collide(s, b, nil, nil)
	if len(cs) != 1 {
		t.Fatalf("want 1 contact, got %d", len(cs))
	}
	checkManifold(t, cs, s, b)
	if math.Abs(cs[0].Depth-0.25) > 1e-9 {
		t.Errorf("depth = %v, want 0.25", cs[0].Depth)
	}
	if cs[0].Normal.Sub(m3.V(0, -1, 0)).Len() > 1e-9 {
		t.Errorf("normal = %v, want -y (sphere pushed up)", cs[0].Normal)
	}
}

func TestSphereBoxCenterInside(t *testing.T) {
	b := mk(0, geom.Box{Half: m3.V(1, 1, 1)}, m3.Zero)
	s := mk(1, geom.Sphere{R: 0.25}, m3.V(0, 0.9, 0))
	cs := Collide(s, b, nil, nil)
	if len(cs) != 1 {
		t.Fatalf("want 1 contact for sphere inside box")
	}
	checkManifold(t, cs, s, b)
	if cs[0].Depth < 0.25 {
		t.Errorf("interior contact depth = %v, want >= sphere radius", cs[0].Depth)
	}
}

func TestSphereCapsule(t *testing.T) {
	c := mk(0, geom.Capsule{R: 0.5, HalfLen: 1}, m3.Zero)
	s := mk(1, geom.Sphere{R: 0.5}, m3.V(0.75, 0, 0.5))
	cs := Collide(s, c, nil, nil)
	if len(cs) != 1 {
		t.Fatalf("want 1 contact, got %d", len(cs))
	}
	checkManifold(t, cs, s, c)
	if math.Abs(cs[0].Depth-0.25) > 1e-9 {
		t.Errorf("depth = %v, want 0.25", cs[0].Depth)
	}
}

func TestCapsuleCapsuleParallel(t *testing.T) {
	a := mk(0, geom.Capsule{R: 0.5, HalfLen: 1}, m3.Zero)
	b := mk(1, geom.Capsule{R: 0.5, HalfLen: 1}, m3.V(0.8, 0, 0))
	cs := Collide(a, b, nil, nil)
	if len(cs) != 1 {
		t.Fatalf("want 1 contact, got %d", len(cs))
	}
	checkManifold(t, cs, a, b)
	if math.Abs(cs[0].Depth-0.2) > 1e-9 {
		t.Errorf("depth = %v, want 0.2", cs[0].Depth)
	}
}

func TestCapsulePlane(t *testing.T) {
	// Capsule lying along Z, resting 0.3 into the ground.
	c := mk(0, geom.Capsule{R: 0.5, HalfLen: 1}, m3.V(0, 0.2, 0))
	p := mk(1, geom.Plane{Normal: m3.V(0, 1, 0)}, m3.Zero)
	cs := Collide(c, p, nil, nil)
	if len(cs) != 2 {
		t.Fatalf("horizontal capsule on plane: want 2 contacts, got %d", len(cs))
	}
	checkManifold(t, cs, c, p)
	for _, ct := range cs {
		if math.Abs(ct.Depth-0.3) > 1e-9 {
			t.Errorf("depth = %v, want 0.3", ct.Depth)
		}
	}
}

func TestBoxPlaneResting(t *testing.T) {
	b := mk(0, geom.Box{Half: m3.V(1, 1, 1)}, m3.V(0, 0.9, 0))
	p := mk(1, geom.Plane{Normal: m3.V(0, 1, 0)}, m3.Zero)
	cs := Collide(b, p, nil, nil)
	if len(cs) != 4 {
		t.Fatalf("resting box: want 4 contacts, got %d", len(cs))
	}
	checkManifold(t, cs, b, p)
	for _, c := range cs {
		if math.Abs(c.Depth-0.1) > 1e-9 {
			t.Errorf("depth = %v, want 0.1", c.Depth)
		}
	}
}

func TestBoxBoxFaceStack(t *testing.T) {
	a := mk(0, geom.Box{Half: m3.V(1, 1, 1)}, m3.Zero)
	b := mk(1, geom.Box{Half: m3.V(1, 1, 1)}, m3.V(0, 1.8, 0))
	cs := Collide(a, b, nil, nil)
	if len(cs) != 4 {
		t.Fatalf("stacked boxes: want 4 contacts, got %d", len(cs))
	}
	checkManifold(t, cs, a, b)
	for _, c := range cs {
		if math.Abs(c.Depth-0.2) > 1e-6 {
			t.Errorf("depth = %v, want 0.2", c.Depth)
		}
		if c.Normal.Sub(m3.V(0, 1, 0)).Len() > 1e-6 {
			t.Errorf("normal = %v, want +y", c.Normal)
		}
	}
}

func TestBoxBoxSeparated(t *testing.T) {
	a := mk(0, geom.Box{Half: m3.V(1, 1, 1)}, m3.Zero)
	b := mk(1, geom.Box{Half: m3.V(1, 1, 1)}, m3.V(0, 2.5, 0))
	if cs := Collide(a, b, nil, nil); len(cs) != 0 {
		t.Errorf("separated boxes produced %d contacts", len(cs))
	}
	// Rotated 45 degrees: corner gap opens, still separated.
	c := mkRot(2, geom.Box{Half: m3.V(1, 1, 1)}, m3.V(3.0, 0, 0),
		m3.QFromAxisAngle(m3.V(0, 0, 1), math.Pi/4))
	if cs := Collide(a, c, nil, nil); len(cs) != 0 {
		t.Errorf("diagonal boxes produced %d contacts", len(cs))
	}
}

func TestBoxBoxEdgeContact(t *testing.T) {
	a := mk(0, geom.Box{Half: m3.V(1, 1, 1)}, m3.Zero)
	// Box rotated 45 about X and Z sits with an edge poking down.
	q := m3.QFromAxisAngle(m3.V(1, 0, 0), math.Pi/4)
	b := mkRot(1, geom.Box{Half: m3.V(1, 1, 1)}, m3.V(0, 2.3, 0), q)
	cs := Collide(a, b, nil, nil)
	if len(cs) == 0 {
		t.Fatal("edge-on box should contact")
	}
	checkManifold(t, cs, a, b)
	for _, c := range cs {
		if c.Normal.Y < 0.7 {
			t.Errorf("edge contact normal should point mostly +y: %v", c.Normal)
		}
	}
}

func TestBoxCapsuleSide(t *testing.T) {
	b := mk(0, geom.Box{Half: m3.V(1, 1, 1)}, m3.Zero)
	c := mk(1, geom.Capsule{R: 0.5, HalfLen: 1}, m3.V(1.3, 0, 0))
	cs := Collide(b, c, nil, nil)
	if len(cs) != 1 {
		t.Fatalf("want 1 contact, got %d", len(cs))
	}
	checkManifold(t, cs, b, c)
	if math.Abs(cs[0].Depth-0.2) > 1e-6 {
		t.Errorf("depth = %v, want 0.2", cs[0].Depth)
	}
	if cs[0].Normal.X < 0.99 {
		t.Errorf("normal = %v, want +x", cs[0].Normal)
	}
}

func TestSphereHeightField(t *testing.T) {
	hs := make([]float64, 16)
	hf := geom.NewHeightField(4, 4, 1, 1, hs) // flat at 0
	f := mk(0, hf, m3.Zero)
	f.Flags = geom.FlagStatic
	s := mk(1, geom.Sphere{R: 0.5}, m3.V(1.5, 0.3, 1.5))
	cs := Collide(s, f, nil, nil)
	if len(cs) != 1 {
		t.Fatalf("sphere on terrain: want 1 contact, got %d", len(cs))
	}
	checkManifold(t, cs, s, f)
	if math.Abs(cs[0].Depth-0.2) > 1e-6 {
		t.Errorf("depth = %v, want 0.2", cs[0].Depth)
	}
}

func TestBoxHeightField(t *testing.T) {
	hs := make([]float64, 16)
	hf := geom.NewHeightField(4, 4, 1, 1, hs)
	f := mk(0, hf, m3.Zero)
	b := mk(1, geom.Box{Half: m3.V(0.4, 0.4, 0.4)}, m3.V(1.5, 0.3, 1.5))
	cs := Collide(b, f, nil, nil)
	if len(cs) != 4 {
		t.Fatalf("box on flat terrain: want 4 contacts, got %d", len(cs))
	}
	checkManifold(t, cs, b, f)
}

func TestSphereTriMesh(t *testing.T) {
	verts := []m3.Vec{m3.V(-2, 0, -2), m3.V(2, 0, -2), m3.V(2, 0, 2), m3.V(-2, 0, 2)}
	tm := geom.NewTriMesh(verts, []geom.Tri{{0, 1, 2}, {0, 2, 3}})
	f := mk(0, tm, m3.Zero)
	s := mk(1, geom.Sphere{R: 0.5}, m3.V(0.5, 0.3, 0.5))
	cs := Collide(s, f, nil, nil)
	if len(cs) == 0 {
		t.Fatal("sphere on mesh: want contact")
	}
	checkManifold(t, cs, s, f)
	if math.Abs(cs[0].Depth-0.2) > 1e-6 {
		t.Errorf("depth = %v, want 0.2", cs[0].Depth)
	}
}

func TestCapsuleTriMesh(t *testing.T) {
	verts := []m3.Vec{m3.V(-2, 0, -2), m3.V(2, 0, -2), m3.V(2, 0, 2), m3.V(-2, 0, 2)}
	tm := geom.NewTriMesh(verts, []geom.Tri{{0, 1, 2}, {0, 2, 3}})
	f := mk(0, tm, m3.Zero)
	c := mk(1, geom.Capsule{R: 0.3, HalfLen: 0.8}, m3.V(0, 0.2, 0))
	cs := Collide(c, f, nil, nil)
	if len(cs) == 0 {
		t.Fatal("capsule on mesh: want contact")
	}
	checkManifold(t, cs, c, f)
}

func TestStatsCounting(t *testing.T) {
	var st Stats
	a := mk(0, geom.Sphere{R: 1}, m3.Zero)
	b := mk(1, geom.Sphere{R: 1}, m3.V(1, 0, 0))
	Collide(a, b, nil, &st)
	if st.PairsTested != 1 || st.ContactsOut != 1 || st.PrimTests != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.DeepestDepth <= 0 {
		t.Errorf("deepest depth not recorded: %v", st.DeepestDepth)
	}
}

// Property test: random convex pairs near each other either produce no
// contacts or contacts satisfying the manifold invariants, and moving
// the shapes apart along the first contact normal eventually separates
// them.
func TestRandomPairsInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	shapes := func(i int) geom.Shape {
		switch i % 3 {
		case 0:
			return geom.Sphere{R: 0.3 + r.Float64()*0.5}
		case 1:
			return geom.Box{Half: m3.V(0.2+r.Float64()*0.5, 0.2+r.Float64()*0.5, 0.2+r.Float64()*0.5)}
		default:
			return geom.Capsule{R: 0.2 + r.Float64()*0.3, HalfLen: 0.3 + r.Float64()*0.5}
		}
	}
	for trial := 0; trial < 300; trial++ {
		a := mkRot(0, shapes(trial), m3.Zero,
			m3.QFromAxisAngle(m3.V(r.Float64(), r.Float64(), r.Float64()+0.01), r.Float64()*6))
		b := mkRot(1, shapes(trial+1),
			m3.V(r.Float64()*2-1, r.Float64()*2-1, r.Float64()*2-1),
			m3.QFromAxisAngle(m3.V(r.Float64(), r.Float64()+0.01, r.Float64()), r.Float64()*6))
		cs := Collide(a, b, nil, nil)
		checkManifold(t, cs, a, b)
		if len(cs) > MaxContactsPerPair {
			t.Fatalf("manifold exceeded cap: %d", len(cs))
		}
		if len(cs) > 0 {
			// Push B away along the normal by depth + margin: the pair must
			// then separate or at least reduce max depth substantially.
			deepest := cs[0]
			for _, c := range cs {
				if c.Depth > deepest.Depth {
					deepest = c
				}
			}
			b.Pos = b.Pos.Add(deepest.Normal.Scale(deepest.Depth + 2.1))
			b.UpdateAABB()
			cs2 := Collide(a, b, nil, nil)
			if len(cs2) > 0 {
				max2 := 0.0
				for _, c := range cs2 {
					if c.Depth > max2 {
						max2 = c.Depth
					}
				}
				if max2 > deepest.Depth {
					t.Fatalf("trial %d: separation along normal increased depth: %v -> %v",
						trial, deepest.Depth, max2)
				}
			}
		}
	}
}
