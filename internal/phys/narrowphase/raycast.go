package narrowphase

import (
	"math"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// RayHit describes a ray-geom intersection.
type RayHit struct {
	Geom   int32
	T      float64 // distance along the (unit) ray direction
	Pos    m3.Vec
	Normal m3.Vec // surface normal at the hit, facing the ray origin
}

// RayCast intersects the ray from origin o along unit direction dir,
// limited to maxT, with a single geom. It reports the nearest hit.
// Ray casting is used by cloth collision (per the paper's cloth phase)
// and by gameplay queries. This convenience entry point uses a
// throwaway Scratch; hot paths hold one and call its RayCast method so
// mesh queries reuse buffers.
func RayCast(g *geom.Geom, o, dir m3.Vec, maxT float64) (RayHit, bool) {
	var scr Scratch
	return scr.RayCast(g, o, dir, maxT)
}

// RayCast is the allocation-free form of the package-level RayCast.
func (scr *Scratch) RayCast(g *geom.Geom, o, dir m3.Vec, maxT float64) (RayHit, bool) {
	switch s := g.Shape.(type) {
	case geom.Sphere:
		return raySphere(g, s, o, dir, maxT)
	case geom.Box:
		return rayBox(g, s, o, dir, maxT)
	case *geom.Box:
		// Mutable boxes (cloth bounding-volume proxies) are stored behind
		// a pointer so per-step resizing does not re-box the interface.
		return rayBox(g, *s, o, dir, maxT)
	case geom.Capsule:
		return rayCapsule(g, s, o, dir, maxT)
	case geom.Plane:
		return rayPlane(g, s, o, dir, maxT)
	case *geom.HeightField:
		return rayHeightField(g, s, o, dir, maxT)
	case *geom.TriMesh:
		return rayTriMesh(scr, g, s, o, dir, maxT)
	}
	return RayHit{}, false
}

func raySphere(g *geom.Geom, s geom.Sphere, o, dir m3.Vec, maxT float64) (RayHit, bool) {
	m := o.Sub(g.Pos)
	b := m.Dot(dir)
	c := m.Len2() - s.R*s.R
	if c > 0 && b > 0 {
		return RayHit{}, false
	}
	disc := b*b - c
	if disc < 0 {
		return RayHit{}, false
	}
	t := -b - math.Sqrt(disc)
	if t < 0 {
		t = 0
	}
	if t > maxT {
		return RayHit{}, false
	}
	pos := o.Add(dir.Scale(t))
	return RayHit{Geom: int32(g.ID), T: t, Pos: pos, Normal: pos.Sub(g.Pos).Norm()}, true
}

func rayBox(g *geom.Geom, b geom.Box, o, dir m3.Vec, maxT float64) (RayHit, bool) {
	// Transform the ray into the box frame.
	lo := g.Rot.TMulVec(o.Sub(g.Pos))
	ld := g.Rot.TMulVec(dir)
	box := m3.AABB{Min: b.Half.Neg(), Max: b.Half}
	t, ok := box.RayHits(lo, ld, maxT)
	if !ok {
		return RayHit{}, false
	}
	lp := lo.Add(ld.Scale(t))
	// Normal: the face whose plane we are on.
	var ln m3.Vec
	bestD := math.Inf(1)
	for i := 0; i < 3; i++ {
		for _, s := range [2]float64{1, -1} {
			d := math.Abs(lp.Comp(i)*s - b.Half.Comp(i))
			if d < bestD {
				bestD = d
				ln = m3.Zero.SetComp(i, s)
			}
		}
	}
	return RayHit{
		Geom: int32(g.ID), T: t,
		Pos:    g.Rot.MulVec(lp).Add(g.Pos),
		Normal: g.Rot.MulVec(ln),
	}, true
}

func rayCapsule(g *geom.Geom, c geom.Capsule, o, dir m3.Vec, maxT float64) (RayHit, bool) {
	// Conservative iterative march on the distance field of the segment.
	p0, p1 := c.Ends(g.Pos, g.Rot)
	t := 0.0
	for i := 0; i < 64 && t <= maxT; i++ {
		p := o.Add(dir.Scale(t))
		cl, _, _, _ := closestPtSegSeg(p, p, p0, p1)
		_ = cl
		// distance from p to the axis segment
		seg := p1.Sub(p0)
		u := clamp01(p.Sub(p0).Dot(seg) / math.Max(seg.Len2(), m3.Eps))
		axis := p0.Add(seg.Scale(u))
		d := p.Dist(axis) - c.R
		if d < 1e-6 {
			return RayHit{
				Geom: int32(g.ID), T: t, Pos: p,
				Normal: p.Sub(axis).Norm(),
			}, true
		}
		t += d
	}
	return RayHit{}, false
}

func rayPlane(g *geom.Geom, p geom.Plane, o, dir m3.Vec, maxT float64) (RayHit, bool) {
	denom := p.Normal.Dot(dir)
	if math.Abs(denom) < m3.Eps {
		return RayHit{}, false
	}
	t := -(p.Normal.Dot(o) - p.Offset) / denom
	if t < 0 || t > maxT {
		return RayHit{}, false
	}
	n := p.Normal
	if denom > 0 {
		n = n.Neg()
	}
	return RayHit{Geom: int32(g.ID), T: t, Pos: o.Add(dir.Scale(t)), Normal: n}, true
}

func rayHeightField(g *geom.Geom, hf *geom.HeightField, o, dir m3.Vec, maxT float64) (RayHit, bool) {
	// Fixed-step march over the surface function.
	step := math.Min(hf.CellX, hf.CellZ) * 0.5
	prev := o
	prevAbove := prev.Y >= hf.HeightAt(prev.X-g.Pos.X, prev.Z-g.Pos.Z)+g.Pos.Y
	for t := step; t <= maxT; t += step {
		p := o.Add(dir.Scale(t))
		h := hf.HeightAt(p.X-g.Pos.X, p.Z-g.Pos.Z) + g.Pos.Y
		above := p.Y >= h
		if prevAbove && !above {
			// Bisect between prev and p.
			a, b := prev, p
			for i := 0; i < 16; i++ {
				mid := a.Lerp(b, 0.5)
				if mid.Y >= hf.HeightAt(mid.X-g.Pos.X, mid.Z-g.Pos.Z)+g.Pos.Y {
					a = mid
				} else {
					b = mid
				}
			}
			hit := a.Lerp(b, 0.5)
			return RayHit{
				Geom: int32(g.ID), T: hit.Sub(o).Len(), Pos: hit,
				Normal: hf.NormalAt(hit.X-g.Pos.X, hit.Z-g.Pos.Z),
			}, true
		}
		prev, prevAbove = p, above
	}
	return RayHit{}, false
}

func rayTriMesh(scr *Scratch, g *geom.Geom, tm *geom.TriMesh, o, dir m3.Vec, maxT float64) (RayHit, bool) {
	end := o.Add(dir.Scale(maxT))
	q := m3.AABB{Min: o.Min(end), Max: o.Max(end)}
	q.Min = q.Min.Sub(g.Pos)
	q.Max = q.Max.Sub(g.Pos)
	tris := scr.triQuery(tm, q)
	best := RayHit{T: math.Inf(1)}
	found := false
	for _, ti := range tris {
		v0, v1, v2 := tm.TriVerts(ti)
		v0, v1, v2 = v0.Add(g.Pos), v1.Add(g.Pos), v2.Add(g.Pos)
		if t, ok := rayTriangle(o, dir, v0, v1, v2, maxT); ok && t < best.T {
			n := v1.Sub(v0).Cross(v2.Sub(v0)).Norm()
			if n.Dot(dir) > 0 {
				n = n.Neg()
			}
			best = RayHit{Geom: int32(g.ID), T: t, Pos: o.Add(dir.Scale(t)), Normal: n}
			found = true
		}
	}
	return best, found
}

// rayTriangle is the Möller–Trumbore intersection test.
func rayTriangle(o, dir, v0, v1, v2 m3.Vec, maxT float64) (float64, bool) {
	e1 := v1.Sub(v0)
	e2 := v2.Sub(v0)
	p := dir.Cross(e2)
	det := e1.Dot(p)
	if math.Abs(det) < 1e-12 {
		return 0, false
	}
	inv := 1 / det
	tv := o.Sub(v0)
	u := tv.Dot(p) * inv
	if u < 0 || u > 1 {
		return 0, false
	}
	q := tv.Cross(e1)
	v := dir.Dot(q) * inv
	if v < 0 || u+v > 1 {
		return 0, false
	}
	t := e2.Dot(q) * inv
	if t < 0 || t > maxT {
		return 0, false
	}
	return t, true
}
