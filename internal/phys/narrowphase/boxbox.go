package narrowphase

import (
	"math"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

// boxBox generates the contact manifold between two oriented boxes using
// the separating-axis test over the 15 candidate axes, followed by
// reference-face clipping (for face axes) or edge-edge closest points
// (for edge axes).
func boxBox(a, b *geom.Geom, dst []Contact, st *Stats) []Contact {
	primTest(st)
	ba := a.Shape.(geom.Box)
	bb := b.Shape.(geom.Box)
	ra, rb := a.Rot, b.Rot
	d := b.Pos.Sub(a.Pos)

	best := sepAxis{depth: math.Inf(1), kind: -1}

	for i := 0; i < 3; i++ {
		if !considerAxis(&best, ra.Col(i), d, ra, rb, ba.Half, bb.Half, i, 0, 0, 1.0) {
			return dst
		}
	}
	for i := 0; i < 3; i++ {
		if !considerAxis(&best, rb.Col(i), d, ra, rb, ba.Half, bb.Half, 3+i, 0, 0, 1.0) {
			return dst
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !considerAxis(&best, ra.Col(i).Cross(rb.Col(j)), d, ra, rb, ba.Half, bb.Half, 6, i, j, 1.05) {
				return dst
			}
		}
	}
	if best.kind < 0 {
		return dst
	}

	if best.kind >= 6 {
		// Edge-edge contact: find the closest points of the two edges
		// most aligned with the contact.
		pa := supportEdge(a.Pos, ra, ba.Half, best.n, best.ea)
		pb2 := supportEdge(b.Pos, rb, bb.Half, best.n.Neg(), best.eb)
		c1, c2, _, _ := closestPtSegSeg(pa[0], pa[1], pb2[0], pb2[1])
		return append(dst, Contact{
			A: int32(a.ID), B: int32(b.ID),
			Pos:    c1.Add(c2).Scale(0.5),
			Normal: best.n,
			Depth:  best.depth,
		})
	}

	// Face contact: clip the incident face of the other box against the
	// side planes of the reference face.
	var refPos, incPos m3.Vec
	var refRot, incRot m3.Mat
	var refHalf, incHalf m3.Vec
	var n m3.Vec // outward reference-face normal
	flip := false
	if best.kind < 3 {
		refPos, refRot, refHalf = a.Pos, ra, ba.Half
		incPos, incRot, incHalf = b.Pos, rb, bb.Half
		n = best.n // points from A to B = outward from reference box A
	} else {
		refPos, refRot, refHalf = b.Pos, rb, bb.Half
		incPos, incRot, incHalf = a.Pos, ra, ba.Half
		n = best.n.Neg() // outward from reference box B
		flip = true
	}
	var pts [maxClipVerts]clipPoint
	npts := clipFaceContacts(refPos, refRot, refHalf, incPos, incRot, incHalf, n, &pts)
	start := len(dst)
	for _, p := range pts[:npts] {
		if p.depth <= 0 {
			continue
		}
		nrm := best.n
		dst = append(dst, Contact{
			A: int32(a.ID), B: int32(b.ID),
			Pos: p.pos, Normal: nrm, Depth: p.depth,
		})
	}
	_ = flip
	if len(dst) == start {
		// Clipping produced nothing (deep skew case): fall back to a
		// single central contact so the solver still separates the pair.
		mid := a.Pos.Add(d.Scale(0.5))
		dst = append(dst, Contact{
			A: int32(a.ID), B: int32(b.ID),
			Pos: mid, Normal: best.n, Depth: best.depth,
		})
	}
	return capManifold(dst, start)
}

// sepAxis is the best separating-axis candidate seen so far.
type sepAxis struct {
	n     m3.Vec // world axis, unit, oriented from A toward B
	depth float64
	kind  int // 0..5 face of A/B, 6.. edge pair
	ea    int // edge axis index on A (for edge case)
	eb    int // edge axis index on B
}

// boxProj is the projection radius of an oriented box onto unit axis n.
func boxProj(n m3.Vec, rot m3.Mat, half m3.Vec) float64 {
	return math.Abs(n.Dot(rot.Col(0)))*half.X +
		math.Abs(n.Dot(rot.Col(1)))*half.Y +
		math.Abs(n.Dot(rot.Col(2)))*half.Z
}

// considerAxis tests one candidate separating axis between boxes
// (ra,ha) and (rb,hb) whose centers are separated by d, updating best
// if the axis penetrates less. It returns false when the boxes are
// separated along the axis (no contact at all).
func considerAxis(best *sepAxis, n, d m3.Vec, ra, rb m3.Mat, ha, hb m3.Vec, kind, ea, eb int, bias float64) bool {
	if n.Len2() < 1e-12 {
		return true // degenerate (parallel edges); skip
	}
	n = n.Norm()
	dist := math.Abs(n.Dot(d))
	pen := boxProj(n, ra, ha) + boxProj(n, rb, hb) - dist
	if !(pen > 0) {
		return false
	}
	// Small bias prefers face axes over edge axes at equal depth,
	// which yields more stable manifolds.
	if pen*bias < best.depth {
		if n.Dot(d) < 0 {
			n = n.Neg()
		}
		*best = sepAxis{n: n, depth: pen, kind: kind, ea: ea, eb: eb}
	}
	return true
}

// supportEdge returns the edge of the box (pos,rot,half) along local
// axis idx that is extremal in direction dir.
func supportEdge(pos m3.Vec, rot m3.Mat, half m3.Vec, dir m3.Vec, idx int) [2]m3.Vec {
	// Pick corner signs for the two non-edge axes that maximize dot(dir).
	var signs [3]float64
	for i := 0; i < 3; i++ {
		if i == idx {
			continue
		}
		if dir.Dot(rot.Col(i)) >= 0 {
			signs[i] = 1
		} else {
			signs[i] = -1
		}
	}
	center := pos
	for i := 0; i < 3; i++ {
		if i == idx {
			continue
		}
		center = center.Add(rot.Col(i).Scale(signs[i] * half.Comp(i)))
	}
	e := rot.Col(idx).Scale(half.Comp(idx))
	return [2]m3.Vec{center.Sub(e), center.Add(e)}
}

type clipPoint struct {
	pos   m3.Vec
	depth float64
}

// maxClipVerts bounds the clipped polygon size: the incident face starts
// as a quad and each of the 4 side-plane clips adds at most one vertex,
// so 8 covers the worst case. Fixed-size buffers keep the hot box-box
// path allocation-free.
const maxClipVerts = 8

// clipFaceContacts clips the incident face of the incident box against
// the reference face's side planes, writes the points penetrating the
// reference face into out, and returns their count. n is the outward
// reference face normal (world).
func clipFaceContacts(refPos m3.Vec, refRot m3.Mat, refHalf m3.Vec,
	incPos m3.Vec, incRot m3.Mat, incHalf m3.Vec, n m3.Vec,
	out *[maxClipVerts]clipPoint) int {

	// Reference face: the face of the reference box whose normal is most
	// aligned with n.
	refAxis, refSign := mostAligned(refRot, n)
	// Incident face: the face of the incident box most anti-aligned.
	incAxis, incSign := mostAligned(incRot, n.Neg())

	// Incident face corners (world).
	u, v := other2(incAxis)
	fc := incPos.Add(incRot.Col(incAxis).Scale(incSign * incHalf.Comp(incAxis)))
	du := incRot.Col(u).Scale(incHalf.Comp(u))
	dv := incRot.Col(v).Scale(incHalf.Comp(v))
	var bufA, bufB [maxClipVerts]m3.Vec
	bufA[0] = fc.Add(du).Add(dv)
	bufA[1] = fc.Add(du).Sub(dv)
	bufA[2] = fc.Sub(du).Sub(dv)
	bufA[3] = fc.Sub(du).Add(dv)
	cur, nxt := &bufA, &bufB
	cnt := 4

	// Clip against the 4 side planes of the reference face.
	ru, rv := other2(refAxis)
	for _, side := range [4]struct {
		axis int
		sign float64
	}{{ru, 1}, {ru, -1}, {rv, 1}, {rv, -1}} {
		pn := refRot.Col(side.axis).Scale(side.sign)
		off := pn.Dot(refPos) + refHalf.Comp(side.axis)
		cnt = clipPoly(cur, cnt, pn, off, nxt)
		cur, nxt = nxt, cur
		if cnt == 0 {
			return 0
		}
	}

	// Keep points below the reference face; depth measured against it.
	fn := refRot.Col(refAxis).Scale(refSign)
	faceOff := fn.Dot(refPos) + refHalf.Comp(refAxis)
	no := 0
	for _, p := range cur[:cnt] {
		depth := faceOff - fn.Dot(p)
		if depth > 0 {
			out[no] = clipPoint{pos: p, depth: depth}
			no++
		}
	}
	return no
}

// mostAligned returns the local axis index of rot most aligned with dir
// and the sign of the alignment.
func mostAligned(rot m3.Mat, dir m3.Vec) (int, float64) {
	bi, bd, bs := 0, -1.0, 1.0
	for i := 0; i < 3; i++ {
		d := dir.Dot(rot.Col(i))
		s := 1.0
		if d < 0 {
			d, s = -d, -1.0
		}
		if d > bd {
			bi, bd, bs = i, d, s
		}
	}
	return bi, bs
}

func other2(i int) (int, int) {
	switch i {
	case 0:
		return 1, 2
	case 1:
		return 0, 2
	default:
		return 0, 1
	}
}

// clipPoly clips the convex polygon in[:cnt] against the half-space
// n.p <= off, writing the result into out and returning its size.
func clipPoly(in *[maxClipVerts]m3.Vec, cnt int, n m3.Vec, off float64, out *[maxClipVerts]m3.Vec) int {
	no := 0
	for i := 0; i < cnt; i++ {
		p := in[i]
		q := in[(i+1)%cnt]
		dp := n.Dot(p) - off
		dq := n.Dot(q) - off
		if dp <= 0 {
			out[no] = p
			no++
		}
		if (dp < 0 && dq > 0) || (dp > 0 && dq < 0) {
			t := dp / (dp - dq)
			out[no] = p.Lerp(q, t)
			no++
		}
	}
	return no
}
