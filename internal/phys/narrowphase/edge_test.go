package narrowphase

import (
	"math"
	"testing"

	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/m3"
)

func TestManifoldCapKeepsDeepest(t *testing.T) {
	// Build 6 synthetic contacts and cap them: the 4 deepest survive.
	var cs []Contact
	for i := 0; i < 6; i++ {
		cs = append(cs, Contact{Depth: float64(i)})
	}
	out := capManifold(cs, 0)
	if len(out) != MaxContactsPerPair {
		t.Fatalf("cap left %d contacts", len(out))
	}
	seen := map[float64]bool{}
	for _, c := range out {
		seen[c.Depth] = true
	}
	for _, want := range []float64{5, 4, 3, 2} {
		if !seen[want] {
			t.Errorf("deepest contact %v dropped by cap", want)
		}
	}
}

func TestManifoldCapRespectsStart(t *testing.T) {
	// Contacts before start must be untouched.
	var cs []Contact
	for i := 0; i < 3; i++ {
		cs = append(cs, Contact{Depth: 100 + float64(i)})
	}
	for i := 0; i < 6; i++ {
		cs = append(cs, Contact{Depth: float64(i)})
	}
	out := capManifold(cs, 3)
	if len(out) != 3+MaxContactsPerPair {
		t.Fatalf("cap produced %d contacts", len(out))
	}
	for i := 0; i < 3; i++ {
		if out[i].Depth != 100+float64(i) {
			t.Errorf("prefix contact %d disturbed", i)
		}
	}
}

func TestBoxBoxRotatedStack(t *testing.T) {
	// A 45-degree-twisted box resting on another still yields a stable
	// multi-point manifold with upward normals.
	a := mk(0, geom.Box{Half: m3.V(1, 0.5, 1)}, m3.Zero)
	b := mkRot(1, geom.Box{Half: m3.V(1, 0.5, 1)}, m3.V(0, 0.95, 0),
		m3.QFromAxisAngle(m3.V(0, 1, 0), math.Pi/4))
	cs := Collide(a, b, nil, nil)
	if len(cs) < 3 {
		t.Fatalf("twisted stack: want >= 3 contacts, got %d", len(cs))
	}
	checkManifold(t, cs, a, b)
	for _, c := range cs {
		if c.Normal.Y < 0.99 {
			t.Errorf("contact normal not vertical: %v", c.Normal)
		}
	}
}

func TestBoxBoxDeepOverlapStillSeparates(t *testing.T) {
	// Nearly coincident boxes must produce a contact (the fallback path)
	// rather than silently nothing.
	a := mk(0, geom.Box{Half: m3.V(0.5, 0.5, 0.5)}, m3.Zero)
	b := mk(1, geom.Box{Half: m3.V(0.5, 0.5, 0.5)}, m3.V(0.05, 0.02, -0.03))
	cs := Collide(a, b, nil, nil)
	if len(cs) == 0 {
		t.Fatal("deeply overlapping boxes produced no contacts")
	}
	checkManifold(t, cs, a, b)
}

func TestSmallVsHugeBox(t *testing.T) {
	// Extreme size ratios (pebble on a building slab) stay well-behaved.
	slab := mk(0, geom.Box{Half: m3.V(50, 1, 50)}, m3.Zero)
	pebble := mk(1, geom.Box{Half: m3.V(0.05, 0.05, 0.05)}, m3.V(13.7, 1.04, -22.1))
	cs := Collide(pebble, slab, nil, nil)
	if len(cs) == 0 {
		t.Fatal("pebble not in contact with slab")
	}
	checkManifold(t, cs, pebble, slab)
	for _, c := range cs {
		if c.Depth > 0.011 {
			t.Errorf("tiny overlap reported huge depth %v", c.Depth)
		}
	}
}

func TestCapsuleEndCapContact(t *testing.T) {
	// A vertical capsule standing on a plane touches through its lower
	// hemisphere only: exactly one contact. (Capsule axes run along
	// local Z, so standing upright takes a 90-degree rotation about X.)
	c := mkRot(0, geom.Capsule{R: 0.3, HalfLen: 0.5}, m3.V(0, 0.75, 0),
		m3.QFromAxisAngle(m3.V(1, 0, 0), math.Pi/2))
	p := mk(1, geom.Plane{Normal: m3.V(0, 1, 0)}, m3.Zero)
	cs := Collide(c, p, nil, nil)
	if len(cs) != 1 {
		t.Fatalf("standing capsule: want 1 contact, got %d", len(cs))
	}
	if math.Abs(cs[0].Depth-0.05) > 1e-9 {
		t.Errorf("depth = %v, want 0.05", cs[0].Depth)
	}
}

func TestCrossedCapsules(t *testing.T) {
	// Perpendicular capsules crossing at a skew distance.
	a := mk(0, geom.Capsule{R: 0.2, HalfLen: 1}, m3.Zero) // along z
	b := mkRot(1, geom.Capsule{R: 0.2, HalfLen: 1}, m3.V(0, 0.35, 0),
		m3.QFromAxisAngle(m3.V(0, 1, 0), math.Pi/2)) // along x
	cs := Collide(a, b, nil, nil)
	if len(cs) != 1 {
		t.Fatalf("crossed capsules: want 1 contact, got %d", len(cs))
	}
	checkManifold(t, cs, a, b)
	if math.Abs(cs[0].Depth-0.05) > 1e-9 {
		t.Errorf("depth = %v, want 0.05", cs[0].Depth)
	}
	if math.Abs(cs[0].Normal.Y) < 0.99 {
		t.Errorf("normal should be vertical: %v", cs[0].Normal)
	}
}

func TestHeightFieldSlopeNormal(t *testing.T) {
	// A sphere resting on a 45-degree ramp gets a tilted normal.
	n := 8
	hs := make([]float64, n*n)
	for z := 0; z < n; z++ {
		for x := 0; x < n; x++ {
			hs[z*n+x] = float64(x) // rise 1 per cell
		}
	}
	hf := geom.NewHeightField(n, n, 1, 1, hs)
	f := mk(0, hf, m3.Zero)
	s := mk(1, geom.Sphere{R: 0.5}, m3.V(3, 3.2, 3))
	cs := Collide(s, f, nil, nil)
	if len(cs) != 1 {
		t.Fatalf("sphere on ramp: want 1 contact, got %d", len(cs))
	}
	// Terrain normal tilts against the slope: -x and +y components.
	nrm := cs[0].Normal.Neg() // contact normal points into the field
	if nrm.X >= 0 || nrm.Y <= 0.5 {
		t.Errorf("ramp surface normal = %v, want tilted (-x, +y)", nrm)
	}
}

func TestDeepestDepthTracksWorstPair(t *testing.T) {
	var st Stats
	a := mk(0, geom.Sphere{R: 1}, m3.Zero)
	b := mk(1, geom.Sphere{R: 1}, m3.V(1.9, 0, 0)) // depth 0.1
	c := mk(2, geom.Sphere{R: 1}, m3.V(0, 1.2, 0)) // depth 0.8
	Collide(a, b, nil, &st)
	Collide(a, c, nil, &st)
	if math.Abs(st.DeepestDepth-0.8) > 1e-9 {
		t.Errorf("DeepestDepth = %v, want 0.8", st.DeepestDepth)
	}
	if st.PairsTested != 2 || st.ContactsOut != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStaticMeshPairsProduceNothing(t *testing.T) {
	// Plane vs trimesh (two statics that slipped through filtering) must
	// not panic and must produce no contacts.
	verts := []m3.Vec{m3.V(0, 0, 0), m3.V(1, 0, 0), m3.V(0, 0, 1)}
	tm := geom.NewTriMesh(verts, []geom.Tri{{0, 1, 2}})
	a := mk(0, geom.Plane{Normal: m3.V(0, 1, 0)}, m3.Zero)
	b := mk(1, tm, m3.Zero)
	if cs := Collide(a, b, nil, nil); len(cs) != 0 {
		t.Errorf("plane-trimesh produced %d contacts", len(cs))
	}
}
