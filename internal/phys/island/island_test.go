package island

import (
	"math/rand"
	"testing"
)

func allActive(int32) bool { return true }

func TestDSUBasics(t *testing.T) {
	d := NewDSU(5)
	if d.Find(0) == d.Find(1) {
		t.Fatal("fresh elements should be in distinct sets")
	}
	d.Union(0, 1)
	d.Union(1, 2)
	if d.Find(0) != d.Find(2) {
		t.Error("transitive union failed")
	}
	if d.Find(3) == d.Find(0) {
		t.Error("unrelated element merged")
	}
	d.Union(0, 0) // self-union is a no-op
	if d.Find(0) != d.Find(2) {
		t.Error("self-union corrupted structure")
	}
}

func TestDSUMatchesNaive(t *testing.T) {
	// Property: DSU components match a naive reachability computation.
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 40
		d := NewDSU(n)
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		for e := 0; e < 50; e++ {
			a, b := int32(r.Intn(n)), int32(r.Intn(n))
			d.Union(a, b)
			adj[a][b], adj[b][a] = true, true
		}
		// Floyd-Warshall style closure.
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				if !adj[i][k] {
					continue
				}
				for j := 0; j < n; j++ {
					if adj[k][j] {
						adj[i][j] = true
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				reach := i == j || adj[i][j]
				same := d.Find(int32(i)) == d.Find(int32(j))
				if reach != same {
					t.Fatalf("trial %d: dsu(%d,%d)=%v reach=%v", trial, i, j, same, reach)
				}
			}
		}
	}
}

func TestBuildSimple(t *testing.T) {
	// 0-1 joined, 2 alone, 3-4 joined through a contact.
	edges := []Edge{
		{A: 0, B: 1, Ref: 0, DOF: 3},
		{A: 3, B: 4, Ref: 0, IsContact: true, DOF: 3},
	}
	islands := Build(5, edges, allActive)
	if len(islands) != 3 {
		t.Fatalf("want 3 islands, got %d", len(islands))
	}
	sizes := map[int]int{}
	for _, is := range islands {
		sizes[len(is.Bodies)]++
	}
	if sizes[2] != 2 || sizes[1] != 1 {
		t.Errorf("island sizes wrong: %+v", islands)
	}
}

func TestBuildWorldEdges(t *testing.T) {
	// Contacts with the static world (-1) do not merge bodies but do
	// attach to the dynamic body's island.
	edges := []Edge{
		{A: 0, B: -1, Ref: 7, IsContact: true, DOF: 3},
		{A: 1, B: -1, Ref: 8, IsContact: true, DOF: 3},
	}
	islands := Build(2, edges, allActive)
	if len(islands) != 2 {
		t.Fatalf("want 2 islands, got %d", len(islands))
	}
	for _, is := range islands {
		if len(is.Contacts) != 1 || is.DOF != 3 {
			t.Errorf("island missing its world contact: %+v", is)
		}
	}
}

func TestBuildInactiveBodies(t *testing.T) {
	edges := []Edge{
		{A: 0, B: 1, Ref: 0, DOF: 3},
		{A: 1, B: 2, Ref: 1, DOF: 3},
	}
	// Body 1 inactive: 0 and 2 should stay separate; edges touching only
	// inactive endpoints keep their active side.
	islands := Build(3, edges, func(i int32) bool { return i != 1 })
	if len(islands) != 2 {
		t.Fatalf("want 2 islands, got %d", len(islands))
	}
	// Edge {0,1}: active endpoint 0 -> island of 0 gets joint 0.
	for _, is := range islands {
		if len(is.Bodies) != 1 {
			t.Errorf("island should contain exactly one body: %+v", is)
		}
		if len(is.Joints) != 1 {
			t.Errorf("each island should inherit one dangling joint: %+v", is)
		}
	}
}

func TestBuildDOFAccumulation(t *testing.T) {
	edges := []Edge{
		{A: 0, B: 1, Ref: 0, DOF: 5},
		{A: 1, B: 2, Ref: 1, DOF: 3},
		{A: 2, B: 0, Ref: 0, IsContact: true, DOF: 9},
	}
	islands := Build(3, edges, allActive)
	if len(islands) != 1 {
		t.Fatalf("want 1 island, got %d", len(islands))
	}
	if islands[0].DOF != 17 {
		t.Errorf("DOF = %d, want 17", islands[0].DOF)
	}
	if len(islands[0].Joints) != 2 || len(islands[0].Contacts) != 1 {
		t.Errorf("constraint partition wrong: %+v", islands[0])
	}
}

func TestBuildChainIsOneIsland(t *testing.T) {
	const n = 100
	var edges []Edge
	for i := int32(0); i < n-1; i++ {
		edges = append(edges, Edge{A: i, B: i + 1, Ref: i, DOF: 3})
	}
	islands := Build(n, edges, allActive)
	if len(islands) != 1 {
		t.Fatalf("chain should form one island, got %d", len(islands))
	}
	if len(islands[0].Bodies) != n {
		t.Errorf("island has %d bodies, want %d", len(islands[0].Bodies), n)
	}
}

func TestBuildEmpty(t *testing.T) {
	if islands := Build(0, nil, allActive); len(islands) != 0 {
		t.Errorf("empty world produced islands: %v", islands)
	}
}

// A reused Builder must match one-shot Build results and, once grown,
// rebuild without allocating.
func TestBuilderReuseMatchesBuild(t *testing.T) {
	edgesA := []Edge{
		{A: 0, B: 1, Ref: 0, IsContact: true, DOF: 3},
		{A: 2, B: 3, Ref: 1, DOF: 5},
		{A: 3, B: -1, Ref: 2, IsContact: true, DOF: 3},
	}
	edgesB := []Edge{
		{A: 0, B: 3, Ref: 0, DOF: 6},
		{A: 1, B: 2, Ref: 1, IsContact: true, DOF: 3},
	}
	allOn := func(int32) bool { return true }
	var b Builder
	for trial, edges := range [][]Edge{edgesA, edgesB, edgesA} {
		got, gotSteps := b.Build(5, edges, allOn)
		want, wantSteps := BuildCounted(5, edges, allOn)
		if gotSteps != wantSteps {
			t.Errorf("trial %d: findSteps %d, want %d", trial, gotSteps, wantSteps)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d islands, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if !equalI32(got[i].Bodies, want[i].Bodies) ||
				!equalI32(got[i].Joints, want[i].Joints) ||
				!equalI32(got[i].Contacts, want[i].Contacts) ||
				got[i].DOF != want[i].DOF {
				t.Errorf("trial %d island %d: got %+v want %+v", trial, i, got[i], want[i])
			}
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		b.Build(5, edgesA, allOn)
	})
	if allocs > 0 {
		t.Errorf("grown Builder allocates %v/op, want 0", allocs)
	}
}

func equalI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
