// Package island implements Island Creation, the engine's serial phase:
// grouping bodies connected by joints or contacts into independent
// islands (connected components) using a union-find structure. The full
// contact topology is only known after the last pair is examined, which
// is why this phase serializes the pipeline (paper section 3.2).
package island

// DSU is a union-find (disjoint-set union) structure over body indices.
type DSU struct {
	parent []int32
	rank   []int8
	// FindSteps counts parent-chain hops, a work measure for the
	// architecture model.
	FindSteps int
}

// NewDSU returns a DSU over n elements, each in its own set.
func NewDSU(n int) *DSU {
	d := &DSU{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range d.parent {
		d.parent[i] = int32(i)
	}
	return d
}

// Find returns the set representative of x, with path compression.
func (d *DSU) Find(x int32) int32 {
	root := x
	for d.parent[root] != root {
		root = d.parent[root]
		d.FindSteps++
	}
	for d.parent[x] != root {
		d.parent[x], x = root, d.parent[x]
	}
	return root
}

// Union merges the sets containing a and b.
func (d *DSU) Union(a, b int32) {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
}

// Island is one connected component of interacting bodies. Joints and
// Contacts index into the caller's per-step lists.
type Island struct {
	Bodies   []int32
	Joints   []int32
	Contacts []int32
	// DOF is the number of constraint rows (degrees of freedom removed)
	// in this island — the island's fine-grain task count.
	DOF int
}

// Edge connects two bodies through a joint or contact. Either endpoint
// may be -1 (the static world), which does not merge anything but still
// assigns the constraint to the island of the dynamic endpoint.
type Edge struct {
	A, B int32
	// Ref is the caller's joint or contact index.
	Ref int32
	// IsContact distinguishes the two constraint lists.
	IsContact bool
	// DOF is the number of rows this constraint contributes.
	DOF int
}

// Build groups the given bodies into islands. active reports whether a
// body participates (enabled, dynamic, awake); inactive bodies join no
// island. Constraints whose both endpoints are inactive are dropped.
// The pass is strictly sequential, mirroring the serial phase.
func Build(numBodies int, edges []Edge, active func(int32) bool) []Island {
	islands, _ := BuildCounted(numBodies, edges, active)
	return islands
}

// BuildCounted is Build plus the union-find work counter used by the
// architecture model.
func BuildCounted(numBodies int, edges []Edge, active func(int32) bool) ([]Island, int) {
	d := NewDSU(numBodies)
	act := make([]bool, numBodies)
	for i := int32(0); i < int32(numBodies); i++ {
		act[i] = active(i)
	}
	on := func(i int32) bool { return i >= 0 && act[i] }
	for _, e := range edges {
		if on(e.A) && on(e.B) {
			d.Union(e.A, e.B)
		}
	}
	// Map roots to island slots.
	slot := make(map[int32]int)
	var islands []Island
	for i := int32(0); i < int32(numBodies); i++ {
		if !act[i] {
			continue
		}
		r := d.Find(i)
		s, ok := slot[r]
		if !ok {
			s = len(islands)
			slot[r] = s
			islands = append(islands, Island{})
		}
		islands[s].Bodies = append(islands[s].Bodies, i)
	}
	for _, e := range edges {
		var owner int32 = -1
		switch {
		case on(e.A):
			owner = e.A
		case on(e.B):
			owner = e.B
		default:
			continue
		}
		s := slot[d.Find(owner)]
		if e.IsContact {
			islands[s].Contacts = append(islands[s].Contacts, e.Ref)
		} else {
			islands[s].Joints = append(islands[s].Joints, e.Ref)
		}
		islands[s].DOF += e.DOF
	}
	return islands, d.FindSteps
}
