// Package island implements Island Creation, the engine's serial phase:
// grouping bodies connected by joints or contacts into independent
// islands (connected components) using a union-find structure. The full
// contact topology is only known after the last pair is examined, which
// is why this phase serializes the pipeline (paper section 3.2).
package island

// DSU is a union-find (disjoint-set union) structure over body indices.
type DSU struct {
	parent []int32
	rank   []int8
	// FindSteps counts parent-chain hops, a work measure for the
	// architecture model.
	FindSteps int
}

// NewDSU returns a DSU over n elements, each in its own set.
func NewDSU(n int) *DSU {
	d := &DSU{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range d.parent {
		d.parent[i] = int32(i)
	}
	return d
}

// Find returns the set representative of x, with path compression.
func (d *DSU) Find(x int32) int32 {
	root := x
	for d.parent[root] != root {
		root = d.parent[root]
		d.FindSteps++
	}
	for d.parent[x] != root {
		d.parent[x], x = root, d.parent[x]
	}
	return root
}

// Union merges the sets containing a and b.
func (d *DSU) Union(a, b int32) {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
}

// Island is one connected component of interacting bodies. Joints and
// Contacts index into the caller's per-step lists.
type Island struct {
	Bodies   []int32
	Joints   []int32
	Contacts []int32
	// DOF is the number of constraint rows (degrees of freedom removed)
	// in this island — the island's fine-grain task count.
	DOF int
}

// Edge connects two bodies through a joint or contact. Either endpoint
// may be -1 (the static world), which does not merge anything but still
// assigns the constraint to the island of the dynamic endpoint.
type Edge struct {
	A, B int32
	// Ref is the caller's joint or contact index.
	Ref int32
	// IsContact distinguishes the two constraint lists.
	IsContact bool
	// DOF is the number of rows this constraint contributes.
	DOF int
}

// Build groups the given bodies into islands. active reports whether a
// body participates (enabled, dynamic, awake); inactive bodies join no
// island. Constraints whose both endpoints are inactive are dropped.
// The pass is strictly sequential, mirroring the serial phase.
func Build(numBodies int, edges []Edge, active func(int32) bool) []Island {
	islands, _ := BuildCounted(numBodies, edges, active)
	return islands
}

// BuildCounted is Build plus the union-find work counter used by the
// architecture model.
func BuildCounted(numBodies int, edges []Edge, active func(int32) bool) ([]Island, int) {
	var b Builder
	return b.Build(numBodies, edges, active)
}

// Builder is a reusable island builder: all working storage (the
// union-find arrays, the root->slot table, and the island lists
// themselves) persists between Build calls, so a world stepping at a
// stable topology builds its islands without allocating. The returned
// islands alias the builder's storage and are valid until the next
// Build.
type Builder struct {
	parent  []int32
	rank    []int8
	act     []bool
	slot    []int32 // body index -> island slot + 1; 0 = unassigned
	islands []Island
	// findSteps counts parent-chain hops, the serial-phase work measure.
	findSteps int
}

// find returns the set representative of x with path compression.
//
//paraxlint:noalloc
func (b *Builder) find(x int32) int32 {
	root := x
	for b.parent[root] != root {
		root = b.parent[root]
		b.findSteps++
	}
	for b.parent[x] != root {
		b.parent[x], x = root, b.parent[x]
	}
	return root
}

// union merges the sets containing a and b.
//
//paraxlint:noalloc
func (b *Builder) union(x, y int32) {
	rx, ry := b.find(x), b.find(y)
	if rx == ry {
		return
	}
	if b.rank[rx] < b.rank[ry] {
		rx, ry = ry, rx
	}
	b.parent[ry] = rx
	if b.rank[rx] == b.rank[ry] {
		b.rank[rx]++
	}
}

// addIsland appends one island, reusing the member slices of a
// previously built island occupying the same slot.
func (b *Builder) addIsland() *Island {
	if len(b.islands) < cap(b.islands) {
		b.islands = b.islands[:len(b.islands)+1]
		is := &b.islands[len(b.islands)-1]
		is.Bodies = is.Bodies[:0]
		is.Joints = is.Joints[:0]
		is.Contacts = is.Contacts[:0]
		is.DOF = 0
		return is
	}
	b.islands = append(b.islands, Island{})
	return &b.islands[len(b.islands)-1]
}

// on reports whether i is a valid, active body index for this Build.
//
//paraxlint:noalloc
func (b *Builder) on(i int32) bool { return i >= 0 && b.act[i] }

// Build implements the same grouping as the package-level Build over
// reused storage. The result is deterministic: islands appear in order
// of their lowest body index, members in ascending order.
//
//paraxlint:noalloc
func (b *Builder) Build(numBodies int, edges []Edge, active func(int32) bool) ([]Island, int) {
	if cap(b.parent) < numBodies {
		// Capacity growth to the largest body count seen, then reused.
		b.parent = make([]int32, numBodies) //paraxlint:allow(alloc)
		b.rank = make([]int8, numBodies)    //paraxlint:allow(alloc)
		b.act = make([]bool, numBodies)     //paraxlint:allow(alloc)
		b.slot = make([]int32, numBodies)   //paraxlint:allow(alloc)
	}
	b.parent = b.parent[:numBodies]
	b.rank = b.rank[:numBodies]
	b.act = b.act[:numBodies]
	b.slot = b.slot[:numBodies]
	b.findSteps = 0
	b.islands = b.islands[:0]
	for i := int32(0); i < int32(numBodies); i++ {
		b.parent[i] = i
		b.rank[i] = 0
		b.slot[i] = 0
		b.act[i] = active(i)
	}
	for _, e := range edges {
		if b.on(e.A) && b.on(e.B) {
			b.union(e.A, e.B)
		}
	}
	// Map roots to island slots.
	for i := int32(0); i < int32(numBodies); i++ {
		if !b.act[i] {
			continue
		}
		r := b.find(i)
		s := b.slot[r]
		if s == 0 {
			b.addIsland()
			s = int32(len(b.islands))
			b.slot[r] = s
		}
		is := &b.islands[s-1]
		is.Bodies = append(is.Bodies, i)
	}
	for _, e := range edges {
		var owner int32 = -1
		switch {
		case b.on(e.A):
			owner = e.A
		case b.on(e.B):
			owner = e.B
		default:
			continue
		}
		is := &b.islands[b.slot[b.find(owner)]-1]
		if e.IsContact {
			is.Contacts = append(is.Contacts, e.Ref)
		} else {
			is.Joints = append(is.Joints, e.Ref)
		}
		is.DOF += e.DOF
	}
	return b.islands, b.findSteps
}
