package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism enforces the PR 2 contract that a parallel run is
// byte-identical to a serial run: engine, model and harness code must
// not let Go's deliberately randomized map iteration order, global
// math/rand state, or wall-clock reads leak into results.
//
// Flagged constructs (in every package except `package main`, whose
// binaries own their I/O):
//   - `range` over a map whose body prints or writes output directly
//     (order-dependent by construction), appends to a slice declared
//     outside the loop with no subsequent sort of that slice in the
//     same function, or accumulates into an outer floating-point
//     variable (float addition is not associative, so iteration order
//     changes the sum)
//   - package-level math/rand state: rand.Intn, rand.Shuffle, ... —
//     anything but the explicitly seeded rand.New(rand.NewSource(seed))
//     constructors
//   - time.Now outside the waived harness timing lines
//
// Waive with //paraxlint:allow(maprange), (rand) or (time).
var Determinism = &Analyzer{
	Name:       "determinism",
	Doc:        "flags map-iteration order, global math/rand and time.Now leaking into engine results",
	Categories: []string{"maprange", "rand", "time"},
	Run:        runDeterminism,
}

// globalRandOK lists math/rand (and /v2) functions that do not touch the
// package-level generator: explicit-seed constructors.
var globalRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkNondetCall(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// calleeFunc resolves a call's target to its types.Func, if any.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func checkNondetCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		// Methods on a seeded *rand.Rand are fine; only package-level
		// state is nondeterministic across runs.
		if fn.Type().(*types.Signature).Recv() == nil && !globalRandOK[fn.Name()] {
			pass.Reportf(call.Pos(), "rand",
				"global %s.%s is seeded per process; use a per-workload rand.New(rand.NewSource(seed))",
				fn.Pkg().Name(), fn.Name())
		}
	case "time":
		if fn.Name() == "Now" && fn.Type().(*types.Signature).Recv() == nil {
			pass.Reportf(call.Pos(), "time",
				"time.Now leaks wall-clock into results; waive harness timing lines with //paraxlint:allow(time)")
		}
	}
}

// checkMapRanges inspects every map-range loop in one function.
func checkMapRanges(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.Types[rng.X].Type
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, fd, rng)
		return true
	})
}

func checkMapRangeBody(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	var appendDests []ast.Expr
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isOutputCall(pass, n) {
				pass.Reportf(n.Pos(), "maprange",
					"output written inside map iteration is emitted in random order; collect and sort first")
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if ok && isBuiltinNamed(pass, call, "append") && i < len(n.Lhs) {
					if declaredOutside(pass, n.Lhs[i], rng) {
						appendDests = append(appendDests, n.Lhs[i])
					}
				}
			}
			// Floating-point accumulation: order changes the rounding.
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN || n.Tok == token.MUL_ASSIGN {
				for _, lhs := range n.Lhs {
					if isFloat(pass.TypesInfo.Types[lhs].Type) && declaredOutside(pass, lhs, rng) {
						pass.Reportf(n.Pos(), "maprange",
							"floating-point accumulation across map iteration is order-dependent; iterate a sorted key slice")
					}
				}
			}
		}
		return true
	})
	for _, dest := range appendDests {
		if !sortedAfter(pass, fd, rng, dest) {
			pass.Reportf(dest.Pos(), "maprange",
				"slice appended across map iteration has random element order; sort it before use or iterate sorted keys")
		}
	}
}

// isOutputCall reports whether the call prints or writes: the fmt
// print family (except Sprint*, whose result can still be sorted) or a
// Write/WriteString/WriteByte/WriteRune method.
func isOutputCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && !strings.HasPrefix(fn.Name(), "Sprint") {
		return true
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Printf", "Print", "Println":
			return true
		}
	}
	return false
}

func isBuiltinNamed(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// declaredOutside reports whether the expression's root object was
// declared before the range statement (so writes survive the loop).
func declaredOutside(pass *Pass, e ast.Expr, rng *ast.RangeStmt) bool {
	root := rootIdent(e)
	if root == nil {
		return false
	}
	obj := pass.TypesInfo.Uses[root]
	if obj == nil {
		obj = pass.TypesInfo.Defs[root]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < rng.Pos()
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether, after the range loop, the enclosing
// function calls a sort.* or slices.Sort* function mentioning the same
// destination expression.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, dest ast.Expr) bool {
	destStr := exprText(pass, dest)
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		p := fn.Pkg().Path()
		if p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if strings.Contains(exprText(pass, arg), destStr) {
				found = true
			}
		}
		return true
	})
	return found
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
