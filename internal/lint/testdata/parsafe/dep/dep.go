// Package dep is the cross-package half of the parsafe fixture. No
// function here carries any directive: the finding three frames below
// the parroot in the parent package is pure transitive propagation
// across the package boundary.
package dep

// Frame1 -> frame2 -> frame3: the allocation sits three frames below
// the root worker, with no annotation on any frame of the chain.
func Frame1(xs []int) []int { return frame2(xs) }

func frame2(xs []int) []int { return frame3(xs) }

func frame3(xs []int) []int {
	out := make([]int, len(xs)+1) // want "call to make allocates"
	copy(out, xs)
	return out
}

// Pure is reachable and clean: no finding.
func Pure(a, b float64) float64 { return a*b + b }
