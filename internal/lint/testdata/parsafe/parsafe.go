// Package parsafe seeds one violation of every finding kind the
// module-spanning parsafe analyzer can produce, plus the clean shapes
// it must stay silent on. The dep subpackage proves that propagation
// does not stop at package boundaries.
package parsafe

import (
	"math"
	"os"
	"sync"

	"paraxlint.test/parsafe/dep"
)

// hits and state are shared package state: any reachable write races.
var (
	hits  int
	state struct{ count int }
	mu    sync.Mutex
)

type pair struct{ a, b int }

// shape's dynamic dispatch devirtualizes over every concrete type in
// the analyzed set (class-hierarchy analysis).
type shape interface{ area() float64 }

type circle struct{ r float64 }

// area is reachable only through the interface call in worker: its body
// is still checked (and is clean).
func (c circle) area() float64 { return math.Pi * c.r * c.r }

// boxed embeds the interface: its promoted area method is abstract, so
// CHA must skip it (the embedded value is itself one of the other
// implementors) rather than report a missing body.
type boxed struct{ shape }

// phantom has no implementation anywhere in the analyzed set.
type phantom interface{ vanish() }

// locker is implemented by padlock through an embedded concrete type
// from outside the module, so devirtualization lands on an external
// body.
type locker interface{ Lock() }

type padlock struct{ sync.Mutex }

// sink keeps the worker's outputs in per-worker state, mirroring the
// engine's scratch arenas: field writes are fine, only package-level
// state is shared.
type sink struct {
	n     int
	pid   int
	root  float64
	area  float64
	name  string
	vals  []float64
	tmp   []float64
	ints  []int
	blast []int
	ptr   *pair
	pad   padlock
	cb    func()
	fns   [2]func()
}

//paraxlint:parroot fixture worker: everything below is reachable
func worker(s *sink, sh shape, p phantom, fn func() int) {
	s.ints = dep.Frame1(s.ints)
	s.area = sh.area()
	s.root = math.Sqrt(s.area)

	hits++            // want "write to package-level variable hits in parroot-reachable code"
	state.count = s.n // want "write to package-level variable state in parroot-reachable code"

	ch := make(chan int, 1) // want "call to make allocates"
	ch <- s.n               // want "channel send in parroot-reachable code"
	s.n = <-ch              // want "channel receive in parroot-reachable code"
	select {}               // want "select statement in parroot-reachable code"
	for range ch {          // want "range over channel in parroot-reachable code"
	}

	go helper() // want "go statement allocates a goroutine stack"
	mu.Lock()   // want "sync.Lock in parroot-reachable code"
	mu.Unlock() // want "sync.Unlock in parroot-reachable code"

	s.n += fn()    // want "call through func value fn: concrete target unknown to parsafe"
	s.cb()         // want "call through func-typed field cb: concrete target unknown to parsafe"
	s.fns[0]()     // want "call through computed func value: concrete target unknown to parsafe"
	p.vanish()     // want "interface call vanish has no implementation in the analyzed set"
	lockIt(&s.pad) // clean: static call into the analyzed set

	s.pid = os.Getpid() // want "call to os.Getpid: body outside the parsafe-analyzed set"

	s.tmp = append(s.vals, s.root)  // want "append may allocate a new backing array"
	s.ptr = &pair{a: s.n, b: s.pid} // want "&-composite literal allocates"
	s.name = s.name + "x"           // want "string concatenation allocates"
	_ = func() int { return s.n }   // want "function literal captures variables and allocates a closure"

	s.blast = detonate() // clean: detonate is coldpath, cut from the graph

	//paraxlint:allow(parsafe) fixture: sanctioned dynamic dispatch, mirroring the pool's task trampoline
	s.n += fn()
}

// lockIt's interface call devirtualizes to the promoted Lock of the
// embedded sync.Mutex — a body outside the analyzed set.
func lockIt(l locker) {
	l.Lock() // want "interface call Lock devirtualizes to .*sync.Mutex..Lock: body outside the analyzed set"
}

// helper is reachable via the go statement in worker; its legacy
// noalloc directive is redundant now that parsafe covers it
// transitively.
//
//paraxlint:noalloc
func helper() { // want "redundant //paraxlint:noalloc on helper"
	_ = hits // reads of shared state are fine; only writes race
}

// detonate allocates by design: the coldpath directive cuts it from the
// graph, and the call in worker marks the directive load-bearing.
//
//paraxlint:coldpath fixture event path, fires rarely
func detonate() []int { return make([]int, 64) }

// unusedCold's directive has no parroot-reachable caller: stale.
//
//paraxlint:coldpath fixture: nothing reaches this
func unusedCold() {} // want "stale //paraxlint:coldpath on unusedCold"

// confused carries both directives at once.
//
//paraxlint:parroot fixture conflict
//paraxlint:coldpath fixture conflict
func confused() {} // want "confused is annotated both parroot and coldpath; pick one"

// spotless is clean: its waiver suppresses nothing and is itself a
// finding.
func spotless(x int) int {
	//paraxlint:allow(parsafe) fixture: nothing here to suppress // want "unused //paraxlint:allow.parsafe. comment suppresses nothing"
	return x * 2
}

// orphan is unreachable: its allocation is not reported.
func orphan() []int { return make([]int, 4) }
