// Package allow pins the //paraxlint:allow escape-hatch semantics:
// an allow comment suppresses findings on exactly one line (its own for
// the inline form, the next for the standalone form), and an allow that
// suppresses nothing is itself reported.
package allow

// warm allocates twice; the inline waiver covers only the first line,
// so the second make is still reported.
//
//paraxlint:noalloc
func warm(n int) int {
	a := make([]int, n) //paraxlint:allow(alloc) one-time warm-up buffer
	b := make([]int, n) // want "call to make allocates"
	return len(a) + len(b)
}

// above uses the standalone form: a comment alone on its line covers
// the following line only.
//
//paraxlint:noalloc
func above(n int) int {
	//paraxlint:allow(alloc) capacity growth, amortized away
	c := make([]int, n)
	d := make([]int, n) // want "call to make allocates"
	return len(c) + len(d)
}

// stale carries a waiver with nothing to suppress: the waiver itself is
// the finding, so escape hatches cannot rot.
//
//paraxlint:noalloc
func stale(x int) int {
	y := x + 1 //paraxlint:allow(alloc) nothing allocates here -- want "unused .*allow.* comment suppresses nothing"
	return y
}
