// methods.go is the second file of the noalloc fixture package: the
// directive and the `// want` expectations must both work on method
// declarations, and the harness must type-check all files of a
// multi-file testdata package together.
package noalloc

type ring struct {
	buf []int
}

//paraxlint:noalloc
func (r *ring) grow(n int) {
	r.buf = make([]int, n) // want "call to make allocates"
}

//paraxlint:noalloc
func (r *ring) push(v int) {
	r.buf = append(r.buf, v) // grow-in-place: allowed
}
