// Package noalloc exercises the noalloc analyzer. Only functions
// annotated //paraxlint:noalloc are checked; every flagged line carries
// a `// want` expectation matched by the linttest harness.
package noalloc

import "fmt"

// S is a carrier for append-in-place and boxing cases.
type S struct {
	buf   []int
	iface interface{}
}

// Grow exists to be taken as a method value.
func (s *S) Grow() {}

func unannotated() []int {
	return make([]int, 8) // unchecked: no noalloc directive
}

//paraxlint:noalloc
func builtins(s *S, n int) {
	s.buf = append(s.buf, n)              // grow-in-place: allowed
	fresh := append([]int(nil), s.buf...) // want "append may allocate"
	_ = fresh
	b := make([]byte, n) // want "call to make allocates"
	_ = b
	p := new(S) // want "call to new allocates"
	_ = p
}

//paraxlint:noalloc
func literals(n int) {
	lit := []int{1, 2, 3} // want "slice literal allocates"
	_ = lit
	m := map[int]bool{} // want "map literal allocates"
	_ = m
	ptr := &S{} // want "composite literal allocates"
	_ = ptr
	plain := S{buf: nil} // plain struct value: no allocation
	_ = plain
}

//paraxlint:noalloc
func closures(n int) func() int {
	f := func() int { return 0 } // static closure: allowed
	_ = f
	g := func() int { return n } // want "captures variables"
	return g
}

//paraxlint:noalloc
func methodValue(s *S) {
	f := s.Grow // want "bound-method closure"
	_ = f
	s.Grow() // direct call: allowed
}

func sink(x interface{}) {}

//paraxlint:noalloc
func boxing(s *S, v int, p *S) {
	s.iface = v // want "boxes int"
	s.iface = p // pointer-shaped: allowed
	s.iface = nil
	sink(v) // want "boxes int"
	sink(p) // pointer fits the interface word: allowed
}

//paraxlint:noalloc
func strs(a, b string, bs []byte) string {
	c := a + b      // want "string concatenation allocates"
	d := string(bs) // want "conversion .* allocates"
	_ = d
	return c
}

func vsum(xs ...int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

//paraxlint:noalloc
func variadic(pre []int) {
	_ = vsum(1, 2)   // want "variadic call allocates"
	_ = vsum(pre...) // spread of a prepared slice: allowed
	_ = vsum()       // empty list passes nil: allowed
}

//paraxlint:noalloc
func printing(n int) {
	fmt.Println(n) // want "call to fmt.Println allocates"
}

//paraxlint:noalloc
func spawn() {
	go vsum(nil...) // want "goroutine stack"
}

// returnAppend hands the possibly-regrown slice back to the caller, the
// same amortized pattern as x = append(x, ...): not flagged.
//
//paraxlint:noalloc
func returnAppend(dst []int, v int) []int {
	return append(dst, v)
}

// seriesRing mirrors the telemetry series' staging/commit shape: a fixed-size
// staging array copied into a preallocated ring row each step.
type seriesRing struct {
	cur  [4]float64
	rows [][]float64
	head int
}

// commit pins that slicing an addressable array field (r.cur[:]) and
// copying it into an existing row are allocation-free, while a fresh
// conversion of the same array is not.
//
//paraxlint:noalloc
func (r *seriesRing) commit() {
	row := r.rows[r.head%len(r.rows)]
	copy(row, r.cur[:]) // array-field slice: no heap movement
	for i := range r.cur {
		r.cur[i] = 0
	}
	r.head++
	escaped := append([]float64(nil), r.cur[:]...) // want "append may allocate"
	_ = escaped
}
