// Package chunkown exercises the chunk-owner write discipline: any
// function with a consecutive `chunk, lo, hi int` parameter trio is a
// chunk worker, and its index-writes to slices must be provably
// disjoint from every other chunk's.
package chunkown

type scratch struct {
	perChunk [][]float64
	counts   []int
	out      []float64
}

// okBounded writes through the canonical bounded loop: proven.
func okBounded(chunk, lo, hi int, out []float64) {
	for i := lo; i < hi; i++ {
		out[i] = float64(i)
	}
}

// okChunkSlot writes the worker's own merge slot: proven.
func okChunkSlot(chunk, lo, hi int, s *scratch) {
	s.counts[chunk] = hi - lo
}

// okDerived writes through a local derived from a [chunk]-indexed
// chain: the buffer belongs to this chunk, any index into it is fine.
func okDerived(chunk, lo, hi int, s *scratch) {
	mine := s.perChunk[chunk]
	for i := lo; i < hi; i++ {
		mine[i-lo] = float64(i)
	}
}

// okLocalArray writes a function-local array: value semantics, no
// sharing with other workers.
func okLocalArray(chunk, lo, hi int) float64 {
	var acc [8]float64
	for i := lo; i < hi; i++ {
		acc[i&7] += float64(i)
	}
	return acc[0]
}

// badRaw indexes with an expression the checker cannot bound.
func badRaw(chunk, lo, hi int, out []float64) {
	out[lo-1] = 0 // want "index write out.lo-1. is not provably chunk-owned"
}

// badNeighbor strays one past the bounded induction variable.
func badNeighbor(chunk, lo, hi int, out []float64) {
	for i := lo; i < hi; i++ {
		out[i+1] = float64(i) // want "index write out.i.1. is not provably chunk-owned"
	}
}

// badCopy launders lo through a plain local: only the exact canonical
// loop shape is recognized, so the write is a finding.
func badCopy(chunk, lo, hi int, s *scratch) {
	j := lo
	s.out[j] = 1 // want "index write s.out.j. is not provably chunk-owned"
}

// waived is a deliberate merge-time exception.
func waived(chunk, lo, hi int, out []float64) {
	out[0] = 0 //paraxlint:allow(chunkown) fixture: serialized merge slot, workers never race on it
}

// notWorker has no chunk trio and is not checked.
func notWorker(n int, out []float64) {
	out[n] = 1
}
