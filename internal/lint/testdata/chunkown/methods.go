// methods.go is the second file of the chunkown fixture package: the
// harness must merge wants across all files of a multi-file testdata
// package, and the trio detection must work on method declarations.
package chunkown

type worker struct {
	s *scratch
}

// Run is a method chunk worker: findings and wants anchor to lines of a
// method body exactly as for plain functions.
func (w *worker) Run(chunk, lo, hi int) {
	w.s.out[hi] = 0 // want "index write w.s.out.hi. is not provably chunk-owned"
	for i := lo; i < hi; i++ {
		w.s.out[i] = float64(i)
	}
	w.s.counts[chunk]++
}
