// Package floatcmp exercises the floatcmp analyzer: exact ==/!= between
// floating-point expressions, the literal-zero exemption, and the
// //paraxlint:tolerance escape hatch.
package floatcmp

const half = 0.5

func exactEq(a, b float64) bool {
	return a == b // want "exact =="
}

func exactNeq(a, b float32) bool {
	return a != b // want "exact !="
}

func constCmp(a float64) bool {
	return a == half // want "exact =="
}

func zeroCmp(a float64) bool {
	return a == 0 // touched-at-all test: allowed
}

func zeroNeq(a float64) bool {
	return a != 0.0 // literal float zero: allowed
}

func intCmp(a, b int) bool {
	return a == b // integers compare exactly: allowed
}

// approxEq is the tolerance helper: the one place exact float compares
// belong, exempted wholesale by the directive.
//
//paraxlint:tolerance
func approxEq(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps || a == b
}

func waived(a, b float64) bool {
	return a == b //paraxlint:allow(floatcmp) bit-exact golden comparison
}
