// Package determinism exercises the determinism analyzer: map-range
// hazards, global math/rand state and wall-clock reads.
package determinism

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func globalRand() int {
	return rand.Intn(10) // want "global rand.Intn"
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // explicit seed: allowed
	return r.Intn(10)
}

func clock() time.Time {
	return time.Now() // want "time.Now leaks wall-clock"
}

func waivedClock() time.Time {
	return time.Now() //paraxlint:allow(time) harness timing line, stripped before comparison
}

func printRange(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "random order"
	}
}

func writeRange(m map[string]int, buf *bytes.Buffer) {
	for k := range m {
		buf.WriteString(k) // want "random order"
	}
}

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "random element order"
	}
	return keys
}

func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // sorted below: allowed
	}
	sort.Strings(keys)
	return keys
}

func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "order-dependent"
	}
	return sum
}

func localAccum(m map[string]int) int {
	n := 0
	for range m {
		n++ // integer count is order-independent: allowed
	}
	return n
}
