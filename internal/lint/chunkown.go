package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChunkOwn checks the disjoint-write discipline of chunk workers
// syntactically. A chunk worker is any function whose parameter list
// contains the consecutive trio `chunk, lo, hi int` — the signature
// parallelChunks dispatches (see DESIGN.md "Phase parallelism").
// Workers run concurrently over disjoint [lo,hi) element ranges, so
// every index-write to a slice they can see must be provably owned:
//
//   - the index is `chunk` itself (a per-chunk merge buffer slot:
//     w.scratch.perChunk[chunk] = ...);
//   - the index is the induction variable of a `for i := lo; i < hi;
//     i++` loop in the same function (the worker's own range);
//   - the destination chain already passed through a [chunk] index
//     (fields of a per-chunk struct element);
//   - the destination is a local derived from a [chunk]-indexed
//     expression (e := &w.scratch.per[chunk]; e.xs[j] = ...), or a
//     local array (value semantics, no sharing).
//
// Anything else — x[i+1], x[f(i)], writes through a plain local slice
// header — cannot be proved disjoint from here and is a finding,
// waivable per line with //paraxlint:allow(chunkown) for deliberate
// merge-time exceptions.
var ChunkOwn = &Analyzer{
	Name:       "chunkown",
	Doc:        "chunk workers may index-write shared slices only within [lo,hi) or through their own [chunk] buffer",
	Categories: []string{"chunkown"},
	Run:        runChunkOwn,
}

func runChunkOwn(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			chunk, lo, hi := chunkParams(pass, fd)
			if chunk == nil {
				continue
			}
			w := &chunkOwnWalker{
				pass:    pass,
				chunk:   chunk,
				lo:      lo,
				hi:      hi,
				bounded: map[*types.Var]bool{},
				derived: map[*types.Var]bool{},
			}
			w.collect(fd.Body)
			w.check(fd.Body)
		}
	}
	return nil
}

// chunkParams returns the objects of a consecutive `chunk, lo, hi int`
// parameter trio, or nils if the function is not a chunk worker.
func chunkParams(pass *Pass, fd *ast.FuncDecl) (chunk, lo, hi *types.Var) {
	var names []*ast.Ident
	for _, field := range fd.Type.Params.List {
		names = append(names, field.Names...)
	}
	for i := 0; i+2 < len(names); i++ {
		if names[i].Name != "chunk" || names[i+1].Name != "lo" || names[i+2].Name != "hi" {
			continue
		}
		c, _ := pass.TypesInfo.Defs[names[i]].(*types.Var)
		l, _ := pass.TypesInfo.Defs[names[i+1]].(*types.Var)
		h, _ := pass.TypesInfo.Defs[names[i+2]].(*types.Var)
		if c == nil || l == nil || h == nil {
			return nil, nil, nil
		}
		if !isInt(c.Type()) || !isInt(l.Type()) || !isInt(h.Type()) {
			return nil, nil, nil
		}
		return c, l, h
	}
	return nil, nil, nil
}

type chunkOwnWalker struct {
	pass    *Pass
	chunk   *types.Var
	lo, hi  *types.Var
	bounded map[*types.Var]bool // induction vars of for i := lo; i < hi; i++
	derived map[*types.Var]bool // locals assigned from a [chunk]-indexed chain
}

// collect gathers the bounded induction variables and chunk-derived
// locals in one pre-pass, since Go allows use before the checker walks
// the declaring statement's subtree.
func (w *chunkOwnWalker) collect(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if v := w.boundedInduction(n); v != nil {
				w.bounded[v] = true
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := w.pass.TypesInfo.Defs[id].(*types.Var)
				if !ok {
					continue
				}
				if w.chainHasChunkIndex(n.Rhs[i]) {
					w.derived[v] = true
				}
			}
		}
		return true
	})
}

// boundedInduction recognizes exactly `for i := lo; i < hi; i++` (and
// i <= hi-1 is deliberately NOT recognized: one canonical shape keeps
// the proof obvious) and returns i's object.
func (w *chunkOwnWalker) boundedInduction(n *ast.ForStmt) *types.Var {
	init, ok := n.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return nil
	}
	iv, ok := init.Lhs[0].(*ast.Ident)
	if !ok || !w.isVar(init.Rhs[0], w.lo) {
		return nil
	}
	obj, ok := w.pass.TypesInfo.Defs[iv].(*types.Var)
	if !ok {
		return nil
	}
	cond, ok := n.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.LSS {
		return nil
	}
	if !w.isVar(cond.X, obj) || !w.isVar(cond.Y, w.hi) {
		return nil
	}
	post, ok := n.Post.(*ast.IncDecStmt)
	if !ok || post.Tok != token.INC || !w.isVar(post.X, obj) {
		return nil
	}
	return obj
}

func (w *chunkOwnWalker) isVar(e ast.Expr, v *types.Var) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && w.pass.TypesInfo.Uses[id] == v
}

// check flags unproven index-writes.
func (w *chunkOwnWalker) check(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				w.checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			w.checkWrite(n.X)
		case *ast.FuncLit:
			return false // not dispatched with this function's (chunk, lo, hi)
		}
		return true
	})
}

// checkWrite proves one write destination chunk-owned or reports it.
func (w *chunkOwnWalker) checkWrite(lhs ast.Expr) {
	idx := w.outermostIndex(lhs)
	if idx == nil {
		return // no slice indexing on the path: plain var/field write
	}
	if w.ownedIndex(idx.Index) {
		return
	}
	if w.chainHasChunkIndex(idx.X) {
		return // element of a per-chunk structure
	}
	if w.localArrayBase(idx.X) {
		return // function-local array: value semantics
	}
	if root := chainRoot(idx.X); root != nil {
		if v, ok := w.pass.TypesInfo.Uses[root].(*types.Var); ok && w.derived[v] {
			return // local derived from a [chunk] chain
		}
	}
	w.pass.Reportf(lhs.Pos(), "chunkown",
		"index write %s is not provably chunk-owned: index within [lo,hi), a [chunk] buffer, or a chunk-derived local required", exprText(w.pass, lhs))
}

// outermostIndex returns the outermost IndexExpr on the write path
// (peeling selectors and parens), or nil.
func (w *chunkOwnWalker) outermostIndex(e ast.Expr) *ast.IndexExpr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			// Index into a map or array? Only slice/array/map elements
			// share memory; maps are caught by parsafe anyway. Treat all
			// uniformly.
			return x
		default:
			return nil
		}
	}
}

// ownedIndex reports whether an index expression is provably inside
// this worker's range: the chunk parameter itself or a bounded
// induction variable.
func (w *chunkOwnWalker) ownedIndex(idx ast.Expr) bool {
	id, ok := ast.Unparen(idx).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := w.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	return v == w.chunk || w.bounded[v]
}

// chainHasChunkIndex reports whether the expression chain contains an
// index by the chunk parameter ([chunk]) anywhere.
func (w *chunkOwnWalker) chainHasChunkIndex(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if ix, ok := n.(*ast.IndexExpr); ok {
			if id, ok := ast.Unparen(ix.Index).(*ast.Ident); ok {
				if w.pass.TypesInfo.Uses[id] == w.chunk {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// localArrayBase reports whether the indexed operand is an array (not a
// slice) rooted in a local variable — per-call storage that cannot
// alias another worker's.
func (w *chunkOwnWalker) localArrayBase(base ast.Expr) bool {
	t := typeOfExpr(w.pass.TypesInfo, base)
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Array); !ok {
		return false
	}
	root := chainRoot(base)
	if root == nil {
		return false
	}
	v, ok := w.pass.TypesInfo.Uses[root].(*types.Var)
	if !ok {
		return false
	}
	// Param or body-local, but not a pointer (a *T param aliases the
	// caller's array).
	if _, ptr := v.Type().Underlying().(*types.Pointer); ptr {
		return false
	}
	return v.Parent() != v.Pkg().Scope()
}

// chainRoot peels selectors, indexes, derefs and parens down to the
// root identifier.
func chainRoot(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}

func isInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int
}
