package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis. It is
// the subset of golang.org/x/tools/go/packages.Package the analyzers
// need, built from `go list -export` plus the standard library's parser,
// type checker and gc export-data importer.
type Package struct {
	Path      string
	Name      string
	Fset      *token.FileSet
	Files     []*ast.File
	Src       map[string][]byte // filename -> source, for line-level allow comments
	Types     *types.Package
	TypesInfo *types.Info
	// DepOnly marks a package LoadModule pulled in only because an
	// explicitly matched package depends on it. Module analyzers see
	// its sources (the call graph must not stop at package
	// boundaries); per-package analyzers skip it.
	DepOnly bool
}

// listedPackage is the slice of `go list -json` output the loader reads.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// exportLookup serves compiled export data by import path, backed by
// `go list -export`. It is safe for concurrent use and lazily extends
// itself for paths (standard library fixtures imports, for example) that
// were not part of the original query.
type exportLookup struct {
	mu      sync.Mutex
	exports map[string]string // import path -> export data file
}

func (l *exportLookup) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	f, ok := l.exports[path]
	l.mu.Unlock()
	if !ok {
		// Not in the original -deps closure (a fixture importing a
		// stdlib package the repo itself never uses): list it on demand.
		pkgs, err := goList(path)
		if err != nil {
			return nil, fmt.Errorf("lookup %s: %w", path, err)
		}
		l.add(pkgs)
		l.mu.Lock()
		f, ok = l.exports[path]
		l.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("no export data for %s", path)
		}
	}
	return os.Open(f)
}

func (l *exportLookup) add(pkgs []listedPackage) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range pkgs {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
}

// sharedLookup is the process-wide export-data cache: analyzer tests and
// the multichecker all funnel through it so each dependency is listed at
// most once.
var sharedLookup = &exportLookup{exports: map[string]string{}}

// goList runs `go list -e -export -deps -json` over the patterns and
// decodes the package stream.
func goList(patterns ...string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load lists, parses and type-checks the packages matching the patterns
// (dependencies are consumed as export data, not re-checked). Test files
// are excluded: the invariants paraxlint enforces are production-code
// contracts, and tests legitimately print, time and randomize.
func Load(patterns ...string) ([]*Package, error) {
	pkgs, err := goList(patterns...)
	if err != nil {
		return nil, err
	}
	sharedLookup.add(pkgs)
	var out []*Package
	for _, p := range pkgs {
		if p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		lp, err := TypeCheck(p.ImportPath, files)
		if err != nil {
			return nil, err
		}
		out = append(out, lp)
	}
	return out, nil
}

// LoadModule is Load extended for module-spanning analysis: packages
// that are inside the module but were pulled in only as dependencies of
// the matched patterns are parsed and type-checked from source too
// (flagged DepOnly), instead of being consumed as opaque export data.
// This way `paraxlint ./internal/phys/...` still hands parsafe the full
// in-module call-graph closure — the worker hot path reaches into
// internal/obs, and an allocation there is no less a finding for having
// been matched indirectly. Out-of-module (standard library) deps remain
// export data.
func LoadModule(patterns ...string) ([]*Package, error) {
	modPath, err := modulePath()
	if err != nil {
		return nil, err
	}
	pkgs, err := goList(patterns...)
	if err != nil {
		return nil, err
	}
	sharedLookup.add(pkgs)
	// All in-module packages share one FileSet and resolve their
	// in-module imports to each other's source-checked *types.Package
	// (go list -deps emits dependencies before dependents, so the deps
	// map is always populated in time). Without this, a dependent would
	// import its deps as gc export data, and the object identities the
	// module call graph is built on would not match across packages.
	fset := token.NewFileSet()
	deps := map[string]*types.Package{}
	// One export-data importer instance for the whole module: it caches
	// out-of-module packages by path, so two in-module packages that both
	// mention time.Duration agree on its identity.
	imp := &chainImporter{deps: deps, next: importer.ForCompiler(fset, "gc", sharedLookup.lookup)}
	var out []*Package
	for _, p := range pkgs {
		inModule := p.ImportPath == modPath || strings.HasPrefix(p.ImportPath, modPath+"/")
		if p.DepOnly && !inModule {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		lp, err := typeCheck(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		lp.DepOnly = p.DepOnly
		deps[lp.Path] = lp.Types
		out = append(out, lp)
	}
	return out, nil
}

// modulePath returns the import path of the module containing the
// working directory, cached after the first `go list -m`.
func modulePath() (string, error) {
	modOnce.Do(func() {
		cmd := exec.Command("go", "list", "-m")
		var out, errb bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &errb
		if err := cmd.Run(); err != nil {
			modErr = fmt.Errorf("go list -m: %v\n%s", err, errb.String())
			return
		}
		modCached = strings.TrimSpace(out.String())
	})
	return modCached, modErr
}

var (
	modOnce   sync.Once
	modCached string
	modErr    error
)

// TypeCheck parses and type-checks one package from explicit file paths.
// It is the shared core of Load and the analyzer test harness (which
// points it at testdata fixtures).
func TypeCheck(path string, filenames []string) (*Package, error) {
	return TypeCheckWith(token.NewFileSet(), path, filenames, nil)
}

// TypeCheckWith is TypeCheck with a caller-supplied FileSet and a set of
// already-checked source dependencies. deps maps import paths to
// type-checked packages that take precedence over gc export data, which
// is how the test harness builds multi-package fixtures (a fixture root
// importing a fixture dep, neither of which has export data on disk).
func TypeCheckWith(fset *token.FileSet, path string, filenames []string, deps map[string]*types.Package) (*Package, error) {
	var imp types.Importer = importer.ForCompiler(fset, "gc", sharedLookup.lookup)
	if len(deps) > 0 {
		imp = &chainImporter{deps: deps, next: imp}
	}
	return typeCheck(fset, path, filenames, imp)
}

// typeCheck is the shared parse-and-check core; the importer decides how
// imports resolve (export data, in-memory packages, or a chain).
func typeCheck(fset *token.FileSet, path string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	src := make(map[string][]byte, len(filenames))
	for _, fn := range filenames {
		b, err := os.ReadFile(fn)
		if err != nil {
			return nil, err
		}
		src[fn] = b
		f, err := parser.ParseFile(fset, fn, b, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{
		Path:      path,
		Name:      tpkg.Name(),
		Fset:      fset,
		Files:     files,
		Src:       src,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// chainImporter resolves imports from an in-memory package map first,
// falling back to the export-data importer for everything else.
type chainImporter struct {
	deps map[string]*types.Package
	next types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.deps[path]; ok {
		return p, nil
	}
	return c.next.Import(path)
}
