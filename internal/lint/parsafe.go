package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ParSafe proves the parallel-phase contract from DESIGN.md on every
// build: everything statically reachable from a
// `//paraxlint:parroot`-annotated worker entry point must be safe to
// run concurrently with every other worker. Reachable code must not:
//
//   - allocate (the same construct set as noalloc, but propagated
//     transitively — no directive needed on callees, so a newly added
//     allocating function three frames below Step is a finding);
//   - write package-level variables (workers share them);
//   - touch channels, select, or package sync outside sync/atomic
//     (the pool's own WaitGroup handoff is waived, not allowlisted);
//   - start goroutines;
//   - call through interface methods that class-hierarchy analysis
//     cannot resolve to analyzed bodies, or through func values
//     (unless waived — the pool's task trampoline is the one such
//     hole, and each waiver names the parroots it dispatches to);
//   - call outside the analyzed set, except pure-compute packages on
//     a short allowlist (math, math/bits, slices, sync/atomic).
//
// The graph is cut at `//paraxlint:coldpath` functions: event and
// warm-up paths (detonations, pool construction, lane registration)
// that run rarely and allocate by design. A coldpath directive on a
// function no parroot-reachable caller mentions is itself a finding,
// as is a legacy //paraxlint:noalloc directive on a function parsafe
// already covers — so both directive sets stay honest.
var ParSafe = &ModuleAnalyzer{
	Name:       "parsafe",
	Doc:        "code reachable from //paraxlint:parroot workers must be allocation-free, shared-state-free and statically resolvable",
	Categories: []string{"parsafe"},
	Run:        runParSafe,
}

// parsafeExternal lists out-of-module packages whose functions are pure
// compute or lock-free primitives, callable from parallel hot paths
// without analysis. Anything else outside the module is a finding.
var parsafeExternal = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"slices":      true,
	"sync/atomic": true,
}

func runParSafe(mp *ModulePass) error {
	g := buildParsafe(mp)
	g.propagate()
	g.report()
	return nil
}

// ParsafeReachable loads nothing itself: it runs parsafe's graph
// construction and reachability pass over already-loaded packages and
// returns the sorted, fully-qualified names of every function proved
// reachable from the parroot set. Tests pin the presence of deep
// callees (solver, narrow phase, joint rows) so a refactor that
// silently disconnects the graph — leaving nothing checked — fails.
func ParsafeReachable(pkgs []*Package) []string {
	mp := newModulePass(ParSafe, pkgs)
	g := buildParsafe(mp)
	g.propagate()
	var names []string
	for _, f := range g.funcs {
		if f.reachable && f.obj != nil {
			names = append(names, f.obj.FullName())
		}
	}
	sort.Strings(names)
	return names
}

// newModulePass builds the per-package pass table RunModule and
// ParsafeReachable share.
func newModulePass(a *ModuleAnalyzer, pkgs []*Package) *ModulePass {
	shim := &Analyzer{Name: a.Name, Doc: a.Doc, Categories: a.Categories}
	mp := &ModulePass{Analyzer: a, Pkgs: pkgs, passes: make(map[*Package]*Pass, len(pkgs))}
	for _, pkg := range pkgs {
		pass := &Pass{
			Analyzer:  shim,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			src:       pkg.Src,
		}
		pass.collectAllows()
		mp.passes[pkg] = pass
	}
	return mp
}

// psViol is one deferred violation: recorded while summarizing a
// function, reported only if the function turns out to be reachable.
type psViol struct {
	pos token.Pos
	msg string
}

// psFunc is one function body in the analyzed set.
type psFunc struct {
	pkg  *Package
	pass *Pass
	decl *ast.FuncDecl
	obj  *types.Func

	parroot  bool
	coldpath bool
	noalloc  bool // legacy directive; redundant if reachable

	callees []*psFunc
	viols   []psViol

	reachable bool
	coldUsed  bool // a reachable caller targets this coldpath function
}

func (f *psFunc) violf(pos token.Pos, format string, args ...interface{}) {
	f.viols = append(f.viols, psViol{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// parsafeGraph is the module-wide call graph.
type parsafeGraph struct {
	mp    *ModulePass
	funcs []*psFunc // deterministic (package, file, decl) order
	index map[*types.Func]*psFunc
	// concrete holds every non-interface named type in the analyzed
	// packages, as both T and *T, for class-hierarchy devirtualization
	// of interface calls.
	concrete []types.Type
}

func buildParsafe(mp *ModulePass) *parsafeGraph {
	g := &parsafeGraph{mp: mp, index: make(map[*types.Func]*psFunc)}
	for _, pkg := range mp.Pkgs {
		pass := mp.Pass(pkg)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				f := &psFunc{
					pkg:      pkg,
					pass:     pass,
					decl:     fd,
					obj:      obj,
					parroot:  hasDirective(fd.Doc, "parroot"),
					coldpath: hasDirective(fd.Doc, "coldpath"),
					noalloc:  hasDirective(fd.Doc, "noalloc"),
				}
				g.funcs = append(g.funcs, f)
				if obj != nil {
					g.index[obj] = f
				}
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			t := tn.Type()
			if types.IsInterface(t) {
				continue
			}
			g.concrete = append(g.concrete, t, types.NewPointer(t))
		}
	}
	for _, f := range g.funcs {
		g.summarize(f)
	}
	return g
}

// summarize records one function's call edges and deferred violations.
func (g *parsafeGraph) summarize(f *psFunc) {
	info := f.pass.TypesInfo

	// Allocation detection: the noalloc walker with its findings
	// redirected into this function's deferred-violation list.
	w := &noallocWalker{pass: f.pass, sink: f.violf}
	if f.obj != nil {
		w.sig, _ = f.obj.Type().(*types.Signature)
	}
	w.walk(f.decl.Body)

	ast.Inspect(f.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			f.violf(n.Pos(), "channel send in parroot-reachable code")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				f.violf(n.Pos(), "channel receive in parroot-reachable code")
			}
		case *ast.SelectStmt:
			f.violf(n.Pos(), "select statement in parroot-reachable code")
		case *ast.RangeStmt:
			if t := typeOfExpr(info, n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					f.violf(n.Pos(), "range over channel in parroot-reachable code")
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				g.checkPkgVarWrite(f, lhs)
			}
		case *ast.IncDecStmt:
			g.checkPkgVarWrite(f, n.X)
		case *ast.CallExpr:
			g.checkCall(f, n)
		}
		return true
	})
}

// checkPkgVarWrite flags assignments whose destination chain is rooted
// in (or passes through) a package-level variable: workers share those,
// so any write is a race. Writes through locally held pointers are out
// of reach of this syntactic check; chunkown and the race detector
// cover that residue — see DESIGN.md.
func (g *parsafeGraph) checkPkgVarWrite(f *psFunc, lhs ast.Expr) {
	info := f.pass.TypesInfo
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			if g.isPkgVar(info, e.Sel) {
				f.violf(lhs.Pos(), "write to package-level variable %s in parroot-reachable code", e.Sel.Name)
				return
			}
			lhs = e.X
		case *ast.Ident:
			if g.isPkgVar(info, e) {
				f.violf(lhs.Pos(), "write to package-level variable %s in parroot-reachable code", e.Name)
			}
			return
		default:
			return // *p, f(x).field, ... — not resolvable syntactically
		}
	}
}

func (g *parsafeGraph) isPkgVar(info *types.Info, id *ast.Ident) bool {
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// checkCall classifies one call site: static edge into the analyzed
// set, devirtualized interface call, allowlisted external, or
// violation.
func (g *parsafeGraph) checkCall(f *psFunc, call *ast.CallExpr) {
	info := f.pass.TypesInfo
	fun := ast.Unparen(call.Fun)
	switch fn := fun.(type) {
	case *ast.Ident:
		switch o := info.Uses[fn].(type) {
		case *types.Func:
			g.addCallee(f, call, o)
		case *types.Var:
			f.violf(call.Pos(), "call through func value %s: concrete target unknown to parsafe", fn.Name)
		}
		// Builtins, conversions: safe or covered by the alloc walker.
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				m, _ := sel.Obj().(*types.Func)
				if m == nil {
					return
				}
				if types.IsInterface(sel.Recv()) {
					g.addInterfaceCallees(f, call, sel.Recv(), m)
				} else {
					g.addCallee(f, call, m)
				}
			case types.MethodExpr:
				if m, ok := sel.Obj().(*types.Func); ok {
					g.addCallee(f, call, m)
				}
			case types.FieldVal:
				f.violf(call.Pos(), "call through func-typed field %s: concrete target unknown to parsafe", fn.Sel.Name)
			}
			return
		}
		switch o := info.Uses[fn.Sel].(type) {
		case *types.Func:
			g.addCallee(f, call, o)
		case *types.Var:
			f.violf(call.Pos(), "call through func value %s: concrete target unknown to parsafe", fn.Sel.Name)
		}
	case *ast.FuncLit:
		// Immediately invoked; its body is walked as part of this
		// function.
	default:
		if tv, ok := info.Types[fun]; ok && tv.IsType() {
			return // conversion
		}
		f.violf(call.Pos(), "call through computed func value: concrete target unknown to parsafe")
	}
}

// addCallee records a static edge, or a violation if the target's body
// is outside the analyzed set and not allowlisted.
func (g *parsafeGraph) addCallee(f *psFunc, call *ast.CallExpr, m *types.Func) {
	m = m.Origin()
	if t, ok := g.index[m]; ok {
		f.callees = append(f.callees, t)
		return
	}
	pkg := m.Pkg()
	if pkg == nil {
		return // universe-scope (error.Error on a concrete type never lands here)
	}
	path := pkg.Path()
	if parsafeExternal[path] {
		return
	}
	if path == "sync" {
		f.violf(call.Pos(), "sync.%s in parroot-reachable code (only the pool's own WaitGroup handoff may be waived)", m.Name())
		return
	}
	f.violf(call.Pos(), "call to %s.%s: body outside the parsafe-analyzed set", path, m.Name())
}

// addInterfaceCallees devirtualizes an interface method call over every
// concrete type in the analyzed packages (class-hierarchy analysis).
// Each implementation becomes a call edge; an implementation without an
// analyzed body, or an interface with no implementation at all, is a
// violation — the contract requires resolvable targets.
func (g *parsafeGraph) addInterfaceCallees(f *psFunc, call *ast.CallExpr, recv types.Type, m *types.Func) {
	iface, _ := recv.Underlying().(*types.Interface)
	if iface == nil {
		f.violf(call.Pos(), "interface call %s: receiver type unresolved", m.Name())
		return
	}
	seen := map[*types.Func]bool{}
	found := false
	for _, t := range g.concrete {
		if !types.Implements(t, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(t, true, m.Pkg(), m.Name())
		mf, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		mf = mf.Origin()
		if sig, ok := mf.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			// t embeds the interface and promotes its abstract method
			// (Breakable embedding Joint, say). The dynamic target is
			// whatever implementation fills the embedded field — and every
			// concrete implementor is its own candidate in this loop, so
			// the edge set is already covered without this abstract stop.
			continue
		}
		if seen[mf] {
			continue
		}
		seen[mf] = true
		found = true
		if tf, ok := g.index[mf]; ok {
			f.callees = append(f.callees, tf)
		} else {
			f.violf(call.Pos(), "interface call %s devirtualizes to %s: body outside the analyzed set", m.Name(), mf.FullName())
		}
	}
	if !found {
		f.violf(call.Pos(), "interface call %s has no implementation in the analyzed set", m.Name())
	}
}

// propagate runs BFS reachability from the parroot set, cutting the
// graph at coldpath functions (and remembering which coldpath
// directives were actually load-bearing).
func (g *parsafeGraph) propagate() {
	var queue []*psFunc
	for _, f := range g.funcs {
		if f.parroot {
			f.reachable = true
			queue = append(queue, f)
		}
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, t := range f.callees {
			if t.coldpath {
				t.coldUsed = true
				continue
			}
			if !t.reachable {
				t.reachable = true
				queue = append(queue, t)
			}
		}
	}
}

// report emits the deferred violations of reachable functions, plus the
// directive-hygiene findings, through each owning package's pass (so
// allow(parsafe) waivers and unused-waiver detection apply).
func (g *parsafeGraph) report() {
	for _, f := range g.funcs {
		name := f.decl.Name.Name
		if f.parroot && f.coldpath {
			f.pass.Reportf(f.decl.Name.Pos(), "parsafe",
				"%s is annotated both parroot and coldpath; pick one", name)
		}
		if f.reachable {
			for _, v := range f.viols {
				f.pass.Reportf(v.pos, "parsafe", "%s", v.msg)
			}
			if f.noalloc {
				f.pass.Reportf(f.decl.Name.Pos(), "parsafe",
					"redundant //paraxlint:noalloc on %s: parroot-reachable functions are checked transitively by parsafe", name)
			}
		} else if f.coldpath && !f.coldUsed {
			f.pass.Reportf(f.decl.Name.Pos(), "parsafe",
				"stale //paraxlint:coldpath on %s: no parroot-reachable caller", name)
		}
	}
}

func typeOfExpr(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
