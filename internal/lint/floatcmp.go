package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// FloatCmp flags exact equality between floating-point expressions:
// `==` and `!=` where either operand has float type. Exact comparison
// against literal zero is permitted — testing "was this ever touched"
// (warm-start impulses, joint loads, zero-length vectors guarding a
// divide) is exact by construction. Tolerance helpers (an epsilon-based
// comparison is the one place exact float compares belong) are exempted
// wholesale by annotating the function `//paraxlint:tolerance`;
// individual sites are waived with //paraxlint:allow(floatcmp).
var FloatCmp = &Analyzer{
	Name:       "floatcmp",
	Doc:        "flags ==/!= between floating-point expressions (except against literal zero)",
	Categories: []string{"floatcmp"},
	Run:        runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || hasDirective(fd.Doc, "tolerance") {
				continue
			}
			checkFloatCmps(pass, fd.Body)
		}
	}
	return nil
}

func checkFloatCmps(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if !isFloat(pass.TypesInfo.Types[be.X].Type) && !isFloat(pass.TypesInfo.Types[be.Y].Type) {
			return true
		}
		if isZeroConst(pass, be.X) || isZeroConst(pass, be.Y) {
			return true
		}
		pass.Reportf(be.OpPos, "floatcmp",
			"exact %s between floating-point values; use a tolerance helper or compare against literal zero", be.Op)
		return true
	})
}

// isZeroConst reports whether the expression is a compile-time constant
// equal to zero.
func isZeroConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}
