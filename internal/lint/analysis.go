// Package lint is paraxlint: a suite of static analyzers that enforce
// the repository's hot-path and determinism invariants at compile time
// instead of benchmark time.
//
// The suite mirrors the golang.org/x/tools/go/analysis API (Analyzer,
// Pass, Diagnostic) on the standard library alone — go/ast, go/types and
// export data served by `go list -export` — because this module is
// dependency-free by policy. Three analyzers ship today:
//
//   - noalloc: functions annotated `//paraxlint:noalloc` must contain no
//     allocating constructs (see noalloc.go).
//   - determinism: flags order-dependent map iteration, global math/rand
//     state and wall-clock reads in the engine, model and harness
//     packages (see determinism.go).
//   - floatcmp: flags exact ==/!= between floating-point expressions
//     (see floatcmp.go).
//
// Findings are suppressed, one source line at a time, with
// `//paraxlint:allow(<category>)` escape hatches; an allow comment that
// suppresses nothing is itself a finding, so waivers cannot rot.
package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. It deliberately mirrors
// golang.org/x/tools/go/analysis.Analyzer so the checks can migrate to
// the upstream framework wholesale if the dependency policy ever allows
// it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CI output.
	Name string
	// Doc is the one-paragraph description printed by `paraxlint -help`.
	Doc string
	// Categories lists the //paraxlint:allow(...) categories this
	// analyzer owns. An unused allow comment in an owned category is
	// reported by this analyzer.
	Categories []string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package and a sink
// for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	src    map[string][]byte // filename -> source
	diags  []Diagnostic
	allows []*allowComment
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Category string // allow-comment category that can suppress it
	Message  string
	Analyzer string
	// Position is Pos resolved against the owning package's FileSet.
	// Module-spanning analyzers produce diagnostics from several
	// FileSets, so raw Pos values are not comparable across packages;
	// Position is, and is what the CLI sorts and prints.
	Position token.Position
}

// Reportf records a finding unless an allow comment for its category
// covers the line it is anchored to.
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...interface{}) {
	line := p.Fset.Position(pos).Line
	file := p.Fset.Position(pos).Filename
	for _, a := range p.allows {
		if a.category == category && a.file == file && a.covers(line) {
			a.used = true
			return
		}
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Category: category,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// allowComment is one parsed //paraxlint:allow(category) escape hatch.
// It covers findings on its own line; a comment alone on a line covers
// the following line instead, so waivers can sit above long expressions.
type allowComment struct {
	pos        token.Pos
	file       string
	line       int
	standalone bool // comment is the only thing on its line
	category   string
	used       bool
}

func (a *allowComment) covers(line int) bool {
	if a.standalone {
		return line == a.line+1
	}
	return line == a.line
}

const allowPrefix = "//paraxlint:allow("

// collectAllows parses every //paraxlint:allow(...) comment in the
// pass's files, keeping only categories the analyzer owns.
func (p *Pass) collectAllows() {
	owned := make(map[string]bool, len(p.Analyzer.Categories))
	for _, c := range p.Analyzer.Categories {
		owned[c] = true
	}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Trailing text after the closing paren is the waiver's
				// justification: //paraxlint:allow(alloc) lazy one-time cache
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				close := strings.IndexByte(rest, ')')
				if close < 0 {
					continue
				}
				cat := rest[:close]
				if !owned[cat] {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				p.allows = append(p.allows, &allowComment{
					pos:        c.Pos(),
					file:       pos.Filename,
					line:       pos.Line,
					standalone: p.standalone(pos),
					category:   cat,
				})
			}
		}
	}
}

// standalone reports whether only whitespace precedes the comment on its
// source line (the comment sits on a line of its own).
func (p *Pass) standalone(pos token.Position) bool {
	src, ok := p.src[pos.Filename]
	if !ok {
		return false
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return false
	}
	return len(strings.TrimSpace(string(src[start:pos.Offset]))) == 0
}

// finish reports any allow comment (in a category the analyzer owns)
// that suppressed nothing: stale waivers are findings too.
func (p *Pass) finish() {
	for _, a := range p.allows {
		if !a.used {
			p.diags = append(p.diags, Diagnostic{
				Pos:      a.pos,
				Category: a.category,
				Message:  fmt.Sprintf("unused //paraxlint:allow(%s) comment suppresses nothing", a.category),
				Analyzer: p.Analyzer.Name,
			})
		}
	}
}

// RunAnalyzer applies one analyzer to one loaded package and returns its
// surviving diagnostics sorted by position.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		src:       pkg.Src,
	}
	pass.collectAllows()
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
	}
	pass.finish()
	for i := range pass.diags {
		pass.diags[i].Position = pkg.Fset.Position(pass.diags[i].Pos)
	}
	SortDiagnostics(pass.diags)
	return pass.diags, nil
}

// A ModuleAnalyzer is a check that needs the whole module at once — a
// cross-package call graph, facts flowing from one package's functions
// to another's call sites — rather than one package at a time.
type ModuleAnalyzer struct {
	Name string
	Doc  string
	// Categories lists the //paraxlint:allow(...) categories this
	// analyzer owns, matched per package exactly as for Analyzer.
	Categories []string
	Run        func(*ModulePass) error
}

// A ModulePass holds one type-checked package set and a per-package
// diagnostic sink. Each package keeps its own FileSet (the loader
// type-checks them independently), so diagnostics must be reported
// through the pass belonging to the package that owns the position.
type ModulePass struct {
	Analyzer *ModuleAnalyzer
	Pkgs     []*Package

	passes map[*Package]*Pass
}

// Pass returns the diagnostic sink for one of the module's packages.
// Allow-comment matching and unused-waiver reporting work exactly as in
// single-package passes.
func (mp *ModulePass) Pass(pkg *Package) *Pass { return mp.passes[pkg] }

// RunModule applies one module analyzer to a loaded package set and
// returns the surviving diagnostics sorted by (file, line, column,
// analyzer). Allow comments are collected for every package up front so
// an unused waiver anywhere in the set is a finding.
func RunModule(a *ModuleAnalyzer, pkgs []*Package) ([]Diagnostic, error) {
	mp := newModulePass(a, pkgs)
	if err := a.Run(mp); err != nil {
		return nil, fmt.Errorf("%s: %v", a.Name, err)
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		pass := mp.passes[pkg]
		pass.finish()
		for i := range pass.diags {
			pass.diags[i].Position = pkg.Fset.Position(pass.diags[i].Pos)
		}
		diags = append(diags, pass.diags...)
	}
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders findings by (file, line, column, analyzer) —
// the stable order the CLI prints, byte-identical across runs and
// thread counts so the findings file can be diffed as a CI artifact.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := &ds[i], &ds[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// All is the paraxlint suite in the order the multichecker runs it.
var All = []*Analyzer{NoAlloc, Determinism, FloatCmp, ChunkOwn}

// AllModule is the module-spanning suite, run after the per-package
// analyzers.
var AllModule = []*ModuleAnalyzer{ParSafe}

// exprText renders an expression back to source text, for structural
// matching of destinations (append-in-place, sort-after-range).
func exprText(pass *Pass, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, pass.Fset, e)
	return buf.String()
}

// hasDirective reports whether a function's doc comment carries the
// given //paraxlint: directive (e.g. "noalloc", "parroot"). Text after
// the directive name is a justification and is ignored:
// //paraxlint:coldpath detonation path, fires on events only.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	want := "//paraxlint:" + directive
	for _, c := range doc.List {
		t := strings.TrimSpace(c.Text)
		if t == want || strings.HasPrefix(t, want+" ") {
			return true
		}
	}
	return false
}
