package lint_test

import (
	"path/filepath"
	"testing"

	"github.com/parallax-arch/parallax/internal/lint"
	"github.com/parallax-arch/parallax/internal/lint/linttest"
)

func TestNoAlloc(t *testing.T) {
	linttest.Run(t, lint.NoAlloc, filepath.Join("testdata", "noalloc"))
}

func TestDeterminism(t *testing.T) {
	linttest.Run(t, lint.Determinism, filepath.Join("testdata", "determinism"))
}

func TestFloatCmp(t *testing.T) {
	linttest.Run(t, lint.FloatCmp, filepath.Join("testdata", "floatcmp"))
}

// TestAllowSemantics pins the escape-hatch contract: an allow comment
// suppresses findings on exactly one line, and an unused allow is itself
// a finding (see testdata/allow).
func TestAllowSemantics(t *testing.T) {
	linttest.Run(t, lint.NoAlloc, filepath.Join("testdata", "allow"))
}

// TestTreeClean runs the full suite over the whole module, making
// `go test` subsume `go run ./cmd/paraxlint ./...`: a deliberate
// allocation in an annotated hot-path function, or a fresh unsorted
// map-range print, fails this test.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	pkgs, err := lint.Load("github.com/parallax-arch/parallax/...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, pkg := range pkgs {
		for _, a := range lint.All {
			diags, err := lint.RunAnalyzer(a, pkg)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				t.Errorf("%s: %s (%s)", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
			}
		}
	}
}
