package lint_test

import (
	"go/ast"
	"path/filepath"
	"strings"
	"testing"

	"github.com/parallax-arch/parallax/internal/lint"
	"github.com/parallax-arch/parallax/internal/lint/linttest"
)

func TestNoAlloc(t *testing.T) {
	linttest.Run(t, lint.NoAlloc, filepath.Join("testdata", "noalloc"))
}

func TestDeterminism(t *testing.T) {
	linttest.Run(t, lint.Determinism, filepath.Join("testdata", "determinism"))
}

func TestFloatCmp(t *testing.T) {
	linttest.Run(t, lint.FloatCmp, filepath.Join("testdata", "floatcmp"))
}

func TestChunkOwn(t *testing.T) {
	linttest.Run(t, lint.ChunkOwn, filepath.Join("testdata", "chunkown"))
}

// TestParSafe drives the module-spanning analyzer over a two-package
// fixture. The dep subpackage chain (no directive on any frame) is the
// load-bearing case: the alloc finding three frames below the root
// exists because of transitive propagation alone, which is exactly the
// property that used to depend on hand-placed //paraxlint:noalloc
// directives — deleting a directive can no longer hide an allocation.
func TestParSafe(t *testing.T) {
	linttest.RunModule(t, lint.ParSafe, filepath.Join("testdata", "parsafe"))
}

// TestAllowSemantics pins the escape-hatch contract: an allow comment
// suppresses findings on exactly one line, and an unused allow is itself
// a finding (see testdata/allow).
func TestAllowSemantics(t *testing.T) {
	linttest.Run(t, lint.NoAlloc, filepath.Join("testdata", "allow"))
}

// loadRepo loads the whole module with in-module dependencies from
// source, shared by the tree-wide tests below.
func loadRepo(t *testing.T) []*lint.Package {
	t.Helper()
	pkgs, err := lint.LoadModule("github.com/parallax-arch/parallax/...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	return pkgs
}

// TestTreeClean runs the full suite — per-package and module-spanning —
// over the whole module, making `go test` subsume
// `go run ./cmd/paraxlint ./...`: a deliberate allocation in a worker's
// call graph, a package-variable write in a parallel phase, or a fresh
// unsorted map-range print fails this test.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	pkgs := loadRepo(t)
	for _, pkg := range pkgs {
		if pkg.DepOnly {
			continue
		}
		for _, a := range lint.All {
			diags, err := lint.RunAnalyzer(a, pkg)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				t.Errorf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
			}
		}
	}
	for _, a := range lint.AllModule {
		diags, err := lint.RunModule(a, pkgs)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
		}
	}
}

// TestParsafeReachable pins the shape of the real call graph: the
// parroot set must transitively reach the engine's deep hot-path
// callees — the solver iteration, narrow-phase dispatch, body
// integration and the tracer's span recording. A loader or
// devirtualization regression that silently disconnects the graph
// (leaving nothing checked) fails here rather than passing vacuously.
func TestParsafeReachable(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	names := lint.ParsafeReachable(loadRepo(t))
	if len(names) < 50 {
		t.Fatalf("parsafe reachable set has %d functions; expected a deep graph (>= 50)", len(names))
	}
	reach := make(map[string]bool, len(names))
	for _, n := range names {
		reach[n] = true
	}
	const mod = "github.com/parallax-arch/parallax/internal/"
	for _, want := range []string{
		"(*" + mod + "phys/solver.Solver).Solve",
		"(*" + mod + "phys/solver.Workspace).grow",
		"(*" + mod + "phys/narrowphase.Scratch).Collide",
		"(*" + mod + "phys/body.Body).IntegrateVelocity",
		"(*" + mod + "phys/body.Body).IntegratePosition",
		"(*" + mod + "phys/cloth.Cloth).Relax",
		"(*" + mod + "obs.Lane).Begin",
		"(*" + mod + "obs.Lane).End",
	} {
		if !reach[want] {
			t.Errorf("parsafe reachable set is missing %s", want)
		}
	}
}

// TestDirectiveDrift walks every //paraxlint: comment in the module and
// verifies some analyzer actually consumes it: allow categories must be
// owned by an analyzer in the suite, and directive names must be known
// AND sit in a function's doc comment (a directive floating elsewhere
// is silently ignored — which is drift, not enforcement).
func TestDirectiveDrift(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	ownedCats := map[string]bool{}
	for _, a := range lint.All {
		for _, c := range a.Categories {
			ownedCats[c] = true
		}
	}
	for _, a := range lint.AllModule {
		for _, c := range a.Categories {
			ownedCats[c] = true
		}
	}
	// noalloc is read by NoAlloc and ParSafe, parroot/coldpath by
	// ParSafe, tolerance by FloatCmp. A new directive must be added here
	// in the same change that adds its consumer.
	knownDirectives := map[string]bool{
		"noalloc": true, "parroot": true, "coldpath": true, "tolerance": true,
	}

	for _, pkg := range loadRepo(t) {
		for _, f := range pkg.Files {
			// Comments that live in a FuncDecl's doc are consumed by the
			// directive scanners.
			inDoc := map[*ast.Comment]bool{}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					inDoc[c] = true
				}
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(strings.TrimSpace(c.Text), "//paraxlint:")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					if cat, ok := strings.CutPrefix(rest, "allow("); ok {
						close := strings.IndexByte(cat, ')')
						if close < 0 {
							t.Errorf("%s: malformed allow comment %q", pos, c.Text)
							continue
						}
						if !ownedCats[cat[:close]] {
							t.Errorf("%s: allow category %q is owned by no analyzer", pos, cat[:close])
						}
						continue
					}
					name, _, _ := strings.Cut(rest, " ")
					if !knownDirectives[name] {
						t.Errorf("%s: unknown directive //paraxlint:%s", pos, name)
						continue
					}
					if !inDoc[c] {
						t.Errorf("%s: directive //paraxlint:%s is not in a function's doc comment and is silently ignored", pos, name)
					}
				}
			}
		}
	}
}
