package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc enforces the scratch-arena contract from DESIGN.md: a function
// annotated `//paraxlint:noalloc` (World.Step and its steady-state
// callees) must contain no construct that can heap-allocate.
//
// Flagged constructs:
//   - make and new
//   - append whose result is neither assigned back to the same
//     expression as its first argument nor returned directly
//     (x = append(x, ...) and `return append(dst, ...)` are the
//     amortized grow-in-place patterns and stay allocation-free in
//     steady state; append into a fresh slice does not)
//   - slice, map and &-composite literals; function literals and method
//     values (both can create closures)
//   - interface boxing of non-pointer-shaped values (assignment, call
//     argument, return, conversion, or composite-literal field of
//     interface type)
//   - any call into package fmt; string concatenation; string<->[]byte
//     and string<->[]rune conversions
//   - calls passing a non-empty variadic argument list (the ... slice)
//   - go statements (every goroutine start allocates a stack)
//
// One-time warm-up allocations (lazy caches, capacity growth, rare
// debug/detail paths) are waived line by line with
// `//paraxlint:allow(alloc)`.
var NoAlloc = &Analyzer{
	Name:       "noalloc",
	Doc:        "functions annotated //paraxlint:noalloc must not contain allocating constructs",
	Categories: []string{"alloc"},
	Run:        runNoAlloc,
}

func runNoAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "noalloc") {
				continue
			}
			w := &noallocWalker{pass: pass}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				w.sig = obj.Type().(*types.Signature)
			}
			w.walk(fd.Body)
		}
	}
	return nil
}

type noallocWalker struct {
	pass *Pass
	sig  *types.Signature // enclosing function, for return-boxing checks
	// sink, when set, receives findings instead of pass.Reportf with
	// category "alloc". parsafe installs one so the same allocation
	// detection reports under its own category for parroot-reachable
	// functions that carry no //paraxlint:noalloc directive.
	sink func(pos token.Pos, format string, args ...interface{})

	calledSels map[*ast.SelectorExpr]bool // selector is the Fun of a call
	okAppends  map[*ast.CallExpr]bool     // append assigned back to arg 0
}

func (w *noallocWalker) walk(body *ast.BlockStmt) {
	w.calledSels = map[*ast.SelectorExpr]bool{}
	w.okAppends = map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			w.checkAssign(n)
		case *ast.ValueSpec:
			w.checkValueSpec(n)
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				w.calledSels[sel] = true
			}
			w.checkCall(n)
		case *ast.SelectorExpr:
			w.checkMethodValue(n)
		case *ast.CompositeLit:
			w.checkCompositeLit(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					w.report(n.Pos(), "&-composite literal allocates")
				}
			}
		case *ast.FuncLit:
			// A literal that captures no enclosing variables compiles to
			// a static closure and never allocates.
			if w.captures(n) {
				w.report(n.Pos(), "function literal captures variables and allocates a closure")
			}
			return false // its body is not part of this function's hot path
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(w.typeOf(n)) {
				w.report(n.Pos(), "string concatenation allocates")
			}
		case *ast.GoStmt:
			w.report(n.Pos(), "go statement allocates a goroutine stack")
		case *ast.ReturnStmt:
			// `return append(dst, ...)` hands the possibly-regrown slice
			// back to the caller, who reassigns it — the same amortized
			// pattern as x = append(x, ...).
			for _, r := range n.Results {
				if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && w.isBuiltin(call, "append") {
					w.okAppends[call] = true
				}
			}
			w.checkReturn(n)
		}
		return true
	})
}

func (w *noallocWalker) report(pos token.Pos, format string, args ...interface{}) {
	if w.sink != nil {
		w.sink(pos, format, args...)
		return
	}
	w.pass.Reportf(pos, "alloc", format, args...)
}

func (w *noallocWalker) typeOf(e ast.Expr) types.Type {
	if tv, ok := w.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// exprString renders an expression for textual destination matching
// (x = append(x, ...)).
func (w *noallocWalker) exprString(e ast.Expr) string {
	return exprText(w.pass, e)
}

// checkAssign blesses append-in-place destinations and flags interface
// boxing through plain `=` assignments.
func (w *noallocWalker) checkAssign(n *ast.AssignStmt) {
	if len(n.Lhs) == len(n.Rhs) {
		for i, rhs := range n.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && w.isBuiltin(call, "append") {
				if len(call.Args) > 0 && w.exprString(n.Lhs[i]) == w.exprString(call.Args[0]) {
					w.okAppends[call] = true
				}
			}
			if n.Tok == token.ASSIGN {
				lt := w.typeOf(n.Lhs[i])
				if lt != nil && types.IsInterface(lt) && w.boxes(rhs) {
					w.report(rhs.Pos(), "assignment boxes %s into interface %s", w.typeOf(rhs), lt)
				}
			}
		}
	}
}

// checkValueSpec flags `var x I = concrete` boxing.
func (w *noallocWalker) checkValueSpec(n *ast.ValueSpec) {
	if n.Type == nil {
		return
	}
	dt := w.typeOf(n.Type)
	if dt == nil || !types.IsInterface(dt) {
		return
	}
	for _, v := range n.Values {
		if w.boxes(v) {
			w.report(v.Pos(), "declaration boxes %s into interface %s", w.typeOf(v), dt)
		}
	}
}

func (w *noallocWalker) checkReturn(n *ast.ReturnStmt) {
	if w.sig == nil || w.sig.Results() == nil || len(n.Results) != w.sig.Results().Len() {
		return
	}
	for i, r := range n.Results {
		if types.IsInterface(w.sig.Results().At(i).Type()) && w.boxes(r) {
			w.report(r.Pos(), "return boxes %s into interface %s",
				w.typeOf(r), w.sig.Results().At(i).Type())
		}
	}
}

func (w *noallocWalker) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = w.pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

func (w *noallocWalker) checkCall(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isb := w.pass.TypesInfo.Uses[id].(*types.Builtin); isb {
			switch id.Name {
			case "make":
				w.report(call.Pos(), "call to make allocates")
			case "new":
				w.report(call.Pos(), "call to new allocates")
			case "append":
				if !w.okAppends[call] {
					w.report(call.Pos(), "append may allocate a new backing array (assign the result back to its first argument, or waive)")
				}
			}
			return
		}
	}

	tv, ok := w.pass.TypesInfo.Types[fun]
	if !ok {
		return
	}

	// Conversions: T(x).
	if tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		dst, src := tv.Type, w.typeOf(call.Args[0])
		if src == nil {
			return
		}
		switch {
		case isString(dst) && isByteOrRuneSlice(src):
			w.report(call.Pos(), "conversion %s -> string allocates", src)
		case isByteOrRuneSlice(dst) && isString(src):
			w.report(call.Pos(), "conversion string -> %s allocates", dst)
		case types.IsInterface(dst) && w.boxes(call.Args[0]):
			w.report(call.Pos(), "conversion boxes %s into interface %s", src, dst)
		}
		return
	}

	// Calls into package fmt always allocate (formatting state, boxing).
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if obj := w.pass.TypesInfo.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil &&
			obj.Pkg().Path() == "fmt" {
			w.report(call.Pos(), "call to fmt.%s allocates", sel.Sel.Name)
			return
		}
	}

	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}

	// Non-empty variadic argument lists allocate the ... slice unless a
	// prepared slice is spread with `arg...`.
	if sig.Variadic() && call.Ellipsis == token.NoPos &&
		len(call.Args) >= sig.Params().Len() {
		w.report(call.Pos(), "variadic call allocates its argument slice")
	}

	// Interface boxing at argument positions.
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis != token.NoPos {
				continue // spread: slice passed through, no per-element boxing
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && w.boxes(arg) {
			w.report(arg.Pos(), "argument boxes %s into interface %s", w.typeOf(arg), pt)
		}
	}
}

// captures reports whether a function literal references any variable
// declared outside itself but inside some enclosing function (captured
// free variables force a heap-allocated closure; package-level variables
// are addressed statically and do not).
func (w *noallocWalker) captures(fl *ast.FuncLit) bool {
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := w.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == types.Universe || v.Parent() == w.pass.Pkg.Scope() {
			return true // package-level or predeclared
		}
		if v.Pos() < fl.Pos() || v.Pos() > fl.End() {
			found = true
		}
		return true
	})
	return found
}

// checkMethodValue flags `x.M` used as a value: binding the receiver
// allocates a closure.
func (w *noallocWalker) checkMethodValue(sel *ast.SelectorExpr) {
	if w.calledSels[sel] {
		return
	}
	if s, ok := w.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
		w.report(sel.Pos(), "method value %s allocates a bound-method closure", sel.Sel.Name)
	}
}

func (w *noallocWalker) checkCompositeLit(lit *ast.CompositeLit) {
	t := w.typeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		w.report(lit.Pos(), "slice literal allocates")
		return
	case *types.Map:
		w.report(lit.Pos(), "map literal allocates")
		return
	}
	// Struct literal values are fine, but interface-typed fields box.
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		var ft types.Type
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
			if id, ok := kv.Key.(*ast.Ident); ok {
				for j := 0; j < st.NumFields(); j++ {
					if st.Field(j).Name() == id.Name {
						ft = st.Field(j).Type()
						break
					}
				}
			}
		} else if i < st.NumFields() {
			ft = st.Field(i).Type()
		}
		if ft != nil && types.IsInterface(ft) && w.boxes(val) {
			w.report(val.Pos(), "composite literal boxes %s into interface field", w.typeOf(val))
		}
	}
}

// boxes reports whether storing the expression into an interface
// allocates: its type is concrete and not pointer-shaped.
func (w *noallocWalker) boxes(e ast.Expr) bool {
	tv, ok := w.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	if types.IsInterface(t) {
		return false // interface-to-interface carries the existing word
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: fits the interface data word
	case *types.Basic:
		return u.Kind() != types.UnsafePointer
	}
	return true
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
