// Package linttest is a golden-file test harness for paraxlint
// analyzers, modeled on golang.org/x/tools/go/analysis/analysistest:
// fixture packages under testdata annotate the lines where diagnostics
// are expected with trailing `// want "regexp"` comments, and Run
// reports both missing and unexpected diagnostics.
//
// A fixture directory is one package (its *.go files, which may be
// several) plus, optionally, one sub-package per subdirectory for
// multi-package fixtures. Subdirectories are type-checked first, in
// name order, and are importable from the root files as
// "paraxlint.test/<dir>/<sub>" — which is how the parsafe fixtures
// exercise cross-package call-graph propagation.
package linttest

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"

	"github.com/parallax-arch/parallax/internal/lint"
)

// wantBlockRe finds a `want "..." "..."` expectation list anywhere in a
// comment (so a want can also trail a //paraxlint:allow comment under
// test); wantRe then extracts the individual quoted strings.
var (
	wantBlockRe = regexp.MustCompile(`want((?:\s+"(?:[^"\\]|\\.)*")+)`)
	wantRe      = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	met  bool
}

// Load type-checks a fixture directory — subdirectory packages first,
// then the root package, all sharing one FileSet — and returns the
// packages in that order (root last).
func Load(t *testing.T, dir string) []*lint.Package {
	t.Helper()
	fset := token.NewFileSet()
	deps := map[string]*types.Package{}
	base := "paraxlint.test/" + filepath.Base(dir)
	var pkgs []*lint.Package

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir %s: %v", dir, err)
	}
	var subs []string
	for _, e := range entries {
		if e.IsDir() {
			subs = append(subs, e.Name())
		}
	}
	sort.Strings(subs)
	for _, s := range subs {
		files, err := filepath.Glob(filepath.Join(dir, s, "*.go"))
		if err != nil || len(files) == 0 {
			t.Fatalf("no fixture files in %s/%s: %v", dir, s, err)
		}
		p, err := lint.TypeCheckWith(fset, base+"/"+s, files, deps)
		if err != nil {
			t.Fatalf("type-checking fixture package %s: %v", s, err)
		}
		deps[p.Path] = p.Types
		pkgs = append(pkgs, p)
	}

	rootFiles, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || (len(rootFiles) == 0 && len(pkgs) == 0) {
		t.Fatalf("no fixture files in %s: %v", dir, err)
	}
	if len(rootFiles) > 0 {
		p, err := lint.TypeCheckWith(fset, base, rootFiles, deps)
		if err != nil {
			t.Fatalf("type-checking fixtures: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs
}

// Run type-checks the fixture in dir, applies the analyzer to each of
// its packages, and matches the diagnostics against the fixture's
// `// want` comments: each diagnostic must match a want on its line,
// and every want must be matched by some diagnostic.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	pkgs := Load(t, dir)
	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		ds, err := lint.RunAnalyzer(a, pkg)
		if err != nil {
			t.Fatalf("running %s: %v", a.Name, err)
		}
		diags = append(diags, ds...)
	}
	match(t, pkgs, diags)
}

// RunModule is Run for a module-spanning analyzer: the whole fixture
// package set is handed to the analyzer at once.
func RunModule(t *testing.T, a *lint.ModuleAnalyzer, dir string) {
	t.Helper()
	pkgs := Load(t, dir)
	diags, err := lint.RunModule(a, pkgs)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	match(t, pkgs, diags)
}

// match checks diagnostics against the want comments of every fixture
// package.
func match(t *testing.T, pkgs []*lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					block := wantBlockRe.FindStringSubmatch(c.Text)
					if block == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, m := range wantRe.FindAllStringSubmatch(block[1], -1) {
						unquoted, err := strconv.Unquote(`"` + m[1] + `"`)
						if err != nil {
							t.Fatalf("%s: bad want string %q: %v", pos, m[1], err)
						}
						re, err := regexp.Compile(unquoted)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, unquoted, err)
						}
						wants = append(wants, &expectation{
							file: pos.Filename, line: pos.Line, re: re, text: unquoted,
						})
					}
				}
			}
		}
	}

	var unexpected []string
	for _, d := range diags {
		pos := d.Position
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			unexpected = append(unexpected, fmt.Sprintf("%s: unexpected diagnostic: %s", pos, d.Message))
		}
	}
	sort.Strings(unexpected)
	for _, u := range unexpected {
		t.Error(u)
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.text)
		}
	}
}
