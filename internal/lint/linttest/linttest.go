// Package linttest is a golden-file test harness for paraxlint
// analyzers, modeled on golang.org/x/tools/go/analysis/analysistest:
// fixture packages under testdata annotate the lines where diagnostics
// are expected with trailing `// want "regexp"` comments, and Run
// reports both missing and unexpected diagnostics.
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"

	"github.com/parallax-arch/parallax/internal/lint"
)

// wantBlockRe finds a `want "..." "..."` expectation list anywhere in a
// comment (so a want can also trail a //paraxlint:allow comment under
// test); wantRe then extracts the individual quoted strings.
var (
	wantBlockRe = regexp.MustCompile(`want((?:\s+"(?:[^"\\]|\\.)*")+)`)
	wantRe      = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	met  bool
}

// Run type-checks the fixture package in dir, applies the analyzer, and
// matches its diagnostics against the fixture's `// want` comments: each
// diagnostic must match a want on its line, and every want must be
// matched by some diagnostic.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files in %s: %v", dir, err)
	}
	pkg, err := lint.TypeCheck("paraxlint.test/"+filepath.Base(dir), files)
	if err != nil {
		t.Fatalf("type-checking fixtures: %v", err)
	}
	diags, err := lint.RunAnalyzer(a, pkg)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				block := wantBlockRe.FindStringSubmatch(c.Text)
				if block == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(block[1], -1) {
					unquoted, err := strconv.Unquote(`"` + m[1] + `"`)
					if err != nil {
						t.Fatalf("%s: bad want string %q: %v", pos, m[1], err)
					}
					re, err := regexp.Compile(unquoted)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, unquoted, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: pos.Line, re: re, text: unquoted,
					})
				}
			}
		}
	}

	var unexpected []string
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			unexpected = append(unexpected, fmt.Sprintf("%s: unexpected diagnostic: %s", pos, d.Message))
		}
	}
	sort.Strings(unexpected)
	for _, u := range unexpected {
		t.Error(u)
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.text)
		}
	}
}
