package exp

import (
	"fmt"
	"io"

	"github.com/parallax-arch/parallax/internal/arch/kernels"
	"github.com/parallax-arch/parallax/internal/arch/parallax"
	"github.com/parallax-arch/parallax/internal/phys/geom"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// l2Sweep is the shared-L2 sweep of Fig 2b.
var l2Sweep = []int{1, 2, 4, 8, 16, 32}

// dedicatedSweep is the per-phase dedicated-cache sweep of Figs 3-5a.
var dedicatedSweep = []int{1, 2, 4, 8, 16}

// Table3 prints each benchmark's modeled instructions per frame.
func (s *Suite) Table3(w io.Writer) {
	fmt.Fprintf(w, "%-12s %18s  %s\n", "Benchmark", "Instr/Frame", "Genre")
	for _, wl := range s.Workloads() {
		instr := wl.FrameInstr()
		genre := ""
		if b, ok := byBenchName(wl.Name); ok {
			genre = b.Genre
		}
		fmt.Fprintf(w, "%-12s %15.1f M  %s\n", wl.Name, instr.Total()/1e6, genre)
	}
}

func byBenchName(name string) (struct{ Genre string }, bool) {
	for _, b := range allBenchmarks() {
		if b.Name == name {
			return struct{ Genre string }{b.Genre}, true
		}
	}
	return struct{ Genre string }{}, false
}

// Table4 prints the benchmark composition stats.
func (s *Suite) Table4(w io.Writer) {
	fmt.Fprintf(w, "%-12s %9s %8s %7s %10s %8s %9s %13s %13s\n",
		"Benchmark", "Obj-Pairs", "Islands", "Cloths", "[vertices]",
		"Static", "Dynamic", "Prefractured", "StaticJoints")
	for _, wl := range s.Workloads() {
		var statics, dynamics, debris int
		for _, g := range wl.World.Geoms {
			switch {
			case g.Flags.Has(geom.FlagCloth) || g.Flags.Has(geom.FlagBlast):
			case g.Flags.Has(geom.FlagDebris):
				debris++
			case g.Flags.Has(geom.FlagStatic):
				statics++
			default:
				dynamics++
			}
		}
		verts := 0
		for _, c := range wl.World.Cloths {
			verts += c.NumVertices()
		}
		pairs, _, _ := wl.AvailableFGTasks()
		islands := 0
		for i := range wl.Frame.Steps {
			if n := len(wl.Frame.Steps[i].Islands); n > islands {
				islands = n
			}
		}
		fmt.Fprintf(w, "%-12s %9.0f %8d %7d %10d %8d %9d %13d %13d\n",
			wl.Name, pairs, islands, len(wl.World.Cloths), verts,
			statics, dynamics, debris, len(wl.World.Joints))
	}
}

// Fig2a prints the single-core 1MB-L2 frame-time breakdown per phase,
// the configuration that motivates the whole study (Mix at ~2.3 FPS).
func (s *Suite) Fig2a(w io.Writer) {
	wls := s.Workloads()
	rs := make([]parallax.CGResult, len(wls))
	s.pool(len(wls), func(i int) { rs[i] = s.cgOnly(wls[i], 1, 1, false) })

	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s %10s %10s %8s %9s\n",
		"Benchmark", "Broad(ms)", "Narrow", "IslGen", "IslProc", "Cloth",
		"Total", "FPS", "Serial%")
	serialFracSum, worstSerialFrame := 0.0, 0.0
	for i, wl := range wls {
		r := rs[i]
		ms := func(ph world.Phase) float64 { return r.PhaseTime[ph] * 1e3 }
		total := r.Total()
		sf := r.Serial() / total
		serialFracSum += sf
		if fr := r.Serial() / (1.0 / 30); fr > worstSerialFrame {
			worstSerialFrame = fr
		}
		fmt.Fprintf(w, "%-12s %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f %8.1f %8.1f%%\n",
			wl.Name, ms(world.PhaseBroad), ms(world.PhaseNarrow),
			ms(world.PhaseIslandGen), ms(world.PhaseIslandProc),
			ms(world.PhaseCloth), total*1e3, r.FPS(), sf*100)
	}
	fmt.Fprintf(w, "serial phases: avg %.0f%% of execution, worst %.0f%% of one frame's budget\n",
		serialFracSum/float64(len(wls))*100, worstSerialFrame*100)
}

// Fig2b prints serial-phase time vs shared L2 capacity. The workload x
// L2-size grid is evaluated on the worker pool.
func (s *Suite) Fig2b(w io.Writer) {
	wls := s.Workloads()
	cells := grid(s, len(wls), len(l2Sweep), func(r, c int) float64 {
		return s.cgOnly(wls[r], 1, l2Sweep[c], false).Serial()
	})

	fmt.Fprintf(w, "%-12s", "Benchmark")
	for _, mb := range l2Sweep {
		fmt.Fprintf(w, " %7dMB", mb)
	}
	fmt.Fprintln(w)
	for i, wl := range wls {
		fmt.Fprintf(w, "%-12s", wl.Name)
		for j := range l2Sweep {
			fmt.Fprintf(w, " %8.2f", cells[i][j]*1e3)
		}
		fmt.Fprintln(w, "  (ms)")
	}
}

// dedicated prints one phase's dedicated-L2 sweep, evaluating the
// workload x cache-size grid on the worker pool.
func (s *Suite) dedicated(w io.Writer, ph world.Phase, cores int, only []string) {
	var wls []*parallax.Workload
	for _, wl := range s.Workloads() {
		if only == nil || contains(only, wl.Name) {
			wls = append(wls, wl)
		}
	}
	cells := grid(s, len(wls), len(dedicatedSweep), func(r, c int) float64 {
		return wls[r].DedicatedPhaseTime(ph, cores, dedicatedSweep[c])
	})

	fmt.Fprintf(w, "%-12s", "Benchmark")
	for _, mb := range dedicatedSweep {
		fmt.Fprintf(w, " %7dMB", mb)
	}
	fmt.Fprintln(w)
	for i, wl := range wls {
		fmt.Fprintf(w, "%-12s", wl.Name)
		for j := range dedicatedSweep {
			fmt.Fprintf(w, " %8.3f", cells[i][j]*1e3)
		}
		fmt.Fprintln(w, "  (ms)")
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Fig3a: Broadphase with dedicated L2.
func (s *Suite) Fig3a(w io.Writer) { s.dedicated(w, world.PhaseBroad, 1, nil) }

// Fig3b: Narrowphase with dedicated L2.
func (s *Suite) Fig3b(w io.Writer) { s.dedicated(w, world.PhaseNarrow, 1, nil) }

// Fig4a: Island Creation with dedicated L2.
func (s *Suite) Fig4a(w io.Writer) { s.dedicated(w, world.PhaseIslandGen, 1, nil) }

// Fig4b: Island Processing with dedicated L2.
func (s *Suite) Fig4b(w io.Writer) { s.dedicated(w, world.PhaseIslandProc, 1, nil) }

// Fig5a: Cloth with dedicated L2 (only the cloth benchmarks).
func (s *Suite) Fig5a(w io.Writer) {
	s.dedicated(w, world.PhaseCloth, 1, []string{"Deformable", "Mix"})
}

// fig5bCores is the processor-scaling sweep of Fig 5b.
var fig5bCores = []int{1, 2, 4}

// Fig5b: frame time as cores scale 1 -> 2 -> 4 with the partitioned
// 12MB L2.
func (s *Suite) Fig5b(w io.Writer) {
	wls := s.Workloads()
	cells := grid(s, len(wls), len(fig5bCores), func(r, c int) float64 {
		return s.cgOnly(wls[r], fig5bCores[c], 12, true).Total()
	})

	fmt.Fprintf(w, "%-12s %10s %10s %10s %12s %12s\n",
		"Benchmark", "1P (ms)", "2P (ms)", "4P (ms)", "1->2 gain", "2->4 gain")
	g12, g24 := 0.0, 0.0
	for i, wl := range wls {
		t1, t2, t4 := cells[i][0], cells[i][1], cells[i][2]
		fmt.Fprintf(w, "%-12s %10.2f %10.2f %10.2f %11.0f%% %11.0f%%\n",
			wl.Name, t1*1e3, t2*1e3, t4*1e3, (t1/t2-1)*100, (t2/t4-1)*100)
		g12 += t1/t2 - 1
		g24 += t2/t4 - 1
	}
	n := float64(len(wls))
	fmt.Fprintf(w, "average gains: 1->2 cores %.0f%%, 2->4 cores %.0f%%\n",
		g12/n*100, g24/n*100)
}

// Fig6a: the 4-core 12MB breakdown and its speedup over one core.
func (s *Suite) Fig6a(w io.Writer) {
	wls := s.Workloads()
	type pair struct{ r, base parallax.CGResult }
	rs := make([]pair, len(wls))
	s.pool(len(wls), func(i int) {
		rs[i] = pair{s.cgOnly(wls[i], 4, 12, true), s.cgOnly(wls[i], 1, 1, false)}
	})

	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s %10s %10s %8s %9s\n",
		"Benchmark", "Broad(ms)", "Narrow", "IslGen", "IslProc", "Cloth",
		"Total", "FPS", "vs 1P+1MB")
	for i, wl := range wls {
		r, base := rs[i].r, rs[i].base
		ms := func(ph world.Phase) float64 { return r.PhaseTime[ph] * 1e3 }
		fmt.Fprintf(w, "%-12s %10.2f %10.2f %10.2f %10.2f %10.2f %10.2f %8.1f %8.2fx\n",
			wl.Name, ms(world.PhaseBroad), ms(world.PhaseNarrow),
			ms(world.PhaseIslandGen), ms(world.PhaseIslandProc),
			ms(world.PhaseCloth), r.Total()*1e3, r.FPS(),
			base.Total()/r.Total())
	}
}

// fig6bThreads is the thread-scaling sweep of Fig 6b.
var fig6bThreads = []int{1, 2, 4, 8}

// Fig6b: L2 miss breakdown (user vs kernel) as threads scale, the four
// thread counts simulated concurrently.
func (s *Suite) Fig6b(w io.Writer) {
	wl := s.byName("Mix")
	ms := make([]parallax.MemResult, len(fig6bThreads))
	s.pool(len(fig6bThreads), func(i int) {
		ms[i] = wl.SimulateMemory(memCfg(fig6bThreads[i]))
	})

	fmt.Fprintf(w, "%-8s %14s %14s %14s\n", "Threads", "User misses", "Kernel misses", "Total")
	var prev uint64
	for i, th := range fig6bThreads {
		u, k := ms[i].TotalL2Misses()
		fmt.Fprintf(w, "%-8d %14d %14d %14d", th, u, k, u+k)
		if th == 8 && prev > 0 {
			fmt.Fprintf(w, "   (%.1fx vs 4 threads)", float64(u+k)/float64(prev))
		}
		if th == 4 {
			prev = u + k
		}
		fmt.Fprintln(w)
	}
}

// Fig7a: the limit of coarse-grain parallelism — Island Processing and
// Cloth under ideal CG scaling vs the frame budget.
func (s *Suite) Fig7a(w io.Writer) {
	fmt.Fprintf(w, "%-12s %14s %12s %14s\n",
		"Benchmark", "IslProc (ms)", "Cloth (ms)", "frame budget")
	for _, wl := range s.Workloads() {
		ip, cl := wl.IdealCGLimit()
		note := ""
		if ip+cl > 1.0/30 {
			note = "  EXCEEDS FRAME"
		}
		fmt.Fprintf(w, "%-12s %14.2f %12.2f %11.2f ms%s\n",
			wl.Name, ip*1e3, cl*1e3, 1000.0/30, note)
	}
}

// Fig7b: instruction mix of the five phases.
func (s *Suite) Fig7b(w io.Writer) {
	fmt.Fprintf(w, "%-18s %8s %8s %8s %8s %8s %8s\n",
		"Phase", "int alu", "branch", "fp add", "fp mult", "rd port", "wr port")
	for ph := world.Phase(0); ph < world.NumPhases; ph++ {
		k := phaseKernel(ph)
		m := kernels.Summary(k.Mix())
		fmt.Fprintf(w, "%-18s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
			ph.String(), m.IntALU*100, m.Branch*100, m.FPAdd*100,
			m.FPMul*100, m.Read*100, m.Write*100)
	}
}

func phaseKernel(ph world.Phase) kernels.Kernel {
	switch ph {
	case world.PhaseIslandProc:
		return kernels.Island
	case world.PhaseCloth:
		return kernels.Cloth
	case world.PhaseBroad:
		return kernels.Broad
	case world.PhaseIslandGen:
		return kernels.IslandGen
	default:
		return kernels.Narrow
	}
}
