package exp

import (
	"testing"

	"github.com/parallax-arch/parallax/internal/arch/cpu"
	"github.com/parallax-arch/parallax/internal/arch/kernels"
	"github.com/parallax-arch/parallax/internal/arch/link"
	"github.com/parallax-arch/parallax/internal/arch/parallax"
	"github.com/parallax-arch/parallax/internal/phys/world"
)

// These tests pin the paper's qualitative results — the shapes every
// figure must reproduce — at a reduced scale so the whole net runs in
// seconds. Absolute values are free to move with calibration; the
// orderings and crossovers here must not.

func TestShapeSerialFractionSmall(t *testing.T) {
	// Paper: serial phases average ~9% of execution.
	s := suiteForTest(t)
	sum, n := 0.0, 0
	for _, wl := range s.Workloads() {
		r := s.cgOnly(wl, 1, 1, false)
		sum += r.Serial() / r.Total()
		n++
	}
	avg := sum / float64(n)
	if avg < 0.02 || avg > 0.35 {
		t.Errorf("serial fraction avg = %v, want small minority", avg)
	}
}

func TestShapeComplexityOrdering(t *testing.T) {
	// Paper Fig 2a: execution time scales in complexity; the heavy trio
	// (Explosions, Highspeed, Mix) dwarfs Periodic/Ragdoll.
	s := suiteForTest(t)
	total := func(name string) float64 {
		return s.cgOnly(s.byName(name), 1, 1, false).Total()
	}
	// (Wall/building sizes scale super-linearly with the suite scale, so
	// at the reduced test scale we require strict ordering; at full
	// scale the heavy trio is an order of magnitude above — see
	// EXPERIMENTS.md.)
	light := (total("Periodic") + total("Ragdoll")) / 2
	for _, heavy := range []string{"Explosions", "Highspeed", "Mix"} {
		if total(heavy) <= light {
			t.Errorf("%s (%v) should exceed the light benchmarks (%v)",
				heavy, total(heavy), light)
		}
	}
}

func TestShapeSerialL2Monotone(t *testing.T) {
	// Paper Fig 2b: serial time never rises as the shared L2 grows, and
	// the heavy benchmarks improve measurably.
	s := suiteForTest(t)
	for _, name := range []string{"Explosions", "Mix"} {
		wl := s.byName(name)
		prev := -1.0
		first, last := 0.0, 0.0
		for _, mb := range []int{1, 2, 4, 8, 16} {
			v := s.cgOnly(wl, 1, mb, false).Serial()
			if prev > 0 && v > prev*1.05 {
				t.Errorf("%s: serial time rose at %dMB: %v -> %v", name, mb, prev, v)
			}
			if first == 0 {
				first = v
			}
			last = v
			prev = v
		}
		if last >= first {
			t.Errorf("%s: no L2 benefit: %v -> %v", name, first, last)
		}
	}
}

func TestShapeCGScalingSublinearAndDecreasing(t *testing.T) {
	// Paper Fig 5b: positive but sub-linear gains, diminishing 2->4.
	s := suiteForTest(t)
	g12, g24, n := 0.0, 0.0, 0.0
	for _, wl := range s.Workloads() {
		t1 := s.cgOnly(wl, 1, 12, true).Total()
		t2 := s.cgOnly(wl, 2, 12, true).Total()
		t4 := s.cgOnly(wl, 4, 12, true).Total()
		g12 += t1/t2 - 1
		g24 += t2/t4 - 1
		n++
	}
	g12, g24 = g12/n, g24/n
	if g12 <= 0 || g12 >= 1.0 {
		t.Errorf("1->2 gain = %v, want positive and sub-linear", g12)
	}
	if g24 >= g12 {
		t.Errorf("2->4 gain (%v) should diminish vs 1->2 (%v)", g24, g12)
	}
}

func TestShapeKernelMissBlowupAtEightThreads(t *testing.T) {
	// Paper Fig 6b.
	s := suiteForTest(t)
	wl := s.byName("Mix")
	m4 := wl.SimulateMemory(memCfg(4))
	m8 := wl.SimulateMemory(memCfg(8))
	u4, k4 := m4.TotalL2Misses()
	u8, k8 := m8.TotalL2Misses()
	if k8 < k4*4 {
		t.Errorf("kernel misses at 8 threads (%d) should blow up vs 4 (%d)", k8, k4)
	}
	if float64(u8) > float64(u4)*1.5 {
		t.Errorf("user misses should stay roughly flat: %d -> %d", u4, u8)
	}
}

func TestShapeFGCoreOrderingAndArea(t *testing.T) {
	// Paper Fig 10b: desktop < console < shader counts; shader pool
	// cheapest in area.
	s := suiteForTest(t)
	wl := s.byName("Mix")
	const budget = 0.02 // small capture -> small budget exercises sizing
	d := wl.FGCoresFor30FPS(cpu.Desktop, budget, link.OnChip)
	c := wl.FGCoresFor30FPS(cpu.Console, budget, link.OnChip)
	sh := wl.FGCoresFor30FPS(cpu.Shader, budget, link.OnChip)
	if !(d < c && c < sh) {
		t.Fatalf("core-count ordering wrong: %d %d %d", d, c, sh)
	}
}

func TestShapeTable7Ordering(t *testing.T) {
	// Paper Table 7: buffering on-chip <= HTX <= PCIe for every kernel,
	// and island needs the deepest buffering over PCIe.
	s := suiteForTest(t)
	wl := s.byName("Mix")
	ipcs := wl.KernelIPC(cpu.Desktop)
	for k := kernels.Narrow; k < kernels.NumKernels; k++ {
		taskSec := wl.TaskTime(k, ipcs[k])
		if taskSec <= 0 {
			continue
		}
		on := link.For(link.OnChip).TasksToHide(taskSec, k.DataIn(), k.DataOut())
		ht := link.For(link.HTX).TasksToHide(taskSec, k.DataIn(), k.DataOut())
		pc := link.For(link.PCIe).TasksToHide(taskSec, k.DataIn(), k.DataOut())
		if !(on <= ht && ht <= pc) {
			t.Errorf("%v: buffering not ordered: %d %d %d", k, on, ht, pc)
		}
	}
}

func TestShapeFig11Ordering(t *testing.T) {
	// Paper Fig 11: the pair-rich benchmarks lead; cloth tasks only in
	// Deformable and Mix.
	s := suiteForTest(t)
	get := func(name string) (p, d, v float64) { return s.byName(name).AvailableFGTasks() }
	pe, _, ve := get("Periodic")
	ph, _, _ := get("Highspeed")
	_, _, vd := get("Deformable")
	_, _, vm := get("Mix")
	if ph <= pe {
		t.Errorf("Highspeed pairs (%v) should exceed Periodic (%v)", ph, pe)
	}
	if ve != 0 {
		t.Errorf("Periodic has cloth tasks: %v", ve)
	}
	if vd <= 0 || vm <= 0 {
		t.Errorf("Deformable/Mix missing cloth tasks: %v %v", vd, vm)
	}
}

func TestShapeReferenceSystemBeatsCMP(t *testing.T) {
	// The proposed system must beat the 4-core CMP on every benchmark.
	s := suiteForTest(t)
	for _, wl := range s.Workloads() {
		cmp := s.cgOnly(wl, 4, 12, true).Total()
		sys := wl.Evaluate(parallax.Reference())
		if sys.Total() >= cmp {
			t.Errorf("%s: ParallAX (%v) does not beat the CMP (%v)",
				wl.Name, sys.Total(), cmp)
		}
	}
}

func TestShapeIdealCGLimitBindsOnMix(t *testing.T) {
	// Paper Fig 7a: the largest island bounds Mix's CG scaling hardest.
	s := suiteForTest(t)
	ipMix, _ := s.byName("Mix").IdealCGLimit()
	ipRag, _ := s.byName("Ragdoll").IdealCGLimit()
	if ipMix <= ipRag {
		t.Errorf("Mix ideal island time (%v) should exceed Ragdoll (%v)", ipMix, ipRag)
	}
}

func TestShapeSerialTimeCoreInvariant(t *testing.T) {
	// Serial phases do not speed up with more cores (paper Fig 9a).
	s := suiteForTest(t)
	wl := s.byName("Explosions")
	s1 := s.cgOnly(wl, 1, 12, true).Serial()
	s4 := s.cgOnly(wl, 4, 12, true).Serial()
	if s4 < s1*0.85 || s4 > s1*1.15 {
		t.Errorf("serial time varies with cores: %v vs %v", s1, s4)
	}
}

func TestShapeMemCfgPhasesCovered(t *testing.T) {
	// Sanity: the memory simulation touches every phase with work.
	s := suiteForTest(t)
	wl := s.byName("Deformable")
	m := wl.SimulateMemory(memCfg(2))
	for ph := world.Phase(0); ph < world.NumPhases; ph++ {
		if m.Phase[ph].Accesses == 0 {
			t.Errorf("phase %v has no simulated accesses", ph)
		}
	}
}
