package exp

import (
	"bytes"
	"strings"
	"testing"
)

// smallSuite shares one scaled-down capture across the package's tests.
var smallSuite *Suite

func suiteForTest(t *testing.T) *Suite {
	t.Helper()
	if smallSuite == nil {
		smallSuite = NewSuite(0.15)
	}
	return smallSuite
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table3", "table4", "fig2a", "fig2b", "fig3a", "fig3b", "fig4a",
		"fig4b", "fig5a", "fig5b", "fig6a", "fig6b", "fig7a", "fig7b",
		"fig9a", "fig9b", "fig10a", "fig10b", "table7", "fig11",
		"sec721", "sec822", "sec83",
		"ext-prefetch", "ext-sharedmem",
		"abl-partition", "abl-broadphase", "abl-iterations", "abl-warmstart",
		"ref-system",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, got[i], want[i])
		}
	}
	if _, ok := ByID("fig10b"); !ok {
		t.Error("ByID broken")
	}
	if _, ok := ByID("nonsense"); ok {
		t.Error("ByID found nonsense")
	}
}

func TestAllExperimentsProduceOutput(t *testing.T) {
	s := suiteForTest(t)
	for _, e := range Registry {
		var buf bytes.Buffer
		e.Run(s, &buf)
		out := buf.String()
		if len(out) < 40 {
			t.Errorf("%s produced almost no output: %q", e.ID, out)
		}
		if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
			t.Errorf("%s output contains NaN/Inf:\n%s", e.ID, out)
		}
	}
}

func TestFig2aEveryBenchmarkListed(t *testing.T) {
	s := suiteForTest(t)
	var buf bytes.Buffer
	s.Fig2a(&buf)
	for _, n := range Names() {
		if !strings.Contains(buf.String(), n) {
			t.Errorf("fig2a missing benchmark %s", n)
		}
	}
}

func TestFig10aShowsAllCores(t *testing.T) {
	s := suiteForTest(t)
	var buf bytes.Buffer
	s.Fig10a(&buf)
	for _, name := range []string{"Desktop", "Console", "Shader", "Limit"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("fig10a missing %s:\n%s", name, buf.String())
		}
	}
}

func TestTable7ShowsInterconnects(t *testing.T) {
	s := suiteForTest(t)
	var buf bytes.Buffer
	s.Table7(&buf)
	for _, name := range []string{"On-chip", "HTX", "PCIe"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("table7 missing %s", name)
		}
	}
}

func TestNewSuiteOf(t *testing.T) {
	s := NewSuiteOf(0.1, "Periodic", "Ragdoll")
	if len(s.Workloads) != 2 {
		t.Fatalf("suite of 2 has %d workloads", len(s.Workloads))
	}
	if s.byName("Periodic").Name != "Periodic" {
		t.Error("byName broken")
	}
	// Unknown benchmark falls back to the last workload rather than nil.
	if s.byName("Missing") == nil {
		t.Error("byName should fall back, not return nil")
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := suiteForTest(t)
	var buf bytes.Buffer
	s.RunAll(&buf)
	for _, e := range Registry {
		if !strings.Contains(buf.String(), "==== "+e.ID) {
			t.Errorf("RunAll missing %s", e.ID)
		}
	}
}
